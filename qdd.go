// Package quantumdd is a from-scratch Go reproduction of
// "Visualizing Decision Diagrams for Quantum Computing (Special
// Session Summary)" (Wille, Burgholzer, Artner; DATE 2021): the full
// software stack behind the paper's installation-free web tool.
//
// The implementation lives in the internal packages (see DESIGN.md for
// the system inventory):
//
//	internal/cnum        tolerance-based canonical complex numbers
//	internal/dd          quantum decision diagrams (vectors, matrices)
//	internal/linalg      dense linear-algebra baseline
//	internal/qc          circuit IR, gate algebra, compilation
//	internal/qasm        OpenQASM 2.0 front end
//	internal/realfmt     RevLib .real front end
//	internal/sim         DD-based simulation with stepping and dialogs
//	internal/verify      DD-based equivalence checking
//	internal/vis         classic/colored/modern SVG and DOT rendering
//	internal/web         the web tool (JSON API + embedded page)
//	internal/algorithms  example algorithm generators
//	internal/bench       experiment harness (paper figure regeneration)
//	internal/core        high-level façade tying everything together
//
// Executables: cmd/ddvis (web tool), cmd/ddsim (simulator),
// cmd/ddverify (equivalence checker), cmd/dddraw (diagram renderer),
// cmd/ddbench (experiment harness). Runnable examples live under
// examples/.
package quantumdd
