package quantumdd_test

// One benchmark per paper artifact (see DESIGN.md's per-experiment
// index): each BenchmarkE*/BenchmarkA* drives the corresponding
// experiment from internal/bench, so `go test -bench=.` regenerates
// every figure/example of the paper and times it. The Benchmark*Micro
// functions additionally time the hot primitives of the DD engine.

import (
	"io"
	"math/rand"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/bench"
	"quantumdd/internal/dd"
	"quantumdd/internal/linalg"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
	"quantumdd/internal/verify"
	"quantumdd/internal/vis"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkE1BellStateDD(b *testing.B)             { runExperiment(b, "E1") }
func BenchmarkE2GateDDs(b *testing.B)                 { runExperiment(b, "E2") }
func BenchmarkE3Kron(b *testing.B)                    { runExperiment(b, "E3") }
func BenchmarkE4Simulation(b *testing.B)              { runExperiment(b, "E4") }
func BenchmarkE5QFTFunctionality(b *testing.B)        { runExperiment(b, "E5") }
func BenchmarkE6AlternatingVerification(b *testing.B) { runExperiment(b, "E6") }
func BenchmarkE7Visualization(b *testing.B)           { runExperiment(b, "E7") }
func BenchmarkE8Scaling(b *testing.B)                 { runExperiment(b, "E8") }
func BenchmarkE9Sampling(b *testing.B)                { runExperiment(b, "E9") }
func BenchmarkE10Teleport(b *testing.B)               { runExperiment(b, "E10") }
func BenchmarkA1ToleranceAblation(b *testing.B)       { runExperiment(b, "A1") }
func BenchmarkA2CacheAblation(b *testing.B)           { runExperiment(b, "A2") }
func BenchmarkA3StrategyAblation(b *testing.B)        { runExperiment(b, "A3") }
func BenchmarkA4NormalizationAblation(b *testing.B)   { runExperiment(b, "A4") }
func BenchmarkA5ApproximationSweep(b *testing.B)      { runExperiment(b, "A5") }
func BenchmarkA6VariableOrderSifting(b *testing.B)    { runExperiment(b, "A6") }
func BenchmarkK1KernelVsGeneric(b *testing.B)         { runExperiment(b, "K1") }
func BenchmarkK2PeepholeFusion(b *testing.B)          { runExperiment(b, "K2") }

// --- micro benchmarks of the DD engine primitives ---

// BenchmarkMicroGHZSimulation measures DD simulation of a structured
// 20-qubit state, where diagrams stay linear in n.
func BenchmarkMicroGHZSimulation(b *testing.B) {
	circ := algorithms.GHZ(20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(circ)
		if _, err := s.RunToEnd(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroDDvsDense race: DD simulation of QFT(10) against the
// dense in-place baseline — the crossover study behind E8.
func BenchmarkMicroQFT10DD(b *testing.B) {
	circ := algorithms.QFT(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(circ)
		if _, err := s.RunToEnd(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroQFT10Dense(b *testing.B) {
	circ := algorithms.QFT(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := linalg.ZeroState(circ.NQubits)
		for j := range circ.Ops {
			op := &circ.Ops[j]
			if op.Kind != qc.KindGate {
				continue
			}
			var pos []int
			for _, c := range op.Controls {
				pos = append(pos, c.Qubit)
			}
			if op.Gate == qc.Swap {
				x := qc.Matrix2(qc.X, nil)
				a, t := op.Targets[0], op.Targets[1]
				linalg.ApplyControlledGate(v, x, t, append(append([]int{}, pos...), a), nil)
				linalg.ApplyControlledGate(v, x, a, append(append([]int{}, pos...), t), nil)
				linalg.ApplyControlledGate(v, x, t, append(append([]int{}, pos...), a), nil)
				continue
			}
			linalg.ApplyControlledGate(v, qc.Matrix2(op.Gate, op.Params), op.Targets[0], pos, nil)
		}
	}
}

// BenchmarkMicroMultMV times a single gate application on a wide
// structured state.
func BenchmarkMicroMultMV(b *testing.B) {
	p := dd.New(24)
	circ := algorithms.GHZ(24)
	s := sim.New(circ)
	if _, err := s.RunToEnd(); err != nil {
		b.Fatal(err)
	}
	state := s.State()
	pkg := s.Pkg()
	h := pkg.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.H, nil)), 12)
	_ = p
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pkg.MultMV(h, state)
	}
}

// BenchmarkMicroApplyGate times the direct gate-application kernel on
// the same wide structured state as BenchmarkMicroMultMV — the same
// logical operation without the matrix diagram.
func BenchmarkMicroApplyGate(b *testing.B) {
	s := sim.New(algorithms.GHZ(24))
	if _, err := s.RunToEnd(); err != nil {
		b.Fatal(err)
	}
	state := s.State()
	pkg := s.Pkg()
	h := dd.GateMatrix(qc.Matrix2(qc.H, nil))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pkg.ApplyGate(state, h, 12)
	}
}

// BenchmarkMicroGateDDMultMV is the full generic baseline the kernel
// replaces: fetch (or build) the gate diagram, then multiply.
func BenchmarkMicroGateDDMultMV(b *testing.B) {
	s := sim.New(algorithms.GHZ(24))
	if _, err := s.RunToEnd(); err != nil {
		b.Fatal(err)
	}
	state := s.State()
	pkg := s.Pkg()
	h := dd.GateMatrix(qc.Matrix2(qc.H, nil))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pkg.MultMV(pkg.MakeGateDD(h, 12), state)
	}
}

// rotationLadderCirc mirrors the compiled-circuit shape of the K2
// experiment: per layer an rz·ry·rz Euler run on every qubit, then a
// CX ring.
func rotationLadderCirc(n, layers int) *qc.Circuit {
	c := qc.New(n, 0)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			a := 0.3 + 0.1*float64(l*n+q)
			c.Gate(qc.RZ, []float64{a}, q)
			c.Gate(qc.RY, []float64{a / 2}, q)
			c.Gate(qc.RZ, []float64{a / 3}, q)
		}
		for q := 0; q < n; q++ {
			c.CX(q, (q+1)%n)
		}
	}
	return c
}

// BenchmarkMicroSimRotations / ...Fused time the rotation ladder with
// and without peephole fusion.
func BenchmarkMicroSimRotations(b *testing.B) {
	circ := rotationLadderCirc(12, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(circ)
		if _, err := s.RunToEnd(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSimRotationsFused(b *testing.B) {
	circ := rotationLadderCirc(12, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(circ, sim.WithFusion())
		if _, err := s.RunToEnd(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSimGHZGeneric pins the pre-kernel simulation path so
// the GHZ pair (with BenchmarkMicroGHZSimulation, which now uses the
// kernel) tracks the hot-path speedup end to end.
func BenchmarkMicroSimGHZGeneric(b *testing.B) {
	circ := algorithms.GHZ(20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(circ, sim.WithGenericApply())
		if _, err := s.RunToEnd(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroAddV times vector addition of two structurally
// distinct wide states (GHZ ± phase layer), the second hot primitive
// of DD simulation next to MultMV.
func BenchmarkMicroAddV(b *testing.B) {
	s := sim.New(algorithms.GHZ(24))
	if _, err := s.RunToEnd(); err != nil {
		b.Fatal(err)
	}
	pkg := s.Pkg()
	a := s.State()
	t := pkg.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.T, nil)), 7)
	c := pkg.MultMV(t, a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pkg.AddV(a, c)
	}
}

// BenchmarkMicroSample times single-path weak simulation on GHZ(24).
func BenchmarkMicroSample(b *testing.B) {
	s := sim.New(algorithms.GHZ(24))
	if _, err := s.RunToEnd(); err != nil {
		b.Fatal(err)
	}
	state := s.State()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dd.Sample(state, rng)
	}
}

// BenchmarkMicroVerifyQFT6 times the proportional alternating check.
func BenchmarkMicroVerifyQFT6(b *testing.B) {
	qft := algorithms.QFT(6)
	comp := algorithms.QFTCompiled(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := verify.Check(qft, comp, verify.Proportional)
		if err != nil || !res.Equivalent {
			b.Fatalf("verification failed: %v %v", res, err)
		}
	}
}

// BenchmarkMicroVerifyQFT6Generic is the same check on the generic
// MultMM oracle — the baseline of the matrix-apply kernel pair.
func BenchmarkMicroVerifyQFT6Generic(b *testing.B) {
	qft := algorithms.QFT(6)
	comp := algorithms.QFTCompiled(6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := verify.Check(qft, comp, verify.Proportional, verify.WithGenericMM())
		if err != nil || !res.Equivalent {
			b.Fatalf("verification failed: %v %v", res, err)
		}
	}
}

// BenchmarkMicroRenderQFT times layout + SVG of the 21-node QFT DD.
func BenchmarkMicroRenderQFT(b *testing.B) {
	p := dd.New(3)
	u, _, err := verify.BuildFunctionality(p, algorithms.QFT(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := vis.FromMatrix(u)
		_ = g.SVG(vis.Style{Mode: vis.Colored})
	}
}
