// Quantum teleportation of T|+(pi/5)> with classical corrections.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c0[1];
creg c1[1];
u3(1.0471975511965976,0.6283185307179586,0) q[2];
barrier q;
h q[1];
cx q[1],q[0];
barrier q;
cx q[2],q[1];
h q[2];
measure q[2] -> c1[0];
measure q[1] -> c0[0];
if (c0==1) x q[0];
if (c1==1) z q[0];
