// Grover search over 3 qubits for |101>, two iterations.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q;
// oracle: phase flip on |101>
x q[1];
ccz q[0],q[1],q[2];
x q[1];
// diffusion
h q;
x q;
ccz q[0],q[1],q[2];
x q;
h q;
// oracle again
x q[1];
ccz q[0],q[1],q[2];
x q[1];
// diffusion again
h q;
x q;
ccz q[0],q[1],q[2];
x q;
h q;
barrier q;
measure q -> c;
