// Simulation walk-through of Fig. 8: step through the Bell circuit
// operation by operation, watch the decision diagram evolve, answer
// the measurement dialog, and observe the entanglement-driven collapse
// of the second qubit.
//
// Run with: go run ./examples/simulation
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/cnum"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
)

func main() {
	circ := algorithms.BellMeasured()
	// The chooser plays the role of the tool's pop-up dialog: we click
	// |1⟩, as in Fig. 8(c).
	s := sim.New(circ, sim.WithChooser(func(op *qc.Op, q int, p0, p1 float64) int {
		fmt.Printf("  [dialog] measuring q[%d]: P(|0⟩)=%.1f%%, P(|1⟩)=%.1f%% → choosing |1⟩\n",
			q, 100*p0, 100*p1)
		return 1
	}))

	printState := func(label string) {
		fmt.Printf("%s  (DD: %d nodes)\n", label, dd.SizeV(s.State()))
		for idx, a := range s.Amplitudes() {
			if cmplx.Abs(a) < 1e-12 {
				continue
			}
			fmt.Printf("    |%02b⟩ %s\n", idx, cnum.FormatComplex(a))
		}
	}

	printState("initial state (Fig. 8(a)):")
	for !s.AtEnd() {
		ev, err := s.StepForward()
		if err != nil {
			log.Fatal(err)
		}
		switch ev.Kind {
		case sim.EventGate:
			printState(fmt.Sprintf("after %s:", ev.Op.String()))
		case sim.EventMeasure:
			printState(fmt.Sprintf("after measuring q[%d] = %d:", ev.Op.Targets[0], ev.Outcome))
		}
	}
	fmt.Print("classical register:")
	for i, b := range s.Classical() {
		fmt.Printf(" c[%d]=%d", i, b)
	}
	fmt.Println()

	// Stepping backward restores even the pre-measurement
	// superposition (the tool's ← button).
	s.StepBackward()
	s.StepBackward()
	fmt.Printf("after stepping back twice: P(q0=1) = %.2f (superposition restored)\n", s.ProbOne(0))
}
