// Visualization gallery (Sec. IV-A, Fig. 7): renders the Bell state
// and the QFT functionality in all three styles plus Graphviz DOT and
// the HLS phase color wheel, writing everything into ./dd-gallery/.
//
// Run with: go run ./examples/visualization
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/core"
	"quantumdd/internal/dd"
	"quantumdd/internal/vis"
)

func main() {
	outDir := "dd-gallery"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name, content string) {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %-32s %7d bytes\n", path, len(content))
	}

	// The Bell state in every style (Fig. 7's options).
	_, bell, _, err := core.Simulate(algorithms.Bell(), 1)
	if err != nil {
		log.Fatal(err)
	}
	styles := map[string]vis.Style{
		"classic": {Mode: vis.Classic},
		"colored": {Mode: vis.Colored},
		"modern":  {Mode: vis.Modern},
	}
	for name, style := range styles {
		write("bell_"+name+".svg", core.RenderState(bell, style))
	}
	write("bell.dot", core.RenderStateDOT(bell, vis.Style{Mode: vis.Classic}))

	// The QFT functionality matrix (Fig. 6) — colored, as in the paper.
	u, _, err := core.Functionality(algorithms.QFT(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("QFT3 functionality: %d nodes\n", dd.SizeM(u))
	write("qft3_colored.svg", core.RenderOperation(u, vis.Style{Mode: vis.Colored}))
	write("qft3_classic.svg", core.RenderOperation(u, vis.Style{Mode: vis.Classic}))
	write("qft3.dot", core.RenderOperationDOT(u, vis.Style{Mode: vis.Colored}))

	// The HLS color wheel legend (Fig. 7(b)).
	write("colorwheel.svg", vis.ColorWheelSVG(200))

	// An animation: one frame per simulation step of the Bell circuit
	// (the slide-show feature of the tool).
	frames, err := core.SimulationFrames(algorithms.BellMeasured(), 1, vis.Style{Mode: vis.Modern})
	if err != nil {
		log.Fatal(err)
	}
	for i, f := range frames {
		write(fmt.Sprintf("bell_frame_%02d.svg", i), f)
	}
}
