// Approximation: when the "exponential worst case" of Sec. III hits,
// branch pruning trades a controlled amount of fidelity for diagram
// size. This example sweeps the threshold on a hard random state and
// runs an end-to-end approximate simulation with a fidelity budget.
//
// Run with: go run ./examples/approximation
package main

import (
	"fmt"
	"log"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/sim"
)

func main() {
	const n = 12
	circ := algorithms.Entangled(n, 6, 3)
	s := sim.New(circ)
	if _, err := s.RunToEnd(); err != nil {
		log.Fatal(err)
	}
	state := s.State()
	pkg := s.Pkg()
	fmt.Printf("hard instance: %d qubits, exact DD has %d nodes (dense: %d amplitudes)\n\n",
		n, dd.SizeV(state), 1<<n)

	fmt.Printf("%-12s %10s %12s %14s\n", "threshold", "nodes", "kept ratio", "fidelity")
	base := float64(dd.SizeV(state))
	for _, th := range []float64{1e-8, 1e-6, 1e-5, 1e-4, 1e-3} {
		_, fid, _, after := pkg.Approximate(state, th)
		fmt.Printf("%-12.0e %10d %12.3f %14.9f\n", th, after, float64(after)/base, fid)
	}

	// Online approximation during simulation: prune after every gate.
	fmt.Println("\napproximate simulation (prune per gate, threshold 1e-4):")
	approx := sim.New(circ, sim.WithApproximation(1e-4))
	if _, err := approx.RunToEnd(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  exact run:        %d final nodes, peak %d\n", dd.SizeV(state), s.PeakNodes())
	fmt.Printf("  approximate run:  %d final nodes, peak %d, cumulative fidelity %.6f\n",
		dd.SizeV(approx.State()), approx.PeakNodes(), approx.ApproxFidelity())
	fmt.Println("  (sampling and probabilities remain available on the pruned diagram)")
	counts := approx.Sample(5)
	fmt.Printf("  5 samples from the approximate state: %d distinct outcomes\n", len(counts))
}
