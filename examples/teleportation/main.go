// Teleportation end-to-end: exercises all three "special operations"
// of Sec. IV-B — measurement dialogs, classically-controlled
// corrections, and reset — and verifies that Bob's qubit ends up in
// Alice's payload state for every measurement outcome.
//
// Run with: go run ./examples/teleportation
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
)

func main() {
	theta, phi := math.Pi/3, math.Pi/5
	fmt.Printf("payload |ψ⟩ = U(θ=%.3f, φ=%.3f)|0⟩ on Alice's qubit q2\n\n", theta, phi)

	// Run the protocol for all four measurement outcome combinations
	// by forcing the dialogs.
	for forced := 0; forced < 4; forced++ {
		outcomes := []int{forced & 1, forced >> 1}
		k := 0
		s := sim.New(algorithms.Teleport(theta, phi),
			sim.WithChooser(func(op *qc.Op, q int, p0, p1 float64) int {
				out := outcomes[k%2]
				k++
				return out
			}))
		events, err := s.RunToEnd()
		if err != nil {
			log.Fatal(err)
		}
		var corrections []string
		for _, ev := range events {
			if ev.Kind == sim.EventCondApply {
				corrections = append(corrections, ev.Op.Gate.String())
			}
		}
		fidelity := bobFidelity(s, theta, phi)
		fmt.Printf("measurement outcomes (q2,q1) = (%d,%d): corrections %v, payload fidelity %.9f\n",
			outcomes[0], outcomes[1], corrections, fidelity)
		if fidelity < 1-1e-9 {
			log.Fatalf("teleportation failed for outcome pattern %d", forced)
		}
	}

	// After the protocol Alice's qubits can be recycled with reset —
	// the third special operation.
	circ := algorithms.Teleport(theta, phi)
	circ.Reset(2)
	circ.Reset(1)
	s := sim.New(circ, sim.WithSeed(3))
	if _, err := s.RunToEnd(); err != nil {
		log.Fatal(err)
	}
	if p := s.ProbOne(2); p > 1e-9 {
		log.Fatalf("reset failed: P(q2=1) = %v", p)
	}
	fmt.Println("\nafter resets, Alice's qubits are back in |0⟩ and Bob still holds |ψ⟩:")
	fmt.Printf("  P(q2=1) = %.3f, P(q1=1) = %.3f, Bob fidelity %.9f\n",
		s.ProbOne(2), s.ProbOne(1), bobFidelity(s, theta, phi))
}

// bobFidelity computes |⟨ψ|φ_Bob⟩| where Bob's qubit is q0.
func bobFidelity(s *sim.Simulator, theta, phi float64) float64 {
	u := qc.Matrix2(qc.U, []float64{theta, phi, 0})
	want0, want1 := u[0], u[2]
	var got0, got1 complex128
	for idx, amp := range s.Amplitudes() {
		if cmplx.Abs(amp) < 1e-12 {
			continue
		}
		if idx&1 == 0 {
			got0 = amp
		} else {
			got1 = amp
		}
	}
	return cmplx.Abs(cmplx.Conj(got0)*want0 + cmplx.Conj(got1)*want1)
}
