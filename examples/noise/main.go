// Noise study: Monte-Carlo trajectory simulation under Pauli noise.
// Each trajectory stays a pure state (a cheap vector DD); the ensemble
// shows how a GHZ state's signature outcome pair degrades as the
// depolarizing rate grows.
//
// Run with: go run ./examples/noise
package main

import (
	"fmt"
	"log"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/sim"
)

func main() {
	const n = 5
	const trajectories = 2000
	circ := algorithms.GHZ(n)
	all := int64(1)<<n - 1
	fmt.Printf("GHZ(%d) under depolarizing noise, %d trajectories per point\n\n", n, trajectories)
	fmt.Printf("%-10s %14s %14s %12s\n", "p(error)", "P(|0…0⟩,|1…1⟩)", "error events", "mean nodes")
	for _, p := range []float64{0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1} {
		res, err := sim.RunNoisy(circ, sim.NoiseModel{Depolarizing: p}, trajectories, 42)
		if err != nil {
			log.Fatal(err)
		}
		legal := float64(res.Counts[0]+res.Counts[all]) / float64(trajectories)
		fmt.Printf("%-10.3f %14.3f %14d %12.1f\n", p, legal, res.ErrorEvents, res.MeanNodes)
	}
	fmt.Println("\nthe GHZ signature decays smoothly with the error rate — and every")
	fmt.Println("trajectory remained a compact decision diagram (no density matrices).")
}
