// Quickstart: build the Bell circuit of Fig. 1(c), simulate it on
// decision diagrams, inspect the diagram (Ex. 6), sample measurement
// outcomes, and render the DD as SVG.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"
	"os"

	"quantumdd/internal/cnum"
	"quantumdd/internal/core"
	"quantumdd/internal/dd"
	"quantumdd/internal/vis"
)

func main() {
	// Circuits load from OpenQASM (or .real) — the same sources the
	// web tool's algorithm box accepts.
	circ, err := core.LoadCircuit(`
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[1];
cx q[1],q[0];
`, "qasm")
	if err != nil {
		log.Fatal(err)
	}

	// Simulate: the state is a decision diagram, never a 2^n vector.
	_, state, pkg, err := core.Simulate(circ, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Bell state 1/√2(|00⟩+|11⟩):")
	fmt.Printf("  decision diagram size: %d nodes (Ex. 6 reports 3)\n", dd.SizeV(state))
	for idx := int64(0); idx < 4; idx++ {
		a := dd.Amplitude(state, idx)
		if cmplx.Abs(a) < 1e-12 {
			continue
		}
		fmt.Printf("  amplitude |%02b⟩ = %s\n", idx, cnum.FormatComplex(a))
	}

	// Weak simulation: sample without collapsing the diagram.
	counts := dd.SampleCounts(state, 1000, rand.New(rand.NewSource(7)))
	fmt.Printf("  1000 samples: |00⟩ %d times, |11⟩ %d times\n", counts[0], counts[3])

	// Probabilities per qubit (what the measurement dialog shows).
	fmt.Printf("  P(q0=1) = %.3f, P(q1=1) = %.3f\n",
		pkg.ProbOne(state, 0), pkg.ProbOne(state, 1))

	// Render the diagram in the paper's classic style.
	svg := core.RenderState(state, vis.Style{Mode: vis.Classic})
	if err := os.WriteFile("bell_dd.svg", []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  wrote bell_dd.svg (classic style, Fig. 2(a))")
}
