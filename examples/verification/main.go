// Verification walk-through of Ex. 10–12 and Fig. 9: check that the
// abstract three-qubit QFT (Fig. 5(a)) and its compiled version
// (Fig. 5(b)) are equivalent, first by constructing and comparing the
// canonical system matrices, then with the advanced alternating scheme
// that stays close to the identity (max 9 nodes instead of 21).
//
// Run with: go run ./examples/verification
package main

import (
	"fmt"
	"log"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/verify"
)

func main() {
	qft := algorithms.QFT(3)
	compiled := algorithms.QFTCompiled(3)
	fmt.Printf("G  (Fig. 5(a)): %d gates\nG' (Fig. 5(b)): %d gates\n\n",
		qft.NumGates(), compiled.NumGates())

	// Ex. 11: both circuits build the identical canonical DD.
	p := dd.New(3)
	u1, _, err := verify.BuildFunctionality(p, qft)
	if err != nil {
		log.Fatal(err)
	}
	u2, _, err := verify.BuildFunctionality(p, compiled)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functionality DDs identical: %v (%d nodes, Fig. 6)\n\n", u1 == u2, dd.SizeM(u1))

	// Ex. 12: the alternating scheme with different strategies.
	fmt.Printf("%-14s %12s %12s %8s\n", "strategy", "peak nodes", "final nodes", "equiv")
	for _, s := range []verify.Strategy{
		verify.Construction, verify.Sequential, verify.OneToOne,
		verify.Proportional, verify.Lookahead,
	} {
		res, err := verify.Check(qft, compiled, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12d %12d %8v\n", res.Strategy, res.PeakNodes, res.FinalNodes, res.Equivalent)
	}

	// The Fig. 9 view: the proportional walk's node-count trace.
	res, err := verify.Check(qft, compiled, verify.Proportional)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nproportional walk (one gate of G, then G' up to the barrier):")
	for i, r := range res.Trace {
		bar := ""
		for j := 0; j < r.Nodes; j++ {
			bar += "█"
		}
		fmt.Printf("  step %2d %-3s %-34s %2d %s\n", i, r.Side, r.Gate, r.Nodes, bar)
	}
	fmt.Printf("\npeak %d nodes — \"as opposed to 21 nodes for building the entire system matrix\" (Ex. 12)\n", res.PeakNodes)

	// A negative case: flip one rotation angle and watch it fail.
	broken := algorithms.QFT(3)
	for i := range broken.Ops {
		if broken.Ops[i].Params != nil {
			broken.Ops[i].Params[0] = -broken.Ops[i].Params[0]
			break
		}
	}
	bad, err := verify.Check(broken, compiled, verify.Proportional)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith one flipped angle: equivalent=%v (final diagram %d nodes, not the identity)\n",
		bad.Equivalent, bad.FinalNodes)
}
