// QAOA MaxCut: a miniature variational workload running entirely on
// decision diagrams — ansatz circuits are simulated with the DD
// engine and the cost function is read off the diagram as Pauli-ZZ
// expectations, the "design tasks in quantum computing" the paper's
// intro motivates.
//
// Run with: go run ./examples/qaoa
package main

import (
	"fmt"
	"log"

	"quantumdd/internal/algorithms"
)

func main() {
	g := algorithms.Ring(6)
	fmt.Printf("MaxCut on the 6-ring (optimum cut: 6, random guessing: %d edges/2 = 3)\n\n", len(g.Edges))

	results, best, err := algorithms.QAOASweep(g, 10, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("depth-1 QAOA grid: %d parameter points evaluated on DDs\n", len(results))
	fmt.Printf("best point: γ=%.3f β=%.3f → expected cut %.4f (DD: %d nodes)\n\n",
		best.Gamma, best.Beta, best.ExpectedCut, best.DDNodes)

	// Show the landscape around the optimum (coarse text heat row).
	fmt.Println("expected cut along γ at the best β:")
	for _, r := range results {
		if r.Beta != best.Beta {
			continue
		}
		bar := ""
		for i := 0; i < int(r.ExpectedCut*8); i++ {
			bar += "█"
		}
		fmt.Printf("  γ=%.3f  %.4f %s\n", r.Gamma, r.ExpectedCut, bar)
	}
}
