// Equivalence debugging: when two circuits are NOT equivalent, the
// checker can do better than a yes/no answer — it reports the
// Hilbert-Schmidt overlap (how far off the implementation is) and
// extracts a concrete counterexample input/output pair from the
// difference diagram.
//
// Run with: go run ./examples/debugging
package main

import (
	"fmt"
	"log"
	"math"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/qc"
	"quantumdd/internal/verify"
)

func main() {
	golden := algorithms.QFT(3)

	// A "compiler" with an off-by-sign bug in one rotation angle.
	buggy := algorithms.QFTCompiled(3)
	for i := range buggy.Ops {
		op := &buggy.Ops[i]
		if op.Gate == qc.P && op.Params[0] == -math.Pi/8 {
			op.Params[0] = math.Pi / 8 // the bug
			break
		}
	}

	fmt.Println("checking the buggy compilation against the abstract QFT:")
	res, err := verify.Check(golden, buggy, verify.Proportional)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  equivalent: %v (final diagram %d nodes — not the identity)\n\n",
		res.Equivalent, res.FinalNodes)

	ok, overlap, ce, err := verify.DiagnoseNonEquivalence(golden, buggy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("diagnosis:\n  equivalent: %v\n  Hilbert-Schmidt overlap: %.6f (1.0 would be equivalent)\n",
		ok, overlap)
	if ce != nil {
		fmt.Printf("  counterexample: %s\n", ce)
		fmt.Println("  → feeding that basis state into both circuits exposes the bug.")
	}

	// The overlap quantifies "how wrong": a tiny angle error keeps the
	// overlap high, a structural error tanks it.
	structural := algorithms.QFT(3)
	structural.Ops = structural.Ops[:len(structural.Ops)-1] // drop the final SWAP
	_, overlap2, _, err := verify.DiagnoseNonEquivalence(golden, structural)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nseverity comparison (Hilbert-Schmidt overlap):\n")
	fmt.Printf("  one flipped π/8 rotation: %.6f\n", overlap)
	fmt.Printf("  missing final SWAP:       %.6f\n", overlap2)
}
