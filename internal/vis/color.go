package vis

import (
	"fmt"
	"math"
	"math/cmplx"
)

// PhaseColor maps the complex phase of a weight onto the HLS color
// wheel of Fig. 7(b): hue equals the phase angle (0 = red at phase 0,
// green at 2π/3, blue at 4π/3), with full saturation and mid
// lightness. Returns a #rrggbb string.
func PhaseColor(w complex128) string {
	phase := cmplx.Phase(w) // (-π, π]
	if phase < 0 {
		phase += 2 * math.Pi
	}
	hue := phase / (2 * math.Pi) * 360
	r, g, b := hlsToRGB(hue, 0.5, 1.0)
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// hlsToRGB converts hue (degrees), lightness and saturation in [0,1]
// to 8-bit RGB.
func hlsToRGB(h, l, s float64) (uint8, uint8, uint8) {
	c := (1 - math.Abs(2*l-1)) * s
	hp := h / 60
	x := c * (1 - math.Abs(math.Mod(hp, 2)-1))
	var r, g, b float64
	switch {
	case hp < 1:
		r, g, b = c, x, 0
	case hp < 2:
		r, g, b = x, c, 0
	case hp < 3:
		r, g, b = 0, c, x
	case hp < 4:
		r, g, b = 0, x, c
	case hp < 5:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	m := l - c/2
	to8 := func(v float64) uint8 {
		v = (v + m) * 255
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		return uint8(math.Round(v))
	}
	return to8(r), to8(g), to8(b)
}

// MagnitudeWidth maps a weight magnitude onto a stroke width in
// pixels: magnitude 1 draws at 3px, thinner for smaller amplitudes,
// with a floor so faint edges stay visible.
func MagnitudeWidth(w complex128) float64 {
	mag := cmplx.Abs(w)
	if mag > 1 {
		mag = 1
	}
	width := 3 * mag
	if width < 0.6 {
		width = 0.6
	}
	return width
}

// ColorWheelSVG renders the HLS color-wheel legend of Fig. 7(b) as a
// standalone SVG: a ring of phase-colored segments with axis labels
// 0, π/2, π, 3π/2.
func ColorWheelSVG(size int) string {
	if size <= 0 {
		size = 160
	}
	cx := float64(size) / 2
	cy := float64(size) / 2
	rOuter := float64(size)*0.42 - 1
	rInner := rOuter * 0.55
	const segments = 72
	var b svgBuilder
	b.open(float64(size), float64(size))
	for i := 0; i < segments; i++ {
		a0 := float64(i) / segments * 2 * math.Pi
		a1 := float64(i+1)/segments*2*math.Pi + 0.005
		color := PhaseColor(cmplx.Exp(complex(0, a0)))
		p := fmt.Sprintf("M%.2f,%.2f L%.2f,%.2f A%.2f,%.2f 0 0 1 %.2f,%.2f L%.2f,%.2f A%.2f,%.2f 0 0 0 %.2f,%.2f Z",
			cx+rInner*math.Cos(a0), cy-rInner*math.Sin(a0),
			cx+rOuter*math.Cos(a0), cy-rOuter*math.Sin(a0),
			rOuter, rOuter,
			cx+rOuter*math.Cos(a1), cy-rOuter*math.Sin(a1),
			cx+rInner*math.Cos(a1), cy-rInner*math.Sin(a1),
			rInner, rInner,
			cx+rInner*math.Cos(a0), cy-rInner*math.Sin(a0))
		fmt.Fprintf(&b.buf, "<path d=\"%s\" fill=\"%s\" stroke=\"none\"/>\n", p, color)
	}
	labels := []struct {
		angle float64
		text  string
	}{
		{0, "0"}, {math.Pi / 2, "π/2"}, {math.Pi, "π"}, {3 * math.Pi / 2, "3π/2"},
	}
	for _, l := range labels {
		x := cx + (rOuter+10)*math.Cos(l.angle)
		y := cy - (rOuter+10)*math.Sin(l.angle)
		b.text(x, y, l.text, 11, "middle")
	}
	b.close()
	return b.String()
}
