package vis

import "sort"

// Layout parameters (SVG user units).
const (
	nodeRadius   = 18.0
	levelGap     = 72.0
	siblingGap   = 64.0
	marginX      = 40.0
	marginY      = 48.0
	terminalSize = 22.0
)

// Layout assigns node coordinates: one row per level (root level on
// top, terminal at the bottom), nodes within a row ordered by a DFS
// pre-order pass followed by barycenter sweeps to reduce crossings.
// It returns the overall canvas size.
func (g *Graph) Layout() (width, height float64) {
	if len(g.Nodes) == 0 {
		return 2 * marginX, 2 * marginY
	}
	// Row index per node: row 0 is the top (highest level).
	top := g.Levels - 1
	rowOf := func(n *Node) int {
		if n.Terminal {
			return g.Levels // bottom row
		}
		return top - n.Level
	}
	rows := make([][]NodeID, g.Levels+1)
	// DFS pre-order from the root for an initial ordering.
	visited := make([]bool, len(g.Nodes))
	adj := make([][]NodeID, len(g.Nodes))
	for _, e := range g.Edges {
		if e.To != noNode {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	var dfs func(id NodeID)
	dfs = func(id NodeID) {
		if visited[id] {
			return
		}
		visited[id] = true
		rows[rowOf(&g.Nodes[id])] = append(rows[rowOf(&g.Nodes[id])], id)
		for _, c := range adj[id] {
			dfs(c)
		}
	}
	if g.Root != noNode {
		dfs(g.Root)
	}
	for id := range g.Nodes {
		if !visited[id] {
			dfs(NodeID(id))
		}
	}
	// Barycenter sweeps: order each row by the mean position of
	// parents (downward pass), then by children (upward pass).
	pos := make([]float64, len(g.Nodes))
	assign := func() {
		for _, row := range rows {
			for i, id := range row {
				pos[id] = float64(i)
			}
		}
	}
	assign()
	parents := make([][]NodeID, len(g.Nodes))
	for _, e := range g.Edges {
		if e.To != noNode {
			parents[e.To] = append(parents[e.To], e.From)
		}
	}
	bary := func(ids []NodeID, of [][]NodeID) {
		type keyed struct {
			id  NodeID
			key float64
		}
		ks := make([]keyed, len(ids))
		for i, id := range ids {
			refs := of[id]
			if len(refs) == 0 {
				ks[i] = keyed{id, pos[id]}
				continue
			}
			sum := 0.0
			for _, r := range refs {
				sum += pos[r]
			}
			ks[i] = keyed{id, sum / float64(len(refs))}
		}
		sort.SliceStable(ks, func(a, b int) bool { return ks[a].key < ks[b].key })
		for i := range ks {
			ids[i] = ks[i].id
		}
	}
	for sweep := 0; sweep < 2; sweep++ {
		for r := 1; r < len(rows); r++ {
			bary(rows[r], parents)
			assign()
		}
		for r := len(rows) - 2; r >= 0; r-- {
			bary(rows[r], adj)
			assign()
		}
	}
	// Coordinates: centre every row horizontally.
	maxW := 0
	for _, row := range rows {
		if len(row) > maxW {
			maxW = len(row)
		}
	}
	width = marginX*2 + float64(maxW-1)*siblingGap
	if width < 2*marginX+siblingGap {
		width = 2*marginX + siblingGap
	}
	for r, row := range rows {
		rowWidth := float64(len(row)-1) * siblingGap
		x0 := (width - rowWidth) / 2
		for i, id := range row {
			g.Nodes[id].X = x0 + float64(i)*siblingGap
			g.Nodes[id].Y = marginY + float64(r+1)*levelGap
		}
	}
	height = marginY + float64(len(rows)+1)*levelGap
	return width, height
}
