package vis

import (
	"fmt"
	"regexp"
	"strings"
)

// AnimationSVG combines per-step SVG frames (as produced by
// core.SimulationFrames) into one self-contained SVG that cycles
// through them with SMIL timing — the tool's slide show as a single
// shareable file. frameDur is the display time per frame in seconds.
func AnimationSVG(frames []string, frameDur float64) (string, error) {
	if len(frames) == 0 {
		return "", fmt.Errorf("vis: no frames to animate")
	}
	if frameDur <= 0 {
		frameDur = 1
	}
	// Determine the canvas: use the maximum frame dimensions.
	var maxW, maxH float64
	dims := make([][2]float64, len(frames))
	for i, f := range frames {
		w, h, err := svgSize(f)
		if err != nil {
			return "", fmt.Errorf("vis: frame %d: %w", i, err)
		}
		dims[i] = [2]float64{w, h}
		if w > maxW {
			maxW = w
		}
		if h > maxH {
			maxH = h
		}
	}
	total := frameDur * float64(len(frames))
	var b strings.Builder
	fmt.Fprintf(&b, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n", maxW, maxH, maxW, maxH)
	b.WriteString("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n")
	for i, f := range frames {
		inner, err := svgInner(f)
		if err != nil {
			return "", fmt.Errorf("vis: frame %d: %w", i, err)
		}
		begin := frameDur * float64(i)
		fmt.Fprintf(&b, "<g visibility=\"hidden\">\n")
		// Loop: each frame shows for frameDur within a total-length cycle.
		fmt.Fprintf(&b, "<set attributeName=\"visibility\" to=\"visible\" begin=\"%.2fs;anim0.begin+%.2fs\" dur=\"%.2fs\"/>\n",
			begin, begin, frameDur)
		b.WriteString(inner)
		b.WriteString("</g>\n")
	}
	// An invisible driver animation defining the cycle length.
	fmt.Fprintf(&b, "<rect width=\"0\" height=\"0\"><animate id=\"anim0\" attributeName=\"x\" from=\"0\" to=\"0\" begin=\"0s;anim0.end\" dur=\"%.2fs\"/></rect>\n", total)
	b.WriteString("</svg>\n")
	return b.String(), nil
}

var (
	svgOpenRe = regexp.MustCompile(`<svg[^>]*\swidth="([0-9.]+)"[^>]*\sheight="([0-9.]+)"`)
)

func svgSize(svg string) (w, h float64, err error) {
	m := svgOpenRe.FindStringSubmatch(svg)
	if m == nil {
		return 0, 0, fmt.Errorf("no svg dimensions found")
	}
	if _, err := fmt.Sscanf(m[1], "%f", &w); err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(m[2], "%f", &h); err != nil {
		return 0, 0, err
	}
	return w, h, nil
}

// svgInner extracts the content between the <svg> open tag and the
// closing </svg>.
func svgInner(svg string) (string, error) {
	open := strings.Index(svg, ">")
	if open < 0 {
		return "", fmt.Errorf("malformed svg")
	}
	close := strings.LastIndex(svg, "</svg>")
	if close < 0 || close <= open {
		return "", fmt.Errorf("malformed svg")
	}
	return svg[open+1 : close], nil
}
