package vis

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
	"quantumdd/internal/verify"
)

func bell(t testing.TB) (*dd.Pkg, dd.VEdge) {
	t.Helper()
	p := dd.New(2)
	h := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.H, nil)), 1)
	cx := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.X, nil)), 0, dd.Control{Qubit: 1})
	return p, p.MultMV(cx, p.MultMV(h, p.ZeroState()))
}

func TestFromVectorStructure(t *testing.T) {
	_, e := bell(t)
	g := FromVector(e)
	// 3 DD nodes + terminal (Fig. 2(a)).
	if g.NodeCount() != 3 {
		t.Fatalf("graph has %d non-terminal nodes, want 3", g.NodeCount())
	}
	if len(g.Nodes) != 4 {
		t.Fatalf("graph has %d nodes incl. terminal, want 4", len(g.Nodes))
	}
	// Bell DD has 4 non-zero edges and 2 zero stubs.
	var zero, solid int
	for _, e := range g.Edges {
		if e.Zero {
			zero++
		} else {
			solid++
		}
	}
	if zero != 2 || solid != 4 {
		t.Fatalf("edges: %d solid, %d stubs; want 4 and 2", solid, zero)
	}
	if g.Levels != 2 {
		t.Fatalf("levels = %d", g.Levels)
	}
}

func TestFromMatrixStructure(t *testing.T) {
	p := dd.New(2)
	cx := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.X, nil)), 0, dd.Control{Qubit: 1})
	g := FromMatrix(cx)
	if g.NodeCount() != 3 {
		t.Fatalf("CNOT graph has %d nodes, want 3 (Fig. 2(c))", g.NodeCount())
	}
	// Port counts must be 4 for matrix nodes.
	for _, e := range g.Edges {
		if e.NPorts != 4 {
			t.Fatalf("matrix edge with %d ports", e.NPorts)
		}
	}
}

func TestZeroVectorGraph(t *testing.T) {
	g := FromVector(dd.VZero())
	if len(g.Nodes) != 1 || !g.Nodes[0].Terminal {
		t.Fatalf("zero vector graph malformed: %+v", g.Nodes)
	}
	svg := g.SVG(Style{})
	if !strings.Contains(svg, "<svg") {
		t.Fatal("zero graph does not render")
	}
}

func TestLayoutProducesDistinctPositions(t *testing.T) {
	p := dd.New(3)
	u, _, err := verify.BuildFunctionality(p, algorithms.QFT(3))
	if err != nil {
		t.Fatal(err)
	}
	g := FromMatrix(u)
	w, h := g.Layout()
	if w <= 0 || h <= 0 {
		t.Fatal("degenerate canvas")
	}
	seen := map[[2]int]bool{}
	for _, n := range g.Nodes {
		key := [2]int{int(n.X * 10), int(n.Y * 10)}
		if seen[key] {
			t.Fatalf("two nodes at the same position %v", key)
		}
		seen[key] = true
		if n.X < 0 || n.X > w || n.Y < 0 || n.Y > h {
			t.Fatalf("node outside canvas: (%v,%v) vs %vx%v", n.X, n.Y, w, h)
		}
	}
	// Levels must map to strictly increasing rows top-down.
	yByLevel := map[int]float64{}
	for _, n := range g.Nodes {
		if prev, ok := yByLevel[n.Level]; ok && prev != n.Y {
			t.Fatalf("level %d spread over rows %v and %v", n.Level, prev, n.Y)
		}
		yByLevel[n.Level] = n.Y
	}
	if !(yByLevel[2] < yByLevel[1] && yByLevel[1] < yByLevel[0] && yByLevel[0] < yByLevel[-1]) {
		t.Fatalf("rows not ordered: %v", yByLevel)
	}
}

func TestClassicSVGConventions(t *testing.T) {
	_, e := bell(t)
	g := FromVector(e)
	svg := g.SVG(Style{Mode: Classic})
	// Dashed root edge (weight 1/√2 ≠ 1) and its label.
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Fatal("classic style draws non-unit weights dashed")
	}
	if !strings.Contains(svg, "1/√2") {
		t.Fatal("classic style labels edge weights")
	}
	// 0-stubs drawn as retracted ticks labelled 0.
	if !strings.Contains(svg, ">0</text>") {
		t.Fatal("classic style renders 0-stubs")
	}
	// Node labels q0/q1 and terminal box.
	for _, want := range []string{">q0<", ">q1<", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q", want)
		}
	}
}

func TestColoredSVGConventions(t *testing.T) {
	p := dd.New(1)
	// S|+>: phase i on the |1> branch → non-trivial hue.
	h := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.H, nil)), 0)
	s := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.S, nil)), 0)
	e := p.MultMV(s, p.MultMV(h, p.ZeroState()))
	g := FromVector(e)
	svg := g.SVG(Style{Mode: Colored})
	if strings.Contains(svg, "stroke-dasharray") {
		t.Fatal("colored style must not dash edges")
	}
	if strings.Contains(svg, "1/√2") {
		t.Fatal("colored style must not label weights")
	}
	// Phase i = π/2 → hue 90° → #80ff00.
	if !strings.Contains(svg, PhaseColor(complex(0, 1))) {
		t.Fatalf("svg missing phase color %s:\n%s", PhaseColor(complex(0, 1)), svg)
	}
}

func TestModernSVGHasBars(t *testing.T) {
	_, e := bell(t)
	g := FromVector(e)
	svg := g.SVG(Style{Mode: Modern})
	if !strings.Contains(svg, "rx=\"8\"") {
		t.Fatal("modern style uses rounded nodes")
	}
	if strings.Count(svg, "#35507a") < 2 {
		t.Fatal("modern style draws probability bars")
	}
}

func TestPhaseColorWheel(t *testing.T) {
	cases := []struct {
		w    complex128
		want string
	}{
		{1, "#ff0000"},               // phase 0 → red
		{complex(0, 1), "#80ff00"},   // π/2 → chartreuse
		{-1, "#00ffff"},              // π → cyan
		{complex(0, -1), "#8000ff"},  // 3π/2 → violet
		{complex(0.5, 0), "#ff0000"}, // magnitude ignored
	}
	for _, c := range cases {
		if got := PhaseColor(c.w); got != c.want {
			t.Errorf("PhaseColor(%v) = %s, want %s", c.w, got, c.want)
		}
	}
}

func TestMagnitudeWidth(t *testing.T) {
	if w := MagnitudeWidth(1); math.Abs(w-3) > 1e-9 {
		t.Fatalf("width(1) = %v", w)
	}
	if w1, wHalf := MagnitudeWidth(1), MagnitudeWidth(0.5); wHalf >= w1 {
		t.Fatal("width not monotone in magnitude")
	}
	if w := MagnitudeWidth(1e-6); w < 0.5 {
		t.Fatal("faint edges must keep a visible floor")
	}
	if w := MagnitudeWidth(cmplx.Exp(complex(0, 1)) * 5); w > 3.01 {
		t.Fatal("width must clamp at magnitude 1")
	}
}

func TestColorWheelSVG(t *testing.T) {
	svg := ColorWheelSVG(160)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "π/2") {
		t.Fatal("color wheel legend malformed")
	}
	if strings.Count(svg, "<path") < 36 {
		t.Fatal("wheel has too few segments")
	}
}

func TestDOTOutput(t *testing.T) {
	_, e := bell(t)
	g := FromVector(e)
	dot := g.DOT(Style{Mode: Classic})
	for _, want := range []string{"digraph dd", "rank=same", "shape=circle", "shape=box", "style=dashed", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot missing %q:\n%s", want, dot)
		}
	}
	colored := g.DOT(Style{Mode: Colored})
	if !strings.Contains(colored, "penwidth") || !strings.Contains(colored, "color=\"#") {
		t.Fatal("colored dot missing attributes")
	}
}

func TestFrameCaption(t *testing.T) {
	_, e := bell(t)
	g := FromVector(e)
	svg := FrameSVG(g, Style{}, "after cx q[1],q[0]")
	if !strings.Contains(svg, "after cx q[1],q[0]") {
		t.Fatal("caption not rendered")
	}
	// Captions must be escaped.
	svg = FrameSVG(g, Style{}, "a<b&c")
	if !strings.Contains(svg, "a&lt;b&amp;c") {
		t.Fatal("caption not escaped")
	}
}

func TestSharedNodeRenderedOnce(t *testing.T) {
	// |++> has one node per level with both edges to the same child:
	// sharing must produce 2 nodes, not 3.
	p := dd.New(2)
	h0 := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.H, nil)), 0)
	h1 := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.H, nil)), 1)
	e := p.MultMV(h1, p.MultMV(h0, p.ZeroState()))
	g := FromVector(e)
	if g.NodeCount() != 2 {
		t.Fatalf("|++> graph has %d nodes, want 2 (sharing)", g.NodeCount())
	}
	// Both edges of the root go to the same child.
	var roots []Edge
	for _, ed := range g.Edges {
		if ed.From == g.Root {
			roots = append(roots, ed)
		}
	}
	if len(roots) != 2 || roots[0].To != roots[1].To {
		t.Fatalf("root edges not shared: %+v", roots)
	}
}

func TestTextRenderer(t *testing.T) {
	_, e := bell(t)
	g := FromVector(e)
	text := g.Text()
	// Note: under 2-norm normalization the 1/√2 lives on the q1 node's
	// outgoing edges (root weight 1); Fig. 2(a) draws the equivalent
	// max-norm variant with 1/√2 on the root. Amplitudes agree.
	for _, want := range []string{"root --(1)-->", "--(1/√2)-->", "q1", "q0", "[1]", "] 0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text render missing %q:\n%s", want, text)
		}
	}
	// One printed block per non-terminal node: sharing must hold.
	if got := strings.Count(text, "\n#"); got != g.NodeCount()-1 {
		// The root node line does not start with \n# if it is first...
		// count lines starting with '#'
		lines := 0
		for _, l := range strings.Split(text, "\n") {
			if strings.HasPrefix(l, "#") {
				lines++
			}
		}
		if lines != g.NodeCount() {
			t.Fatalf("text prints %d node blocks, want %d:\n%s", lines, g.NodeCount(), text)
		}
	}
	if got := FromVector(dd.VZero()).Text(); !strings.Contains(got, "root") {
		t.Fatalf("zero diagram text: %q", got)
	}
	// Matrix diagrams render with 4 ports.
	p := dd.New(2)
	cx := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.X, nil)), 0, dd.Control{Qubit: 1})
	mtext := FromMatrix(cx).Text()
	if !strings.Contains(mtext, "[3]") {
		t.Fatalf("matrix text missing port 3:\n%s", mtext)
	}
}

func TestAnimationSVG(t *testing.T) {
	_, e := bell(t)
	g := FromVector(e)
	f1 := g.SVG(Style{Mode: Classic})
	f2 := g.SVG(Style{Mode: Colored})
	anim, err := AnimationSVG([]string{f1, f2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(anim, "<set attributeName=\"visibility\"") != 2 {
		t.Fatalf("animation frame count wrong:\n%s", anim[:200])
	}
	if !strings.Contains(anim, "anim0") || !strings.Contains(anim, "dur=\"0.50s\"") {
		t.Fatal("animation timing missing")
	}
	// A single self-contained <svg> document.
	if strings.Count(anim, "<svg") != 1 || strings.Count(anim, "</svg>") != 1 {
		t.Fatal("nested svg documents leaked into the animation")
	}
	if _, err := AnimationSVG(nil, 1); err == nil {
		t.Fatal("empty frame list accepted")
	}
	if _, err := AnimationSVG([]string{"not svg"}, 1); err == nil {
		t.Fatal("malformed frame accepted")
	}
}
