package vis

import (
	"fmt"
	"sort"
	"strings"

	"quantumdd/internal/cnum"
)

// Text renders the graph as indented ASCII, one line per node with its
// outgoing edges — the terminal-friendly view used by ddsim -draw.
// Shared nodes are printed once and referenced by #id afterwards, so
// the output size matches the diagram size (not the 2^n expansion):
//
//	root --(1/√2)--> #0
//	#0 q1
//	  [0] --(1)--> #1
//	  [1] --(1)--> #2
//	#1 q0
//	  [0] --(1)--> [1]
//	  [1] 0
//	...
func (g *Graph) Text() string {
	var b strings.Builder
	if g.Root == noNode {
		return "(empty diagram)\n"
	}
	fmt.Fprintf(&b, "root --(%s)--> %s\n", cnum.FormatComplex(g.RootWeight), nodeRef(&g.Nodes[g.Root]))
	// Group edges by source for stable printing.
	edgesBySource := map[NodeID][]Edge{}
	for _, e := range g.Edges {
		edgesBySource[e.From] = append(edgesBySource[e.From], e)
	}
	// Print nodes in descending level, then id, for a top-down read.
	order := make([]int, 0, len(g.Nodes))
	for i := range g.Nodes {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := &g.Nodes[order[a]], &g.Nodes[order[b]]
		if na.Level != nb.Level {
			return na.Level > nb.Level
		}
		return na.ID < nb.ID
	})
	for _, idx := range order {
		n := &g.Nodes[idx]
		if n.Terminal {
			continue
		}
		fmt.Fprintf(&b, "%s %s\n", nodeRef(n), n.Label)
		edges := edgesBySource[n.ID]
		sort.Slice(edges, func(a, b int) bool { return edges[a].Port < edges[b].Port })
		for _, e := range edges {
			if e.Zero {
				fmt.Fprintf(&b, "  [%d] 0\n", e.Port)
				continue
			}
			fmt.Fprintf(&b, "  [%d] --(%s)--> %s\n", e.Port, cnum.FormatComplex(e.Weight), nodeRef(&g.Nodes[e.To]))
		}
	}
	return b.String()
}

func nodeRef(n *Node) string {
	if n.Terminal {
		return "[1]"
	}
	return fmt.Sprintf("#%d", n.ID)
}
