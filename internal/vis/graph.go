// Package vis renders quantum decision diagrams in the styles of the
// paper's tool (Sec. IV-A): a "classic" research-paper look with
// explicit edge-weight labels, dashed non-unit edges and retracted
// 0-stubs; a "colored" look where each edge weight's magnitude is
// shown as line thickness and its complex phase as an HLS color-wheel
// hue (Fig. 7(b)); and a "modern" look with amplitude bars. Output
// formats are self-contained SVG and Graphviz DOT.
package vis

import (
	"fmt"

	"quantumdd/internal/dd"
)

// Kind distinguishes vector (state) diagrams from matrix (operation)
// diagrams.
type Kind int

const (
	KindVector Kind = iota
	KindMatrix
)

// NodeID indexes a node within a Graph. The pseudo root-arrow source
// has no NodeID; the terminal node has one.
type NodeID int

const noNode NodeID = -1

// Node is a renderable decision-diagram node.
type Node struct {
	ID       NodeID
	Level    int    // qubit level, -1 for the terminal
	Label    string // "q2", or "1" for the terminal
	Terminal bool
	X, Y     float64 // set by layout (centre position)
	// Probs holds |w|² per successor port for vector nodes; used by
	// the modern style's amplitude bars.
	Probs []float64
}

// Edge is a renderable successor edge.
type Edge struct {
	From   NodeID
	To     NodeID // noNode for a retracted zero stub
	Port   int    // successor index at From (0..1 vector, 0..3 matrix)
	NPorts int
	Weight complex128
	Zero   bool
}

// Graph is the extracted, layout-ready form of a decision diagram.
type Graph struct {
	Kind       Kind
	Nodes      []Node
	Edges      []Edge
	RootWeight complex128
	Root       NodeID
	Levels     int // number of qubit levels spanned (root level + 1)
}

// NodeCount reports the number of non-terminal nodes, matching the
// paper's node-count convention (Ex. 6).
func (g *Graph) NodeCount() int {
	n := 0
	for _, nd := range g.Nodes {
		if !nd.Terminal {
			n++
		}
	}
	return n
}

// FromVector extracts the graph of a state diagram.
func FromVector(e dd.VEdge) *Graph {
	g := &Graph{Kind: KindVector, RootWeight: e.W, Root: noNode}
	if e.IsZero() {
		// The zero vector renders as a lone terminal with weight 0.
		id := g.addTerminal()
		g.Root = id
		return g
	}
	ids := map[*dd.VNode]NodeID{}
	var term NodeID = noNode
	var walk func(n *dd.VNode) NodeID
	walk = func(n *dd.VNode) NodeID {
		if id, ok := ids[n]; ok {
			return id
		}
		id := NodeID(len(g.Nodes))
		g.Nodes = append(g.Nodes, Node{
			ID:    id,
			Level: n.V,
			Label: fmt.Sprintf("q%d", n.V),
			Probs: []float64{prob(n.E[0].W), prob(n.E[1].W)},
		})
		ids[n] = id
		if n.V+1 > g.Levels {
			g.Levels = n.V + 1
		}
		for port, c := range n.E {
			switch {
			case c.W == 0:
				g.Edges = append(g.Edges, Edge{From: id, To: noNode, Port: port, NPorts: 2, Zero: true})
			case c.IsTerminal():
				if term == noNode {
					term = g.addTerminal()
				}
				g.Edges = append(g.Edges, Edge{From: id, To: term, Port: port, NPorts: 2, Weight: c.W})
			default:
				child := walk(c.N)
				g.Edges = append(g.Edges, Edge{From: id, To: child, Port: port, NPorts: 2, Weight: c.W})
			}
		}
		return id
	}
	g.Root = walk(e.N)
	return g
}

// FromMatrix extracts the graph of an operation diagram.
func FromMatrix(e dd.MEdge) *Graph {
	g := &Graph{Kind: KindMatrix, RootWeight: e.W, Root: noNode}
	if e.IsZero() {
		id := g.addTerminal()
		g.Root = id
		return g
	}
	ids := map[*dd.MNode]NodeID{}
	var term NodeID = noNode
	var walk func(n *dd.MNode) NodeID
	walk = func(n *dd.MNode) NodeID {
		if id, ok := ids[n]; ok {
			return id
		}
		id := NodeID(len(g.Nodes))
		g.Nodes = append(g.Nodes, Node{
			ID:    id,
			Level: n.V,
			Label: fmt.Sprintf("q%d", n.V),
		})
		ids[n] = id
		if n.V+1 > g.Levels {
			g.Levels = n.V + 1
		}
		for port, c := range n.E {
			switch {
			case c.W == 0:
				g.Edges = append(g.Edges, Edge{From: id, To: noNode, Port: port, NPorts: 4, Zero: true})
			case c.IsTerminal():
				if term == noNode {
					term = g.addTerminal()
				}
				g.Edges = append(g.Edges, Edge{From: id, To: term, Port: port, NPorts: 4, Weight: c.W})
			default:
				child := walk(c.N)
				g.Edges = append(g.Edges, Edge{From: id, To: child, Port: port, NPorts: 4, Weight: c.W})
			}
		}
		return id
	}
	g.Root = walk(e.N)
	return g
}

func (g *Graph) addTerminal() NodeID {
	id := NodeID(len(g.Nodes))
	g.Nodes = append(g.Nodes, Node{ID: id, Level: -1, Label: "1", Terminal: true})
	return id
}

func prob(w complex128) float64 {
	return real(w)*real(w) + imag(w)*imag(w)
}
