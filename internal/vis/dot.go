package vis

import (
	"fmt"
	"strings"

	"quantumdd/internal/cnum"
)

// DOT renders the graph in Graphviz dot syntax for users who want to
// post-process diagrams with the standard toolchain. Levels are pinned
// with rank=same groups; zero stubs become point-shaped sinks, and the
// colored style options carry over as penwidth/color attributes.
func (g *Graph) DOT(style Style) string {
	var b strings.Builder
	b.WriteString("digraph dd {\n")
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n  edge [arrowsize=0.6];\n")
	// Invisible root arrow source.
	if g.Root != noNode {
		b.WriteString("  root [shape=none, label=\"\"];\n")
	}
	// Rank groups per level.
	byLevel := map[int][]NodeID{}
	for _, n := range g.Nodes {
		byLevel[n.Level] = append(byLevel[n.Level], n.ID)
	}
	for _, n := range g.Nodes {
		if n.Terminal {
			fmt.Fprintf(&b, "  n%d [shape=box, label=\"1\", width=0.3, height=0.3];\n", n.ID)
		} else {
			fmt.Fprintf(&b, "  n%d [shape=circle, label=\"%s\"];\n", n.ID, n.Label)
		}
	}
	for level, ids := range byLevel {
		if len(ids) < 2 || level < 0 {
			continue
		}
		b.WriteString("  { rank=same;")
		for _, id := range ids {
			fmt.Fprintf(&b, " n%d;", id)
		}
		b.WriteString(" }\n")
	}
	stubID := 0
	if g.Root != noNode {
		fmt.Fprintf(&b, "  root -> n%d [%s];\n", g.Root, dotEdgeAttrs(style, g.RootWeight))
	}
	for _, e := range g.Edges {
		if e.Zero {
			if style.Mode == Colored {
				continue
			}
			fmt.Fprintf(&b, "  z%d [shape=point, width=0.04, color=gray];\n", stubID)
			fmt.Fprintf(&b, "  n%d -> z%d [style=dotted, color=gray, label=\"0\", fontsize=8];\n", e.From, stubID)
			stubID++
			continue
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, dotEdgeAttrs(style, e.Weight))
	}
	b.WriteString("}\n")
	return b.String()
}

func dotEdgeAttrs(style Style, w complex128) string {
	var attrs []string
	if style.labels() && !cnum.IsOne(w, 1e-9) {
		attrs = append(attrs, fmt.Sprintf("label=\"%s\"", strings.ReplaceAll(cnum.FormatComplex(w), "\"", "'")), "fontsize=9")
	}
	switch style.Mode {
	case Classic:
		if !cnum.IsOne(w, 1e-9) {
			attrs = append(attrs, "style=dashed")
		}
	case Colored:
		attrs = append(attrs, fmt.Sprintf("color=\"%s\"", PhaseColor(w)), fmt.Sprintf("penwidth=%.2f", MagnitudeWidth(w)))
	}
	return strings.Join(attrs, ", ")
}
