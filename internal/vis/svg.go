package vis

import (
	"fmt"
	"math"
	"strings"

	"quantumdd/internal/cnum"
)

// Mode selects one of the tool's visualization styles (Fig. 7).
type Mode int

const (
	// Classic mimics research-paper figures: weight labels on edges,
	// dashed lines for non-unit weights, 0-stubs retracted into nodes.
	Classic Mode = iota
	// Colored drops the labels and encodes magnitude as thickness and
	// phase as an HLS hue (Fig. 7(c), Fig. 6).
	Colored
	// Modern uses rounded nodes with branch-probability bars for a
	// more approachable look (Fig. 8/9 screenshots).
	Modern
)

// Style bundles the render options of the settings panel.
type Style struct {
	Mode Mode
	// ShowEdgeLabels forces/suppresses weight labels (Classic defaults
	// to true, others to false).
	ShowEdgeLabels *bool
}

func (s Style) labels() bool {
	if s.ShowEdgeLabels != nil {
		return *s.ShowEdgeLabels
	}
	return s.Mode == Classic
}

// svgBuilder accumulates SVG markup.
type svgBuilder struct {
	buf strings.Builder
}

func (b *svgBuilder) open(w, h float64) {
	fmt.Fprintf(&b.buf, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" font-family=\"Helvetica,Arial,sans-serif\">\n", w, h, w, h)
	fmt.Fprintf(&b.buf, "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n")
}

func (b *svgBuilder) close() { b.buf.WriteString("</svg>\n") }

// String returns the accumulated SVG markup.
func (b *svgBuilder) String() string { return b.buf.String() }

func (b *svgBuilder) line(x1, y1, x2, y2 float64, stroke string, width float64, dashed bool) {
	dash := ""
	if dashed {
		dash = " stroke-dasharray=\"5,3\""
	}
	fmt.Fprintf(&b.buf, "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"%.2f\"%s/>\n", x1, y1, x2, y2, stroke, width, dash)
}

func (b *svgBuilder) text(x, y float64, s string, size float64, anchor string) {
	fmt.Fprintf(&b.buf, "<text x=\"%.1f\" y=\"%.1f\" font-size=\"%.0f\" text-anchor=\"%s\">%s</text>\n", x, y, size, anchor, escape(s))
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// SVG renders the graph (which must have been laid out by the caller
// or will be laid out here) in the given style.
func (g *Graph) SVG(style Style) string {
	w, h := g.Layout()
	var b svgBuilder
	b.open(w, h)

	portX := func(n *Node, port, nports int) float64 {
		span := nodeRadius * 1.6
		return n.X - span/2 + span*(float64(port)+0.5)/float64(nports)
	}

	// Root arrow.
	if g.Root != noNode {
		rn := &g.Nodes[g.Root]
		b.line(rn.X, rn.Y-levelGap, rn.X, rn.Y-nodeRadius-2, edgeColor(style, g.RootWeight), edgeWidth(style, g.RootWeight), dashedFor(style, g.RootWeight))
		if style.labels() && !cnum.IsOne(g.RootWeight, 1e-9) {
			b.text(rn.X+6, rn.Y-levelGap+14, cnum.FormatComplex(g.RootWeight), 11, "start")
		}
		arrowHead(&b, rn.X, rn.Y-nodeRadius-2)
	}

	// Edges beneath nodes.
	for _, e := range g.Edges {
		from := &g.Nodes[e.From]
		x1 := portX(from, e.Port, e.NPorts)
		y1 := from.Y + nodeRadius - 2
		if e.Zero {
			// Retracted 0-stub: a short tick with a tiny "0".
			if style.Mode != Colored {
				b.line(x1, y1, x1, y1+8, "#999999", 1, false)
				b.text(x1, y1+17, "0", 8, "middle")
			}
			continue
		}
		to := &g.Nodes[e.To]
		x2, y2 := to.X, to.Y-nodeRadius+2
		if to.Terminal {
			y2 = to.Y - terminalSize/2 - 1
		}
		b.line(x1, y1, x2, y2, edgeColor(style, e.Weight), edgeWidth(style, e.Weight), dashedFor(style, e.Weight))
		if style.labels() && !cnum.IsOne(e.Weight, 1e-9) {
			mx, my := (x1+x2)/2, (y1+y2)/2
			b.text(mx+5, my, cnum.FormatComplex(e.Weight), 10, "start")
		}
	}

	// Nodes on top.
	for i := range g.Nodes {
		n := &g.Nodes[i]
		switch {
		case n.Terminal:
			fmt.Fprintf(&b.buf, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"white\" stroke=\"black\" stroke-width=\"1.4\"/>\n",
				n.X-terminalSize/2, n.Y-terminalSize/2, terminalSize, terminalSize)
			b.text(n.X, n.Y+4, "1", 12, "middle")
		case style.Mode == Modern:
			wBox, hBox := nodeRadius*2.4, nodeRadius*1.8
			fmt.Fprintf(&b.buf, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" rx=\"8\" fill=\"#eef4ff\" stroke=\"#35507a\" stroke-width=\"1.4\"/>\n",
				n.X-wBox/2, n.Y-hBox/2, wBox, hBox)
			b.text(n.X, n.Y-2, n.Label, 11, "middle")
			// Probability bars for vector nodes: the squared branch
			// weights (the values the measurement dialog shows).
			if g.Kind == KindVector && len(n.Probs) == 2 {
				barW := wBox/2 - 6
				for k, p := range n.Probs {
					x := n.X - wBox/2 + 4 + float64(k)*(barW+4)
					fmt.Fprintf(&b.buf, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"4\" fill=\"#d4ddec\"/>\n", x, n.Y+5, barW)
					fmt.Fprintf(&b.buf, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"4\" fill=\"#35507a\"/>\n", x, n.Y+5, barW*clamp01(p))
				}
			}
		default:
			fmt.Fprintf(&b.buf, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"white\" stroke=\"black\" stroke-width=\"1.4\"/>\n", n.X, n.Y, nodeRadius)
			b.text(n.X, n.Y+4, n.Label, 12, "middle")
		}
	}
	b.close()
	return b.String()
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func arrowHead(b *svgBuilder, x, y float64) {
	fmt.Fprintf(&b.buf, "<path d=\"M%.1f,%.1f l-4,-7 l8,0 Z\" fill=\"black\"/>\n", x, y)
}

func edgeColor(s Style, w complex128) string {
	if s.Mode == Colored {
		return PhaseColor(w)
	}
	return "black"
}

func edgeWidth(s Style, w complex128) float64 {
	if s.Mode == Colored {
		return MagnitudeWidth(w)
	}
	return 1.4
}

// dashedFor implements the classic-style convention: edges with a
// weight different from 1 are dashed.
func dashedFor(s Style, w complex128) bool {
	if s.Mode != Classic {
		return false
	}
	return !cnum.IsOne(w, 1e-9)
}

// frameSVG is used by the web layer: it prefixes the diagram with a
// caption line (e.g. the last executed gate).
func frameSVG(g *Graph, style Style, caption string) string {
	svg := g.SVG(style)
	if caption == "" {
		return svg
	}
	caption = escape(caption)
	insert := fmt.Sprintf("<text x=\"8\" y=\"16\" font-size=\"12\" fill=\"#555\">%s</text>\n", caption)
	idx := strings.Index(svg, "/>\n") // after the background rect
	if idx < 0 {
		return svg
	}
	return svg[:idx+3] + insert + svg[idx+3:]
}

// FrameSVG renders a diagram with a caption; exported for the web UI
// and the animation exporter.
func FrameSVG(g *Graph, style Style, caption string) string { return frameSVG(g, style, caption) }

// ProbabilityOf formats a probability for dialog rendering.
func ProbabilityOf(p float64) string {
	return fmt.Sprintf("%.1f%%", math.Round(p*1000)/10)
}
