package obs

// Process-identity metric families: process_start_time_seconds lets a
// scraper detect restarts (the value jumps), and build_info carries
// the build's identifying labels with a constant value of 1 — the
// standard join-target pattern, so dashboards can overlay deploys on
// any other series.

import (
	"runtime"
	"runtime/debug"
	"time"
)

// processStart is captured at package initialization — close enough to
// process start for restart detection, and stable across registries.
var processStart = time.Now()

// RegisterProcessMetrics registers process_start_time_seconds and
// build_info on r. Idempotent: repeated calls return the same series.
func RegisterProcessMetrics(r *Registry) {
	r.Gauge("process_start_time_seconds",
		"Unix time the process started, for scraper-side restart detection.").
		Set(float64(processStart.UnixNano()) / 1e9)
	version, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				revision = s.Value
			}
		}
	}
	r.Gauge("build_info",
		"Build metadata as labels; the value is always 1.",
		L("go_version", runtime.Version()),
		L("version", version),
		L("revision", revision)).Set(1)
}
