// Package obs is the observability layer of the reproduction: a
// zero-dependency metrics registry with Prometheus text exposition,
// an HTTP handler for scraping, an admin mux bundling pprof and
// expvar, and a collector bridging the dd engine's counters into
// fleet-readable time series.
//
// The registry is built for hot paths: counter increments, gauge
// stores and histogram observations are single atomic operations and
// allocate nothing. Registration (which takes a lock and allocates)
// happens once at startup; get-or-create semantics make repeated
// registration of the same series return the existing handle, so
// several servers in one process can share the Default registry.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a series. Series of the
// same family (metric name) with different label sets are distinct.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing value. All methods are safe
// for concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as atomic float
// bits. All methods are safe for concurrent use and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; use Set where a full value is available).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. The bucket layout
// is immutable after registration; Observe is a binary search plus two
// atomic adds and one CAS, with no allocation.
type Histogram struct {
	bounds []float64 // upper bounds, strictly increasing; +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSeconds records a duration given in nanoseconds as seconds —
// the unit every *_seconds family uses.
func (h *Histogram) ObserveSeconds(ns int64) { h.Observe(float64(ns) / 1e9) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// LatencyBuckets is the default bucket layout for *_seconds latency
// histograms: roughly log-spaced from 1µs to 10s, resolving both the
// sub-millisecond DD operations and multi-second fast-forwards.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExponentialBuckets returns n bucket bounds starting at start and
// multiplying by factor, for callers needing a custom layout.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// series is one labelled instance inside a family.
type series struct {
	labels string // rendered `k1="v1",k2="v2"` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	ordered []*series
	byLabel map[string]*series
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu        sync.Mutex
	families  map[string]*family
	ordered   []*family
	gatherers []func()
}

// Default is the process-wide registry the servers and CLI tools use
// unless given their own.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// AddGatherer registers a hook that runs at the start of every
// WritePrometheus call, before the families are rendered. Gatherers
// refresh point-in-time gauges (table loads, live sessions) so
// scrapes always observe fresh values without a background poller.
func (r *Registry) AddGatherer(f func()) {
	r.mu.Lock()
	r.gatherers = append(r.gatherers, f)
	r.mu.Unlock()
}

// Counter returns the counter series name{labels...}, registering it
// on first use. Registering an existing series returns the same
// handle; re-registering a name with a different kind panics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.series(name, help, kindCounter, labels)
	return s.c
}

// Gauge returns the gauge series name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.series(name, help, kindGauge, labels)
	return s.g
}

// Histogram returns the histogram series name{labels...} with the
// given bucket upper bounds (strictly increasing; +Inf is implicit).
// The bounds of an already-registered series are not changed.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds must be strictly increasing", name))
		}
	}
	s := r.seriesWith(name, help, kindHistogram, labels, func() *series {
		h := &Histogram{bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Uint64, len(bounds)+1)
		return &series{h: h}
	})
	return s.h
}

func (r *Registry) series(name, help string, kind metricKind, labels []Label) *series {
	return r.seriesWith(name, help, kind, labels, func() *series {
		switch kind {
		case kindCounter:
			return &series{c: &Counter{}}
		default:
			return &series{g: &Gauge{}}
		}
	})
}

func (r *Registry) seriesWith(name, help string, kind metricKind, labels []Label, mk func() *series) *series {
	lbl := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byLabel: make(map[string]*series)}
		r.families[name] = f
		r.ordered = append(r.ordered, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if s := f.byLabel[lbl]; s != nil {
		return s
	}
	s := mk()
	s.labels = lbl
	f.byLabel[lbl] = s
	f.ordered = append(f.ordered, s)
	return s
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the Prometheus label-value escaping rules: in
// label values, backslash, double-quote and line feed must be escaped
// (text exposition format 0.0.4).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-line escaping rules: only backslash and
// line feed are escaped there — a double quote is legal in HELP text
// and must pass through verbatim.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// WritePrometheus runs the gather hooks and renders every family in
// registration order in the Prometheus text exposition format
// (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	gatherers := append([]func(){}, r.gatherers...)
	r.mu.Unlock()
	for _, g := range gatherers {
		g()
	}
	r.mu.Lock()
	fams := append([]*family{}, r.ordered...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.ordered {
			switch f.kind {
			case kindCounter:
				writeSeries(bw, f.name, s.labels, "", strconv.FormatUint(s.c.Value(), 10))
			case kindGauge:
				writeSeries(bw, f.name, s.labels, "", formatFloat(s.g.Value()))
			case kindHistogram:
				writeHistogram(bw, f.name, s.labels, s.h)
			}
		}
	}
	return bw.Flush()
}

func writeHistogram(w *bufio.Writer, name, labels string, h *Histogram) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSeries(w, name+"_bucket", labels, `le="`+formatFloat(bound)+`"`, strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSeries(w, name+"_bucket", labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
	writeSeries(w, name+"_sum", labels, "", formatFloat(h.Sum()))
	writeSeries(w, name+"_count", labels, "", strconv.FormatUint(h.Count(), 10))
}

func writeSeries(w *bufio.Writer, name, labels, extra, value string) {
	w.WriteString(name)
	if labels != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		if labels != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SeriesPoint is a point-in-time reading of one series, handed to the
// VisitSeries callback. For histograms, Value carries the observation
// count, Sum the observation sum, Bounds the bucket upper bounds
// (without the implicit +Inf) and Counts the per-bucket totals
// (len(Bounds)+1 entries, the last being the +Inf bucket; counts are
// raw per-bucket, not cumulative). Bounds and Counts are scratch
// storage owned by the walk — copy them before the callback returns.
type SeriesPoint struct {
	Name   string
	Labels string // rendered `k1="v1",k2="v2"` or ""
	Kind   string // "counter", "gauge", or "histogram"
	Value  float64
	Sum    float64
	Bounds []float64
	Counts []uint64
}

// VisitSeries reads every registered series once and passes the
// current value to f in registration order. It does not run the
// gather hooks — callers sampling periodically (the tsdb sampler)
// refresh point-in-time gauges themselves before visiting, so one
// refresh serves the whole sweep.
func (r *Registry) VisitSeries(f func(p SeriesPoint)) {
	r.mu.Lock()
	fams := append([]*family{}, r.ordered...)
	r.mu.Unlock()
	var counts []uint64
	for _, fam := range fams {
		for _, s := range fam.ordered {
			p := SeriesPoint{Name: fam.name, Labels: s.labels, Kind: fam.kind.String()}
			switch fam.kind {
			case kindCounter:
				p.Value = float64(s.c.Value())
			case kindGauge:
				p.Value = s.g.Value()
			case kindHistogram:
				h := s.h
				p.Value = float64(h.Count())
				p.Sum = h.Sum()
				p.Bounds = h.bounds
				if cap(counts) < len(h.counts) {
					counts = make([]uint64, len(h.counts))
				}
				counts = counts[:len(h.counts)]
				for i := range h.counts {
					counts[i] = h.counts[i].Load()
				}
				p.Counts = counts
			}
			f(p)
		}
	}
}
