// Package trace is the span-tracing layer of the reproduction: a
// zero-dependency tracer whose spans form a tree — HTTP request →
// session operation (step / fast-forward / measure / verify round) →
// gate application or fused run → top-level DD operation — and a
// bounded per-session flight recorder holding the most recent
// completed spans.
//
// DD behavior is wildly instance-dependent (Wille et al., CSUR 2022),
// so aggregate histograms cannot answer "where did THIS step's time
// and nodes go". The flight recorder can: every session keeps a
// fixed-capacity ring buffer of completed spans (oldest evicted, with
// an exact dropped-span count), cheap enough to leave on in
// production and exportable at any moment as Chrome trace-event JSON
// (chrome.go) — loadable in chrome://tracing or https://ui.perfetto.dev
// without installing anything, in the spirit of the paper's tool.
//
// Hot-path costs: with no recorder attached to the context, StartSpan
// is two context lookups and allocates nothing — the disabled path is
// guarded by an AllocsPerRun test. With a recorder attached, starting
// a span costs one span allocation plus one context allocation, and
// completing it copies the span into the ring under the recorder
// mutex. Attributes live in a fixed-size inline array, so SetAttr
// never allocates.
//
// Concurrency: a Recorder belongs to one session, and sessions are
// single-goroutine by construction (the web server holds the
// per-session lock for the duration of a request; the CLIs are
// sequential). StartSpan/End and the DD tracer therefore run on the
// session's goroutine only; Snapshot and Dropped take the ring mutex
// and may be called from any goroutine (the trace exporter, the
// debug-bundle builder, a metrics scrape).
package trace

import (
	"context"
	"sync"
	"time"

	"quantumdd/internal/dd"
)

// MaxAttrs bounds the attributes one span can carry. SetAttr beyond
// the bound is dropped silently — attribute presence is best-effort
// diagnostics, not an API contract.
const MaxAttrs = 8

// Attr is one integer-valued span attribute (node counts, cache hits,
// fused widths, microsecond pauses). Integer-only keeps spans
// fixed-size and SetAttr allocation-free.
type Attr struct {
	Key   string
	Value int64
}

// Span is one timed region. Start and Dur are nanoseconds relative to
// the recorder's epoch, so exported timelines start near zero and
// survive wall-clock adjustments (both derive from the monotonic
// reading of time.Since).
type Span struct {
	ID     uint64
	Parent uint64 // 0 = root
	Name   string
	Start  int64 // ns since the recorder epoch
	Dur    int64 // ns

	nattrs int
	attrs  [MaxAttrs]Attr

	// Active-span bookkeeping; nil on completed (ring) copies.
	rec  *Recorder
	prev *Span // enclosing active span, restored as current on End
}

// SetAttr attaches an integer attribute. Safe on a nil span (the
// disabled-tracer path) and on completed spans built with MakeSpan.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil || s.nattrs >= MaxAttrs {
		return
	}
	s.attrs[s.nattrs] = Attr{Key: key, Value: v}
	s.nattrs++
}

// Attrs returns the attached attributes. The slice aliases the span's
// inline storage; callers must not retain it past the span.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	return s.attrs[:s.nattrs]
}

// MakeSpan builds a completed span value — for tests and for callers
// synthesizing timelines to feed Recorder.Emit or WriteChromeTrace.
func MakeSpan(id, parent uint64, name string, startNS, durNS int64, attrs ...Attr) Span {
	s := Span{ID: id, Parent: parent, Name: name, Start: startNS, Dur: durNS}
	for _, a := range attrs {
		s.SetAttr(a.Key, a.Value)
	}
	return s
}

// End completes the span: it computes the duration, restores the
// enclosing span as the recorder's current one, and copies the span
// into the flight-recorder ring. Safe on a nil span. A span must be
// ended exactly once, on the goroutine that started it.
func (s *Span) End() {
	if s == nil {
		return
	}
	r := s.rec
	s.Dur = int64(time.Since(r.epoch)) - s.Start
	r.current = s.prev
	done := *s
	done.rec, done.prev = nil, nil
	done.nattrs = s.nattrs
	r.Emit(done)
}

// Recorder is the per-session flight recorder: a fixed-capacity ring
// of completed spans, oldest-evicted, with an exact eviction count.
type Recorder struct {
	name  string
	epoch time.Time
	cap   int

	mu      sync.Mutex
	ring    []Span // grows up to cap, then wraps
	head    int    // index of the oldest span once the ring is full
	dropped uint64
	nextID  uint64

	// current is the innermost active span. Owner-goroutine only —
	// see the package comment.
	current *Span

	// onDrop, when set, observes each eviction — the web server wires
	// it to the trace_spans_dropped_total counter so the metric
	// reconciles exactly with the per-recorder Dropped count.
	onDrop func()
}

// DefaultCapacity is the flight-recorder size sessions get unless
// configured otherwise: enough for a few hundred gate steps with
// their DD-op children, bounded at roughly 250 KiB per session.
const DefaultCapacity = 1024

// NewRecorder creates a flight recorder holding up to capacity
// completed spans (DefaultCapacity when capacity <= 0). The name
// labels the session's track in exported timelines.
func NewRecorder(name string, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{name: name, epoch: time.Now(), cap: capacity}
}

// Name returns the track label given at construction.
func (r *Recorder) Name() string { return r.name }

// OnDrop installs a hook observing each evicted span. Install before
// the recorder sees traffic; the hook runs outside the ring mutex.
func (r *Recorder) OnDrop(f func()) { r.onDrop = f }

// start begins a span. Owner-goroutine only.
func (r *Recorder) start(name string, parent *Span) *Span {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	s := &Span{
		ID:    id,
		Name:  name,
		Start: int64(time.Since(r.epoch)),
		rec:   r,
		prev:  r.current,
	}
	if parent != nil {
		s.Parent = parent.ID
	} else if r.current != nil {
		s.Parent = r.current.ID
	}
	r.current = s
	return s
}

// Emit appends a completed span to the ring, evicting the oldest one
// when the recorder is at capacity. Spans built elsewhere (tests, the
// DD tracer) enter the recorder through here; ID assignment is the
// caller's business.
func (r *Recorder) Emit(s Span) {
	var evicted bool
	r.mu.Lock()
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.head] = s
		r.head++
		if r.head == r.cap {
			r.head = 0
		}
		r.dropped++
		evicted = true
	}
	r.mu.Unlock()
	if evicted && r.onDrop != nil {
		r.onDrop()
	}
}

// nextSpanID reserves an ID for an externally built span (the DD
// tracer), keeping IDs unique within the recorder.
func (r *Recorder) nextSpanID() uint64 {
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	return id
}

// Snapshot returns the retained spans, oldest first, plus the number
// of spans evicted so far. Safe from any goroutine.
func (r *Recorder) Snapshot() ([]Span, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.ring))
	out = append(out, r.ring[r.head:]...)
	out = append(out, r.ring[:r.head]...)
	return out, r.dropped
}

// Dropped returns the number of spans evicted from the ring so far.
func (r *Recorder) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of retained spans.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// ddOpNames maps dd.Op to a stable pre-built span name, so the DD
// tracer never concatenates strings on the hot path.
var ddOpNames = func() [dd.NumOps]string {
	var names [dd.NumOps]string
	for op := dd.Op(0); op < dd.NumOps; op++ {
		names[op] = "dd:" + op.String()
	}
	return names
}()

// DDTracer returns a dd.TraceFunc bridging the engine's PR 3 trace
// hook into the recorder: every top-level DD operation (multmv,
// applygate, gc, …) becomes a child span of the recorder's current
// active span. Operations completing while no span is active (e.g.
// diagram rendering outside a request span) are not recorded, which
// keeps the ring filled with request-attributable work.
//
// The returned func may be called from goroutines other than the
// session's only while the set of active spans is stable (the
// Monte-Carlo noise harness), since it reads the current span without
// the ring mutex.
func (r *Recorder) DDTracer() dd.TraceFunc {
	return func(op dd.Op, d time.Duration) {
		cur := r.current
		if cur == nil || op >= dd.NumOps {
			return
		}
		end := int64(time.Since(r.epoch))
		r.Emit(Span{
			ID:     r.nextSpanID(),
			Parent: cur.ID,
			Name:   ddOpNames[op],
			Start:  end - int64(d),
			Dur:    int64(d),
		})
	}
}

// Tee combines trace funcs, skipping nils — how a session's DD
// package feeds the metrics histograms and the flight recorder from
// one hook.
func Tee(fns ...dd.TraceFunc) dd.TraceFunc {
	live := fns[:0]
	for _, f := range fns {
		if f != nil {
			live = append(live, f)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := append([]dd.TraceFunc(nil), live...)
	return func(op dd.Op, d time.Duration) {
		for _, f := range out {
			f(op, d)
		}
	}
}

// Context plumbing. Two keys: one for the recorder (attached once per
// request or run), one for the innermost span (rewritten by each
// StartSpan). Lookups on a context without either are allocation-free.
type ctxKey int

const (
	recorderKey ctxKey = iota
	spanKey
)

// With attaches a recorder to the context; spans started from derived
// contexts land in its ring. A nil recorder returns ctx unchanged.
func With(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, recorderKey, r)
}

// FromContext returns the attached recorder, or nil.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}

// Enabled reports whether spans started from this context are
// recorded — callers use it to skip building expensive span names and
// attributes on the disabled path.
func Enabled(ctx context.Context) bool {
	if _, ok := ctx.Value(spanKey).(*Span); ok {
		return true
	}
	return FromContext(ctx) != nil
}

// StartSpan begins a span under the context's current span (or as a
// root when none is active) and returns a derived context carrying it.
// Without a recorder attached it returns (ctx, nil) and allocates
// nothing; all Span methods tolerate nil receivers, so call sites need
// no branches.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	var r *Recorder
	if parent != nil {
		r = parent.rec
	} else if r, _ = ctx.Value(recorderKey).(*Recorder); r == nil {
		return ctx, nil
	}
	s := r.start(name, parent)
	return context.WithValue(ctx, spanKey, s), s
}
