package trace_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quantumdd/internal/dd"
	"quantumdd/internal/obs/trace"
)

// TestDisabledTracerAllocs pins the disabled-path contract: starting,
// attributing, and ending a span on a context without a recorder must
// not allocate. The CI workflow runs this guard explicitly.
func TestDisabledTracerAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := trace.StartSpan(ctx, "noop")
		sp.SetAttr("nodes", 42)
		sp.End()
		_ = ctx2
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan/SetAttr/End allocated %.1f times per run, want 0", allocs)
	}
	if trace.Enabled(ctx) {
		t.Fatal("Enabled() = true on a bare context")
	}
}

func TestEnabled(t *testing.T) {
	ctx := trace.With(context.Background(), trace.NewRecorder("s", 8))
	if !trace.Enabled(ctx) {
		t.Fatal("Enabled() = false with a recorder attached")
	}
	child, sp := trace.StartSpan(ctx, "root")
	if !trace.Enabled(child) {
		t.Fatal("Enabled() = false inside a span")
	}
	sp.End()
	if trace.With(context.Background(), nil) != context.Background() {
		t.Fatal("With(nil) must return the context unchanged")
	}
}

// TestRecorderOverflowProperties is the flight-recorder property test:
// after pushing a randomized nested workload far past capacity,
//
//  1. the ring holds exactly its capacity,
//  2. emitted == retained + dropped (exact eviction accounting),
//  3. the OnDrop hook fired exactly dropped times,
//  4. every retained span still carries its original parent link,
//  5. DD child spans always parent onto a workload span.
func TestRecorderOverflowProperties(t *testing.T) {
	const capacity, spans = 64, 1000
	var hookDrops atomic.Uint64
	rec, emitted, parentOf := runSession(7, capacity, spans, &hookDrops)

	got, dropped := rec.Snapshot()
	if len(got) != capacity {
		t.Fatalf("retained %d spans, want capacity %d", len(got), capacity)
	}
	if uint64(emitted) != uint64(len(got))+dropped {
		t.Fatalf("accounting broken: emitted %d != retained %d + dropped %d", emitted, len(got), dropped)
	}
	if hookDrops.Load() != dropped {
		t.Fatalf("OnDrop fired %d times, Dropped() = %d", hookDrops.Load(), dropped)
	}
	for i, s := range got {
		if s.ID == 0 {
			t.Fatalf("retained span %d has zero id", i)
		}
		if want, ok := parentOf[s.ID]; ok {
			if s.Parent != want {
				t.Fatalf("span %d lost its parent link: got %d, want %d", s.ID, s.Parent, want)
			}
		} else if s.Parent == 0 {
			// DD spans (ids assigned internally) must parent onto a
			// span the workload opened.
			t.Fatalf("DD child span %d recorded without a parent", s.ID)
		}
	}
}

// runSession runs a randomized span workload on its own recorder —
// nested StartSpan/End trees plus DD-tracer child spans, far past the
// ring capacity — with the eviction hook installed before traffic, as
// the web server does. It returns the recorder, the number of spans
// emitted, and the expected parent of every workload span id.
func runSession(seed int64, capacity, spans int, drops *atomic.Uint64) (*trace.Recorder, int, map[uint64]uint64) {
	rec := trace.NewRecorder("sess", capacity)
	rec.OnDrop(func() { drops.Add(1) })
	emitted, parentOf := runSessionOn(rec, seed, spans)
	return rec, emitted, parentOf
}

// runSessionOn drives the workload on an existing recorder, so tests
// can hand the recorder to observer goroutines beforehand.
func runSessionOn(rec *trace.Recorder, seed int64, spans int) (int, map[uint64]uint64) {
	rng := rand.New(rand.NewSource(seed))
	ddHook := rec.DDTracer()
	parentOf := make(map[uint64]uint64)
	emitted := 0

	type open struct {
		ctx context.Context
		sp  *trace.Span
	}
	root := trace.With(context.Background(), rec)
	var stack []open
	for emitted < spans {
		switch {
		case len(stack) == 0 || (rng.Intn(3) == 0 && len(stack) < 5):
			ctx := root
			var parent uint64
			if len(stack) > 0 {
				ctx = stack[len(stack)-1].ctx
				parent = stack[len(stack)-1].sp.ID
			}
			ctx, sp := trace.StartSpan(ctx, "op")
			sp.SetAttr("depth", int64(len(stack)))
			parentOf[sp.ID] = parent
			stack = append(stack, open{ctx, sp})
		case rng.Intn(2) == 0:
			ddHook(dd.OpMultMV, time.Microsecond)
			emitted++
		default:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			top.sp.End()
			emitted++
		}
	}
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		top.sp.End()
		emitted++
	}
	return emitted, parentOf
}

// TestConcurrentSessions exercises the intended concurrency model
// under -race: each recorder is owned by one session goroutine
// (StartSpan/End/DD hook), while observer goroutines concurrently pull
// Snapshot/Dropped/Len from every recorder — the trace-export and
// debug-bundle access pattern.
func TestConcurrentSessions(t *testing.T) {
	const sessions = 4
	recs := make([]*trace.Recorder, sessions)
	var emitted [sessions]int
	var parents [sessions]map[uint64]uint64

	var wg sync.WaitGroup
	stopObs := make(chan struct{})
	var drops [sessions]atomic.Uint64
	for i := 0; i < sessions; i++ {
		i := i
		recs[i] = trace.NewRecorder("sess", 32)
		recs[i].OnDrop(func() { drops[i].Add(1) })
	}
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			emitted[i], parents[i] = runSessionOn(recs[i], int64(i+1), 500)
		}(i)
	}
	// Observers race against the sessions above.
	var owg sync.WaitGroup
	for o := 0; o < 2; o++ {
		owg.Add(1)
		go func() {
			defer owg.Done()
			for {
				select {
				case <-stopObs:
					return
				default:
				}
				for i := 0; i < sessions; i++ {
					r := recs[i]
					if r == nil {
						continue
					}
					spans, dropped := r.Snapshot()
					if uint64(len(spans)) > 32 {
						t.Error("snapshot larger than capacity")
						return
					}
					_ = dropped
					_ = r.Len()
				}
			}
		}()
	}
	wg.Wait()
	close(stopObs)
	owg.Wait()

	for i := 0; i < sessions; i++ {
		got, dropped := recs[i].Snapshot()
		if uint64(emitted[i]) != uint64(len(got))+dropped {
			t.Fatalf("session %d: emitted %d != retained %d + dropped %d", i, emitted[i], len(got), dropped)
		}
		if drops[i].Load() != dropped {
			t.Fatalf("session %d: OnDrop count %d != dropped %d", i, drops[i].Load(), dropped)
		}
		for _, s := range got {
			if want, ok := parents[i][s.ID]; ok && s.Parent != want {
				t.Fatalf("session %d: span %d parent %d, want %d", i, s.ID, s.Parent, want)
			}
		}
	}
}

func TestTee(t *testing.T) {
	var a, b int
	fa := func(op dd.Op, d time.Duration) { a++ }
	fb := func(op dd.Op, d time.Duration) { b++ }
	if trace.Tee(nil, nil) != nil {
		t.Fatal("Tee of nils must be nil")
	}
	tee := trace.Tee(fa, nil, fb)
	tee(dd.OpMultMV, time.Microsecond)
	if a != 1 || b != 1 {
		t.Fatalf("tee fan-out broken: a=%d b=%d", a, b)
	}
}
