package trace

// Chrome trace-event export. The trace-event format (the JSON the
// chrome://tracing viewer and https://ui.perfetto.dev load directly)
// keeps the tool installation-free: an operator downloads a session's
// timeline and drops it into a browser tab, no tooling required.
//
// Mapping: each session becomes one process track (pid = session
// index, with a process_name metadata record carrying the session
// id), all spans of a session share tid 1, and every span is a
// complete ("X") event whose nesting the viewer reconstructs from
// containment of [ts, ts+dur) on the track. Span attributes, the span
// id and the parent id ride in args, so the exact tree is recoverable
// even where timestamps tie. Timestamps are fractional microseconds
// (both viewers accept fractions), preserving the sub-microsecond DD
// operations the latency histograms resolve.

import (
	"bufio"
	"encoding/json"
	"io"
)

// SessionTrace is one session's exported timeline.
type SessionTrace struct {
	Name    string // track label, e.g. the session id
	PID     int    // process track in the viewer
	Spans   []Span
	Dropped uint64 // spans evicted from the flight recorder
}

// SessionFromRecorder snapshots a recorder into an exportable
// SessionTrace.
func SessionFromRecorder(r *Recorder, pid int) SessionTrace {
	spans, dropped := r.Snapshot()
	return SessionTrace{Name: r.Name(), PID: pid, Spans: spans, Dropped: dropped}
}

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace streams the sessions as one Chrome trace-event
// JSON document. Events are encoded one at a time, so arbitrarily
// long timelines never materialize in memory.
func WriteChromeTrace(w io.Writer, sessions ...SessionTrace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetEscapeHTML(false)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder appends a newline after each value, which doubles as
		// the stream's record separator.
		return enc.Encode(ev)
	}
	for _, sess := range sessions {
		if err := emit(chromeEvent{
			Name: "process_name", Ph: "M", PID: sess.PID, TID: 1,
			Args: map[string]any{"name": sess.Name},
		}); err != nil {
			return err
		}
		if sess.Dropped > 0 {
			if err := emit(chromeEvent{
				Name: "flight recorder dropped spans", Ph: "I", TS: 0,
				PID: sess.PID, TID: 1, Scope: "p",
				Args: map[string]any{"dropped": sess.Dropped},
			}); err != nil {
				return err
			}
		}
		for i := range sess.Spans {
			s := &sess.Spans[i]
			dur := float64(s.Dur) / 1e3
			args := map[string]any{"spanId": s.ID}
			if s.Parent != 0 {
				args["parentId"] = s.Parent
			}
			for _, a := range s.Attrs() {
				args[a.Key] = a.Value
			}
			if err := emit(chromeEvent{
				Name: s.Name, Ph: "X", TS: float64(s.Start) / 1e3, Dur: &dur,
				PID: sess.PID, TID: 1, Args: args,
			}); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
