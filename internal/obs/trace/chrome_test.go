package trace_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"quantumdd/internal/obs/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// syntheticSessions builds a deterministic two-session timeline:
// timings are fixed, so the encoded bytes are reproducible — unlike a
// live run, whose schema is validated end-to-end by the web tests on
// a scripted GHZ sequence.
func syntheticSessions() []trace.SessionTrace {
	return []trace.SessionTrace{
		{
			Name: "sim-1",
			PID:  1,
			Spans: []trace.Span{
				trace.MakeSpan(1, 0, "POST /api/simulation/{id}/step", 0, 5000),
				trace.MakeSpan(2, 1, "step:gate", 500, 4000,
					trace.Attr{Key: "op_index", Value: 0},
					trace.Attr{Key: "nodes_before", Value: 1},
					trace.Attr{Key: "nodes_after", Value: 2}),
				trace.MakeSpan(3, 2, "dd:applygate", 700, 3500),
			},
		},
		{
			Name:    "verify-2",
			PID:     2,
			Dropped: 3,
			Spans: []trace.Span{
				trace.MakeSpan(1, 0, "verify:left h q[0]", 100, 1250,
					trace.Attr{Key: "nodes_after", Value: 4}),
			},
		},
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, syntheticSessions()...); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace output changed:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// chromeDoc mirrors the subset of the trace-event format the viewers
// require; the schema assertions below are what keep the export
// loadable in chrome://tracing and Perfetto.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name  string         `json:"name"`
		Ph    string         `json:"ph"`
		TS    float64        `json:"ts"`
		Dur   *float64       `json:"dur"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		Scope string         `json:"s"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, syntheticSessions()...); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	meta := map[int]string{} // pid -> process_name
	spans := map[int]map[uint64][2]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" {
				t.Fatalf("unexpected metadata event %q", ev.Name)
			}
			meta[ev.PID] = ev.Args["name"].(string)
		case "I":
			if ev.Scope != "p" {
				t.Fatalf("instant event scope = %q, want process scope", ev.Scope)
			}
			if _, ok := ev.Args["dropped"]; !ok {
				t.Fatal("dropped-spans instant event lacks the count")
			}
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 || ev.TS < 0 {
				t.Fatalf("complete event %q has invalid ts/dur", ev.Name)
			}
			if ev.TID != 1 {
				t.Fatalf("complete event %q on tid %d, want 1", ev.Name, ev.TID)
			}
			id := uint64(ev.Args["spanId"].(float64))
			if spans[ev.PID] == nil {
				spans[ev.PID] = map[uint64][2]float64{}
			}
			spans[ev.PID][id] = [2]float64{ev.TS, ev.TS + *ev.Dur}
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	// Session → track mapping: each session got its own pid with a
	// process_name record naming it.
	if meta[1] != "sim-1" || meta[2] != "verify-2" {
		t.Fatalf("process_name mapping wrong: %v", meta)
	}
	// Nesting: every child's interval lies inside its parent's on the
	// same track — what the viewers use to reconstruct the span tree.
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		pidRaw, ok := ev.Args["parentId"]
		if !ok {
			continue
		}
		parent, ok := spans[ev.PID][uint64(pidRaw.(float64))]
		if !ok {
			t.Fatalf("span %q references unknown parent %v", ev.Name, pidRaw)
		}
		if ev.TS < parent[0] || ev.TS+*ev.Dur > parent[1] {
			t.Fatalf("span %q [%g,%g] not contained in parent [%g,%g]",
				ev.Name, ev.TS, ev.TS+*ev.Dur, parent[0], parent[1])
		}
	}
}
