// Package tsdb is an in-process, zero-dependency, bounded-memory
// time-series store. A sampler sweeps every series of an obs.Registry
// on a fixed interval into per-series ring buffers, retaining the last
// Capacity samples of each; windowed queries (latest value, counter
// rate, histogram quantile) turn the retained history into the signals
// health endpoints and watchdogs need — "is p99 step latency burning
// the SLO", "did the compute-table hit rate collapse" — without an
// external monitoring stack.
//
// Memory is bounded by construction: each scalar series costs
// Capacity × 16 bytes, each histogram series Capacity × (16 + 8 ×
// (buckets+2)) bytes, and the series count is capped by MaxSeries
// (samples × families × window = bounded bytes; see DESIGN.md).
// Beyond the cap, new series are counted as dropped rather than
// stored — retention degrades, the process does not.
package tsdb

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"quantumdd/internal/obs"
)

// Config sizes the store. Zero values select the defaults.
type Config struct {
	// Interval is the sampling period the owner drives SampleOnce at.
	// The store uses it only to derive the staleness horizon for
	// externally recorded series; it does not run its own timer.
	Interval time.Duration
	// Capacity is the number of samples retained per series.
	Capacity int
	// MaxSeries caps the number of distinct series tracked.
	MaxSeries int
}

const (
	// DefaultCapacity retains 6 minutes at a 1s interval.
	DefaultCapacity = 360
	// DefaultMaxSeries bounds the series map; the registry of a fully
	// loaded server sits well under 1k series.
	DefaultMaxSeries = 4096
	// staleTicks is how many missed intervals evict an externally
	// recorded series (dead sessions must not pin ring memory).
	staleTicks = 8
)

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Capacity <= 0 {
		c.Capacity = DefaultCapacity
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = DefaultMaxSeries
	}
	return c
}

// Point is one retained sample.
type Point struct {
	T time.Time
	V float64
}

// ring is the fixed-size sample buffer of one series. Histogram rings
// additionally retain the observation sum and the cumulative
// per-bucket totals of every sample, so a window query can difference
// two samples into a windowed bucket distribution.
type ring struct {
	kind     string // "counter", "gauge", "histogram", or "recorded"
	external bool   // fed by Record, pruned when stale
	bounds   []float64
	ts       []int64   // unix nanos, parallel to vs
	vs       []float64 // counter/gauge/recorded value; histogram count
	sums     []float64 // histogram only
	buckets  []uint64  // histogram only: flat Capacity×(len(bounds)+1)
	head     int       // next write slot
	n        int       // valid samples
	lastT    int64
}

func (r *ring) nb() int { return len(r.bounds) + 1 }

func (r *ring) push(tns int64, v, sum float64, counts []uint64) {
	r.ts[r.head] = tns
	r.vs[r.head] = v
	if r.sums != nil {
		r.sums[r.head] = sum
		copy(r.buckets[r.head*r.nb():(r.head+1)*r.nb()], counts)
	}
	r.head = (r.head + 1) % len(r.ts)
	if r.n < len(r.ts) {
		r.n++
	}
	r.lastT = tns
}

// at returns the i-th retained sample, 0 = oldest.
func (r *ring) at(i int) int {
	return (r.head - r.n + i + len(r.ts)) % len(r.ts)
}

// Store holds the rings. All methods are safe for concurrent use; the
// owner typically drives SampleOnce from one goroutine while health
// and live-stream handlers query concurrently.
type Store struct {
	reg *obs.Registry
	cfg Config

	mu     sync.RWMutex
	series map[string]*ring

	samples       *obs.Counter
	seriesGauge   *obs.Gauge
	seriesDropped *obs.Counter
	bytesGauge    *obs.Gauge
}

// New creates a store sampling reg. The store registers its own meta
// families (tsdb_samples_total, tsdb_series, tsdb_series_dropped_total,
// tsdb_retained_bytes) on the same registry, so the sampler's health is
// visible through the surface it samples.
func New(reg *obs.Registry, cfg Config) *Store {
	cfg = cfg.withDefaults()
	return &Store{
		reg:    reg,
		cfg:    cfg,
		series: make(map[string]*ring),
		samples: reg.Counter("tsdb_samples_total",
			"Sampling sweeps completed by the in-process time-series store."),
		seriesGauge: reg.Gauge("tsdb_series",
			"Series currently retained by the in-process time-series store."),
		seriesDropped: reg.Counter("tsdb_series_dropped_total",
			"Series rejected because the store reached its series cap."),
		bytesGauge: reg.Gauge("tsdb_retained_bytes",
			"Approximate bytes of retained ring-buffer samples."),
	}
}

// Interval reports the configured sampling period.
func (s *Store) Interval() time.Duration { return s.cfg.Interval }

func key(name, labels string) string { return name + "\xff" + labels }

// SampleOnce sweeps every registry series into the rings, stamps the
// sweep at now, and prunes stale externally recorded series. The owner
// calls it on its telemetry tick, after refreshing gather-style gauges.
func (s *Store) SampleOnce(now time.Time) {
	tns := now.UnixNano()
	s.mu.Lock()
	s.reg.VisitSeries(func(p obs.SeriesPoint) {
		k := key(p.Name, p.Labels)
		r := s.series[k]
		if r == nil {
			r = s.newRingLocked(p.Kind, p.Bounds, false)
			if r == nil {
				return // series cap reached; counted
			}
			s.series[k] = r
		}
		if p.Kind == "histogram" {
			r.push(tns, p.Value, p.Sum, p.Counts)
		} else {
			r.push(tns, p.Value, 0, nil)
		}
	})
	// Prune externally recorded series that stopped arriving (dead
	// sessions); registry series refresh every sweep by construction.
	stale := tns - int64(staleTicks)*int64(s.cfg.Interval)
	for k, r := range s.series {
		if r.external && r.lastT < stale {
			delete(s.series, k)
		}
	}
	s.seriesGauge.Set(float64(len(s.series)))
	s.bytesGauge.Set(float64(s.retainedBytesLocked()))
	s.mu.Unlock()
	s.samples.Inc()
}

// newRingLocked allocates a ring, enforcing the series cap.
func (s *Store) newRingLocked(kind string, bounds []float64, external bool) *ring {
	if len(s.series) >= s.cfg.MaxSeries {
		s.seriesDropped.Inc()
		return nil
	}
	r := &ring{
		kind:     kind,
		external: external,
		ts:       make([]int64, s.cfg.Capacity),
		vs:       make([]float64, s.cfg.Capacity),
	}
	if kind == "histogram" {
		r.bounds = append([]float64(nil), bounds...)
		r.sums = make([]float64, s.cfg.Capacity)
		r.buckets = make([]uint64, s.cfg.Capacity*(len(bounds)+1))
	}
	return r
}

// Record appends one sample to an externally fed series — per-session
// engine deltas, pool depths, anything not worth a full Prometheus
// family. Recorded series are pruned automatically once they stop
// arriving, so per-session cardinality cannot accumulate.
func (s *Store) Record(name, labels string, v float64, now time.Time) {
	k := key(name, labels)
	s.mu.Lock()
	r := s.series[k]
	if r == nil {
		r = s.newRingLocked("recorded", nil, true)
		if r == nil {
			s.mu.Unlock()
			return
		}
		s.series[k] = r
	}
	r.push(now.UnixNano(), v, 0, nil)
	s.mu.Unlock()
}

// retainedBytesLocked approximates the ring memory held, the number
// DESIGN.md's retention math bounds.
func (s *Store) retainedBytesLocked() int64 {
	var b int64
	for _, r := range s.series {
		b += int64(len(r.ts))*16 + int64(len(r.sums))*8 + int64(len(r.buckets))*8
	}
	return b
}

// RetainedBytes reports the approximate ring memory held.
func (s *Store) RetainedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.retainedBytesLocked()
}

// SeriesCount reports the number of retained series.
func (s *Store) SeriesCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.series)
}

// Samples reports the number of completed sampling sweeps.
func (s *Store) Samples() uint64 { return s.samples.Value() }

// Latest returns the most recent sample of a series.
func (s *Store) Latest(name, labels string) (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.series[key(name, labels)]
	if r == nil || r.n == 0 {
		return Point{}, false
	}
	i := r.at(r.n - 1)
	return Point{T: time.Unix(0, r.ts[i]), V: r.vs[i]}, true
}

// Window returns the retained samples of a series newer than
// now-window, oldest first.
func (s *Store) Window(name, labels string, window time.Duration, now time.Time) []Point {
	cut := now.Add(-window).UnixNano()
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.series[key(name, labels)]
	if r == nil {
		return nil
	}
	var out []Point
	for i := 0; i < r.n; i++ {
		idx := r.at(i)
		if r.ts[idx] >= cut {
			out = append(out, Point{T: time.Unix(0, r.ts[idx]), V: r.vs[idx]})
		}
	}
	return out
}

// windowEnds returns the ring indices of the oldest and newest samples
// inside the window, and whether at least two samples span it.
func (r *ring) windowEnds(cut int64) (i0, i1 int, ok bool) {
	if r.n == 0 {
		return 0, 0, false
	}
	i1 = r.at(r.n - 1)
	i0 = -1
	for i := 0; i < r.n; i++ {
		idx := r.at(i)
		if r.ts[idx] >= cut {
			i0 = idx
			break
		}
	}
	return i0, i1, i0 >= 0 && i0 != i1
}

// Rate returns the per-second increase of a counter-like series over
// the window. Counter resets (value decreasing) clamp to zero rather
// than reporting a negative rate. ok is false with fewer than two
// samples in the window.
func (s *Store) Rate(name, labels string, window time.Duration, now time.Time) (perSec float64, ok bool) {
	cut := now.Add(-window).UnixNano()
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.series[key(name, labels)]
	if r == nil {
		return 0, false
	}
	i0, i1, ok := r.windowEnds(cut)
	if !ok {
		return 0, false
	}
	dt := float64(r.ts[i1]-r.ts[i0]) / 1e9
	if dt <= 0 {
		return 0, false
	}
	dv := r.vs[i1] - r.vs[i0]
	if dv < 0 {
		dv = 0
	}
	return dv / dt, true
}

// Delta returns the increase of a counter-like series over the window
// (reset-clamped), with the same two-sample requirement as Rate.
func (s *Store) Delta(name, labels string, window time.Duration, now time.Time) (float64, bool) {
	cut := now.Add(-window).UnixNano()
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.series[key(name, labels)]
	if r == nil {
		return 0, false
	}
	i0, i1, ok := r.windowEnds(cut)
	if !ok {
		return 0, false
	}
	dv := r.vs[i1] - r.vs[i0]
	if dv < 0 {
		dv = 0
	}
	return dv, true
}

// Quantile estimates the q-quantile (0 < q < 1) of a histogram series
// over the window by differencing the cumulative bucket totals at the
// window's ends and interpolating linearly inside the target bucket —
// the standard histogram_quantile estimate. With only one retained
// sample the lifetime distribution is used (the best available answer
// right after boot). ok is false for unknown or non-histogram series
// or when the window saw no observations.
func (s *Store) Quantile(name, labels string, q float64, window time.Duration, now time.Time) (float64, bool) {
	if q <= 0 || q >= 1 {
		return 0, false
	}
	cut := now.Add(-window).UnixNano()
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.series[key(name, labels)]
	if r == nil || r.kind != "histogram" || r.n == 0 {
		return 0, false
	}
	nb := r.nb()
	i0, i1, spanned := r.windowEnds(cut)
	newest := r.buckets[i1*nb : (i1+1)*nb]
	delta := make([]float64, nb)
	if spanned {
		oldest := r.buckets[i0*nb : (i0+1)*nb]
		for i := range delta {
			d := float64(newest[i]) - float64(oldest[i])
			if d < 0 {
				d = 0 // reset
			}
			delta[i] = d
		}
	} else {
		for i := range delta {
			delta[i] = float64(newest[i])
		}
	}
	var total float64
	for _, d := range delta {
		total += d
	}
	if total == 0 {
		return 0, false
	}
	target := q * total
	var cum, lo float64
	for i, d := range delta {
		cum += d
		if cum >= target {
			if i == nb-1 {
				// +Inf bucket: the highest finite bound is the best
				// defensible estimate.
				return r.bounds[len(r.bounds)-1], true
			}
			hi := r.bounds[i]
			frac := 1.0
			if d > 0 {
				frac = (target - (cum - d)) / d
			}
			return lo + (hi-lo)*frac, true
		}
		if i < len(r.bounds) {
			lo = r.bounds[i]
		}
	}
	return r.bounds[len(r.bounds)-1], true
}

// SeriesNames returns the retained series identifiers ("name{labels}")
// sorted, for debug output and tests.
func (s *Store) SeriesNames() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		name, labels, _ := splitKey(k)
		if labels == "" {
			out = append(out, name)
		} else {
			out = append(out, fmt.Sprintf("%s{%s}", name, labels))
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

func splitKey(k string) (name, labels string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == '\xff' {
			return k[:i], k[i+1:], true
		}
	}
	return k, "", false
}

// Gauge-style convenience: LatestValue returns the newest sample value
// or def when the series is unknown or empty.
func (s *Store) LatestValue(name, labels string, def float64) float64 {
	p, ok := s.Latest(name, labels)
	if !ok || math.IsNaN(p.V) {
		return def
	}
	return p.V
}
