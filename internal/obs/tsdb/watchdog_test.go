package tsdb

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"quantumdd/internal/obs"
)

// breachAbove builds a rule firing while the latest value of a series
// exceeds the threshold.
func breachAbove(name, series string, threshold float64) Rule {
	return Rule{
		Name:     name,
		Cooldown: 10 * time.Second,
		Check: func(q Querier, now time.Time) (string, bool) {
			p, ok := q.Latest(series, "")
			if !ok || p.V <= threshold {
				return "", false
			}
			return "value above threshold", true
		},
	}
}

func TestWatchdogRecordsBreachesWithCooldown(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("pressure", "pressure")
	s := New(reg, Config{Interval: time.Second, Capacity: 8})
	w := NewWatchdog(s, reg, 16, breachAbove("pressure_high", "pressure", 10))

	// Healthy: no events.
	g.Set(5)
	s.SampleOnce(t0())
	w.Evaluate(t0())
	if len(w.Events()) != 0 {
		t.Fatal("event recorded without a breach")
	}

	// Breach: one event, and the cooldown suppresses the immediate
	// repeats while the breach persists.
	g.Set(50)
	for i := 1; i <= 5; i++ {
		now := t0().Add(time.Duration(i) * time.Second)
		s.SampleOnce(now)
		w.Evaluate(now)
	}
	evs := w.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events during cooldown, want 1", len(evs))
	}
	if evs[0].Rule != "pressure_high" {
		t.Fatalf("event rule %q", evs[0].Rule)
	}

	// Past the cooldown the persistent breach fires again.
	now := t0().Add(15 * time.Second)
	s.SampleOnce(now)
	w.Evaluate(now)
	if len(w.Events()) != 2 {
		t.Fatalf("%d events past cooldown, want 2", len(w.Events()))
	}

	// The counter family saw both.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `watchdog_events_total{rule="pressure_high"} 2`) {
		t.Fatalf("watchdog_events_total not exported:\n%s", buf.String())
	}
}

func TestWatchdogRingBoundedOldestEvicted(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("p", "p")
	s := New(reg, Config{Interval: time.Second, Capacity: 8})
	w := NewWatchdog(s, reg, 4, Rule{
		Name:     "always",
		Cooldown: time.Nanosecond,
		Check: func(q Querier, now time.Time) (string, bool) {
			return now.Format(time.RFC3339Nano), true
		},
	})
	g.Set(1)
	for i := 0; i < 10; i++ {
		now := t0().Add(time.Duration(i) * time.Second)
		s.SampleOnce(now)
		w.Evaluate(now)
	}
	evs := w.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	if !evs[0].Time.Before(evs[3].Time) {
		t.Fatal("events not oldest-first")
	}
	if w.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", w.Dropped())
	}
}

func TestWatchdogJSONLExport(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("p", "p")
	s := New(reg, Config{Interval: time.Second, Capacity: 8})
	w := NewWatchdog(s, reg, 8, breachAbove("p_high", "p", 0))
	g.Set(1)
	s.SampleOnce(t0())
	w.Evaluate(t0())

	var buf bytes.Buffer
	if err := w.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("%d JSONL lines, want 1", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
	if ev.Rule != "p_high" || ev.Detail == "" {
		t.Fatalf("decoded event %+v", ev)
	}
}
