package tsdb

import (
	"fmt"
	"math"
	"testing"
	"time"

	"quantumdd/internal/obs"
)

func t0() time.Time { return time.Unix(1_700_000_000, 0) }

func TestSampleAndLatest(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("requests_total", "requests")
	g := reg.Gauge("depth", "queue depth")
	s := New(reg, Config{Interval: time.Second, Capacity: 8})

	c.Add(5)
	g.Set(3.5)
	s.SampleOnce(t0())
	c.Add(2)
	g.Set(1.25)
	s.SampleOnce(t0().Add(time.Second))

	p, ok := s.Latest("requests_total", "")
	if !ok || p.V != 7 {
		t.Fatalf("Latest(requests_total) = %v %v, want 7", p.V, ok)
	}
	if v := s.LatestValue("depth", "", -1); v != 1.25 {
		t.Fatalf("LatestValue(depth) = %v, want 1.25", v)
	}
	if v := s.LatestValue("missing", "", -1); v != -1 {
		t.Fatalf("LatestValue(missing) = %v, want default -1", v)
	}
	if got := s.Samples(); got != 2 {
		t.Fatalf("Samples = %d, want 2", got)
	}
}

func TestRateAndDelta(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("ops_total", "ops")
	s := New(reg, Config{Interval: time.Second, Capacity: 16})

	for i := 0; i < 5; i++ {
		c.Add(10)
		s.SampleOnce(t0().Add(time.Duration(i) * time.Second))
	}
	now := t0().Add(4 * time.Second)
	rate, ok := s.Rate("ops_total", "", 10*time.Second, now)
	if !ok {
		t.Fatal("Rate not ok")
	}
	// 40 increase over 4 seconds between first and last retained sample.
	if math.Abs(rate-10) > 1e-9 {
		t.Fatalf("rate = %v, want 10", rate)
	}
	d, ok := s.Delta("ops_total", "", 10*time.Second, now)
	if !ok || d != 40 {
		t.Fatalf("delta = %v %v, want 40", d, ok)
	}
	// A window catching only the newest sample cannot produce a rate.
	if _, ok := s.Rate("ops_total", "", time.Millisecond, now); ok {
		t.Fatal("Rate over sub-sample window should not be ok")
	}
}

func TestCounterResetClampsToZero(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, Config{Interval: time.Second, Capacity: 8})
	// Simulate a reset via a recorded series (registry counters cannot
	// decrease, but replica restarts can re-register fresh ones).
	s.Record("restarts", "", 100, t0())
	s.Record("restarts", "", 3, t0().Add(time.Second))
	rate, ok := s.Rate("restarts", "", time.Minute, t0().Add(time.Second))
	if !ok || rate != 0 {
		t.Fatalf("rate after reset = %v %v, want 0 true", rate, ok)
	}
}

func TestWindowEvictsOldSamples(t *testing.T) {
	reg := obs.NewRegistry()
	g := reg.Gauge("v", "value")
	s := New(reg, Config{Interval: time.Second, Capacity: 4})
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		s.SampleOnce(t0().Add(time.Duration(i) * time.Second))
	}
	pts := s.Window("v", "", time.Hour, t0().Add(10*time.Second))
	if len(pts) != 4 {
		t.Fatalf("retained %d samples, want capacity 4", len(pts))
	}
	if pts[0].V != 6 || pts[3].V != 9 {
		t.Fatalf("window = %v, want values 6..9 oldest-first", pts)
	}
}

func TestQuantileOverWindow(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	s := New(reg, Config{Interval: time.Second, Capacity: 8})

	// First epoch: all observations fast.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	s.SampleOnce(t0())
	// Second epoch: everything slow. The windowed quantile between the
	// two samples must reflect only the slow epoch.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	s.SampleOnce(t0().Add(time.Second))

	q, ok := s.Quantile("lat", "", 0.99, time.Minute, t0().Add(time.Second))
	if !ok {
		t.Fatal("Quantile not ok")
	}
	if q <= 0.1 || q > 1 {
		t.Fatalf("windowed p99 = %v, want within (0.1, 1] (slow epoch)", q)
	}

	// Single-sample fallback: lifetime distribution.
	reg2 := obs.NewRegistry()
	h2 := reg2.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	s2 := New(reg2, Config{Interval: time.Second, Capacity: 8})
	h2.Observe(0.05)
	s2.SampleOnce(t0())
	if q, ok := s2.Quantile("lat", "", 0.5, time.Minute, t0()); !ok || q <= 0.01 || q > 0.1 {
		t.Fatalf("lifetime p50 = %v %v, want within (0.01, 0.1]", q, ok)
	}

	// No observations in window -> not ok.
	reg3 := obs.NewRegistry()
	reg3.Histogram("lat", "latency", []float64{1})
	s3 := New(reg3, Config{Interval: time.Second, Capacity: 8})
	s3.SampleOnce(t0())
	if _, ok := s3.Quantile("lat", "", 0.9, time.Minute, t0()); ok {
		t.Fatal("Quantile with zero observations should not be ok")
	}
}

func TestRecordedSeriesPrunedWhenStale(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, Config{Interval: time.Second, Capacity: 8})
	s.Record("session_ops", `id="sim-1"`, 42, t0())
	if _, ok := s.Latest("session_ops", `id="sim-1"`); !ok {
		t.Fatal("recorded series missing")
	}
	// Sweeps advance well past the staleness horizon without the
	// session recording again: the series must be pruned.
	for i := 1; i <= staleTicks+2; i++ {
		s.SampleOnce(t0().Add(time.Duration(i) * time.Second))
	}
	if _, ok := s.Latest("session_ops", `id="sim-1"`); ok {
		t.Fatal("stale recorded series was not pruned")
	}
}

func TestSeriesCapCountsDrops(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(reg, Config{Interval: time.Second, Capacity: 4, MaxSeries: 6})
	for i := 0; i < 10; i++ {
		s.Record("s", fmt.Sprintf("i=%q", string(rune('a'+i))), float64(i), t0())
	}
	// 4 meta families of the store itself occupy registry slots but not
	// ring slots until sampled; the recorded series hit the cap.
	if got := s.SeriesCount(); got > 6 {
		t.Fatalf("series count %d exceeds cap 6", got)
	}
	if v := reg.Counter("tsdb_series_dropped_total", "").Value(); v == 0 {
		t.Fatal("series drops not counted")
	}
}

func TestRetainedBytesBounded(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("h", "hist", obs.LatencyBuckets)
	reg.Gauge("g", "gauge")
	cap := 100
	s := New(reg, Config{Interval: time.Second, Capacity: cap})
	for i := 0; i < 3*cap; i++ {
		s.SampleOnce(t0().Add(time.Duration(i) * time.Second))
	}
	got := s.RetainedBytes()
	// Retention math: scalar rings cost cap*16; histogram rings add
	// cap*8*(buckets+2). Memory must not grow past that bound no matter
	// how many sweeps ran.
	nb := len(obs.LatencyBuckets) + 1
	perHist := int64(cap)*16 + int64(cap)*8 + int64(cap*nb)*8
	perScalar := int64(cap) * 16
	// h + g + 4 tsdb meta series (scalars).
	want := perHist + 5*perScalar
	if got != want {
		t.Fatalf("RetainedBytes = %d, want %d (bounded)", got, want)
	}
}

func TestConcurrentSampleAndQuery(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("x", "x")
	s := New(reg, Config{Interval: time.Millisecond, Capacity: 32})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			c.Inc()
			s.SampleOnce(t0().Add(time.Duration(i) * time.Millisecond))
		}
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
			s.Latest("x", "")
			s.Rate("x", "", time.Second, t0().Add(time.Second))
			s.Window("x", "", time.Second, t0().Add(time.Second))
		}
	}
}
