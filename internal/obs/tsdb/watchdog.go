package tsdb

// Watchdog: turns threshold breaches over the retained telemetry into
// structured events. Rules are evaluated on every sample tick against
// the store's windowed queries; a breach appends an Event to a bounded
// ring (oldest evicted) and increments the rule's
// watchdog_events_total series. A per-rule cooldown keeps a sustained
// breach from flooding the ring — the operator wants "GC pauses
// spiked at 12:03", not ten thousand copies of it.

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"quantumdd/internal/obs"
)

// Querier is the read surface rules see — the store's windowed
// queries, narrowed so tests can fake them.
type Querier interface {
	Latest(name, labels string) (Point, bool)
	Rate(name, labels string, window time.Duration, now time.Time) (float64, bool)
	Delta(name, labels string, window time.Duration, now time.Time) (float64, bool)
	Quantile(name, labels string, q float64, window time.Duration, now time.Time) (float64, bool)
}

// Rule is one watched condition. Check returns breach=true with a
// human-readable detail when the condition currently holds.
type Rule struct {
	// Name identifies the rule in events and the
	// watchdog_events_total{rule=…} series. Keep it label-safe.
	Name string
	// Cooldown suppresses repeat events while a breach persists.
	// Zero applies DefaultCooldown.
	Cooldown time.Duration
	// Check evaluates the condition at now.
	Check func(q Querier, now time.Time) (detail string, breach bool)
}

// DefaultCooldown spaces repeat events of a persistent breach.
const DefaultCooldown = 30 * time.Second

// Event is one recorded breach.
type Event struct {
	Time   time.Time `json:"time"`
	Rule   string    `json:"rule"`
	Detail string    `json:"detail"`
}

// DefaultEventCapacity bounds the event ring.
const DefaultEventCapacity = 256

// Watchdog owns the rules and the bounded event ring. Evaluate is
// called from the telemetry tick; the read side (Events, WriteJSONL,
// health endpoints) is safe from any goroutine.
type Watchdog struct {
	store    Querier
	rules    []Rule
	counters []*obs.Counter

	mu       sync.Mutex
	ring     []Event
	head, n  int
	lastFire []time.Time
	dropped  uint64
}

// NewWatchdog builds a watchdog over q. Every rule's
// watchdog_events_total{rule=…} series is registered immediately, so
// scrapers see stable zero series before the first breach.
func NewWatchdog(q Querier, reg *obs.Registry, capacity int, rules ...Rule) *Watchdog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	w := &Watchdog{
		store:    q,
		rules:    rules,
		ring:     make([]Event, capacity),
		lastFire: make([]time.Time, len(rules)),
	}
	for _, r := range rules {
		w.counters = append(w.counters, reg.Counter("watchdog_events_total",
			"Watchdog threshold breaches recorded, by rule.", obs.L("rule", r.Name)))
	}
	return w
}

// Evaluate runs every rule once at now.
func (w *Watchdog) Evaluate(now time.Time) {
	for i, r := range w.rules {
		detail, breach := r.Check(w.store, now)
		if !breach {
			continue
		}
		cd := r.Cooldown
		if cd <= 0 {
			cd = DefaultCooldown
		}
		w.mu.Lock()
		if !w.lastFire[i].IsZero() && now.Sub(w.lastFire[i]) < cd {
			w.mu.Unlock()
			continue
		}
		w.lastFire[i] = now
		if w.n == len(w.ring) {
			w.dropped++
		} else {
			w.n++
		}
		w.ring[w.head] = Event{Time: now, Rule: r.Name, Detail: detail}
		w.head = (w.head + 1) % len(w.ring)
		w.mu.Unlock()
		w.counters[i].Inc()
	}
}

// Events returns the retained events, oldest first.
func (w *Watchdog) Events() []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Event, 0, w.n)
	for i := 0; i < w.n; i++ {
		out = append(out, w.ring[(w.head-w.n+i+len(w.ring))%len(w.ring)])
	}
	return out
}

// Dropped reports events evicted from the full ring.
func (w *Watchdog) Dropped() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// WriteJSONL writes the retained events as JSON Lines — the debug
// bundle member format (one event per line, grep- and jq-friendly).
func (w *Watchdog) WriteJSONL(out io.Writer) error {
	enc := json.NewEncoder(out)
	for _, e := range w.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}
