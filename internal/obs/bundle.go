package obs

// One-shot debug bundles: a single tar.gz capturing everything a
// production triage needs — metrics exposition, goroutine/heap/CPU
// profiles, build information, effective flag values, and (added by
// the web server) every live session's flight-recorder timeline — so
// "attach a debugger" becomes "curl one URL and open the archive".

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"time"
)

// BundleMember is one file inside a debug bundle. Fill writes the
// member's content; a Fill error does not abort the bundle — the
// member is replaced by <name>.error.txt describing what went wrong,
// because a half-broken process is exactly when a bundle matters.
type BundleMember struct {
	Name string
	Fill func(w io.Writer) error
}

// WriteBundle writes the members as a tar.gz archive.
func WriteBundle(w io.Writer, members []BundleMember) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()
	for _, m := range members {
		var buf bytes.Buffer
		name := m.Name
		if err := m.Fill(&buf); err != nil {
			name = m.Name + ".error.txt"
			buf.Reset()
			fmt.Fprintf(&buf, "collecting %s failed: %v\n", m.Name, err)
		}
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(buf.Len()),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		if _, err := tw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}

// StandardBundleMembers returns the process-level bundle content:
//
//	metrics.prom    Prometheus exposition of r
//	buildinfo.txt   module/VCS build info, Go version, GOOS/GOARCH
//	flags.txt       every registered flag with its effective value
//	goroutines.txt  full goroutine dump (pprof debug=2)
//	heap.pprof      heap profile (pprof binary format)
//	cpu.pprof       CPU profile over cpu (omitted when cpu <= 0)
//
// The CPU member blocks for the profiling window, so handlers pass
// the duration through from a bounded query parameter.
func StandardBundleMembers(r *Registry, cpu time.Duration) []BundleMember {
	members := []BundleMember{
		{Name: "metrics.prom", Fill: r.WritePrometheus},
		{Name: "buildinfo.txt", Fill: writeBuildInfo},
		{Name: "flags.txt", Fill: writeFlags},
		{Name: "goroutines.txt", Fill: func(w io.Writer) error {
			return pprof.Lookup("goroutine").WriteTo(w, 2)
		}},
		{Name: "heap.pprof", Fill: func(w io.Writer) error {
			return pprof.Lookup("heap").WriteTo(w, 0)
		}},
	}
	if cpu > 0 {
		members = append(members, BundleMember{Name: "cpu.pprof", Fill: func(w io.Writer) error {
			if err := pprof.StartCPUProfile(w); err != nil {
				return err
			}
			time.Sleep(cpu)
			pprof.StopCPUProfile()
			return nil
		}})
	}
	return members
}

func writeBuildInfo(w io.Writer) error {
	fmt.Fprintf(w, "go: %s\nos/arch: %s/%s\ncpus: %d\ngoroutines: %d\ncaptured: %s\n",
		runtime.Version(), runtime.GOOS, runtime.GOARCH,
		runtime.NumCPU(), runtime.NumGoroutine(), time.Now().Format(time.RFC3339))
	if bi, ok := debug.ReadBuildInfo(); ok {
		fmt.Fprintf(w, "\n%s", bi.String())
	}
	return nil
}

// writeFlags dumps every registered flag with its effective value,
// marking the ones explicitly set on the command line — the "what
// configuration is this process actually running with" record.
func writeFlags(w io.Writer) error {
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	flag.VisitAll(func(f *flag.Flag) {
		origin := "default"
		if set[f.Name] {
			origin = "set"
		}
		fmt.Fprintf(w, "-%s=%s (%s)\n", f.Name, f.Value.String(), origin)
	})
	return nil
}
