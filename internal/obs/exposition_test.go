package obs

// Conformance tests against the Prometheus text exposition format
// (version 0.0.4): label values escape backslash, double-quote and
// line feed; HELP lines escape backslash and line feed only (a double
// quote is legal there and must pass through verbatim).

import (
	"bytes"
	"strings"
	"testing"
)

func TestLabelValueEscapingConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "escaping test",
		L("path", `C:\temp\x`),
		L("quote", `say "hi"`),
		L("multi", "line1\nline2")).Add(1)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{path="C:\\temp\\x",quote="say \"hi\"",multi="line1\nline2"} 1`
	if !strings.Contains(buf.String(), want+"\n") {
		t.Errorf("label escaping not conformant:\ngot:  %swant: %s", buf.String(), want)
	}
	// No raw line feed may survive inside a sample line.
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "esc_total") && !strings.HasSuffix(line, " 1") {
			t.Errorf("sample line torn by unescaped newline: %q", line)
		}
	}
}

func TestHelpEscapingConformance(t *testing.T) {
	r := NewRegistry()
	r.Gauge("help_esc", "first line\nsecond \\ line with \"quotes\"").Set(1)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	// Per spec: \n -> \n escape, \ -> \\, double quote verbatim.
	want := `# HELP help_esc first line\nsecond \\ line with "quotes"`
	var helpLine string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# HELP help_esc") {
			helpLine = line
		}
	}
	if helpLine != want {
		t.Errorf("HELP escaping not conformant:\ngot:  %q\nwant: %q", helpLine, want)
	}
	// The exposition must still parse line-by-line: exactly one HELP,
	// one TYPE, one sample for the family.
	var n int
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if strings.Contains(line, "help_esc") {
			n++
		}
	}
	if n != 3 {
		t.Errorf("family rendered %d lines, want 3 (HELP, TYPE, sample):\n%s", n, buf.String())
	}
}

func TestCleanValuesRenderUnchanged(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "no escaping needed", L("k", "v")).Add(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `plain_total{k="v"} 2`+"\n") {
		t.Errorf("clean series mangled:\n%s", buf.String())
	}
}

func TestProcessMetricsRegistered(t *testing.T) {
	r := NewRegistry()
	RegisterProcessMetrics(r)
	RegisterProcessMetrics(r) // idempotent
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE process_start_time_seconds gauge") {
		t.Error("process_start_time_seconds family missing")
	}
	if strings.Contains(out, "process_start_time_seconds 0\n") {
		t.Error("process start time is zero")
	}
	if !strings.Contains(out, "# TYPE build_info gauge") || !strings.Contains(out, `build_info{go_version="go`) {
		t.Errorf("build_info family missing or unlabelled:\n%s", out)
	}
	if !strings.Contains(out, "} 1\n") {
		t.Error("build_info value is not 1")
	}
}
