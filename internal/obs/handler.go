package obs

// HTTP exposure: the public /metrics handler and the opt-in admin mux
// bundling profiling endpoints. Profiling handlers (pprof, expvar)
// never ride on the public port — cmd/ddvis serves AdminMux on a
// separate -admin-addr listener, typically bound to localhost or a
// cluster-internal interface.

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// AdminMux returns the admin endpoint set:
//
//	/healthz        liveness probe (200 "ok")
//	/metrics        Prometheus exposition of r
//	/debug/vars     expvar JSON (Go runtime memstats, cmdline)
//	/debug/pprof/…  CPU/heap/goroutine/block profiles and traces
func AdminMux(r *Registry) *http.ServeMux {
	return AdminMuxWith(Handler(r))
}

// AdminMuxWith is AdminMux with a caller-supplied /metrics handler —
// used by cmd/ddvis to serve the web server's scrape handler (which
// refreshes session gauges first) instead of a bare registry dump.
func AdminMuxWith(metrics http.Handler) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.Handle("GET /metrics", metrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
