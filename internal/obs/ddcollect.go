package obs

// DDCollector bridges the dd engine into the registry: a tracer that
// feeds per-operation latency histograms, and gauge recording for
// Stats snapshots. The web server records an aggregate snapshot over
// all live sessions at scrape time; the CLI tools record the final
// snapshot of a run before dumping the registry — both read the same
// family names, so bench trajectories and server dashboards line up.

import (
	"time"

	"quantumdd/internal/dd"
)

// DDCollector owns the dd_* metric series of one registry.
type DDCollector struct {
	opDur   [dd.NumOps]*Histogram
	gcPause *Histogram

	nodesLive   *Gauge
	nodesFree   *Gauge
	nodesPeak   *Gauge
	hitRatio    *Gauge
	uniqueLoadV *Gauge
	uniqueLoadM *Gauge

	nodesCreated   *Gauge
	nodesRecycled  *Gauge
	nodesFreed     *Gauge
	utCollisions   *Gauge
	ctStores       *Gauge
	ctEvictions    *Gauge
	gcRuns         *Gauge
	gcPauseSeconds *Gauge

	applyLookups   *Gauge
	applyHits      *Gauge
	applyEvictions *Gauge
	gatesFused     *Gauge
	gateCacheHits  *Gauge

	applyMLookups   *Gauge
	applyMHits      *Gauge
	applyMEvictions *Gauge
	applyMSkips     *Gauge
	mmOpsKernel     *Gauge
	mmOpsGeneric    *Gauge
}

// NewDDCollector registers (or re-binds) the dd metric families on r.
func NewDDCollector(r *Registry) *DDCollector {
	c := &DDCollector{}
	for op := dd.Op(0); op < dd.NumOps; op++ {
		c.opDur[op] = r.Histogram("dd_op_duration_seconds",
			"Latency of top-level decision-diagram operations.",
			LatencyBuckets, L("op", op.String()))
	}
	c.gcPause = r.Histogram("dd_gc_pause_seconds",
		"Duration of decision-diagram garbage collections.", LatencyBuckets)
	c.nodesLive = r.Gauge("dd_nodes_live",
		"Nodes currently held in the unique tables, summed over live packages.")
	c.nodesFree = r.Gauge("dd_nodes_free",
		"Nodes parked on the arena free lists, awaiting recycling.")
	c.hitRatio = r.Gauge("dd_compute_table_hit_ratio",
		"Fraction of compute-table lookups served from cache.")
	c.uniqueLoadV = r.Gauge("dd_unique_table_load",
		"Unique-table load factor (entries per bucket).", L("kind", "vector"))
	c.uniqueLoadM = r.Gauge("dd_unique_table_load",
		"Unique-table load factor (entries per bucket).", L("kind", "matrix"))
	c.nodesCreated = r.Gauge("dd_nodes_created",
		"Unique-table misses (nodes created) over live packages.")
	c.nodesRecycled = r.Gauge("dd_nodes_recycled",
		"Node allocations served from the free lists over live packages.")
	c.nodesFreed = r.Gauge("dd_nodes_freed",
		"Nodes swept by garbage collection over live packages.")
	c.utCollisions = r.Gauge("dd_unique_table_collisions",
		"Unique-table chain entries probed past the bucket head.")
	c.ctStores = r.Gauge("dd_compute_table_stores",
		"Compute-table stores over live packages.")
	c.ctEvictions = r.Gauge("dd_compute_table_evictions",
		"Compute-table stores that displaced a live entry.")
	c.gcRuns = r.Gauge("dd_gc_runs",
		"Garbage collections run over live packages.")
	c.gcPauseSeconds = r.Gauge("dd_gc_pause_seconds_total",
		"Cumulative wall-clock seconds spent in garbage collection.")
	c.applyLookups = r.Gauge("dd_apply_table_lookups",
		"Gate-application kernel compute-table lookups over live packages.")
	c.applyHits = r.Gauge("dd_apply_table_hits",
		"Gate-application kernel compute-table hits over live packages.")
	c.applyEvictions = r.Gauge("dd_apply_table_evictions",
		"Gate-application kernel stores that displaced a live entry.")
	c.gatesFused = r.Gauge("dd_gates_fused",
		"Gates eliminated by peephole fusion before reaching the kernel.")
	c.gateCacheHits = r.Gauge("dd_gate_cache_hits",
		"MakeGateDD requests served from the per-package gate-DD cache.")
	c.applyMLookups = r.Gauge("dd_apply_m_table_lookups",
		"Matrix-apply kernel compute-table lookups over live packages.")
	c.applyMHits = r.Gauge("dd_apply_m_table_hits",
		"Matrix-apply kernel compute-table hits over live packages.")
	c.applyMEvictions = r.Gauge("dd_apply_m_table_evictions",
		"Matrix-apply kernel stores that displaced a live entry.")
	c.applyMSkips = r.Gauge("dd_apply_m_identity_skips",
		"Identity sub-blocks short-circuited by the matrix-apply descent.")
	c.mmOpsKernel = r.Gauge("dd_mm_ops",
		"Matrix-matrix gate applications by path.", L("path", "kernel"))
	c.mmOpsGeneric = r.Gauge("dd_mm_ops",
		"Matrix-matrix gate applications by path.", L("path", "generic"))
	return c
}

// Tracer returns the dd.TraceFunc feeding the latency histograms.
// Safe for concurrent use by several packages.
func (c *DDCollector) Tracer() dd.TraceFunc {
	return func(op dd.Op, d time.Duration) {
		if op >= dd.NumOps {
			return
		}
		c.opDur[op].ObserveSeconds(int64(d))
		if op == dd.OpGC {
			c.gcPause.ObserveSeconds(int64(d))
		}
	}
}

// Record sets the snapshot gauges from one Stats value. The snapshot
// may be a single package's stats or an aggregate built with AddStats.
func (c *DDCollector) Record(st dd.Stats) {
	c.nodesLive.Set(float64(st.LiveNodes))
	c.nodesFree.Set(float64(st.FreeNodesV + st.FreeNodesM))
	if st.CacheLookups > 0 {
		c.hitRatio.Set(float64(st.CacheHits) / float64(st.CacheLookups))
	} else {
		c.hitRatio.Set(0)
	}
	c.uniqueLoadV.Set(st.UniqueLoadV)
	c.uniqueLoadM.Set(st.UniqueLoadM)
	c.nodesCreated.Set(float64(st.NodesCreatedV + st.NodesCreatedM))
	c.nodesRecycled.Set(float64(st.NodesRecycledV + st.NodesRecycledM))
	c.nodesFreed.Set(float64(st.NodesFreed))
	c.utCollisions.Set(float64(st.UTCollisions))
	c.ctStores.Set(float64(st.CTStores))
	c.ctEvictions.Set(float64(st.CTEvictions))
	c.gcRuns.Set(float64(st.GCRuns))
	c.gcPauseSeconds.Set(float64(st.GCPauseNS) / 1e9)
	c.applyLookups.Set(float64(st.ApplyCTLookups))
	c.applyHits.Set(float64(st.ApplyCTHits))
	c.applyEvictions.Set(float64(st.ApplyCTEvictions))
	c.gatesFused.Set(float64(st.GatesFused))
	c.gateCacheHits.Set(float64(st.GateDDCacheHits))
	c.applyMLookups.Set(float64(st.ApplyMCTLookups))
	c.applyMHits.Set(float64(st.ApplyMCTHits))
	c.applyMEvictions.Set(float64(st.ApplyMCTEvictions))
	c.applyMSkips.Set(float64(st.ApplyMIdentitySkips))
	c.mmOpsKernel.Set(float64(st.ApplyMOps))
	c.mmOpsGeneric.Set(float64(st.MultMMOps))
}

// AddStats accumulates b into a for building fleet-wide aggregates
// over several packages' snapshots. It is dd.Stats.Add under the name
// existing callers use. Load factors are summed; divide by the
// package count before recording if a mean is wanted.
func AddStats(a, b dd.Stats) dd.Stats { return a.Add(b) }
