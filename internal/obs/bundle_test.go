package obs_test

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"strings"
	"testing"

	"quantumdd/internal/obs"
)

// readBundle decompresses a bundle into member-name → content.
func readBundle(t *testing.T, data []byte) map[string]string {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	members := map[string]string{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tar read: %v", err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatalf("tar member %s: %v", hdr.Name, err)
		}
		members[hdr.Name] = string(body)
	}
	return members
}

func TestStandardBundleMembers(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("bundle_test_total", "A counter to find in the exposition.").Inc()

	var buf bytes.Buffer
	// cpu=0 omits the CPU profile so the test doesn't block sampling.
	if err := obs.WriteBundle(&buf, obs.StandardBundleMembers(reg, 0)); err != nil {
		t.Fatal(err)
	}
	members := readBundle(t, buf.Bytes())
	for _, want := range []string{"metrics.prom", "buildinfo.txt", "flags.txt", "goroutines.txt", "heap.pprof"} {
		if _, ok := members[want]; !ok {
			t.Errorf("bundle lacks member %s (has %v)", want, keys(members))
		}
	}
	if _, ok := members["cpu.pprof"]; ok {
		t.Error("cpu.pprof present despite cpu=0")
	}
	if !strings.Contains(members["metrics.prom"], "bundle_test_total 1") {
		t.Error("metrics.prom does not carry the registry exposition")
	}
	if !strings.Contains(members["buildinfo.txt"], "go: go") {
		t.Error("buildinfo.txt lacks the Go version")
	}
	if !strings.Contains(members["goroutines.txt"], "goroutine") {
		t.Error("goroutines.txt lacks a goroutine dump")
	}
}

// TestWriteBundleFillError pins the degraded-member contract: a
// failing Fill yields <name>.error.txt instead of aborting the whole
// archive.
func TestWriteBundleFillError(t *testing.T) {
	var buf bytes.Buffer
	err := obs.WriteBundle(&buf, []obs.BundleMember{
		{Name: "good.txt", Fill: func(w io.Writer) error { _, err := w.Write([]byte("fine\n")); return err }},
		{Name: "bad.txt", Fill: func(w io.Writer) error { return errors.New("boom") }},
	})
	if err != nil {
		t.Fatal(err)
	}
	members := readBundle(t, buf.Bytes())
	if members["good.txt"] != "fine\n" {
		t.Errorf("good.txt = %q", members["good.txt"])
	}
	if !strings.Contains(members["bad.txt.error.txt"], "boom") {
		t.Errorf("bad.txt.error.txt missing or wrong: %v", keys(members))
	}
	if _, ok := members["bad.txt"]; ok {
		t.Error("failed member must not appear under its own name")
	}
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
