package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge value = %g, want 1.5", got)
	}
}

func TestGetOrCreateReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help", L("k", "v"))
	b := r.Counter("dup_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("re-registering the same series must return the same handle")
	}
	other := r.Counter("dup_total", "help", L("k", "w"))
	if a == other {
		t.Fatal("different label sets must be distinct series")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge under a counter name must panic")
		}
	}()
	r.Gauge("clash", "help")
}

// TestHistogramBucketBoundaries pins the le-bucket semantics: an
// observation equal to a bound lands in that bound's bucket
// (Prometheus buckets are upper-inclusive), one just above it lands
// in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{0.1, 0.5, 1})
	h.Observe(0.1)  // le="0.1"
	h.Observe(0.11) // le="0.5"
	h.Observe(0.5)  // le="0.5"
	h.Observe(1.0)  // le="1"
	h.Observe(99)   // +Inf
	want := []uint64{1, 2, 1, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-100.71) > 1e-9 {
		t.Errorf("sum = %g, want 100.71", h.Sum())
	}
}

// TestExposition is the format golden test: a scripted registry must
// render byte-for-byte into the expected Prometheus text format,
// including cumulative histogram buckets and escaped label values.
func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("http_requests_total", "Requests served.", L("code", "2xx")).Add(7)
	r.Counter("http_requests_total", "Requests served.", L("code", "5xx")).Inc()
	r.Gauge("sessions_active", "Live sessions.", L("kind", "sim")).Set(3)
	h := r.Histogram("op_seconds", "Op latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(7)
	r.Gauge("weird", "Escapes.", L("path", "a\"b\\c\nd")).Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP http_requests_total Requests served.
# TYPE http_requests_total counter
http_requests_total{code="2xx"} 7
http_requests_total{code="5xx"} 1
# HELP sessions_active Live sessions.
# TYPE sessions_active gauge
sessions_active{kind="sim"} 3
# HELP op_seconds Op latency.
# TYPE op_seconds histogram
op_seconds_bucket{le="0.01"} 2
op_seconds_bucket{le="0.1"} 3
op_seconds_bucket{le="+Inf"} 4
op_seconds_sum 7.06
op_seconds_count 4
# HELP weird Escapes.
# TYPE weird gauge
weird{path="a\"b\\c\nd"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestGathererRunsOnWrite(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("fresh", "help")
	calls := 0
	r.AddGatherer(func() { calls++; g.Set(float64(calls)) })
	var b strings.Builder
	r.WritePrometheus(&b)
	r.WritePrometheus(&b)
	if calls != 2 {
		t.Fatalf("gatherer ran %d times, want 2", calls)
	}
	if g.Value() != 2 {
		t.Fatalf("gauge = %g, want 2", g.Value())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body missing series: %s", rec.Body.String())
	}
}

func TestAdminMuxEndpoints(t *testing.T) {
	mux := AdminMux(NewRegistry())
	for _, path := range []string{"/healthz", "/metrics", "/debug/vars", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}

// TestHotPathAllocationFree is the acceptance guard: counter
// increments, gauge stores and histogram observations must not
// allocate.
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "help")
	g := r.Gauge("alloc_gauge", "help")
	h := r.Histogram("alloc_seconds", "help", LatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3.14) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Add(0.5) }); n != 0 {
		t.Errorf("Gauge.Add allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.0042) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per op, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "help")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "help", LatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.00037)
	}
}
