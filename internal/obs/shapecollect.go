package obs

// ShapeCollector bridges the dd shape profiler into the registry. The
// web server records, at each scrape/telemetry tick, the structurally
// largest recently published profile per diagram kind across all live
// sessions (the diagram an operator worries about) plus the
// fleet-wide count of profiles taken; the CLI tools record the final
// profile of a run. Both use the same family names, so CLI runs and
// server dashboards line up, mirroring DDCollector.

import "quantumdd/internal/dd"

// shapeKindGauges holds one kind-labelled gauge set.
type shapeKindGauges struct {
	nodes         *Gauge
	edges         *Gauge
	maxLevelNodes *Gauge
	widestLevel   *Gauge
	sharing       *Gauge
	profiles      *Gauge
}

// ShapeCollector owns the dd_shape_* metric series of one registry.
type ShapeCollector struct {
	vector   shapeKindGauges
	matrix   shapeKindGauges
	identity *Gauge
}

func newShapeKindGauges(r *Registry, kind string) shapeKindGauges {
	l := L("kind", kind)
	return shapeKindGauges{
		nodes: r.Gauge("dd_shape_nodes",
			"Nodes in the largest recently profiled diagram.", l),
		edges: r.Gauge("dd_shape_edges",
			"Non-zero edges in the largest recently profiled diagram.", l),
		maxLevelNodes: r.Gauge("dd_shape_max_level_nodes",
			"Occupancy of the widest level of the largest recently profiled diagram.", l),
		widestLevel: r.Gauge("dd_shape_widest_level",
			"Index of the widest level of the largest recently profiled diagram.", l),
		sharing: r.Gauge("dd_shape_sharing_factor",
			"Decision-tree nodes per diagram node of the largest recently profiled diagram.", l),
		profiles: r.Gauge("dd_shape_profiles",
			"Shape profiles taken over live packages.", l),
	}
}

// NewShapeCollector registers (or re-binds) the shape families on r.
func NewShapeCollector(r *Registry) *ShapeCollector {
	return &ShapeCollector{
		vector: newShapeKindGauges(r, "vector"),
		matrix: newShapeKindGauges(r, "matrix"),
		identity: r.Gauge("dd_shape_identity_fraction",
			"Identity-padding fraction of the largest recently profiled matrix diagram."),
	}
}

func (g *shapeKindGauges) record(p *dd.ShapeProfile, profiles uint64) {
	g.profiles.Set(float64(profiles))
	if p == nil {
		g.nodes.Set(0)
		g.edges.Set(0)
		g.maxLevelNodes.Set(0)
		g.widestLevel.Set(0)
		g.sharing.Set(0)
		return
	}
	g.nodes.Set(float64(p.Nodes))
	g.edges.Set(float64(p.Edges))
	g.maxLevelNodes.Set(float64(p.MaxLevelNodes))
	g.widestLevel.Set(float64(p.WidestLevel))
	g.sharing.Set(p.SharingFactor)
}

// Record sets the shape gauges from the representative profiles of
// one collection sweep. Either profile may be nil (no diagram of that
// kind profiled yet), which zeroes the structural gauges while the
// cumulative profile counters keep their sweep totals.
func (c *ShapeCollector) Record(vec, mat *dd.ShapeProfile, vecProfiles, matProfiles uint64) {
	c.vector.record(vec, vecProfiles)
	c.matrix.record(mat, matProfiles)
	if mat != nil {
		c.identity.Set(mat.IdentityFraction)
	} else {
		c.identity.Set(0)
	}
}

// MaxShape returns the structurally larger of two profiles, by node
// count — the reduction collection sweeps use to pick the
// representative profile per kind.
func MaxShape(a, b *dd.ShapeProfile) *dd.ShapeProfile {
	if a == nil {
		return b
	}
	if b == nil || a.Nodes >= b.Nodes {
		return a
	}
	return b
}
