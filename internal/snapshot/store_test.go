package snapshot_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"quantumdd/internal/snapshot"
	"quantumdd/internal/snapshot/faultfs"
)

func openStore(t *testing.T, maxBytes int64, fs snapshot.FS) *snapshot.Store {
	t.Helper()
	st, err := snapshot.OpenStore(filepath.Join(t.TempDir(), "spill"), maxBytes, fs)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return st
}

func TestStorePutGetDelete(t *testing.T) {
	st := openStore(t, 0, nil)
	if err := st.Put("sim-1", []byte("hello")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := st.Get("sim-1")
	if err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Get: %q, %v", got, err)
	}
	// Overwrite.
	if err := st.Put("sim-1", []byte("world")); err != nil {
		t.Fatalf("Put overwrite: %v", err)
	}
	if got, _ = st.Get("sim-1"); !bytes.Equal(got, []byte("world")) {
		t.Fatalf("Get after overwrite: %q", got)
	}
	if st.Len() != 1 || st.Bytes() != 5 {
		t.Fatalf("Len=%d Bytes=%d, want 1/5", st.Len(), st.Bytes())
	}
	if err := st.Delete("sim-1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := st.Get("sim-1"); !errors.Is(err, snapshot.ErrNotFound) {
		t.Fatalf("Get after delete: %v, want ErrNotFound", err)
	}
	if err := st.Delete("sim-1"); err != nil {
		t.Fatalf("Delete absent: %v", err)
	}
}

func TestStoreRejectsHostileIDs(t *testing.T) {
	st := openStore(t, 0, nil)
	for _, id := range []string{"", "../x", "a/b", `a\b`, ".."} {
		if err := st.Put(id, []byte("x")); err == nil {
			t.Fatalf("Put(%q) accepted", id)
		}
		if _, err := st.Get(id); !errors.Is(err, snapshot.ErrNotFound) {
			t.Fatalf("Get(%q): %v", id, err)
		}
	}
}

// TestStoreByteCap fills the store past its cap and checks the oldest
// snapshots go first.
func TestStoreByteCap(t *testing.T) {
	st := openStore(t, 25, nil)
	for _, id := range []string{"a", "b", "c"} {
		if err := st.Put(id, bytes.Repeat([]byte(id), 10)); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
	}
	if st.Bytes() > 25 {
		t.Fatalf("cap not enforced: %d bytes", st.Bytes())
	}
	if _, err := st.Get("a"); !errors.Is(err, snapshot.ErrNotFound) {
		t.Fatalf("oldest snapshot survived the cap: %v", err)
	}
	for _, id := range []string{"b", "c"} {
		if _, err := st.Get(id); err != nil {
			t.Fatalf("Get %s after eviction: %v", id, err)
		}
	}
}

// TestStoreReopen verifies accounting (and restorability) survives a
// process restart, and that leftover temp files from a crash mid-spill
// are discarded.
func TestStoreReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	st, err := snapshot.OpenStore(dir, 0, nil)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if err := st.Put("sim-1", []byte("durable")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Simulate a crash that left a torn temp file behind.
	if err := (snapshot.OSFS{}).WriteFile(filepath.Join(dir, "sim-2.snap.tmp"), []byte("torn")); err != nil {
		t.Fatalf("plant temp file: %v", err)
	}

	st2, err := snapshot.OpenStore(dir, 0, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got, err := st2.Get("sim-1"); err != nil || !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("Get after reopen: %q, %v", got, err)
	}
	if st2.Len() != 1 {
		t.Fatalf("Len after reopen = %d, want 1 (temp file must not count)", st2.Len())
	}
	if _, err := st2.Get("sim-2"); !errors.Is(err, snapshot.ErrNotFound) {
		t.Fatalf("torn temp file surfaced as a snapshot: %v", err)
	}
}

// TestStoreRetriesTransientWriteFailure injects a failure on the first
// write attempt only; the retry must succeed without surfacing an
// error.
func TestStoreRetriesTransientWriteFailure(t *testing.T) {
	ffs := faultfs.New(snapshot.OSFS{})
	ffs.FailWrites = map[int]bool{1: true}
	st := openStore(t, 0, ffs)
	st.SetSleep(func(time.Duration) {})
	if err := st.Put("sim-1", []byte("retried")); err != nil {
		t.Fatalf("Put with transient fault: %v", err)
	}
	if got, err := st.Get("sim-1"); err != nil || !bytes.Equal(got, []byte("retried")) {
		t.Fatalf("Get: %q, %v", got, err)
	}
	if ffs.Writes() != 2 {
		t.Fatalf("writes = %d, want 2 (one failure, one retry)", ffs.Writes())
	}
}

// TestStorePersistentWriteFailure exhausts the retry budget and checks
// the error surfaces (the web layer degrades to a tombstone on it).
func TestStorePersistentWriteFailure(t *testing.T) {
	ffs := faultfs.New(snapshot.OSFS{})
	ffs.FailWrites = map[int]bool{1: true, 2: true, 3: true, 4: true}
	st := openStore(t, 0, ffs)
	st.SetSleep(func(time.Duration) {})
	if err := st.Put("sim-1", []byte("doomed")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Put: %v, want ErrInjected", err)
	}
	if _, err := st.Get("sim-1"); !errors.Is(err, snapshot.ErrNotFound) {
		t.Fatalf("failed Put left state behind: %v", err)
	}
}

// TestStoreRenameFailureLeavesNoTornFile fails the publish rename: the
// previous snapshot (none here) stays authoritative and no torn file
// becomes visible.
func TestStoreRenameFailureLeavesNoTornFile(t *testing.T) {
	ffs := faultfs.New(snapshot.OSFS{})
	ffs.FailRenames = true
	st := openStore(t, 0, ffs)
	st.SetSleep(func(time.Duration) {})
	if err := st.Put("sim-1", []byte("torn")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Put: %v, want ErrInjected", err)
	}
	if _, err := st.Get("sim-1"); !errors.Is(err, snapshot.ErrNotFound) {
		t.Fatalf("torn write visible: %v", err)
	}
}

// TestStoreFaultyReadsCorruptEnvelope chains the harness's read faults
// with the envelope decoder: short reads classify as truncation, bit
// flips as checksum mismatch.
func TestStoreFaultyReadsCorruptEnvelope(t *testing.T) {
	blob := snapshot.EncodeSim(&snapshot.Sim{Source: "x", Format: "qasm", State: []byte{1, 2, 3}})

	ffs := faultfs.New(snapshot.OSFS{})
	ffs.ShortReads = map[int]bool{1: true}
	st := openStore(t, 0, ffs)
	if err := st.Put("sim-1", blob); err != nil {
		t.Fatalf("Put: %v", err)
	}
	data, err := st.Get("sim-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, _, err := snapshot.Decode(data); !errors.Is(err, snapshot.ErrTruncated) {
		t.Fatalf("short read: %v, want ErrTruncated", err)
	}

	ffs.FlipBit = 8 * (len(blob) - 10) // a payload byte
	data, err = st.Get("sim-1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if _, _, err := snapshot.Decode(data); !errors.Is(err, snapshot.ErrChecksum) {
		t.Fatalf("bit flip: %v, want ErrChecksum", err)
	}
}
