package snapshot_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestRegenFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzSnapshotDecode from fuzzSeeds(). It only runs
// when SNAPSHOT_REGEN_CORPUS=1 is set, i.e. after a deliberate format
// change:
//
//	SNAPSHOT_REGEN_CORPUS=1 go test ./internal/snapshot -run TestRegenFuzzCorpus
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("SNAPSHOT_REGEN_CORPUS") != "1" {
		t.Skip("set SNAPSHOT_REGEN_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range fuzzSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
