// Package snapshot defines the durable on-disk form of a web session:
// a versioned, CRC-checksummed envelope around a self-contained
// payload — the original circuit source (re-parsed on restore, because
// re-rendering from the parsed form is lossy), the interaction
// position, and the decision diagram in the bit-exact binary encoding
// of internal/dd. A session serialized on one replica and restored on
// another reproduces the identical DD root edge.
//
// Envelope layout:
//
//	magic    8 bytes  "QDDSNAP\x00"
//	version  1 byte   currently 1
//	kind     1 byte   1 = simulation session, 2 = verification session
//	length   uvarint  payload byte count
//	payload  length bytes
//	crc      4 bytes  little-endian CRC-32C over everything above
//
// The decoder classifies failures: ErrTruncated (input shorter than
// the envelope claims), ErrChecksum (CRC mismatch — bit rot or torn
// write), ErrFormat (wrong magic/version/kind or a malformed payload).
// Callers route the first two to corruption counters and the last to
// incompatibility handling; none of them ever panics, whatever the
// input.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Classified decode failures. Every decode error wraps exactly one of
// these sentinels.
var (
	ErrTruncated = errors.New("snapshot: truncated")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrFormat    = errors.New("snapshot: malformed")
)

const (
	magic   = "QDDSNAP\x00"
	version = 1

	kindSim    = 1
	kindVerify = 2

	// maxPayload bounds what a decoder will even look at: larger
	// claims are rejected before any allocation. Generous against real
	// sessions (source text plus a compact DD encoding), tiny against
	// an adversarial length field.
	maxPayload = 64 << 20

	// maxClassical bounds the classical-register length a payload may
	// claim; qasm parsing enforces far smaller circuits.
	maxClassical = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sim is the durable form of a simulation session.
type Sim struct {
	Source    string // original circuit source text (verbatim)
	Format    string // "qasm" or "real" (as given at session creation)
	Seed      int64
	Pos       int    // next op index
	Classical []int  // classical bits (-1 = never written)
	PeakNodes int    // statistics continuity across restores
	State     []byte // dd.AppendVectorBinary blob of the current state
}

// Verify is the durable form of a verification session.
type Verify struct {
	LeftSource  string
	LeftFormat  string
	RightSource string
	RightFormat string
	LI, RI      int    // per-side positions
	X           []byte // dd.AppendMatrixBinary blob of the current diagram
}

type writer struct{ buf []byte }

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string) { w.bytes([]byte(s)) }
func (w *writer) i64(v int64)  { w.buf = binary.AppendVarint(w.buf, v) }

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(err error, format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]interface{}{err}, args...)...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(ErrFormat, "bad varint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) i64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail(ErrFormat, "bad varint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail(ErrTruncated, "field of %d bytes at byte %d exceeds payload", n, r.off)
		return nil
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

func (r *reader) str() string { return string(r.bytes()) }

// EncodeSim serializes a simulation session into a checksummed
// envelope.
func EncodeSim(s *Sim) []byte {
	var w writer
	w.str(s.Source)
	w.str(s.Format)
	w.i64(s.Seed)
	w.i64(int64(s.Pos))
	w.uvarint(uint64(len(s.Classical)))
	for _, c := range s.Classical {
		w.i64(int64(c))
	}
	w.i64(int64(s.PeakNodes))
	w.bytes(s.State)
	return seal(kindSim, w.buf)
}

// EncodeVerify serializes a verification session into a checksummed
// envelope.
func EncodeVerify(v *Verify) []byte {
	var w writer
	w.str(v.LeftSource)
	w.str(v.LeftFormat)
	w.str(v.RightSource)
	w.str(v.RightFormat)
	w.i64(int64(v.LI))
	w.i64(int64(v.RI))
	w.bytes(v.X)
	return seal(kindVerify, w.buf)
}

// seal wraps a payload in the envelope and appends the CRC trailer.
func seal(kind byte, payload []byte) []byte {
	buf := make([]byte, 0, len(magic)+2+binary.MaxVarintLen64+len(payload)+4)
	buf = append(buf, magic...)
	buf = append(buf, version, kind)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
}

// Decode parses and verifies an envelope. Exactly one of the returned
// payloads is non-nil on success. Failures wrap ErrTruncated,
// ErrChecksum, or ErrFormat.
func Decode(data []byte) (*Sim, *Verify, error) {
	kind, payload, err := open(data)
	if err != nil {
		return nil, nil, err
	}
	r := &reader{data: payload}
	switch kind {
	case kindSim:
		s := &Sim{
			Source: r.str(),
			Format: r.str(),
			Seed:   r.i64(),
			Pos:    int(r.i64()),
		}
		n := r.uvarint()
		if r.err == nil && n > maxClassical {
			return nil, nil, fmt.Errorf("%w: %d classical bits", ErrFormat, n)
		}
		if r.err == nil {
			s.Classical = make([]int, 0, n)
			for i := uint64(0); i < n; i++ {
				s.Classical = append(s.Classical, int(r.i64()))
			}
		}
		s.PeakNodes = int(r.i64())
		s.State = append([]byte(nil), r.bytes()...)
		if err := r.finish(); err != nil {
			return nil, nil, err
		}
		return s, nil, nil
	case kindVerify:
		v := &Verify{
			LeftSource:  r.str(),
			LeftFormat:  r.str(),
			RightSource: r.str(),
			RightFormat: r.str(),
			LI:          int(r.i64()),
			RI:          int(r.i64()),
		}
		v.X = append([]byte(nil), r.bytes()...)
		if err := r.finish(); err != nil {
			return nil, nil, err
		}
		return nil, v, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown session kind %d", ErrFormat, kind)
	}
}

// finish validates that the payload was consumed exactly.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrFormat, len(r.data)-r.off)
	}
	return nil
}

// open verifies the envelope (magic, version, length, CRC) and
// returns the kind byte and payload slice (aliasing data).
func open(data []byte) (byte, []byte, error) {
	if len(data) < len(magic)+2 {
		return 0, nil, fmt.Errorf("%w: %d bytes is shorter than any envelope", ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	if data[len(magic)] != version {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, data[len(magic)])
	}
	kind := data[len(magic)+1]
	off := len(magic) + 2
	n, sz := binary.Uvarint(data[off:])
	if sz <= 0 {
		return 0, nil, fmt.Errorf("%w: bad payload length", ErrFormat)
	}
	off += sz
	if n > maxPayload {
		return 0, nil, fmt.Errorf("%w: payload claims %d bytes (cap %d)", ErrFormat, n, maxPayload)
	}
	end := off + int(n)
	if end+4 > len(data) {
		return 0, nil, fmt.Errorf("%w: payload claims %d bytes, %d available", ErrTruncated, n, len(data)-off)
	}
	if end+4 < len(data) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after envelope", ErrFormat, len(data)-end-4)
	}
	want := binary.LittleEndian.Uint32(data[end:])
	if got := crc32.Checksum(data[:end], castagnoli); got != want {
		return 0, nil, fmt.Errorf("%w: crc %08x, want %08x", ErrChecksum, got, want)
	}
	return kind, data[off:end], nil
}
