package snapshot

// Store is the spill-to-disk side of durable sessions: a flat
// directory of <id>.snap files, one checksummed envelope each. Writes
// are atomic (temp file + rename) so a crash mid-spill leaves either
// the previous snapshot or none — never a torn file that would fail
// its CRC on restore. Transient I/O errors are retried with backoff;
// a byte cap evicts the oldest snapshots first, mirroring the
// registry's own LRU bias.
//
// All filesystem access goes through the FS interface so the fault
// harness (subpackage faultfs) can deterministically inject write
// failures, short reads, and bit-flips into every path the web layer
// exercises.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotFound reports that no snapshot exists for the requested id.
var ErrNotFound = errors.New("snapshot: not found")

// FS is the filesystem surface the store needs. OSFS is the real
// implementation; faultfs wraps any FS with deterministic faults.
type FS interface {
	MkdirAll(path string) error
	WriteFile(path string, data []byte) error
	Rename(oldPath, newPath string) error
	ReadFile(path string) ([]byte, error)
	Remove(path string) error
	ReadDir(path string) ([]FileInfo, error)
}

// FileInfo is the directory-listing subset the store uses to rebuild
// its size accounting from an existing spill directory.
type FileInfo struct {
	Name    string
	Size    int64
	ModTime time.Time
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string) error                { return os.MkdirAll(path, 0o755) }
func (OSFS) WriteFile(path string, data []byte) error  { return os.WriteFile(path, data, 0o644) }
func (OSFS) Rename(oldPath, newPath string) error      { return os.Rename(oldPath, newPath) }
func (OSFS) ReadFile(path string) ([]byte, error)      { return os.ReadFile(path) }
func (OSFS) Remove(path string) error                  { return os.Remove(path) }
func (o OSFS) ReadDir(path string) ([]FileInfo, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	out := make([]FileInfo, 0, len(ents))
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent remove
		}
		out = append(out, FileInfo{Name: e.Name(), Size: info.Size(), ModTime: info.ModTime()})
	}
	return out, nil
}

const (
	snapExt = ".snap"
	tmpExt  = ".tmp"

	// putAttempts and retryDelay govern the write retry loop. Three
	// attempts with a short linear backoff ride out transient errors
	// (EINTR-ish hiccups, a racing cleanup) without stalling eviction
	// behind a genuinely dead disk for long.
	putAttempts = 3
	retryDelay  = 10 * time.Millisecond
)

// Store persists session snapshots in one directory.
type Store struct {
	dir      string
	fs       FS
	maxBytes int64 // 0 = unbounded

	// sleep is swapped out by tests to avoid real backoff delays.
	sleep func(time.Duration)

	mu    sync.Mutex
	sizes map[string]int64 // id -> snapshot file size
	order []string         // ids, oldest write first (eviction order)
}

// OpenStore opens (creating if needed) a spill directory and rebuilds
// size accounting from any snapshots already present, oldest first —
// restarting a replica keeps its spilled sessions restorable.
func OpenStore(dir string, maxBytes int64, fs FS) (*Store, error) {
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("snapshot: create spill dir: %w", err)
	}
	st := &Store{
		dir:      dir,
		fs:       fs,
		maxBytes: maxBytes,
		sleep:    time.Sleep,
		sizes:    make(map[string]int64),
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: scan spill dir: %w", err)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].ModTime.Before(ents[j].ModTime) })
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name, tmpExt):
			// Leftover from a crash mid-spill; the rename never
			// happened, so the previous state (if any) is authoritative.
			_ = fs.Remove(filepath.Join(dir, e.Name))
		case strings.HasSuffix(e.Name, snapExt):
			id := strings.TrimSuffix(e.Name, snapExt)
			st.sizes[id] = e.Size
			st.order = append(st.order, id)
		}
	}
	st.enforceCapLocked()
	return st, nil
}

// SetSleep replaces the retry backoff sleeper; tests use it to run
// the retry path without real delays.
func (st *Store) SetSleep(f func(time.Duration)) { st.sleep = f }

// path maps a session id onto its snapshot file. Ids are
// server-generated ("sim-17"), but sanitize anyway so a hostile id
// can never escape the spill directory.
func (st *Store) path(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.Contains(id, "..") {
		return "", fmt.Errorf("%w (invalid id %q)", ErrNotFound, id)
	}
	return filepath.Join(st.dir, id+snapExt), nil
}

// Put durably stores a snapshot under id, replacing any previous one.
// The write lands in a temp file first and is renamed into place, so
// readers and crashes only ever observe complete envelopes. Transient
// failures are retried with backoff; the error returned is the last
// attempt's.
func (st *Store) Put(id string, data []byte) error {
	dst, err := st.path(id)
	if err != nil {
		return err
	}
	tmp := dst + tmpExt
	for attempt := 1; ; attempt++ {
		err = st.fs.WriteFile(tmp, data)
		if err == nil {
			err = st.fs.Rename(tmp, dst)
		}
		if err == nil {
			break
		}
		_ = st.fs.Remove(tmp)
		if attempt >= putAttempts {
			return fmt.Errorf("snapshot: spill %s after %d attempts: %w", id, attempt, err)
		}
		st.sleep(time.Duration(attempt) * retryDelay)
	}
	st.mu.Lock()
	if _, ok := st.sizes[id]; ok {
		st.removeFromOrderLocked(id)
	}
	st.sizes[id] = int64(len(data))
	st.order = append(st.order, id)
	st.enforceCapLocked()
	st.mu.Unlock()
	return nil
}

// Get returns the stored snapshot for id, or ErrNotFound.
func (st *Store) Get(id string) ([]byte, error) {
	p, err := st.path(id)
	if err != nil {
		return nil, err
	}
	data, err := st.fs.ReadFile(p)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("%w (%s)", ErrNotFound, id)
		}
		return nil, fmt.Errorf("snapshot: read %s: %w", id, err)
	}
	return data, nil
}

// Delete removes id's snapshot; deleting an absent id is not an error.
func (st *Store) Delete(id string) error {
	p, err := st.path(id)
	if err != nil {
		return nil
	}
	err = st.fs.Remove(p)
	st.mu.Lock()
	if _, ok := st.sizes[id]; ok {
		delete(st.sizes, id)
		st.removeFromOrderLocked(id)
	}
	st.mu.Unlock()
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("snapshot: delete %s: %w", id, err)
	}
	return nil
}

// ProbeWritable checks that the spill directory still accepts writes
// by creating and removing a small probe file through the store's FS.
// Health endpoints use it to turn "the disk went read-only under us"
// into a readiness failure before the next real spill discovers it.
func (st *Store) ProbeWritable() error {
	p := filepath.Join(st.dir, ".probe"+tmpExt)
	if err := st.fs.WriteFile(p, []byte("probe")); err != nil {
		return fmt.Errorf("snapshot: spill dir not writable: %w", err)
	}
	if err := st.fs.Remove(p); err != nil {
		return fmt.Errorf("snapshot: spill dir probe cleanup: %w", err)
	}
	return nil
}

// Dir reports the directory the store spills into.
func (st *Store) Dir() string { return st.dir }

// Len reports the number of stored snapshots.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sizes)
}

// Bytes reports the total stored snapshot size.
func (st *Store) Bytes() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytesLocked()
}

func (st *Store) bytesLocked() int64 {
	var n int64
	for _, s := range st.sizes {
		n += s
	}
	return n
}

func (st *Store) removeFromOrderLocked(id string) {
	for i, o := range st.order {
		if o == id {
			st.order = append(st.order[:i], st.order[i+1:]...)
			return
		}
	}
}

// enforceCapLocked evicts oldest-written snapshots until the store
// fits its byte cap. Best-effort: a failing Remove still drops the
// accounting entry, since the file may or may not remain.
func (st *Store) enforceCapLocked() {
	if st.maxBytes <= 0 {
		return
	}
	for st.bytesLocked() > st.maxBytes && len(st.order) > 0 {
		id := st.order[0]
		st.order = st.order[1:]
		delete(st.sizes, id)
		if p, err := st.path(id); err == nil {
			_ = st.fs.Remove(p)
		}
	}
}
