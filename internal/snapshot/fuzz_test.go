package snapshot_test

import (
	"bytes"
	"errors"
	"testing"

	"quantumdd/internal/dd"
	"quantumdd/internal/snapshot"
)

// fuzzSeeds builds the in-code seed set: valid envelopes of both
// kinds (with real DD blobs inside) plus truncated and bit-flipped
// variants. The checked-in corpus under testdata/fuzz mirrors these,
// so plain `go test` replays them as regression inputs even without
// -fuzz.
func fuzzSeeds() [][]byte {
	p := dd.New(2)
	h := complex(0.7071067811865476, 0)
	plus := p.ApplyGate(p.ZeroState(), dd.GateMatrix{h, h, h, -h}, 0)
	bell := p.ApplyGate(plus, dd.GateMatrix{0, 1, 1, 0}, 1, dd.Control{Qubit: 0})

	simBlob := snapshot.EncodeSim(&snapshot.Sim{
		Source:    "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		Format:    "qasm",
		Seed:      7,
		Pos:       2,
		Classical: []int{-1, -1},
		PeakNodes: 3,
		State:     p.AppendVectorBinary(nil, bell),
	})
	verBlob := snapshot.EncodeVerify(&snapshot.Verify{
		LeftSource:  "OPENQASM 2.0;\nqreg q[2];\nx q[0];\n",
		LeftFormat:  "qasm",
		RightSource: "OPENQASM 2.0;\nqreg q[2];\nx q[0];\n",
		RightFormat: "qasm",
		LI:          1,
		X:           p.AppendMatrixBinary(nil, p.Ident()),
	})

	seeds := [][]byte{simBlob, verBlob, nil, []byte("QDDSNAP\x00")}
	for _, cut := range []int{1, 8, 10, len(simBlob) / 2, len(simBlob) - 1} {
		if cut < len(simBlob) {
			seeds = append(seeds, simBlob[:cut])
		}
	}
	for _, off := range []int{0, 8, 9, 12, len(simBlob) / 2, len(simBlob) - 2} {
		mut := bytes.Clone(simBlob)
		mut[off] ^= 0x20
		seeds = append(seeds, mut)
	}
	mut := bytes.Clone(verBlob)
	mut[len(mut)/2] ^= 0x01
	seeds = append(seeds, mut)
	return seeds
}

// FuzzSnapshotDecode hammers the whole restore path with arbitrary
// bytes: the envelope decoder must classify every failure (never
// panic), and anything it accepts must survive the downstream DD
// decode — which itself must only ever fail with an error, under a
// node budget so hostile inputs cannot balloon memory.
func FuzzSnapshotDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sim, ver, err := snapshot.Decode(data)
		if err != nil {
			if !errors.Is(err, snapshot.ErrTruncated) &&
				!errors.Is(err, snapshot.ErrChecksum) &&
				!errors.Is(err, snapshot.ErrFormat) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		// The envelope checked out; the DD payload still gets the
		// hardened treatment. Budget-capped so fuzz inputs stay small.
		p := dd.New(2)
		p.SetMaxNodes(1 << 12)
		switch {
		case sim != nil:
			if _, err := p.DecodeVectorBinary(sim.State); err == nil {
				// A valid state must re-encode identically.
				e, _ := p.DecodeVectorBinary(sim.State)
				if !bytes.Equal(p.AppendVectorBinary(nil, e), sim.State) {
					t.Fatal("accepted state blob does not round-trip")
				}
			}
		case ver != nil:
			if _, err := p.DecodeMatrixBinary(ver.X); err == nil {
				e, _ := p.DecodeMatrixBinary(ver.X)
				if !bytes.Equal(p.AppendMatrixBinary(nil, e), ver.X) {
					t.Fatal("accepted matrix blob does not round-trip")
				}
			}
		}
	})
}
