package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

func sampleSim() *Sim {
	return &Sim{
		Source:    "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\n",
		Format:    "qasm",
		Seed:      42,
		Pos:       2,
		Classical: []int{-1, 1},
		PeakNodes: 3,
		State:     []byte{0x56, 1, 2, 3, 4},
	}
}

func sampleVerify() *Verify {
	return &Verify{
		LeftSource:  "OPENQASM 2.0;\nqreg q[1];\nx q[0];\n",
		LeftFormat:  "qasm",
		RightSource: ".begin x1 .end",
		RightFormat: "real",
		LI:          1,
		RI:          0,
		X:           []byte{0x4d, 9, 8, 7},
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	s := sampleSim()
	sim, ver, err := Decode(EncodeSim(s))
	if err != nil || ver != nil || sim == nil {
		t.Fatalf("Decode(sim): %v %v %v", sim, ver, err)
	}
	if sim.Source != s.Source || sim.Format != s.Format || sim.Seed != s.Seed ||
		sim.Pos != s.Pos || sim.PeakNodes != s.PeakNodes ||
		!bytes.Equal(sim.State, s.State) || len(sim.Classical) != 2 ||
		sim.Classical[0] != -1 || sim.Classical[1] != 1 {
		t.Fatalf("sim round trip mismatch: %+v", sim)
	}

	v := sampleVerify()
	sim, ver, err = Decode(EncodeVerify(v))
	if err != nil || sim != nil || ver == nil {
		t.Fatalf("Decode(verify): %v %v %v", sim, ver, err)
	}
	if ver.LeftSource != v.LeftSource || ver.RightFormat != v.RightFormat ||
		ver.LI != v.LI || ver.RI != v.RI || !bytes.Equal(ver.X, v.X) {
		t.Fatalf("verify round trip mismatch: %+v", ver)
	}
}

// TestDecodeClassifiesCorruption checks every byte-level mutation maps
// onto the right sentinel: truncation → ErrTruncated, payload/CRC
// damage → ErrChecksum, header damage → ErrFormat. Nothing panics.
func TestDecodeClassifiesCorruption(t *testing.T) {
	blob := EncodeSim(sampleSim())

	for cut := 0; cut < len(blob); cut++ {
		_, _, err := Decode(blob[:cut])
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFormat) && !errors.Is(err, ErrChecksum) {
			t.Fatalf("truncation at %d: unclassified error %v", cut, err)
		}
	}

	for off := 0; off < len(blob); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(blob)
			mut[off] ^= 1 << bit
			_, _, err := Decode(mut)
			if err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", off, bit)
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrFormat) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("bit flip at %d.%d: unclassified error %v", off, bit, err)
			}
		}
	}

	// Payload-interior flips must specifically be caught by the CRC.
	mut := bytes.Clone(blob)
	mut[len(mut)-10] ^= 0x40
	if _, _, err := Decode(mut); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload flip: got %v, want ErrChecksum", err)
	}

	if _, _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty input: got %v, want ErrTruncated", err)
	}
	if _, _, err := Decode(append(bytes.Clone(blob), 0)); !errors.Is(err, ErrFormat) {
		t.Fatalf("trailing byte: got %v, want ErrFormat", err)
	}
}

func TestDecodeRejectsHostileClaims(t *testing.T) {
	// An envelope whose payload length field claims more than the cap
	// must be rejected before allocation.
	hostile := []byte(magic)
	hostile = append(hostile, version, kindSim)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01) // huge uvarint
	if _, _, err := Decode(hostile); err == nil {
		t.Fatal("hostile length claim accepted")
	}
	// Unknown kind with a valid CRC must be ErrFormat.
	bad := seal(99, []byte{1, 2, 3})
	if _, _, err := Decode(bad); !errors.Is(err, ErrFormat) {
		t.Fatalf("unknown kind: got %v, want ErrFormat", err)
	}
}
