// Package faultfs wraps a snapshot.FS with deterministic fault
// injection so the degradation paths of the durability layer are
// tested, not assumed. Faults are scheduled by call count — "fail the
// 2nd write", "short-read the 1st read", "flip bit 3 of byte 10 on
// every read" — which makes failing tests reproducible and lets a
// scenario pin the exact operation that goes wrong.
package faultfs

import (
	"errors"
	"sync"

	"quantumdd/internal/snapshot"
)

// ErrInjected is the error returned by injected write/read failures,
// distinguishable from real filesystem errors in assertions.
var ErrInjected = errors.New("faultfs: injected fault")

// FS wraps an inner snapshot.FS with scheduled faults. The zero-value
// fault schedule injects nothing; configure with the Fail* fields
// before use. All methods are safe for concurrent use.
type FS struct {
	Inner snapshot.FS

	mu     sync.Mutex
	writes int
	reads  int

	// FailWrites lists 1-based WriteFile call numbers that fail with
	// ErrInjected (the file is not created).
	FailWrites map[int]bool
	// FailAllWrites, while set, fails every WriteFile with ErrInjected —
	// a disk gone read-only. Unlike the call-numbered schedule it can be
	// toggled off to model recovery. Guard access with SetFailAllWrites
	// when flipping concurrently with store traffic.
	FailAllWrites bool
	// FailRenames, when true, fails every Rename with ErrInjected —
	// the "write succeeded, publish failed" torn-spill case.
	FailRenames bool
	// FailReads lists 1-based ReadFile call numbers that fail with
	// ErrInjected.
	FailReads map[int]bool
	// ShortReads lists 1-based ReadFile call numbers that return only
	// the first half of the file — a truncated snapshot.
	ShortReads map[int]bool
	// FlipBit, when >= 0, XORs bit (FlipBit % 8) of byte
	// (FlipBit / 8 % len) into every ReadFile result — silent bit rot
	// the CRC must catch. Set to -1 for none.
	FlipBit int
}

// New wraps inner with an empty fault schedule.
func New(inner snapshot.FS) *FS {
	return &FS{Inner: inner, FlipBit: -1}
}

// Writes reports how many WriteFile calls the harness has seen.
func (f *FS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Reads reports how many ReadFile calls the harness has seen.
func (f *FS) Reads() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reads
}

func (f *FS) MkdirAll(path string) error { return f.Inner.MkdirAll(path) }

func (f *FS) WriteFile(path string, data []byte) error {
	f.mu.Lock()
	f.writes++
	fail := f.FailWrites[f.writes] || f.FailAllWrites
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.Inner.WriteFile(path, data)
}

// SetFailAllWrites flips the persistent write-failure switch under the
// harness lock, safe against concurrent WriteFile traffic.
func (f *FS) SetFailAllWrites(v bool) {
	f.mu.Lock()
	f.FailAllWrites = v
	f.mu.Unlock()
}

func (f *FS) Rename(oldPath, newPath string) error {
	if f.FailRenames {
		return ErrInjected
	}
	return f.Inner.Rename(oldPath, newPath)
}

func (f *FS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	f.reads++
	n := f.reads
	fail := f.FailReads[n]
	short := f.ShortReads[n]
	flip := f.FlipBit
	f.mu.Unlock()
	if fail {
		return nil, ErrInjected
	}
	data, err := f.Inner.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if short {
		data = data[:len(data)/2]
	}
	if flip >= 0 && len(data) > 0 {
		data = append([]byte(nil), data...)
		data[(flip/8)%len(data)] ^= 1 << (flip % 8)
	}
	return data, nil
}

func (f *FS) Remove(path string) error { return f.Inner.Remove(path) }

func (f *FS) ReadDir(path string) ([]snapshot.FileInfo, error) { return f.Inner.ReadDir(path) }
