package linalg

import (
	"math"
	"math/cmplx"
	"testing"
)

const tol = 1e-10

var (
	h2 = Matrix{N: 2, Data: []complex128{
		complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0),
		complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0),
	}}
	x2 = Matrix{N: 2, Data: []complex128{0, 1, 1, 0}}
)

func TestMulIdentity(t *testing.T) {
	id := Identity(4)
	m := NewMatrix(4)
	for i := range m.Data {
		m.Data[i] = complex(float64(i), float64(-i))
	}
	if !Equal(Mul(id, m), m, tol) || !Equal(Mul(m, id), m, tol) {
		t.Fatal("identity is not neutral under Mul")
	}
}

func TestMulHH(t *testing.T) {
	if !Equal(Mul(h2, h2), Identity(2), tol) {
		t.Fatal("H*H != I")
	}
}

func TestMatVec(t *testing.T) {
	v := Vector{1, 0}
	out := MatVec(h2, v)
	if cmplx.Abs(out[0]-complex(1/math.Sqrt2, 0)) > tol || cmplx.Abs(out[1]-complex(1/math.Sqrt2, 0)) > tol {
		t.Fatalf("H|0> = %v", out)
	}
}

func TestKron(t *testing.T) {
	// H (x) I2 from Ex. 3.
	m := Kron(h2, Identity(2))
	want := []complex128{
		complex(1/math.Sqrt2, 0), 0, complex(1/math.Sqrt2, 0), 0,
		0, complex(1/math.Sqrt2, 0), 0, complex(1/math.Sqrt2, 0),
		complex(1/math.Sqrt2, 0), 0, complex(-1/math.Sqrt2, 0), 0,
		0, complex(1/math.Sqrt2, 0), 0, complex(-1/math.Sqrt2, 0),
	}
	if !Equal(m, Matrix{N: 4, Data: want}, tol) {
		t.Fatalf("H kron I2 wrong: %v", m.Data)
	}
	out := MatVec(m, ZeroState(2))
	if cmplx.Abs(out[0]-complex(1/math.Sqrt2, 0)) > tol || cmplx.Abs(out[2]-complex(1/math.Sqrt2, 0)) > tol {
		t.Fatalf("(H kron I)|00> = %v, want 1/sqrt2 [1,0,1,0]", out)
	}
}

func TestKronVec(t *testing.T) {
	a := Vector{0, 1}    // |1>
	b := Vector{1, 0}    // |0>
	out := KronVec(a, b) // |10>
	want := Vector{0, 0, 1, 0}
	if !EqualVec(out, want, tol) {
		t.Fatalf("|1> kron |0> = %v", out)
	}
}

func TestIsUnitary(t *testing.T) {
	if !IsUnitary(h2, tol) {
		t.Fatal("H not unitary")
	}
	bad := Matrix{N: 2, Data: []complex128{1, 1, 0, 1}}
	if IsUnitary(bad, tol) {
		t.Fatal("non-unitary accepted")
	}
}

func TestEqualUpToGlobalPhase(t *testing.T) {
	phase := cmplx.Exp(complex(0, 0.7))
	m := NewMatrix(2)
	for i := range m.Data {
		m.Data[i] = h2.Data[i] * phase
	}
	if !EqualUpToGlobalPhase(m, h2, tol) {
		t.Fatal("global phase equality not detected")
	}
	if EqualUpToGlobalPhase(x2, h2, tol) {
		t.Fatal("distinct matrices wrongly equal up to phase")
	}
}

func TestApplyGateMatchesExtendGate(t *testing.T) {
	const n = 3
	u := [4]complex128{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)}
	for target := 0; target < n; target++ {
		v1 := ZeroState(n)
		v1[5] = 0.5 // make it non-trivial (unnormalized is fine)
		v2 := append(Vector(nil), v1...)
		ApplyGate(v1, u, target)
		full := ExtendGate(n, u, target, nil, nil)
		v2 = MatVec(full, v2)
		if !EqualVec(v1, v2, tol) {
			t.Fatalf("target %d: in-place and full-matrix application disagree", target)
		}
	}
}

func TestApplyControlledGate(t *testing.T) {
	const n = 3
	u := [4]complex128{0, 1, 1, 0} // X
	// CX with control 2, target 0 on |100>: control bit set -> |101>.
	v := make(Vector, 8)
	v[4] = 1
	ApplyControlledGate(v, u, 0, []int{2}, nil)
	if cmplx.Abs(v[5]-1) > tol {
		t.Fatalf("controlled apply wrong: %v", v)
	}
	// Negative control on |000>: fires -> |001>.
	v = make(Vector, 8)
	v[0] = 1
	ApplyControlledGate(v, u, 0, nil, []int{2})
	if cmplx.Abs(v[1]-1) > tol {
		t.Fatalf("negative-controlled apply wrong: %v", v)
	}
	full := ExtendGate(n, u, 0, []int{2}, nil)
	if !IsUnitary(full, tol) {
		t.Fatal("extended controlled gate not unitary")
	}
}

func TestQFTMatrix(t *testing.T) {
	// Fig. 5(c): the 8x8 QFT with ω = e^{iπ/4}; check a few entries.
	m := QFTMatrix(3)
	if !IsUnitary(m, tol) {
		t.Fatal("QFT matrix not unitary")
	}
	s := 1 / math.Sqrt(8)
	omega := cmplx.Exp(complex(0, math.Pi/4))
	if cmplx.Abs(m.At(0, 0)-complex(s, 0)) > tol {
		t.Fatalf("QFT[0][0] = %v", m.At(0, 0))
	}
	if cmplx.Abs(m.At(1, 1)-complex(s, 0)*omega) > tol {
		t.Fatalf("QFT[1][1] = %v, want s*omega", m.At(1, 1))
	}
	if cmplx.Abs(m.At(3, 3)-complex(s, 0)*omega) > tol {
		// row 3: [1, ω3, ω6, ω, ω4, ω7, ω2, ω5] → entry (3,3) = ω^9 = ω
		t.Fatalf("QFT[3][3] = %v, want s*omega (Fig. 5(c) row pattern)", m.At(3, 3))
	}
}

func TestNorm(t *testing.T) {
	v := Vector{complex(3, 0), complex(0, 4)}
	if math.Abs(Norm(v)-5) > tol {
		t.Fatalf("norm = %v, want 5", Norm(v))
	}
}

func TestDimensionPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("mul", func() { Mul(Identity(2), Identity(4)) })
	mustPanic("matvec", func() { MatVec(Identity(2), make(Vector, 4)) })
}
