// Package linalg provides a dense complex linear-algebra baseline:
// the textbook state-vector/system-matrix representation of Sec. II of
// the paper, whose exponential size is precisely what decision
// diagrams avoid. The DD package is validated against it in the test
// suites and raced against it in the E8 scaling experiments.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Vector is a dense state vector of length 2^n.
type Vector []complex128

// Matrix is a dense square complex matrix in row-major layout.
type Matrix struct {
	N    int // dimension
	Data []complex128
}

// NewMatrix allocates an N×N zero matrix.
func NewMatrix(n int) Matrix {
	return Matrix{N: n, Data: make([]complex128, n*n)}
}

// Identity returns the N×N identity.
func Identity(n int) Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i,j).
func (m Matrix) At(i, j int) complex128 { return m.Data[i*m.N+j] }

// Set assigns element (i,j).
func (m Matrix) Set(i, j int, v complex128) { m.Data[i*m.N+j] = v }

// Mul returns the matrix product a·b.
func Mul(a, b Matrix) Matrix {
	if a.N != b.N {
		panic(fmt.Sprintf("linalg: dimension mismatch %d vs %d", a.N, b.N))
	}
	n := a.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a.Data[i*n+k]
			if aik == 0 {
				continue
			}
			row := b.Data[k*n:]
			o := out.Data[i*n:]
			for j := 0; j < n; j++ {
				o[j] += aik * row[j]
			}
		}
	}
	return out
}

// MatVec returns the product m·v.
func MatVec(m Matrix, v Vector) Vector {
	if m.N != len(v) {
		panic(fmt.Sprintf("linalg: dimension mismatch %d vs %d", m.N, len(v)))
	}
	out := make(Vector, m.N)
	for i := 0; i < m.N; i++ {
		var s complex128
		row := m.Data[i*m.N:]
		for j := 0; j < m.N; j++ {
			s += row[j] * v[j]
		}
		out[i] = s
	}
	return out
}

// Kron returns the tensor product a⊗b.
func Kron(a, b Matrix) Matrix {
	n := a.N * b.N
	out := NewMatrix(n)
	for ia := 0; ia < a.N; ia++ {
		for ja := 0; ja < a.N; ja++ {
			w := a.At(ia, ja)
			if w == 0 {
				continue
			}
			for ib := 0; ib < b.N; ib++ {
				for jb := 0; jb < b.N; jb++ {
					out.Set(ia*b.N+ib, ja*b.N+jb, w*b.At(ib, jb))
				}
			}
		}
	}
	return out
}

// KronVec returns the tensor product a⊗b of two state vectors.
func KronVec(a, b Vector) Vector {
	out := make(Vector, len(a)*len(b))
	for i, x := range a {
		if x == 0 {
			continue
		}
		for j, y := range b {
			out[i*len(b)+j] = x * y
		}
	}
	return out
}

// ConjTranspose returns the adjoint m†.
func ConjTranspose(m Matrix) Matrix {
	out := NewMatrix(m.N)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// IsUnitary reports whether m†·m equals the identity within tol.
func IsUnitary(m Matrix, tol float64) bool {
	prod := Mul(ConjTranspose(m), m)
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(prod.At(i, j)-want) > tol {
				return false
			}
		}
	}
	return true
}

// Equal reports element-wise equality of two matrices within tol.
func Equal(a, b Matrix, tol float64) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// EqualUpToGlobalPhase reports whether a = e^{iφ}·b for some φ.
func EqualUpToGlobalPhase(a, b Matrix, tol float64) bool {
	if a.N != b.N {
		return false
	}
	var phase complex128
	for i := range a.Data {
		if cmplx.Abs(b.Data[i]) > tol {
			phase = a.Data[i] / b.Data[i]
			break
		}
	}
	if phase == 0 || math.Abs(cmplx.Abs(phase)-1) > 1e-6 {
		return false
	}
	for i := range a.Data {
		if cmplx.Abs(a.Data[i]-phase*b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// EqualVec reports element-wise equality of two vectors within tol.
func EqualVec(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

// Norm returns the 2-norm of v.
func Norm(v Vector) float64 {
	var s float64
	for _, c := range v {
		s += real(c)*real(c) + imag(c)*imag(c)
	}
	return math.Sqrt(s)
}

// ZeroState returns the dense |0…0⟩ state over n qubits.
func ZeroState(n int) Vector {
	v := make(Vector, 1<<uint(n))
	v[0] = 1
	return v
}

// ApplyGate applies a 2×2 gate u (with optional positive/negative
// controls encoded as qubit indices; negative as ^qubit is NOT used —
// see ApplyControlledGate) to the target qubit of a dense state
// in-place, without materializing the full 2^n matrix. This is the
// realistic "array simulator" baseline.
func ApplyGate(v Vector, u [4]complex128, target int) {
	mask := 1 << uint(target)
	for i := 0; i < len(v); i++ {
		if i&mask != 0 {
			continue
		}
		j := i | mask
		a, b := v[i], v[j]
		v[i] = u[0]*a + u[1]*b
		v[j] = u[2]*a + u[3]*b
	}
}

// ApplyControlledGate applies u to target when all positive controls
// are 1 and all negative controls are 0.
func ApplyControlledGate(v Vector, u [4]complex128, target int, posCtrl, negCtrl []int) {
	mask := 1 << uint(target)
	var posMask, negMask int
	for _, c := range posCtrl {
		posMask |= 1 << uint(c)
	}
	for _, c := range negCtrl {
		negMask |= 1 << uint(c)
	}
	for i := 0; i < len(v); i++ {
		if i&mask != 0 || i&posMask != posMask || i&negMask != 0 {
			continue
		}
		j := i | mask
		a, b := v[i], v[j]
		v[i] = u[0]*a + u[1]*b
		v[j] = u[2]*a + u[3]*b
	}
}

// ExtendGate builds the full 2^n×2^n matrix of gate u at target with
// the given controls — the naive construction of Ex. 3 that the DD
// package's MakeGateDD replaces.
func ExtendGate(n int, u [4]complex128, target int, posCtrl, negCtrl []int) Matrix {
	dim := 1 << uint(n)
	out := NewMatrix(dim)
	var posMask, negMask int
	for _, c := range posCtrl {
		posMask |= 1 << uint(c)
	}
	for _, c := range negCtrl {
		negMask |= 1 << uint(c)
	}
	tmask := 1 << uint(target)
	for col := 0; col < dim; col++ {
		if col&posMask != posMask || col&negMask != 0 {
			out.Set(col, col, 1)
			continue
		}
		j := (col & tmask) >> uint(target) // current target bit
		for i := 0; i < 2; i++ {
			row := col&^tmask | i<<uint(target)
			w := u[2*i+j]
			if w != 0 {
				out.Set(row, col, w)
			}
		}
	}
	return out
}

// QFTMatrix returns the 2^n×2^n quantum Fourier transform matrix
// F_{jk} = ω^{jk}/sqrt(2^n) with ω = e^{2πi/2^n} — Fig. 5(c) uses
// n = 3, where ω = e^{iπ/4}.
func QFTMatrix(n int) Matrix {
	dim := 1 << uint(n)
	m := NewMatrix(dim)
	s := complex(1/math.Sqrt(float64(dim)), 0)
	for j := 0; j < dim; j++ {
		for k := 0; k < dim; k++ {
			angle := 2 * math.Pi * float64(j*k%dim) / float64(dim)
			m.Set(j, k, s*cmplx.Exp(complex(0, angle)))
		}
	}
	return m
}
