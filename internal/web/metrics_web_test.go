package web

// End-to-end test of the /metrics endpoint: run a scripted simulation
// session against a real server, scrape the endpoint, and check both
// the family inventory (golden file) and the values the scrape must
// reflect. The golden file pins the public metric surface — adding or
// renaming a family is an intentional, reviewed change.

import (
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// newMetricsTestServer builds a server with a private registry so
// concurrent tests sharing obs.Default cannot pollute the scrape.
func newMetricsTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.Metrics = obs.NewRegistry()
	ws := NewServerWithConfig(cfg)
	t.Cleanup(ws.Close)
	srv := httptest.NewServer(ws.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpointAfterScriptedSession(t *testing.T) {
	srv := newMetricsTestServer(t)

	// Scripted session: create a Bell simulation and run it to the end
	// so the engine executes real gate applications under the tracer.
	var created struct {
		ID string `json:"id"`
	}
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	var out map[string]interface{}
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "end"}, &out)

	body := scrape(t, srv)

	// The family inventory is the public contract; compare against the
	// golden file so surface changes are deliberate.
	var families []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, line)
		}
	}
	got := strings.Join(families, "\n") + "\n"
	goldenPath := filepath.Join("testdata", "metrics_families.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric family inventory changed:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Values the scrape must reflect after one session ran to the end.
	for _, series := range []string{
		`sessions_active{kind="sim"} 1`,
		`sessions_created_total{kind="sim"} 1`,
		`dd_op_duration_seconds_count{op="applygate"}`,
		`dd_apply_table_lookups`,
		`dd_gates_fused`,
		`dd_gate_cache_hits`,
		`dd_compute_table_hit_ratio`,
		`dd_nodes_live`,
		`http_requests_total{code="2xx"} 2`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("scrape missing %q", series)
		}
	}

	// The engine actually traced work: gate applications now run
	// through the specialized kernel, so its histogram saw at least one
	// top-level operation during the fast-forward.
	if strings.Contains(body, `dd_op_duration_seconds_count{op="applygate"} 0`) {
		t.Error("applygate histogram recorded no operations after a full run")
	}
	// Live-node gauge reflects the session's published snapshot.
	if strings.Contains(body, "\ndd_nodes_live 0\n") {
		t.Error("dd_nodes_live is zero with a live session holding state")
	}
}

func TestMetricsRequestCountersAccumulate(t *testing.T) {
	srv := newMetricsTestServer(t)

	// A request that fails client-side must land in the 4xx class.
	resp, err := http.Post(srv.URL+"/api/simulation", "application/json",
		strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request status %d", resp.StatusCode)
	}

	body := scrape(t, srv)
	if !strings.Contains(body, `http_requests_total{code="4xx"} 1`) {
		t.Errorf("expected one 4xx request counted, scrape:\n%s", grepFamily(body, "http_requests_total"))
	}
	// The scrape itself is still in flight while the gauge is read.
	if !strings.Contains(body, "http_requests_in_flight 1") {
		t.Errorf("expected in-flight gauge of 1 during scrape:\n%s", grepFamily(body, "http_requests_in_flight"))
	}
}

// grepFamily returns the lines of one metric family for error output.
func grepFamily(body, name string) string {
	var sb strings.Builder
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, name) {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
