package web

// SSE live stream: frame schema, incremental frames across telemetry
// sweeps, the timeout exemption for the streaming path, and
// slow-consumer eviction at the hub.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"quantumdd/internal/algorithms"
)

// readSSEFrame reads one "data: {...}" frame (skipping comments and
// non-data event lines) from an SSE stream.
func readSSEFrame(t *testing.T, r *bufio.Reader) liveFrame {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var f liveFrame
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
			t.Fatalf("frame is not valid JSON: %v\n%s", err, line)
		}
		return f
	}
	t.Fatal("no SSE data frame within deadline")
	return liveFrame{}
}

func TestLiveStreamIncrementalFrames(t *testing.T) {
	ws, srv := newSpillTestServer(t, func(cfg *Config) {
		// A tight request deadline that the stream must outlive: the
		// middleware exempts /debug/live from RequestTimeout.
		cfg.RequestTimeout = 100 * time.Millisecond
	})
	ws.sampleTelemetry(time.Now())

	// Create a session so the frame's Top section has content.
	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)

	resp, err := http.Get(srv.URL + "/debug/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/live status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	br := bufio.NewReader(resp.Body)
	first := readSSEFrame(t, br) // immediate snapshot frame on connect

	// Outlive the request deadline, then drive two sweeps; each must
	// push one incremental frame.
	time.Sleep(150 * time.Millisecond)
	now := time.Now()
	ws.sampleTelemetry(now)
	ws.sampleTelemetry(now.Add(ws.cfg.SampleInterval))

	second := readSSEFrame(t, br)
	third := readSSEFrame(t, br)

	if !(first.Seq < second.Seq && second.Seq < third.Seq) {
		t.Fatalf("frame sequence not increasing: %d, %d, %d", first.Seq, second.Seq, third.Seq)
	}
	// Golden schema: the load-bearing keys every consumer depends on.
	raw, _ := json.Marshal(third)
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"seq", "time", "sessions", "http", "engine", "spill", "watchdog", "top"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("frame missing %q: %s", key, raw)
		}
	}
	if third.Sessions.Sim < 1 {
		t.Fatalf("frame sessions.sim = %d, want >= 1", third.Sessions.Sim)
	}
	found := false
	for _, u := range third.Top {
		if u.ID == created.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("created session %q absent from frame top: %+v", created.ID, third.Top)
	}
}

func TestLiveStreamDisabled(t *testing.T) {
	_, srv := newSpillTestServer(t, func(cfg *Config) { cfg.LiveStream = false })
	resp, err := http.Get(srv.URL + "/debug/live")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled live stream: status %d, want 404", resp.StatusCode)
	}
}

func TestLiveHubSlowConsumerEviction(t *testing.T) {
	ws, _ := newSpillTestServer(t, nil)
	hub := ws.tele.hub

	ch, ok := hub.subscribe()
	if !ok {
		t.Fatal("subscribe failed on open hub")
	}
	// Never read: the buffer (liveClientBuffer frames) fills, then the
	// next broadcast must evict rather than block the sampler.
	for i := 0; i < liveClientBuffer+1; i++ {
		hub.broadcast([]byte("{}"))
	}
	select {
	case _, open := <-ch:
		// Drain buffered frames until the close is observed.
		for open {
			_, open = <-ch
		}
	case <-time.After(time.Second):
		t.Fatal("evicted client's channel never closed")
	}
	if got := ws.metrics.liveEvicted.Value(); got != 1 {
		t.Fatalf("live_stream_clients_evicted_total = %d, want 1", got)
	}
	// A healthy consumer is unaffected by the other's eviction.
	ch2, _ := hub.subscribe()
	hub.broadcast([]byte(`{"seq":1}`))
	select {
	case b := <-ch2:
		if string(b) != `{"seq":1}` {
			t.Fatalf("healthy consumer got %q", b)
		}
	case <-time.After(time.Second):
		t.Fatal("healthy consumer starved")
	}
	hub.unsubscribe(ch2)
}
