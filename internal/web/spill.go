package web

// Spill-to-disk sessions: eviction (TTL or LRU) serializes the session
// into a checksummed snapshot instead of destroying it, and the next
// request for the id transparently restores it — 410 Gone becomes a
// restore path. The moving parts:
//
//   - The registry's onEvict hook fires with the per-session lock held
//     and the state intact; it encodes the snapshot synchronously
//     (cheap: a DFS over the diagram) and hands the bytes to the
//     spiller.
//   - The spiller publishes the bytes in a pending map first, then
//     writes them to the store on a background goroutine. A request
//     arriving between eviction and write completion restores from the
//     pending map, closing the evict/restore race without blocking
//     eviction on disk I/O.
//   - Restore runs under a per-id singleflight: concurrent requests
//     for the same evicted session wait for one restore rather than
//     decode the snapshot N times. Restored sessions re-enter the
//     registry under their original id (clearing the tombstone).
//
// Every failure degrades to the pre-spill behavior — evict to
// tombstone, answer 410 — and is counted and logged with the request
// id: durability problems must be visible, never fatal, and a corrupt
// snapshot must never surface as session state.

import (
	"errors"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"quantumdd/internal/obs"
	"quantumdd/internal/snapshot"
)

// spiller owns the session store plus the in-flight write tracking.
type spiller struct {
	store   *snapshot.Store
	logger  *slog.Logger
	metrics *serverMetrics

	mu      sync.Mutex
	pending map[string][]byte // encoded, not yet durably on disk
	wg      sync.WaitGroup    // in-flight background writes
}

func newSpiller(store *snapshot.Store, logger *slog.Logger, metrics *serverMetrics) *spiller {
	return &spiller{
		store:   store,
		logger:  logger,
		metrics: metrics,
		pending: make(map[string][]byte),
	}
}

// spill accepts an encoded snapshot for id and schedules the durable
// write. It returns immediately; the registry eviction path must not
// block on disk.
func (sp *spiller) spill(id string, blob []byte, spills, failures *obs.Counter, seconds *obs.Histogram) {
	sp.mu.Lock()
	sp.pending[id] = blob
	sp.mu.Unlock()
	sp.wg.Add(1)
	go func() {
		defer sp.wg.Done()
		start := time.Now()
		err := sp.store.Put(id, blob)
		seconds.Observe(time.Since(start).Seconds())
		sp.mu.Lock()
		// Only clear the pending entry if it is still ours: a re-evict
		// of a restored session may have published fresher bytes.
		if cur, ok := sp.pending[id]; ok && &cur[0] == &blob[0] {
			delete(sp.pending, id)
		}
		sp.mu.Unlock()
		if err != nil {
			// Degraded path: the session is now just a tombstone, as
			// before spill existed. No request is associated with a
			// background write, so this warning carries the session id
			// only.
			failures.Inc()
			sp.logger.Warn("session spill failed; session degraded to tombstone",
				"component", "spill", "sessionId", id, "error", err)
			return
		}
		spills.Inc()
	}()
}

// fetch returns the newest snapshot bytes for id: the pending map wins
// over the store (it is always at least as fresh).
func (sp *spiller) fetch(id string) ([]byte, error) {
	sp.mu.Lock()
	blob, ok := sp.pending[id]
	sp.mu.Unlock()
	if ok {
		return blob, nil
	}
	return sp.store.Get(id)
}

// forget removes id's snapshot everywhere; called after a successful
// restore (the snapshot is stale the moment the session steps) and
// when a snapshot proves corrupt.
func (sp *spiller) forget(id string) {
	sp.mu.Lock()
	delete(sp.pending, id)
	sp.mu.Unlock()
	if err := sp.store.Delete(id); err != nil {
		sp.logger.Warn("snapshot delete failed", "component", "spill", "sessionId", id, "error", err)
	}
}

// flush waits for all in-flight background writes — graceful shutdown
// must not lose spills that eviction already promised.
func (sp *spiller) flush() { sp.wg.Wait() }

// restoreFlight is the per-id singleflight for restores.
type restoreFlight struct {
	mu sync.Mutex
	m  map[string]chan struct{}
}

// begin claims the restore of id. The first caller gets run=true and
// must call the returned done func when finished; later callers block
// until then and get run=false (they re-try acquire afterwards).
func (rf *restoreFlight) begin(id string) (done func(), run bool) {
	rf.mu.Lock()
	if rf.m == nil {
		rf.m = make(map[string]chan struct{})
	}
	if ch, ok := rf.m[id]; ok {
		rf.mu.Unlock()
		<-ch
		return nil, false
	}
	ch := make(chan struct{})
	rf.m[id] = ch
	rf.mu.Unlock()
	return func() {
		rf.mu.Lock()
		delete(rf.m, id)
		rf.mu.Unlock()
		close(ch)
	}, true
}

// spillEnabled reports whether the durability layer is active.
func (s *Server) spillEnabled() bool { return s.spill != nil }

// spillSim is the sims registry's eviction hook.
func (s *Server) spillSim(id string, sess *simSession) {
	s.spill.spill(id, sess.snapshot(), s.metrics.simsSpilled, s.metrics.simSpillFailures, s.metrics.spillSeconds)
}

// spillVerify is the verifies registry's eviction hook.
func (s *Server) spillVerify(id string, sess *verifySession) {
	s.spill.spill(id, sess.snapshot(), s.metrics.verifiesSpilled, s.metrics.verifySpillFailures, s.metrics.spillSeconds)
}

// classifyRestoreFailure maps a restore error onto the metrics and a
// log reason. Checksum/truncation damage counts as corruption; a
// snapshot that decodes but fails validation (format, budget, stale
// semantics) counts as a restore failure.
func (s *Server) classifyRestoreFailure(kind string, err error) string {
	switch {
	case errors.Is(err, snapshot.ErrChecksum), errors.Is(err, snapshot.ErrTruncated):
		s.metrics.corruptions(kind).Inc()
		return "corrupt"
	case errors.Is(err, snapshot.ErrFormat):
		s.metrics.corruptions(kind).Inc()
		return "malformed"
	default:
		return "invalid"
	}
}

// acquireSim looks up a simulation session, transparently restoring it
// from the spill store when it was evicted (or the process restarted).
func (s *Server) acquireSim(r *http.Request, id string, now time.Time) (*handle[*simSession], error) {
	for {
		h, err := s.sims.acquire(id, now)
		if err == nil {
			// The single choke point every request to the session passes
			// through — where the resource account counts it.
			h.val.acct.touch()
			return h, nil
		}
		if !s.spillEnabled() || !restorable(err) {
			return h, err
		}
		if !s.restoreSim(r, id, now) {
			return nil, err
		}
	}
}

// acquireVerify is acquireSim for verification sessions.
func (s *Server) acquireVerify(r *http.Request, id string, now time.Time) (*handle[*verifySession], error) {
	for {
		h, err := s.verifies.acquire(id, now)
		if err == nil {
			h.val.acct.touch()
			return h, nil
		}
		if !s.spillEnabled() || !restorable(err) {
			return h, err
		}
		if !s.restoreVerify(r, id, now) {
			return nil, err
		}
	}
}

// restorable reports whether a lookup failure may be answered by the
// spill store. Unknown ids are included: after a process restart the
// registry is empty but the spill directory is not.
func restorable(err error) bool {
	return errors.Is(err, errSessionGone) || errors.Is(err, errSessionUnknown)
}

// restoreSim attempts one singleflight restore of a sim session and
// reports whether a retry of acquire is worthwhile.
func (s *Server) restoreSim(r *http.Request, id string, now time.Time) bool {
	done, run := s.restores.begin(id)
	if !run {
		// Another request restored (or failed to); re-try acquire
		// either way — on success the registry now has the session.
		return true
	}
	defer done()
	start := time.Now()
	blob, err := s.spill.fetch(id)
	if err != nil {
		if !errors.Is(err, snapshot.ErrNotFound) {
			// Store unavailable — the degraded path the fault harness
			// exercises. The session stays a tombstone.
			s.metrics.simRestoreFailures.Inc()
			s.reqLogger(r).Warn("session restore degraded: spill store unavailable",
				"component", "spill", "sessionId", id, "error", err)
		}
		return false
	}
	sim, ver, err := snapshot.Decode(blob)
	if err == nil && sim == nil {
		err = errorVerifySnapshot
		_ = ver
	}
	var sess *simSession
	if err == nil {
		sess, err = resumeSimSession(sim, s.cfg.MaxNodes)
	}
	if err != nil {
		reason := s.classifyRestoreFailure("sim", err)
		s.metrics.simRestoreFailures.Inc()
		s.reqLogger(r).Warn("session restore degraded to tombstone",
			"component", "spill", "sessionId", id, "reason", reason, "error", err)
		s.spill.forget(id) // the snapshot is unusable; don't retry it forever
		s.tombstoneSim(id)
		return false
	}
	sess.rec = s.newRecorder(id)
	s.instrument(sess.sim.Pkg(), sess.rec, sess.acct)
	s.spill.forget(id)
	if evicted := s.sims.put(id, sess, now); evicted != "" {
		s.metrics.evictedLRU.Inc()
	}
	s.metrics.restoreSeconds.Observe(time.Since(start).Seconds())
	s.metrics.simsRestored.Inc()
	s.reqLogger(r).Info("session restored from spill",
		"component", "spill", "sessionId", id, "kind", "sim")
	return true
}

// restoreVerify mirrors restoreSim for verification sessions.
func (s *Server) restoreVerify(r *http.Request, id string, now time.Time) bool {
	done, run := s.restores.begin(id)
	if !run {
		return true
	}
	defer done()
	start := time.Now()
	blob, err := s.spill.fetch(id)
	if err != nil {
		if !errors.Is(err, snapshot.ErrNotFound) {
			s.metrics.verifyRestoreFailures.Inc()
			s.reqLogger(r).Warn("session restore degraded: spill store unavailable",
				"component", "spill", "sessionId", id, "error", err)
		}
		return false
	}
	sim, ver, err := snapshot.Decode(blob)
	if err == nil && ver == nil {
		err = errorSimSnapshot
		_ = sim
	}
	var sess *verifySession
	if err == nil {
		sess, err = resumeVerifySession(ver, s.cfg.MaxNodes)
	}
	if err != nil {
		reason := s.classifyRestoreFailure("verify", err)
		s.metrics.verifyRestoreFailures.Inc()
		s.reqLogger(r).Warn("session restore degraded to tombstone",
			"component", "spill", "sessionId", id, "reason", reason, "error", err)
		s.spill.forget(id)
		s.tombstoneVerify(id)
		return false
	}
	sess.rec = s.newRecorder(id)
	s.instrument(sess.pkg, sess.rec, sess.acct)
	s.spill.forget(id)
	if evicted := s.verifies.put(id, sess, now); evicted != "" {
		s.metrics.evictedLRU.Inc()
	}
	s.metrics.restoreSeconds.Observe(time.Since(start).Seconds())
	s.metrics.verifiesRestored.Inc()
	s.reqLogger(r).Info("session restored from spill",
		"component", "spill", "sessionId", id, "kind", "verify")
	return true
}

var (
	errorVerifySnapshot = errors.New("web: snapshot holds a verification session, not a simulation")
	errorSimSnapshot    = errors.New("web: snapshot holds a simulation session, not a verification")
)

// tombstoneSim records a tombstone for an id whose snapshot proved
// unusable, so subsequent requests get a definitive 410 instead of
// retrying the restore path.
func (s *Server) tombstoneSim(id string)    { s.sims.tombstone(id) }
func (s *Server) tombstoneVerify(id string) { s.verifies.tombstone(id) }
