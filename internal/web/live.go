package web

// GET /debug/live — the SSE telemetry stream.
//
// Each connected client gets a buffered channel of pre-marshalled
// frames; the telemetry tick broadcasts one frame to every client with
// a non-blocking send. A client that cannot keep up — its buffer is
// full because the peer stopped reading — is evicted on the spot: its
// channel is closed, the handler sends a final "evicted" event, and
// live_stream_clients_evicted_total counts it. A slow dashboard must
// never exert backpressure on the sampling loop or pile up unbounded
// frame queues.
//
// The stream is exempt from the per-request deadline and from the
// request-latency histogram (see middleware.go): a deliberately
// long-lived response would otherwise be killed after
// Config.RequestTimeout and would poison the p99 the SLO gate reads.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"quantumdd/internal/obs"
)

var (
	errLiveDisabled = errors.New("web: live telemetry stream disabled (no sample interval configured)")
	errLiveNoFlush  = errors.New("web: response writer does not support streaming")
	errLiveShutdown = errors.New("web: server shutting down")
)

// liveClientBuffer is each subscriber's frame buffer. At the default
// 5s interval this forgives ~40s of stalled reads before eviction.
const liveClientBuffer = 8

// liveHub fans telemetry frames out to the connected SSE clients.
type liveHub struct {
	clientsGauge *obs.Gauge
	evicted      *obs.Counter
	frames       *obs.Counter

	mu      sync.Mutex
	clients map[chan []byte]struct{}
	closed  bool
}

func newLiveHub(m *serverMetrics) *liveHub {
	return &liveHub{
		clientsGauge: m.liveClients,
		evicted:      m.liveEvicted,
		frames:       m.liveFrames,
		clients:      make(map[chan []byte]struct{}),
	}
}

// subscribe registers a client. The second return is false when the
// hub already shut down.
func (h *liveHub) subscribe() (chan []byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, false
	}
	ch := make(chan []byte, liveClientBuffer)
	h.clients[ch] = struct{}{}
	h.clientsGauge.Set(float64(len(h.clients)))
	return ch, true
}

// unsubscribe removes a client; safe to call after the broadcast side
// already evicted (and closed) the channel.
func (h *liveHub) unsubscribe(ch chan []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.clients[ch]; ok {
		delete(h.clients, ch)
		close(ch)
	}
	h.clientsGauge.Set(float64(len(h.clients)))
}

// broadcast sends one frame to every client without blocking: a full
// buffer evicts its client.
func (h *liveHub) broadcast(frame []byte) {
	h.frames.Inc()
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.clients {
		select {
		case ch <- frame:
		default:
			delete(h.clients, ch)
			close(ch)
			h.evicted.Inc()
		}
	}
	h.clientsGauge.Set(float64(len(h.clients)))
}

// closeAll disconnects every client and refuses new subscriptions;
// called from Server.Close.
func (h *liveHub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for ch := range h.clients {
		delete(h.clients, ch)
		close(ch)
	}
	h.clientsGauge.Set(0)
}

// liveFrame is the JSON schema of one SSE frame. Additive changes
// only — dashboards bind to these keys.
type liveFrame struct {
	Seq      uint64         `json:"seq"`
	Time     string         `json:"time"` // RFC3339Nano
	Sessions liveSessions   `json:"sessions"`
	HTTP     liveHTTP       `json:"http"`
	Engine   liveEngine     `json:"engine"`
	Spill    liveSpill      `json:"spill"`
	Watchdog liveWatchdog   `json:"watchdog"`
	Top      []sessionUsage `json:"top"`
}

type liveSessions struct {
	Sim    int `json:"sim"`
	Verify int `json:"verify"`
}

type liveHTTP struct {
	InFlight    float64 `json:"inFlight"`
	RatePerSec  float64 `json:"ratePerSec"` // all classes, over the SLO window
	P99Seconds  float64 `json:"p99Seconds"`
	ErrorsTotal float64 `json:"errorsTotal"` // lifetime 5xx count
}

type liveEngine struct {
	LiveNodes    float64 `json:"liveNodes"`
	CTHitRatio   float64 `json:"ctHitRatio"`
	GCRuns       float64 `json:"gcRuns"`
	OpRatePerSec float64 `json:"opRatePerSec"` // dd ops across sessions, over the SLO window
}

type liveSpill struct {
	Bytes     float64 `json:"bytes"`
	Snapshots float64 `json:"snapshots"`
}

type liveWatchdog struct {
	Events  int    `json:"events"`
	Latest  string `json:"latest,omitempty"` // newest rule name
	Dropped uint64 `json:"dropped"`
}

// liveTopN bounds the per-frame session ranking.
const liveTopN = 5

// liveFrameBytes assembles and marshals one frame from the retained
// telemetry at now. usage is the tick's accounting snapshot (already
// sorted heaviest-first).
func (s *Server) liveFrameBytes(now time.Time, usage []sessionUsage) []byte {
	st := s.tele.store
	win := s.sloWindow()
	f := liveFrame{
		Seq:  s.liveSeq.Add(1),
		Time: now.UTC().Format(time.RFC3339Nano),
		Sessions: liveSessions{
			Sim:    s.sims.size(),
			Verify: s.verifies.size(),
		},
		HTTP: liveHTTP{
			InFlight: st.LatestValue("http_requests_in_flight", "", 0),
		},
		Engine: liveEngine{
			LiveNodes:  st.LatestValue("dd_nodes_live", "", 0),
			CTHitRatio: st.LatestValue("dd_compute_table_hit_ratio", "", 0),
			GCRuns:     st.LatestValue("dd_gc_runs", "", 0),
		},
		Spill: liveSpill{
			Bytes:     st.LatestValue("spill_store_bytes", "", 0),
			Snapshots: st.LatestValue("spill_store_snapshots", "", 0),
		},
		Top: usage,
	}
	if len(f.Top) > liveTopN {
		f.Top = f.Top[:liveTopN]
	}
	if f.Top == nil {
		f.Top = []sessionUsage{}
	}
	for _, class := range []string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
		if rate, ok := st.Rate("http_requests_total", `code="`+class+`"`, win, now); ok {
			f.HTTP.RatePerSec += rate
		}
	}
	f.HTTP.ErrorsTotal = st.LatestValue("http_requests_total", `code="5xx"`, 0)
	if p99, ok := st.Quantile("http_request_duration_seconds", "", 0.99, win, now); ok {
		f.HTTP.P99Seconds = p99
	}
	var opRate float64
	for _, u := range usage {
		if r, ok := st.Rate("session_dd_ops", fmt.Sprintf("id=%q", u.ID), win, now); ok {
			opRate += r
		}
	}
	f.Engine.OpRatePerSec = opRate
	evs := s.tele.dog.Events()
	f.Watchdog = liveWatchdog{Events: len(evs), Dropped: s.tele.dog.Dropped()}
	if len(evs) > 0 {
		f.Watchdog.Latest = evs[len(evs)-1].Rule
	}
	b, err := json.Marshal(f)
	if err != nil {
		// The frame is built from plain structs; a marshal failure is a
		// programming error surfaced as an empty frame, never a panic in
		// the sampling loop.
		return []byte(`{"error":"frame marshal failed"}`)
	}
	return b
}

// handleLive serves the SSE stream.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	if s.tele == nil {
		s.writeErr(w, r, http.StatusNotFound, codeBadRequest,
			errLiveDisabled)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeErr(w, r, http.StatusInternalServerError, codeInternal,
			errLiveNoFlush)
		return
	}
	ch, ok := s.tele.hub.subscribe()
	if !ok {
		s.writeErr(w, r, http.StatusServiceUnavailable, codeInternal,
			errLiveShutdown)
		return
	}
	defer s.tele.hub.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	// An immediate snapshot frame so a client sees data before the
	// next tick; subsequent frames arrive from the broadcast loop.
	fmt.Fprintf(w, "data: %s\n\n", s.liveFrameBytes(time.Now(), s.sessionUsageSnapshot()))
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case frame, open := <-ch:
			if !open {
				// Evicted as a slow consumer (or the server shut down):
				// tell the client why before the connection closes.
				fmt.Fprint(w, "event: evicted\ndata: {\"reason\":\"slow consumer or shutdown\"}\n\n")
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", frame)
			fl.Flush()
		}
	}
}
