package web

// Server metrics: HTTP traffic, session lifecycle, and the aggregated
// DD engine view over all live sessions.
//
// Hot-path series (request counters, latency histograms, in-flight
// gauge) are updated inline by the middleware — atomic and
// allocation-free. Point-in-time gauges (active sessions, tombstones,
// DD table loads) are refreshed at scrape time by collect(), which
// reads each session's atomically published stats snapshot
// (dd.Pkg.LastStats) — it never takes a session lock, so a scrape
// cannot stall behind a long fast-forward, and a mid-step GC cannot
// race the reader.

import (
	"net/http"

	"quantumdd/internal/dd"
	"quantumdd/internal/obs"
	"quantumdd/internal/obs/trace"
)

type serverMetrics struct {
	registry *obs.Registry
	dd       *obs.DDCollector
	shape    *obs.ShapeCollector

	// Middleware-maintained traffic series.
	reqByClass  [6]*obs.Counter // index = status/100; 0 unused
	reqDuration *obs.Histogram
	inFlight    *obs.Gauge
	panics      *obs.Counter

	// Session lifecycle.
	simsActive      *obs.Gauge
	verifiesActive  *obs.Gauge
	simsTombs       *obs.Gauge
	verifiesTombs   *obs.Gauge
	simsCreated     *obs.Counter
	verifiesCreated *obs.Counter
	evictedLRU      *obs.Counter
	evictedTTL      *obs.Counter
	reaperSweeps    *obs.Counter

	// Durability: spill-to-disk and restore lifecycle (PR 6). Nil-safe
	// to read — they are registered unconditionally even when spilling
	// is disabled, so dashboards see stable zero series.
	simsSpilled           *obs.Counter
	verifiesSpilled       *obs.Counter
	simSpillFailures      *obs.Counter
	verifySpillFailures   *obs.Counter
	simsRestored          *obs.Counter
	verifiesRestored      *obs.Counter
	simRestoreFailures    *obs.Counter
	verifyRestoreFailures *obs.Counter
	simCorruptions        *obs.Counter
	verifyCorruptions     *obs.Counter
	spillSeconds          *obs.Histogram
	restoreSeconds        *obs.Histogram
	spillBytes            *obs.Gauge
	spillSnapshots        *obs.Gauge

	// Parallel trajectory engine (PR 7): noisy-ensemble throughput.
	trajectoriesCompleted *obs.Counter
	trajectorySeconds     *obs.Histogram
	noisyWorkers          *obs.Gauge

	// Flight-recorder accounting across all sessions.
	spansDropped *obs.Counter

	// Live telemetry stream (PR 8). Registered unconditionally so the
	// family inventory is stable whether or not sampling is enabled.
	liveClients *obs.Gauge
	liveEvicted *obs.Counter
	liveFrames  *obs.Counter
}

// corruptions selects the corruption counter for a session kind.
func (m *serverMetrics) corruptions(kind string) *obs.Counter {
	if kind == "verify" {
		return m.verifyCorruptions
	}
	return m.simCorruptions
}

func newServerMetrics(r *obs.Registry) *serverMetrics {
	// Process identity first, so process_start_time_seconds and
	// build_info lead the exposition regardless of what else registers.
	obs.RegisterProcessMetrics(r)
	m := &serverMetrics{registry: r, dd: obs.NewDDCollector(r), shape: obs.NewShapeCollector(r)}
	classes := [6]string{"", "1xx", "2xx", "3xx", "4xx", "5xx"}
	for i := 1; i < len(classes); i++ {
		m.reqByClass[i] = r.Counter("http_requests_total",
			"HTTP requests served, by status class.", obs.L("code", classes[i]))
	}
	m.reqDuration = r.Histogram("http_request_duration_seconds",
		"End-to-end request latency.", obs.LatencyBuckets)
	m.inFlight = r.Gauge("http_requests_in_flight",
		"Requests currently being served.")
	m.panics = r.Counter("http_panics_recovered_total",
		"Handler panics recovered by the middleware.")
	m.simsActive = r.Gauge("sessions_active",
		"Live sessions, by kind.", obs.L("kind", "sim"))
	m.verifiesActive = r.Gauge("sessions_active",
		"Live sessions, by kind.", obs.L("kind", "verify"))
	m.simsTombs = r.Gauge("session_tombstones",
		"Evicted session ids remembered for 410 answers, by kind.", obs.L("kind", "sim"))
	m.verifiesTombs = r.Gauge("session_tombstones",
		"Evicted session ids remembered for 410 answers, by kind.", obs.L("kind", "verify"))
	m.simsCreated = r.Counter("sessions_created_total",
		"Sessions created, by kind.", obs.L("kind", "sim"))
	m.verifiesCreated = r.Counter("sessions_created_total",
		"Sessions created, by kind.", obs.L("kind", "verify"))
	m.evictedLRU = r.Counter("sessions_evicted_total",
		"Sessions evicted, by reason.", obs.L("reason", "lru"))
	m.evictedTTL = r.Counter("sessions_evicted_total",
		"Sessions evicted, by reason.", obs.L("reason", "ttl"))
	m.reaperSweeps = r.Counter("session_reaper_sweeps_total",
		"Idle-session reaper sweeps completed.")
	m.simsSpilled = r.Counter("session_spills_total",
		"Sessions spilled to disk on eviction, by kind.", obs.L("kind", "sim"))
	m.verifiesSpilled = r.Counter("session_spills_total",
		"Sessions spilled to disk on eviction, by kind.", obs.L("kind", "verify"))
	m.simSpillFailures = r.Counter("session_spill_failures_total",
		"Spill writes that failed after retries (session degraded to tombstone), by kind.", obs.L("kind", "sim"))
	m.verifySpillFailures = r.Counter("session_spill_failures_total",
		"Spill writes that failed after retries (session degraded to tombstone), by kind.", obs.L("kind", "verify"))
	m.simsRestored = r.Counter("session_restores_total",
		"Sessions transparently restored from the spill store, by kind.", obs.L("kind", "sim"))
	m.verifiesRestored = r.Counter("session_restores_total",
		"Sessions transparently restored from the spill store, by kind.", obs.L("kind", "verify"))
	m.simRestoreFailures = r.Counter("session_restore_failures_total",
		"Restore attempts that degraded to a tombstone, by kind.", obs.L("kind", "sim"))
	m.verifyRestoreFailures = r.Counter("session_restore_failures_total",
		"Restore attempts that degraded to a tombstone, by kind.", obs.L("kind", "verify"))
	m.simCorruptions = r.Counter("snapshot_corruptions_total",
		"Snapshots rejected for checksum, truncation, or format damage, by kind.", obs.L("kind", "sim"))
	m.verifyCorruptions = r.Counter("snapshot_corruptions_total",
		"Snapshots rejected for checksum, truncation, or format damage, by kind.", obs.L("kind", "verify"))
	m.spillSeconds = r.Histogram("session_spill_seconds",
		"Durable spill write latency (encode excluded).", obs.LatencyBuckets)
	m.restoreSeconds = r.Histogram("session_restore_seconds",
		"Session restore latency (fetch, decode, rebuild).", obs.LatencyBuckets)
	m.spillBytes = r.Gauge("spill_store_bytes",
		"Total bytes in the spill store.")
	m.spillSnapshots = r.Gauge("spill_store_snapshots",
		"Snapshots currently in the spill store.")
	m.trajectoriesCompleted = r.Counter("trajectories_completed_total",
		"Monte-Carlo noise trajectories completed by the /api/noisy pool.")
	m.trajectorySeconds = r.Histogram("trajectory_seconds",
		"Wall-clock duration of one completed noise trajectory.", obs.LatencyBuckets)
	m.noisyWorkers = r.Gauge("noisy_workers",
		"Trajectory pool width used by the most recent /api/noisy ensemble.")
	m.spansDropped = r.Counter("trace_spans_dropped_total",
		"Spans evicted from per-session flight recorders (ring buffer at capacity).")
	m.liveClients = r.Gauge("live_stream_clients",
		"Clients currently connected to the /debug/live SSE stream.")
	m.liveEvicted = r.Counter("live_stream_clients_evicted_total",
		"Live-stream clients evicted for not keeping up with the frame rate.")
	m.liveFrames = r.Counter("live_stream_frames_total",
		"Telemetry frames broadcast to the live stream.")
	return m
}

// observeStatus counts a finished request under its status class.
func (m *serverMetrics) observeStatus(status int) {
	class := status / 100
	if class < 1 || class > 5 {
		class = 5
	}
	m.reqByClass[class].Inc()
}

// collect refreshes the point-in-time gauges: session counts and the
// DD aggregate over every live session's last published snapshot.
func (s *Server) collect() {
	m := s.metrics
	m.simsActive.Set(float64(s.sims.size()))
	m.verifiesActive.Set(float64(s.verifies.size()))
	m.simsTombs.Set(float64(s.sims.tombCount()))
	m.verifiesTombs.Set(float64(s.verifies.tombCount()))
	if s.spill != nil {
		m.spillBytes.Set(float64(s.spill.store.Bytes()))
		m.spillSnapshots.Set(float64(s.spill.store.Len()))
	}

	// forEach hands idle sessions over with their lock held
	// (fresh=true): those get a forced PublishStats first, so a scrape
	// right after a short burst of activity (fewer ops than the
	// publish stride, no GC) still observes current table loads and
	// node counts instead of a snapshot up to 31 operations old. Busy
	// sessions fall back to the race-clean LastStats read.
	// Shape aggregation rides the same sweep: each kind's gauges track
	// the largest recently profiled diagram across sessions (the one a
	// blowup would show up in first), and the profile counters sum the
	// per-session sequence numbers. Idle sessions that never crossed the
	// sampling stride get one forced profile here so short-lived
	// sessions are not invisible; busy ones read race-clean snapshots.
	var agg dd.Stats
	pkgs := 0
	var vecShape, matShape *dd.ShapeProfile
	var vecProfiles, matProfiles uint64
	s.sims.forEach(func(id string, sess *simSession, fresh bool) {
		p := sess.sim.Pkg()
		if fresh {
			p.PublishStats()
			if p.ShapeInterval() > 0 && p.LastShape() == nil {
				p.PublishShapeV(sess.sim.State())
			}
		}
		if st, ok := p.LastStats(); ok {
			agg = obs.AddStats(agg, st)
			pkgs++
		}
		if sp := p.LastShape(); sp != nil {
			vecShape = obs.MaxShape(vecShape, sp)
			vecProfiles += sp.Seq
		}
	})
	s.verifies.forEach(func(id string, sess *verifySession, fresh bool) {
		if fresh {
			sess.pkg.PublishStats()
			if sess.pkg.ShapeInterval() > 0 && sess.pkg.LastShape() == nil {
				sess.pkg.PublishShapeM(sess.x)
			}
		}
		if st, ok := sess.pkg.LastStats(); ok {
			agg = obs.AddStats(agg, st)
			pkgs++
		}
		if sp := sess.pkg.LastShape(); sp != nil {
			matShape = obs.MaxShape(matShape, sp)
			matProfiles += sp.Seq
		}
	})
	if pkgs > 1 {
		// Load factors are per-package ratios; expose the mean.
		agg.UniqueLoadV /= float64(pkgs)
		agg.UniqueLoadM /= float64(pkgs)
	}
	m.dd.Record(agg)
	m.shape.Record(vecShape, matShape, vecProfiles, matProfiles)
}

// MetricsHandler serves this server's registry in Prometheus text
// format, refreshing the session gauges first. It backs both the
// public GET /metrics route and the admin listener of cmd/ddvis.
func (s *Server) MetricsHandler() http.Handler {
	inner := obs.Handler(s.metrics.registry)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.collect()
		inner.ServeHTTP(w, r)
	})
}

// Metrics exposes the server's registry for embedding callers.
func (s *Server) Metrics() *obs.Registry { return s.metrics.registry }

// instrument installs the engine tracer tee on a session's DD
// package: the shared latency histograms, the session's resource
// account, and (when present) the flight recorder all observe the
// same top-level operations from one hook. Ring evictions feed
// trace_spans_dropped_total.
func (s *Server) instrument(p *dd.Pkg, rec *trace.Recorder, acct *sessionAccount) {
	// The one per-session engine-setup choke point (it covers fresh and
	// spill-restored sessions alike), so the shape profiling stride is
	// installed here too.
	p.SetShapeInterval(s.shapeInterval())
	fns := []dd.TraceFunc{s.metrics.dd.Tracer()}
	if acct != nil {
		fns = append(fns, acct.ddTracer())
	}
	if rec != nil {
		rec.OnDrop(s.metrics.spansDropped.Inc)
		fns = append(fns, rec.DDTracer())
	}
	p.SetTracer(trace.Tee(fns...))
}

// newRecorder creates a session's flight recorder, or nil when
// tracing is disabled (Config.TraceSpans < 0).
func (s *Server) newRecorder(id string) *trace.Recorder {
	if s.cfg.TraceSpans < 0 {
		return nil
	}
	return trace.NewRecorder(id, s.cfg.TraceSpans)
}
