package web

// Liveness, readiness, and SLO burn-rate gating.
//
// GET /healthz is pure liveness: the process answers, nothing else is
// implied. GET /readyz is the load-balancer gate: it runs component
// probes (session registries, spill store writability, trajectory
// pool, the telemetry sampler's warmup, plus any probes the embedder
// registers) and checks the SLO burn over the tsdb windows — a p99
// request latency above budget or a 5xx ratio above budget marks the
// replica not-ready so traffic drains before users notice. Every
// answer carries the full probe breakdown as JSON, so "why is it 503"
// is one curl away.

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"quantumdd/internal/sim"
)

// SLO defaults applied when the Config fields are zero.
const (
	defaultSLOWindow     = 5 * time.Minute
	defaultSLOLatencyP99 = 5 * time.Second
	defaultSLOErrorRatio = 0.5
)

func (s *Server) sloWindow() time.Duration {
	if s.cfg.SLOWindow > 0 {
		return s.cfg.SLOWindow
	}
	return defaultSLOWindow
}

func (s *Server) sloLatencyBudget() time.Duration {
	if s.cfg.SLOLatencyP99 > 0 {
		return s.cfg.SLOLatencyP99
	}
	return defaultSLOLatencyP99
}

func (s *Server) sloErrorBudget() float64 {
	if s.cfg.SLOErrorRatio > 0 {
		return s.cfg.SLOErrorRatio
	}
	return defaultSLOErrorRatio
}

// probeStatus is one component's readiness verdict.
type probeStatus struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// sloStatus is the burn-rate section of the readiness payload.
type sloStatus struct {
	WindowSeconds        float64 `json:"windowSeconds"`
	P99Seconds           float64 `json:"p99Seconds"`
	LatencyBudgetSeconds float64 `json:"latencyBudgetSeconds"`
	ErrorRatio           float64 `json:"errorRatio"`
	ErrorBudget          float64 `json:"errorBudget"`
	Burning              bool    `json:"burning"`
	Detail               string  `json:"detail,omitempty"`
}

// readyResponse is the GET /readyz payload, served with 200 when
// ready and 503 when any probe fails or the SLO is burning.
type readyResponse struct {
	Ready  bool          `json:"ready"`
	Probes []probeStatus `json:"probes"`
	SLO    *sloStatus    `json:"slo,omitempty"`
}

// SetReadinessProbe registers (or replaces) a named readiness probe.
// The embedder uses it to gate on components the web server does not
// own — cmd/ddvis registers the admin listener this way. A probe
// returning nil is healthy; an error marks the replica not-ready with
// the error text as detail. Pass nil to remove the probe.
func (s *Server) SetReadinessProbe(name string, probe func() error) {
	s.probeMu.Lock()
	defer s.probeMu.Unlock()
	if s.probes == nil {
		s.probes = make(map[string]func() error)
	}
	if probe == nil {
		delete(s.probes, name)
		return
	}
	s.probes[name] = probe
}

// runProbes evaluates every component probe.
func (s *Server) runProbes() []probeStatus {
	out := []probeStatus{
		{
			Name: "registry",
			OK:   true,
			Detail: fmt.Sprintf("%d sim, %d verify session(s) live",
				s.sims.size(), s.verifies.size()),
		},
	}

	spill := probeStatus{Name: "spill", OK: true, Detail: "disabled"}
	if s.spill != nil {
		if err := s.spill.store.ProbeWritable(); err != nil {
			spill.OK = false
			spill.Detail = err.Error()
		} else {
			spill.Detail = fmt.Sprintf("writable, %d snapshot(s), %d bytes",
				s.spill.store.Len(), s.spill.store.Bytes())
		}
	}
	out = append(out, spill)

	pool := probeStatus{Name: "trajectory_pool", OK: true}
	if w := sim.PoolWidth(s.cfg.NoisyWorkers, 1); w >= 1 {
		pool.Detail = fmt.Sprintf("resolves to %d worker(s)", sim.PoolWidth(s.cfg.NoisyWorkers, 1<<30))
	} else {
		pool.OK = false
		pool.Detail = fmt.Sprintf("pool width resolved to %d", w)
	}
	out = append(out, pool)

	tele := probeStatus{Name: "telemetry", OK: true, Detail: "disabled"}
	if s.tele != nil {
		if n := s.tele.store.Samples(); n == 0 {
			// Warmup gate: a replica is not ready until the first sweep
			// completed, so the SLO math below never judges an empty
			// window and rollouts see readiness flip after one interval.
			tele.OK = false
			tele.Detail = "warming up (no telemetry sample yet)"
		} else {
			tele.Detail = fmt.Sprintf("%d sweep(s), %d series, %d bytes retained",
				n, s.tele.store.SeriesCount(), s.tele.store.RetainedBytes())
		}
	}
	out = append(out, tele)

	s.probeMu.Lock()
	names := make([]string, 0, len(s.probes))
	for name := range s.probes {
		names = append(names, name)
	}
	sort.Strings(names)
	custom := make([]func() error, len(names))
	for i, name := range names {
		custom[i] = s.probes[name]
	}
	s.probeMu.Unlock()
	for i, name := range names {
		p := probeStatus{Name: name, OK: true}
		if err := custom[i](); err != nil {
			p.OK = false
			p.Detail = err.Error()
		}
		out = append(out, p)
	}
	return out
}

// sloBurn evaluates the burn-rate gate over the tsdb window. Without
// telemetry (or before any traffic landed in the window) it reports a
// non-burning status — readiness then rests on the probes alone.
func (s *Server) sloBurn(now time.Time) *sloStatus {
	if s.tele == nil {
		return nil
	}
	win := s.sloWindow()
	st := &sloStatus{
		WindowSeconds:        win.Seconds(),
		LatencyBudgetSeconds: s.sloLatencyBudget().Seconds(),
		ErrorBudget:          s.sloErrorBudget(),
	}
	if p99, ok := s.tele.store.Quantile("http_request_duration_seconds", "", 0.99, win, now); ok {
		st.P99Seconds = p99
		if p99 > st.LatencyBudgetSeconds {
			st.Burning = true
			st.Detail = fmt.Sprintf("p99 request latency %.3fs exceeds %.3fs budget", p99, st.LatencyBudgetSeconds)
		}
	}
	var total, errs float64
	for _, class := range []string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
		d, ok := s.tele.store.Delta("http_requests_total", `code="`+class+`"`, win, now)
		if !ok {
			continue
		}
		total += d
		if class == "5xx" {
			errs = d
		}
	}
	if total > 0 {
		st.ErrorRatio = errs / total
		if st.ErrorRatio > st.ErrorBudget {
			st.Burning = true
			detail := fmt.Sprintf("5xx ratio %.3f exceeds %.3f budget", st.ErrorRatio, st.ErrorBudget)
			if st.Detail != "" {
				st.Detail += "; " + detail
			} else {
				st.Detail = detail
			}
		}
	}
	return st
}

// handleHealthz is pure liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]interface{}{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.started).Seconds(),
	})
}

// handleReadyz runs the probes and the SLO gate.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := readyResponse{Ready: true, Probes: s.runProbes()}
	for _, p := range resp.Probes {
		if !p.OK {
			resp.Ready = false
		}
	}
	resp.SLO = s.sloBurn(time.Now())
	if resp.SLO != nil && resp.SLO.Burning {
		resp.Ready = false
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, r, status, resp)
}

// ReadyzHandler exposes the readiness endpoint for mounting on an
// admin mux next to /metrics and the debug bundle.
func (s *Server) ReadyzHandler() http.Handler { return http.HandlerFunc(s.handleReadyz) }

// SessionsTopHandler exposes the per-session resource ranking for the
// admin mux.
func (s *Server) SessionsTopHandler() http.Handler { return http.HandlerFunc(s.handleSessionsTop) }
