package web

// Durability tests: eviction spills sessions to disk, requests restore
// them transparently and bit-identically, and every injected fault
// degrades to the pre-spill 410 behavior — never a crash, never wrong
// state.

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/obs"
	"quantumdd/internal/snapshot"
	"quantumdd/internal/snapshot/faultfs"
)

// newSpillTestServer builds a server with spilling enabled into a
// temporary directory and a private metrics registry.
func newSpillTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.Metrics = obs.NewRegistry()
	cfg.SpillDir = t.TempDir()
	cfg.SessionTTL = time.Minute
	if mutate != nil {
		mutate(&cfg)
	}
	ws := NewServerWithConfig(cfg)
	t.Cleanup(ws.Close)
	srv := httptest.NewServer(ws.Handler())
	t.Cleanup(srv.Close)
	return ws, srv
}

// evictAll fakes the passage of time past the TTL and runs one reaper
// sweep, then waits for the background spill writes to land on disk.
func evictAll(t *testing.T, ws *Server) {
	t.Helper()
	if n := ws.reapIdle(time.Now().Add(ws.cfg.SessionTTL + time.Minute)); n == 0 {
		t.Fatal("reap evicted nothing")
	}
	ws.spill.flush()
}

// sessionSnapshot re-encodes a live session's durable form; byte
// equality of two snapshots proves the DD root edges (weights and
// full node structure), position and classical state all match.
func sessionSnapshot(t *testing.T, ws *Server, id string) []byte {
	t.Helper()
	h, err := ws.sims.acquire(id, time.Now())
	if err != nil {
		t.Fatalf("acquire %s: %v", id, err)
	}
	defer h.release()
	return h.val.snapshot()
}

func TestSpillEvictRestoreSimBitIdentical(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)

	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.GHZ(3).QASM()}, &created)
	var stepped stepResponse
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "forward"}, &stepped)
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "forward"}, &stepped)
	before := sessionSnapshot(t, ws, created.ID)

	evictAll(t, ws)
	if got := ws.SpillStore().Len(); got != 1 {
		t.Fatalf("spill store holds %d snapshots after eviction, want 1", got)
	}
	if got := ws.metrics.simsSpilled.Value(); got != 1 {
		t.Fatalf("session_spills_total{kind=sim} = %d, want 1", got)
	}

	// The next request transparently restores: no 410, same state.
	var restored stepResponse
	resp := get(t, srv, "/api/simulation/"+created.ID, &restored)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after eviction: status %d, want 200 (transparent restore)", resp.StatusCode)
	}
	if restored.Frame.SVG == "" || !strings.Contains(restored.Frame.SVG, "<svg") {
		t.Fatal("restored session rendered no SVG frame")
	}
	after := sessionSnapshot(t, ws, created.ID)
	if !bytes.Equal(before, after) {
		t.Fatalf("restored session is not bit-identical: snapshot %d bytes vs %d bytes", len(before), len(after))
	}
	if got := ws.metrics.simsRestored.Value(); got != 1 {
		t.Fatalf("session_restores_total{kind=sim} = %d, want 1", got)
	}
	// The consumed snapshot is stale the moment the session lives again.
	if got := ws.SpillStore().Len(); got != 0 {
		t.Fatalf("spill store holds %d snapshots after restore, want 0", got)
	}

	// The restored session keeps working: run it to the end.
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "end"}, &stepped)
	if !stepped.AtEnd {
		t.Fatal("restored session did not run to the end")
	}
}

func TestSpillEvictRestoreVerify(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)
	qasm := algorithms.GHZ(2).QASM()

	var created newResp
	post(t, srv, "/api/verification", newVerifyRequest{Left: qasm, Right: qasm}, &created)
	post(t, srv, "/api/verification/"+created.ID+"/step", verifyStepRequest{Action: "forward", Side: "left"}, nil)

	h, err := ws.verifies.acquire(created.ID, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	before := h.val.snapshot()
	h.release()

	evictAll(t, ws)
	resp := get(t, srv, "/api/verification/"+created.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after eviction: status %d, want 200", resp.StatusCode)
	}
	h, err = ws.verifies.acquire(created.ID, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	after := h.val.snapshot()
	h.release()
	if !bytes.Equal(before, after) {
		t.Fatal("restored verification session is not bit-identical")
	}
	if got := ws.metrics.verifiesRestored.Value(); got != 1 {
		t.Fatalf("session_restores_total{kind=verify} = %d, want 1", got)
	}
}

// TestRestoreSurvivesRestart proves the errSessionUnknown restore path:
// a fresh server over the same spill directory has an empty registry
// (no tombstones either) but still restores the session.
func TestRestoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.Metrics = obs.NewRegistry()
	cfg.SpillDir = dir
	cfg.SessionTTL = time.Minute

	ws1 := NewServerWithConfig(cfg)
	srv1 := httptest.NewServer(ws1.Handler())
	var created newResp
	post(t, srv1, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	post(t, srv1, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "forward"}, nil)
	before := sessionSnapshot(t, ws1, created.ID)
	evictAll(t, ws1)
	srv1.Close()
	ws1.Close()

	cfg.Metrics = obs.NewRegistry()
	ws2 := NewServerWithConfig(cfg)
	t.Cleanup(ws2.Close)
	srv2 := httptest.NewServer(ws2.Handler())
	t.Cleanup(srv2.Close)
	resp := get(t, srv2, "/api/simulation/"+created.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET on restarted server: status %d, want 200", resp.StatusCode)
	}
	after := sessionSnapshot(t, ws2, created.ID)
	if !bytes.Equal(before, after) {
		t.Fatal("session restored across restart is not bit-identical")
	}
}

// TestCorruptSnapshotDegradesToGone flips one bit of the on-disk
// snapshot: the restore must reject it (checksum), count the
// corruption, log a structured warning carrying the request id, leave
// a definitive tombstone — and never crash or serve wrong state.
func TestCorruptSnapshotDegradesToGone(t *testing.T) {
	var logBuf bytes.Buffer
	ws, srv := newSpillTestServer(t, func(cfg *Config) {
		cfg.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	})

	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.GHZ(3).QASM()}, &created)
	evictAll(t, ws)

	snaps, err := filepath.Glob(filepath.Join(ws.cfg.SpillDir, "*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshot files on disk: %v (err %v)", snaps, err)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	resp := get(t, srv, "/api/simulation/"+created.ID, nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("GET with corrupt snapshot: status %d, want 410", resp.StatusCode)
	}
	if got := ws.metrics.simCorruptions.Value(); got != 1 {
		t.Fatalf("snapshot_corruptions_total{kind=sim} = %d, want 1", got)
	}
	if got := ws.metrics.simRestoreFailures.Value(); got != 1 {
		t.Fatalf("session_restore_failures_total{kind=sim} = %d, want 1", got)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "degraded to tombstone") || !strings.Contains(logs, "requestId=") {
		t.Fatalf("degraded path did not log a structured warning with request id:\n%s", logs)
	}

	// The unusable snapshot was discarded and the id tombstoned: a
	// second request answers 410 immediately without re-counting.
	resp = get(t, srv, "/api/simulation/"+created.ID, nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("second GET: status %d, want 410", resp.StatusCode)
	}
	if got := ws.metrics.simCorruptions.Value(); got != 1 {
		t.Fatalf("corruption counted twice: %d", got)
	}

	// And the server still serves fresh sessions.
	var again newResp
	resp = post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &again)
	if resp.StatusCode != http.StatusOK || again.ID == "" {
		t.Fatalf("server unhealthy after corruption: status %d", resp.StatusCode)
	}
}

// TestTruncatedSnapshotDegradesToGone injects a short read through the
// fault harness: restore sees a truncated envelope and degrades.
func TestTruncatedSnapshotDegradesToGone(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)

	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	evictAll(t, ws)

	// Re-open the same directory through a fault-injecting filesystem
	// whose first read comes back short.
	ffs := faultfs.New(snapshot.OSFS{})
	ffs.ShortReads = map[int]bool{1: true}
	st, err := snapshot.OpenStore(ws.cfg.SpillDir, 0, ffs)
	if err != nil {
		t.Fatal(err)
	}
	ws.spill.store = st

	resp := get(t, srv, "/api/simulation/"+created.ID, nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("GET with short read: status %d, want 410", resp.StatusCode)
	}
	if got := ws.metrics.simCorruptions.Value(); got != 1 {
		t.Fatalf("snapshot_corruptions_total{kind=sim} = %d, want 1", got)
	}
}

// TestSpillWriteFailureDegradesToTombstone injects persistent write
// failures: eviction falls back to the plain tombstone, the failure is
// counted, and the server keeps running.
func TestSpillWriteFailureDegradesToTombstone(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)

	ffs := faultfs.New(snapshot.OSFS{})
	ffs.FailWrites = map[int]bool{1: true, 2: true, 3: true}
	st, err := snapshot.OpenStore(ws.cfg.SpillDir, 0, ffs)
	if err != nil {
		t.Fatal(err)
	}
	ws.spill.store = st

	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	evictAll(t, ws)

	if got := ws.metrics.simSpillFailures.Value(); got != 1 {
		t.Fatalf("session_spill_failures_total{kind=sim} = %d, want 1", got)
	}
	resp := get(t, srv, "/api/simulation/"+created.ID, nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("GET after failed spill: status %d, want 410", resp.StatusCode)
	}
}

// TestSpillDirUnavailableStartsDegraded points SpillDir at a regular
// file: the server must start anyway, with durability off and the
// classic evict-to-410 behavior intact.
func TestSpillDirUnavailableStartsDegraded(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ws, srv := newSpillTestServer(t, func(cfg *Config) {
		cfg.SpillDir = blocker
	})
	if ws.spillEnabled() {
		t.Fatal("spill enabled despite unusable directory")
	}
	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	if n := ws.reapIdle(time.Now().Add(ws.cfg.SessionTTL + time.Minute)); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	resp := get(t, srv, "/api/simulation/"+created.ID, nil)
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("GET after eviction without spill: status %d, want 410", resp.StatusCode)
	}
}

// TestPendingRestoreBeforeWriteCompletes restores from the pending map:
// a request arriving between eviction and the durable write landing
// must still find the snapshot.
func TestPendingRestoreBeforeWriteCompletes(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)

	// Slow the durable write down far past the restore below by
	// injecting transient write failures (each attempt backs off).
	ffs := faultfs.New(snapshot.OSFS{})
	ffs.FailWrites = map[int]bool{1: true, 2: true}
	st, err := snapshot.OpenStore(ws.cfg.SpillDir, 0, ffs)
	if err != nil {
		t.Fatal(err)
	}
	ws.spill.store = st

	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	before := sessionSnapshot(t, ws, created.ID)
	if n := ws.reapIdle(time.Now().Add(ws.cfg.SessionTTL + time.Minute)); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	// No flush: race the background write.
	resp := get(t, srv, "/api/simulation/"+created.ID, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET racing the spill write: status %d, want 200", resp.StatusCode)
	}
	after := sessionSnapshot(t, ws, created.ID)
	if !bytes.Equal(before, after) {
		t.Fatal("pending-map restore is not bit-identical")
	}
	ws.spill.flush()
}

// TestCloseStopsAllGoroutines is the shutdown leak check: servers with
// reaper and in-flight spill writes must leave no goroutines behind.
func TestCloseStopsAllGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		cfg := DefaultConfig()
		cfg.Metrics = obs.NewRegistry()
		cfg.SpillDir = t.TempDir()
		cfg.SessionTTL = time.Minute
		ws := NewServerWithConfig(cfg)
		circ := algorithms.GHZ(3)
		sess := newSimSession(circ, circ.QASM(), "", 1, cfg.MaxNodes)
		ws.instrument(sess.sim.Pkg(), nil, sess.acct)
		ws.sims.put("leakcheck", sess, time.Now())
		ws.reapIdle(time.Now().Add(cfg.SessionTTL + time.Minute))
		// Close must wait for the reaper AND flush the spill write that
		// the eviction just scheduled.
		ws.Close()
		if got := ws.SpillStore().Len(); got != 1 {
			t.Fatalf("iteration %d: Close lost the in-flight spill (store has %d)", i, got)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
