package web

import (
	"encoding/json"
	"fmt"
	"net/http"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
	"quantumdd/internal/vis"
)

// Handler returns the tool's HTTP handler: the embedded page at "/",
// the color-wheel legend, and the JSON API under /api/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, indexHTML)
	})
	mux.HandleFunc("GET /colorwheel.svg", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, vis.ColorWheelSVG(160))
	})
	mux.HandleFunc("GET /api/examples", s.handleExamples)
	mux.HandleFunc("POST /api/simulation", s.handleNewSimulation)
	mux.HandleFunc("POST /api/simulation/{id}/step", s.handleSimStep)
	mux.HandleFunc("POST /api/simulation/{id}/choose", s.handleSimChoose)
	mux.HandleFunc("GET /api/simulation/{id}", s.handleSimGet)
	mux.HandleFunc("GET /api/simulation/{id}/export", s.handleSimExport)
	mux.HandleFunc("POST /api/verification", s.handleNewVerification)
	mux.HandleFunc("POST /api/verification/{id}/step", s.handleVerifyStep)
	mux.HandleFunc("GET /api/verification/{id}", s.handleVerifyGet)
	mux.HandleFunc("GET /api/verification/{id}/export", s.handleVerifyExport)
	mux.HandleFunc("POST /api/noisy", s.handleNoisy)
	mux.HandleFunc("POST /api/functionality", s.handleFunctionality)
	return mux
}

// ListenAndServe starts the tool on addr.
func (s *Server) ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, s.Handler())
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Example is an entry of the "Example Algorithms" list.
type Example struct {
	Name string `json:"name"`
	Code string `json:"code"`
}

// Examples returns the built-in algorithm list offered by the tool.
func Examples() []Example {
	items := []struct {
		name string
		circ *qc.Circuit
	}{
		{"Bell state (Fig. 1(c))", algorithms.Bell()},
		{"Bell state with measurement (Fig. 8)", algorithms.BellMeasured()},
		{"GHZ (4 qubits)", algorithms.GHZ(4)},
		{"W state (4 qubits)", algorithms.WState(4)},
		{"QFT (3 qubits, Fig. 5(a))", algorithms.QFT(3)},
		{"QFT compiled (Fig. 5(b))", algorithms.QFTCompiled(3)},
		{"Grover (3 qubits)", algorithms.Grover(3, 5)},
		{"Bernstein-Vazirani", algorithms.BernsteinVazirani(4, 0b1011)},
		{"Phase estimation", algorithms.QPE(3, 3.0/8.0)},
		{"Teleportation", algorithms.Teleport(1.2, 0.4)},
	}
	out := make([]Example, 0, len(items)+1)
	for _, it := range items {
		out = append(out, Example{Name: it.name, Code: it.circ.QASM()})
	}
	// One RevLib example demonstrates the second input format the
	// algorithm box accepts.
	out = append(out, Example{
		Name: "Toffoli network (.real format)",
		Code: "# RevLib .real input is auto-detected\n.version 1.0\n.numvars 3\n.variables a b c\n.begin\nt1 a\nt2 a b\nt3 a b c\n.end\n",
	})
	return out
}

func (s *Server) handleExamples(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Examples())
}

type newSimRequest struct {
	Code   string `json:"code"`
	Format string `json:"format"`
}

func (s *Server) handleNewSimulation(w http.ResponseWriter, r *http.Request) {
	var req newSimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	circ, err := ParseCircuit(req.Code, req.Format)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	id := s.newID("sim")
	sess := newSimSession(circ, s.seed)
	s.sims[id] = sess
	s.mu.Unlock()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":    id,
		"frame": simFrame(sess, style, "initial state |0…0⟩"),
	})
}

func (s *Server) simSession(r *http.Request) (*simSession, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sims[r.PathValue("id")]
	if !ok {
		return nil, fmt.Errorf("web: unknown simulation session %q", r.PathValue("id"))
	}
	return sess, nil
}

type stepRequest struct {
	Action string `json:"action"` // forward | backward | break | end | start
}

type stepResponse struct {
	Frame   Frame          `json:"frame"`
	Event   string         `json:"event,omitempty"`
	Pending *PendingChoice `json:"pending,omitempty"`
	AtEnd   bool           `json:"atEnd"`
	AtStart bool           `json:"atStart"`
}

func (s *Server) handleSimStep(w http.ResponseWriter, r *http.Request) {
	sess, err := s.simSession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req stepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	caption := ""
	switch req.Action {
	case "forward":
		if pending := sess.pending(); pending != nil {
			writeJSON(w, http.StatusOK, stepResponse{Frame: simFrame(sess, style, "awaiting dialog choice"), Pending: pending})
			return
		}
		ev, err := sess.sim.StepForward()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		caption = describeEvent(sess, ev)
	case "backward":
		sess.forced = nil
		sess.sim.StepBackward()
		caption = "stepped backward"
	case "start":
		sess.forced = nil
		sess.sim.Rewind()
		caption = "initial state |0…0⟩"
	case "break", "end":
		for !sess.sim.AtEnd() {
			if pending := sess.pending(); pending != nil {
				writeJSON(w, http.StatusOK, stepResponse{Frame: simFrame(sess, style, "awaiting dialog choice"), Pending: pending})
				return
			}
			ev, err := sess.sim.StepForward()
			if err != nil {
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
			caption = describeEvent(sess, ev)
			if req.Action == "break" && ev.Op != nil && ev.Op.IsSpecial() {
				break
			}
		}
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("web: unknown action %q", req.Action))
		return
	}
	writeJSON(w, http.StatusOK, stepResponse{
		Frame:   simFrame(sess, style, caption),
		Event:   caption,
		AtEnd:   sess.sim.AtEnd(),
		AtStart: sess.sim.AtStart(),
	})
}

func describeEvent(sess *simSession, ev sim.Event) string {
	switch ev.Kind {
	case sim.EventEnd:
		return "end of circuit"
	case sim.EventBarrier:
		return "barrier (breakpoint)"
	case sim.EventMeasure:
		return fmt.Sprintf("measured q[%d] = %d (p0=%.3f, p1=%.3f)", ev.Op.Targets[0], ev.Outcome, ev.P0, ev.P1)
	case sim.EventReset:
		return fmt.Sprintf("reset q[%d] (pre-reset value %d)", ev.Op.Targets[0], ev.Outcome)
	case sim.EventCondSkip:
		return fmt.Sprintf("skipped %s (condition not met)", ev.Op.String())
	case sim.EventCondApply:
		return fmt.Sprintf("applied conditional %s", ev.Op.String())
	default:
		if ev.Op != nil {
			return "applied " + ev.Op.String()
		}
		return ""
	}
}

type chooseRequest struct {
	Outcome int `json:"outcome"`
}

func (s *Server) handleSimChoose(w http.ResponseWriter, r *http.Request) {
	sess, err := s.simSession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req chooseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := sess.choose(req.Outcome); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ev, err := sess.sim.StepForward()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	caption := describeEvent(sess, ev)
	writeJSON(w, http.StatusOK, stepResponse{
		Frame:   simFrame(sess, style, caption),
		Event:   caption,
		AtEnd:   sess.sim.AtEnd(),
		AtStart: sess.sim.AtStart(),
	})
}

func (s *Server) handleSimGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.simSession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	writeJSON(w, http.StatusOK, stepResponse{
		Frame:   simFrame(sess, style, ""),
		Pending: sess.pending(),
		AtEnd:   sess.sim.AtEnd(),
		AtStart: sess.sim.AtStart(),
	})
}

type noisyRequest struct {
	Code         string  `json:"code"`
	Format       string  `json:"format"`
	Depolarizing float64 `json:"depolarizing"`
	BitFlip      float64 `json:"bitFlip"`
	PhaseFlip    float64 `json:"phaseFlip"`
	Trajectories int     `json:"trajectories"`
}

type noisyResponse struct {
	Trajectories int            `json:"trajectories"`
	ErrorEvents  int            `json:"errorEvents"`
	MeanNodes    float64        `json:"meanNodes"`
	Counts       map[string]int `json:"counts"`
}

// handleNoisy runs a Monte-Carlo trajectory ensemble under Pauli noise
// and returns the aggregated outcome histogram — a batch companion to
// the interactive stepping view.
func (s *Server) handleNoisy(w http.ResponseWriter, r *http.Request) {
	var req noisyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	circ, err := ParseCircuit(req.Code, req.Format)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Trajectories <= 0 {
		req.Trajectories = 500
	}
	if req.Trajectories > 100000 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("web: at most 100000 trajectories"))
		return
	}
	model := sim.NoiseModel{Depolarizing: req.Depolarizing, BitFlip: req.BitFlip, PhaseFlip: req.PhaseFlip}
	res, err := sim.RunNoisy(circ, model, req.Trajectories, s.seed)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	counts := make(map[string]int, len(res.Counts))
	for idx, n := range res.Counts {
		counts[fmt.Sprintf("%0*b", circ.NQubits, idx)] = n
	}
	writeJSON(w, http.StatusOK, noisyResponse{
		Trajectories: res.Trajectories,
		ErrorEvents:  res.ErrorEvents,
		MeanNodes:    res.MeanNodes,
		Counts:       counts,
	})
}

// handleSimExport serves the current diagram as a standalone artifact
// (format=svg or dot) for download from the tool.
func (s *Server) handleSimExport(w http.ResponseWriter, r *http.Request) {
	sess, err := s.simSession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	g := vis.FromVector(sess.sim.State())
	writeExport(w, g, style, r.URL.Query().Get("format"))
}

func (s *Server) handleVerifyExport(w http.ResponseWriter, r *http.Request) {
	sess, err := s.verifySession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	g := vis.FromMatrix(sess.x)
	writeExport(w, g, style, r.URL.Query().Get("format"))
}

func writeExport(w http.ResponseWriter, g *vis.Graph, style vis.Style, format string) {
	switch format {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, g.DOT(style))
	case "", "svg":
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, g.SVG(style))
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("web: unknown export format %q (want svg or dot)", format))
	}
}

type functionalityRequest struct {
	Code    string `json:"code"`
	Format  string `json:"format"`
	Inverse bool   `json:"inverse"`
}

// handleFunctionality implements the Ex. 14 mode of the verification
// tab: with a single circuit loaded, build its (inverse) functionality
// as a matrix diagram and render it.
func (s *Server) handleFunctionality(w http.ResponseWriter, r *http.Request) {
	var req functionalityRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	circ, err := ParseCircuit(req.Code, req.Format)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	frame, err := BuildFunctionalityFrame(circ, req.Inverse, style)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"frame": frame})
}

type newVerifyRequest struct {
	Left   string `json:"left"`
	Right  string `json:"right"`
	Format string `json:"format"`
}

func (s *Server) handleNewVerification(w http.ResponseWriter, r *http.Request) {
	var req newVerifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	left, err := ParseCircuit(req.Left, req.Format)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("left circuit: %w", err))
		return
	}
	right, err := ParseCircuit(req.Right, req.Format)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("right circuit: %w", err))
		return
	}
	sess, err := newVerifySession(left, right)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	id := s.newID("verify")
	s.verifies[id] = sess
	s.mu.Unlock()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":    id,
		"frame": verifyFrame(sess, style, "identity"),
	})
}

func (s *Server) verifySession(r *http.Request) (*verifySession, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.verifies[r.PathValue("id")]
	if !ok {
		return nil, fmt.Errorf("web: unknown verification session %q", r.PathValue("id"))
	}
	return sess, nil
}

type verifyStepRequest struct {
	Side   string `json:"side"`   // left | right
	Action string `json:"action"` // forward | barrier | backward
}

type verifyStepResponse struct {
	Frame    Frame  `json:"frame"`
	Applied  string `json:"applied,omitempty"`
	Identity string `json:"identity"`
	LeftPos  int    `json:"leftPos"`
	RightPos int    `json:"rightPos"`
}

func (s *Server) handleVerifyStep(w http.ResponseWriter, r *http.Request) {
	sess, err := s.verifySession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var req verifyStepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	applied := ""
	switch req.Action {
	case "forward":
		gate, err := sess.stepSide(req.Side)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		applied = gate
	case "barrier":
		n, err := sess.runToBarrier(req.Side)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		applied = fmt.Sprintf("%d gate(s)", n)
	case "backward":
		if sess.stepBack() {
			applied = "undone"
		}
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("web: unknown action %q", req.Action))
		return
	}
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	writeJSON(w, http.StatusOK, verifyStepResponse{
		Frame:    verifyFrame(sess, style, applied),
		Applied:  applied,
		Identity: sess.identity(),
		LeftPos:  sess.li,
		RightPos: sess.ri,
	})
}

func (s *Server) handleVerifyGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.verifySession(r)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	writeJSON(w, http.StatusOK, verifyStepResponse{
		Frame:    verifyFrame(sess, style, ""),
		Identity: sess.identity(),
		LeftPos:  sess.li,
		RightPos: sess.ri,
	})
}
