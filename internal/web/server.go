package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/obs/trace"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
	"quantumdd/internal/vis"
)

// Handler returns the tool's HTTP handler: the embedded page at "/",
// the color-wheel legend, and the JSON API under /api/, all wrapped in
// the hardening middleware (request IDs, body caps, deadlines, panic
// recovery, access logging).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, indexHTML)
	})
	mux.HandleFunc("GET /colorwheel.svg", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, vis.ColorWheelSVG(160))
	})
	mux.Handle("GET /metrics", s.MetricsHandler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /api/examples", s.handleExamples)
	mux.HandleFunc("POST /api/simulation", s.handleNewSimulation)
	mux.HandleFunc("POST /api/simulation/{id}/step", s.handleSimStep)
	mux.HandleFunc("POST /api/simulation/{id}/choose", s.handleSimChoose)
	mux.HandleFunc("GET /api/simulation/{id}", s.handleSimGet)
	mux.HandleFunc("GET /api/simulation/{id}/export", s.handleSimExport)
	mux.HandleFunc("POST /api/verification", s.handleNewVerification)
	mux.HandleFunc("POST /api/verification/{id}/step", s.handleVerifyStep)
	mux.HandleFunc("GET /api/verification/{id}", s.handleVerifyGet)
	mux.HandleFunc("GET /api/verification/{id}/export", s.handleVerifyExport)
	mux.HandleFunc("POST /api/noisy", s.handleNoisy)
	mux.HandleFunc("POST /api/functionality", s.handleFunctionality)
	// The literal route wins over the {id} wildcard in Go 1.22 mux
	// precedence, so "top" is never treated as a session id.
	mux.HandleFunc("GET /debug/sessions/top", s.handleSessionsTop)
	mux.HandleFunc("GET /debug/sessions/{id}/trace", s.handleSessionTrace)
	mux.HandleFunc("GET /debug/sessions/{id}/shape", s.handleSessionShape)
	if s.tele != nil && s.cfg.LiveStream {
		mux.HandleFunc("GET /debug/live", s.handleLive)
	}
	return s.withMiddleware(mux)
}

// ListenAndServe starts the tool on addr with server-side read/write/
// idle timeouts. Production deployments needing graceful shutdown
// should build their own http.Server around Handler (see cmd/ddvis).
func (s *Server) ListenAndServe(addr string) error {
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeoutFor(s.cfg.RequestTimeout),
		IdleTimeout:       2 * time.Minute,
	}
	return hs.ListenAndServe()
}

// writeTimeoutFor leaves headroom over the per-request deadline so the
// deadline (which produces a useful JSON response) fires first.
func writeTimeoutFor(requestTimeout time.Duration) time.Duration {
	if requestTimeout <= 0 {
		return time.Minute
	}
	return requestTimeout + 5*time.Second
}

func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		s.reqLogger(r).Error("response encoding failed", "path", r.URL.Path, "error", err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, status int, code string, err error) {
	s.writeJSON(w, r, status, apiError{Error: err.Error(), Code: code, RequestID: requestID(r)})
}

// Example is an entry of the "Example Algorithms" list.
type Example struct {
	Name string `json:"name"`
	Code string `json:"code"`
}

// Examples returns the built-in algorithm list offered by the tool.
func Examples() []Example {
	items := []struct {
		name string
		circ *qc.Circuit
	}{
		{"Bell state (Fig. 1(c))", algorithms.Bell()},
		{"Bell state with measurement (Fig. 8)", algorithms.BellMeasured()},
		{"GHZ (4 qubits)", algorithms.GHZ(4)},
		{"W state (4 qubits)", algorithms.WState(4)},
		{"QFT (3 qubits, Fig. 5(a))", algorithms.QFT(3)},
		{"QFT compiled (Fig. 5(b))", algorithms.QFTCompiled(3)},
		{"Grover (3 qubits)", algorithms.Grover(3, 5)},
		{"Bernstein-Vazirani", algorithms.BernsteinVazirani(4, 0b1011)},
		{"Phase estimation", algorithms.QPE(3, 3.0/8.0)},
		{"Teleportation", algorithms.Teleport(1.2, 0.4)},
	}
	out := make([]Example, 0, len(items)+1)
	for _, it := range items {
		out = append(out, Example{Name: it.name, Code: it.circ.QASM()})
	}
	// One RevLib example demonstrates the second input format the
	// algorithm box accepts.
	out = append(out, Example{
		Name: "Toffoli network (.real format)",
		Code: "# RevLib .real input is auto-detected\n.version 1.0\n.numvars 3\n.variables a b c\n.begin\nt1 a\nt2 a b\nt3 a b c\n.end\n",
	})
	return out
}

func (s *Server) handleExamples(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, Examples())
}

type newSimRequest struct {
	Code   string `json:"code"`
	Format string `json:"format"`
}

func (s *Server) handleNewSimulation(w http.ResponseWriter, r *http.Request) {
	var req newSimRequest
	if s.decodeJSON(w, r, &req) != nil {
		return
	}
	circ, err := ParseCircuit(req.Code, req.Format)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if err := s.admit(circ); err != nil {
		s.writeErr(w, r, http.StatusUnprocessableEntity, codeCircuitTooLarge, err)
		return
	}
	sess := newSimSession(circ, req.Code, req.Format, s.cfg.Seed, s.cfg.MaxNodes)
	// The id is allocated before the recorder so the flight recorder's
	// track label matches the session id in exported timelines.
	id := s.newID("sim")
	sess.rec = s.newRecorder(id)
	s.instrument(sess.sim.Pkg(), sess.rec, sess.acct)
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	// Render before publishing: the session is not yet reachable, so no
	// lock is needed and a rendering panic cannot leak a broken session.
	frame := simFrame(sess, style, "initial state |0…0⟩")
	s.metrics.simsCreated.Inc()
	if evicted := s.sims.put(id, sess, time.Now()); evicted != "" {
		s.metrics.evictedLRU.Inc()
		s.reqLogger(r).Info("evicted LRU session", "sessionId", id, "evictedSessionId", evicted)
	}
	s.writeJSON(w, r, http.StatusOK, map[string]interface{}{
		"id":    id,
		"frame": frame,
	})
}

type stepRequest struct {
	Action string `json:"action"` // forward | backward | break | end | start
}

type stepResponse struct {
	Frame   Frame          `json:"frame"`
	Event   string         `json:"event,omitempty"`
	Error   string         `json:"error,omitempty"`
	Pending *PendingChoice `json:"pending,omitempty"`
	AtEnd   bool           `json:"atEnd"`
	AtStart bool           `json:"atStart"`
}

// stepErrorCaption renders a step failure as a frame caption, keeping
// resource exhaustion human-readable ("diagram too large").
func stepErrorCaption(err error) string {
	if errors.Is(err, dd.ErrResourceExhausted) {
		return "diagram too large — node budget exceeded"
	}
	return "step failed: " + err.Error()
}

// writeStepError answers a failed or interrupted step with the
// partial-progress frame and the error message, so the client keeps
// its place instead of facing a dead tab.
func (s *Server) writeStepError(w http.ResponseWriter, r *http.Request, sess *simSession, style vis.Style, err error) {
	caption := stepErrorCaption(err)
	s.writeJSON(w, r, http.StatusOK, stepResponse{
		Frame:   simFrame(sess, style, caption),
		Event:   caption,
		Error:   err.Error(),
		AtEnd:   sess.sim.AtEnd(),
		AtStart: sess.sim.AtStart(),
	})
}

func (s *Server) handleSimStep(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquireSim(r, r.PathValue("id"), time.Now())
	if err != nil {
		s.sessionErr(w, r, err)
		return
	}
	defer h.release()
	sess := h.val
	var req stepRequest
	if s.decodeJSON(w, r, &req) != nil {
		return
	}
	// The request span roots this request's slice of the session
	// timeline; session-op and DD spans nest under it.
	ctx := trace.With(r.Context(), sess.rec)
	ctx, rsp := trace.StartSpan(ctx, "POST /api/simulation/{id}/step")
	defer rsp.End()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	caption := ""
	switch req.Action {
	case "forward":
		if pending := sess.pending(); pending != nil {
			s.writeJSON(w, r, http.StatusOK, stepResponse{Frame: simFrame(sess, style, "awaiting dialog choice"), Pending: pending})
			return
		}
		ev, err := sess.sim.StepForwardCtx(ctx)
		if err != nil {
			s.writeStepError(w, r, sess, style, err)
			return
		}
		caption = describeEvent(sess, ev)
	case "backward":
		sess.forced = nil
		sess.sim.StepBackward()
		caption = "stepped backward"
	case "start":
		sess.forced = nil
		sess.sim.Rewind()
		caption = "initial state |0…0⟩"
	case "break", "end":
		steps := 0
		if trace.Enabled(ctx) {
			var ffsp *trace.Span
			ctx, ffsp = trace.StartSpan(ctx, "fast-forward:"+req.Action)
			defer func() {
				ffsp.SetAttr("ops", int64(steps))
				ffsp.End()
			}()
		}
		for !sess.sim.AtEnd() {
			if ctxErr := ctx.Err(); ctxErr != nil {
				// The fast-forward loop is bounded by the request
				// deadline: return the progress made so far.
				s.writeStepError(w, r, sess, style,
					fmt.Errorf("web: fast-forward interrupted at op %d/%d: %w", sess.sim.Pos(), len(sess.sim.Circuit().Ops), ctxErr))
				return
			}
			if pending := sess.pending(); pending != nil {
				s.writeJSON(w, r, http.StatusOK, stepResponse{Frame: simFrame(sess, style, "awaiting dialog choice"), Pending: pending})
				return
			}
			ev, err := sess.sim.StepForwardCtx(ctx)
			if err != nil {
				s.writeStepError(w, r, sess, style, err)
				return
			}
			steps++
			caption = describeEvent(sess, ev)
			if req.Action == "break" && ev.Op != nil && ev.Op.IsSpecial() {
				break
			}
		}
	default:
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("web: unknown action %q", req.Action))
		return
	}
	s.writeJSON(w, r, http.StatusOK, stepResponse{
		Frame:   simFrame(sess, style, caption),
		Event:   caption,
		AtEnd:   sess.sim.AtEnd(),
		AtStart: sess.sim.AtStart(),
	})
}

func describeEvent(sess *simSession, ev sim.Event) string {
	switch ev.Kind {
	case sim.EventEnd:
		return "end of circuit"
	case sim.EventBarrier:
		return "barrier (breakpoint)"
	case sim.EventMeasure:
		return fmt.Sprintf("measured q[%d] = %d (p0=%.3f, p1=%.3f)", ev.Op.Targets[0], ev.Outcome, ev.P0, ev.P1)
	case sim.EventReset:
		return fmt.Sprintf("reset q[%d] (pre-reset value %d)", ev.Op.Targets[0], ev.Outcome)
	case sim.EventCondSkip:
		return fmt.Sprintf("skipped %s (condition not met)", ev.Op.String())
	case sim.EventCondApply:
		return fmt.Sprintf("applied conditional %s", ev.Op.String())
	default:
		if ev.Op != nil {
			return "applied " + ev.Op.String()
		}
		return ""
	}
}

type chooseRequest struct {
	Outcome int `json:"outcome"`
}

func (s *Server) handleSimChoose(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquireSim(r, r.PathValue("id"), time.Now())
	if err != nil {
		s.sessionErr(w, r, err)
		return
	}
	defer h.release()
	sess := h.val
	var req chooseRequest
	if s.decodeJSON(w, r, &req) != nil {
		return
	}
	if err := sess.choose(req.Outcome); err != nil {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	ctx := trace.With(r.Context(), sess.rec)
	ctx, rsp := trace.StartSpan(ctx, "POST /api/simulation/{id}/choose")
	defer rsp.End()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	ev, err := sess.sim.StepForwardCtx(ctx)
	if err != nil {
		s.writeStepError(w, r, sess, style, err)
		return
	}
	caption := describeEvent(sess, ev)
	s.writeJSON(w, r, http.StatusOK, stepResponse{
		Frame:   simFrame(sess, style, caption),
		Event:   caption,
		AtEnd:   sess.sim.AtEnd(),
		AtStart: sess.sim.AtStart(),
	})
}

func (s *Server) handleSimGet(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquireSim(r, r.PathValue("id"), time.Now())
	if err != nil {
		s.sessionErr(w, r, err)
		return
	}
	defer h.release()
	sess := h.val
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	s.writeJSON(w, r, http.StatusOK, stepResponse{
		Frame:   simFrame(sess, style, ""),
		Pending: sess.pending(),
		AtEnd:   sess.sim.AtEnd(),
		AtStart: sess.sim.AtStart(),
	})
}

type noisyRequest struct {
	Code         string  `json:"code"`
	Format       string  `json:"format"`
	Depolarizing float64 `json:"depolarizing"`
	BitFlip      float64 `json:"bitFlip"`
	PhaseFlip    float64 `json:"phaseFlip"`
	Trajectories int     `json:"trajectories"`
}

type noisyResponse struct {
	// Trajectories counts completed trajectories; on a partial result
	// it is smaller than Requested.
	Trajectories int `json:"trajectories"`
	Requested    int `json:"requested"`
	Failed       int `json:"failed,omitempty"`
	// Workers is the replica pool width the ensemble ran on.
	Workers int `json:"workers"`
	// Partial marks a degraded result: some trajectories hit the node
	// budget, and Error carries the cause. The counts cover the
	// completed trajectories only — the partial-progress contract of
	// the stepping frames.
	Partial     bool           `json:"partial,omitempty"`
	Error       string         `json:"error,omitempty"`
	ErrorEvents int            `json:"errorEvents"`
	MeanNodes   float64        `json:"meanNodes"`
	Counts      map[string]int `json:"counts"`
}

// handleNoisy runs a Monte-Carlo trajectory ensemble under Pauli noise
// and returns the aggregated outcome histogram — a batch companion to
// the interactive stepping view. Trajectories fan out over the
// replica pool (Config.NoisyWorkers) under the request context, so a
// disconnected client or an expired deadline stops the remaining
// trajectories instead of burning cores on an unwanted answer.
func (s *Server) handleNoisy(w http.ResponseWriter, r *http.Request) {
	var req noisyRequest
	if s.decodeJSON(w, r, &req) != nil {
		return
	}
	circ, err := ParseCircuit(req.Code, req.Format)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if err := s.admit(circ); err != nil {
		s.writeErr(w, r, http.StatusUnprocessableEntity, codeCircuitTooLarge, err)
		return
	}
	if req.Trajectories <= 0 {
		req.Trajectories = 500
	}
	if req.Trajectories > 100000 {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("web: at most 100000 trajectories"))
		return
	}
	model := sim.NoiseModel{Depolarizing: req.Depolarizing, BitFlip: req.BitFlip, PhaseFlip: req.PhaseFlip}
	res, err := sim.RunNoisyCtx(r.Context(), circ, model, req.Trajectories, s.cfg.Seed,
		sim.WithMaxNodes(s.cfg.MaxNodes),
		sim.WithWorkers(s.cfg.NoisyWorkers),
		sim.WithTrajectoryObserver(func(seconds float64) {
			s.metrics.trajectoriesCompleted.Inc()
			s.metrics.trajectorySeconds.Observe(seconds)
		}))
	if res != nil {
		s.metrics.noisyWorkers.Set(float64(res.Workers))
	}
	if err != nil && res == nil {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	resp := noisyResponse{
		Trajectories: res.Trajectories,
		Requested:    res.Requested,
		Failed:       res.Failed,
		Workers:      res.Workers,
		ErrorEvents:  res.ErrorEvents,
		MeanNodes:    res.MeanNodes,
		Counts:       make(map[string]int, len(res.Counts)),
	}
	for idx, n := range res.Counts {
		resp.Counts[fmt.Sprintf("%0*b", circ.NQubits, idx)] = n
	}
	if err != nil {
		// Budget exhaustion (or a cancelled context racing the write):
		// answer with the completed trajectories and the cause instead
		// of discarding the ensemble.
		resp.Partial = true
		resp.Error = err.Error()
		s.reqLogger(r).Warn("noisy ensemble degraded to partial result",
			"completed", res.Trajectories, "requested", res.Requested,
			"failed", res.Failed, "error", err)
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// handleSimExport serves the current diagram as a standalone artifact
// (format=svg or dot) for download from the tool.
func (s *Server) handleSimExport(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquireSim(r, r.PathValue("id"), time.Now())
	if err != nil {
		s.sessionErr(w, r, err)
		return
	}
	defer h.release()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	g := vis.FromVector(h.val.sim.State())
	s.writeExport(w, r, g, style, r.URL.Query().Get("format"))
}

func (s *Server) handleVerifyExport(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquireVerify(r, r.PathValue("id"), time.Now())
	if err != nil {
		s.sessionErr(w, r, err)
		return
	}
	defer h.release()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	g := vis.FromMatrix(h.val.x)
	s.writeExport(w, r, g, style, r.URL.Query().Get("format"))
}

func (s *Server) writeExport(w http.ResponseWriter, r *http.Request, g *vis.Graph, style vis.Style, format string) {
	switch format {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		fmt.Fprint(w, g.DOT(style))
	case "", "svg":
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, g.SVG(style))
	default:
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("web: unknown export format %q (want svg or dot)", format))
	}
}

type functionalityRequest struct {
	Code    string `json:"code"`
	Format  string `json:"format"`
	Inverse bool   `json:"inverse"`
}

// handleFunctionality implements the Ex. 14 mode of the verification
// tab: with a single circuit loaded, build its (inverse) functionality
// as a matrix diagram and render it.
func (s *Server) handleFunctionality(w http.ResponseWriter, r *http.Request) {
	var req functionalityRequest
	if s.decodeJSON(w, r, &req) != nil {
		return
	}
	circ, err := ParseCircuit(req.Code, req.Format)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	if err := s.admit(circ); err != nil {
		s.writeErr(w, r, http.StatusUnprocessableEntity, codeCircuitTooLarge, err)
		return
	}
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	frame, err := buildFunctionalityFrame(circ, req.Inverse, style, s.cfg.MaxNodes)
	if err != nil {
		if errors.Is(err, dd.ErrResourceExhausted) {
			s.writeErr(w, r, http.StatusUnprocessableEntity, codeResourceExhausted, err)
			return
		}
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, map[string]interface{}{"frame": frame})
}

type newVerifyRequest struct {
	Left   string `json:"left"`
	Right  string `json:"right"`
	Format string `json:"format"`
}

func (s *Server) handleNewVerification(w http.ResponseWriter, r *http.Request) {
	var req newVerifyRequest
	if s.decodeJSON(w, r, &req) != nil {
		return
	}
	left, err := ParseCircuit(req.Left, req.Format)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("left circuit: %w", err))
		return
	}
	right, err := ParseCircuit(req.Right, req.Format)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("right circuit: %w", err))
		return
	}
	if err := s.admit(left); err != nil {
		s.writeErr(w, r, http.StatusUnprocessableEntity, codeCircuitTooLarge, fmt.Errorf("left circuit: %w", err))
		return
	}
	if err := s.admit(right); err != nil {
		s.writeErr(w, r, http.StatusUnprocessableEntity, codeCircuitTooLarge, fmt.Errorf("right circuit: %w", err))
		return
	}
	sess, err := newVerifySession(left, right, req.Left, req.Right, req.Format, s.cfg.MaxNodes)
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	id := s.newID("verify")
	sess.rec = s.newRecorder(id)
	s.instrument(sess.pkg, sess.rec, sess.acct)
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	frame := verifyFrame(sess, style, "identity")
	s.metrics.verifiesCreated.Inc()
	if evicted := s.verifies.put(id, sess, time.Now()); evicted != "" {
		s.metrics.evictedLRU.Inc()
		s.reqLogger(r).Info("evicted LRU session", "sessionId", id, "evictedSessionId", evicted)
	}
	s.writeJSON(w, r, http.StatusOK, map[string]interface{}{
		"id":    id,
		"frame": frame,
	})
}

type verifyStepRequest struct {
	Side   string `json:"side"`   // left | right
	Action string `json:"action"` // forward | barrier | backward
}

type verifyStepResponse struct {
	Frame    Frame  `json:"frame"`
	Applied  string `json:"applied,omitempty"`
	Error    string `json:"error,omitempty"`
	Identity string `json:"identity"`
	LeftPos  int    `json:"leftPos"`
	RightPos int    `json:"rightPos"`
}

// writeVerifyStepError mirrors writeStepError for the verification
// tab: resource exhaustion keeps the last good diagram on screen with
// a "too large" caption; other errors are client mistakes (400).
func (s *Server) writeVerifyStepError(w http.ResponseWriter, r *http.Request, sess *verifySession, style vis.Style, err error) {
	if !errors.Is(err, dd.ErrResourceExhausted) {
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, err)
		return
	}
	caption := stepErrorCaption(err)
	s.writeJSON(w, r, http.StatusOK, verifyStepResponse{
		Frame:    verifyFrame(sess, style, caption),
		Error:    err.Error(),
		Identity: sess.identity(),
		LeftPos:  sess.li,
		RightPos: sess.ri,
	})
}

func (s *Server) handleVerifyStep(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquireVerify(r, r.PathValue("id"), time.Now())
	if err != nil {
		s.sessionErr(w, r, err)
		return
	}
	defer h.release()
	sess := h.val
	var req verifyStepRequest
	if s.decodeJSON(w, r, &req) != nil {
		return
	}
	ctx := trace.With(r.Context(), sess.rec)
	ctx, rsp := trace.StartSpan(ctx, "POST /api/verification/{id}/step")
	defer rsp.End()
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	applied := ""
	switch req.Action {
	case "forward":
		gate, err := sess.stepSide(ctx, req.Side)
		if err != nil {
			s.writeVerifyStepError(w, r, sess, style, err)
			return
		}
		applied = gate
	case "barrier":
		n, err := sess.runToBarrier(ctx, req.Side)
		if err != nil {
			s.writeVerifyStepError(w, r, sess, style, err)
			return
		}
		applied = fmt.Sprintf("%d gate(s)", n)
	case "backward":
		if sess.stepBack() {
			applied = "undone"
		}
	default:
		s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, fmt.Errorf("web: unknown action %q", req.Action))
		return
	}
	s.writeJSON(w, r, http.StatusOK, verifyStepResponse{
		Frame:    verifyFrame(sess, style, applied),
		Applied:  applied,
		Identity: sess.identity(),
		LeftPos:  sess.li,
		RightPos: sess.ri,
	})
}

func (s *Server) handleVerifyGet(w http.ResponseWriter, r *http.Request) {
	h, err := s.acquireVerify(r, r.PathValue("id"), time.Now())
	if err != nil {
		s.sessionErr(w, r, err)
		return
	}
	defer h.release()
	sess := h.val
	style := styleFrom(r.URL.Query().Get("style"), r.URL.Query().Get("labels"))
	s.writeJSON(w, r, http.StatusOK, verifyStepResponse{
		Frame:    verifyFrame(sess, style, ""),
		Identity: sess.identity(),
		LeftPos:  sess.li,
		RightPos: sess.ri,
	})
}
