package web

// End-to-end tests of the tracing surface: the per-session Chrome
// trace endpoint on a scripted GHZ run, the one-shot debug bundle,
// and the scrape-freshness regression (stale LastStats snapshots).

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/obs"
)

// newTracedServer returns both the Server (for internals) and an
// httptest server over its handler, on a private registry.
func newTracedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.Metrics = obs.NewRegistry()
	ws := NewServerWithConfig(cfg)
	t.Cleanup(ws.Close)
	srv := httptest.NewServer(ws.Handler())
	t.Cleanup(srv.Close)
	return ws, srv
}

type traceEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args"`
}

// TestSessionTraceEndpointGHZ scripts a GHZ session — one step per
// gate, then a fast-forward — and validates the exported Chrome trace
// against the format the viewers require: valid JSON, a process_name
// record mapping the track to the session id, X events with ts/dur on
// tid 1, resolvable parent links, and the DD attributes riding on the
// step spans.
func TestSessionTraceEndpointGHZ(t *testing.T) {
	_, srv := newTracedServer(t)

	var created struct {
		ID string `json:"id"`
	}
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.GHZ(4).QASM()}, &created)
	var out map[string]interface{}
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "forward"}, &out)
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "forward"}, &out)
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "end"}, &out)

	resp, err := http.Get(srv.URL + "/debug/sessions/" + created.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("trace content type %q", ct)
	}
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	spanByID := map[uint64]traceEvent{}
	var names []string
	sawProcessName := false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" && ev.Args["name"] == created.ID {
				sawProcessName = true
			}
		case "I":
			// dropped-spans marker; none expected for this short run.
		case "X":
			if ev.TID != 1 || ev.PID != 1 {
				t.Fatalf("span %q on pid/tid %d/%d, want 1/1", ev.Name, ev.PID, ev.TID)
			}
			if ev.Dur == nil || *ev.Dur < 0 || ev.TS < 0 {
				t.Fatalf("span %q has invalid ts/dur", ev.Name)
			}
			id, ok := ev.Args["spanId"].(float64)
			if !ok {
				t.Fatalf("span %q lacks spanId", ev.Name)
			}
			spanByID[uint64(id)] = ev
			names = append(names, ev.Name)
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if !sawProcessName {
		t.Fatalf("no process_name record for session %s", created.ID)
	}
	// Every parent link must resolve to a recorded span.
	for _, ev := range spanByID {
		if p, ok := ev.Args["parentId"].(float64); ok {
			if _, ok := spanByID[uint64(p)]; !ok {
				t.Fatalf("span %q has dangling parent %v", ev.Name, p)
			}
		}
	}
	joined := strings.Join(names, "\n")
	for _, want := range []string{
		"POST /api/simulation/{id}/step", // request spans
		"step:gate",                      // session-op spans
		"fast-forward:end",               // the scripted fast-forward
		"dd:applygate",                   // engine child spans
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace lacks %q spans; got:\n%s", want, joined)
		}
	}
	// Step spans must carry the DD attributes.
	sawAttrs := false
	for _, ev := range spanByID {
		if strings.HasPrefix(ev.Name, "step:") {
			if _, ok := ev.Args["nodes_after"]; ok {
				sawAttrs = true
			}
		}
	}
	if !sawAttrs {
		t.Error("no step span carries nodes_after")
	}

	// Unknown sessions answer 404.
	resp2, err := http.Get(srv.URL + "/debug/sessions/sim-999/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session trace status %d, want 404", resp2.StatusCode)
	}
}

func TestBundleHandler(t *testing.T) {
	ws, srv := newTracedServer(t)

	var created struct {
		ID string `json:"id"`
	}
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	var out map[string]interface{}
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "end"}, &out)

	req := httptest.NewRequest("GET", "/debug/bundle?cpu=0", nil)
	rw := httptest.NewRecorder()
	ws.BundleHandler().ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("bundle status %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); ct != "application/gzip" {
		t.Fatalf("bundle content type %q", ct)
	}
	gz, err := gzip.NewReader(rw.Body)
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	members := map[string]string{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tar read: %v", err)
		}
		body, _ := io.ReadAll(tr)
		members[hdr.Name] = string(body)
	}
	for _, want := range []string{
		"metrics.prom", "buildinfo.txt", "flags.txt", "goroutines.txt", "heap.pprof",
		"sessions/" + created.ID + ".trace.json",
	} {
		if _, ok := members[want]; !ok {
			t.Errorf("bundle lacks member %s", want)
		}
	}
	if !strings.Contains(members["metrics.prom"], "dd_nodes_live") {
		t.Error("bundle metrics.prom lacks the DD families")
	}
	var timeline struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(members["sessions/"+created.ID+".trace.json"]), &timeline); err != nil {
		t.Fatalf("session timeline is not valid JSON: %v", err)
	}
	if len(timeline.TraceEvents) == 0 {
		t.Error("session timeline is empty")
	}

	// Invalid cpu parameter answers 400.
	rw2 := httptest.NewRecorder()
	ws.BundleHandler().ServeHTTP(rw2, httptest.NewRequest("GET", "/debug/bundle?cpu=x", nil))
	if rw2.Code != http.StatusBadRequest {
		t.Fatalf("bad cpu param status %d, want 400", rw2.Code)
	}
}

// TestScrapeSeesFreshStatsOnIdleSession is the stale-snapshot
// regression test: a session whose package ran fewer operations than
// the publish stride (and no GC) since the last publish used to leave
// its LastStats frozen at session creation. A scrape of an idle
// session must now reflect the current engine state, because collect
// forces a fresh publish while holding the (uncontended) session lock.
func TestScrapeSeesFreshStatsOnIdleSession(t *testing.T) {
	ws, srv := newTracedServer(t)

	var created struct {
		ID string `json:"id"`
	}
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.GHZ(4).QASM()}, &created)
	var out map[string]interface{}
	// Two steps: far below the 32-op publish stride.
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "forward"}, &out)
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "forward"}, &out)

	h, err := ws.sims.acquire(created.ID, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	wantLive := h.val.sim.Pkg().LiveNodes()
	h.release()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	got, ok := metricValue(string(body), "dd_nodes_live")
	if !ok {
		t.Fatalf("dd_nodes_live not found in scrape")
	}
	if got != wantLive {
		t.Fatalf("scrape reports dd_nodes_live=%d, engine has %d live nodes (stale snapshot)", got, wantLive)
	}
}

// metricValue extracts an integer-valued un-labeled series from a
// Prometheus text exposition.
func metricValue(body, name string) (int, bool) {
	re := regexp.MustCompile(fmt.Sprintf(`(?m)^%s ([0-9.e+]+)$`, regexp.QuoteMeta(name)))
	m := re.FindStringSubmatch(body)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return 0, false
	}
	return int(v), true
}
