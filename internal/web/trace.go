package web

// Trace export and one-shot debug bundles.
//
// GET /debug/sessions/{id}/trace streams one session's flight
// recorder as Chrome trace-event JSON — open the download in
// chrome://tracing or https://ui.perfetto.dev. The handler reads the
// recorder through registry.peek, never the per-session lock, so a
// timeline can be pulled from a session that is mid-fast-forward:
// exactly the moment a timeline is wanted.
//
// BundleHandler serves the whole process state as one tar.gz — the
// standard members from obs (metrics, profiles, build info, flags)
// plus every live session's timeline — intended for the admin
// listener, where it turns "can you reproduce it?" into "send me the
// bundle".

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"quantumdd/internal/obs"
	"quantumdd/internal/obs/trace"
)

// sessionRecorder finds the flight recorder of a live session of
// either kind. The bool reports whether the session exists AND has
// tracing enabled.
func (s *Server) sessionRecorder(id string) (*trace.Recorder, bool) {
	if sess, ok := s.sims.peek(id); ok {
		return sess.rec, sess.rec != nil
	}
	if sess, ok := s.verifies.peek(id); ok {
		return sess.rec, sess.rec != nil
	}
	return nil, false
}

func (s *Server) handleSessionTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.sessionRecorder(id)
	if !ok {
		s.sessionErr(w, r, errSessionUnknown)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", id+".trace.json"))
	if err := trace.WriteChromeTrace(w, trace.SessionFromRecorder(rec, 1)); err != nil {
		s.reqLogger(r).Error("trace export failed", "sessionId", id, "error", err)
	}
}

// sessionTraces snapshots every live traced session, each on its own
// process track. Recorder snapshots are cross-goroutine safe, so the
// fresh flag is irrelevant here.
func (s *Server) sessionTraces() []trace.SessionTrace {
	var out []trace.SessionTrace
	s.sims.forEach(func(id string, sess *simSession, fresh bool) {
		if sess.rec != nil {
			out = append(out, trace.SessionFromRecorder(sess.rec, len(out)+1))
		}
	})
	s.verifies.forEach(func(id string, sess *verifySession, fresh bool) {
		if sess.rec != nil {
			out = append(out, trace.SessionFromRecorder(sess.rec, len(out)+1))
		}
	})
	return out
}

// Bundle CPU-profile window bounds: the ?cpu=<seconds> parameter is
// clamped so a caller can neither skip the profile accidentally with
// a huge value nor hold the handler for minutes.
const (
	defaultBundleCPU = 5 * time.Second
	maxBundleCPU     = 30 * time.Second
)

// BundleHandler returns the one-shot debug-bundle endpoint: a single
// tar.gz with the metrics exposition, goroutine/heap/CPU profiles,
// build info, flag values, and one Chrome trace per live session
// (sessions/<id>.trace.json). ?cpu=<seconds> adjusts the CPU profile
// window (default 5, max 30, 0 omits it). The handler blocks for the
// profiling window; mount it on the admin listener, not the public
// mux.
func (s *Server) BundleHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cpu := defaultBundleCPU
		if v := r.URL.Query().Get("cpu"); v != "" {
			secs, err := strconv.Atoi(v)
			if err != nil || secs < 0 {
				http.Error(w, "cpu must be a non-negative integer (seconds)", http.StatusBadRequest)
				return
			}
			cpu = time.Duration(secs) * time.Second
			if cpu > maxBundleCPU {
				cpu = maxBundleCPU
			}
		}
		// Refresh the session gauges and DD aggregates so metrics.prom
		// inside the bundle matches what a scrape would have seen.
		s.collect()
		members := obs.StandardBundleMembers(s.metrics.registry, cpu)
		// Per-session resource ranking rides in every bundle; the
		// watchdog event log joins when telemetry is enabled.
		members = append(members, obs.BundleMember{
			Name: "sessions/top.json",
			Fill: func(w io.Writer) error {
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				return enc.Encode(s.sessionUsageSnapshot())
			},
		})
		if s.tele != nil {
			members = append(members, obs.BundleMember{
				Name: "watchdog.jsonl",
				Fill: s.tele.dog.WriteJSONL,
			})
			members = append(members, obs.BundleMember{
				Name: "shape_timeline.json",
				Fill: func(w io.Writer) error {
					enc := json.NewEncoder(w)
					enc.SetIndent("", "  ")
					return enc.Encode(s.shapeTimelineSnapshot(time.Now()))
				},
			})
		}
		for _, st := range s.sessionTraces() {
			members = append(members, obs.BundleMember{
				Name: "sessions/" + st.Name + ".trace.json",
				Fill: func(w io.Writer) error { return trace.WriteChromeTrace(w, st) },
			})
		}
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition", `attachment; filename="debug-bundle.tar.gz"`)
		if err := obs.WriteBundle(w, members); err != nil {
			s.logger.Error("debug bundle write failed", "error", err)
		}
	})
}
