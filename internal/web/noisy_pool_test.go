package web

// Tests for the parallel /api/noisy path: partial-progress rendering
// when the node budget trims the ensemble, concurrent requests on the
// shared pool configuration (race coverage), and the trajectory
// metric series.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/obs"
)

// TestNoisyPartialProgressResponse: with a node budget far below what
// the circuit needs, every trajectory fails — the endpoint must still
// answer 200 with a partial-progress body (the stepping frames'
// contract), not discard the ensemble as a 4xx.
func TestNoisyPartialProgressResponse(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.MaxNodes = 4
	cfg.Metrics = obs.NewRegistry()
	ws := NewServerWithConfig(cfg)
	t.Cleanup(ws.Close)
	srv := httptest.NewServer(ws.Handler())
	t.Cleanup(srv.Close)

	var resp noisyResponse
	r := post(t, srv, "/api/noisy", noisyRequest{
		Code:         algorithms.GHZ(14).QASM(),
		Depolarizing: 0.01,
		Trajectories: 10,
	}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("partial result rejected with status %d", r.StatusCode)
	}
	if !resp.Partial || resp.Error == "" {
		t.Fatalf("degraded ensemble not marked partial: %+v", resp)
	}
	if resp.Failed != 10 || resp.Trajectories != 0 || resp.Requested != 10 {
		t.Fatalf("progress fields wrong: %+v", resp)
	}
	if !strings.Contains(resp.Error, "budget") {
		t.Fatalf("error does not name the budget: %q", resp.Error)
	}
	if len(resp.Counts) != 0 {
		t.Fatalf("failed trajectories leaked counts: %v", resp.Counts)
	}
}

// TestNoisyConcurrentRequests hammers the endpoint from several
// clients at once — under -race this is the proof that per-request
// ensembles (each with its own replica pool) share nothing but the
// metrics, and determinism holds under contention.
func TestNoisyConcurrentRequests(t *testing.T) {
	srv := newTestServer(t)
	req := noisyRequest{
		Code:         algorithms.GHZ(5).QASM(),
		Depolarizing: 0.05,
		Trajectories: 100,
	}
	const clients = 6
	results := make([]noisyResponse, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			post(t, srv, "/api/noisy", req, &results[i])
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if results[i].Trajectories != results[0].Trajectories ||
			results[i].ErrorEvents != results[0].ErrorEvents ||
			results[i].MeanNodes != results[0].MeanNodes {
			t.Fatalf("concurrent requests diverged: %+v vs %+v", results[i], results[0])
		}
		for k, v := range results[0].Counts {
			if results[i].Counts[k] != v {
				t.Fatalf("counts[%s] diverged: %d vs %d", k, results[i].Counts[k], v)
			}
		}
	}
}

// TestNoisyTrajectoryMetrics: a finished ensemble must be visible in
// the scrape — completions counted, latency observed, pool width
// published.
func TestNoisyTrajectoryMetrics(t *testing.T) {
	srv := newMetricsTestServer(t)
	var resp noisyResponse
	post(t, srv, "/api/noisy", noisyRequest{
		Code:         algorithms.Bell().QASM(),
		Trajectories: 40,
	}, &resp)
	if resp.Trajectories != 40 {
		t.Fatalf("ensemble incomplete: %+v", resp)
	}
	body := scrape(t, srv)
	if !strings.Contains(body, "trajectories_completed_total 40") {
		t.Fatalf("completed counter missing or wrong:\n%s", grepLines(body, "trajectories_completed"))
	}
	if !strings.Contains(body, `trajectory_seconds_count 40`) {
		t.Fatalf("latency histogram missing:\n%s", grepLines(body, "trajectory_seconds"))
	}
	if !strings.Contains(body, "noisy_workers") {
		t.Fatal("pool width gauge missing")
	}
}

// grepLines filters a scrape body to lines mentioning substr, for
// focused failure messages.
func grepLines(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
