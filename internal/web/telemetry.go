package web

// The live telemetry pipeline (PR 8).
//
// One background loop ties the observability subsystems together: on
// every tick it refreshes the scrape-time gauges (collect), records
// each live session's cumulative DD work as auto-pruned tsdb series,
// sweeps every registered metric family into the in-process
// time-series store, evaluates the watchdog rules over the retained
// windows, and broadcasts an incremental frame to the /debug/live
// subscribers. Everything hangs off this one tick, so a single
// Config.SampleInterval governs the freshness of the tsdb, the SLO
// burn-rate math behind /readyz, the watchdog, and the live stream.

import (
	"fmt"
	"time"

	"quantumdd/internal/obs/tsdb"
)

// Watchdog thresholds. Deliberately coarse: the watchdog flags
// operator-grade anomalies (a GC pause spike, a cache collapse, spill
// corruption), not per-request noise.
const (
	// watchGCPauseP99 flags a windowed p99 GC pause above this.
	watchGCPauseP99 = 100 * time.Millisecond
	// watchCTHitFloor flags an apply compute-table hit ratio below this
	// while the table is under real load (hit-rate collapse).
	watchCTHitFloor = 0.05
	// watchCTMinLookups is the load floor for the collapse rule, so an
	// idle engine's 0/0 ratio never fires it.
	watchCTMinLookups = 1000.0
	// watchBlowupFactor fires the node-blowup rule when the widest DD
	// level grew by more than this factor over the window (or appeared
	// from nothing at all) — exponential growth crosses any factor
	// within a window or two, while legitimate plateaus never do.
	watchBlowupFactor = 4.0
	// watchBlowupMinNodes is the absolute occupancy floor of the
	// blowup rule: growth below it is noise on any hardware, so small
	// diagrams can quadruple freely without paging anyone.
	watchBlowupMinNodes = 512.0
)

// sessionLabels renders the tsdb label set of one session's recorded
// per-session series.
func sessionLabels(id string) string { return fmt.Sprintf("id=%q", id) }

// telemetry owns the sampling loop's moving parts.
type telemetry struct {
	store *tsdb.Store
	dog   *tsdb.Watchdog
	hub   *liveHub
	stop  chan struct{}
	done  chan struct{}
}

// newTelemetry builds the store, watchdog, and live hub on the
// server's registry. The loop itself is started by the caller.
func (s *Server) newTelemetry() *telemetry {
	st := tsdb.New(s.metrics.registry, tsdb.Config{
		Interval: s.cfg.SampleInterval,
		Capacity: s.cfg.SampleRetention,
	})
	t := &telemetry{
		store: st,
		dog:   tsdb.NewWatchdog(st, s.metrics.registry, 0, s.watchdogRules()...),
		hub:   newLiveHub(s.metrics),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	return t
}

// watchdogRules are the built-in breach detectors over the retained
// telemetry. The window is the SLO window so one knob tunes both.
func (s *Server) watchdogRules() []tsdb.Rule {
	win := s.sloWindow()
	return []tsdb.Rule{
		{
			Name: "gc_pause_spike",
			Check: func(q tsdb.Querier, now time.Time) (string, bool) {
				p99, ok := q.Quantile("dd_gc_pause_seconds", "", 0.99, win, now)
				if !ok || p99 <= watchGCPauseP99.Seconds() {
					return "", false
				}
				return fmt.Sprintf("p99 GC pause %.3fs over %s (threshold %s)", p99, win, watchGCPauseP99), true
			},
		},
		{
			Name: "ct_hit_collapse",
			Check: func(q tsdb.Querier, now time.Time) (string, bool) {
				lookups, ok := q.Delta("dd_apply_table_lookups", "", win, now)
				if !ok || lookups < watchCTMinLookups {
					return "", false
				}
				ratio, ok := q.Latest("dd_compute_table_hit_ratio", "")
				if !ok || ratio.V >= watchCTHitFloor {
					return "", false
				}
				return fmt.Sprintf("compute-table hit ratio %.3f under %.0f lookups over %s", ratio.V, lookups, win), true
			},
		},
		{
			// Node-blowup early warning (the shape profiler's watchdog
			// leg): the widest level's occupancy is the predictor of
			// whether a DD workload stays feasible, so a rapid rise —
			// past the floor, by more than the growth factor within the
			// window — pages before the node budget kills the session.
			// The gauge aggregates the largest recently profiled
			// diagram per kind across sessions (see collect).
			Name: "node_blowup",
			Check: func(q tsdb.Querier, now time.Time) (string, bool) {
				for _, kind := range []string{`kind="vector"`, `kind="matrix"`} {
					latest, ok := q.Latest("dd_shape_max_level_nodes", kind)
					if !ok || latest.V < watchBlowupMinNodes {
						continue
					}
					growth, ok := q.Delta("dd_shape_max_level_nodes", kind, win, now)
					if !ok || growth <= 0 {
						continue
					}
					prev := latest.V - growth
					if prev > 0 && latest.V < prev*watchBlowupFactor {
						continue
					}
					level, _ := q.Latest("dd_shape_widest_level", kind)
					return fmt.Sprintf("%s DD level %.0f grew %.0f → %.0f nodes over %s (floor %.0f, factor %g)",
						kind, level.V, prev, latest.V, win, watchBlowupMinNodes, watchBlowupFactor), true
				}
				return "", false
			},
		},
		{
			Name: "spill_corruption",
			Check: func(q tsdb.Querier, now time.Time) (string, bool) {
				var n float64
				for _, kind := range []string{`kind="sim"`, `kind="verify"`} {
					if d, ok := q.Delta("snapshot_corruptions_total", kind, win, now); ok {
						n += d
					}
				}
				if n <= 0 {
					return "", false
				}
				return fmt.Sprintf("%.0f corrupt snapshot(s) rejected over %s", n, win), true
			},
		},
	}
}

// telemetryLoop is the background ticker; it exits when Close fires
// the stop channel.
func (s *Server) telemetryLoop() {
	defer close(s.tele.done)
	t := time.NewTicker(s.cfg.SampleInterval)
	defer t.Stop()
	for {
		select {
		case <-s.tele.stop:
			return
		case now := <-t.C:
			s.sampleTelemetry(now)
		}
	}
}

// sampleTelemetry runs one full telemetry tick at now. Split from the
// loop so tests drive ticks deterministically.
func (s *Server) sampleTelemetry(now time.Time) {
	// Refresh the scrape-time gauges first so the sweep below samples
	// current session counts and DD aggregates, not the last scrape's.
	s.collect()
	usage := s.sessionUsageSnapshot()
	for _, u := range usage {
		labels := sessionLabels(u.ID)
		// Cumulative per-session meters: windowed Rate/Delta over these
		// recorded series yields the per-session dd.Stats deltas without
		// ever exposing per-session label cardinality on /metrics. The
		// tsdb prunes them automatically once the session goes away.
		s.tele.store.Record("session_dd_ops", labels, float64(u.DDOps), now)
		s.tele.store.Record("session_dd_seconds", labels, u.DDSeconds, now)
		s.tele.store.Record("session_live_nodes", labels, float64(u.LiveNodes), now)
		s.tele.store.Record("session_nodes_created", labels, float64(u.NodesCreated), now)
		// Structural timeline: the shape profiler's per-session series,
		// feeding GET /debug/sessions/{id}/shape and shape_timeline.json
		// in debug bundles. Only recorded once a profile exists, so
		// disabled-profiler sessions add no series at all.
		if u.ShapeSeq > 0 {
			s.tele.store.Record("session_shape_nodes", labels, float64(u.ShapeNodes), now)
			s.tele.store.Record("session_shape_max_level_nodes", labels, float64(u.ShapeMaxLevelNodes), now)
			s.tele.store.Record("session_shape_sharing", labels, u.ShapeSharing, now)
			s.tele.store.Record("session_shape_identity_fraction", labels, u.ShapeIdentityFraction, now)
		}
	}
	s.tele.store.SampleOnce(now)
	s.tele.dog.Evaluate(now)
	s.tele.hub.broadcast(s.liveFrameBytes(now, usage))
}

// stopTelemetry shuts the loop down and disconnects live clients;
// called once from Close.
func (s *Server) stopTelemetry() {
	if s.tele == nil {
		return
	}
	close(s.tele.stop)
	<-s.tele.done
	s.tele.hub.closeAll()
}

// Telemetry exposes the time-series store (nil when sampling is
// disabled) for embedding callers and tests.
func (s *Server) Telemetry() *tsdb.Store {
	if s.tele == nil {
		return nil
	}
	return s.tele.store
}

// WatchdogEvents returns the retained watchdog events, oldest first
// (nil when sampling is disabled).
func (s *Server) WatchdogEvents() []tsdb.Event {
	if s.tele == nil {
		return nil
	}
	return s.tele.dog.Events()
}
