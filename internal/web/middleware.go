package web

// Request hardening middleware: request IDs, access logging, panic
// recovery, body size caps, and per-request deadlines. One panicking
// or runaway request must cost its caller an error response, never the
// process or other users' sessions.

import (
	"context"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

type ctxKey int

const ctxKeyRequestID ctxKey = iota

// requestID returns the id the middleware assigned to this request
// ("" outside the middleware chain, e.g. in direct handler tests).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ctxKeyRequestID).(string)
	return id
}

// statusWriter records what was sent so the recovery and logging
// layers know the response status and whether headers are still open.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// withMiddleware wraps next with the hardening chain: request-ID
// tagging, body size cap, per-request deadline, panic recovery, and
// access logging.
func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%d", s.nextReqID.Add(1))
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-ID", id)
		if r.Body != nil && s.cfg.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.logger.Error("panic recovered",
					"requestId", id, "method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if !sw.wrote {
					s.writeErr(sw, r, http.StatusInternalServerError, codeInternal,
						fmt.Errorf("web: internal server error"))
				}
			}
			status := sw.status
			if !sw.wrote {
				status = http.StatusOK
			}
			s.logger.Info("request",
				"requestId", id, "method", r.Method, "path", r.URL.Path,
				"status", status, "duration", time.Since(start))
		}()
		next.ServeHTTP(sw, r)
	})
}
