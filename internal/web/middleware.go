package web

// Request hardening and observability middleware: request IDs, access
// logging, panic recovery, body size caps, per-request deadlines, and
// the traffic metrics (request counts by status class, latency
// histogram, in-flight gauge). One panicking or runaway request must
// cost its caller an error response, never the process or other
// users' sessions.

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"time"
)

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyLogger
)

// requestID returns the id the middleware assigned to this request
// ("" outside the middleware chain, e.g. in direct handler tests).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ctxKeyRequestID).(string)
	return id
}

// reqLogger returns the request-scoped logger: the server's injected
// logger decorated with the request-ID attribute. Handlers log
// through this so every line of a request's story carries the same
// id. Outside the middleware chain it falls back to the bare logger.
func (s *Server) reqLogger(r *http.Request) *slog.Logger {
	if l, ok := r.Context().Value(ctxKeyLogger).(*slog.Logger); ok {
		return l
	}
	return s.logger
}

// statusWriter records what was sent so the recovery, logging and
// metrics layers know the response status and whether headers are
// still open.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer so the SSE live stream can push
// frames through the middleware chain. Embedding alone would hide the
// underlying Flusher behind the statusWriter type.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withMiddleware wraps next with the hardening chain: request-ID
// tagging, body size cap, per-request deadline, panic recovery,
// access logging, and traffic metrics.
func (s *Server) withMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%d", s.nextReqID.Add(1))
		// The SSE live stream is deliberately long-lived: exempt it from
		// the per-request deadline (which would cut every stream after
		// RequestTimeout) and from the latency histogram (where one
		// hour-long stream would poison the p99 the SLO gate reads).
		streaming := r.URL.Path == "/debug/live"
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, id)
		ctx = context.WithValue(ctx, ctxKeyLogger, s.logger.With("requestId", id))
		if s.cfg.RequestTimeout > 0 && !streaming {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-ID", id)
		if r.Body != nil && s.cfg.MaxBodyBytes > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		s.metrics.inFlight.Inc()
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panics.Inc()
				s.reqLogger(r).Error("panic recovered",
					"method", r.Method, "path", r.URL.Path,
					"panic", fmt.Sprint(rec), "stack", string(debug.Stack()))
				if !sw.wrote {
					s.writeErr(sw, r, http.StatusInternalServerError, codeInternal,
						fmt.Errorf("web: internal server error"))
				}
			}
			status := sw.status
			if !sw.wrote {
				status = http.StatusOK
			}
			elapsed := time.Since(start)
			s.metrics.inFlight.Dec()
			s.metrics.observeStatus(status)
			if !streaming {
				s.metrics.reqDuration.ObserveSeconds(int64(elapsed))
			}
			s.reqLogger(r).Info("request",
				"method", r.Method, "path", r.URL.Path,
				"status", status, "duration", elapsed)
		}()
		next.ServeHTTP(sw, r)
	})
}
