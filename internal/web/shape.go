package web

// Diagram-structure observability (the shape profiler's web surface).
//
// GET /debug/sessions/{id}/shape serves a live structural profile of
// one session's diagram: the handler takes the session lock and
// profiles the *current* state (publishing it, so the metric gauges
// and timelines pick the same sample up), then decorates it with the
// retained per-session structural timeline from the telemetry store.
// The same timeline — for every live session — rides in debug bundles
// as shape_timeline.json, so a blowup that killed a session five
// minutes ago is still diagnosable from the bundle alone.

import (
	"errors"
	"net/http"
	"time"

	"quantumdd/internal/dd"
)

// defaultShapeInterval is the profiling stride when Config.ShapeInterval
// is zero. At stride 32 the O(nodes) profile walk amortizes to well
// under 1% of the per-step engine work (BENCH_pr10.json).
const defaultShapeInterval = 32

// shapeInterval resolves Config.ShapeInterval: 0 means the default
// stride, negative disables profiling.
func (s *Server) shapeInterval() int {
	switch {
	case s.cfg.ShapeInterval < 0:
		return 0
	case s.cfg.ShapeInterval == 0:
		return defaultShapeInterval
	default:
		return s.cfg.ShapeInterval
	}
}

// shapePoint is one timeline sample.
type shapePoint struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// shapeTimeline is the retained structural history of one session,
// pulled from the telemetry store's auto-pruned per-session series.
// Nil slices mean telemetry is disabled or the session is too young
// to have been swept.
type shapeTimeline struct {
	Nodes            []shapePoint `json:"nodes,omitempty"`
	MaxLevelNodes    []shapePoint `json:"maxLevelNodes,omitempty"`
	SharingFactor    []shapePoint `json:"sharingFactor,omitempty"`
	IdentityFraction []shapePoint `json:"identityFraction,omitempty"`
}

// shapeResponse is the GET /debug/sessions/{id}/shape payload.
type shapeResponse struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "sim" or "verify"
	// Interval is the session's sampling stride (0 = disabled; the
	// profile below is still fresh — the endpoint forces one).
	Interval int             `json:"interval"`
	Profile  dd.ShapeProfile `json:"profile"`
	Timeline *shapeTimeline  `json:"timeline,omitempty"`
}

// shapeTimelineFor assembles the retained timeline of one session id,
// or nil when telemetry is disabled.
func (s *Server) shapeTimelineFor(id string, now time.Time) *shapeTimeline {
	if s.tele == nil {
		return nil
	}
	labels := sessionLabels(id)
	win := s.sloWindow()
	pull := func(name string) []shapePoint {
		pts := s.tele.store.Window(name, labels, win, now)
		if len(pts) == 0 {
			return nil
		}
		out := make([]shapePoint, len(pts))
		for i, p := range pts {
			out[i] = shapePoint{T: p.T, V: p.V}
		}
		return out
	}
	return &shapeTimeline{
		Nodes:            pull("session_shape_nodes"),
		MaxLevelNodes:    pull("session_shape_max_level_nodes"),
		SharingFactor:    pull("session_shape_sharing"),
		IdentityFraction: pull("session_shape_identity_fraction"),
	}
}

// handleSessionShape serves a live structural profile of one session's
// current diagram. Unlike the trace endpoint this takes the session
// lock: the profile must walk the diagram, and walking a diagram that
// a concurrent step is rewriting is not an option.
func (s *Server) handleSessionShape(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	now := time.Now()
	if h, err := s.acquireSim(r, id, now); err == nil {
		defer h.release()
		sess := h.val
		resp := shapeResponse{
			ID:       id,
			Kind:     "sim",
			Interval: sess.sim.Pkg().ShapeInterval(),
			Profile:  sess.sim.Pkg().PublishShapeV(sess.sim.State()),
			Timeline: s.shapeTimelineFor(id, now),
		}
		s.writeJSON(w, r, http.StatusOK, resp)
		return
	} else if errors.Is(err, errSessionGone) {
		s.sessionErr(w, r, err)
		return
	}
	h, err := s.acquireVerify(r, id, now)
	if err != nil {
		s.sessionErr(w, r, err)
		return
	}
	defer h.release()
	sess := h.val
	resp := shapeResponse{
		ID:       id,
		Kind:     "verify",
		Interval: sess.pkg.ShapeInterval(),
		Profile:  sess.pkg.PublishShapeM(sess.x),
		Timeline: s.shapeTimelineFor(id, now),
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// shapeBundleEntry is one session's slice of shape_timeline.json.
type shapeBundleEntry struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	// Profile is the session's last published profile (nil when the
	// session never crossed the sampling stride).
	Profile  *dd.ShapeProfile `json:"profile,omitempty"`
	Timeline *shapeTimeline   `json:"timeline,omitempty"`
}

// shapeTimelineSnapshot collects every live session's structural state
// for the debug bundle. Busy sessions are read race-cleanly via the
// published snapshot; idle ones (lock held, fresh=true) that have
// never crossed the stride get a forced profile so young sessions are
// not invisible in bundles.
func (s *Server) shapeTimelineSnapshot(now time.Time) []shapeBundleEntry {
	entries := []shapeBundleEntry{}
	s.sims.forEach(func(id string, sess *simSession, fresh bool) {
		p := sess.sim.Pkg()
		if fresh && p.ShapeInterval() > 0 && p.LastShape() == nil {
			p.PublishShapeV(sess.sim.State())
		}
		entries = append(entries, shapeBundleEntry{
			ID: id, Kind: "sim",
			Profile:  p.LastShape(),
			Timeline: s.shapeTimelineFor(id, now),
		})
	})
	s.verifies.forEach(func(id string, sess *verifySession, fresh bool) {
		if fresh && sess.pkg.ShapeInterval() > 0 && sess.pkg.LastShape() == nil {
			sess.pkg.PublishShapeM(sess.x)
		}
		entries = append(entries, shapeBundleEntry{
			ID: id, Kind: "verify",
			Profile:  sess.pkg.LastShape(),
			Timeline: s.shapeTimelineFor(id, now),
		})
	})
	return entries
}
