package web

// indexHTML is the embedded single-page UI of the tool. It reproduces
// the interaction model of Sec. IV: an algorithm box with the example
// list, navigation buttons (⏮ ← → ⏭ and play/pause), a style panel
// (classic/colored/modern, edge labels), the decision-diagram canvas,
// measurement/reset dialogs, and a verification tab with two algorithm
// boxes stepping toward the identity.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Visualizing Decision Diagrams for Quantum Computing</title>
<style>
  body { font-family: Helvetica, Arial, sans-serif; margin: 0; background: #f5f7fa; color: #222; }
  header { background: #35507a; color: white; padding: 10px 18px; }
  header h1 { font-size: 18px; margin: 0; }
  header p { margin: 2px 0 0; font-size: 12px; opacity: .85; }
  .tabs { display: flex; gap: 4px; padding: 8px 18px 0; }
  .tabs button { border: none; padding: 8px 16px; border-radius: 6px 6px 0 0; cursor: pointer; background: #d7dfeb; font-size: 14px; }
  .tabs button.active { background: white; font-weight: bold; }
  main { display: none; padding: 14px 18px; }
  main.active { display: flex; gap: 14px; align-items: flex-start; flex-wrap: wrap; }
  .panel { background: white; border-radius: 8px; padding: 12px; box-shadow: 0 1px 3px rgba(0,0,0,.15); }
  textarea { width: 340px; height: 260px; font-family: monospace; font-size: 12px; }
  .controls { margin-top: 8px; display: flex; gap: 6px; flex-wrap: wrap; }
  .controls button { padding: 6px 10px; font-size: 14px; cursor: pointer; }
  #ddbox, #vddbox { min-width: 420px; min-height: 380px; overflow: auto; max-height: 78vh; }
  .status { font-size: 12px; color: #444; margin-top: 6px; min-height: 16px; }
  select, label { font-size: 13px; }
  .settings { display: flex; flex-direction: column; gap: 8px; max-width: 220px; }
  dialog { border: 1px solid #35507a; border-radius: 8px; padding: 18px; }
  dialog button { margin: 6px; padding: 8px 18px; font-size: 15px; cursor: pointer; }
  .identity-yes { color: #0a7d28; font-weight: bold; }
  .identity-no { color: #9c2b2b; font-weight: bold; }
  img.wheel { display: block; margin-top: 4px; }
</style>
</head>
<body>
<header>
  <h1>Visualizing Decision Diagrams for Quantum Computing</h1>
  <p>Go reproduction of the DATE 2021 tool — simulation and equivalence checking on quantum decision diagrams</p>
</header>
<div class="tabs">
  <button id="tab-sim" class="active" onclick="showTab('sim')">Simulation</button>
  <button id="tab-ver" onclick="showTab('ver')">Verification</button>
</div>

<main id="main-sim" class="active">
  <div class="panel">
    <b>Algorithm</b><br>
    <select id="examples" onchange="loadExample()"><option value="">— Example Algorithms —</option></select><br>
    <textarea id="code" spellcheck="false"></textarea>
    <div class="controls">
      <button onclick="newSim()">Load</button>
      <button onclick="simStep('start')" title="back to the beginning">&#9198;</button>
      <button onclick="simStep('backward')" title="one step back">&#8592;</button>
      <button onclick="simStep('forward')" title="one step forward">&#8594;</button>
      <button onclick="simStep('break')" title="to the next special operation">&#9197;</button>
      <button onclick="simStep('end')" title="to the end">&#9193;</button>
      <button id="play" onclick="togglePlay()" title="slide show">&#9654;</button>
    </div>
    <div class="status" id="simstatus">load an algorithm to begin</div>
  </div>
  <div class="panel settings">
    <b>Settings</b>
    <label>Style:
      <select id="style" onchange="refresh()">
        <option value="classic">classic</option>
        <option value="colored">colored</option>
        <option value="modern">modern</option>
      </select>
    </label>
    <label><input type="checkbox" id="labels" checked onchange="refresh()"> edge weight labels</label>
    <div>Phase color wheel:<img class="wheel" src="/colorwheel.svg" width="120" alt="HLS color wheel"></div>
  </div>
  <div class="panel" id="ddbox">load an algorithm…</div>
</main>

<main id="main-ver">
  <div class="panel">
    <b>Circuit G</b><br>
    <textarea id="left" spellcheck="false"></textarea>
    <div class="controls">
      <button onclick="verStep('left','forward')">apply gate &#8594;</button>
      <button onclick="verStep('left','barrier')">to barrier &#9197;</button>
    </div>
  </div>
  <div class="panel" id="vddbox">load circuits…</div>
  <div class="panel">
    <b>Circuit G'</b><br>
    <textarea id="right" spellcheck="false"></textarea>
    <div class="controls">
      <button onclick="verStep('right','forward')">&#8592; apply gate&#8224;</button>
      <button onclick="verStep('right','barrier')">&#9198; to barrier</button>
    </div>
    <div class="controls">
      <button onclick="newVer()">Load both</button>
      <button onclick="verStep('left','backward')">undo</button>
      <button onclick="buildFunc(false)" title="Ex. 14: single-circuit mode">functionality of G</button>
      <button onclick="buildFunc(true)">inverse of G</button>
    </div>
    <div class="status" id="verstatus">G is applied from the left, inverted G' from the right; equivalent circuits end at the identity.</div>
  </div>
</main>

<dialog id="measure-dialog">
  <p id="dialog-text"></p>
  <button onclick="choose(0)">collapse to |0&#x27E9;</button>
  <button onclick="choose(1)">collapse to |1&#x27E9;</button>
</dialog>

<script>
let simId = null, verId = null, playing = null;

function qs() {
  const style = document.getElementById('style').value;
  const labels = document.getElementById('labels').checked ? '1' : '0';
  return '?style=' + style + '&labels=' + labels;
}
function showTab(t) {
  document.getElementById('main-sim').classList.toggle('active', t === 'sim');
  document.getElementById('main-ver').classList.toggle('active', t === 'ver');
  document.getElementById('tab-sim').classList.toggle('active', t === 'sim');
  document.getElementById('tab-ver').classList.toggle('active', t === 'ver');
}
async function api(url, body) {
  const opts = body === undefined ? {} : {method: 'POST', body: JSON.stringify(body)};
  const resp = await fetch(url, opts);
  const data = await resp.json();
  if (!resp.ok) throw new Error(data.error || resp.statusText);
  return data;
}
async function loadExamples() {
  const ex = await api('/api/examples');
  const sel = document.getElementById('examples');
  ex.forEach((e, i) => {
    const o = document.createElement('option');
    o.value = i; o.textContent = e.name;
    sel.appendChild(o);
  });
  window._examples = ex;
}
function loadExample() {
  const sel = document.getElementById('examples');
  if (sel.value === '') return;
  document.getElementById('code').value = window._examples[sel.value].code;
  newSim();
}
function renderFrame(boxId, frame, statusId, text) {
  document.getElementById(boxId).innerHTML = frame.svg;
  if (statusId) {
    let extra = '';
    if (frame.pathCount) extra += ', ' + frame.pathCount + ' basis state(s)';
    if (frame.peakNodes) extra += ', peak ' + frame.peakNodes + ' node(s)';
    document.getElementById(statusId).textContent =
      (text || frame.caption || '') + '  [' + frame.nodes + ' node(s)' + extra +
      ', op ' + frame.pos + '/' + frame.total + ']';
  }
}
async function newSim() {
  stopPlay();
  try {
    const data = await api('/api/simulation' + qs(), {code: document.getElementById('code').value});
    simId = data.id;
    renderFrame('ddbox', data.frame, 'simstatus', 'loaded');
  } catch (e) { document.getElementById('simstatus').textContent = e.message; }
}
async function simStep(action) {
  if (!simId) return;
  try {
    const data = await api('/api/simulation/' + simId + '/step' + qs(), {action});
    if (data.pending) { showDialog(data.pending); renderFrame('ddbox', data.frame, 'simstatus', 'measurement pending'); return; }
    renderFrame('ddbox', data.frame, 'simstatus', data.event);
    if (data.atEnd) stopPlay();
  } catch (e) { document.getElementById('simstatus').textContent = e.message; stopPlay(); }
}
function showDialog(p) {
  stopPlay();
  const kind = p.kind === 'reset' ? 'Reset' : 'Measurement';
  document.getElementById('dialog-text').textContent =
    kind + ' of q[' + p.qubit + ']: P(|0>) = ' + (p.p0 * 100).toFixed(1) + '%, P(|1>) = ' + (p.p1 * 100).toFixed(1) + '%';
  document.getElementById('measure-dialog').showModal();
}
async function choose(outcome) {
  document.getElementById('measure-dialog').close();
  const data = await api('/api/simulation/' + simId + '/choose' + qs(), {outcome});
  renderFrame('ddbox', data.frame, 'simstatus', data.event);
}
function togglePlay() {
  if (playing) { stopPlay(); return; }
  document.getElementById('play').innerHTML = '&#9208;';
  playing = setInterval(() => simStep('forward'), 900);
}
function stopPlay() {
  if (playing) clearInterval(playing);
  playing = null;
  document.getElementById('play').innerHTML = '&#9654;';
}
async function refresh() {
  if (simId && document.getElementById('main-sim').classList.contains('active')) {
    const data = await api('/api/simulation/' + simId + qs());
    renderFrame('ddbox', data.frame, 'simstatus', '');
  }
  if (verId && document.getElementById('main-ver').classList.contains('active')) {
    const data = await api('/api/verification/' + verId + qs());
    renderVer(data);
  }
}
async function newVer() {
  try {
    const data = await api('/api/verification' + qs(), {
      left: document.getElementById('left').value,
      right: document.getElementById('right').value,
    });
    verId = data.id;
    renderFrame('vddbox', data.frame, 'verstatus', 'identity loaded');
  } catch (e) { document.getElementById('verstatus').textContent = e.message; }
}
function renderVer(data) {
  renderFrame('vddbox', data.frame, null);
  const st = document.getElementById('verstatus');
  const cls = data.identity.startsWith('identity') ? 'identity-yes' : 'identity-no';
  st.innerHTML = (data.applied ? 'applied ' + data.applied + ' — ' : '') +
    '<span class="' + cls + '">' + data.identity + '</span>' +
    ' [' + data.frame.nodes + ' node(s), G: ' + data.leftPos + ', G\': ' + data.rightPos + ']';
}
async function buildFunc(inverse) {
  try {
    const data = await api('/api/functionality' + qs(), {
      code: document.getElementById('left').value, inverse: inverse,
    });
    renderFrame('vddbox', data.frame, 'verstatus', data.frame.caption);
  } catch (e) { document.getElementById('verstatus').textContent = e.message; }
}
async function verStep(side, action) {
  if (!verId) return;
  try {
    const data = await api('/api/verification/' + verId + '/step' + qs(), {side, action});
    renderVer(data);
  } catch (e) { document.getElementById('verstatus').textContent = e.message; }
}
loadExamples();
</script>
</body>
</html>
`
