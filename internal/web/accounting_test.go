package web

// Per-session resource accounting: ranking, truncation, and input
// validation on /debug/sessions/top.

import (
	"fmt"
	"net/http"
	"testing"

	"quantumdd/internal/algorithms"
)

func TestSessionsTopRankingAndFields(t *testing.T) {
	_, srv := newSpillTestServer(t, nil)

	// Two sessions with different work volumes: the busiest must rank
	// first, and its counters must be non-zero.
	var busy newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.GHZ(4).QASM()}, &busy)
	for i := 0; i < 5; i++ {
		post(t, srv, "/api/simulation/"+busy.ID+"/step", stepRequest{Action: "forward"}, nil)
	}
	var idle newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &idle)

	var top topResponse
	resp := get(t, srv, "/debug/sessions/top", &top)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/sessions/top status %d", resp.StatusCode)
	}
	if top.Total != 2 || len(top.Sessions) != 2 {
		t.Fatalf("total=%d sessions=%d, want 2/2", top.Total, len(top.Sessions))
	}
	if top.Sessions[0].ID != busy.ID {
		t.Fatalf("busiest session not ranked first: %+v", top.Sessions)
	}
	// Session creation builds the session directly; only subsequent
	// requests pass the acquire choke point, so 5 steps => 5 requests.
	u := top.Sessions[0]
	if u.Kind != "sim" || u.DDOps == 0 || u.Requests < 5 || u.LiveNodes == 0 {
		t.Fatalf("usage fields implausible: %+v", u)
	}
}

func TestSessionsTopTruncation(t *testing.T) {
	_, srv := newSpillTestServer(t, nil)
	for i := 0; i < 4; i++ {
		post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, nil)
	}
	var top topResponse
	get(t, srv, "/debug/sessions/top?n=2", &top)
	if len(top.Sessions) != 2 {
		t.Fatalf("n=2 returned %d sessions", len(top.Sessions))
	}
	// Total reports the untruncated population so a dashboard can say
	// "showing 2 of 4".
	if top.Total != 4 {
		t.Fatalf("total = %d, want 4", top.Total)
	}
}

func TestSessionsTopBadN(t *testing.T) {
	_, srv := newSpillTestServer(t, nil)
	for _, bad := range []string{"0", "-3", "x", "1.5"} {
		resp := get(t, srv, "/debug/sessions/top?n="+bad, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("n=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestSessionsTopCapsN(t *testing.T) {
	_, srv := newSpillTestServer(t, nil)
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, nil)
	resp := get(t, srv, fmt.Sprintf("/debug/sessions/top?n=%d", maxTopN+1), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oversized n should clamp, not fail: status %d", resp.StatusCode)
	}
}
