package web

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRegistryAcquireRelease(t *testing.T) {
	r := newRegistry[int](0, 0)
	now := time.Now()
	r.put("a", 1, now)
	h, err := r.acquire("a", now)
	if err != nil {
		t.Fatal(err)
	}
	if h.val != 1 {
		t.Fatalf("val = %d", h.val)
	}
	h.release()
	if _, err := r.acquire("missing", now); !errors.Is(err, errSessionUnknown) {
		t.Fatalf("missing id: %v", err)
	}
}

// TestRegistryPerSessionLocking proves the tentpole property: holding
// one session's lock must not block requests to other sessions (the
// old server serialized everything behind a single mutex).
func TestRegistryPerSessionLocking(t *testing.T) {
	r := newRegistry[int](0, 0)
	now := time.Now()
	r.put("a", 1, now)
	r.put("b", 2, now)
	ha, err := r.acquire("a", now)
	if err != nil {
		t.Fatal(err)
	}
	defer ha.release()
	done := make(chan struct{})
	go func() {
		hb, err := r.acquire("b", time.Now())
		if err == nil {
			hb.release()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("acquiring session b blocked while session a's lock was held")
	}
}

func TestRegistryTTLReap(t *testing.T) {
	r := newRegistry[int](0, time.Minute)
	base := time.Now()
	r.put("old", 1, base)
	r.put("fresh", 2, base.Add(2*time.Minute))
	ids := r.reap(base.Add(3 * time.Minute))
	if len(ids) != 1 || ids[0] != "old" {
		t.Fatalf("reaped %v, want [old]", ids)
	}
	if _, err := r.acquire("old", base.Add(3*time.Minute)); !errors.Is(err, errSessionGone) {
		t.Fatalf("reaped session: %v, want gone", err)
	}
	h, err := r.acquire("fresh", base.Add(3*time.Minute))
	if err != nil {
		t.Fatalf("fresh session: %v", err)
	}
	h.release()
}

func TestRegistryLRUCap(t *testing.T) {
	r := newRegistry[int](2, 0)
	base := time.Now()
	r.put("s1", 1, base)
	r.put("s2", 2, base.Add(time.Second))
	// Touch s1 so s2 becomes least recently used.
	h, err := r.acquire("s1", base.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	h.release()
	if evicted := r.put("s3", 3, base.Add(3*time.Second)); evicted != "s2" {
		t.Fatalf("evicted %q, want s2", evicted)
	}
	if _, err := r.acquire("s2", base.Add(3*time.Second)); !errors.Is(err, errSessionGone) {
		t.Fatalf("evicted session: %v, want gone", err)
	}
	if r.size() != 2 {
		t.Fatalf("size %d, want 2", r.size())
	}
}

func TestRegistryTombstonesBounded(t *testing.T) {
	r := newRegistry[int](1, 0)
	base := time.Now()
	for i := 0; i < maxTombstones+10; i++ {
		r.put(fmt.Sprintf("s%d", i), i, base.Add(time.Duration(i)))
	}
	r.mu.RLock()
	n := len(r.tombs)
	r.mu.RUnlock()
	if n > maxTombstones {
		t.Fatalf("%d tombstones, cap is %d", n, maxTombstones)
	}
	// The oldest tombstone fell off: that id now reads as unknown.
	if _, err := r.acquire("s0", base); !errors.Is(err, errSessionUnknown) {
		t.Fatalf("expired tombstone: %v, want unknown", err)
	}
}

func TestRegistryConcurrentPutAcquireReap(t *testing.T) {
	r := newRegistry[int](8, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("s%d-%d", g, i)
				r.put(id, i, time.Now())
				if h, err := r.acquire(id, time.Now()); err == nil {
					h.release()
				}
				r.reap(time.Now())
			}
		}(g)
	}
	wg.Wait()
}
