package web

// obs.WriteBundle under concurrent session churn: bundles pulled while
// sessions are being created, stepped, and evicted must stay valid
// tar.gz archives and always carry the accounting and watchdog
// members. Degraded members (<name>.error.txt) are acceptable; a
// corrupt archive is not.

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quantumdd/internal/algorithms"
)

// bundleMemberNames decompresses a bundle and returns its member names,
// failing the test if the archive itself is damaged.
func bundleMemberNames(t *testing.T, blob io.Reader) map[string]bool {
	t.Helper()
	gz, err := gzip.NewReader(blob)
	if err != nil {
		t.Fatalf("bundle is not valid gzip: %v", err)
	}
	defer gz.Close()
	names := make(map[string]bool)
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle tar stream damaged: %v", err)
		}
		if _, err := io.Copy(io.Discard, tr); err != nil {
			t.Fatalf("bundle member %q unreadable: %v", hdr.Name, err)
		}
		names[hdr.Name] = true
	}
	return names
}

// hasMember accepts either the healthy member or its degraded
// <name>.error.txt form — churn may legitimately degrade a member, but
// it must never vanish.
func hasMember(names map[string]bool, want string) bool {
	return names[want] || names[want+".error.txt"]
}

func TestBundleUnderSessionChurn(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)
	qasm := algorithms.GHZ(3).QASM()

	// Raw HTTP for the churn goroutines: the post/get helpers call
	// t.Fatal, which must only run on the test goroutine.
	doPost := func(path string, body interface{}) (string, error) {
		buf, _ := json.Marshal(body)
		resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		var created newResp
		_ = json.NewDecoder(resp.Body).Decode(&created)
		return created.ID, nil
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churners: create, step, and evict sessions as fast as they can
	// while bundles are being written. Evicting nothing is fine here —
	// another goroutine may have reaped first.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := doPost("/api/simulation", newSimRequest{Code: qasm})
				if err != nil {
					return
				}
				_, _ = doPost("/api/simulation/"+id+"/step", stepRequest{Action: "forward"})
				ws.reapIdle(time.Now().Add(ws.cfg.SessionTTL + time.Minute))
			}
		}()
	}

	for i := 0; i < 5; i++ {
		req := httptest.NewRequest("GET", "/debug/bundle?cpu=0", nil)
		rw := httptest.NewRecorder()
		ws.BundleHandler().ServeHTTP(rw, req)
		if rw.Code != 200 {
			t.Fatalf("bundle %d: status %d", i, rw.Code)
		}
		names := bundleMemberNames(t, rw.Body)
		for _, want := range []string{"metrics.prom", "sessions/top.json", "watchdog.jsonl", "buildinfo.txt", "goroutines.txt"} {
			if !hasMember(names, want) {
				t.Fatalf("bundle %d missing member %q; got %v", i, want, keys(names))
			}
		}
	}
	close(stop)
	wg.Wait()
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestBundleSessionsTopIsValidJSON(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, nil)

	req := httptest.NewRequest("GET", "/debug/bundle?cpu=0", nil)
	rw := httptest.NewRecorder()
	ws.BundleHandler().ServeHTTP(rw, req)
	gz, err := gzip.NewReader(rw.Body)
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			t.Fatal("sessions/top.json not found in bundle")
		}
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Name != "sessions/top.json" {
			continue
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), `"ddOps"`) {
			t.Fatalf("sessions/top.json lacks accounting fields: %s", body)
		}
		return
	}
}
