package web

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/vis"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ws := NewServer(1)
	t.Cleanup(ws.Close)
	srv := httptest.NewServer(ws.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func post(t *testing.T, srv *httptest.Server, path string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

func get(t *testing.T, srv *httptest.Server, path string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	return resp
}

func TestIndexAndColorWheel(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, resp.Header.Get("Content-Type")); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "text/html") {
		t.Fatalf("index content type %q", sb.String())
	}
	wheel, err := http.Get(srv.URL + "/colorwheel.svg")
	if err != nil {
		t.Fatal(err)
	}
	defer wheel.Body.Close()
	if ct := wheel.Header.Get("Content-Type"); !strings.Contains(ct, "svg") {
		t.Fatalf("wheel content type %q", ct)
	}
	if missing, err := http.Get(srv.URL + "/nosuchpage"); err != nil {
		t.Fatal(err)
	} else if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d", missing.StatusCode)
	}
}

func TestExamplesEndpoint(t *testing.T) {
	srv := newTestServer(t)
	var examples []Example
	get(t, srv, "/api/examples", &examples)
	if len(examples) < 8 {
		t.Fatalf("only %d examples", len(examples))
	}
	// Each example must be loadable by the tool itself (the algorithm
	// box auto-detects the format).
	for _, ex := range examples {
		if _, err := ParseCircuit(ex.Code, ""); err != nil {
			t.Fatalf("example %q does not parse: %v", ex.Name, err)
		}
	}
}

type newResp struct {
	ID    string `json:"id"`
	Frame Frame  `json:"frame"`
}

func TestSimulationFlowFig8(t *testing.T) {
	srv := newTestServer(t)
	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.BellMeasured().QASM()}, &created)
	if created.ID == "" || !strings.Contains(created.Frame.SVG, "<svg") {
		t.Fatalf("creation failed: %+v", created)
	}
	if created.Frame.Nodes != 2 {
		t.Fatalf("initial |00> has %d nodes, want 2", created.Frame.Nodes)
	}
	step := func(action string) stepResponse {
		var out stepResponse
		post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: action}, &out)
		return out
	}
	// H then CNOT (Fig. 8(a)→(b)).
	r := step("forward")
	if !strings.Contains(r.Event, "applied h") {
		t.Fatalf("first event %q", r.Event)
	}
	r = step("forward")
	if r.Frame.Nodes != 3 {
		t.Fatalf("Bell state frame has %d nodes, want 3", r.Frame.Nodes)
	}
	// Measurement in superposition → pending dialog (Fig. 8(c)).
	r = step("forward")
	if r.Pending == nil || r.Pending.Qubit != 0 {
		t.Fatalf("expected pending measurement, got %+v", r)
	}
	if r.Pending.P0 < 0.49 || r.Pending.P0 > 0.51 {
		t.Fatalf("dialog p0 = %v, want 0.5", r.Pending.P0)
	}
	// Choose |1⟩ (Fig. 8(d)).
	var chosen stepResponse
	post(t, srv, "/api/simulation/"+created.ID+"/choose", chooseRequest{Outcome: 1}, &chosen)
	if !strings.Contains(chosen.Event, "measured q[0] = 1") {
		t.Fatalf("choose event %q", chosen.Event)
	}
	// Second measurement is deterministic: no dialog, straight to end.
	r = step("forward")
	if r.Pending != nil {
		t.Fatalf("deterministic measurement must not open a dialog")
	}
	if !strings.Contains(r.Event, "measured q[1] = 1") {
		t.Fatalf("entangled partner event %q", r.Event)
	}
	if !r.AtEnd {
		t.Fatal("should be at end")
	}
	if got := r.Frame.Classical; got[0] != 1 || got[1] != 1 {
		t.Fatalf("classical register %v", got)
	}
	// Backward and rewind.
	r = step("backward")
	if r.AtEnd {
		t.Fatal("backward did not move")
	}
	r = step("start")
	if !r.AtStart {
		t.Fatal("start did not rewind")
	}
}

func TestSimulationBreakAction(t *testing.T) {
	srv := newTestServer(t)
	code := `
qreg q[2];
h q[0];
barrier q;
x q[1];
`
	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: code}, &created)
	var r stepResponse
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "break"}, &r)
	if !strings.Contains(r.Event, "barrier") {
		t.Fatalf("break did not stop at barrier: %q", r.Event)
	}
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "end"}, &r)
	if !r.AtEnd {
		t.Fatal("end action did not finish")
	}
}

func TestChooseWithoutPendingRejected(t *testing.T) {
	srv := newTestServer(t)
	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: "qreg q[1];\nh q[0];\n"}, &created)
	resp := post(t, srv, "/api/simulation/"+created.ID+"/choose", chooseRequest{Outcome: 0}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestSimulationParseErrors(t *testing.T) {
	srv := newTestServer(t)
	resp := post(t, srv, "/api/simulation", newSimRequest{Code: "not qasm at all"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	resp = post(t, srv, "/api/simulation/sim-999/step", stepRequest{Action: "forward"}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestVerificationFlowEx12(t *testing.T) {
	srv := newTestServer(t)
	var created newResp
	post(t, srv, "/api/verification", newVerifyRequest{
		Left:  algorithms.QFT(3).QASM(),
		Right: algorithms.QFTCompiled(3).QASM(),
	}, &created)
	if created.Frame.Nodes != 3 {
		t.Fatalf("initial identity has %d nodes, want 3", created.Frame.Nodes)
	}
	step := func(side, action string) verifyStepResponse {
		var out verifyStepResponse
		post(t, srv, "/api/verification/"+created.ID+"/step", verifyStepRequest{Side: side, Action: action}, &out)
		return out
	}
	peak := 3
	// The Ex. 12 walk: one gate from G, then all gates of G' up to the
	// next barrier, repeated until both are consumed.
	for i := 0; i < 7; i++ {
		r := step("left", "forward")
		if r.Frame.Nodes > peak {
			peak = r.Frame.Nodes
		}
		r = step("right", "barrier")
		if r.Frame.Nodes > peak {
			peak = r.Frame.Nodes
		}
	}
	final := step("right", "barrier") // drain any leftovers
	if final.Identity != "identity" && final.Identity != "identity-up-to-phase" {
		t.Fatalf("final diagram is %q, want identity", final.Identity)
	}
	if peak > 9 {
		t.Fatalf("Ex. 12 walk peaked at %d nodes, want <= 9", peak)
	}
	// Undo restores positions.
	before := final.LeftPos + final.RightPos
	r := step("left", "backward")
	if r.LeftPos+r.RightPos >= before {
		t.Fatalf("undo did not rewind: %d -> %d", before, r.LeftPos+r.RightPos)
	}
}

func TestVerificationRejectsNonUnitaryAndMismatch(t *testing.T) {
	srv := newTestServer(t)
	resp := post(t, srv, "/api/verification", newVerifyRequest{
		Left:  "qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\n",
		Right: "qreg q[1];\n",
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	resp = post(t, srv, "/api/verification", newVerifyRequest{
		Left:  "qreg q[1];\nh q[0];\n",
		Right: "qreg q[2];\nh q[0];\n",
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (width mismatch)", resp.StatusCode)
	}
}

func TestParseCircuitFormats(t *testing.T) {
	realSrc := ".numvars 2\n.variables a b\n.begin\nt2 a b\n.end\n"
	if _, err := ParseCircuit(realSrc, "real"); err != nil {
		t.Fatal(err)
	}
	// Auto-detection.
	if _, err := ParseCircuit(realSrc, ""); err != nil {
		t.Fatalf("auto-detect real failed: %v", err)
	}
	if _, err := ParseCircuit("qreg q[1];\nh q[0];\n", ""); err != nil {
		t.Fatalf("auto-detect qasm failed: %v", err)
	}
	if _, err := ParseCircuit("x", "nope"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestStyleQueryChangesRendering(t *testing.T) {
	srv := newTestServer(t)
	var created newResp
	post(t, srv, "/api/simulation?style=colored&labels=0", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	var r stepResponse
	post(t, srv, "/api/simulation/"+created.ID+"/step?style=colored&labels=0", stepRequest{Action: "end"}, &r)
	if !strings.Contains(r.Frame.SVG, vis.PhaseColor(1)) {
		t.Fatal("colored style not applied")
	}
	if strings.Contains(r.Frame.SVG, "stroke-dasharray") {
		t.Fatal("colored style should not dash")
	}
}

func TestBuildFunctionalityFrame(t *testing.T) {
	frame, err := BuildFunctionalityFrame(algorithms.QFT(3), false, vis.Style{})
	if err != nil {
		t.Fatal(err)
	}
	if frame.Nodes != 21 {
		t.Fatalf("QFT3 functionality frame has %d nodes, want 21 (Fig. 6)", frame.Nodes)
	}
	inv, err := BuildFunctionalityFrame(algorithms.QFT(3), true, vis.Style{})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Nodes != 21 {
		t.Fatalf("inverse functionality frame has %d nodes, want 21", inv.Nodes)
	}
	if !strings.Contains(inv.Caption, "inverse") {
		t.Fatalf("caption %q", inv.Caption)
	}
}

func TestExportEndpoints(t *testing.T) {
	srv := newTestServer(t)
	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	var r stepResponse
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "end"}, &r)

	resp, err := http.Get(srv.URL + "/api/simulation/" + created.ID + "/export?format=svg")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if !strings.Contains(resp.Header.Get("Content-Type"), "svg") || !strings.Contains(body, "<svg") {
		t.Fatalf("svg export wrong: %s / %q", resp.Header.Get("Content-Type"), body[:40])
	}
	resp, err = http.Get(srv.URL + "/api/simulation/" + created.ID + "/export?format=dot")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	if !strings.Contains(body, "digraph dd") {
		t.Fatal("dot export wrong")
	}
	resp, err = http.Get(srv.URL + "/api/simulation/" + created.ID + "/export?format=png")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Verification export.
	var vcreated newResp
	post(t, srv, "/api/verification", newVerifyRequest{
		Left:  algorithms.QFT(3).QASM(),
		Right: algorithms.QFTCompiled(3).QASM(),
	}, &vcreated)
	resp, err = http.Get(srv.URL + "/api/verification/" + vcreated.ID + "/export")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); !strings.Contains(body, "<svg") {
		t.Fatal("verification export wrong")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestNoisyEndpoint(t *testing.T) {
	srv := newTestServer(t)
	var resp noisyResponse
	post(t, srv, "/api/noisy", noisyRequest{
		Code:         algorithms.GHZ(3).QASM(),
		Depolarizing: 0.05,
		Trajectories: 300,
	}, &resp)
	if resp.Trajectories != 300 || resp.ErrorEvents == 0 {
		t.Fatalf("noisy result malformed: %+v", resp)
	}
	total := 0
	for _, n := range resp.Counts {
		total += n
	}
	if total != 300 {
		t.Fatalf("counts sum %d, want 300", total)
	}
	if resp.Counts["000"]+resp.Counts["111"] == 0 {
		t.Fatalf("legal outcomes absent: %v", resp.Counts)
	}
	// Validation paths.
	if r := post(t, srv, "/api/noisy", noisyRequest{Code: "bad"}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad code accepted: %d", r.StatusCode)
	}
	if r := post(t, srv, "/api/noisy", noisyRequest{Code: algorithms.Bell().QASM(), BitFlip: 7}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad probability accepted: %d", r.StatusCode)
	}
	if r := post(t, srv, "/api/noisy", noisyRequest{Code: algorithms.Bell().QASM(), Trajectories: 1 << 30}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge trajectory count accepted: %d", r.StatusCode)
	}
}

func TestRefreshEndpoints(t *testing.T) {
	srv := newTestServer(t)
	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.BellMeasured().QASM()}, &created)
	// GET refresh re-renders the current frame without stepping.
	var r stepResponse
	get(t, srv, "/api/simulation/"+created.ID+"?style=modern", &r)
	if !r.AtStart || !strings.Contains(r.Frame.SVG, "<svg") {
		t.Fatalf("sim refresh wrong: %+v", r.AtStart)
	}
	// Step to the pending measurement; refresh must report it too.
	for i := 0; i < 3; i++ {
		post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "forward"}, &r)
	}
	get(t, srv, "/api/simulation/"+created.ID, &r)
	if r.Pending == nil {
		t.Fatal("refresh lost the pending dialog")
	}
	// Verification refresh.
	var vcreated newResp
	post(t, srv, "/api/verification", newVerifyRequest{
		Left:  algorithms.Bell().QASM(),
		Right: algorithms.Bell().QASM(),
	}, &vcreated)
	var vr verifyStepResponse
	get(t, srv, "/api/verification/"+vcreated.ID, &vr)
	if vr.Identity != "identity" {
		t.Fatalf("fresh verification identity = %q", vr.Identity)
	}
	// Unknown sessions 404 on refresh.
	if resp := get(t, srv, "/api/simulation/sim-404", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp := get(t, srv, "/api/verification/verify-404", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDescribeEventVariants(t *testing.T) {
	srv := newTestServer(t)
	code := `
qreg q[2];
creg c[2];
x q[0];
measure q[0] -> c[0];
if (c==1) z q[1];
if (c==0) x q[1];
reset q[0];
barrier q;
`
	var created newResp
	post(t, srv, "/api/simulation", newSimRequest{Code: code}, &created)
	var events []string
	for {
		var r stepResponse
		post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "forward"}, &r)
		if r.AtEnd || r.Event == "" {
			events = append(events, r.Event)
			break
		}
		events = append(events, r.Event)
	}
	joined := strings.Join(events, "\n")
	for _, want := range []string{"applied x", "measured q[0] = 1", "applied conditional", "skipped", "reset q[0]", "barrier (breakpoint)"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing event %q in:\n%s", want, joined)
		}
	}
}

func TestFunctionalityEndpointEx14(t *testing.T) {
	srv := newTestServer(t)
	body := functionalityRequest{Code: algorithms.QFT(3).QASM()}
	var resp struct {
		Frame Frame `json:"frame"`
	}
	post(t, srv, "/api/functionality", body, &resp)
	if resp.Frame.Nodes != 21 {
		t.Fatalf("QFT3 functionality frame has %d nodes, want 21 (Ex. 14/Fig. 6)", resp.Frame.Nodes)
	}
	body.Inverse = true
	post(t, srv, "/api/functionality", body, &resp)
	if !strings.Contains(resp.Frame.Caption, "inverse") {
		t.Fatalf("inverse caption missing: %q", resp.Frame.Caption)
	}
	// Non-unitary circuits are rejected.
	r := post(t, srv, "/api/functionality", functionalityRequest{
		Code: "qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\n",
	}, nil)
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-unitary accepted: %d", r.StatusCode)
	}
}
