package web

// Request admission and resource limits.
//
// The tool is installation-free: anyone can point a browser (or curl)
// at it, so every input is untrusted. Limits are enforced in layers:
// the body size cap rejects oversized payloads before parsing (413),
// the admission limits reject circuits that are too wide or too long
// before any diagram is built (422), and the dd node budget bounds
// diagram growth during stepping (reported as a frame caption, see
// server.go). All error responses share one JSON envelope.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"quantumdd/internal/obs"
	"quantumdd/internal/qc"
)

// Config bounds the server's resource usage. Zero values disable the
// corresponding limit; DefaultConfig returns production defaults.
type Config struct {
	// Seed makes sampled measurement outcomes reproducible.
	Seed int64
	// MaxQubits rejects parsed circuits wider than this (422).
	MaxQubits int
	// MaxOps rejects parsed circuits with more operations than this (422).
	MaxOps int
	// MaxNodes caps each session's decision-diagram unique tables
	// (dd.Pkg.SetMaxNodes); exceeding it surfaces as a "diagram too
	// large" frame caption instead of unbounded memory growth.
	MaxNodes int
	// MaxBodyBytes caps request bodies via http.MaxBytesReader (413).
	MaxBodyBytes int64
	// SessionTTL evicts sessions idle longer than this; subsequent
	// requests to them answer 410 Gone.
	SessionTTL time.Duration
	// MaxSessions is an LRU cap on live sessions per kind (simulation
	// and verification each); the least recently used session is
	// evicted when a new one would exceed it.
	MaxSessions int
	// RequestTimeout bounds each request, including break/end
	// fast-forward loops, via a context deadline.
	RequestTimeout time.Duration
	// NoisyWorkers is the trajectory pool width for POST /api/noisy:
	// Monte-Carlo ensembles fan out over this many independent DD
	// engine replicas. 0 uses runtime.GOMAXPROCS; 1 runs
	// sequentially. Results are bit-identical for every setting.
	NoisyWorkers int
	// SpillDir, when non-empty, enables durable sessions: TTL/LRU
	// eviction spills the session as a checksummed snapshot into this
	// directory, and the next request for the id transparently
	// restores it (see internal/snapshot). Empty disables spilling —
	// eviction destroys the session as before.
	SpillDir string
	// SpillMaxBytes caps the total size of the spill directory; the
	// oldest snapshots are deleted first when the cap is exceeded.
	// 0 means unbounded.
	SpillMaxBytes int64
	// ShapeInterval is the structural profiling stride: every N
	// executed session steps the DD engine publishes a shape profile
	// (per-level occupancy, sharing factor, identity-padding fraction)
	// feeding the dd_shape_* metric families, the per-session
	// structural timelines, GET /debug/sessions/{id}/shape, and the
	// node-blowup watchdog rule. 0 uses defaultShapeInterval (32, cost
	// amortized well below 1% — see BENCH_pr10.json); negative
	// disables profiling entirely (the per-step check is then a single
	// branch, allocation-free).
	ShapeInterval int
	// TraceSpans sets each session's flight-recorder capacity (the
	// number of completed spans retained for /debug/sessions/{id}/trace
	// and debug bundles). 0 uses trace.DefaultCapacity; negative
	// disables per-session tracing entirely.
	TraceSpans int
	// SampleInterval is the live telemetry tick: every interval the
	// in-process time-series store sweeps all metric families, the
	// watchdog evaluates its rules, and /debug/live broadcasts a frame.
	// 0 disables the whole pipeline (tsdb, watchdog, live stream, and
	// the SLO burn-rate gate of /readyz).
	SampleInterval time.Duration
	// SampleRetention is the per-series ring capacity of the telemetry
	// store (0 = tsdb.DefaultCapacity, 360 samples — 30 minutes at the
	// default interval). Memory is strictly bounded: see the retention
	// math in internal/obs/tsdb.
	SampleRetention int
	// LiveStream serves GET /debug/live (SSE) on the public mux when
	// telemetry is enabled. Disable to keep the stream off a public
	// deployment while retaining the tsdb and health endpoints.
	LiveStream bool
	// SLOWindow is the burn-rate evaluation window of /readyz and the
	// watchdog rules (0 = 5 minutes).
	SLOWindow time.Duration
	// SLOLatencyP99 marks the replica not-ready while the windowed p99
	// request latency exceeds it (0 = 5 seconds).
	SLOLatencyP99 time.Duration
	// SLOErrorRatio marks the replica not-ready while the windowed 5xx
	// ratio exceeds it (0 = 0.5).
	SLOErrorRatio float64
	// Logger receives request, panic, and eviction logs. Nil discards.
	// Every component (middleware, handlers, session reaper) logs
	// through this one injected logger, decorated with request-ID and
	// session-ID attributes, so one trace ID threads a request's whole
	// story together.
	Logger *slog.Logger
	// Metrics receives the server's metric series (HTTP traffic,
	// sessions, DD engine). Nil uses obs.Default, which is what
	// production wants: one registry per process, scraped once.
	Metrics *obs.Registry
}

// logger resolves the injected logger, discarding when none is set,
// so every component shares exactly one logging pipeline.
func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// registry resolves the metrics registry analogously.
func (c Config) registry() *obs.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return obs.Default
}

// DefaultConfig returns the limits ddvis ships with.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		MaxQubits:      24,
		MaxOps:         4096,
		MaxNodes:       250000,
		MaxBodyBytes:   1 << 20,
		SessionTTL:     30 * time.Minute,
		MaxSessions:    256,
		RequestTimeout: 15 * time.Second,
		TraceSpans:     1024,
		SampleInterval: 5 * time.Second,
		LiveStream:     true,
	}
}

// apiError is the JSON error envelope of every non-2xx API response.
type apiError struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	RequestID string `json:"requestId,omitempty"`
}

// Error codes of the envelope.
const (
	codeBadRequest        = "bad_request"
	codeBodyTooLarge      = "body_too_large"
	codeCircuitTooLarge   = "circuit_too_large"
	codeResourceExhausted = "resource_exhausted"
	codeSessionUnknown    = "session_unknown"
	codeSessionGone       = "session_gone"
	codeInternal          = "internal"
)

// admit rejects circuits exceeding the configured admission limits.
func (s *Server) admit(c *qc.Circuit) error {
	if s.cfg.MaxQubits > 0 && c.NQubits > s.cfg.MaxQubits {
		return fmt.Errorf("web: circuit has %d qubits, the server accepts at most %d", c.NQubits, s.cfg.MaxQubits)
	}
	if s.cfg.MaxOps > 0 && len(c.Ops) > s.cfg.MaxOps {
		return fmt.Errorf("web: circuit has %d operations, the server accepts at most %d", len(c.Ops), s.cfg.MaxOps)
	}
	return nil
}

// decodeJSON decodes the request body into v and writes the error
// response itself on failure (413 for oversized bodies, 400
// otherwise). Callers stop handling when it returns an error.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) error {
	err := json.NewDecoder(r.Body).Decode(v)
	if err == nil {
		return nil
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		s.writeErr(w, r, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
			fmt.Errorf("web: request body exceeds the %d-byte limit", mbe.Limit))
		return err
	}
	s.writeErr(w, r, http.StatusBadRequest, codeBadRequest, err)
	return err
}

// sessionErr maps registry lookup failures onto 404/410 responses.
func (s *Server) sessionErr(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, errSessionGone) {
		s.writeErr(w, r, http.StatusGone, codeSessionGone,
			fmt.Errorf("web: session %q expired or was evicted; create a new one", r.PathValue("id")))
		return
	}
	s.writeErr(w, r, http.StatusNotFound, codeSessionUnknown,
		fmt.Errorf("web: unknown session %q", r.PathValue("id")))
}
