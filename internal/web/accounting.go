package web

// Per-session resource accounting.
//
// Every session carries a sessionAccount: cheap atomic meters fed by
// the same tracer tee that drives the shared latency histograms, plus
// a request counter bumped at the acquire choke point. The account
// answers "which session is eating the box" — GET /debug/sessions/top
// ranks live sessions by cumulative DD work, the same ranking rides in
// debug bundles (sessions/top.json) and the live telemetry frames.
//
// Node and table counters are NOT duplicated here: they come from the
// engine's atomically published Stats snapshot (dd.Pkg.LastStats), so
// the accounting reads are race-clean against a session mid-step.

import (
	"errors"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"quantumdd/internal/dd"
)

var errBadTopN = errors.New("web: n must be a positive integer")

// sessionAccount meters one session's cumulative resource usage. All
// fields are atomics; the tracer side runs on the session goroutine,
// the read side (top endpoint, telemetry tick) on any other.
type sessionAccount struct {
	created  time.Time
	requests atomic.Uint64
	ddOps    atomic.Uint64
	ddNanos  atomic.Int64
}

func newSessionAccount() *sessionAccount {
	return &sessionAccount{created: time.Now()}
}

// touch counts one request served by the session. Nil-safe so
// hand-constructed test sessions without an account never panic.
func (a *sessionAccount) touch() {
	if a != nil {
		a.requests.Add(1)
	}
}

// ddTracer returns the accounting leg of the tracer tee: every
// top-level DD operation adds to the op and wall-time meters.
func (a *sessionAccount) ddTracer() dd.TraceFunc {
	return func(op dd.Op, d time.Duration) {
		a.ddOps.Add(1)
		a.ddNanos.Add(int64(d))
	}
}

// sessionUsage is one session's accounting snapshot — the top-endpoint
// row, the bundle member entry, and the live-frame "top" element.
type sessionUsage struct {
	ID         string  `json:"id"`
	Kind       string  `json:"kind"` // "sim" or "verify"
	Requests   uint64  `json:"requests"`
	DDOps      uint64  `json:"ddOps"`
	DDSeconds  float64 `json:"ddSeconds"`
	AgeSeconds float64 `json:"ageSeconds"`
	// Engine-side meters from the last published stats snapshot.
	LiveNodes      int    `json:"liveNodes"`
	NodesCreated   uint64 `json:"nodesCreated"`
	ApplyCTLookups uint64 `json:"applyCtLookups"`
	ApplyCTHits    uint64 `json:"applyCtHits"`
	GCRuns         uint64 `json:"gcRuns"`
	// Matrix-apply kernel split (verify sessions): how much of the
	// session's gate work the identity-skipping kernel absorbed versus
	// the generic MultMM fallback.
	ApplyMCTHits uint64 `json:"applyMCtHits"`
	KernelOps    uint64 `json:"kernelOps"`
	GenericOps   uint64 `json:"genericOps"`
	// Structural meters from the last published shape profile (PR 10);
	// all zero while the session has not crossed the sampling stride.
	ShapeSeq              uint64  `json:"shapeSeq,omitempty"`
	ShapeNodes            int     `json:"shapeNodes,omitempty"`
	ShapeMaxLevelNodes    int     `json:"shapeMaxLevelNodes,omitempty"`
	ShapeSharing          float64 `json:"shapeSharing,omitempty"`
	ShapeIdentityFraction float64 `json:"shapeIdentityFraction,omitempty"`
}

func usageFrom(id, kind string, acct *sessionAccount, st dd.Stats, shape *dd.ShapeProfile, now time.Time) sessionUsage {
	u := sessionUsage{
		ID:             id,
		Kind:           kind,
		LiveNodes:      st.LiveNodes,
		NodesCreated:   st.NodesCreatedV + st.NodesCreatedM,
		ApplyCTLookups: st.ApplyCTLookups,
		ApplyCTHits:    st.ApplyCTHits,
		GCRuns:         st.GCRuns,
		ApplyMCTHits:   st.ApplyMCTHits,
		KernelOps:      st.ApplyMOps,
		GenericOps:     st.MultMMOps,
	}
	if acct != nil {
		u.Requests = acct.requests.Load()
		u.DDOps = acct.ddOps.Load()
		u.DDSeconds = float64(acct.ddNanos.Load()) / 1e9
		u.AgeSeconds = now.Sub(acct.created).Seconds()
	}
	if shape != nil {
		u.ShapeSeq = shape.Seq
		u.ShapeNodes = shape.Nodes
		u.ShapeMaxLevelNodes = shape.MaxLevelNodes
		u.ShapeSharing = shape.SharingFactor
		u.ShapeIdentityFraction = shape.IdentityFraction
	}
	return u
}

// sessionUsageSnapshot collects every live session's accounting row,
// heaviest DD consumers first. Idle sessions are visited fresh (forced
// stats publish); busy ones fall back to the race-clean LastStats read
// — the scrape never waits on a fast-forward.
func (s *Server) sessionUsageSnapshot() []sessionUsage {
	now := time.Now()
	var out []sessionUsage
	s.sims.forEach(func(id string, sess *simSession, fresh bool) {
		p := sess.sim.Pkg()
		if fresh {
			p.PublishStats()
		}
		st, _ := p.LastStats()
		out = append(out, usageFrom(id, "sim", sess.acct, st, p.LastShape(), now))
	})
	s.verifies.forEach(func(id string, sess *verifySession, fresh bool) {
		if fresh {
			sess.pkg.PublishStats()
		}
		st, _ := sess.pkg.LastStats()
		out = append(out, usageFrom(id, "verify", sess.acct, st, sess.pkg.LastShape(), now))
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].DDOps != out[j].DDOps {
			return out[i].DDOps > out[j].DDOps
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// topResponse is the GET /debug/sessions/top payload.
type topResponse struct {
	Sessions []sessionUsage `json:"sessions"`
	Total    int            `json:"total"` // live sessions before truncation
}

const (
	defaultTopN = 10
	maxTopN     = 100
)

// handleSessionsTop serves the per-session resource ranking. ?n=
// bounds the list (default 10, max 100).
func (s *Server) handleSessionsTop(w http.ResponseWriter, r *http.Request) {
	n := defaultTopN
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			s.writeErr(w, r, http.StatusBadRequest, codeBadRequest,
				errBadTopN)
			return
		}
		n = parsed
		if n > maxTopN {
			n = maxTopN
		}
	}
	usage := s.sessionUsageSnapshot()
	resp := topResponse{Sessions: usage, Total: len(usage)}
	if len(resp.Sessions) > n {
		resp.Sessions = resp.Sessions[:n]
	}
	if resp.Sessions == nil {
		resp.Sessions = []sessionUsage{}
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}
