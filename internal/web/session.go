// Package web implements the installation-free visualization tool of
// Sec. IV as an HTTP server: a single embedded page backed by a JSON
// API. The simulation tab steps a circuit forward/backward with
// breakpoints and measurement/reset dialogs; the verification tab
// steps two circuits against each other starting from the identity
// diagram (Fig. 9).
package web

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quantumdd/internal/dd"
	"quantumdd/internal/obs/trace"
	"quantumdd/internal/qasm"
	"quantumdd/internal/qc"
	"quantumdd/internal/realfmt"
	"quantumdd/internal/sim"
	"quantumdd/internal/snapshot"
	"quantumdd/internal/verify"
	"quantumdd/internal/vis"
)

// ParseCircuit loads source code in the given format ("qasm" or
// "real"; empty guesses from the content) — the drag-and-drop entry
// point of the algorithm box.
func ParseCircuit(code, format string) (*qc.Circuit, error) {
	switch format {
	case "", "auto":
		if strings.Contains(code, ".begin") {
			return realfmt.ParseString(code)
		}
		return qasm.Parse(code)
	case "qasm":
		return qasm.Parse(code)
	case "real":
		return realfmt.ParseString(code)
	default:
		return nil, fmt.Errorf("web: unknown format %q (want qasm or real)", format)
	}
}

// PendingChoice describes a measurement/reset waiting for the user's
// dialog decision.
type PendingChoice struct {
	OpIndex int     `json:"opIndex"`
	Kind    string  `json:"kind"` // "measure" or "reset"
	Qubit   int     `json:"qubit"`
	P0      float64 `json:"p0"`
	P1      float64 `json:"p1"`
}

// simSession wraps a simulator with the dialog protocol: when the next
// operation measures a qubit in superposition, stepping reports a
// PendingChoice instead of advancing; the client resolves it with an
// explicit outcome.
type simSession struct {
	sim    *sim.Simulator
	forced *int // outcome for the next dialog-requiring op
	// src and format retain the session's original circuit input
	// verbatim. Spill snapshots persist the source text rather than a
	// re-rendering of the parsed circuit, because rendering is lossy
	// (negative controls are conjugated with X pairs, unsupported ops
	// become comments); restore re-parses the exact bytes the user
	// submitted.
	src    string
	format string
	seed   int64
	// rec is the session's flight recorder (nil when tracing is
	// disabled). Assigned once before the session is published to the
	// registry; its Snapshot side is safe from any goroutine.
	rec *trace.Recorder
	// acct meters the session's cumulative resource usage (requests,
	// DD ops, DD wall time). Assigned at construction; all-atomic, so
	// the top endpoint and telemetry tick read it from any goroutine.
	acct *sessionAccount
}

const superpositionEps = 1e-12

// chooser returns the dialog-protocol outcome chooser bound to this
// session; shared by the fresh and restored constructors.
func (s *simSession) chooser() sim.OutcomeChooser {
	return func(op *qc.Op, q int, p0, p1 float64) int {
		// The server only steps after a choice is registered, so a
		// missing choice is a protocol violation handled in pending().
		if s.forced == nil {
			return 0
		}
		out := *s.forced
		s.forced = nil
		return out
	}
}

func newSimSession(circ *qc.Circuit, src, format string, seed int64, maxNodes int) *simSession {
	s := &simSession{src: src, format: format, seed: seed, acct: newSessionAccount()}
	s.sim = sim.New(circ, sim.WithSeed(seed), sim.WithMaxNodes(maxNodes), sim.WithChooser(s.chooser()))
	return s
}

// snapshot serializes the session for spill-to-disk. Called with the
// per-session lock held (exclusive access), so the reads are
// consistent. The step history is not persisted; a restored session
// cannot step backward past the restore point.
func (s *simSession) snapshot() []byte {
	return snapshot.EncodeSim(&snapshot.Sim{
		Source:    s.src,
		Format:    s.format,
		Seed:      s.seed,
		Pos:       s.sim.Pos(),
		Classical: s.sim.Classical(),
		PeakNodes: s.sim.PeakNodes(),
		State:     s.sim.Pkg().AppendVectorBinary(nil, s.sim.State()),
	})
}

// resumeSimSession rebuilds a session from its durable form: re-parse
// the original source, decode the DD state bit-exactly under the node
// budget, and resume the simulator at the stored position.
func resumeSimSession(snap *snapshot.Sim, maxNodes int) (*simSession, error) {
	circ, err := ParseCircuit(snap.Source, snap.Format)
	if err != nil {
		return nil, fmt.Errorf("web: restore: circuit no longer parses: %w", err)
	}
	s := &simSession{src: snap.Source, format: snap.Format, seed: snap.Seed, acct: newSessionAccount()}
	s.sim, err = sim.Resume(circ, snap.Pos, snap.Classical, snap.PeakNodes,
		func(p *dd.Pkg) (dd.VEdge, error) { return p.DecodeVectorBinary(snap.State) },
		sim.WithSeed(snap.Seed), sim.WithMaxNodes(maxNodes), sim.WithChooser(s.chooser()))
	if err != nil {
		return nil, err
	}
	return s, nil
}

// pending reports whether the next op needs a dialog choice.
func (s *simSession) pending() *PendingChoice {
	if s.forced != nil || s.sim.AtEnd() {
		return nil
	}
	circ := s.sim.Circuit()
	op := &circ.Ops[s.sim.Pos()]
	if op.Kind != qc.KindMeasure && op.Kind != qc.KindReset {
		return nil
	}
	q := op.Targets[0]
	p1 := s.sim.ProbOne(q)
	if p1 <= superpositionEps || 1-p1 <= superpositionEps {
		return nil // deterministic, no dialog
	}
	kind := "measure"
	if op.Kind == qc.KindReset {
		kind = "reset"
	}
	return &PendingChoice{OpIndex: s.sim.Pos(), Kind: kind, Qubit: q, P0: 1 - p1, P1: p1}
}

func (s *simSession) choose(outcome int) error {
	if outcome != 0 && outcome != 1 {
		return fmt.Errorf("web: outcome must be 0 or 1, got %d", outcome)
	}
	if s.pending() == nil {
		return errors.New("web: no measurement or reset is awaiting a choice")
	}
	s.forced = &outcome
	return nil
}

// verifySession drives the alternating equivalence-checking view: two
// gate lists (G applied from the left, G′ inverted and applied from
// the right) over an identity-initialized diagram, with per-side
// stepping, barrier-aware "fast-forward" and unlimited undo.
type verifySession struct {
	pkg   *dd.Pkg
	left  *qc.Circuit
	right *qc.Circuit
	x     dd.MEdge
	// Original source inputs, retained verbatim for spill snapshots
	// (same lossy-rendering rationale as simSession).
	leftSrc, rightSrc string
	format            string
	// positions index into the circuits' op lists (barriers are
	// skipped transparently but delimit RunToBarrier).
	li, ri  int
	peak    int // largest node count the product diagram has reached
	history []verifySnapshot
	rec     *trace.Recorder // flight recorder; nil when tracing is disabled
	acct    *sessionAccount // resource meters; see accounting.go
}

type verifySnapshot struct {
	x      dd.MEdge
	li, ri int
}

func newVerifySession(left, right *qc.Circuit, leftSrc, rightSrc, format string, maxNodes int) (*verifySession, error) {
	if left.NQubits != right.NQubits {
		return nil, fmt.Errorf("web: circuits must have the same number of qubits (%d vs %d)", left.NQubits, right.NQubits)
	}
	if left.HasNonUnitary() || right.HasNonUnitary() {
		return nil, errors.New("web: measurement, reset and classically-controlled operations are not supported in verification")
	}
	p := dd.New(left.NQubits)
	p.SetMaxNodes(maxNodes)
	v := &verifySession{
		pkg: p, left: left, right: right,
		leftSrc: leftSrc, rightSrc: rightSrc, format: format,
		x:    p.Ident(),
		acct: newSessionAccount(),
	}
	v.pkg.IncRefM(v.x)
	v.peak = dd.SizeM(v.x)
	return v, nil
}

// snapshot serializes the session for spill-to-disk; called with the
// per-session lock held. The undo history is not persisted.
func (v *verifySession) snapshot() []byte {
	return snapshot.EncodeVerify(&snapshot.Verify{
		LeftSource:  v.leftSrc,
		LeftFormat:  v.format,
		RightSource: v.rightSrc,
		RightFormat: v.format,
		LI:          v.li,
		RI:          v.ri,
		X:           v.pkg.AppendMatrixBinary(nil, v.x),
	})
}

// resumeVerifySession rebuilds a verification session from its durable
// form, validating the stored positions against the re-parsed circuits
// and decoding the matrix diagram bit-exactly under the node budget.
func resumeVerifySession(snap *snapshot.Verify, maxNodes int) (*verifySession, error) {
	left, err := ParseCircuit(snap.LeftSource, snap.LeftFormat)
	if err != nil {
		return nil, fmt.Errorf("web: restore: left circuit no longer parses: %w", err)
	}
	right, err := ParseCircuit(snap.RightSource, snap.RightFormat)
	if err != nil {
		return nil, fmt.Errorf("web: restore: right circuit no longer parses: %w", err)
	}
	v, err := newVerifySession(left, right, snap.LeftSource, snap.RightSource, snap.LeftFormat, maxNodes)
	if err != nil {
		return nil, err
	}
	if snap.LI < 0 || snap.LI > len(left.Ops) || snap.RI < 0 || snap.RI > len(right.Ops) {
		return nil, fmt.Errorf("web: restore: positions %d/%d out of range", snap.LI, snap.RI)
	}
	x, err := v.pkg.DecodeMatrixBinary(snap.X)
	if err != nil {
		return nil, err
	}
	if x.IsZero() {
		return nil, errors.New("web: restore: zero verification diagram")
	}
	v.pkg.IncRefM(x)
	v.pkg.DecRefM(v.x)
	v.x = x
	v.li, v.ri = snap.LI, snap.RI
	v.peak = dd.SizeM(v.x)
	return v, nil
}

func (v *verifySession) gateDD(op *qc.Op, invert bool) dd.MEdge {
	g, params := op.Gate, op.Params
	if invert {
		g, params = qc.InverseGate(op.Gate, op.Params)
	}
	ctl := make([]dd.Control, len(op.Controls))
	for i, c := range op.Controls {
		ctl[i] = dd.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	if g == qc.Swap {
		return v.pkg.MakeSwapDD(op.Targets[0], op.Targets[1], ctl...)
	}
	return v.pkg.MakeGateDD(dd.GateMatrix(qc.Matrix2(g, params)), op.Targets[0], ctl...)
}

// applyOp multiplies one gate into the product diagram: G ops from the
// left (U·x), G′ ops inverted from the right (x·U⁻¹). Plain gates go
// through the matrix-apply kernel (the identity-skipping descent of
// ApplyGateML/MR); SWAP — a two-target permutation the 2×2 kernel
// cannot express in one call — stays on the materialized gate DD and
// the generic checked multiply.
func (v *verifySession) applyOp(op *qc.Op, side string) (dd.MEdge, error) {
	if op.Gate == qc.Swap {
		if side == "left" {
			return v.pkg.MultMMChecked(v.gateDD(op, false), v.x)
		}
		return v.pkg.MultMMChecked(v.x, v.gateDD(op, true))
	}
	ctl := make([]dd.Control, len(op.Controls))
	for i, c := range op.Controls {
		ctl[i] = dd.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	if side == "left" {
		u := dd.GateMatrix(qc.Matrix2(op.Gate, op.Params))
		return v.pkg.ApplyGateMLChecked(v.x, u, op.Targets[0], ctl...)
	}
	g, params := qc.InverseGate(op.Gate, op.Params)
	u := dd.GateMatrix(qc.Matrix2(g, params))
	return v.pkg.ApplyGateMRChecked(v.x, u, op.Targets[0], ctl...)
}

// stepSide applies the next gate of the chosen side ("left" = G,
// "right" = G′). It returns the description of the applied gate, or
// "" when that side is exhausted.
func (v *verifySession) stepSide(ctx context.Context, side string) (string, error) {
	var circ *qc.Circuit
	var pos *int
	switch side {
	case "left":
		circ, pos = v.left, &v.li
	case "right":
		circ, pos = v.right, &v.ri
	default:
		return "", fmt.Errorf("web: unknown side %q", side)
	}
	// Skip barriers.
	for *pos < len(circ.Ops) && circ.Ops[*pos].Kind == qc.KindBarrier {
		*pos++
	}
	if *pos >= len(circ.Ops) {
		return "", nil
	}
	op := &circ.Ops[*pos]
	var sp *trace.Span
	if trace.Enabled(ctx) {
		_, sp = trace.StartSpan(ctx, "verify:"+side+" "+op.String())
		sp.SetAttr("nodes_before", int64(dd.SizeM(v.x)))
	}
	next, err := v.applyOp(op, side)
	if err != nil {
		if errors.Is(err, dd.ErrResourceExhausted) {
			sp.SetAttr("budget_exhausted", 1)
		}
		sp.End()
		// The diagram is unchanged; the session keeps its position so
		// the user can undo their way back below the budget.
		return "", err
	}
	n := dd.SizeM(next)
	sp.SetAttr("nodes_after", int64(n))
	if n > v.peak {
		v.peak = n
	}
	sp.End()
	v.history = append(v.history, verifySnapshot{x: v.x, li: v.li, ri: v.ri})
	v.pkg.IncRefM(v.x) // snapshot reference
	v.pkg.IncRefM(next)
	v.pkg.DecRefM(v.x)
	v.x = next
	v.pkg.MaybeShapeM(v.x)
	*pos++
	return op.String(), nil
}

func (v *verifySession) sideCirc(side string) *qc.Circuit {
	if side == "right" {
		return v.right
	}
	return v.left
}

func (v *verifySession) sidePos(side string) int {
	if side == "right" {
		return v.ri
	}
	return v.li
}

func (v *verifySession) setSidePos(side string, pos int) {
	if side == "right" {
		v.ri = pos
	} else {
		v.li = pos
	}
}

// runToBarrier applies gates of the side up to the next barrier (or
// the end) — the ⏭ button of the verification tab, which Ex. 12 uses
// to consume "all gates from the circuit up to the next barrier".
func (v *verifySession) runToBarrier(ctx context.Context, side string) (applied int, err error) {
	if side != "left" && side != "right" {
		return 0, fmt.Errorf("web: unknown side %q", side)
	}
	if trace.Enabled(ctx) {
		var sp *trace.Span
		ctx, sp = trace.StartSpan(ctx, "fast-forward:"+side)
		defer func() {
			sp.SetAttr("ops", int64(applied))
			sp.End()
		}()
	}
	for {
		circ, pos := v.sideCirc(side), v.sidePos(side)
		if pos >= len(circ.Ops) {
			return applied, nil
		}
		if circ.Ops[pos].Kind == qc.KindBarrier {
			if applied > 0 {
				// Stop at the barrier; the next invocation skips it.
				return applied, nil
			}
			v.setSidePos(side, pos+1)
			continue
		}
		if _, err := v.stepSide(ctx, side); err != nil {
			return applied, err
		}
		applied++
	}
}

func (v *verifySession) stepBack() bool {
	if len(v.history) == 0 {
		return false
	}
	snap := v.history[len(v.history)-1]
	v.history = v.history[:len(v.history)-1]
	v.pkg.DecRefM(v.x)
	v.x = snap.x // reference transferred from the snapshot
	v.li, v.ri = snap.li, snap.ri
	return true
}

// identity classifies the current diagram against the identity.
func (v *verifySession) identity() string {
	switch v.pkg.CheckIdentity(v.x) {
	case dd.IdentityExact:
		return "identity"
	case dd.IdentityUpToPhase:
		return "identity-up-to-phase"
	default:
		return "not-identity"
	}
}

// Server hosts the tool: static page plus JSON API, with an in-memory
// session store governed by the limits in Config.
type Server struct {
	cfg     Config
	logger  *slog.Logger
	metrics *serverMetrics

	nextSessID atomic.Int64
	nextReqID  atomic.Int64

	sims     *registry[*simSession]
	verifies *registry[*verifySession]

	// Durability layer: nil when Config.SpillDir is empty.
	spill    *spiller
	restores restoreFlight

	// Live telemetry pipeline: nil when Config.SampleInterval is zero.
	tele    *telemetry
	liveSeq atomic.Uint64

	// Embedder-registered readiness probes (see SetReadinessProbe).
	probeMu sync.Mutex
	probes  map[string]func() error

	started time.Time

	reaperStop chan struct{}
	reaperDone chan struct{}
	closeOnce  sync.Once
}

// NewServer creates a session store with the default limits. The seed
// makes sampled measurement outcomes reproducible across restarts.
func NewServer(seed int64) *Server {
	cfg := DefaultConfig()
	cfg.Seed = seed
	return NewServerWithConfig(cfg)
}

// NewServerWithConfig creates a session store with explicit limits
// (zero values disable the corresponding limit). When SessionTTL is
// set, a background reaper evicts idle sessions until Close is called.
// When SpillDir is set, evictions spill sessions to disk and requests
// for evicted ids transparently restore them; if the spill directory
// cannot be opened, the server starts degraded (no durability) rather
// than not at all.
func NewServerWithConfig(cfg Config) *Server {
	s := &Server{
		cfg:      cfg,
		logger:   cfg.logger(),
		metrics:  newServerMetrics(cfg.registry()),
		sims:     newRegistry[*simSession](cfg.MaxSessions, cfg.SessionTTL),
		verifies: newRegistry[*verifySession](cfg.MaxSessions, cfg.SessionTTL),
		started:  time.Now(),
	}
	if cfg.SpillDir != "" {
		store, err := snapshot.OpenStore(cfg.SpillDir, cfg.SpillMaxBytes, nil)
		if err != nil {
			s.logger.Warn("spill store unavailable; sessions will not survive eviction",
				"component", "spill", "dir", cfg.SpillDir, "error", err)
		} else {
			s.spill = newSpiller(store, s.logger, s.metrics)
			s.sims.onEvict = s.spillSim
			s.verifies.onEvict = s.spillVerify
		}
	}
	if cfg.SampleInterval > 0 {
		s.tele = s.newTelemetry()
		go s.telemetryLoop()
	}
	if cfg.SessionTTL > 0 {
		s.reaperStop = make(chan struct{})
		s.reaperDone = make(chan struct{})
		go s.reaper()
	}
	return s
}

// SpillStore exposes the spill store (nil when disabled) for tests and
// embedding callers.
func (s *Server) SpillStore() *snapshot.Store {
	if s.spill == nil {
		return nil
	}
	return s.spill.store
}

// Close stops the background reaper — waiting until it has fully
// exited, so no sweep races the shutdown — and flushes in-flight spill
// writes so no session promised to disk is lost. Sessions are dropped
// with the server itself; Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.reaperStop != nil {
			close(s.reaperStop)
			<-s.reaperDone
		}
		s.stopTelemetry()
		if s.spill != nil {
			s.spill.flush()
		}
	})
}

// reaper periodically evicts sessions idle past the TTL.
func (s *Server) reaper() {
	defer close(s.reaperDone)
	interval := s.cfg.SessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.reaperStop:
			return
		case now := <-t.C:
			s.reapIdle(now)
		}
	}
}

// reapIdle evicts idle sessions once and reports how many went. Split
// from the reaper loop so tests can trigger eviction deterministically.
func (s *Server) reapIdle(now time.Time) int {
	reaped := append(s.sims.reap(now), s.verifies.reap(now)...)
	s.metrics.reaperSweeps.Inc()
	if len(reaped) > 0 {
		s.metrics.evictedTTL.Add(uint64(len(reaped)))
		s.logger.Info("reaped idle sessions",
			"component", "reaper", "count", len(reaped), "sessionIds", reaped)
	}
	return len(reaped)
}

func (s *Server) newID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, s.nextSessID.Add(1))
}

// styleFrom maps query parameters onto a vis.Style.
func styleFrom(mode string, labels string) vis.Style {
	st := vis.Style{}
	switch mode {
	case "colored":
		st.Mode = vis.Colored
	case "modern":
		st.Mode = vis.Modern
	default:
		st.Mode = vis.Classic
	}
	switch labels {
	case "1", "true", "on":
		yes := true
		st.ShowEdgeLabels = &yes
	case "0", "false", "off":
		no := false
		st.ShowEdgeLabels = &no
	}
	return st
}

// Frame is the render payload common to both tabs.
type Frame struct {
	SVG       string    `json:"svg"`
	Nodes     int       `json:"nodes"`
	Caption   string    `json:"caption,omitempty"`
	Pos       int       `json:"pos"`
	Total     int       `json:"total"`
	Classical []int     `json:"classical,omitempty"`
	Probs     []float64 `json:"probs,omitempty"`
	// Statistics panel payload.
	PathCount int64        `json:"pathCount,omitempty"` // non-zero basis states
	PeakNodes int          `json:"peakNodes,omitempty"`
	LevelHist []int        `json:"levelHist,omitempty"` // nodes per qubit level
	Engine    *EngineStats `json:"engine,omitempty"`    // table & memory counters
}

// EngineStats surfaces the DD engine's table and memory-manager
// counters (unique-table load, compute-table traffic, node recycling)
// in the statistics panel, next to the structural diagram metrics.
type EngineStats struct {
	LiveNodes    int     `json:"liveNodes"`
	UniqueLoadV  float64 `json:"uniqueLoadV"`
	UniqueLoadM  float64 `json:"uniqueLoadM"`
	UTCollisions uint64  `json:"utCollisions"`
	CTStores     uint64  `json:"ctStores"`
	CTEvictions  uint64  `json:"ctEvictions"`
	Recycled     uint64  `json:"recycled"`
	FreeNodes    int     `json:"freeNodes"`
	GCRuns       uint64  `json:"gcRuns"`
	// Gate-application kernel counters (PR 4).
	ApplyLookups    uint64 `json:"applyLookups"`
	ApplyHits       uint64 `json:"applyHits"`
	ApplyEvictions  uint64 `json:"applyEvictions"`
	GatesFused      uint64 `json:"gatesFused"`
	GateDDCacheHits uint64 `json:"gateDDCacheHits"`
	// Matrix-apply kernel counters (PR 9). KernelOps vs GenericOps is
	// the per-session split between the identity-skipping matrix kernel
	// and the generic MultMM fallback (SWAPs, restored sessions).
	ApplyMLookups       uint64 `json:"applyMLookups"`
	ApplyMHits          uint64 `json:"applyMHits"`
	ApplyMEvictions     uint64 `json:"applyMEvictions"`
	ApplyMIdentitySkips uint64 `json:"applyMIdentitySkips"`
	KernelOps           uint64 `json:"kernelOps"`
	GenericOps          uint64 `json:"genericOps"`
}

func engineStats(p *dd.Pkg) *EngineStats {
	st := p.Stats()
	return &EngineStats{
		LiveNodes:    p.LiveNodes(),
		UniqueLoadV:  st.UniqueLoadV,
		UniqueLoadM:  st.UniqueLoadM,
		UTCollisions: st.UTCollisions,
		CTStores:     st.CTStores,
		CTEvictions:  st.CTEvictions,
		Recycled:     st.NodesRecycledV + st.NodesRecycledM,
		FreeNodes:    st.FreeNodesV + st.FreeNodesM,
		GCRuns:       st.GCRuns,

		ApplyLookups:    st.ApplyCTLookups,
		ApplyHits:       st.ApplyCTHits,
		ApplyEvictions:  st.ApplyCTEvictions,
		GatesFused:      st.GatesFused,
		GateDDCacheHits: st.GateDDCacheHits,

		ApplyMLookups:       st.ApplyMCTLookups,
		ApplyMHits:          st.ApplyMCTHits,
		ApplyMEvictions:     st.ApplyMCTEvictions,
		ApplyMIdentitySkips: st.ApplyMIdentitySkips,
		KernelOps:           st.ApplyMOps,
		GenericOps:          st.MultMMOps,
	}
}

func simFrame(s *simSession, style vis.Style, caption string) Frame {
	g := vis.FromVector(s.sim.State())
	return Frame{
		SVG:       vis.FrameSVG(g, style, caption),
		Nodes:     dd.SizeV(s.sim.State()),
		Caption:   caption,
		Pos:       s.sim.Pos(),
		Total:     len(s.sim.Circuit().Ops),
		Classical: s.sim.Classical(),
		Probs:     s.sim.Pkg().Probabilities(s.sim.State()),
		PathCount: dd.PathCount(s.sim.State()),
		PeakNodes: s.sim.PeakNodes(),
		LevelHist: s.sim.Pkg().SizeByLevelV(s.sim.State()),
		Engine:    engineStats(s.sim.Pkg()),
	}
}

func verifyFrame(v *verifySession, style vis.Style, caption string) Frame {
	g := vis.FromMatrix(v.x)
	return Frame{
		SVG:       vis.FrameSVG(g, style, caption),
		Nodes:     dd.SizeM(v.x),
		Caption:   caption,
		Pos:       gatesBefore(v.left, v.li) + gatesBefore(v.right, v.ri),
		Total:     v.left.NumGates() + v.right.NumGates(),
		PeakNodes: v.peak,
		LevelHist: v.pkg.SizeByLevelM(v.x),
		Engine:    engineStats(v.pkg),
	}
}

// gatesBefore counts the gate operations before op index pos, so the
// progress display compares like with like (barriers excluded).
func gatesBefore(c *qc.Circuit, pos int) int {
	n := 0
	for i := 0; i < pos && i < len(c.Ops); i++ {
		if c.Ops[i].Kind == qc.KindGate {
			n++
		}
	}
	return n
}

// For tests: expose internals.
func (v *verifySession) positions() (int, int) { return v.li, v.ri }
func (v *verifySession) nodeCount() int        { return dd.SizeM(v.x) }

// BuildFunctionalityFrame supports the "single circuit loaded" mode of
// the verification tab: it constructs the (inverse) functionality of
// one circuit (Ex. 14) and returns its rendered frame.
func BuildFunctionalityFrame(circ *qc.Circuit, inverse bool, style vis.Style) (Frame, error) {
	return buildFunctionalityFrame(circ, inverse, style, 0)
}

// buildFunctionalityFrame is BuildFunctionalityFrame with a node
// budget: the construction aborts with dd.ErrResourceExhausted when
// the functionality diagram would exceed maxNodes (0 = unlimited).
func buildFunctionalityFrame(circ *qc.Circuit, inverse bool, style vis.Style, maxNodes int) (Frame, error) {
	use := circ
	if inverse {
		inv, err := circ.Inverse()
		if err != nil {
			return Frame{}, err
		}
		use = inv
	}
	p := dd.New(use.NQubits)
	p.SetMaxNodes(maxNodes)
	u, _, err := verify.BuildFunctionality(p, use)
	if err != nil {
		return Frame{}, err
	}
	g := vis.FromMatrix(u)
	caption := "functionality of " + circ.Name
	if inverse {
		caption = "inverse " + caption
	}
	return Frame{
		SVG:     vis.FrameSVG(g, style, caption),
		Nodes:   dd.SizeM(u),
		Caption: caption,
		Pos:     use.NumGates(),
		Total:   use.NumGates(),
	}, nil
}
