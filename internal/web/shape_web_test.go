package web

// End-to-end tests of the diagram-structure observability surface:
// the per-session shape endpoint on scripted simulation and
// verification runs, the structural timeline riding in debug bundles,
// the dd_shape_* exposition after real work, and the node-blowup
// watchdog rule.

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
)

// shapeRespDoc mirrors the endpoint payload for decoding.
type shapeRespDoc struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Interval int             `json:"interval"`
	Profile  dd.ShapeProfile `json:"profile"`
	Timeline *shapeTimeline  `json:"timeline"`
}

func getShape(t *testing.T, srv *httptest.Server, id string) (shapeRespDoc, int) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/debug/sessions/" + id + "/shape")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc shapeRespDoc
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatalf("shape response is not valid JSON: %v", err)
		}
	}
	return doc, resp.StatusCode
}

func TestSessionShapeEndpointSim(t *testing.T) {
	ws, srv := newTracedServer(t)

	var created struct {
		ID string `json:"id"`
	}
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.GHZ(4).QASM()}, &created)
	var out map[string]interface{}
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "end"}, &out)

	doc, code := getShape(t, srv, created.ID)
	if code != http.StatusOK {
		t.Fatalf("GET shape status %d", code)
	}
	if doc.ID != created.ID || doc.Kind != "sim" {
		t.Fatalf("shape identity %q/%q, want %q/sim", doc.ID, doc.Kind, created.ID)
	}
	if doc.Interval != defaultShapeInterval {
		t.Fatalf("interval %d, want default %d", doc.Interval, defaultShapeInterval)
	}
	p := doc.Profile
	if p.Kind != "vector" || p.Levels != 4 || p.Seq == 0 {
		t.Fatalf("profile kind/levels/seq = %q/%d/%d", p.Kind, p.Levels, p.Seq)
	}
	if len(p.NodesPerLevel) != 4 || len(p.EdgesPerLevel) != 4 || len(p.UTLoad) != 4 {
		t.Fatalf("per-level slices sized %d/%d/%d, want 4", len(p.NodesPerLevel), len(p.EdgesPerLevel), len(p.UTLoad))
	}
	if p.Nodes <= 0 || p.Edges < p.Nodes || p.MaxLevelNodes <= 0 {
		t.Fatalf("degenerate counts: %+v", p)
	}
	if p.SharingFactor < 1 {
		t.Fatalf("sharing factor %v < 1", p.SharingFactor)
	}
	if p.IdentityFraction != 0 {
		t.Fatalf("vector profile has identity fraction %v", p.IdentityFraction)
	}
	sum := 0
	for _, c := range p.WeightHist {
		sum += c
	}
	if sum != p.Edges {
		t.Fatalf("weight histogram sums to %d, want %d edges", sum, p.Edges)
	}

	// A telemetry sweep after the (publishing) GET above records the
	// per-session structural series; the next GET carries the timeline.
	ws.sampleTelemetry(time.Now())
	doc, _ = getShape(t, srv, created.ID)
	if doc.Timeline == nil || len(doc.Timeline.Nodes) == 0 {
		t.Fatalf("no structural timeline after a telemetry sweep: %+v", doc.Timeline)
	}
	if doc.Timeline.Nodes[0].V != float64(p.Nodes) {
		t.Fatalf("timeline nodes %v, want %d", doc.Timeline.Nodes[0].V, p.Nodes)
	}

	if _, code := getShape(t, srv, "sim-999"); code != http.StatusNotFound {
		t.Fatalf("unknown session shape status %d, want 404", code)
	}
}

func TestSessionShapeEndpointVerify(t *testing.T) {
	_, srv := newTracedServer(t)

	var created struct {
		ID string `json:"id"`
	}
	post(t, srv, "/api/verification", newVerifyRequest{
		Left:  algorithms.QFT(3).QASM(),
		Right: algorithms.QFTCompiled(3).QASM(),
	}, &created)
	var out map[string]interface{}
	post(t, srv, "/api/verification/"+created.ID+"/step", verifyStepRequest{Side: "left", Action: "forward"}, &out)

	doc, code := getShape(t, srv, created.ID)
	if code != http.StatusOK {
		t.Fatalf("GET shape status %d", code)
	}
	if doc.Kind != "verify" || doc.Profile.Kind != "matrix" {
		t.Fatalf("kinds %q/%q, want verify/matrix", doc.Kind, doc.Profile.Kind)
	}
	if doc.Profile.Levels != 3 || doc.Profile.Nodes <= 0 {
		t.Fatalf("profile %+v", doc.Profile)
	}
	if f := doc.Profile.IdentityFraction; f < 0 || f > 1 {
		t.Fatalf("identity fraction %v outside [0,1]", f)
	}
}

// TestShapeExposition asserts the dd_shape_* families carry real
// values after a scripted session: the scrape-time collector must pick
// the session's published profile up (forcing one on idle sessions).
func TestShapeExposition(t *testing.T) {
	_, srv := newTracedServer(t)

	var created struct {
		ID string `json:"id"`
	}
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.GHZ(4).QASM()}, &created)
	var out map[string]interface{}
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "end"}, &out)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for metric, min := range map[string]float64{
		`dd_shape_nodes{kind="vector"}`:          1,
		`dd_shape_edges{kind="vector"}`:          1,
		`dd_shape_profiles{kind="vector"}`:       1,
		`dd_shape_sharing_factor{kind="vector"}`: 1,
	} {
		v, ok := labeledMetricValue(string(body), metric)
		if !ok {
			t.Errorf("scrape lacks %s", metric)
			continue
		}
		if v < min {
			t.Errorf("%s = %v, want >= %v", metric, v, min)
		}
	}
	// The matrix-side families exist (zero-valued) with no verify load.
	if _, ok := labeledMetricValue(string(body), `dd_shape_nodes{kind="matrix"}`); !ok {
		t.Error("scrape lacks the matrix-side shape families")
	}
	if _, ok := labeledMetricValue(string(body), "dd_shape_identity_fraction"); !ok {
		t.Error("scrape lacks dd_shape_identity_fraction")
	}
}

// labeledMetricValue extracts one series (labels included verbatim in
// name) from a Prometheus text exposition.
func labeledMetricValue(body, series string) (float64, bool) {
	re := regexp.MustCompile(fmt.Sprintf(`(?m)^%s ([0-9.e+-]+)$`, regexp.QuoteMeta(series)))
	m := re.FindStringSubmatch(body)
	if m == nil {
		return 0, false
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// TestWatchdogNodeBlowupRule drives the aggregate shape gauges through
// the three regimes the rule distinguishes: growth under the absolute
// floor (never fires), growth past the floor but under the factor
// (never fires), and super-factor growth within the window (fires).
func TestWatchdogNodeBlowupRule(t *testing.T) {
	// Each scenario runs on a fresh server: the rule's growth window is
	// the whole SLO window, so earlier samples would contaminate it.
	run := func(t *testing.T, occupancies ...int) []string {
		t.Helper()
		ws, _ := newTracedServer(t)
		now := time.Now()
		for _, maxLevel := range occupancies {
			ws.metrics.shape.Record(&dd.ShapeProfile{
				Kind: "vector", Seq: 1, Nodes: 4 * maxLevel,
				MaxLevelNodes: maxLevel, WidestLevel: 7,
			}, nil, 1, 0)
			ws.tele.store.SampleOnce(now)
			ws.tele.dog.Evaluate(now)
			now = now.Add(ws.cfg.SampleInterval)
		}
		var rules []string
		for _, ev := range ws.WatchdogEvents() {
			rules = append(rules, ev.Rule)
		}
		return rules
	}

	// Under the floor: a 64 → 256 quadrupling is noise.
	if evs := run(t, 64, 256); len(evs) != 0 {
		t.Fatalf("blowup fired under the occupancy floor: %v", evs)
	}
	// Past the floor but doubling only: legitimate growth.
	if evs := run(t, 600, 1200); len(evs) != 0 {
		t.Fatalf("blowup fired on sub-factor growth: %v", evs)
	}
	// 600 → 4800 within the window crosses the factor.
	evs := run(t, 600, 1200, 4800)
	if len(evs) != 1 || evs[0] != "node_blowup" {
		t.Fatalf("watchdog events after blowup: %v", evs)
	}
}

// TestBundleShapeTimelineMember asserts shape_timeline.json rides in
// debug bundles with the live session's profile in it.
func TestBundleShapeTimelineMember(t *testing.T) {
	ws, srv := newTracedServer(t)

	var created struct {
		ID string `json:"id"`
	}
	post(t, srv, "/api/simulation", newSimRequest{Code: algorithms.Bell().QASM()}, &created)
	var out map[string]interface{}
	post(t, srv, "/api/simulation/"+created.ID+"/step", stepRequest{Action: "end"}, &out)

	req := httptest.NewRequest("GET", "/debug/bundle?cpu=0", nil)
	rw := httptest.NewRecorder()
	ws.BundleHandler().ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("bundle status %d", rw.Code)
	}
	gz, err := gzip.NewReader(rw.Body)
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	var timeline string
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("tar read: %v", err)
		}
		if hdr.Name == "shape_timeline.json" {
			body, _ := io.ReadAll(tr)
			timeline = string(body)
		}
	}
	if timeline == "" {
		t.Fatal("bundle lacks shape_timeline.json")
	}
	var entries []shapeBundleEntry
	if err := json.Unmarshal([]byte(timeline), &entries); err != nil {
		t.Fatalf("shape_timeline.json is not valid JSON: %v", err)
	}
	if len(entries) != 1 || entries[0].ID != created.ID || entries[0].Kind != "sim" {
		t.Fatalf("timeline entries %+v, want the one live session", entries)
	}
	// The Bell session is idle and under the stride — the snapshot must
	// have forced a profile so young sessions are not invisible.
	if entries[0].Profile == nil || entries[0].Profile.Nodes <= 0 {
		t.Fatalf("timeline entry lacks a profile: %+v", entries[0])
	}
}
