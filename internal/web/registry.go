package web

// Session registry with per-session locking.
//
// The original server guarded every session of every user with one
// global mutex, so a single long-running fast-forward froze the whole
// tool. The registry replaces that with a two-level scheme: a
// read-mostly map (RWMutex) from id to handle, and one mutex per
// handle that serializes requests to that session only. Handlers
// acquire a session with its lock already held and keep it for the
// duration of the request, which also closes the lookup/re-lock TOCTOU
// window of the old code — a session can no longer be stepped after a
// concurrent eviction, because eviction marks the handle gone under
// the same per-session lock.
//
// Lifecycle: sessions carry a last-access timestamp; a background
// reaper evicts sessions idle past the TTL, and an LRU cap bounds the
// number of live sessions. Evicted ids leave a bounded tombstone
// behind so clients get 410 Gone (the session existed, stop retrying)
// rather than 404 Not Found.

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

var (
	errSessionUnknown = errors.New("web: unknown session")
	errSessionGone    = errors.New("web: session expired or evicted")
)

// maxTombstones bounds the memory spent remembering evicted ids.
const maxTombstones = 4096

// handle is one registered session. Its mutex serializes all work on
// the session; requests to different sessions never contend.
type handle[T any] struct {
	id         string
	mu         sync.Mutex
	val        T
	gone       bool // set once under mu when the session is evicted
	lastAccess atomic.Int64
}

// release unlocks the handle; pair with every successful acquire.
func (h *handle[T]) release() { h.mu.Unlock() }

// evictHandle flags the handle so in-flight lookups fail with 410. It
// is called after the handle left the map, never while a map lock is
// held, so it can wait for a running request to finish. While the
// per-session lock is held — i.e. with exclusive access to the
// session's state — the eviction hook runs, which is where the spill
// layer serializes the session before it becomes unreachable.
func (r *registry[T]) evictHandle(h *handle[T]) {
	h.mu.Lock()
	if !h.gone && r.onEvict != nil {
		r.onEvict(h.id, h.val)
	}
	h.gone = true
	h.mu.Unlock()
}

type registry[T any] struct {
	mu      sync.RWMutex
	entries map[string]*handle[T]
	tombs   map[string]struct{}
	tombQ   []string
	maxLive int           // LRU cap on live sessions (0 = unlimited)
	ttl     time.Duration // idle eviction threshold (0 = never)

	// onEvict, when set, observes every eviction with the per-session
	// lock held and the session state still intact — the spill hook.
	// Set once before the registry serves traffic.
	onEvict func(id string, v T)
}

func newRegistry[T any](maxLive int, ttl time.Duration) *registry[T] {
	return &registry[T]{
		entries: make(map[string]*handle[T]),
		tombs:   make(map[string]struct{}),
		maxLive: maxLive,
		ttl:     ttl,
	}
}

// put registers a new session. When the registry is at its cap, the
// least recently used session is evicted to make room. Re-registering
// an evicted id (a restored session) clears its tombstone, so the id
// answers requests again instead of 410.
func (r *registry[T]) put(id string, v T, now time.Time) (evicted string) {
	r.mu.Lock()
	var victim *handle[T]
	if r.maxLive > 0 && len(r.entries) >= r.maxLive {
		for _, h := range r.entries {
			if victim == nil || h.lastAccess.Load() < victim.lastAccess.Load() {
				victim = h
			}
		}
		if victim != nil {
			r.dropLocked(victim.id)
		}
	}
	h := &handle[T]{id: id, val: v}
	h.lastAccess.Store(now.UnixNano())
	r.entries[id] = h
	// Revive: drop the tombstone but leave the (bounded) queue entry;
	// a stale queue head at trim time merely forgets another tombstone
	// a bit early, degrading a 410 into a 404.
	delete(r.tombs, id)
	r.mu.Unlock()
	if victim != nil {
		r.evictHandle(victim)
		return victim.id
	}
	return ""
}

// acquire looks the session up and returns its handle with the
// per-session lock held; the caller must release() it. Unknown ids
// yield errSessionUnknown, evicted ones errSessionGone.
func (r *registry[T]) acquire(id string, now time.Time) (*handle[T], error) {
	r.mu.RLock()
	h, ok := r.entries[id]
	if !ok {
		_, tomb := r.tombs[id]
		r.mu.RUnlock()
		if tomb {
			return nil, errSessionGone
		}
		return nil, errSessionUnknown
	}
	r.mu.RUnlock()
	h.mu.Lock()
	if h.gone {
		h.mu.Unlock()
		return nil, errSessionGone
	}
	h.lastAccess.Store(now.UnixNano())
	return h, nil
}

// reap evicts every session idle longer than the TTL and returns the
// evicted ids.
func (r *registry[T]) reap(now time.Time) []string {
	if r.ttl <= 0 {
		return nil
	}
	cutoff := now.Add(-r.ttl).UnixNano()
	r.mu.Lock()
	var victims []*handle[T]
	for _, h := range r.entries {
		if h.lastAccess.Load() < cutoff {
			victims = append(victims, h)
		}
	}
	ids := make([]string, 0, len(victims))
	for _, h := range victims {
		r.dropLocked(h.id)
		ids = append(ids, h.id)
	}
	r.mu.Unlock()
	for _, h := range victims {
		r.evictHandle(h)
	}
	return ids
}

// dropLocked removes id from the live map and records a tombstone.
// Caller holds r.mu and must evictHandle() the handle afterwards.
func (r *registry[T]) dropLocked(id string) {
	delete(r.entries, id)
	if _, ok := r.tombs[id]; !ok {
		r.tombs[id] = struct{}{}
		r.tombQ = append(r.tombQ, id)
		if len(r.tombQ) > maxTombstones {
			delete(r.tombs, r.tombQ[0])
			r.tombQ = r.tombQ[1:]
		}
	}
}

// tombstone records id as evicted without it being live — used when a
// restore fails terminally, so subsequent requests get a definitive
// 410 instead of re-running the failing restore.
func (r *registry[T]) tombstone(id string) {
	r.mu.Lock()
	if _, live := r.entries[id]; !live {
		r.dropLocked(id)
	}
	r.mu.Unlock()
}

// size reports the number of live sessions.
func (r *registry[T]) size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// tombCount reports the number of remembered evicted ids.
func (r *registry[T]) tombCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tombs)
}

// forEach visits every live session. For each handle it TryLocks the
// per-session mutex: idle sessions are visited with the lock held and
// fresh=true, so f may touch session-owned state directly (e.g. force
// a dd.Pkg.PublishStats so scrapes never see a stale snapshot). Busy
// sessions — a request or fast-forward holds the lock — are visited
// with fresh=false, and f must restrict itself to race-clean reads
// (atomically published state such as LastStats). TryLock is what
// keeps the metrics scrape from stalling behind a long-running
// fast-forward while still refreshing every session that is not
// actively working.
func (r *registry[T]) forEach(f func(id string, v T, fresh bool)) {
	r.mu.RLock()
	handles := make([]*handle[T], 0, len(r.entries))
	for _, h := range r.entries {
		handles = append(handles, h)
	}
	r.mu.RUnlock()
	for _, h := range handles {
		if h.mu.TryLock() {
			if !h.gone {
				f(h.id, h.val, true)
			}
			h.mu.Unlock()
		} else {
			f(h.id, h.val, false)
		}
	}
}

// peek returns the stored value without taking the per-session lock.
// The value pointer is written once before the handle is published and
// never mutated, so the read is race-clean; callers must only use the
// value's cross-goroutine-safe surface (the flight recorder's
// Snapshot, LastStats). Evicted and unknown ids report false.
func (r *registry[T]) peek(id string) (T, bool) {
	r.mu.RLock()
	h, ok := r.entries[id]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, false
	}
	return h.val, true
}
