package web

// Production-hardening tests: admission limits, body caps, session
// eviction (TTL + LRU), panic recovery, node budgets surfacing as
// partial-progress frames, deadline-bounded fast-forward, and the
// per-session locking that lets concurrent users step independently.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quantumdd/internal/qc"
)

// newHardenedServer spins up a test server with explicit limits and
// returns both the web.Server (for deterministic reaping) and the
// httptest wrapper.
func newHardenedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	ws := NewServerWithConfig(cfg)
	t.Cleanup(ws.Close)
	ts := httptest.NewServer(ws.Handler())
	t.Cleanup(ts.Close)
	return ws, ts
}

func decodeAPIError(t *testing.T, resp *http.Response) apiError {
	t.Helper()
	defer resp.Body.Close()
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error response is not the JSON envelope: %v", err)
	}
	return e
}

// blowUpCircuit builds the deterministic DD blow-up used by the dd
// budget tests, as a circuit: GHZ preamble, an H layer, then an
// all-pairs controlled-phase polynomial with distinct angles, whose
// state diagram grows exponentially with the qubit count.
func blowUpCircuit(n int) *qc.Circuit {
	c := qc.New(n, 0)
	c.H(n - 1)
	for q := n - 1; q > 0; q-- {
		c.CX(q, q-1)
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			theta := math.Pi / math.Sqrt(float64(k)+1.5)
			c.Phase(theta, j, qc.Control{Qubit: i})
			k++
		}
	}
	return c
}

func TestOversizedBodyRejected413(t *testing.T) {
	_, ts := newHardenedServer(t, Config{MaxBodyBytes: 128})
	big := bytes.Repeat([]byte("x"), 4096)
	body, _ := json.Marshal(newSimRequest{Code: string(big)})
	resp, err := http.Post(ts.URL+"/api/simulation", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	e := decodeAPIError(t, resp)
	if e.Code != codeBodyTooLarge {
		t.Fatalf("code %q, want %q", e.Code, codeBodyTooLarge)
	}
	if e.RequestID == "" {
		t.Fatal("error envelope lacks a request id")
	}
}

func TestOverLimitCircuitsRejected422(t *testing.T) {
	_, ts := newHardenedServer(t, Config{MaxQubits: 2, MaxOps: 3})
	wide := "qreg q[4];\nh q[0];\n"
	long := "qreg q[1];\nh q[0];\nh q[0];\nh q[0];\nh q[0];\n"
	for name, tc := range map[string]struct {
		path string
		body interface{}
	}{
		"sim/wide":           {"/api/simulation", newSimRequest{Code: wide}},
		"sim/long":           {"/api/simulation", newSimRequest{Code: long}},
		"noisy/wide":         {"/api/noisy", noisyRequest{Code: wide}},
		"functionality/wide": {"/api/functionality", functionalityRequest{Code: wide}},
		"verify/wide":        {"/api/verification", newVerifyRequest{Left: wide, Right: wide}},
	} {
		buf, _ := json.Marshal(tc.body)
		resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d, want 422", name, resp.StatusCode)
		}
		if e := decodeAPIError(t, resp); e.Code != codeCircuitTooLarge {
			t.Fatalf("%s: code %q, want %q", name, e.Code, codeCircuitTooLarge)
		}
	}
}

func TestIdleSessionReapedAnswers410(t *testing.T) {
	cfg := Config{Seed: 1, SessionTTL: time.Minute}
	ws, ts := newHardenedServer(t, cfg)
	var created newResp
	buf, _ := json.Marshal(newSimRequest{Code: "qreg q[1];\nh q[0];\n"})
	resp, err := http.Post(ts.URL+"/api/simulation", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Deterministic eviction: pretend the TTL elapsed.
	if n := ws.reapIdle(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("reaped %d sessions, want 1", n)
	}
	resp, err = http.Get(ts.URL + "/api/simulation/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status %d, want 410", resp.StatusCode)
	}
	if e := decodeAPIError(t, resp); e.Code != codeSessionGone {
		t.Fatalf("code %q, want %q", e.Code, codeSessionGone)
	}
}

func TestLRUEvictionAnswers410(t *testing.T) {
	_, ts := newHardenedServer(t, Config{Seed: 1, MaxSessions: 1})
	create := func() string {
		buf, _ := json.Marshal(newSimRequest{Code: "qreg q[1];\nh q[0];\n"})
		resp, err := http.Post(ts.URL+"/api/simulation", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var created newResp
		if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
			t.Fatal(err)
		}
		return created.ID
	}
	first := create()
	second := create() // evicts first (cap is 1)
	resp, err := http.Get(ts.URL + "/api/simulation/" + first)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("evicted session status %d, want 410", resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/api/simulation/" + second)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live session status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestPanicRecoveryKeepsServerUp(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	syncW := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logBuf.Write(p)
	})
	ws := NewServerWithConfig(Config{Logger: slog.New(slog.NewTextHandler(syncW, nil))})
	t.Cleanup(ws.Close)
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("handler exploded")
	})
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "fine")
	})
	ts := httptest.NewServer(ws.withMiddleware(mux))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic status %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("missing X-Request-ID header")
	}
	if e := decodeAPIError(t, resp); e.Code != codeInternal {
		t.Fatalf("code %q, want %q", e.Code, codeInternal)
	}
	// The process survived: the next request is served normally.
	resp, err = http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, "panic recovered") || !strings.Contains(logged, "handler exploded") {
		t.Fatalf("panic not logged:\n%s", logged)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestNodeBudgetSurfacesAsPartialFrame(t *testing.T) {
	_, ts := newHardenedServer(t, Config{Seed: 1, MaxNodes: 200})
	circ := blowUpCircuit(10)
	buf, _ := json.Marshal(newSimRequest{Code: circ.QASM()})
	resp, err := http.Post(ts.URL+"/api/simulation", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var created newResp
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	buf, _ = json.Marshal(stepRequest{Action: "end"})
	resp, err = http.Post(ts.URL+"/api/simulation/"+created.ID+"/step", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget overrun must degrade gracefully, got status %d", resp.StatusCode)
	}
	var r stepResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if r.Error == "" {
		t.Fatal("step response lacks the budget error")
	}
	if !strings.Contains(r.Frame.Caption, "diagram too large") {
		t.Fatalf("caption %q, want 'diagram too large'", r.Frame.Caption)
	}
	if r.Frame.Pos == 0 {
		t.Fatal("no partial progress recorded before the budget tripped")
	}
	if r.AtEnd {
		t.Fatal("session claims completion despite the aborted fast-forward")
	}
	// The session survives: refreshing renders the last good state.
	resp, err = http.Get(ts.URL + "/api/simulation/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh after budget abort: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestFunctionalityBudgetRejected422(t *testing.T) {
	_, ts := newHardenedServer(t, Config{MaxNodes: 200})
	circ := blowUpCircuit(10)
	buf, _ := json.Marshal(functionalityRequest{Code: circ.QASM()})
	resp, err := http.Post(ts.URL+"/api/functionality", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	if e := decodeAPIError(t, resp); e.Code != codeResourceExhausted {
		t.Fatalf("code %q, want %q", e.Code, codeResourceExhausted)
	}
}

func TestVerificationBudgetKeepsLastGoodDiagram(t *testing.T) {
	_, ts := newHardenedServer(t, Config{MaxNodes: 200})
	circ := blowUpCircuit(10)
	buf, _ := json.Marshal(newVerifyRequest{Left: circ.QASM(), Right: circ.QASM()})
	resp, err := http.Post(ts.URL+"/api/verification", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var created newResp
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Fast-forward the left side until the budget trips.
	var r verifyStepResponse
	for i := 0; i < 100; i++ {
		buf, _ = json.Marshal(verifyStepRequest{Side: "left", Action: "barrier"})
		resp, err = http.Post(ts.URL+"/api/verification/"+created.ID+"/step", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 (graceful degradation)", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if r.Error != "" {
			break
		}
	}
	if r.Error == "" {
		t.Fatal("verification never hit the node budget")
	}
	if !strings.Contains(r.Frame.Caption, "diagram too large") {
		t.Fatalf("caption %q, want 'diagram too large'", r.Frame.Caption)
	}
	if !strings.Contains(r.Frame.SVG, "<svg") {
		t.Fatal("partial frame lacks the last good diagram")
	}
}

func TestRequestDeadlineBoundsFastForward(t *testing.T) {
	_, ts := newHardenedServer(t, Config{Seed: 1, RequestTimeout: time.Nanosecond})
	buf, _ := json.Marshal(newSimRequest{Code: "qreg q[2];\nh q[0];\ncx q[0], q[1];\n"})
	resp, err := http.Post(ts.URL+"/api/simulation", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var created newResp
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	buf, _ = json.Marshal(stepRequest{Action: "end"})
	resp, err = http.Post(ts.URL+"/api/simulation/"+created.ID+"/step", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 partial frame", resp.StatusCode)
	}
	var r stepResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !strings.Contains(r.Error, "interrupted") {
		t.Fatalf("error %q, want fast-forward interruption", r.Error)
	}
}

// TestParallelSessions drives many independent sessions concurrently
// (step, choose, refresh, export interleaved). Under -race this proves
// sessions do not share mutable state and no global lock serializes
// them (see also TestRegistryPerSessionLocking).
func TestParallelSessions(t *testing.T) {
	_, ts := newHardenedServer(t, DefaultConfig())
	const nSessions = 10
	code := "qreg q[2];\ncreg c[2];\nh q[0];\ncx q[0], q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n"
	var wg sync.WaitGroup
	errs := make(chan error, nSessions)
	for g := 0; g < nSessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			fail := func(format string, a ...interface{}) {
				errs <- fmt.Errorf("session %d: "+format, append([]interface{}{g}, a...)...)
			}
			buf, _ := json.Marshal(newSimRequest{Code: code})
			resp, err := http.Post(ts.URL+"/api/simulation", "application/json", bytes.NewReader(buf))
			if err != nil {
				fail("create: %v", err)
				return
			}
			var created newResp
			if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
				fail("decode create: %v", err)
				return
			}
			resp.Body.Close()
			step := func(action string) *stepResponse {
				buf, _ := json.Marshal(stepRequest{Action: action})
				resp, err := http.Post(ts.URL+"/api/simulation/"+created.ID+"/step", "application/json", bytes.NewReader(buf))
				if err != nil {
					fail("step %s: %v", action, err)
					return nil
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail("step %s: status %d", action, resp.StatusCode)
					return nil
				}
				var r stepResponse
				if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
					fail("step %s decode: %v", action, err)
					return nil
				}
				return &r
			}
			if r := step("forward"); r == nil {
				return
			}
			if r := step("forward"); r == nil {
				return
			}
			// Refresh and export interleave with stepping.
			if resp, err := http.Get(ts.URL + "/api/simulation/" + created.ID); err != nil {
				fail("refresh: %v", err)
				return
			} else {
				resp.Body.Close()
			}
			if resp, err := http.Get(ts.URL + "/api/simulation/" + created.ID + "/export?format=dot"); err != nil {
				fail("export: %v", err)
				return
			} else {
				resp.Body.Close()
			}
			// Resolve the measurement dialog with an outcome derived from
			// the session index, then drain the circuit.
			r := step("forward")
			if r == nil {
				return
			}
			if r.Pending == nil {
				fail("expected pending measurement, got %+v", r)
				return
			}
			buf, _ = json.Marshal(chooseRequest{Outcome: g % 2})
			resp, err = http.Post(ts.URL+"/api/simulation/"+created.ID+"/choose", "application/json", bytes.NewReader(buf))
			if err != nil {
				fail("choose: %v", err)
				return
			}
			var chosen stepResponse
			if err := json.NewDecoder(resp.Body).Decode(&chosen); err != nil {
				fail("decode choose: %v", err)
				return
			}
			resp.Body.Close()
			final := step("end")
			if final == nil {
				return
			}
			if !final.AtEnd {
				fail("did not reach the end: %+v", final)
				return
			}
			want := g % 2
			if c := final.Frame.Classical; len(c) != 2 || c[0] != want || c[1] != want {
				fail("classical register %v, want [%d %d]", c, want, want)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestWriteJSONEncodeFailureLogged(t *testing.T) {
	var logBuf bytes.Buffer
	ws := NewServerWithConfig(Config{Logger: slog.New(slog.NewTextHandler(&logBuf, nil))})
	t.Cleanup(ws.Close)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/api/examples", nil)
	ws.writeJSON(rec, req, http.StatusOK, map[string]interface{}{"fn": func() {}})
	if !strings.Contains(logBuf.String(), "response encoding failed") {
		t.Fatalf("encoder failure not logged:\n%s", logBuf.String())
	}
}

func TestMalformedJSONRejected400(t *testing.T) {
	_, ts := newHardenedServer(t, DefaultConfig())
	resp, err := http.Post(ts.URL+"/api/simulation", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if e := decodeAPIError(t, resp); e.Code != codeBadRequest {
		t.Fatalf("code %q, want %q", e.Code, codeBadRequest)
	}
}
