package web

// Readiness gating end-to-end: warmup, component probes under fault
// injection, custom probes, SLO burn, and the watchdog's spill
// corruption rule.

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"quantumdd/internal/snapshot"
	"quantumdd/internal/snapshot/faultfs"
)

func TestHealthzAlwaysOK(t *testing.T) {
	_, srv := newSpillTestServer(t, nil)
	var body map[string]interface{}
	resp := get(t, srv, "/healthz", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz status %d", resp.StatusCode)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body %v", body)
	}
}

func TestReadyzWarmupThenReady(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)

	// Before the first telemetry sweep the replica must not be ready:
	// the SLO math has no window to judge yet.
	var ready readyResponse
	resp := get(t, srv, "/readyz", &ready)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-warmup /readyz status %d, want 503", resp.StatusCode)
	}
	if ready.Ready {
		t.Fatal("pre-warmup readyz reports ready")
	}
	warm := false
	for _, p := range ready.Probes {
		if p.Name == "telemetry" && !p.OK {
			warm = true
		}
	}
	if !warm {
		t.Fatalf("telemetry probe not failing during warmup: %+v", ready.Probes)
	}

	// One sweep completes the warmup.
	ws.sampleTelemetry(time.Now())
	ready = readyResponse{}
	resp = get(t, srv, "/readyz", &ready)
	if resp.StatusCode != http.StatusOK || !ready.Ready {
		t.Fatalf("post-warmup /readyz status %d ready=%v: %+v", resp.StatusCode, ready.Ready, ready)
	}
	if ready.SLO == nil || ready.SLO.Burning {
		t.Fatalf("SLO section wrong on a healthy replica: %+v", ready.SLO)
	}
}

func TestReadyzDegradesAndRecoversOnSpillFault(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)
	ws.sampleTelemetry(time.Now())

	// Inject a persistent write failure — the disk went read-only.
	ffs := faultfs.New(snapshot.OSFS{})
	st, err := snapshot.OpenStore(ws.cfg.SpillDir, 0, ffs)
	if err != nil {
		t.Fatal(err)
	}
	ws.spill.store = st
	ffs.SetFailAllWrites(true)

	var ready readyResponse
	resp := get(t, srv, "/readyz", &ready)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with dead spill dir: status %d, want 503", resp.StatusCode)
	}
	var spillProbe *probeStatus
	for i := range ready.Probes {
		if ready.Probes[i].Name == "spill" {
			spillProbe = &ready.Probes[i]
		}
	}
	if spillProbe == nil || spillProbe.OK {
		t.Fatalf("spill probe did not fail: %+v", ready.Probes)
	}

	// Recovery: the fault clears and readiness flips back without a
	// restart.
	ffs.SetFailAllWrites(false)
	ready = readyResponse{}
	resp = get(t, srv, "/readyz", &ready)
	if resp.StatusCode != http.StatusOK || !ready.Ready {
		t.Fatalf("/readyz after recovery: status %d ready=%v", resp.StatusCode, ready.Ready)
	}
}

func TestReadyzCustomProbe(t *testing.T) {
	ws, srv := newSpillTestServer(t, nil)
	ws.sampleTelemetry(time.Now())

	ws.SetReadinessProbe("admin", func() error { return errors.New("admin listener down") })
	var ready readyResponse
	if resp := get(t, srv, "/readyz", &ready); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failing custom probe: status %d, want 503", resp.StatusCode)
	}
	found := false
	for _, p := range ready.Probes {
		if p.Name == "admin" && !p.OK && p.Detail == "admin listener down" {
			found = true
		}
	}
	if !found {
		t.Fatalf("custom probe missing from payload: %+v", ready.Probes)
	}

	ws.SetReadinessProbe("admin", nil) // removed
	if resp := get(t, srv, "/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("after probe removal: status %d, want 200", resp.StatusCode)
	}
}

func TestReadyzSLOLatencyBurn(t *testing.T) {
	ws, srv := newSpillTestServer(t, func(cfg *Config) {
		cfg.SLOLatencyP99 = time.Nanosecond // any real request latency burns
	})
	// Land one request in the latency histogram, then sweep so the
	// tsdb window sees it.
	get(t, srv, "/api/examples", nil)
	ws.sampleTelemetry(time.Now())

	var ready readyResponse
	resp := get(t, srv, "/readyz", &ready)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("burning SLO: status %d, want 503", resp.StatusCode)
	}
	if ready.SLO == nil || !ready.SLO.Burning || ready.SLO.P99Seconds <= 0 {
		t.Fatalf("SLO section: %+v", ready.SLO)
	}
}

func TestWatchdogSpillCorruptionRule(t *testing.T) {
	ws, _ := newSpillTestServer(t, nil)
	now := time.Now()
	ws.sampleTelemetry(now)
	if len(ws.WatchdogEvents()) != 0 {
		t.Fatalf("watchdog fired on a healthy server: %+v", ws.WatchdogEvents())
	}
	// A corrupt snapshot surfaces between two sweeps; the Delta-based
	// rule must turn it into an event.
	ws.metrics.simCorruptions.Inc()
	ws.sampleTelemetry(now.Add(ws.cfg.SampleInterval))
	evs := ws.WatchdogEvents()
	if len(evs) != 1 || evs[0].Rule != "spill_corruption" {
		t.Fatalf("watchdog events after corruption: %+v", evs)
	}
}
