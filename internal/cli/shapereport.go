package cli

// ASCII rendering of a dd.ShapeProfile for dddraw -shape: the
// terminal-friendly counterpart of GET /debug/sessions/{id}/shape.
// Levels print top-down (the root's level first) to match the drawn
// diagrams, with occupancy bars scaled to the widest level.

import (
	"fmt"
	"math"
	"strings"

	"quantumdd/internal/dd"
)

// shapeBarWidth is the widest occupancy/histogram bar in runes.
const shapeBarWidth = 40

func shapeBar(v, max float64) string {
	if v <= 0 || max <= 0 {
		return ""
	}
	n := int(math.Round(v / max * shapeBarWidth))
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// shapeReport renders the profile as a plain-text table.
func shapeReport(p *dd.ShapeProfile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "shape: %s DD, %d levels, %d nodes, %d edges\n",
		p.Kind, p.Levels, p.Nodes, p.Edges)
	fmt.Fprintf(&b, "sharing: %.0f tree nodes / %d DD nodes = %.2fx\n",
		p.TreeNodes, p.Nodes, p.SharingFactor)
	if p.Kind == "matrix" {
		fmt.Fprintf(&b, "identity padding: %.1f%% of the tree expansion\n",
			p.IdentityFraction*100)
	}
	fmt.Fprintf(&b, "\nlevel  nodes  edges  ut-load  occupancy\n")
	for v := p.Levels - 1; v >= 0; v-- {
		fmt.Fprintf(&b, "%5d  %5d  %5d  %7.3f  %s\n",
			v, p.NodesPerLevel[v], p.EdgesPerLevel[v], p.UTLoad[v],
			shapeBar(float64(p.NodesPerLevel[v]), float64(p.MaxLevelNodes)))
	}
	maxCount := 0
	for _, c := range p.WeightHist {
		if c > maxCount {
			maxCount = c
		}
	}
	fmt.Fprintf(&b, "\nedge-weight magnitudes (%d nonzero edges)\n", p.Edges)
	for k := len(p.WeightHist) - 1; k >= 0; k-- {
		c := p.WeightHist[k]
		if c == 0 {
			continue
		}
		lo, hi := dd.ShapeWeightBucketBounds(k)
		fmt.Fprintf(&b, "  [%8.3g, %8.3g)  %6d  %s\n",
			lo, hi, c, shapeBar(float64(c), float64(maxCount)))
	}
	return b.String()
}
