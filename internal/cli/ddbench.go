package cli

import (
	"flag"
	"fmt"
	"io"
	"time"

	"quantumdd/internal/bench"
	"quantumdd/internal/dd"
	"quantumdd/internal/obs"
	"quantumdd/internal/obs/tsdb"
)

// RunDdbench is the ddbench tool: regenerate the paper's experiments.
func RunDdbench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "run only the experiment with this ID (e.g. E6)")
	list := fs.Bool("list", false, "list experiments and exit")
	metricsDump := fs.Bool("metrics-dump", false, "print a Prometheus metrics snapshot of the engines after the run")
	traceOut := fs.String("trace-out", "", "write the run's span timeline to this file as Chrome trace-event JSON")
	sampleInterval := fs.Duration("sample-interval", 0, "run the in-process telemetry sampler at this interval during the experiments (0 = off); pairs a run with and without it to measure sampler overhead")
	baseline := fs.String("baseline", "", "compare the run's summary metrics against this BENCH_prN.json and exit nonzero on regressions (machine-portable metrics only)")
	baselineThreshold := fs.Float64("baseline-threshold", 0.2, "relative tolerance for -baseline comparisons (0.2 = 20%)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var base *bench.BaselineFile
	if *baseline != "" {
		// Load before running so a bad path fails fast, not after
		// minutes of experiments.
		b, err := bench.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "ddbench:", err)
			return 2
		}
		base = b
	}
	checkBaseline := func(current bench.Summary) int {
		if base == nil {
			return 0
		}
		regs := bench.CompareBaseline(base.After.Ddbench, current, *baselineThreshold)
		if len(regs) == 0 {
			fmt.Fprintf(stderr, "baseline %s (PR %d): no regressions past %.0f%%\n",
				*baseline, base.PR, *baselineThreshold*100)
			return 0
		}
		fmt.Fprintf(stderr, "ddbench: %d regression(s) against %s (PR %d):\n",
			len(regs), *baseline, base.PR)
		for _, r := range regs {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 1
	}
	var md *metricsDumper
	if *metricsDump {
		// The experiments build their engines internally; the tracer
		// still reaches them through the process-wide default, so the
		// dump carries the op-latency histograms of the whole run.
		md = newMetricsDumper()
		defer md.dump(stdout)
	}
	if *sampleInterval > 0 {
		// The sampler needs a populated registry: reuse the dumper's if
		// present, otherwise install the same default-tracer plumbing so
		// the sweeps see real op-latency series, as in the web server.
		reg := obs.NewRegistry()
		if md != nil {
			reg = md.reg
		} else {
			coll := obs.NewDDCollector(reg)
			dd.SetDefaultTracer(coll.Tracer())
		}
		store := tsdb.New(reg, tsdb.Config{Interval: *sampleInterval})
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(*sampleInterval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case now := <-t.C:
					store.SampleOnce(now)
				}
			}
		}()
		defer func() {
			close(stop)
			<-done
			fmt.Fprintf(stderr, "telemetry: %d sweep(s), %d series, %d bytes retained\n",
				store.Samples(), store.SeriesCount(), store.RetainedBytes())
		}()
	}
	if *traceOut != "" {
		// Experiments don't thread a context, so the timeline is the
		// root span with every engine operation as a direct child —
		// still enough to see where a regenerated experiment spends
		// its time, op by op.
		to := newTraceOutput(*traceOut, "ddbench")
		defer to.finish(stderr)
	}
	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "ddbench: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		fmt.Fprintf(stdout, "=== %s: %s ===\npaper: %s\n", e.ID, e.Title, e.Paper)
		s, err := e.Run(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "ddbench:", err)
			return 1
		}
		bench.PrintSummary(stdout, s)
		return checkBaseline(s)
	}
	all, err := bench.RunAll(stdout)
	if err != nil {
		fmt.Fprintln(stderr, "ddbench:", err)
		return 1
	}
	merged := bench.Summary{}
	for _, s := range all {
		for k, v := range s {
			merged[k] = v
		}
	}
	return checkBaseline(merged)
}
