package cli

import (
	"flag"
	"fmt"
	"io"

	"quantumdd/internal/bench"
)

// RunDdbench is the ddbench tool: regenerate the paper's experiments.
func RunDdbench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "run only the experiment with this ID (e.g. E6)")
	list := fs.Bool("list", false, "list experiments and exit")
	metricsDump := fs.Bool("metrics-dump", false, "print a Prometheus metrics snapshot of the engines after the run")
	traceOut := fs.String("trace-out", "", "write the run's span timeline to this file as Chrome trace-event JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *metricsDump {
		// The experiments build their engines internally; the tracer
		// still reaches them through the process-wide default, so the
		// dump carries the op-latency histograms of the whole run.
		md := newMetricsDumper()
		defer md.dump(stdout)
	}
	if *traceOut != "" {
		// Experiments don't thread a context, so the timeline is the
		// root span with every engine operation as a direct child —
		// still enough to see where a regenerated experiment spends
		// its time, op by op.
		to := newTraceOutput(*traceOut, "ddbench")
		defer to.finish(stderr)
	}
	if *list {
		for _, e := range bench.All() {
			fmt.Fprintf(stdout, "%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "ddbench: unknown experiment %q (use -list)\n", *exp)
			return 2
		}
		fmt.Fprintf(stdout, "=== %s: %s ===\npaper: %s\n", e.ID, e.Title, e.Paper)
		s, err := e.Run(stdout)
		if err != nil {
			fmt.Fprintln(stderr, "ddbench:", err)
			return 1
		}
		bench.PrintSummary(stdout, s)
		return 0
	}
	if _, err := bench.RunAll(stdout); err != nil {
		fmt.Fprintln(stderr, "ddbench:", err)
		return 1
	}
	return 0
}
