package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quantumdd/internal/algorithms"
)

// readTraceFile decodes a -trace-out file and returns the span names.
func readTraceFile(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	var names []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			names = append(names, ev.Name)
		}
	}
	return names
}

func TestDdsimTraceOut(t *testing.T) {
	circ := writeTemp(t, "ghz.qasm", algorithms.GHZ(4).QASM())
	tracePath := filepath.Join(t.TempDir(), "run.trace.json")
	var out, errb strings.Builder
	if code := RunDdsim([]string{"-trace-out", tracePath, circ}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	names := readTraceFile(t, tracePath)
	joined := strings.Join(names, "\n")
	for _, want := range []string{"ddsim", "step:gate", "dd:applygate"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace lacks %q spans:\n%s", want, joined)
		}
	}
}

func TestDdsimTraceOutWithMetricsDump(t *testing.T) {
	// Both observers share the engine hook via the tee; the dump and
	// the trace file must each see the run.
	circ := writeTemp(t, "bell.qasm", bellQASM)
	tracePath := filepath.Join(t.TempDir(), "run.trace.json")
	var out, errb strings.Builder
	if code := RunDdsim([]string{"-metrics-dump", "-trace-out", tracePath, circ}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "# metrics snapshot") {
		t.Fatalf("metrics dump missing:\n%s", out.String())
	}
	if strings.Contains(out.String(), `dd_op_duration_seconds_count{op="applygate"} 0`) {
		t.Fatalf("metrics tracer lost behind the tee:\n%s", out.String())
	}
	names := readTraceFile(t, tracePath)
	if !strings.Contains(strings.Join(names, "\n"), "dd:applygate") {
		t.Fatalf("trace recorder lost behind the tee: %v", names)
	}
}

func TestDdverifyTraceOut(t *testing.T) {
	left := writeTemp(t, "qft.qasm", algorithms.QFT(3).QASM())
	right := writeTemp(t, "qftc.qasm", algorithms.QFTCompiled(3).QASM())
	tracePath := filepath.Join(t.TempDir(), "verify.trace.json")
	var out, errb strings.Builder
	if code := RunDdverify([]string{"-trace-out", tracePath, left, right}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	joined := strings.Join(readTraceFile(t, tracePath), "\n")
	for _, want := range []string{"ddverify", "verify-round:", "dd:applygatem"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace lacks %q spans:\n%s", want, joined)
		}
	}
}
