package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quantumdd/internal/algorithms"
)

// writeTemp writes content to a temp file and returns its path.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const bellQASM = "qreg q[2];\ncreg c[2];\nh q[1];\ncx q[1],q[0];\nmeasure q -> c;\n"

func TestDdsimBasicRun(t *testing.T) {
	path := writeTemp(t, "bell.qasm", bellQASM)
	var out, errb strings.Builder
	code := RunDdsim([]string{"-seed", "3", "-shots", "100", "-amplitudes", "-trace", "-stats", "-draw", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	o := out.String()
	for _, want := range []string{
		"circuit: 2 qubits", "classical register", "final DD:",
		"samples (100 shots):", "root --(", "dd stats:", "gates: cx=1 h=1",
	} {
		if !strings.Contains(o, want) {
			t.Fatalf("output missing %q:\n%s", want, o)
		}
	}
	// Measurements collapse the Bell state: both classical bits agree.
	if !strings.Contains(o, "c[0]=0 c[1]=0") && !strings.Contains(o, "c[0]=1 c[1]=1") {
		t.Fatalf("Bell outcomes disagree:\n%s", o)
	}
}

func TestDdsimRealInput(t *testing.T) {
	path := writeTemp(t, "toff.real", ".numvars 3\n.variables a b c\n.begin\nt1 a\nt1 b\nt3 a b c\n.end\n")
	var out, errb strings.Builder
	if code := RunDdsim([]string{"-amplitudes", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	// |111> after X, X, CCX.
	if !strings.Contains(out.String(), "|111>") {
		t.Fatalf("toffoli result wrong:\n%s", out.String())
	}
}

func TestDdsimErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := RunDdsim([]string{}, &out, &errb); code != 2 {
		t.Fatalf("missing file arg: exit %d", code)
	}
	if code := RunDdsim([]string{"/nonexistent/file.qasm"}, &out, &errb); code != 1 {
		t.Fatalf("missing file: exit %d", code)
	}
	bad := writeTemp(t, "bad.qasm", "this is not qasm")
	if code := RunDdsim([]string{bad}, &out, &errb); code != 1 {
		t.Fatalf("parse error: exit %d", code)
	}
	big := writeTemp(t, "big.qasm", "qreg q[20];\nh q[0];\n")
	if code := RunDdsim([]string{"-amplitudes", big}, &out, &errb); code != 1 {
		t.Fatalf("dense-expansion guard: exit %d", code)
	}
	if code := RunDdsim([]string{"-badflag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
}

func TestDdverifyEquivalentPair(t *testing.T) {
	left := writeTemp(t, "qft.qasm", algorithms.QFT(3).QASM())
	right := writeTemp(t, "qftc.qasm", algorithms.QFTCompiled(3).QASM())
	var out, errb strings.Builder
	code := RunDdverify([]string{"-strategy", "proportional", "-trace", left, right}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	if !strings.Contains(o, "result: EQUIVALENT") {
		t.Fatalf("missing verdict:\n%s", o)
	}
	if !strings.Contains(o, "peak 9 nodes") {
		t.Fatalf("Ex. 12 peak not reported:\n%s", o)
	}
	if !strings.Contains(o, "G'") {
		t.Fatalf("trace missing:\n%s", o)
	}
}

func TestDdverifyNonEquivalent(t *testing.T) {
	left := writeTemp(t, "a.qasm", "qreg q[2];\nx q[0];\n")
	right := writeTemp(t, "b.qasm", "qreg q[2];\nx q[1];\n")
	var out, errb strings.Builder
	code := RunDdverify([]string{"-diagnose", left, right}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	o := out.String()
	if !strings.Contains(o, "NOT EQUIVALENT") || !strings.Contains(o, "counterexample:") {
		t.Fatalf("diagnosis missing:\n%s", o)
	}
	if !strings.Contains(o, "Hilbert-Schmidt overlap") {
		t.Fatalf("overlap missing:\n%s", o)
	}
}

func TestDdverifyErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := RunDdverify([]string{"one-arg-only"}, &out, &errb); code != 2 {
		t.Fatalf("arg count: exit %d", code)
	}
	a := writeTemp(t, "a.qasm", "qreg q[1];\nh q[0];\n")
	b := writeTemp(t, "b.qasm", "qreg q[1];\nh q[0];\n")
	if code := RunDdverify([]string{"-strategy", "bogus", a, b}, &out, &errb); code != 2 {
		t.Fatalf("bad strategy: exit %d", code)
	}
	if code := RunDdverify([]string{a, "/nonexistent"}, &out, &errb); code != 2 {
		t.Fatalf("missing file: exit %d", code)
	}
	measured := writeTemp(t, "m.qasm", "qreg q[1];\ncreg c[1];\nmeasure q[0]->c[0];\n")
	if code := RunDdverify([]string{a, measured}, &out, &errb); code != 2 {
		t.Fatalf("non-unitary: exit %d", code)
	}
}

func TestDddrawOutputs(t *testing.T) {
	circ := writeTemp(t, "bell.qasm", "qreg q[2];\nh q[1];\ncx q[1],q[0];\n")
	var out, errb strings.Builder
	if code := RunDddraw([]string{circ}, &out, &errb); code != 0 {
		t.Fatalf("svg: exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "<svg") {
		t.Fatal("stdout not SVG")
	}
	// DOT file output.
	dotPath := filepath.Join(t.TempDir(), "dd.dot")
	out.Reset()
	if code := RunDddraw([]string{"-out", dotPath, circ}, &out, &errb); code != 0 {
		t.Fatalf("dot: exit %d", code)
	}
	data, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph dd") {
		t.Fatal("dot file wrong")
	}
	// ASCII output.
	txtPath := filepath.Join(t.TempDir(), "dd.txt")
	if code := RunDddraw([]string{"-what", "functionality", "-out", txtPath, circ}, &out, &errb); code != 0 {
		t.Fatalf("txt: exit %d", code)
	}
	data, err = os.ReadFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "root --(") {
		t.Fatalf("txt file wrong: %s", data)
	}
	// Color wheel.
	out.Reset()
	if code := RunDddraw([]string{"-colorwheel"}, &out, &errb); code != 0 {
		t.Fatal("colorwheel failed")
	}
	if !strings.Contains(out.String(), "<svg") {
		t.Fatal("wheel not SVG")
	}
}

func TestDddrawShapeReport(t *testing.T) {
	circ := writeTemp(t, "bell.qasm", "qreg q[2];\nh q[1];\ncx q[1],q[0];\n")
	var out, errb strings.Builder
	if code := RunDddraw([]string{"-shape", circ}, &out, &errb); code != 0 {
		t.Fatalf("state shape: exit %d: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"shape: vector DD, 2 levels",
		"sharing:",
		"level  nodes  edges  ut-load  occupancy",
		"edge-weight magnitudes",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("state shape report lacks %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "identity padding") {
		t.Error("vector report must not carry the identity-padding row")
	}
	out.Reset()
	if code := RunDddraw([]string{"-what", "functionality", "-shape", circ}, &out, &errb); code != 0 {
		t.Fatalf("functionality shape: exit %d: %s", code, errb.String())
	}
	got = out.String()
	if !strings.Contains(got, "shape: matrix DD, 2 levels") || !strings.Contains(got, "identity padding:") {
		t.Errorf("functionality shape report wrong:\n%s", got)
	}
}

func TestDddrawErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := RunDddraw([]string{}, &out, &errb); code != 2 {
		t.Fatalf("missing arg: exit %d", code)
	}
	circ := writeTemp(t, "c.qasm", "qreg q[1];\nh q[0];\n")
	if code := RunDddraw([]string{"-style", "cubist", circ}, &out, &errb); code != 2 {
		t.Fatalf("bad style: exit %d", code)
	}
	if code := RunDddraw([]string{"-what", "banana", circ}, &out, &errb); code != 2 {
		t.Fatalf("bad what: exit %d", code)
	}
	measured := writeTemp(t, "m.qasm", "qreg q[1];\ncreg c[1];\nmeasure q[0]->c[0];\n")
	if code := RunDddraw([]string{"-what", "functionality", measured}, &out, &errb); code != 1 {
		t.Fatalf("non-unitary functionality: exit %d", code)
	}
}

func TestDdbenchListAndSingle(t *testing.T) {
	var out, errb strings.Builder
	if code := RunDdbench([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatal("list failed")
	}
	if !strings.Contains(out.String(), "E6") || !strings.Contains(out.String(), "A4") {
		t.Fatalf("list incomplete:\n%s", out.String())
	}
	out.Reset()
	if code := RunDdbench([]string{"-exp", "E1"}, &out, &errb); code != 0 {
		t.Fatal("E1 failed")
	}
	if !strings.Contains(out.String(), "DD nodes") {
		t.Fatalf("E1 output wrong:\n%s", out.String())
	}
	if code := RunDdbench([]string{"-exp", "E99"}, &out, &errb); code != 2 {
		t.Fatal("unknown experiment accepted")
	}
}

func TestParseStrategyNames(t *testing.T) {
	for _, name := range []string{"construction", "sequential", "one-to-one", "onetoone", "proportional", "lookahead"} {
		if _, err := ParseStrategy(name); err != nil {
			t.Fatalf("strategy %q rejected", name)
		}
	}
	if _, err := ParseStrategy("x"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestDdconvertRealToQASM(t *testing.T) {
	path := writeTemp(t, "net.real", ".numvars 3\n.variables a b c\n.begin\nt3 a b c\nt2 -a b\nf3 a b c\n.end\n")
	var out, errb strings.Builder
	code := RunDdconvert([]string{"-to", "qasm", "-check", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, want := range []string{"OPENQASM 2.0;", "ccx", "cswap q[0],q[1],q[2];"} {
		if !strings.Contains(o, want) {
			t.Fatalf("qasm output missing %q:\n%s", want, o)
		}
	}
	// Negative control must be conjugated with X gates.
	if strings.Count(o, "x q[0];") < 2 {
		t.Fatalf("negative control not X-conjugated:\n%s", o)
	}
	if !strings.Contains(errb.String(), "verified equivalent") {
		t.Fatalf("check did not run: %s", errb.String())
	}
}

func TestDdconvertQASMToReal(t *testing.T) {
	path := writeTemp(t, "toff.qasm", "qreg q[3];\nccx q[0],q[1],q[2];\ncx q[1],q[0];\nx q[2];\n")
	var out, errb strings.Builder
	code := RunDdconvert([]string{"-to", "real", "-check", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, want := range []string{".numvars 3", "t3 x0 x1 x2", "t2 x1 x0", "t1 x2", ".end"} {
		if !strings.Contains(o, want) {
			t.Fatalf("real output missing %q:\n%s", want, o)
		}
	}
}

func TestDdconvertErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := RunDdconvert([]string{}, &out, &errb); code != 2 {
		t.Fatalf("missing arg: exit %d", code)
	}
	path := writeTemp(t, "h.qasm", "qreg q[1];\nh q[0];\n")
	if code := RunDdconvert([]string{"-to", "real", path}, &out, &errb); code != 1 {
		t.Fatalf("H to .real should fail: exit %d", code)
	}
	if code := RunDdconvert([]string{"-to", "xml", path}, &out, &errb); code != 2 {
		t.Fatalf("bad target: exit %d", code)
	}
}

func TestDddrawAnimate(t *testing.T) {
	circ := writeTemp(t, "bell.qasm", "qreg q[2];\nh q[1];\ncx q[1],q[0];\n")
	var out, errb strings.Builder
	if code := RunDddraw([]string{"-animate", "-framedur", "0.5", circ}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if strings.Count(out.String(), "<set attributeName=\"visibility\"") != 3 {
		t.Fatalf("expected 3 animation frames (init + 2 gates)")
	}
}

func TestDdsimNoiseMode(t *testing.T) {
	path := writeTemp(t, "ghz.qasm", "qreg q[3];\nh q[2];\ncx q[2],q[1];\ncx q[1],q[0];\n")
	var out, errb strings.Builder
	code := RunDdsim([]string{"-noise", "0.05", "-trajectories", "300", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	if !strings.Contains(o, "noisy simulation: 300 trajectories") {
		t.Fatalf("missing noise header:\n%s", o)
	}
	if !strings.Contains(o, "|000>") {
		t.Fatalf("missing dominant outcome:\n%s", o)
	}
	if code := RunDdsim([]string{"-noise", "2", path}, &out, &errb); code != 1 {
		t.Fatalf("invalid noise accepted: exit %d", code)
	}
}

func TestDdconvertFileOutput(t *testing.T) {
	path := writeTemp(t, "toff.qasm", "qreg q[2];\ncx q[0],q[1];\n")
	outPath := filepath.Join(t.TempDir(), "out.real")
	var out, errb strings.Builder
	if code := RunDdconvert([]string{"-to", "real", "-out", outPath, path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "t2 x0 x1") {
		t.Fatalf("converted file wrong:\n%s", data)
	}
	if code := RunDdconvert([]string{"-out", "/no/such/dir/x.qasm", path}, &out, &errb); code != 1 {
		t.Fatalf("unwritable output accepted: exit %d", code)
	}
	if code := RunDdconvert([]string{"/nonexistent.qasm"}, &out, &errb); code != 1 {
		t.Fatalf("missing input accepted: exit %d", code)
	}
	// -check on a circuit with measurements is skipped with a note.
	m := writeTemp(t, "m.qasm", "qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\n")
	errb.Reset()
	if code := RunDdconvert([]string{"-to", "qasm", "-check", m}, &out, &errb); code != 0 {
		t.Fatalf("measured circuit conversion failed: exit %d", code)
	}
	if !strings.Contains(errb.String(), "-check skipped") {
		t.Fatalf("skip note missing: %s", errb.String())
	}
}
