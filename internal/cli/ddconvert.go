package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"quantumdd/internal/core"
	"quantumdd/internal/dd"
	"quantumdd/internal/realfmt"
	"quantumdd/internal/sim"
	"quantumdd/internal/snapshot"
	"quantumdd/internal/verify"
)

// RunDdconvert is the ddconvert tool: translate circuits between the
// tool's two input formats (OpenQASM 2.0 and RevLib .real), optionally
// re-verifying that the translation preserved the functionality. It
// also speaks the durable session snapshot format of internal/snapshot:
// -write-snapshot simulates the circuit and exports the final state as
// a checksummed snapshot, -inspect-snapshot validates one and prints a
// summary (extracting the embedded circuit with -out).
func RunDdconvert(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddconvert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	to := fs.String("to", "qasm", "target format: qasm | real")
	check := fs.Bool("check", false, "verify the output is equivalent to the input (DD-based)")
	out := fs.String("out", "", "output file (default: stdout)")
	format := fs.String("format", "", "input format: qasm, real, or auto")
	seed := fs.Int64("seed", 1, "measurement seed for -write-snapshot")
	writeSnap := fs.String("write-snapshot", "", "simulate the circuit and write the final state as a checksummed session snapshot to this file")
	inspectSnap := fs.Bool("inspect-snapshot", false, "treat the argument as a session snapshot: validate it and print a summary; with -out, extract the embedded circuit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ddconvert [-to qasm|real] [-check] [-write-snapshot file] [-inspect-snapshot] <circuit|snapshot>")
		fs.PrintDefaults()
		return 2
	}
	if *inspectSnap {
		return ddconvertInspectSnapshot(fs.Arg(0), *out, stdout, stderr)
	}
	if *writeSnap != "" {
		return ddconvertWriteSnapshot(fs.Arg(0), *format, *seed, *writeSnap, stderr)
	}
	circ, err := core.LoadCircuitFile(fs.Arg(0), *format)
	if err != nil {
		fmt.Fprintln(stderr, "ddconvert:", err)
		return 1
	}
	var rendered string
	switch *to {
	case "qasm":
		rendered = circ.QASM()
	case "real":
		rendered, err = realfmt.WriteString(circ)
		if err != nil {
			fmt.Fprintln(stderr, "ddconvert:", err)
			return 1
		}
	default:
		fmt.Fprintf(stderr, "ddconvert: unknown target format %q\n", *to)
		return 2
	}
	if *check {
		back, err := core.LoadCircuit(rendered, *to)
		if err != nil {
			fmt.Fprintf(stderr, "ddconvert: output does not re-parse: %v\n", err)
			return 1
		}
		if circ.HasNonUnitary() {
			fmt.Fprintln(stderr, "ddconvert: -check skipped (circuit contains non-unitary operations)")
		} else {
			res, err := verify.Check(circ, back, verify.Proportional)
			if err != nil {
				fmt.Fprintln(stderr, "ddconvert:", err)
				return 1
			}
			if !res.Equivalent {
				fmt.Fprintln(stderr, "ddconvert: translation changed the functionality!")
				return 1
			}
			fmt.Fprintln(stderr, "check: translation verified equivalent")
		}
	}
	if *out == "" {
		fmt.Fprint(stdout, rendered)
		return 0
	}
	if err := os.WriteFile(*out, []byte(rendered), 0o644); err != nil {
		fmt.Fprintln(stderr, "ddconvert:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s (%d bytes)\n", *out, len(rendered))
	return 0
}

// ddconvertWriteSnapshot simulates the circuit to the end and writes
// the final state as a checksummed session snapshot — the same format
// the web tool spills evicted sessions in, so the file can seed a
// ddvis spill directory or travel between machines.
func ddconvertWriteSnapshot(path, format string, seed int64, outPath string, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "ddconvert:", err)
		return 1
	}
	src := string(data)
	// Parse from the source text (not the file path): the snapshot must
	// embed a self-contained circuit that restores anywhere.
	circ, err := core.LoadCircuit(src, format)
	if err != nil {
		fmt.Fprintf(stderr, "ddconvert: circuit is not self-contained, cannot snapshot: %v\n", err)
		return 1
	}
	s := sim.New(circ, sim.WithSeed(seed))
	if _, err := s.RunToEnd(); err != nil {
		fmt.Fprintln(stderr, "ddconvert: simulate:", err)
		return 1
	}
	blob := snapshot.EncodeSim(&snapshot.Sim{
		Source:    src,
		Format:    format,
		Seed:      seed,
		Pos:       s.Pos(),
		Classical: s.Classical(),
		PeakNodes: s.PeakNodes(),
		State:     s.Pkg().AppendVectorBinary(nil, s.State()),
	})
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		fmt.Fprintln(stderr, "ddconvert:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote snapshot %s (%d bytes, %d qubits, pos %d, %d nodes)\n",
		outPath, len(blob), circ.NQubits, s.Pos(), dd.SizeV(s.State()))
	return 0
}

// ddconvertInspectSnapshot validates a snapshot file — envelope
// checksum, payload format, and a full decode of the embedded decision
// diagram — and prints a summary. With outPath set, the embedded
// circuit source is extracted (the left circuit for verification
// snapshots). Exit status 1 means the snapshot is damaged or invalid.
func ddconvertInspectSnapshot(path, outPath string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "ddconvert:", err)
		return 1
	}
	simSnap, verSnap, err := snapshot.Decode(data)
	if err != nil {
		fmt.Fprintln(stderr, "ddconvert: snapshot rejected:", err)
		return 1
	}
	var source string
	switch {
	case simSnap != nil:
		circ, err := core.LoadCircuit(simSnap.Source, simSnap.Format)
		if err != nil {
			fmt.Fprintln(stderr, "ddconvert: embedded circuit does not parse:", err)
			return 1
		}
		p := dd.New(circ.NQubits)
		state, err := p.DecodeVectorBinary(simSnap.State)
		if err != nil {
			fmt.Fprintln(stderr, "ddconvert: embedded state does not decode:", err)
			return 1
		}
		fmt.Fprintf(stdout, "kind:      simulation\nformat:    %s\nqubits:    %d\nops:       %d\nposition:  %d\nclassical: %v\nnodes:     %d\nbytes:     %d\n",
			orAuto(simSnap.Format), circ.NQubits, len(circ.Ops), simSnap.Pos, simSnap.Classical, dd.SizeV(state), len(data))
		source = simSnap.Source
	case verSnap != nil:
		left, err := core.LoadCircuit(verSnap.LeftSource, verSnap.LeftFormat)
		if err != nil {
			fmt.Fprintln(stderr, "ddconvert: embedded left circuit does not parse:", err)
			return 1
		}
		if _, err := core.LoadCircuit(verSnap.RightSource, verSnap.RightFormat); err != nil {
			fmt.Fprintln(stderr, "ddconvert: embedded right circuit does not parse:", err)
			return 1
		}
		p := dd.New(left.NQubits)
		x, err := p.DecodeMatrixBinary(verSnap.X)
		if err != nil {
			fmt.Fprintln(stderr, "ddconvert: embedded diagram does not decode:", err)
			return 1
		}
		fmt.Fprintf(stdout, "kind:      verification\nformat:    %s\nqubits:    %d\npositions: left %d, right %d\nnodes:     %d\nbytes:     %d\n",
			orAuto(verSnap.LeftFormat), left.NQubits, verSnap.LI, verSnap.RI, dd.SizeM(x), len(data))
		source = verSnap.LeftSource
	}
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(source), 0o644); err != nil {
			fmt.Fprintln(stderr, "ddconvert:", err)
			return 1
		}
		fmt.Fprintf(stderr, "extracted circuit to %s (%d bytes)\n", outPath, len(source))
	}
	return 0
}

// orAuto renders an empty (auto-detected) format label readably.
func orAuto(format string) string {
	if format == "" {
		return "auto"
	}
	return format
}
