package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"quantumdd/internal/core"
	"quantumdd/internal/realfmt"
	"quantumdd/internal/verify"
)

// RunDdconvert is the ddconvert tool: translate circuits between the
// tool's two input formats (OpenQASM 2.0 and RevLib .real), optionally
// re-verifying that the translation preserved the functionality.
func RunDdconvert(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddconvert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	to := fs.String("to", "qasm", "target format: qasm | real")
	check := fs.Bool("check", false, "verify the output is equivalent to the input (DD-based)")
	out := fs.String("out", "", "output file (default: stdout)")
	format := fs.String("format", "", "input format: qasm, real, or auto")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ddconvert [-to qasm|real] [-check] <circuit>")
		fs.PrintDefaults()
		return 2
	}
	circ, err := core.LoadCircuitFile(fs.Arg(0), *format)
	if err != nil {
		fmt.Fprintln(stderr, "ddconvert:", err)
		return 1
	}
	var rendered string
	switch *to {
	case "qasm":
		rendered = circ.QASM()
	case "real":
		rendered, err = realfmt.WriteString(circ)
		if err != nil {
			fmt.Fprintln(stderr, "ddconvert:", err)
			return 1
		}
	default:
		fmt.Fprintf(stderr, "ddconvert: unknown target format %q\n", *to)
		return 2
	}
	if *check {
		back, err := core.LoadCircuit(rendered, *to)
		if err != nil {
			fmt.Fprintf(stderr, "ddconvert: output does not re-parse: %v\n", err)
			return 1
		}
		if circ.HasNonUnitary() {
			fmt.Fprintln(stderr, "ddconvert: -check skipped (circuit contains non-unitary operations)")
		} else {
			res, err := verify.Check(circ, back, verify.Proportional)
			if err != nil {
				fmt.Fprintln(stderr, "ddconvert:", err)
				return 1
			}
			if !res.Equivalent {
				fmt.Fprintln(stderr, "ddconvert: translation changed the functionality!")
				return 1
			}
			fmt.Fprintln(stderr, "check: translation verified equivalent")
		}
	}
	if *out == "" {
		fmt.Fprint(stdout, rendered)
		return 0
	}
	if err := os.WriteFile(*out, []byte(rendered), 0o644); err != nil {
		fmt.Fprintln(stderr, "ddconvert:", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s (%d bytes)\n", *out, len(rendered))
	return 0
}
