package cli

// -metrics-dump support shared by the CLI tools: a private registry
// fed by the process-wide engine tracer, printed as a Prometheus text
// snapshot when the run finishes. The tools and the web server expose
// the same metric families, so a run's numbers can be compared
// directly against a production scrape.

import (
	"fmt"
	"io"

	"quantumdd/internal/dd"
	"quantumdd/internal/obs"
)

type metricsDumper struct {
	reg  *obs.Registry
	coll *obs.DDCollector
	agg  dd.Stats
	pkgs int
}

// newMetricsDumper installs a process-wide default tracer feeding a
// fresh registry, so every dd.Pkg the run creates — including ones
// built deep inside the sim/verify/bench harnesses — reports its
// operation latencies here.
func newMetricsDumper() *metricsDumper {
	reg := obs.NewRegistry()
	coll := obs.NewDDCollector(reg)
	dd.SetDefaultTracer(coll.Tracer())
	return &metricsDumper{reg: reg, coll: coll}
}

// record folds one engine's final statistics into the gauge view.
// Only packages the tool holds a handle on can be recorded; latency
// histograms cover every package regardless.
func (m *metricsDumper) record(st dd.Stats) {
	m.agg = obs.AddStats(m.agg, st)
	m.pkgs++
}

// dump detaches the tracer and writes the Prometheus snapshot.
func (m *metricsDumper) dump(w io.Writer) {
	dd.SetDefaultTracer(nil)
	if m.pkgs > 1 {
		// Load factors are per-package ratios; expose the mean.
		m.agg.UniqueLoadV /= float64(m.pkgs)
		m.agg.UniqueLoadM /= float64(m.pkgs)
	}
	m.coll.Record(m.agg)
	fmt.Fprintln(w, "# metrics snapshot (Prometheus text format)")
	_ = m.reg.WritePrometheus(w)
}
