package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"quantumdd/internal/core"
	"quantumdd/internal/dd"
	"quantumdd/internal/sim"
	"quantumdd/internal/vis"
)

// RunDddraw is the dddraw tool: render a circuit's final-state or
// functionality diagram to SVG/DOT/ASCII, or emit the color wheel.
func RunDddraw(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dddraw", flag.ContinueOnError)
	fs.SetOutput(stderr)
	what := fs.String("what", "state", "state | functionality")
	styleName := fs.String("style", "classic", "classic | colored | modern")
	out := fs.String("out", "", "output file (default: stdout); .dot selects DOT, .txt ASCII")
	formatFlag := fs.String("format", "", "input format: qasm, real, or auto")
	seed := fs.Int64("seed", 1, "measurement sampling seed (state mode)")
	wheel := fs.Bool("colorwheel", false, "emit the HLS phase color wheel instead of a diagram")
	shape := fs.Bool("shape", false, "print an ASCII structural profile (per-level occupancy, sharing, identity padding) instead of rendering")
	animate := fs.Bool("animate", false, "emit a SMIL-animated SVG cycling one frame per simulation step")
	frameDur := fs.Float64("framedur", 1.0, "seconds per animation frame")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	emit := func(content string) int {
		if *out == "" {
			fmt.Fprint(stdout, content)
			return 0
		}
		if err := os.WriteFile(*out, []byte(content), 0o644); err != nil {
			fmt.Fprintln(stderr, "dddraw:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s (%d bytes)\n", *out, len(content))
		return 0
	}
	if *wheel {
		return emit(vis.ColorWheelSVG(200))
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: dddraw [flags] <circuit.qasm|circuit.real>")
		fs.PrintDefaults()
		return 2
	}
	style, err := core.StyleByName(*styleName)
	if err != nil {
		fmt.Fprintln(stderr, "dddraw:", err)
		return 2
	}
	circ, err := core.LoadCircuitFile(fs.Arg(0), *formatFlag)
	if err != nil {
		fmt.Fprintln(stderr, "dddraw:", err)
		return 1
	}
	if *animate {
		frames, err := core.SimulationFrames(circ, *seed, style)
		if err != nil {
			fmt.Fprintln(stderr, "dddraw:", err)
			return 1
		}
		anim, err := vis.AnimationSVG(frames, *frameDur)
		if err != nil {
			fmt.Fprintln(stderr, "dddraw:", err)
			return 1
		}
		return emit(anim)
	}
	var g *vis.Graph
	switch *what {
	case "state":
		s := sim.New(circ, sim.WithSeed(*seed))
		if _, err := s.RunToEnd(); err != nil {
			fmt.Fprintln(stderr, "dddraw:", err)
			return 1
		}
		if *shape {
			prof := s.Pkg().ShapeV(s.State())
			return emit(shapeReport(&prof))
		}
		fmt.Fprintf(stderr, "final state: %d nodes\n", dd.SizeV(s.State()))
		g = vis.FromVector(s.State())
	case "functionality":
		u, p, err := core.Functionality(circ)
		if err != nil {
			fmt.Fprintln(stderr, "dddraw:", err)
			return 1
		}
		if *shape {
			prof := p.ShapeM(u)
			return emit(shapeReport(&prof))
		}
		fmt.Fprintf(stderr, "functionality: %d nodes\n", dd.SizeM(u))
		g = vis.FromMatrix(u)
	default:
		fmt.Fprintf(stderr, "dddraw: unknown -what %q (want state or functionality)\n", *what)
		return 2
	}
	switch {
	case strings.HasSuffix(*out, ".dot"):
		return emit(g.DOT(style))
	case strings.HasSuffix(*out, ".txt"):
		return emit(g.Text())
	default:
		return emit(g.SVG(style))
	}
}
