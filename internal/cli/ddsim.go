// Package cli implements the command-line tools as testable entry
// points: each Run* function parses its own flag set, writes to the
// supplied streams, and returns a process exit code. The thin mains
// under cmd/ delegate here.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/cmplx"
	"math/rand"
	"sort"

	"quantumdd/internal/cnum"
	"quantumdd/internal/core"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
	"quantumdd/internal/vis"
)

// RunDdsim is the ddsim tool: simulate a circuit file on decision
// diagrams and report results.
func RunDdsim(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "measurement sampling seed")
	shots := fs.Int("shots", 0, "sample the final state this many times")
	amplitudes := fs.Bool("amplitudes", false, "print the dense final state (small circuits)")
	trace := fs.Bool("trace", false, "print one line per executed operation")
	stats := fs.Bool("stats", false, "print circuit and DD statistics")
	draw := fs.Bool("draw", false, "print the final decision diagram as ASCII")
	format := fs.String("format", "", "input format: qasm, real, or auto")
	noise := fs.Float64("noise", 0, "depolarizing noise probability per gate operand (enables trajectory mode)")
	trajectories := fs.Int("trajectories", 1000, "Monte-Carlo trajectories in noise mode")
	workers := fs.Int("workers", 0, "trajectory pool width in noise mode (0 = GOMAXPROCS, 1 = sequential; results are bit-identical)")
	metricsDump := fs.Bool("metrics-dump", false, "print a Prometheus metrics snapshot of the engine after the run")
	traceOut := fs.String("trace-out", "", "write the run's span timeline to this file as Chrome trace-event JSON")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ddsim [flags] <circuit.qasm|circuit.real>")
		fs.PrintDefaults()
		return 2
	}
	circ, err := core.LoadCircuitFile(fs.Arg(0), *format)
	if err != nil {
		fmt.Fprintln(stderr, "ddsim:", err)
		return 1
	}
	var md *metricsDumper
	if *metricsDump {
		md = newMetricsDumper()
		defer md.dump(stdout)
	}
	// After the dumper: finish() runs first on exit (LIFO), restoring
	// the dumper's tracer before the dump detaches it.
	var to *traceOutput
	if *traceOut != "" {
		to = newTraceOutput(*traceOut, "ddsim")
		defer to.finish(stderr)
	}
	if *noise > 0 {
		return runDdsimNoisy(circ, *noise, *trajectories, *workers, *seed, stdout, stderr)
	}
	return runDdsimOn(to.context(), circ, *seed, *shots, *amplitudes, *trace, *stats, *draw, md, stdout, stderr)
}

// runDdsimNoisy aggregates Monte-Carlo trajectories under depolarizing
// noise on the replica pool and prints the resulting distribution.
func runDdsimNoisy(circ *qc.Circuit, p float64, trajectories, workers int, seed int64, stdout, stderr io.Writer) int {
	res, err := sim.RunNoisy(circ, sim.NoiseModel{Depolarizing: p}, trajectories, seed, sim.WithWorkers(workers))
	if err != nil {
		fmt.Fprintln(stderr, "ddsim:", err)
		return 1
	}
	fmt.Fprintf(stdout, "noisy simulation: %d trajectories on %d workers, depolarizing p=%g, %d error events, mean %d-qubit DD %.1f nodes\n",
		res.Trajectories, res.Workers, p, res.ErrorEvents, circ.NQubits, res.MeanNodes)
	type kv struct {
		idx int64
		n   int
	}
	var rows []kv
	for idx, n := range res.Counts {
		rows = append(rows, kv{idx, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].idx < rows[j].idx
	})
	shown := 0
	for _, r := range rows {
		fmt.Fprintf(stdout, "  |%0*b>  %6d  (%.2f%%)\n", circ.NQubits, r.idx, r.n, 100*float64(r.n)/float64(res.Trajectories))
		shown++
		if shown >= 16 {
			fmt.Fprintf(stdout, "  … %d more outcomes\n", len(rows)-shown)
			break
		}
	}
	return 0
}

func runDdsimOn(ctx context.Context, circ *qc.Circuit, seed int64, shots int, amplitudes, trace, stats, draw bool, md *metricsDumper, stdout, stderr io.Writer) int {
	fmt.Fprintf(stdout, "circuit: %d qubits, %d classical bits, %d operations (%d gates)\n",
		circ.NQubits, circ.NClbits, len(circ.Ops), circ.NumGates())

	s := sim.New(circ, sim.WithSeed(seed))
	if md != nil {
		defer func() { md.record(s.Pkg().Stats()) }()
	}
	for !s.AtEnd() {
		ev, err := s.StepForwardCtx(ctx)
		if err != nil {
			fmt.Fprintln(stderr, "ddsim:", err)
			return 1
		}
		if trace && ev.Op != nil {
			fmt.Fprintf(stdout, "  op %3d  %-32s nodes=%d\n", ev.OpIndex, ev.Op.String(), dd.SizeV(s.State()))
		}
	}
	if circ.NClbits > 0 {
		fmt.Fprint(stdout, "classical register (c[i], -1 = never measured):")
		for i, b := range s.Classical() {
			fmt.Fprintf(stdout, " c[%d]=%d", i, b)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "final DD: %d nodes, peak %d nodes (dense state would hold %d amplitudes)\n",
		dd.SizeV(s.State()), s.PeakNodes(), int64(1)<<uint(circ.NQubits))

	if amplitudes {
		if circ.NQubits > 16 {
			fmt.Fprintf(stderr, "ddsim: refusing to expand %d qubits densely (limit 16)\n", circ.NQubits)
			return 1
		}
		for idx, a := range s.Amplitudes() {
			if cmplx.Abs(a) < 1e-12 {
				continue
			}
			fmt.Fprintf(stdout, "  |%0*b>  %s\n", circ.NQubits, idx, cnum.FormatComplex(a))
		}
	}
	if shots > 0 {
		counts := dd.SampleCounts(s.State(), shots, rand.New(rand.NewSource(seed)))
		type kv struct {
			idx int64
			n   int
		}
		var rows []kv
		for idx, n := range counts {
			rows = append(rows, kv{idx, n})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].n != rows[j].n {
				return rows[i].n > rows[j].n
			}
			return rows[i].idx < rows[j].idx
		})
		fmt.Fprintf(stdout, "samples (%d shots):\n", shots)
		for _, r := range rows {
			fmt.Fprintf(stdout, "  |%0*b>  %6d  (%.2f%%)\n", circ.NQubits, r.idx, r.n, 100*float64(r.n)/float64(shots))
		}
	}
	if draw {
		fmt.Fprint(stdout, vis.FromVector(s.State()).Text())
	}
	if stats {
		fmt.Fprint(stdout, "circuit stats: ", circStats(s))
		st := s.Pkg().Stats()
		fmt.Fprintf(stdout, "dd stats: vector nodes created=%d unique hits=%d cache hits=%d/%d gc runs=%d recycled=%d table load=%.2f\n",
			st.NodesCreatedV, st.UniqueHitsV, st.CacheHits, st.CacheLookups, st.GCRuns,
			st.NodesRecycledV+st.NodesRecycledM, st.UniqueLoadV)
	}
	return 0
}

func circStats(s *sim.Simulator) string {
	return statsString(s)
}
