package cli

import (
	"strings"
	"testing"

	"quantumdd/internal/algorithms"
)

func TestDdsimMetricsDump(t *testing.T) {
	path := writeTemp(t, "bell.qasm", bellQASM)
	var out, errb strings.Builder
	if code := RunDdsim([]string{"-metrics-dump", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	for _, want := range []string{
		"# metrics snapshot (Prometheus text format)",
		"# TYPE dd_op_duration_seconds histogram",
		`dd_op_duration_seconds_count{op="applygate"}`,
		"dd_compute_table_hit_ratio",
		"dd_nodes_live",
	} {
		if !strings.Contains(o, want) {
			t.Fatalf("dump missing %q:\n%s", want, o)
		}
	}
	// The simulator routed gates through the apply kernel, so its
	// histogram is nonempty and the engine's final stats landed in the
	// gauges.
	if strings.Contains(o, `dd_op_duration_seconds_count{op="applygate"} 0`) {
		t.Fatalf("applygate histogram empty after a run:\n%s", o)
	}
	if strings.Contains(o, "\ndd_nodes_live 0\n") {
		t.Fatalf("live-node gauge not recorded:\n%s", o)
	}
	// The snapshot prints after the regular report.
	if strings.Index(o, "final DD:") > strings.Index(o, "# metrics snapshot") {
		t.Fatalf("snapshot printed before the report:\n%s", o)
	}
}

func TestDdverifyMetricsDump(t *testing.T) {
	left := writeTemp(t, "qft.qasm", algorithms.QFT(3).QASM())
	right := writeTemp(t, "qftc.qasm", algorithms.QFTCompiled(3).QASM())
	var out, errb strings.Builder
	if code := RunDdverify([]string{"-metrics-dump", left, right}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	if !strings.Contains(o, "result: EQUIVALENT") {
		t.Fatalf("verdict missing:\n%s", o)
	}
	// Verification now runs on the matrix-apply kernel, so its
	// histogram must be hot and the generic multiply cold.
	if !strings.Contains(o, `dd_op_duration_seconds_count{op="applygatem"}`) {
		t.Fatalf("dump missing matrix-apply histogram:\n%s", o)
	}
	if strings.Contains(o, `dd_op_duration_seconds_count{op="applygatem"} 0`) {
		t.Fatalf("applygatem histogram empty after verification:\n%s", o)
	}
	if !strings.Contains(o, " kernel, 0 generic)") || strings.Contains(o, "(0 kernel,") {
		t.Fatalf("kernel/generic op split missing from report:\n%s", o)
	}

	// The -generic-mm oracle flips the split back to the baseline.
	out.Reset()
	errb.Reset()
	if code := RunDdverify([]string{"-metrics-dump", "-generic-mm", left, right}, &out, &errb); code != 0 {
		t.Fatalf("generic-mm exit %d: %s", code, errb.String())
	}
	o = out.String()
	if strings.Contains(o, `dd_op_duration_seconds_count{op="multmm"} 0`) {
		t.Fatalf("multmm histogram empty under -generic-mm:\n%s", o)
	}
	if !strings.Contains(o, "(0 kernel, ") || strings.Contains(o, " 0 generic)") {
		t.Fatalf("generic op split missing from report:\n%s", o)
	}
}

func TestDdbenchMetricsDump(t *testing.T) {
	var out, errb strings.Builder
	if code := RunDdbench([]string{"-metrics-dump", "-exp", "E6"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	o := out.String()
	if !strings.Contains(o, "# TYPE dd_op_duration_seconds histogram") {
		t.Fatalf("dump missing op histograms:\n%s", o)
	}
}
