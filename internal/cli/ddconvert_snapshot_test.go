package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDdconvertSnapshotRoundTrip(t *testing.T) {
	circ := writeTemp(t, "bell.qasm", bellQASM)
	snap := filepath.Join(t.TempDir(), "bell.snap")

	var out, errb strings.Builder
	if code := RunDdconvert([]string{"-seed", "7", "-write-snapshot", snap, circ}, &out, &errb); code != 0 {
		t.Fatalf("write-snapshot exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "wrote snapshot") {
		t.Fatalf("missing confirmation: %s", errb.String())
	}

	out.Reset()
	errb.Reset()
	extracted := filepath.Join(t.TempDir(), "extracted.qasm")
	if code := RunDdconvert([]string{"-inspect-snapshot", "-out", extracted, snap}, &out, &errb); code != 0 {
		t.Fatalf("inspect exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"kind:      simulation", "qubits:    2", "position:  4", "nodes:"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out.String())
		}
	}
	got, err := os.ReadFile(extracted)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != bellQASM {
		t.Fatalf("extracted circuit differs:\n%s", got)
	}
}

func TestDdconvertInspectRejectsCorruption(t *testing.T) {
	circ := writeTemp(t, "bell.qasm", bellQASM)
	snap := filepath.Join(t.TempDir(), "bell.snap")
	var out, errb strings.Builder
	if code := RunDdconvert([]string{"-write-snapshot", snap, circ}, &out, &errb); code != 0 {
		t.Fatalf("write-snapshot exit %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := RunDdconvert([]string{"-inspect-snapshot", snap}, &out, &errb); code != 1 {
		t.Fatalf("corrupt snapshot accepted (exit %d): %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "snapshot rejected") {
		t.Fatalf("unexpected error text: %s", errb.String())
	}
}
