package cli

// -trace-out support shared by the CLI tools: the whole run is
// captured in one flight recorder under a single root span and
// written as Chrome trace-event JSON on exit — the same format (and
// the same recorder) the web server exports per session, so a batch
// run and an interactive session are diffed in the same viewer.

import (
	"context"
	"fmt"
	"io"
	"os"

	"quantumdd/internal/dd"
	"quantumdd/internal/obs/trace"
)

// cliTraceCapacity sizes the CLI flight recorder well above the web
// default: a batch run has exactly one "session" and no concurrent
// ones, so retaining ~65k spans (≈16 MiB) is the better trade than
// silently truncating a long simulation's timeline.
const cliTraceCapacity = 1 << 16

// traceOutput owns a run's recorder, root span, and the tee into the
// process-wide default tracer. Nil methods are no-ops so call sites
// need no "-trace-out given?" branches.
type traceOutput struct {
	path string
	rec  *trace.Recorder
	ctx  context.Context
	root *trace.Span
	prev dd.TraceFunc
}

// newTraceOutput starts recording: it opens the root span and chains
// the recorder's DD tracer behind whatever default tracer is already
// installed (the -metrics-dump collector, typically), so both observe
// every engine operation.
func newTraceOutput(path, name string) *traceOutput {
	rec := trace.NewRecorder(name, cliTraceCapacity)
	ctx, root := trace.StartSpan(trace.With(context.Background(), rec), name)
	prev := dd.DefaultTracer()
	dd.SetDefaultTracer(trace.Tee(prev, rec.DDTracer()))
	return &traceOutput{path: path, rec: rec, ctx: ctx, root: root, prev: prev}
}

// context returns the run context carrying the recorder and root
// span; context.Background() when tracing is off.
func (t *traceOutput) context() context.Context {
	if t == nil {
		return context.Background()
	}
	return t.ctx
}

// finish closes the root span, restores the previous default tracer,
// and writes the trace file. Failures are reported, not fatal: the
// run's real output already happened.
func (t *traceOutput) finish(stderr io.Writer) {
	if t == nil {
		return
	}
	t.root.End()
	dd.SetDefaultTracer(t.prev)
	f, err := os.Create(t.path)
	if err != nil {
		fmt.Fprintln(stderr, "trace-out:", err)
		return
	}
	err = trace.WriteChromeTrace(f, trace.SessionFromRecorder(t.rec, 1))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(stderr, "trace-out:", err)
		return
	}
	if d := t.rec.Dropped(); d > 0 {
		fmt.Fprintf(stderr, "trace-out: flight recorder dropped %d oldest spans (capacity %d)\n", d, cliTraceCapacity)
	}
}
