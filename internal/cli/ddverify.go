package cli

import (
	"flag"
	"fmt"
	"io"

	"quantumdd/internal/core"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
	"quantumdd/internal/verify"
)

func statsString(s *sim.Simulator) string {
	return qc.ComputeStats(s.Circuit()).String()
}

// RunDdverify is the ddverify tool: decide the equivalence of two
// circuit files. Exit status 0 equivalent, 1 not equivalent, 2 error.
func RunDdverify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	strategyName := fs.String("strategy", "proportional",
		"construction | sequential | one-to-one | proportional | lookahead")
	trace := fs.Bool("trace", false, "print the per-gate node-count trace")
	diagnose := fs.Bool("diagnose", false, "on non-equivalence, print a counterexample and the HS overlap")
	format := fs.String("format", "", "input format: qasm, real, or auto")
	metricsDump := fs.Bool("metrics-dump", false, "print a Prometheus metrics snapshot of the engine after the run")
	traceOut := fs.String("trace-out", "", "write the run's span timeline to this file as Chrome trace-event JSON")
	genericMM := fs.Bool("generic-mm", false, "apply gates via materialized gate DDs and the generic MultMM instead of the matrix-apply kernel")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: ddverify [flags] <left> <right>")
		fs.PrintDefaults()
		return 2
	}
	strategy, err := ParseStrategy(*strategyName)
	if err != nil {
		fmt.Fprintln(stderr, "ddverify:", err)
		return 2
	}
	load := func(path string) (*qc.Circuit, error) {
		circ, err := core.LoadCircuitFile(path, *format)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		circ.Name = path
		return circ, nil
	}
	left, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "ddverify:", err)
		return 2
	}
	right, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "ddverify:", err)
		return 2
	}
	fmt.Fprintf(stdout, "G : %s (%d qubits, %d gates)\n", fs.Arg(0), left.NQubits, left.NumGates())
	fmt.Fprintf(stdout, "G': %s (%d qubits, %d gates)\n", fs.Arg(1), right.NQubits, right.NumGates())
	var md *metricsDumper
	if *metricsDump {
		md = newMetricsDumper()
		defer md.dump(stdout)
	}
	var to *traceOutput
	if *traceOut != "" {
		to = newTraceOutput(*traceOut, "ddverify")
		defer to.finish(stderr)
	}
	// Own the engine so its final statistics land in the dump
	// alongside the op-latency histograms the tracer collects.
	p := dd.New(left.NQubits)
	var opts []verify.Option
	if *genericMM {
		opts = append(opts, verify.WithGenericMM())
	}
	res, err := verify.CheckOnCtx(to.context(), p, left, right, strategy, opts...)
	if md != nil {
		md.record(p.Stats())
	}
	if err != nil {
		fmt.Fprintln(stderr, "ddverify:", err)
		return 2
	}
	if *trace {
		fmt.Fprintf(stdout, "%-6s %-4s %-36s %6s\n", "step", "side", "gate", "nodes")
		for i, r := range res.Trace {
			fmt.Fprintf(stdout, "%-6d %-4s %-36s %6d\n", i, r.Side, r.Gate, r.Nodes)
		}
	}
	fmt.Fprintf(stdout, "strategy: %s, peak %d nodes, final %d nodes, %d multiplications (%d kernel, %d generic)\n",
		res.Strategy, res.PeakNodes, res.FinalNodes, res.MultOps, res.KernelOps, res.GenericOps)
	switch {
	case res.Equivalent && res.UpToGlobalPhase:
		fmt.Fprintln(stdout, "result: EQUIVALENT up to a global phase")
		return 0
	case res.Equivalent:
		fmt.Fprintln(stdout, "result: EQUIVALENT")
		return 0
	default:
		fmt.Fprintln(stdout, "result: NOT EQUIVALENT")
		if *diagnose {
			_, overlap, ce, err := verify.DiagnoseNonEquivalence(left, right)
			if err == nil {
				fmt.Fprintf(stdout, "Hilbert-Schmidt overlap: %.6f\n", overlap)
				if ce != nil {
					fmt.Fprintf(stdout, "counterexample: %s\n", ce)
				}
			}
		}
		return 1
	}
}

// ParseStrategy maps a strategy name onto the verify constant.
func ParseStrategy(name string) (verify.Strategy, error) {
	switch name {
	case "construction":
		return verify.Construction, nil
	case "sequential":
		return verify.Sequential, nil
	case "one-to-one", "onetoone":
		return verify.OneToOne, nil
	case "proportional":
		return verify.Proportional, nil
	case "lookahead":
		return verify.Lookahead, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", name)
	}
}
