// Package cnum provides a tolerance-based unique table for complex
// numbers, following the design of "How to Efficiently Handle Complex
// Values? Implementing Decision Diagrams for Quantum Computing"
// (Zulehner, Hillmich, Wille; ICCAD 2019).
//
// Decision diagrams for quantum computing annotate edges with complex
// weights. Floating-point arithmetic introduces tiny representation
// errors, so two weights that are mathematically equal may differ in
// their bit patterns. Without countermeasures this destroys node
// sharing (the whole point of a decision diagram) and compute-table
// hits. The fix is to funnel every weight through a unique table that
// maps all values within a tolerance of each other onto one canonical
// representative. Canonical values are bit-identical and may therefore
// be used directly as Go map keys.
package cnum

import (
	"fmt"
	"math"
	"math/cmplx"
	"strconv"
)

// DefaultTolerance is the radius within which two real values are
// identified. It matches the default of the JKQ/MQT DD package.
const DefaultTolerance = 1e-10

// Commonly used canonical constants. Zero and One are canonical in
// every Table because the table seeds its buckets with them.
const (
	// SqrtHalf is 1/sqrt(2), the ubiquitous Hadamard amplitude.
	SqrtHalf = 0.70710678118654752440084436210484903928
)

// Table is a unique table of real numbers with tolerance-based lookup.
// Complex values are canonicalized component-wise. A Table is not safe
// for concurrent use; decision-diagram packages own exactly one.
//
// The store is an open-addressed hash table over half-open buckets of
// width 2·tol (the complex-table layout of Zulehner et al., ICCAD
// 2019): a value's bucket index is floor(v/(2·tol)), and a lookup
// probes the value's own bucket plus its two neighbours, so any stored
// representative within tol is found. Open addressing with linear
// probing replaces the earlier Go map because canonical-value lookups
// sit on the hot path of every DD node normalization.
type Table struct {
	tol     float64
	inv     float64 // 1/bucket width
	slots   []slot  // power-of-two open-addressed bucket store
	mask    uint64
	used    int // occupied slots
	lookups uint64
	hits    uint64
}

// slot holds one bucket: all canonical representatives whose bucket
// index equals key. Most buckets hold exactly one value.
type slot struct {
	key  int64
	vals []float64
}

// NewTable returns a table using DefaultTolerance.
func NewTable() *Table { return NewTableTol(DefaultTolerance) }

// minSlots keeps even tiny tables collision-light after seeding.
const minSlots = 256

// NewTableTol returns a table identifying reals within tol of each
// other. tol must be positive.
func NewTableTol(tol float64) *Table {
	if tol <= 0 {
		panic(fmt.Sprintf("cnum: tolerance must be positive, got %g", tol))
	}
	t := &Table{
		tol:   tol,
		inv:   1 / (2 * tol),
		slots: make([]slot, minSlots),
		mask:  minSlots - 1,
	}
	// Seed with the values that must be exactly representable so that
	// IsZero/IsOne tests on canonical values are exact comparisons.
	for _, v := range []float64{0, 1, -1, 0.5, -0.5, SqrtHalf, -SqrtHalf} {
		t.LookupReal(v)
	}
	return t
}

// findSlot returns the slot holding bucket key, or the empty slot
// where that bucket would be inserted.
func (t *Table) findSlot(key int64) *slot {
	i := hashInt64(key) & t.mask
	for {
		s := &t.slots[i]
		if s.vals == nil || s.key == key {
			return s
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the slot array and rehashes the occupied buckets.
func (t *Table) grow() {
	old := t.slots
	t.slots = make([]slot, 2*len(old))
	t.mask = uint64(len(t.slots)) - 1
	for i := range old {
		if old[i].vals == nil {
			continue
		}
		*t.findSlot(old[i].key) = old[i]
	}
}

// Tolerance reports the identification radius of the table.
func (t *Table) Tolerance() float64 { return t.tol }

// Stats reports the number of lookups performed and how many of them
// hit an existing canonical value.
func (t *Table) Stats() (lookups, hits uint64) { return t.lookups, t.hits }

// LookupReal returns the canonical representative for v: if a value
// within the tolerance is already stored it is returned, otherwise v
// itself becomes canonical.
func (t *Table) LookupReal(v float64) float64 {
	t.lookups++
	if math.IsNaN(v) {
		panic("cnum: NaN cannot be canonicalized")
	}
	key := int64(math.Floor(v * t.inv))
	// The candidate may fall in the bucket of v or a neighbour.
	for _, k := range [3]int64{key, key - 1, key + 1} {
		s := t.findSlot(k)
		if s.vals == nil {
			continue
		}
		for _, c := range s.vals {
			if math.Abs(c-v) <= t.tol {
				t.hits++
				return c
			}
		}
	}
	s := t.findSlot(key)
	if s.vals == nil {
		t.used++
		if 4*t.used > 3*len(t.slots) {
			t.grow()
			s = t.findSlot(key)
		}
		s.key = key
	}
	s.vals = append(s.vals, v)
	return v
}

// Lookup returns the canonical representative of c, canonicalizing the
// real and imaginary parts independently.
func (t *Table) Lookup(c complex128) complex128 {
	return complex(t.LookupReal(real(c)), t.LookupReal(imag(c)))
}

// Size reports the number of distinct canonical reals stored.
func (t *Table) Size() int {
	n := 0
	for i := range t.slots {
		n += len(t.slots[i].vals)
	}
	return n
}

// Multiply-xor mixing constants (golden-ratio multipliers of the
// splitmix64 finalizer), shared by the hash helpers below and the
// decision-diagram unique tables built on top of them. These replace
// a byte-wise FNV loop: the hashes sit on the hot path of every
// canonical-value lookup, where a handful of multiply/shift
// instructions beat sixteen loop iterations.
const (
	mixMul1 = 0x9e3779b97f4a7c15
	mixMul2 = 0xbf58476d1ce4e5b9
	mixMul3 = 0x94d049bb133111eb
)

// mix64 finalizes a 64-bit value with the splitmix64 avalanche.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= mixMul2
	x ^= x >> 27
	x *= mixMul3
	x ^= x >> 31
	return x
}

// hashInt64 scrambles a bucket index into a table slot hash.
func hashInt64(k int64) uint64 {
	return mix64(uint64(k) * mixMul1)
}

// HashReal returns the bucket hash of a canonical real value: a mixed
// digest of its bit pattern. Canonical values produced by the same
// Table are bit-identical, so this hash is stable and may be
// precomputed and combined (see HashComplex) to key hash tables over
// canonical weights without ever comparing floats tolerantly again.
func HashReal(v float64) uint64 {
	return mix64(math.Float64bits(v) * mixMul1)
}

// HashComplex returns the bucket hash of a canonical complex value,
// mixing the components asymmetrically so that conjugates and
// swapped components land in different buckets.
func HashComplex(c complex128) uint64 {
	return mix64(math.Float64bits(real(c))*mixMul1 ^ math.Float64bits(imag(c))*mixMul2)
}

// ApproxEqual reports whether a and b are component-wise within tol.
func ApproxEqual(a, b complex128, tol float64) bool {
	return math.Abs(real(a)-real(b)) <= tol && math.Abs(imag(a)-imag(b)) <= tol
}

// IsZero reports whether c is component-wise within tol of zero.
func IsZero(c complex128, tol float64) bool { return ApproxEqual(c, 0, tol) }

// IsOne reports whether c is component-wise within tol of one.
func IsOne(c complex128, tol float64) bool { return ApproxEqual(c, 1, tol) }

// Phase returns the argument of c in (-π, π].
func Phase(c complex128) float64 { return cmplx.Phase(c) }

// Omega returns e^{iπk/d}, the 2d-th root of unity raised to k, used
// e.g. in the QFT functionality matrix (ω = e^{iπ/4} for three qubits).
func Omega(k, d int) complex128 {
	return cmplx.Exp(complex(0, math.Pi*float64(k)/float64(d)))
}

// piFractions lists denominators tried when pretty-printing angles.
var piFractions = []int{1, 2, 3, 4, 6, 8, 12, 16, 32}

// FormatAngle renders an angle in radians as a π-fraction where one
// exists within tolerance ("π/4", "-3π/8", …) and as a decimal
// otherwise. This mirrors the edge-weight labels in the paper's
// "classic" visualization style.
func FormatAngle(theta float64) string {
	if math.Abs(theta) <= DefaultTolerance {
		return "0"
	}
	for _, d := range piFractions {
		ratio := theta * float64(d) / math.Pi
		n := math.Round(ratio)
		if n != 0 && math.Abs(ratio-n) <= 1e-9 {
			return formatPi(int(n), d)
		}
	}
	return strconv.FormatFloat(theta, 'g', 6, 64)
}

func formatPi(num, den int) string {
	sign := ""
	if num < 0 {
		sign = "-"
		num = -num
	}
	switch {
	case den == 1 && num == 1:
		return sign + "π"
	case den == 1:
		return fmt.Sprintf("%s%dπ", sign, num)
	case num == 1:
		return fmt.Sprintf("%sπ/%d", sign, den)
	default:
		return fmt.Sprintf("%s%dπ/%d", sign, num, den)
	}
}

// FormatComplex renders a complex number compactly for DD edge labels:
// real-only values print as reals, magnitude-one phases print as e^(iθ)
// with θ as a π-fraction, and general values as "a+bi".
func FormatComplex(c complex128) string {
	const tol = 1e-9
	re, im := real(c), imag(c)
	switch {
	case math.Abs(im) <= tol:
		return trimFloat(re)
	case math.Abs(re) <= tol:
		return trimFloat(im) + "i"
	}
	if math.Abs(cmplx.Abs(c)-1) <= tol {
		return "e^(i" + FormatAngle(cmplx.Phase(c)) + ")"
	}
	if im < 0 {
		return trimFloat(re) + "-" + trimFloat(-im) + "i"
	}
	return trimFloat(re) + "+" + trimFloat(im) + "i"
}

func trimFloat(v float64) string {
	const tol = 1e-9
	// Common DD amplitudes print symbolically.
	switch {
	case math.Abs(v-SqrtHalf) <= tol:
		return "1/√2"
	case math.Abs(v+SqrtHalf) <= tol:
		return "-1/√2"
	case math.Abs(v-0.5) <= tol:
		return "1/2"
	case math.Abs(v+0.5) <= tol:
		return "-1/2"
	}
	if math.Abs(v-math.Round(v)) <= tol {
		return strconv.FormatInt(int64(math.Round(v)), 10)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}
