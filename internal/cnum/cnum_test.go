package cnum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLookupIdentifiesNearbyValues(t *testing.T) {
	tab := NewTable()
	a := tab.LookupReal(0.5)
	b := tab.LookupReal(0.5 + 1e-12)
	if a != b {
		t.Fatalf("values within tolerance not identified: %v vs %v", a, b)
	}
	c := tab.LookupReal(0.5 + 1e-3)
	if a == c {
		t.Fatalf("values outside tolerance wrongly identified")
	}
}

func TestLookupSeedsExactConstants(t *testing.T) {
	tab := NewTable()
	for _, v := range []float64{0, 1, -1, 0.5, -0.5, SqrtHalf, -SqrtHalf} {
		if got := tab.LookupReal(v + 1e-12); got != v {
			t.Fatalf("seeded constant %v not returned exactly, got %v", v, got)
		}
	}
	// Canonical zero lets IsZero be an exact comparison downstream.
	if got := tab.Lookup(complex(1e-12, -1e-12)); got != 0 {
		t.Fatalf("near-zero complex canonicalized to %v, want 0", got)
	}
}

func TestLookupBucketBoundary(t *testing.T) {
	// Values straddling a bucket boundary must still be identified;
	// this exercises the neighbour-bucket probes.
	tab := NewTableTol(1e-10)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		v := rng.Float64()*2 - 1
		c := tab.LookupReal(v)
		d := tab.LookupReal(v + (rng.Float64()-0.5)*1.9e-10)
		if math.Abs(c-d) > 2.01e-10 {
			t.Fatalf("canonical values too far apart: %v vs %v", c, d)
		}
	}
}

func TestLookupPropertyCanonicalWithinTolerance(t *testing.T) {
	tab := NewTable()
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		c := tab.LookupReal(v)
		// The canonical value is within tolerance and idempotent.
		return math.Abs(c-v) <= tab.Tolerance() && tab.LookupReal(c) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewTableTolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive tolerance")
		}
	}()
	NewTableTol(0)
}

func TestLookupNaNPanics(t *testing.T) {
	tab := NewTable()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NaN")
		}
	}()
	tab.LookupReal(math.NaN())
}

func TestStatsAndSize(t *testing.T) {
	tab := NewTable()
	base := tab.Size()
	tab.LookupReal(0.123)
	tab.LookupReal(0.123)
	if got := tab.Size(); got != base+1 {
		t.Fatalf("size = %d, want %d", got, base+1)
	}
	lookups, hits := tab.Stats()
	if lookups == 0 || hits == 0 {
		t.Fatalf("stats not tracked: %d lookups, %d hits", lookups, hits)
	}
}

func TestPredicates(t *testing.T) {
	if !IsZero(complex(1e-12, -1e-12), 1e-10) {
		t.Fatal("IsZero failed for near-zero")
	}
	if IsZero(complex(1e-3, 0), 1e-10) {
		t.Fatal("IsZero accepted a non-zero")
	}
	if !IsOne(complex(1+1e-12, 0), 1e-10) {
		t.Fatal("IsOne failed for near-one")
	}
	if !ApproxEqual(complex(1, 2), complex(1+1e-11, 2-1e-11), 1e-10) {
		t.Fatal("ApproxEqual failed")
	}
}

func TestOmega(t *testing.T) {
	// ω = e^{iπ/4} = (1+i)/√2 (Fig. 5(c)).
	w := Omega(1, 4)
	if math.Abs(real(w)-SqrtHalf) > 1e-12 || math.Abs(imag(w)-SqrtHalf) > 1e-12 {
		t.Fatalf("omega(1,4) = %v", w)
	}
	// ω^8 = 1.
	acc := complex(1, 0)
	for i := 0; i < 8; i++ {
		acc *= w
	}
	if math.Abs(real(acc)-1) > 1e-12 || math.Abs(imag(acc)) > 1e-12 {
		t.Fatalf("omega^8 = %v, want 1", acc)
	}
}

func TestFormatAngle(t *testing.T) {
	cases := map[float64]string{
		0:                "0",
		math.Pi:          "π",
		math.Pi / 2:      "π/2",
		math.Pi / 4:      "π/4",
		-math.Pi / 8:     "-π/8",
		3 * math.Pi / 4:  "3π/4",
		2 * math.Pi:      "2π",
		-3 * math.Pi / 2: "-3π/2",
	}
	for in, want := range cases {
		if got := FormatAngle(in); got != want {
			t.Errorf("FormatAngle(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatAngle(1.2345); got == "" {
		t.Error("decimal fallback empty")
	}
}

func TestFormatComplex(t *testing.T) {
	cases := []struct {
		in   complex128
		want string
	}{
		{1, "1"},
		{-1, "-1"},
		{complex(0, 1), "1i"},
		{complex(SqrtHalf, 0), "1/√2"},
		{complex(0.5, 0), "1/2"},
		{complex(0, -0.5), "-1/2i"},
		{complex(SqrtHalf, SqrtHalf), "e^(iπ/4)"},
		{complex(0.25, 0.25), "0.25+0.25i"},
		{complex(0.25, -0.25), "0.25-0.25i"},
	}
	for _, c := range cases {
		if got := FormatComplex(c.in); got != c.want {
			t.Errorf("FormatComplex(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
