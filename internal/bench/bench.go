// Package bench regenerates every figure and worked example of the
// paper (the per-experiment index of DESIGN.md) and the additional
// scaling/ablation studies. Each experiment prints a human-readable
// table to a writer and returns a machine-checkable summary used by
// the repository-level benchmarks and by EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Summary carries an experiment's key metrics: scalar values keyed by
// metric name.
type Summary map[string]float64

// Experiment is one reproducible unit: a paper figure/example or a
// supplementary study.
type Experiment struct {
	ID    string
	Title string
	// Paper describes what the paper reports for this artifact.
	Paper string
	Run   func(w io.Writer) (Summary, error)
}

// All lists the experiments in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Bell state decision diagram (Ex. 1/2/6, Fig. 2(a))",
			Paper: "3 nodes; amplitudes 1/√2 on |00⟩ and |11⟩; 50/50 measurement", Run: runE1},
		{ID: "E2", Title: "Gate decision diagrams (Fig. 2(b,c))",
			Paper: "H: 1 node; CNOT: 3 nodes; entries match Fig. 1", Run: runE2},
		{ID: "E3", Title: "Tensor extension H⊗I₂ (Ex. 3/8, Fig. 3)",
			Paper: "terminal-replacement kron; (H⊗I)|00⟩ = 1/√2 [1,0,1,0]", Run: runE3},
		{ID: "E4", Title: "Simulation walk-through (Ex. 5, Fig. 8)",
			Paper: "|00⟩→H→CNOT→measure: dialog 50/50, collapse to |11⟩", Run: runE4},
		{ID: "E5", Title: "QFT functionality (Fig. 5, Fig. 6, Ex. 10/11/14)",
			Paper: "both circuits build the identical 8×8 ω-matrix DD", Run: runE5},
		{ID: "E6", Title: "Alternating verification (Ex. 12, Fig. 9)",
			Paper: "proportional scheme peaks at 9 nodes vs 21 for construction", Run: runE6},
		{ID: "E7", Title: "Visualization styles (Sec. IV-A, Fig. 7)",
			Paper: "classic/colored/modern renderings; HLS phase wheel", Run: runE7},
		{ID: "E8", Title: "Scaling: compact in many cases, exponential worst case (Sec. I/III)",
			Paper: "structured states linear, random states exponential", Run: runE8},
		{ID: "E9", Title: "Weak simulation / sampling (Sec. III-B, [16])",
			Paper: "single-path sampling reproduces the Born distribution", Run: runE9},
		{ID: "E10", Title: "Special operations: teleportation end-to-end (Sec. IV-B)",
			Paper: "measure + classical control + reset preserve the payload", Run: runE10},
		{ID: "A1", Title: "Ablation: complex-number tolerance (ref [14])",
			Paper: "without value identification node sharing degrades", Run: runA1},
		{ID: "A2", Title: "Ablation: compute tables on/off",
			Paper: "caches turn re-application into table lookups", Run: runA2},
		{ID: "A3", Title: "Ablation: verification strategies (ref [20])",
			Paper: "peak size: sequential > one-to-one > proportional", Run: runA3},
		{ID: "A4", Title: "Ablation: vector normalization (footnote 3 vs QMDD max-norm)",
			Paper: "2-norm makes squared weights probabilities, enabling sampling", Run: runA4},
		{ID: "A5", Title: "Extension: approximation by branch pruning",
			Paper: "size/fidelity trade-off against the exponential worst case", Run: runA5},
		{ID: "A6", Title: "Extension: variable order and sifting (Sec. III-C)",
			Paper: "canonicity is relative to the variable order; order can matter exponentially", Run: runA6},
		{ID: "K1", Title: "Kernel: direct gate application vs MakeGateDD+MultMV",
			Paper: "identity-skipping descent beats the generic multiply on the hot path", Run: runK1},
		{ID: "K2", Title: "Kernel: peephole gate fusion on rotation runs",
			Paper: "folding rz·ry·rz runs into one 2×2 apply preserves the state", Run: runK2},
		{ID: "V1", Title: "Verify core: matrix-apply kernel vs generic MultMM",
			Paper: "identity-stripped matrix apply beats gate-DD multiply in the alternating checker", Run: runV1},
		{ID: "N1", Title: "Parallel trajectories: sharded replica pool vs sequential",
			Paper: "one-simulation-per-shot sampling is embarrassingly parallel; results stay bit-identical", Run: runN1},
		{ID: "S1", Title: "Shape profiler: sampling overhead and example structure",
			Paper: "per-level occupancy, sharing, and identity padding at bounded amortized cost", Run: runS1},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, printing to w, and returns the
// summaries keyed by experiment ID.
func RunAll(w io.Writer) (map[string]Summary, error) {
	out := map[string]Summary{}
	for _, e := range All() {
		fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
		fmt.Fprintf(w, "paper: %s\n", e.Paper)
		s, err := e.Run(w)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out[e.ID] = s
		printSummary(w, s)
		fmt.Fprintln(w)
	}
	return out, nil
}

// PrintSummary writes the one-line machine-parsable "summary:" form
// of s to w — the line the CI smoke guards grep their metrics from.
func PrintSummary(w io.Writer, s Summary) { printSummary(w, s) }

func printSummary(w io.Writer, s Summary) {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprint(w, "summary:")
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%g", k, s[k])
	}
	fmt.Fprintln(w)
}
