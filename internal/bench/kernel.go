package bench

// Kernel studies (PR 4): quantify the direct gate-application kernel
// against the MakeGateDD+MultMV baseline it replaces on the simulation
// hot path, and the peephole fusion pass on rotation-heavy circuits.

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"time"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
)

// kernelScenario is one before/after timing pair: the same circuit run
// through the generic MakeGateDD+MultMV path and through the ApplyGate
// kernel.
type kernelScenario struct {
	name string
	circ *qc.Circuit
	reps int // simulator runs per timing sample, amortizing setup
}

// rotationLadder builds the compiled-circuit shape dominated by Euler
// rotation runs: per layer, rz·ry·rz on every qubit followed by a CX
// ring — adjacent same-target single-qubit runs everywhere, the
// peephole fusion target.
func rotationLadder(n, layers int) *qc.Circuit {
	c := qc.New(n, 0)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			a := 0.3 + 0.1*float64(l*n+q)
			c.Gate(qc.RZ, []float64{a}, q)
			c.Gate(qc.RY, []float64{a / 2}, q)
			c.Gate(qc.RZ, []float64{a / 3}, q)
		}
		for q := 0; q < n; q++ {
			c.CX(q, (q+1)%n)
		}
	}
	return c
}

// qaoaCircuit builds a MaxCut ring ansatz with two distinct layers —
// the parameterized sweep workload of A-series experiments.
func qaoaCircuit(n int) *qc.Circuit {
	circ, err := algorithms.QAOAMaxCut(algorithms.Ring(n),
		[]float64{0.7, 1.3}, []float64{0.4, 0.9})
	if err != nil {
		panic(err)
	}
	return circ
}

func timeSim(circ *qc.Circuit, reps int, opts ...sim.Option) time.Duration {
	return timeIt(func() {
		for r := 0; r < reps; r++ {
			s := sim.New(circ, opts...)
			if _, err := s.RunToEnd(); err != nil {
				panic(err)
			}
		}
	})
}

// runK1 measures the ApplyGate kernel against the generic path on the
// GHZ, QAOA and random-entangled scenarios and cross-checks that both
// paths produce identical final amplitudes.
func runK1(w io.Writer) (Summary, error) {
	scenarios := []kernelScenario{
		{"ghz20", algorithms.GHZ(20), 20},
		{"qaoa12", qaoaCircuit(12), 1},
		{"entangled12", algorithms.Entangled(12, 5, 3), 1},
	}
	fmt.Fprintf(w, "%-14s %14s %14s %10s\n", "scenario", "generic", "kernel", "speedup")
	sum := Summary{}
	best := 0.0
	for _, sc := range scenarios {
		// Differential cross-check before timing: the kernel must be
		// bit-identical to the oracle on the canonical amplitudes.
		fast := sim.New(sc.circ)
		if _, err := fast.RunToEnd(); err != nil {
			return nil, err
		}
		slow := sim.New(sc.circ, sim.WithGenericApply())
		if _, err := slow.RunToEnd(); err != nil {
			return nil, err
		}
		a, b := fast.Amplitudes(), slow.Amplitudes()
		for i := range a {
			if cmplx.Abs(a[i]-b[i]) > 1e-10 {
				return nil, fmt.Errorf("%s: kernel amplitude %d deviates from generic", sc.name, i)
			}
		}
		generic := timeSim(sc.circ, sc.reps, sim.WithGenericApply())
		kernel := timeSim(sc.circ, sc.reps)
		speedup := float64(generic) / float64(kernel)
		fmt.Fprintf(w, "%-14s %14s %14s %9.2fx\n", sc.name, generic, kernel, speedup)
		sum["speedup_"+sc.name] = speedup
		if speedup > best {
			best = speedup
		}
	}
	sum["speedup_best"] = best
	if best < 0.8 {
		return nil, fmt.Errorf("kernel slower than the generic path on every scenario (best %.2fx)", best)
	}
	return sum, nil
}

// runK2 measures peephole fusion on the rotation ladder and proves the
// pass fires: the summary line carries fused=N for the CI smoke guard.
func runK2(w io.Writer) (Summary, error) {
	circ := rotationLadder(12, 3)
	plain := sim.New(circ)
	if _, err := plain.RunToEnd(); err != nil {
		return nil, err
	}
	fused := sim.New(circ, sim.WithFusion())
	if _, err := fused.RunToEnd(); err != nil {
		return nil, err
	}
	a, b := plain.Amplitudes(), fused.Amplitudes()
	maxDiff := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-10 {
		return nil, fmt.Errorf("fusion changed the state (max amplitude diff %g)", maxDiff)
	}
	nFused := fused.Pkg().Stats().GatesFused
	unfusedT := timeIt(func() {
		s := sim.New(circ)
		if _, err := s.RunToEnd(); err != nil {
			panic(err)
		}
	})
	fusedT := timeIt(func() {
		s := sim.New(circ, sim.WithFusion())
		if _, err := s.RunToEnd(); err != nil {
			panic(err)
		}
	})
	speedup := float64(unfusedT) / float64(fusedT)
	fmt.Fprintf(w, "%-20s %14s %14s %10s %8s\n", "circuit", "unfused", "fused", "speedup", "fused")
	fmt.Fprintf(w, "%-20s %14s %14s %9.2fx fused=%d\n", "rotation-ladder(12,3)", unfusedT, fusedT, speedup, nFused)
	if nFused == 0 {
		return nil, fmt.Errorf("fusion pass never fired on the rotation ladder")
	}
	// Each (rz, ry, rz) run folds 3 gates into 1: 3 layers × 12 qubits
	// × 2 saved gates.
	if want := uint64(3 * 12 * 2); nFused != want {
		return nil, fmt.Errorf("GatesFused = %d, want %d", nFused, want)
	}
	if math.IsNaN(speedup) || speedup <= 0 {
		return nil, fmt.Errorf("degenerate fusion timing")
	}
	return Summary{
		"gatesFused":    float64(nFused),
		"fusionSpeedup": speedup,
		"maxAmpDiff":    maxDiff,
	}, nil
}
