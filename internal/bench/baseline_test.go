package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompareBaseline(t *testing.T) {
	base := map[string]float64{
		"speedup_v1":         1.5,
		"speedup_v1_best":    2.0,
		"V1_total_ms":        100, // machine-bound: never compared
		"V1_kernel_ops":      2062,
		"applym_ct_hits":     50000,
		"shape_overhead_pct": 1.0,
	}
	// Identical run: clean.
	if regs := CompareBaseline(base, base, 0.2); len(regs) != 0 {
		t.Fatalf("identical run regressed: %v", regs)
	}
	// Within tolerance: clean, including a catastrophic timing change.
	cur := map[string]float64{
		"speedup_v1":         1.25, // -17%
		"speedup_v1_best":    2.4,  // improvements never fail
		"V1_total_ms":        900,
		"V1_kernel_ops":      2062,
		"applym_ct_hits":     48000,
		"shape_overhead_pct": 1.1,
	}
	if regs := CompareBaseline(base, cur, 0.2); len(regs) != 0 {
		t.Fatalf("in-tolerance run regressed: %v", regs)
	}
	// Past tolerance in each direction class.
	cur = map[string]float64{
		"speedup_v1":         1.0, // higher-better, -33%
		"speedup_v1_best":    2.0,
		"V1_kernel_ops":      3000, // direction-free, +45%
		"applym_ct_hits":     50000,
		"shape_overhead_pct": 5.0, // lower-better, 5x
	}
	regs := CompareBaseline(base, cur, 0.2)
	var keys []string
	for _, r := range regs {
		keys = append(keys, r.Key)
	}
	want := []string{"V1_kernel_ops", "shape_overhead_pct", "speedup_v1"}
	if strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Fatalf("regressions %v, want %v", keys, want)
	}
	// Keys missing from the current run are skipped, not failed.
	if regs := CompareBaseline(base, map[string]float64{}, 0.2); len(regs) != 0 {
		t.Fatalf("empty current run regressed: %v", regs)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(good, []byte(`{"pr":9,"after":{"ddbench":{"speedup_v1":1.5}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	if b.PR != 9 || b.After.Ddbench["speedup_v1"] != 1.5 {
		t.Fatalf("decoded %+v", b)
	}
	if _, err := LoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"pr":3,"after":{}}`), 0o644)
	if _, err := LoadBaseline(empty); err == nil {
		t.Fatal("metric-free baseline loaded")
	}
}
