package bench

import (
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"math/rand"
	"strings"
	"time"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/cnum"
	"quantumdd/internal/dd"
	"quantumdd/internal/linalg"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
	"quantumdd/internal/verify"
	"quantumdd/internal/vis"
)

func gateDD(p *dd.Pkg, g qc.Gate, params []float64, target int, controls ...dd.Control) dd.MEdge {
	return p.MakeGateDD(dd.GateMatrix(qc.Matrix2(g, params)), target, controls...)
}

// runE1 rebuilds the Bell-state diagram of Fig. 2(a) and checks the
// quantitative claims of Ex. 1, 2 and 6.
func runE1(w io.Writer) (Summary, error) {
	p := dd.New(2)
	state := p.MultMV(gateDD(p, qc.X, nil, 0, dd.Control{Qubit: 1}),
		p.MultMV(gateDD(p, qc.H, nil, 1), p.ZeroState()))
	nodes := dd.SizeV(state)
	a00 := dd.Amplitude(state, 0)
	a11 := dd.Amplitude(state, 3)
	p1 := p.ProbOne(state, 0)
	fmt.Fprintf(w, "%-28s %8s %12s\n", "quantity", "paper", "measured")
	fmt.Fprintf(w, "%-28s %8s %12d\n", "DD nodes", "3", nodes)
	fmt.Fprintf(w, "%-28s %8s %12.6f\n", "amplitude |00>", "0.7071", real(a00))
	fmt.Fprintf(w, "%-28s %8s %12.6f\n", "amplitude |11>", "0.7071", real(a11))
	fmt.Fprintf(w, "%-28s %8s %12.3f\n", "P(q0 = 1)", "0.5", p1)
	if nodes != 3 {
		return nil, fmt.Errorf("Bell DD has %d nodes, want 3", nodes)
	}
	return Summary{
		"nodes":       float64(nodes),
		"amp00":       real(a00),
		"amp11":       real(a11),
		"probOne":     p1,
		"denseLength": 4,
	}, nil
}

// runE2 rebuilds the gate diagrams of Fig. 2(b,c).
func runE2(w io.Writer) (Summary, error) {
	p1q := dd.New(1)
	h := gateDD(p1q, qc.H, nil, 0)
	p2q := dd.New(2)
	cx := gateDD(p2q, qc.X, nil, 0, dd.Control{Qubit: 1})
	hNodes := dd.SizeM(h)
	cxNodes := dd.SizeM(cx)
	fmt.Fprintf(w, "%-28s %8s %12s\n", "diagram", "paper", "measured")
	fmt.Fprintf(w, "%-28s %8s %12d\n", "H nodes", "1", hNodes)
	fmt.Fprintf(w, "%-28s %8s %12d\n", "CNOT nodes", "3", cxNodes)
	// Entry checks against Fig. 1.
	if e := dd.MatrixEntry(h, 1, 1); math.Abs(real(e)+cnum.SqrtHalf) > 1e-12 {
		return nil, fmt.Errorf("H[1][1] = %v, want -1/sqrt2", e)
	}
	if e := dd.MatrixEntry(cx, 3, 2); e != 1 {
		return nil, fmt.Errorf("CNOT[3][2] = %v, want 1", e)
	}
	if hNodes != 1 || cxNodes != 3 {
		return nil, fmt.Errorf("node counts (%d,%d) differ from paper (1,3)", hNodes, cxNodes)
	}
	return Summary{"hNodes": float64(hNodes), "cnotNodes": float64(cxNodes)}, nil
}

// runE3 reproduces the kron construction of Fig. 3 and the state
// evolution of Ex. 3.
func runE3(w io.Writer) (Summary, error) {
	p := dd.New(2)
	direct := gateDD(p, qc.H, nil, 1)
	state := p.MultMV(direct, p.ZeroState())
	want := []complex128{complex(cnum.SqrtHalf, 0), 0, complex(cnum.SqrtHalf, 0), 0}
	got := p.Vector(state)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-12 {
			return nil, fmt.Errorf("(H⊗I)|00⟩ amplitude %d = %v, want %v", i, got[i], want[i])
		}
	}
	nodes := dd.SizeM(direct)
	fmt.Fprintf(w, "%-28s %8s %12s\n", "quantity", "paper", "measured")
	fmt.Fprintf(w, "%-28s %8s %12d\n", "H⊗I2 nodes", "2", nodes)
	fmt.Fprintf(w, "%-28s %8s %12.4f\n", "amplitude |00>", "0.7071", real(got[0]))
	fmt.Fprintf(w, "%-28s %8s %12.4f\n", "amplitude |10>", "0.7071", real(got[2]))
	// The dense construction materializes 16 entries; the DD needs 2
	// nodes — report the ratio as the compaction factor.
	return Summary{"kronNodes": float64(nodes), "denseEntries": 16}, nil
}

// runE4 steps through the Fig. 8 walk-through with the measurement
// dialog forced to |1⟩.
func runE4(w io.Writer) (Summary, error) {
	s := sim.New(algorithms.BellMeasured(), sim.WithChooser(
		func(op *qc.Op, q int, p0, p1 float64) int { return 1 }))
	fmt.Fprintf(w, "%-8s %-30s %8s %10s\n", "step", "event", "nodes", "P(|1>)")
	record := func(label string) {
		fmt.Fprintf(w, "%-8s %-30s %8d %10.3f\n", label, "", dd.SizeV(s.State()), s.ProbOne(0))
	}
	record("init")
	var dialogP0, dialogP1 float64
	for !s.AtEnd() {
		ev, err := s.StepForward()
		if err != nil {
			return nil, err
		}
		if ev.Kind == sim.EventMeasure && ev.Op.Targets[0] == 0 {
			dialogP0, dialogP1 = ev.P0, ev.P1
		}
		fmt.Fprintf(w, "%-8d %-30s %8d %10.3f\n", ev.OpIndex, ev.Op.String(), dd.SizeV(s.State()), safeProb(s))
	}
	final := s.Amplitudes()
	if cmplx.Abs(final[3]-1) > 1e-9 {
		return nil, fmt.Errorf("final state is not |11⟩: %v", final)
	}
	if math.Abs(dialogP0-0.5) > 1e-9 || math.Abs(dialogP1-0.5) > 1e-9 {
		return nil, fmt.Errorf("dialog probabilities %v/%v, want 0.5/0.5", dialogP0, dialogP1)
	}
	return Summary{"dialogP0": dialogP0, "dialogP1": dialogP1, "finalAmp11": real(final[3])}, nil
}

func safeProb(s *sim.Simulator) float64 {
	defer func() { _ = recover() }()
	return s.ProbOne(0)
}

// runE5 builds the QFT functionality both ways (Fig. 5(a) and (b)) and
// compares against the dense ω-matrix of Fig. 5(c).
func runE5(w io.Writer) (Summary, error) {
	p := dd.New(3)
	u1, _, err := verify.BuildFunctionality(p, algorithms.QFT(3))
	if err != nil {
		return nil, err
	}
	u2, _, err := verify.BuildFunctionality(p, algorithms.QFTCompiled(3))
	if err != nil {
		return nil, err
	}
	same := 0.0
	if u1 == u2 {
		same = 1.0
	}
	nodes := dd.SizeM(u1)
	want := linalg.QFTMatrix(3)
	maxErr := 0.0
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			d := cmplx.Abs(dd.MatrixEntry(u1, i, j) - want.At(int(i), int(j)))
			if d > maxErr {
				maxErr = d
			}
		}
	}
	// ω = e^{iπ/4}: entry (1,1) is ω/√8.
	omega := dd.MatrixEntry(u1, 1, 1) * complex(math.Sqrt(8), 0)
	fmt.Fprintf(w, "%-32s %8s %12s\n", "quantity", "paper", "measured")
	fmt.Fprintf(w, "%-32s %8s %12d\n", "functionality DD nodes", "21", nodes)
	fmt.Fprintf(w, "%-32s %8s %12.0f\n", "identical canonical roots", "yes", same)
	fmt.Fprintf(w, "%-32s %8s %12.2e\n", "max |entry - ω-matrix|", "0", maxErr)
	fmt.Fprintf(w, "%-32s %8s   %.4f%+.4fi\n", "ω = e^{iπ/4}", "0.7071+0.7071i", real(omega), imag(omega))
	if same != 1 || nodes != 21 || maxErr > 1e-9 {
		return nil, fmt.Errorf("E5 deviates: same=%v nodes=%d err=%g", same, nodes, maxErr)
	}
	return Summary{"nodes": float64(nodes), "identicalRoots": same, "maxEntryErr": maxErr}, nil
}

// runE6 compares the verification strategies on the Fig. 5 pair and
// reports the per-step trace of the proportional walk (Fig. 9).
func runE6(w io.Writer) (Summary, error) {
	qft := algorithms.QFT(3)
	comp := algorithms.QFTCompiled(3)
	fmt.Fprintf(w, "%-16s %12s %12s %12s %8s\n", "strategy", "peak nodes", "final nodes", "mult ops", "equiv")
	sum := Summary{}
	for _, s := range []verify.Strategy{verify.Construction, verify.Sequential, verify.OneToOne, verify.Proportional, verify.Lookahead} {
		res, err := verify.Check(qft, comp, s)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "%-16s %12d %12d %12d %8v\n", res.Strategy, res.PeakNodes, res.FinalNodes, res.MultOps, res.Equivalent)
		sum["peak_"+res.Strategy.String()] = float64(res.PeakNodes)
		if !res.Equivalent {
			return nil, fmt.Errorf("strategy %v reported non-equivalence", s)
		}
	}
	prop, err := verify.Check(qft, comp, verify.Proportional)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "\nproportional walk (Ex. 12 / Fig. 9):")
	fmt.Fprintf(w, "%-6s %-4s %-28s %6s\n", "step", "side", "gate", "nodes")
	for i, r := range prop.Trace {
		fmt.Fprintf(w, "%-6d %-4s %-28s %6d\n", i, r.Side, r.Gate, r.Nodes)
	}
	if sum["peak_proportional"] != 9 || sum["peak_construction"] != 21 {
		return nil, fmt.Errorf("Ex. 12 numbers deviate: proportional %v, construction %v",
			sum["peak_proportional"], sum["peak_construction"])
	}
	return sum, nil
}

// runE7 renders the Bell state and the QFT functionality in all three
// styles plus DOT and the color wheel, reporting structural markers.
func runE7(w io.Writer) (Summary, error) {
	p := dd.New(2)
	state := p.MultMV(gateDD(p, qc.X, nil, 0, dd.Control{Qubit: 1}),
		p.MultMV(gateDD(p, qc.H, nil, 1), p.ZeroState()))
	g := vis.FromVector(state)
	classic := g.SVG(vis.Style{Mode: vis.Classic})
	colored := g.SVG(vis.Style{Mode: vis.Colored})
	modern := g.SVG(vis.Style{Mode: vis.Modern})
	dot := g.DOT(vis.Style{Mode: vis.Classic})
	wheel := vis.ColorWheelSVG(160)
	sum := Summary{
		"classicBytes":  float64(len(classic)),
		"coloredBytes":  float64(len(colored)),
		"modernBytes":   float64(len(modern)),
		"dotBytes":      float64(len(dot)),
		"wheelSegments": float64(strings.Count(wheel, "<path")),
		"classicDashes": float64(strings.Count(classic, "stroke-dasharray")),
	}
	fmt.Fprintf(w, "%-24s %10s\n", "artifact", "bytes")
	fmt.Fprintf(w, "%-24s %10d  (dashed non-unit edges: %d, weight labels: yes)\n", "classic SVG", len(classic), strings.Count(classic, "stroke-dasharray"))
	fmt.Fprintf(w, "%-24s %10d  (phase-colored, magnitude-scaled)\n", "colored SVG", len(colored))
	fmt.Fprintf(w, "%-24s %10d  (probability bars)\n", "modern SVG", len(modern))
	fmt.Fprintf(w, "%-24s %10d\n", "Graphviz DOT", len(dot))
	fmt.Fprintf(w, "%-24s %10d  (%d hue segments)\n", "HLS color wheel", len(wheel), strings.Count(wheel, "<path"))
	if sum["classicDashes"] == 0 {
		return nil, fmt.Errorf("classic style lost its dashed-edge convention")
	}
	if !strings.Contains(colored, vis.PhaseColor(1)) {
		return nil, fmt.Errorf("colored style lost its phase encoding")
	}
	return sum, nil
}

// runE8 is the scaling study: DD size versus the 2^n dense
// representation for structured and unstructured instances.
func runE8(w io.Writer) (Summary, error) {
	fmt.Fprintf(w, "%-10s %6s %12s %12s %12s %12s\n", "family", "n", "DD nodes", "dense amps", "DD/dense", "note")
	sum := Summary{}
	type row struct {
		family string
		n      int
		nodes  int
	}
	var rows []row
	// Structured states: basis, GHZ, W — expect linear node growth.
	for _, n := range []int{4, 8, 12, 16} {
		p := dd.New(n)
		rows = append(rows, row{"basis", n, dd.SizeV(p.BasisState(0))})
		ghz, err := runCircuit(algorithms.GHZ(n))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{"ghz", n, ghz})
		ws, err := runCircuit(algorithms.WState(n))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{"w", n, ws})
	}
	// Random states: expect exponential growth toward 2^n - 1.
	for _, n := range []int{4, 6, 8, 10} {
		nodes, err := runCircuit(algorithms.Entangled(n, 6, 1))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{"random", n, nodes})
	}
	// QFT functionality matrix DDs.
	for _, n := range []int{2, 3, 4, 5, 6} {
		p := dd.New(n)
		u, _, err := verify.BuildFunctionality(p, algorithms.QFT(n))
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{"qft-mat", n, dd.SizeM(u)})
	}
	for _, r := range rows {
		dense := math.Pow(2, float64(r.n))
		if r.family == "qft-mat" {
			dense = dense * dense
		}
		note := ""
		switch r.family {
		case "basis", "ghz", "w":
			note = "linear"
		case "random":
			note = "exponential"
		case "qft-mat":
			note = "quadratic-ish"
		}
		fmt.Fprintf(w, "%-10s %6d %12d %12.0f %12.2e %12s\n", r.family, r.n, r.nodes, dense, float64(r.nodes)/dense, note)
		sum[fmt.Sprintf("%s_%d", r.family, r.n)] = float64(r.nodes)
	}
	// Shape assertions: who wins where.
	if sum["ghz_16"] >= 64 {
		return nil, fmt.Errorf("GHZ(16) DD unexpectedly large: %v nodes", sum["ghz_16"])
	}
	if sum["random_10"] < 200 {
		return nil, fmt.Errorf("random 10-qubit state unexpectedly compact: %v nodes (broken hardness)", sum["random_10"])
	}
	// Wall-clock crossover (informational): DD vs the dense in-place
	// simulator on a structured instance (GHZ) and a random one. The
	// shape claim: DD wins on structure, dense wins on small random
	// instances — exactly the "strengths and limits" of the paper.
	fmt.Fprintf(w, "\n%-12s %6s %14s %14s\n", "family", "n", "DD time", "dense time")
	for _, tc := range []struct {
		family string
		n      int
		circ   *qc.Circuit
	}{
		{"ghz", 16, algorithms.GHZ(16)},
		{"ghz", 20, algorithms.GHZ(20)},
		{"random", 8, algorithms.Entangled(8, 4, 1)},
		{"random", 10, algorithms.Entangled(10, 4, 1)},
	} {
		ddTime := timeIt(func() {
			s := sim.New(tc.circ)
			if _, err := s.RunToEnd(); err != nil {
				panic(err)
			}
		})
		denseTime := timeIt(func() { denseRun(tc.circ) })
		fmt.Fprintf(w, "%-12s %6d %14s %14s\n", tc.family, tc.n, ddTime, denseTime)
	}
	return sum, nil
}

// timeIt reports the wall-clock of f, best of three runs.
func timeIt(f func()) time.Duration {
	best := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// denseRun simulates a unitary circuit with the in-place dense baseline.
func denseRun(c *qc.Circuit) {
	v := linalg.ZeroState(c.NQubits)
	for i := range c.Ops {
		op := &c.Ops[i]
		if op.Kind != qc.KindGate {
			continue
		}
		var pos, neg []int
		for _, ctl := range op.Controls {
			if ctl.Neg {
				neg = append(neg, ctl.Qubit)
			} else {
				pos = append(pos, ctl.Qubit)
			}
		}
		if op.Gate == qc.Swap {
			x := qc.Matrix2(qc.X, nil)
			a, t := op.Targets[0], op.Targets[1]
			linalg.ApplyControlledGate(v, x, t, append(append([]int{}, pos...), a), neg)
			linalg.ApplyControlledGate(v, x, a, append(append([]int{}, pos...), t), neg)
			linalg.ApplyControlledGate(v, x, t, append(append([]int{}, pos...), a), neg)
			continue
		}
		linalg.ApplyControlledGate(v, qc.Matrix2(op.Gate, op.Params), op.Targets[0], pos, neg)
	}
}

func runCircuit(c *qc.Circuit) (int, error) {
	s := sim.New(c)
	if _, err := s.RunToEnd(); err != nil {
		return 0, err
	}
	return dd.SizeV(s.State()), nil
}

// runE9 validates sampling against exact Born probabilities via the
// total-variation distance.
func runE9(w io.Writer) (Summary, error) {
	const shots = 200000
	fmt.Fprintf(w, "%-12s %10s %14s\n", "circuit", "shots", "TV distance")
	sum := Summary{}
	cases := []struct {
		name string
		circ *qc.Circuit
	}{
		{"bell", algorithms.Bell()},
		{"ghz4", algorithms.GHZ(4)},
		{"w4", algorithms.WState(4)},
		{"random3", algorithms.RandomCircuit(3, 4, 9)},
	}
	for _, c := range cases {
		s := sim.New(c.circ)
		if _, err := s.RunToEnd(); err != nil {
			return nil, err
		}
		amps := s.Amplitudes()
		counts := dd.SampleCounts(s.State(), shots, rand.New(rand.NewSource(1234)))
		tv := 0.0
		for idx, amp := range amps {
			pExact := real(amp)*real(amp) + imag(amp)*imag(amp)
			pEmp := float64(counts[int64(idx)]) / shots
			tv += math.Abs(pExact - pEmp)
		}
		tv /= 2
		fmt.Fprintf(w, "%-12s %10d %14.5f\n", c.name, shots, tv)
		sum["tv_"+c.name] = tv
		if tv > 0.01 {
			return nil, fmt.Errorf("%s: sampling deviates from Born distribution (TV %v)", c.name, tv)
		}
	}
	return sum, nil
}

// runE10 runs teleportation end-to-end over random payloads and seeds
// and reports the payload fidelity on Bob's qubit.
func runE10(w io.Writer) (Summary, error) {
	rng := rand.New(rand.NewSource(77))
	worst := 1.0
	const trials = 50
	for i := 0; i < trials; i++ {
		theta := rng.Float64() * math.Pi
		phi := rng.Float64() * 2 * math.Pi
		s := sim.New(algorithms.Teleport(theta, phi), sim.WithSeed(rng.Int63()))
		if _, err := s.RunToEnd(); err != nil {
			return nil, err
		}
		u := qc.Matrix2(qc.U, []float64{theta, phi, 0})
		want0, want1 := u[0], u[2]
		amps := s.Amplitudes()
		var got0, got1 complex128
		for idx, amp := range amps {
			if cmplx.Abs(amp) < 1e-12 {
				continue
			}
			if idx&1 == 0 {
				got0 = amp
			} else {
				got1 = amp
			}
		}
		f := cmplx.Abs(cmplx.Conj(got0)*want0 + cmplx.Conj(got1)*want1)
		if f < worst {
			worst = f
		}
	}
	fmt.Fprintf(w, "%-28s %10d\n", "random payload trials", trials)
	fmt.Fprintf(w, "%-28s %10.6f\n", "worst payload fidelity", worst)
	if worst < 1-1e-6 {
		return nil, fmt.Errorf("teleportation lost fidelity: %v", worst)
	}
	return Summary{"worstFidelity": worst, "trials": trials}, nil
}

// runA1 quantifies the tolerance-based complex table (ref [14]): with
// an effectively disabled tolerance, numerically equal values stop
// being identified and node sharing degrades.
func runA1(w io.Writer) (Summary, error) {
	build := func(tol float64) (int, int) {
		p := dd.NewTol(3, tol)
		u, _, err := verify.BuildFunctionality(p, algorithms.QFTCompiled(3))
		if err != nil {
			return 0, 0
		}
		_, mat := p.ActiveNodes()
		return dd.SizeM(u), mat
	}
	nodesDefault, liveDefault := build(cnum.DefaultTolerance)
	nodesTiny, liveTiny := build(1e-17)
	fmt.Fprintf(w, "%-24s %14s %14s\n", "tolerance", "final nodes", "live nodes")
	fmt.Fprintf(w, "%-24g %14d %14d\n", cnum.DefaultTolerance, nodesDefault, liveDefault)
	fmt.Fprintf(w, "%-24g %14d %14d\n", 1e-17, nodesTiny, liveTiny)
	if liveTiny <= liveDefault {
		// Not fatal (small instance), but the expected direction is
		// more live nodes without identification.
		fmt.Fprintln(w, "note: instance too small to show degradation in live nodes")
	}
	return Summary{
		"nodesDefault": float64(nodesDefault),
		"nodesTiny":    float64(nodesTiny),
		"liveDefault":  float64(liveDefault),
		"liveTiny":     float64(liveTiny),
	}, nil
}

// runA2 quantifies the compute tables: repeated application of the
// same circuit layer with caches on vs off.
func runA2(w io.Writer) (Summary, error) {
	run := func(disable bool) dd.Stats {
		p := dd.New(8)
		p.CachesDisabled = disable
		st := p.ZeroState()
		layer := make([]dd.MEdge, 0, 8)
		for q := 0; q < 8; q++ {
			layer = append(layer, gateDD(p, qc.H, nil, q))
		}
		for rep := 0; rep < 10; rep++ {
			for _, g := range layer {
				st = p.MultMV(g, st)
			}
		}
		return p.Stats()
	}
	on := run(false)
	off := run(true)
	rateOn := float64(on.CacheHits) / float64(on.CacheLookups)
	rateOff := float64(off.CacheHits) / float64(off.CacheLookups)
	fmt.Fprintf(w, "%-12s %12s %12s %10s %10s %10s\n", "caches", "lookups", "hits", "hit rate", "ct stores", "ct evict")
	fmt.Fprintf(w, "%-12s %12d %12d %10.3f %10d %10d\n", "enabled", on.CacheLookups, on.CacheHits, rateOn, on.CTStores, on.CTEvictions)
	fmt.Fprintf(w, "%-12s %12d %12d %10.3f %10d %10d\n", "disabled", off.CacheLookups, off.CacheHits, rateOff, off.CTStores, off.CTEvictions)
	fmt.Fprintf(w, "unique-table load: vector %.3f, matrix %.3f; chain collisions: %d\n",
		on.UniqueLoadV, on.UniqueLoadM, on.UTCollisions)
	if rateOn <= rateOff {
		return nil, fmt.Errorf("enabled caches do not outperform disabled ones (%v vs %v)", rateOn, rateOff)
	}
	return Summary{"hitRateOn": rateOn, "hitRateOff": rateOff}, nil
}

// runA4 compares the two vector normalization schemes: both are
// canonical and represent identical states, but only the 2-norm scheme
// (footnote 3 of the paper) turns squared edge weights into branch
// probabilities — the prerequisite for O(n) sampling and the
// measurement dialogs.
func runA4(w io.Writer) (Summary, error) {
	const n = 6
	build := func(scheme dd.NormScheme) (*dd.Pkg, dd.VEdge, error) {
		p := dd.New(n)
		p.SetVectorNormalization(scheme)
		st := p.ZeroState()
		circ := algorithms.WState(n)
		for i := range circ.Ops {
			op := &circ.Ops[i]
			if op.Kind != qc.KindGate {
				continue
			}
			ctl := make([]dd.Control, len(op.Controls))
			for k, c := range op.Controls {
				ctl[k] = dd.Control{Qubit: c.Qubit, Neg: c.Neg}
			}
			st = p.MultMV(gateDDOp(p, op, ctl), st)
		}
		return p, st, nil
	}
	p2, e2, err := build(dd.NormL2)
	if err != nil {
		return nil, err
	}
	pm, em, err := build(dd.NormMax)
	if err != nil {
		return nil, err
	}
	n2 := dd.SizeV(e2)
	nm := dd.SizeV(em)
	// Amplitudes must agree between schemes.
	maxDiff := 0.0
	v2 := p2.Vector(e2)
	vm := pm.Vector(em)
	for i := range v2 {
		if d := cmplx.Abs(v2[i] - vm[i]); d > maxDiff {
			maxDiff = d
		}
	}
	// Probability read-out only works under NormL2.
	samplingOK := func(p *dd.Pkg, e dd.VEdge) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_ = p.ProbOne(e, 0)
		return true
	}
	fmt.Fprintf(w, "%-14s %12s %16s %18s\n", "scheme", "DD nodes", "amp max diff", "prob read-out")
	fmt.Fprintf(w, "%-14s %12d %16s %18v\n", "2-norm", n2, "-", samplingOK(p2, e2))
	fmt.Fprintf(w, "%-14s %12d %16.2e %18v\n", "max-norm", nm, maxDiff, samplingOK(pm, em))
	if maxDiff > 1e-9 {
		return nil, fmt.Errorf("normalization schemes represent different states (diff %g)", maxDiff)
	}
	if !samplingOK(p2, e2) || samplingOK(pm, em) {
		return nil, fmt.Errorf("probability read-out guard wrong")
	}
	return Summary{"nodesL2": float64(n2), "nodesMax": float64(nm), "ampMaxDiff": maxDiff}, nil
}

func gateDDOp(p *dd.Pkg, op *qc.Op, ctl []dd.Control) dd.MEdge {
	if op.Gate == qc.Swap {
		return p.MakeSwapDD(op.Targets[0], op.Targets[1], ctl...)
	}
	return p.MakeGateDD(dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0], ctl...)
}

// runA5 sweeps the approximation threshold on a hard (near-maximal)
// random state and reports the size/fidelity trade-off — the standard
// counter-measure when the exponential worst case of Sec. III hits.
func runA5(w io.Writer) (Summary, error) {
	const n = 12
	circ := algorithms.Entangled(n, 6, 3)
	s := sim.New(circ)
	if _, err := s.RunToEnd(); err != nil {
		return nil, err
	}
	p := s.Pkg()
	e := s.State()
	fmt.Fprintf(w, "%-12s %12s %12s %14s\n", "threshold", "nodes", "kept ratio", "fidelity")
	sum := Summary{}
	base := dd.SizeV(e)
	fmt.Fprintf(w, "%-12s %12d %12.3f %14.9f\n", "exact", base, 1.0, 1.0)
	prevFid := 1.0
	for _, th := range []float64{1e-8, 1e-6, 1e-5, 1e-4, 1e-3} {
		approx, fid, _, after := p.Approximate(e, th)
		_ = approx
		fmt.Fprintf(w, "%-12.0e %12d %12.3f %14.9f\n", th, after, float64(after)/float64(base), fid)
		sum[fmt.Sprintf("nodes_%.0e", th)] = float64(after)
		sum[fmt.Sprintf("fid_%.0e", th)] = fid
		if fid > prevFid+1e-9 {
			return nil, fmt.Errorf("fidelity not monotone in threshold")
		}
		prevFid = fid
	}
	if sum["nodes_1e-03"] >= float64(base) {
		return nil, fmt.Errorf("aggressive pruning did not shrink the diagram")
	}
	if sum["fid_1e-06"] < 0.99 {
		return nil, fmt.Errorf("gentle pruning lost too much fidelity: %v", sum["fid_1e-06"])
	}
	return sum, nil
}

// runA3 sweeps the verification strategies over growing QFT sizes.
func runA3(w io.Writer) (Summary, error) {
	fmt.Fprintf(w, "%-6s %14s %14s %14s %14s\n", "n", "construction", "sequential", "one-to-one", "proportional")
	sum := Summary{}
	for _, n := range []int{3, 4, 5, 6} {
		qft := algorithms.QFT(n)
		comp := algorithms.QFTCompiled(n)
		var peaks []int
		for _, s := range []verify.Strategy{verify.Construction, verify.Sequential, verify.OneToOne, verify.Proportional} {
			res, err := verify.Check(qft, comp, s)
			if err != nil {
				return nil, err
			}
			if !res.Equivalent {
				return nil, fmt.Errorf("QFT(%d) strategy %v failed", n, s)
			}
			peaks = append(peaks, res.PeakNodes)
		}
		fmt.Fprintf(w, "%-6d %14d %14d %14d %14d\n", n, peaks[0], peaks[1], peaks[2], peaks[3])
		sum[fmt.Sprintf("prop_%d", n)] = float64(peaks[3])
		sum[fmt.Sprintf("cons_%d", n)] = float64(peaks[0])
		if peaks[3] > peaks[0] {
			return nil, fmt.Errorf("QFT(%d): proportional peak %d exceeds construction %d", n, peaks[3], peaks[0])
		}
	}
	return sum, nil
}

// runA6 quantifies the variable-order dependence the paper notes in
// Sec. III-C ("canonic representation with respect to a given variable
// order"): interleaved Bell pairs are exponential under the natural
// order and linear once partners sit adjacently; greedy sifting finds
// such an order automatically.
func runA6(w io.Writer) (Summary, error) {
	fmt.Fprintf(w, "%-6s %14s %14s %14s\n", "n", "natural order", "paired order", "sifted")
	sum := Summary{}
	for _, n := range []int{6, 8, 10, 12} {
		p := dd.New(n)
		st := p.ZeroState()
		for i := 0; i < n/2; i++ {
			st = p.MultMV(gateDD(p, qc.H, nil, i), st)
			st = p.MultMV(gateDD(p, qc.X, nil, i+n/2, dd.Control{Qubit: i}), st)
		}
		natural := dd.SizeV(st)
		perm := make([]int, n)
		for i := 0; i < n/2; i++ {
			perm[i] = 2 * i
			perm[i+n/2] = 2*i + 1
		}
		paired, err := p.ReorderedSize(st, perm)
		if err != nil {
			return nil, err
		}
		sifted := -1
		if n <= 10 { // sifting is O(n^2) reorders; keep the harness quick
			_, sifted, err = p.SiftOrder(st)
			if err != nil {
				return nil, err
			}
		}
		if sifted >= 0 {
			fmt.Fprintf(w, "%-6d %14d %14d %14d\n", n, natural, paired, sifted)
		} else {
			fmt.Fprintf(w, "%-6d %14d %14d %14s\n", n, natural, paired, "-")
		}
		sum[fmt.Sprintf("natural_%d", n)] = float64(natural)
		sum[fmt.Sprintf("paired_%d", n)] = float64(paired)
		if paired >= natural && n >= 8 {
			return nil, fmt.Errorf("order study broken: paired %d >= natural %d at n=%d", paired, natural, n)
		}
	}
	return sum, nil
}
