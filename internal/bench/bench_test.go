package bench

import (
	"io"
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every experiment once and checks the
// paper-exact assertions built into the drivers.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			sum, err := e.Run(io.Discard)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(sum) == 0 {
				t.Fatalf("%s produced no summary", e.ID)
			}
		})
	}
}

// TestHeadlineNumbers asserts the exact figures the paper states.
func TestHeadlineNumbers(t *testing.T) {
	e1, _ := ByID("E1")
	s, err := e1.Run(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s["nodes"] != 3 {
		t.Fatalf("E1 nodes = %v, want 3", s["nodes"])
	}
	e6, _ := ByID("E6")
	s, err = e6.Run(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if s["peak_proportional"] != 9 || s["peak_construction"] != 21 {
		t.Fatalf("E6 numbers deviate from Ex. 12: %v", s)
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E5"); !ok {
		t.Fatal("E5 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestRunAllPrintsEverySection(t *testing.T) {
	var b strings.Builder
	sums, err := RunAll(&b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, e := range All() {
		if !strings.Contains(out, "=== "+e.ID+":") {
			t.Fatalf("output missing section %s", e.ID)
		}
		if _, ok := sums[e.ID]; !ok {
			t.Fatalf("summaries missing %s", e.ID)
		}
	}
	if !strings.Contains(out, "summary:") {
		t.Fatal("no summaries printed")
	}
}
