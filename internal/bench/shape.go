package bench

// Shape-profiler study (PR 10): quantify the overhead of the
// structural sampling stride on simulation workloads, and record the
// identity-padding fractions and sharing factors of the worked
// examples — the numbers EXPERIMENTS.md cites and BENCH_pr10.json
// guards.

import (
	"fmt"
	"io"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
	"quantumdd/internal/sim"
	"quantumdd/internal/verify"
)

// shapeStride is the sampling interval the overhead is measured at —
// the web server's default (see internal/web).
const shapeStride = 32

// identityFraction builds circ's functionality matrix and profiles it.
func identityFraction(circ *qc.Circuit) (dd.ShapeProfile, error) {
	p := dd.New(circ.NQubits)
	u, _, err := verify.BuildFunctionality(p, circ)
	if err != nil {
		return dd.ShapeProfile{}, err
	}
	return p.ShapeM(u), nil
}

// runS1 times the profiling stride against the disabled path on the
// kernel-study workloads and profiles the canonical examples.
func runS1(w io.Writer) (Summary, error) {
	sum := Summary{}

	scenarios := []kernelScenario{
		{"ghz20", algorithms.GHZ(20), 20},
		{"qaoa12", qaoaCircuit(12), 2},
		{"entangled12", algorithms.Entangled(12, 5, 3), 2},
	}
	fmt.Fprintf(w, "sampling overhead at stride %d (per-step check is one branch when off)\n", shapeStride)
	fmt.Fprintf(w, "%-14s %14s %14s %10s\n", "scenario", "off", "on", "overhead")
	var offTotal, onTotal float64
	for _, sc := range scenarios {
		// One untimed pass first: the leg measured first otherwise pays
		// the process warm-up (heap growth, page faults) alone and the
		// overhead comes out negative.
		timeSim(sc.circ, 1)
		off := timeSim(sc.circ, sc.reps)
		on := timeSim(sc.circ, sc.reps, sim.WithShapeInterval(shapeStride))
		pct := (on.Seconds() - off.Seconds()) / off.Seconds() * 100
		fmt.Fprintf(w, "%-14s %14s %14s %9.2f%%\n", sc.name, off, on, pct)
		sum["S1_"+sc.name+"_off_ms"] = float64(off.Microseconds()) / 1000
		sum["S1_"+sc.name+"_on_ms"] = float64(on.Microseconds()) / 1000
		offTotal += off.Seconds()
		onTotal += on.Seconds()
	}
	overhead := (onTotal - offTotal) / offTotal * 100
	sum["shape_overhead_pct"] = overhead
	fmt.Fprintf(w, "total overhead: %.2f%%\n\n", overhead)

	// Structural profiles of the worked examples. The identity-padding
	// fraction weighs identity-chain nodes by their share of the
	// decision-tree expansion; Grover's diffusion touches every qubit,
	// so only the QFT examples retain identity padding mid-register.
	examples := []struct {
		name string
		circ *qc.Circuit
	}{
		{"bell", algorithms.Bell()},
		{"ghz12", algorithms.GHZ(12)},
		{"qft7", algorithms.QFT(7)},
		{"grover5", algorithms.Grover(5, 13)},
	}
	fmt.Fprintf(w, "%-10s %8s %8s %10s %10s\n", "example", "nodes", "widest", "sharing", "identity")
	for _, ex := range examples {
		p, err := identityFraction(ex.circ)
		if err != nil {
			return sum, err
		}
		fmt.Fprintf(w, "%-10s %8d %8d %9.1fx %9.1f%%\n",
			ex.name, p.Nodes, p.MaxLevelNodes, p.SharingFactor, p.IdentityFraction*100)
		sum["ident_frac_"+ex.name] = p.IdentityFraction
		sum["sharing_"+ex.name] = p.SharingFactor
	}
	return sum, nil
}
