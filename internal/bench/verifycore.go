package bench

// Verify-core study (PR 9): quantify the matrix-side gate kernel
// (dd.ApplyGateML/MR) against the MakeGateDD+MultMM baseline inside
// the alternating equivalence checker, across every strategy, with a
// bit-identical-verdict cross-check before any timing.

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
	"quantumdd/internal/verify"
)

// verifyPair is one equivalence-checking workload: two independently
// compiled but equivalent circuits.
type verifyPair struct {
	name   string
	c1, c2 *qc.Circuit
	reps   int // check runs per timing sample, amortizing setup
}

// cxToHCZH rewrites every singly-positive-controlled X as H·CZ·H — a
// provably equivalent recompilation, giving the alternating scheme a
// pair with genuinely different gate sequences.
func cxToHCZH(c *qc.Circuit) *qc.Circuit {
	out := qc.New(c.NQubits, 0)
	out.Name = c.Name + "-recompiled"
	for i := range c.Ops {
		op := &c.Ops[i]
		if op.Kind == qc.KindGate && op.Gate == qc.X && len(op.Controls) == 1 && !op.Controls[0].Neg {
			t, ctl := op.Targets[0], op.Controls[0].Qubit
			out.H(t)
			out.Z(t, qc.Control{Qubit: ctl})
			out.H(t)
			continue
		}
		out.Ops = append(out.Ops, *op)
	}
	return out
}

// randomClifford builds a deterministic random Clifford circuit from
// H, S and CX layers — the circuit family whose functionality stays
// DD-compact, so the check is dominated by per-step gate application
// (exactly what V1 wants to measure).
func randomClifford(n, layers int, seed int64) *qc.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := qc.New(n, 0)
	c.Name = fmt.Sprintf("clifford-%d-%d", n, layers)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			switch rng.Intn(3) {
			case 0:
				c.H(q)
			case 1:
				c.S(q)
			case 2:
				c.H(q)
				c.S(q)
			}
		}
		// Brickwork entangler: nearest-neighbour CX pairs, offset
		// alternating per layer — the structured regime decision
		// diagrams stay compact in.
		for q := l % 2; q+1 < n; q += 2 {
			c.CX(q, q+1)
		}
	}
	return c
}

var v1Strategies = []verify.Strategy{
	verify.Construction, verify.Sequential, verify.OneToOne,
	verify.Proportional, verify.Lookahead,
}

func timeVerify(pair verifyPair, s verify.Strategy, opts ...verify.Option) time.Duration {
	return timeIt(func() {
		for r := 0; r < pair.reps; r++ {
			p := dd.New(pair.c1.NQubits)
			if _, err := verify.CheckOn(p, pair.c1, pair.c2, s, opts...); err != nil {
				panic(err)
			}
		}
	})
}

// runV1 cross-checks the matrix-apply kernel against the generic
// MultMM oracle on every strategy (identical verdicts, phase flags and
// pointer-identical root edges on a shared package), then times both
// engines on fresh packages per run.
func runV1(w io.Writer) (Summary, error) {
	pairs := []verifyPair{
		{"ghz12", algorithms.GHZ(12), cxToHCZH(algorithms.GHZ(12)), 10},
		{"qft7", algorithms.QFT(7), algorithms.QFTCompiled(7), 2},
		{"clifford8", randomClifford(8, 4, 5), cxToHCZH(randomClifford(8, 4, 5)), 3},
	}
	fmt.Fprintf(w, "%-12s %-13s %12s %12s %9s\n", "pair", "strategy", "generic", "kernel", "speedup")
	sum := Summary{}
	var ctHits, kernelOps, genericOps uint64
	var totalGeneric, totalKernel time.Duration
	for _, pair := range pairs {
		var pairGeneric, pairKernel time.Duration
		for _, s := range v1Strategies {
			// Differential cross-check on one shared package first:
			// canonicity makes disagreement a pointer inequality.
			p := dd.New(pair.c1.NQubits)
			kr, err := verify.CheckOn(p, pair.c1, pair.c2, s)
			if err != nil {
				return nil, fmt.Errorf("%s/%v kernel: %w", pair.name, s, err)
			}
			gr, err := verify.CheckOn(p, pair.c1, pair.c2, s, verify.WithGenericMM())
			if err != nil {
				return nil, fmt.Errorf("%s/%v generic: %w", pair.name, s, err)
			}
			if kr.Equivalent != gr.Equivalent || kr.UpToGlobalPhase != gr.UpToGlobalPhase {
				return nil, fmt.Errorf("%s/%v: verdicts differ (kernel %v/%v, generic %v/%v)",
					pair.name, s, kr.Equivalent, kr.UpToGlobalPhase, gr.Equivalent, gr.UpToGlobalPhase)
			}
			if !kr.Equivalent {
				return nil, fmt.Errorf("%s/%v: equivalent pair rejected", pair.name, s)
			}
			if kr.Root != gr.Root {
				return nil, fmt.Errorf("%s/%v: root edges differ between kernel and generic", pair.name, s)
			}
			st := p.Stats()
			ctHits += st.ApplyMCTHits
			kernelOps += uint64(kr.KernelOps)
			genericOps += uint64(gr.GenericOps)

			generic := timeVerify(pair, s, verify.WithGenericMM())
			kernel := timeVerify(pair, s)
			pairGeneric += generic
			pairKernel += kernel
			fmt.Fprintf(w, "%-12s %-13v %12s %12s %8.2fx\n",
				pair.name, s, generic, kernel, float64(generic)/float64(kernel))
		}
		totalGeneric += pairGeneric
		totalKernel += pairKernel
		sum["speedup_"+pair.name] = float64(pairGeneric) / float64(pairKernel)
		if sum["speedup_"+pair.name] > sum["speedup_v1_best"] {
			sum["speedup_v1_best"] = sum["speedup_"+pair.name]
		}
	}
	sum["speedup_v1"] = float64(totalGeneric) / float64(totalKernel)
	sum["applym_ct_hits"] = float64(ctHits)
	sum["kernel_ops"] = float64(kernelOps)
	sum["generic_ops"] = float64(genericOps)
	if ctHits == 0 {
		return nil, fmt.Errorf("matrix-apply compute table never hit during the cross-check runs")
	}
	if kernelOps == 0 || genericOps == 0 {
		return nil, fmt.Errorf("op accounting degenerate (kernel=%d generic=%d)", kernelOps, genericOps)
	}
	return sum, nil
}
