package bench

// Parallel trajectory study (PR 7): throughput of the sharded replica
// pool against the sequential path on the same Monte-Carlo ensemble,
// plus the determinism cross-check that makes the comparison honest —
// both runs must produce the bit-identical NoisyResult.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/sim"
)

// runN1 times one noisy GHZ ensemble sequentially (workers=1) and on
// the full pool (workers=GOMAXPROCS), verifies the results are
// bit-identical, and reports trajectories/second for both. The
// speedup_par figure is the CI smoke guard: a 2-core runner must see
// ≥1.5x; on a single-core machine the pool collapses to one worker
// and the ratio is ~1 by construction, so the hard failure conditions
// are only a determinism break or a pathological parallel slowdown.
func runN1(w io.Writer) (Summary, error) {
	circ := algorithms.GHZ(14)
	model := sim.NoiseModel{Depolarizing: 0.02}
	const trajectories = 400
	const seed = 7
	workers := runtime.GOMAXPROCS(0)

	var seq, par *sim.NoisyResult
	seqT := timeIt(func() {
		r, err := sim.RunNoisy(circ, model, trajectories, seed, sim.WithWorkers(1))
		if err != nil {
			panic(err)
		}
		seq = r
	})
	parT := timeIt(func() {
		r, err := sim.RunNoisy(circ, model, trajectories, seed, sim.WithWorkers(workers))
		if err != nil {
			panic(err)
		}
		par = r
	})

	// Determinism first: the parallel run must be the same ensemble.
	if par.Trajectories != seq.Trajectories || par.ErrorEvents != seq.ErrorEvents ||
		par.MeanNodes != seq.MeanNodes || len(par.Counts) != len(seq.Counts) {
		return nil, fmt.Errorf("parallel result diverges from sequential: %+v vs %+v", par, seq)
	}
	for k, v := range seq.Counts {
		if par.Counts[k] != v {
			return nil, fmt.Errorf("counts[%d]: parallel %d vs sequential %d", k, par.Counts[k], v)
		}
	}

	perSec := func(d time.Duration) float64 {
		return float64(trajectories) / d.Seconds()
	}
	speedup := float64(seqT) / float64(parT)
	fmt.Fprintf(w, "%-22s %8s %14s %14s\n", "scenario", "workers", "wall", "traj/s")
	fmt.Fprintf(w, "%-22s %8d %14s %14.1f\n", "ghz14-depol0.02-seq", 1, seqT, perSec(seqT))
	fmt.Fprintf(w, "%-22s %8d %14s %14.1f\n", "ghz14-depol0.02-par", par.Workers, parT, perSec(parT))
	fmt.Fprintf(w, "parallel speedup %.2fx on %d workers; results bit-identical\n", speedup, par.Workers)

	if par.Workers > 1 && speedup < 0.5 {
		return nil, fmt.Errorf("pathological parallel slowdown: %.2fx on %d workers", speedup, par.Workers)
	}
	return Summary{
		"workers":        float64(par.Workers),
		"trajectories":   float64(trajectories),
		"seq_traj_per_s": perSec(seqT),
		"par_traj_per_s": perSec(parT),
		"speedup_par":    speedup,
	}, nil
}
