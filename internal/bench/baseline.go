package bench

// Baseline regression gating: ddbench -baseline BENCH_prN.json reruns
// the experiments and compares the merged summary against the
// baseline file's "after.ddbench" map, failing the run (nonzero exit)
// on regressions past a configurable threshold. Only machine-portable
// metrics are compared — keys carrying wall-clock or byte units
// (_ms/_ns/_bytes) vary with hardware and are skipped, while ratios,
// op counts, and cache-hit totals are properties of the algorithms.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// BaselineFile is the checked-in BENCH_prN.json schema (the fields
// the comparison needs; unknown fields are ignored).
type BaselineFile struct {
	PR    int    `json:"pr"`
	Title string `json:"title"`
	After struct {
		Commit  string             `json:"commit"`
		Ddbench map[string]float64 `json:"ddbench"`
	} `json:"after"`
}

// LoadBaseline reads and decodes a BENCH_prN.json file.
func LoadBaseline(path string) (*BaselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var b BaselineFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if len(b.After.Ddbench) == 0 {
		return nil, fmt.Errorf("bench: %s carries no after.ddbench metrics", path)
	}
	return &b, nil
}

// Regression is one baseline comparison failure.
type Regression struct {
	Key      string
	Baseline float64
	Current  float64
	Reason   string
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: baseline %g, current %g (%s)", r.Key, r.Baseline, r.Current, r.Reason)
}

// portableKey reports whether a summary key is machine-portable.
// Wall-clock and byte-sized metrics depend on the hardware the
// baseline was recorded on and are never compared.
func portableKey(k string) bool {
	for _, unit := range []string{"_ms", "_ns", "_bytes", "_seconds"} {
		if strings.HasSuffix(k, unit) {
			return false
		}
	}
	return true
}

// higherBetter reports whether a larger current value is an
// improvement for this key (speedup ratios, cache-hit totals).
func higherBetter(k string) bool {
	return strings.Contains(k, "speedup") ||
		strings.HasSuffix(k, "_hits") ||
		strings.HasSuffix(k, "_hit_rate") ||
		strings.HasSuffix(k, "_best")
}

// lowerBetter reports whether a smaller current value is an
// improvement (overhead percentages, peak sizes).
func lowerBetter(k string) bool {
	return strings.Contains(k, "overhead") || strings.Contains(k, "_peak")
}

// CompareBaseline checks current (a merged summary over the run's
// experiments) against the baseline metrics. threshold is the
// relative tolerance (0.2 = 20%): higher-better keys regress when
// current < baseline*(1-threshold), lower-better keys when
// current > baseline*(1+threshold), and direction-free keys (op
// counts and similar determinism witnesses) when they drift past the
// tolerance either way. Keys missing from either side are skipped —
// a baseline gates the experiments it recorded, not the whole suite.
func CompareBaseline(baseline, current map[string]float64, threshold float64) []Regression {
	if threshold < 0 {
		threshold = 0
	}
	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regs []Regression
	for _, k := range keys {
		if !portableKey(k) {
			continue
		}
		base := baseline[k]
		cur, ok := current[k]
		if !ok {
			continue
		}
		switch {
		case higherBetter(k):
			if cur < base*(1-threshold) {
				regs = append(regs, Regression{k, base, cur,
					fmt.Sprintf("below %g%% of baseline", (1-threshold)*100)})
			}
		case lowerBetter(k):
			if cur > base*(1+threshold) {
				regs = append(regs, Regression{k, base, cur,
					fmt.Sprintf("above %g%% of baseline", (1+threshold)*100)})
			}
		default:
			if base == 0 {
				if cur != 0 {
					regs = append(regs, Regression{k, base, cur, "baseline is zero"})
				}
				continue
			}
			if math.Abs(cur-base) > threshold*math.Abs(base) {
				regs = append(regs, Regression{k, base, cur,
					fmt.Sprintf("drifted more than %g%%", threshold*100)})
			}
		}
	}
	return regs
}
