package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestNormMaxAmplitudesAgree: both normalization schemes represent the
// same vectors (amplitudes agree), they just distribute the weights
// differently.
func TestNormMaxAmplitudesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 25; round++ {
		amps := randomState(rng, 3)
		l2 := New(3)
		mx := New(3)
		mx.SetVectorNormalization(NormMax)
		e1, err := l2.FromVector(amps)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := mx.FromVector(amps)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 8; i++ {
			if cmplx.Abs(Amplitude(e1, i)-Amplitude(e2, i)) > 1e-9 {
				t.Fatalf("round %d: amplitude %d differs between schemes", round, i)
			}
		}
	}
}

// TestNormMaxCanonicity: max-normalization is also canonical — equal
// vectors share the node.
func TestNormMaxCanonicity(t *testing.T) {
	p := New(2)
	p.SetVectorNormalization(NormMax)
	amps := []complex128{complex(0.5, 0), complex(0.5, 0), complex(0.5, 0), complex(0.5, 0)}
	a, err := p.FromVector(amps)
	if err != nil {
		t.Fatal(err)
	}
	// Build the same state through gates.
	h0 := p.MakeGateDD(gateH, 0)
	h1 := p.MakeGateDD(gateH, 1)
	b := p.MultMV(h1, p.MultMV(h0, p.ZeroState()))
	if a.N != b.N {
		t.Fatal("NormMax lost canonicity")
	}
}

// TestNormMaxWeightConvention: under NormMax one outgoing weight of
// every node is exactly 1; under NormL2 the squared weights sum to 1.
func TestNormMaxWeightConvention(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	amps := randomState(rng, 3)
	mx := New(3)
	mx.SetVectorNormalization(NormMax)
	e, err := mx.FromVector(amps)
	if err != nil {
		t.Fatal(err)
	}
	walkV(e.N, map[*VNode]bool{}, func(n *VNode) {
		if n.E[0].W != 1 && n.E[1].W != 1 {
			t.Fatalf("NormMax node without unit weight: %v %v", n.E[0].W, n.E[1].W)
		}
	})
	l2 := New(3)
	e2, err := l2.FromVector(amps)
	if err != nil {
		t.Fatal(err)
	}
	walkV(e2.N, map[*VNode]bool{}, func(n *VNode) {
		s := prob2(n.E[0].W) + prob2(n.E[1].W)
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("NormL2 node weights square-sum to %v", s)
		}
	})
}

func prob2(w complex128) float64 { return real(w)*real(w) + imag(w)*imag(w) }

func walkV(n *VNode, seen map[*VNode]bool, f func(*VNode)) {
	if n == vTerminal || seen[n] {
		return
	}
	seen[n] = true
	f(n)
	walkV(n.E[0].N, seen, f)
	walkV(n.E[1].N, seen, f)
}

// TestNormMaxProbOneGuard: probability read-out requires NormL2.
func TestNormMaxProbOneGuard(t *testing.T) {
	p := New(2)
	p.SetVectorNormalization(NormMax)
	e := p.ZeroState()
	defer func() {
		if recover() == nil {
			t.Fatal("ProbOne must reject NormMax diagrams")
		}
	}()
	p.ProbOne(e, 0)
}

// TestSetVectorNormalizationLate: switching schemes after building is
// rejected.
func TestSetVectorNormalizationLate(t *testing.T) {
	p := New(2)
	_ = p.ZeroState()
	defer func() {
		if recover() == nil {
			t.Fatal("late scheme switch must panic")
		}
	}()
	p.SetVectorNormalization(NormMax)
}

// TestNormSchemesSimulationAgree: a full gate sequence produces the
// same state under both schemes.
func TestNormSchemesSimulationAgree(t *testing.T) {
	run := func(scheme NormScheme) []complex128 {
		p := New(3)
		p.SetVectorNormalization(scheme)
		st := p.ZeroState()
		st = p.MultMV(p.MakeGateDD(gateH, 2), st)
		st = p.MultMV(p.MakeGateDD(gateT, 1, Control{Qubit: 2}), st)
		st = p.MultMV(p.MakeGateDD(gateX, 0, Control{Qubit: 2}), st)
		st = p.MultMV(p.MakeGateDD(gateS, 0), st)
		return p.Vector(st)
	}
	a := run(NormL2)
	b := run(NormMax)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("amplitude %d: %v vs %v", i, a[i], b[i])
		}
	}
}
