package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestNormMaxAmplitudesAgree: both normalization schemes represent the
// same vectors (amplitudes agree), they just distribute the weights
// differently.
func TestNormMaxAmplitudesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 25; round++ {
		amps := randomState(rng, 3)
		l2 := New(3)
		mx := New(3)
		mx.SetVectorNormalization(NormMax)
		e1, err := l2.FromVector(amps)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := mx.FromVector(amps)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 8; i++ {
			if cmplx.Abs(Amplitude(e1, i)-Amplitude(e2, i)) > 1e-9 {
				t.Fatalf("round %d: amplitude %d differs between schemes", round, i)
			}
		}
	}
}

// TestNormMaxCanonicity: max-normalization is also canonical — equal
// vectors share the node.
func TestNormMaxCanonicity(t *testing.T) {
	p := New(2)
	p.SetVectorNormalization(NormMax)
	amps := []complex128{complex(0.5, 0), complex(0.5, 0), complex(0.5, 0), complex(0.5, 0)}
	a, err := p.FromVector(amps)
	if err != nil {
		t.Fatal(err)
	}
	// Build the same state through gates.
	h0 := p.MakeGateDD(gateH, 0)
	h1 := p.MakeGateDD(gateH, 1)
	b := p.MultMV(h1, p.MultMV(h0, p.ZeroState()))
	if a.N != b.N {
		t.Fatal("NormMax lost canonicity")
	}
}

// TestNormMaxWeightConvention: under NormMax one outgoing weight of
// every node is exactly 1; under NormL2 the squared weights sum to 1.
func TestNormMaxWeightConvention(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	amps := randomState(rng, 3)
	mx := New(3)
	mx.SetVectorNormalization(NormMax)
	e, err := mx.FromVector(amps)
	if err != nil {
		t.Fatal(err)
	}
	walkV(e.N, map[*VNode]bool{}, func(n *VNode) {
		if n.E[0].W != 1 && n.E[1].W != 1 {
			t.Fatalf("NormMax node without unit weight: %v %v", n.E[0].W, n.E[1].W)
		}
	})
	l2 := New(3)
	e2, err := l2.FromVector(amps)
	if err != nil {
		t.Fatal(err)
	}
	walkV(e2.N, map[*VNode]bool{}, func(n *VNode) {
		s := prob2(n.E[0].W) + prob2(n.E[1].W)
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("NormL2 node weights square-sum to %v", s)
		}
	})
}

func prob2(w complex128) float64 { return real(w)*real(w) + imag(w)*imag(w) }

func walkV(n *VNode, seen map[*VNode]bool, f func(*VNode)) {
	if n == vTerminal || seen[n] {
		return
	}
	seen[n] = true
	f(n)
	walkV(n.E[0].N, seen, f)
	walkV(n.E[1].N, seen, f)
}

// TestNormMaxProbOneGuard: probability read-out requires NormL2.
func TestNormMaxProbOneGuard(t *testing.T) {
	p := New(2)
	p.SetVectorNormalization(NormMax)
	e := p.ZeroState()
	defer func() {
		if recover() == nil {
			t.Fatal("ProbOne must reject NormMax diagrams")
		}
	}()
	p.ProbOne(e, 0)
}

// TestSetVectorNormalizationLate: switching schemes after building is
// rejected.
func TestSetVectorNormalizationLate(t *testing.T) {
	p := New(2)
	_ = p.ZeroState()
	defer func() {
		if recover() == nil {
			t.Fatal("late scheme switch must panic")
		}
	}()
	p.SetVectorNormalization(NormMax)
}

// TestNormSchemesSimulationAgree: a full gate sequence produces the
// same state under both schemes.
func TestNormSchemesSimulationAgree(t *testing.T) {
	run := func(scheme NormScheme) []complex128 {
		p := New(3)
		p.SetVectorNormalization(scheme)
		st := p.ZeroState()
		st = p.MultMV(p.MakeGateDD(gateH, 2), st)
		st = p.MultMV(p.MakeGateDD(gateT, 1, Control{Qubit: 2}), st)
		st = p.MultMV(p.MakeGateDD(gateX, 0, Control{Qubit: 2}), st)
		st = p.MultMV(p.MakeGateDD(gateS, 0), st)
		return p.Vector(st)
	}
	a := run(NormL2)
	b := run(NormMax)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("amplitude %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestMakeMNodeTieBreakTolerance: the arg-max loop of makeMNode works
// on squared magnitudes, so the linear complex tolerance must be
// squared consistently. Earlier revisions compared |c|² against
// max²+tol directly, which made the tie-break scale-dependent: two
// entries whose magnitudes differ by less than tol (a tie — keep the
// first) were treated as distinct above magnitude 1, and entries
// strictly larger than the running max were treated as ties below it.
func TestMakeMNodeTieBreakTolerance(t *testing.T) {
	tol := cnumDefaultTol()

	// Above magnitude 1: |w1| = |w0| + 0.9·tol is a tie within the
	// linear tolerance, so the FIRST entry must be chosen as the
	// normalization entry (its weight becomes exactly 1).
	p := New(1)
	e := p.makeMNode(0, [4]MEdge{
		{W: complex(2, 0), N: mTerminal},
		{W: complex(2+0.9*tol, 0), N: mTerminal},
		{W: 0, N: mTerminal},
		{W: 0, N: mTerminal},
	})
	if e.N.E[0].W != 1 {
		t.Fatalf("near-tied weights above magnitude 1: first entry weight %v, want exactly 1 (tie must keep the first index)", e.N.E[0].W)
	}

	// Below magnitude 1: |w1| = |w0| + 3·tol is strictly larger, so
	// the SECOND entry must win even though the squared difference
	// (≈ 0.6·tol) is far below the linear tolerance.
	p2 := New(1)
	e2 := p2.makeMNode(0, [4]MEdge{
		{W: complex(0.1, 0), N: mTerminal},
		{W: complex(0.1+3*tol, 0), N: mTerminal},
		{W: 0, N: mTerminal},
		{W: 0, N: mTerminal},
	})
	if e2.N.E[1].W != 1 {
		t.Fatalf("strictly larger weight below magnitude 1: second entry weight %v, want exactly 1 (it exceeds the first by 3·tol)", e2.N.E[1].W)
	}
}

func cnumDefaultTol() float64 { return New(1).Tolerance() }
