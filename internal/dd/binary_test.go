package dd

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// encodeDecodeV round-trips e through a fresh package and returns the
// restored edge plus both encodings.
func encodeDecodeV(t *testing.T, p *Pkg, e VEdge) (VEdge, []byte, []byte) {
	t.Helper()
	blob := p.AppendVectorBinary(nil, e)
	q := New(p.nqubits)
	q.SetVectorNormalization(p.vnorm)
	back, err := q.DecodeVectorBinary(blob)
	if err != nil {
		t.Fatalf("DecodeVectorBinary: %v", err)
	}
	return back, blob, q.AppendVectorBinary(nil, back)
}

// TestBinaryVectorRoundTrip drives random sparse states through
// encode → fresh-package decode → re-encode and demands bit identity:
// the re-encoded blob must equal the original byte for byte, and the
// root weight must match exactly (no tolerance).
func TestBinaryVectorRoundTrip(t *testing.T) {
	for _, norm := range []NormScheme{NormL2, NormMax} {
		rng := rand.New(rand.NewSource(61))
		for trial := 0; trial < 40; trial++ {
			n := 1 + rng.Intn(6)
			p := New(n)
			p.SetVectorNormalization(norm)
			e := randState(t, p, rng, n)
			for g := 0; g < 4; g++ {
				tgt := rng.Intn(n)
				e = p.ApplyGate(e, randGateMatrix(rng), tgt, randControls(rng, n, tgt)...)
			}
			back, blob, blob2 := encodeDecodeV(t, p, e)
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("norm %d trial %d: re-encoded blob differs (%d vs %d bytes)", norm, trial, len(blob), len(blob2))
			}
			if back.W != e.W {
				t.Fatalf("norm %d trial %d: root weight %v != %v", norm, trial, back.W, e.W)
			}
			// Same-package decode must intern onto the identical node.
			same, err := p.DecodeVectorBinary(blob)
			if err != nil {
				t.Fatalf("same-package decode: %v", err)
			}
			if same.N != e.N || same.W != e.W {
				t.Fatalf("norm %d trial %d: same-package decode not pointer-identical", norm, trial)
			}
		}
	}
}

// TestBinaryVectorZero covers the all-zero state (terminal root).
func TestBinaryVectorZero(t *testing.T) {
	p := New(3)
	blob := p.AppendVectorBinary(nil, VZero())
	back, err := New(3).DecodeVectorBinary(blob)
	if err != nil {
		t.Fatalf("decode zero: %v", err)
	}
	if !back.IsZero() {
		t.Fatalf("zero vector did not round-trip: %+v", back)
	}
}

// TestBinaryMatrixRoundTrip does the same for operation diagrams built
// from random controlled-gate products.
func TestBinaryMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		p := New(n)
		m := p.Ident()
		for g := 0; g < 4; g++ {
			tgt := rng.Intn(n)
			m = p.MultMM(p.MakeGateDD(randGateMatrix(rng), tgt, randControls(rng, n, tgt)...), m)
		}
		blob := p.AppendMatrixBinary(nil, m)
		q := New(n)
		back, err := q.DecodeMatrixBinary(blob)
		if err != nil {
			t.Fatalf("trial %d: DecodeMatrixBinary: %v", trial, err)
		}
		blob2 := q.AppendMatrixBinary(nil, back)
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("trial %d: re-encoded matrix blob differs", trial)
		}
		if back.W != m.W {
			t.Fatalf("trial %d: root weight %v != %v", trial, back.W, m.W)
		}
		same, err := p.DecodeMatrixBinary(blob)
		if err != nil {
			t.Fatalf("same-package decode: %v", err)
		}
		if same.N != m.N || same.W != m.W {
			t.Fatalf("trial %d: same-package decode not pointer-identical", trial)
		}
	}
}

// TestBinaryDecodeRejectsMutations flips one bit at every byte offset
// of a valid blob and truncates it at every length; the decoder must
// either reject the input or produce a structurally valid diagram —
// it must never panic. (Some single-bit flips in weight mantissas
// survive validation by design; the envelope's CRC catches those.)
func TestBinaryDecodeRejectsMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	p := New(4)
	e := randState(t, p, rng, 4)
	for g := 0; g < 3; g++ {
		e = p.ApplyGate(e, randGateMatrix(rng), rng.Intn(4))
	}
	blob := p.AppendVectorBinary(nil, e)

	for cut := 0; cut < len(blob); cut++ {
		if _, err := New(4).DecodeVectorBinary(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(blob))
		}
	}
	for off := 0; off < len(blob); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(blob)
			mut[off] ^= 1 << bit
			q := New(4)
			q.SetMaxNodes(1 << 16) // hostile counts must not OOM the test
			back, err := q.DecodeVectorBinary(mut)
			if err != nil {
				continue
			}
			// Accepted: the result must still be a sane, walkable DD.
			var walk func(n *VNode, lvl int)
			walk = func(n *VNode, lvl int) {
				if n == vTerminal {
					return
				}
				if n.V != lvl {
					t.Fatalf("off %d bit %d: level chain broken", off, bit)
				}
				walk(n.E[0].N, lvl-1)
				walk(n.E[1].N, lvl-1)
			}
			if back.N != vTerminal {
				walk(back.N, 3)
			}
		}
	}
}

// TestBinaryDecodeBudget verifies the node budget bounds decode work:
// a blob needing more nodes than SetMaxNodes allows is rejected with
// ErrResourceExhausted, both via the up-front claimed-count check and
// package state stays consistent afterwards.
func TestBinaryDecodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	p := New(6)
	e := randState(t, p, rng, 6)
	blob := p.AppendVectorBinary(nil, e)
	need := SizeV(e) // interior node count

	q := New(6)
	q.SetMaxNodes(need / 2)
	_, err := q.DecodeVectorBinary(blob)
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("under-budget decode: got %v, want ErrResourceExhausted", err)
	}
	// The package must remain usable after the abort.
	q.SetMaxNodes(0)
	if _, err := q.DecodeVectorBinary(blob); err != nil {
		t.Fatalf("decode after budget abort: %v", err)
	}
}

// TestBinaryDecodeWrongShape rejects mismatched qubit counts, norm
// schemes, swapped kinds, and trailing garbage.
func TestBinaryDecodeWrongShape(t *testing.T) {
	p := New(3)
	vblob := p.AppendVectorBinary(nil, p.ZeroState())
	mblob := p.AppendMatrixBinary(nil, p.Ident())

	if _, err := New(4).DecodeVectorBinary(vblob); err == nil {
		t.Fatal("qubit-count mismatch accepted")
	}
	q := New(3)
	q.SetVectorNormalization(NormMax)
	if _, err := q.DecodeVectorBinary(vblob); err == nil {
		t.Fatal("norm-scheme mismatch accepted")
	}
	if _, err := New(3).DecodeVectorBinary(mblob); err == nil {
		t.Fatal("matrix blob accepted as vector")
	}
	if _, err := New(3).DecodeMatrixBinary(vblob); err == nil {
		t.Fatal("vector blob accepted as matrix")
	}
	if _, err := New(3).DecodeVectorBinary(append(bytes.Clone(vblob), 0)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := New(3).DecodeVectorBinary(nil); err == nil {
		t.Fatal("empty blob accepted")
	}
}
