package dd

// Binary serialization of decision diagrams for durable session
// snapshots (internal/snapshot). Unlike the text format in
// serialize.go — which re-normalizes every node on read and therefore
// only guarantees amplitude-level fidelity across packages — the
// binary codec interns the stored canonical form verbatim: the
// encoder only ever sees weights that already live in a package's
// complex table, so the decoder can validate them against the
// canonical-form invariants and insert them bit-for-bit. Encoding a
// diagram, decoding it into a fresh package, and encoding it again
// yields identical bytes, which is what makes snapshot restore
// deterministic ("bit-identical root edges").
//
// Layout (all integers little-endian, uvarint = unsigned varint):
//
//	tag      byte    'V' (vector) or 'M' (matrix)
//	nqubits  uvarint
//	norm     byte    vector only: the NormScheme the weights obey
//	nodes    uvarint node count
//	node records, topologically sorted children-first; record i:
//	  level  uvarint
//	  per child (2 for vectors, 4 for matrices):
//	    re, im  float64 bits
//	    ref     uvarint  0 = terminal, k>0 = record k-1 (must be < i)
//	root record: re, im, ref as above
//
// The decoder is hardened against adversarial input: every structural
// invariant (levels, quasi-reduction, zero stubs, canonical weight
// form, bounded node counts) is checked and violations return errors
// — never panics — and the node budget installed with SetMaxNodes
// caps how much a decode may allocate before it aborts with an error
// matching ErrResourceExhausted.

import (
	"encoding/binary"
	"fmt"
	"math"
)

const (
	binVectorTag = 'V'
	binMatrixTag = 'M'

	// binAbsMaxNodes is the absolute decode ceiling, applied even when
	// no budget is configured: no legitimate snapshot in this system
	// approaches it, and it bounds the work a hostile length field can
	// demand.
	binAbsMaxNodes = 1 << 26

	// binCanonTol is the slack allowed when validating that stored
	// weights obey the canonical normalization. Canonical weights pass
	// through the complex table, whose tolerance-based unification can
	// move them a few ulps off the exact form; 1e-6 is far above that
	// drift and far below anything that would make probability reads
	// or identity checks lie.
	binCanonTol = 1e-6
)

func appendComplex(buf []byte, w complex128) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(w)))
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(w)))
}

// binReader is a bounds-checked cursor over the encoded blob. All
// reads report malformed input via the sticky err; callers check it
// at section boundaries.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("dd: snapshot blob: "+format, args...)
	}
}

func (r *binReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint at byte %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) float64() float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.data) {
		r.fail("truncated float at byte %d", r.off)
		return 0
	}
	bits := binary.LittleEndian.Uint64(r.data[r.off:])
	r.off += 8
	return math.Float64frombits(bits)
}

func (r *binReader) complex() complex128 {
	re := r.float64()
	im := r.float64()
	return complex(re, im)
}

func finite(w complex128) bool {
	re, im := real(w), imag(w)
	return !math.IsNaN(re) && !math.IsInf(re, 0) && !math.IsNaN(im) && !math.IsInf(im, 0)
}

// AppendVectorBinary appends the binary encoding of the state diagram
// rooted at e to buf and returns the extended slice.
func (p *Pkg) AppendVectorBinary(buf []byte, e VEdge) []byte {
	buf = append(buf, binVectorTag)
	buf = binary.AppendUvarint(buf, uint64(p.nqubits))
	buf = append(buf, byte(p.vnorm))
	ids := map[*VNode]uint64{}
	var order []*VNode
	var visit func(n *VNode)
	visit = func(n *VNode) {
		if n == vTerminal {
			return
		}
		if _, ok := ids[n]; ok {
			return
		}
		visit(n.E[0].N)
		visit(n.E[1].N)
		ids[n] = uint64(len(order))
		order = append(order, n)
	}
	visit(e.N)
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	ref := func(n *VNode) uint64 {
		if n == vTerminal {
			return 0
		}
		return ids[n] + 1
	}
	for _, n := range order {
		buf = binary.AppendUvarint(buf, uint64(n.V))
		for _, c := range n.E {
			buf = appendComplex(buf, c.W)
			buf = binary.AppendUvarint(buf, ref(c.N))
		}
	}
	buf = appendComplex(buf, e.W)
	return binary.AppendUvarint(buf, ref(e.N))
}

// decodeBudget validates a claimed node count against the package's
// node budget and the absolute ceiling.
func (p *Pkg) decodeBudget(claimed uint64) error {
	if claimed > binAbsMaxNodes {
		return fmt.Errorf("dd: snapshot blob: claims %d nodes, ceiling is %d", claimed, binAbsMaxNodes)
	}
	if p.maxNodes > 0 && int(claimed) > p.maxNodes {
		return fmt.Errorf("dd: snapshot blob claims %d nodes: %w",
			claimed, &ResourceError{Nodes: p.live + int(claimed), Limit: p.maxNodes})
	}
	return nil
}

// internBudget enforces the budget for one interned node during a
// decode, sweeping the partially built (unreferenced) diagram on
// abort so the package stays usable.
func (p *Pkg) internBudget() error {
	if p.maxNodes > 0 && p.live >= p.maxNodes {
		err := p.exceeded()
		p.GarbageCollect()
		return fmt.Errorf("dd: snapshot decode aborted: %w", err)
	}
	return nil
}

// DecodeVectorBinary decodes a state diagram produced by
// AppendVectorBinary, interning the stored canonical nodes verbatim.
// The blob must be fully consumed; the decoder validates structure
// and canonical form and enforces the node budget (SetMaxNodes),
// returning an error matching ErrResourceExhausted when a decode
// would exceed it. The returned edge is unreferenced; callers that
// keep it across garbage collections must IncRefV it.
func (p *Pkg) DecodeVectorBinary(data []byte) (VEdge, error) {
	r := &binReader{data: data}
	if tag := r.byte(); r.err == nil && tag != binVectorTag {
		return VZero(), fmt.Errorf("dd: snapshot blob: not a vector diagram (tag %q)", tag)
	}
	nq := r.uvarint()
	norm := r.byte()
	count := r.uvarint()
	if r.err != nil {
		return VZero(), r.err
	}
	if int(nq) != p.nqubits {
		return VZero(), fmt.Errorf("dd: snapshot has %d qubits, package has %d", nq, p.nqubits)
	}
	if NormScheme(norm) != p.vnorm {
		return VZero(), fmt.Errorf("dd: snapshot normalization scheme %d, package uses %d", norm, p.vnorm)
	}
	if err := p.decodeBudget(count); err != nil {
		return VZero(), err
	}
	// Each node record needs at least 1 + 2*(16+1) bytes, so a hostile
	// count field cannot demand a large allocation from a short blob.
	if int(count) > len(data)/35+1 {
		return VZero(), fmt.Errorf("dd: snapshot blob: node count %d exceeds what %d bytes can hold", count, len(data))
	}
	nodes := make([]*VNode, 0, count)
	for i := uint64(0); i < count; i++ {
		lvl := r.uvarint()
		var kids [2]VEdge
		for c := 0; c < 2; c++ {
			w := r.complex()
			ref := r.uvarint()
			if r.err != nil {
				return VZero(), r.err
			}
			kid, err := p.resolveVChild(nodes, int64(lvl), w, ref, i)
			if err != nil {
				return VZero(), err
			}
			kids[c] = kid
		}
		if r.err != nil {
			return VZero(), r.err
		}
		if lvl >= uint64(p.nqubits) {
			return VZero(), fmt.Errorf("dd: snapshot blob: node %d level %d out of range", i, lvl)
		}
		if err := validateVNorm(p.vnorm, kids[0].W, kids[1].W); err != nil {
			return VZero(), fmt.Errorf("dd: snapshot blob: node %d: %w", i, err)
		}
		n, err := p.internVNode(int(lvl), kids)
		if err != nil {
			return VZero(), err
		}
		nodes = append(nodes, n)
	}
	w := r.complex()
	ref := r.uvarint()
	if r.err != nil {
		return VZero(), r.err
	}
	if r.off != len(data) {
		return VZero(), fmt.Errorf("dd: snapshot blob: %d trailing bytes", len(data)-r.off)
	}
	if !finite(w) {
		return VZero(), fmt.Errorf("dd: snapshot blob: non-finite root weight")
	}
	if ref == 0 {
		if w != 0 {
			return VZero(), fmt.Errorf("dd: snapshot blob: terminal vector root with non-zero weight")
		}
		return VZero(), nil
	}
	if ref > uint64(len(nodes)) {
		return VZero(), fmt.Errorf("dd: snapshot blob: root references undefined node %d", ref-1)
	}
	root := nodes[ref-1]
	if root.V != p.nqubits-1 {
		return VZero(), fmt.Errorf("dd: snapshot blob: root node at level %d, want %d", root.V, p.nqubits-1)
	}
	if w == 0 {
		return VZero(), fmt.Errorf("dd: snapshot blob: zero root weight on a non-terminal root")
	}
	return VEdge{W: p.cn.Lookup(w), N: root}, nil
}

// resolveVChild validates and resolves one child reference of a
// vector node record at level lvl.
func (p *Pkg) resolveVChild(nodes []*VNode, lvl int64, w complex128, ref, rec uint64) (VEdge, error) {
	if !finite(w) {
		return VEdge{}, fmt.Errorf("dd: snapshot blob: node %d: non-finite weight", rec)
	}
	if w == 0 {
		// Canonical zero stub: weight 0 always points at the terminal.
		if ref != 0 {
			return VEdge{}, fmt.Errorf("dd: snapshot blob: node %d: zero weight with non-terminal child", rec)
		}
		return VEdge{W: 0, N: vTerminal}, nil
	}
	if ref == 0 {
		if lvl != 0 {
			return VEdge{}, fmt.Errorf("dd: snapshot blob: node %d: terminal child below level %d violates quasi-reduction", rec, lvl)
		}
		return VEdge{W: p.cn.Lookup(w), N: vTerminal}, nil
	}
	if ref > rec || ref > uint64(len(nodes)) {
		return VEdge{}, fmt.Errorf("dd: snapshot blob: node %d: forward child reference %d", rec, ref-1)
	}
	child := nodes[ref-1]
	if int64(child.V) != lvl-1 {
		return VEdge{}, fmt.Errorf("dd: snapshot blob: node %d: child at level %d under level %d violates quasi-reduction", rec, child.V, lvl)
	}
	return VEdge{W: p.cn.Lookup(w), N: child}, nil
}

// validateVNorm checks the canonical-form invariants of a vector
// node's weight pair under the given normalization scheme.
func validateVNorm(scheme NormScheme, w0, w1 complex128) error {
	m0 := real(w0)*real(w0) + imag(w0)*imag(w0)
	m1 := real(w1)*real(w1) + imag(w1)*imag(w1)
	if m0+m1 == 0 {
		return fmt.Errorf("all-zero node (must be a zero stub)")
	}
	switch scheme {
	case NormL2:
		if math.Abs(m0+m1-1) > binCanonTol {
			return fmt.Errorf("weights not L2-normalized (|w0|²+|w1|² = %g)", m0+m1)
		}
		first := w0
		if w0 == 0 {
			first = w1
		}
		if math.Abs(imag(first)) > binCanonTol || real(first) < -binCanonTol {
			return fmt.Errorf("leading weight %v not real non-negative", first)
		}
	default: // NormMax
		top := math.Max(m0, m1)
		if math.Abs(top-1) > binCanonTol {
			return fmt.Errorf("weights not max-normalized (max magnitude² = %g)", top)
		}
	}
	return nil
}

// internVNode inserts a validated canonical vector node verbatim,
// sharing an existing identical node when present.
func (p *Pkg) internVNode(v int, e [2]VEdge) (*VNode, error) {
	h := hashVNode(e[0].W, e[1].W, e[0].N, e[1].N)
	tab := &p.vUnique[v]
	if n := tab.lookup(h, e[0].W, e[1].W, e[0].N, e[1].N, &p.stats); n != nil {
		p.stats.UniqueHitsV++
		return n, nil
	}
	if err := p.internBudget(); err != nil {
		return nil, err
	}
	n, recycled := p.vMem.alloc()
	n.V = v
	n.hash = h
	n.E = e
	tab.insert(n)
	p.live++
	p.stats.NodesCreatedV++
	if recycled {
		p.stats.NodesRecycledV++
	}
	return n, nil
}

// AppendMatrixBinary appends the binary encoding of the operation
// diagram rooted at e to buf and returns the extended slice.
func (p *Pkg) AppendMatrixBinary(buf []byte, e MEdge) []byte {
	buf = append(buf, binMatrixTag)
	buf = binary.AppendUvarint(buf, uint64(p.nqubits))
	ids := map[*MNode]uint64{}
	var order []*MNode
	var visit func(n *MNode)
	visit = func(n *MNode) {
		if n == mTerminal {
			return
		}
		if _, ok := ids[n]; ok {
			return
		}
		for _, c := range n.E {
			visit(c.N)
		}
		ids[n] = uint64(len(order))
		order = append(order, n)
	}
	visit(e.N)
	buf = binary.AppendUvarint(buf, uint64(len(order)))
	ref := func(n *MNode) uint64 {
		if n == mTerminal {
			return 0
		}
		return ids[n] + 1
	}
	for _, n := range order {
		buf = binary.AppendUvarint(buf, uint64(n.V))
		for _, c := range n.E {
			buf = appendComplex(buf, c.W)
			buf = binary.AppendUvarint(buf, ref(c.N))
		}
	}
	buf = appendComplex(buf, e.W)
	return binary.AppendUvarint(buf, ref(e.N))
}

// DecodeMatrixBinary decodes an operation diagram produced by
// AppendMatrixBinary; the contract mirrors DecodeVectorBinary.
func (p *Pkg) DecodeMatrixBinary(data []byte) (MEdge, error) {
	r := &binReader{data: data}
	if tag := r.byte(); r.err == nil && tag != binMatrixTag {
		return MZero(), fmt.Errorf("dd: snapshot blob: not a matrix diagram (tag %q)", tag)
	}
	nq := r.uvarint()
	count := r.uvarint()
	if r.err != nil {
		return MZero(), r.err
	}
	if int(nq) != p.nqubits {
		return MZero(), fmt.Errorf("dd: snapshot has %d qubits, package has %d", nq, p.nqubits)
	}
	if err := p.decodeBudget(count); err != nil {
		return MZero(), err
	}
	// Minimum matrix record size: 1 + 4*(16+1) bytes.
	if int(count) > len(data)/69+1 {
		return MZero(), fmt.Errorf("dd: snapshot blob: node count %d exceeds what %d bytes can hold", count, len(data))
	}
	nodes := make([]*MNode, 0, count)
	for i := uint64(0); i < count; i++ {
		lvl := r.uvarint()
		var kids [4]MEdge
		for c := 0; c < 4; c++ {
			w := r.complex()
			ref := r.uvarint()
			if r.err != nil {
				return MZero(), r.err
			}
			kid, err := p.resolveMChild(nodes, int64(lvl), w, ref, i)
			if err != nil {
				return MZero(), err
			}
			kids[c] = kid
		}
		if r.err != nil {
			return MZero(), r.err
		}
		if lvl >= uint64(p.nqubits) {
			return MZero(), fmt.Errorf("dd: snapshot blob: node %d level %d out of range", i, lvl)
		}
		if err := validateMNorm(&kids); err != nil {
			return MZero(), fmt.Errorf("dd: snapshot blob: node %d: %w", i, err)
		}
		n, err := p.internMNode(int(lvl), kids)
		if err != nil {
			return MZero(), err
		}
		nodes = append(nodes, n)
	}
	w := r.complex()
	ref := r.uvarint()
	if r.err != nil {
		return MZero(), r.err
	}
	if r.off != len(data) {
		return MZero(), fmt.Errorf("dd: snapshot blob: %d trailing bytes", len(data)-r.off)
	}
	if !finite(w) {
		return MZero(), fmt.Errorf("dd: snapshot blob: non-finite root weight")
	}
	if ref == 0 {
		if w != 0 {
			return MZero(), fmt.Errorf("dd: snapshot blob: terminal matrix root with non-zero weight")
		}
		return MZero(), nil
	}
	if ref > uint64(len(nodes)) {
		return MZero(), fmt.Errorf("dd: snapshot blob: root references undefined node %d", ref-1)
	}
	root := nodes[ref-1]
	if root.V != p.nqubits-1 {
		return MZero(), fmt.Errorf("dd: snapshot blob: root node at level %d, want %d", root.V, p.nqubits-1)
	}
	if w == 0 {
		return MZero(), fmt.Errorf("dd: snapshot blob: zero root weight on a non-terminal root")
	}
	return MEdge{W: p.cn.Lookup(w), N: root}, nil
}

func (p *Pkg) resolveMChild(nodes []*MNode, lvl int64, w complex128, ref, rec uint64) (MEdge, error) {
	if !finite(w) {
		return MEdge{}, fmt.Errorf("dd: snapshot blob: node %d: non-finite weight", rec)
	}
	if w == 0 {
		if ref != 0 {
			return MEdge{}, fmt.Errorf("dd: snapshot blob: node %d: zero weight with non-terminal child", rec)
		}
		return MEdge{W: 0, N: mTerminal}, nil
	}
	if ref == 0 {
		if lvl != 0 {
			return MEdge{}, fmt.Errorf("dd: snapshot blob: node %d: terminal child below level %d violates quasi-reduction", rec, lvl)
		}
		return MEdge{W: p.cn.Lookup(w), N: mTerminal}, nil
	}
	if ref > rec || ref > uint64(len(nodes)) {
		return MEdge{}, fmt.Errorf("dd: snapshot blob: node %d: forward child reference %d", rec, ref-1)
	}
	child := nodes[ref-1]
	if int64(child.V) != lvl-1 {
		return MEdge{}, fmt.Errorf("dd: snapshot blob: node %d: child at level %d under level %d violates quasi-reduction", rec, child.V, lvl)
	}
	return MEdge{W: p.cn.Lookup(w), N: child}, nil
}

// validateMNorm checks the QMDD canonical form of a matrix node: the
// dominant entry is (numerically) one and nothing exceeds it.
func validateMNorm(e *[4]MEdge) error {
	anyNonZero := false
	hasUnit := false
	for _, c := range e {
		m := real(c.W)*real(c.W) + imag(c.W)*imag(c.W)
		if m > 0 {
			anyNonZero = true
		}
		if m > 1+binCanonTol {
			return fmt.Errorf("weight %v exceeds the normalization entry", c.W)
		}
		if math.Abs(real(c.W)-1) <= binCanonTol && math.Abs(imag(c.W)) <= binCanonTol {
			hasUnit = true
		}
	}
	if !anyNonZero {
		return fmt.Errorf("all-zero node (must be a zero stub)")
	}
	if !hasUnit {
		return fmt.Errorf("no unit normalization entry")
	}
	return nil
}

func (p *Pkg) internMNode(v int, e [4]MEdge) (*MNode, error) {
	var w [4]complex128
	var n [4]*MNode
	for i, c := range e {
		w[i] = c.W
		n[i] = c.N
	}
	h := hashMNode(&w, &n)
	tab := &p.mUnique[v]
	if nd := tab.lookup(h, &w, &n, &p.stats); nd != nil {
		p.stats.UniqueHitsM++
		return nd, nil
	}
	if err := p.internBudget(); err != nil {
		return nil, err
	}
	nd, recycled := p.mMem.alloc()
	nd.V = v
	nd.hash = h
	nd.E = e
	tab.insert(nd)
	p.live++
	p.stats.NodesCreatedM++
	if recycled {
		p.stats.NodesRecycledM++
	}
	return nd, nil
}
