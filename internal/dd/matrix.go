package dd

import (
	"math/cmplx"
)

// GateMatrix is a 2×2 unitary in row-major order: [U00, U01, U10, U11].
type GateMatrix [4]complex128

// Control describes a control line of a quantum operation. A positive
// control activates the gate when the qubit is |1⟩ (the • of circuit
// diagrams), a negative control when it is |0⟩.
type Control struct {
	Qubit int
	Neg   bool
}

// Ident returns the identity diagram over all qubits of the package —
// the starting point and target of the alternating equivalence-
// checking scheme (Ex. 12).
func (p *Pkg) Ident() MEdge { return p.identUpTo(p.nqubits - 1) }

// identUpTo builds the identity over levels 0..v inclusive.
func (p *Pkg) identUpTo(v Var) MEdge {
	e := MOne()
	for z := 0; z <= v; z++ {
		e = p.makeMNode(z, [4]MEdge{e, MZero(), MZero(), e})
	}
	return e
}

// MakeGateDD (the matrix lowering of a controlled single-qubit gate)
// lives in applygate.go next to the direct-application kernel: both
// share the interned gate descriptors, and MakeGateDD caches its
// result there per package generation.

// MakeSwapDD builds the diagram of a SWAP between qubits a and b
// (optionally controlled) as the product of three CNOTs — the standard
// decomposition the paper's compiled circuits use.
func (p *Pkg) MakeSwapDD(a, b int, controls ...Control) MEdge {
	if a == b {
		panic("dd: SWAP qubits must differ")
	}
	notX := GateMatrix{0, 1, 1, 0}
	c1 := append(append([]Control{}, controls...), Control{Qubit: a})
	c2 := append(append([]Control{}, controls...), Control{Qubit: b})
	cx1 := p.MakeGateDD(notX, b, c1...)
	cx2 := p.MakeGateDD(notX, a, c2...)
	return p.MultMM(cx1, p.MultMM(cx2, cx1))
}

// MatrixEntry reconstructs the matrix element ⟨row|e|col⟩.
func MatrixEntry(e MEdge, row, col int64) complex128 {
	w := e.W
	n := e.N
	for n != mTerminal {
		if w == 0 {
			return 0
		}
		i := row >> uint(n.V) & 1
		j := col >> uint(n.V) & 1
		c := n.E[2*i+j]
		w *= c.W
		n = c.N
	}
	return w
}

// Matrix expands the diagram into a dense 2^n×2^n matrix (row-major
// slices). Exponential; intended for tests and tiny examples.
func (p *Pkg) Matrix(e MEdge) [][]complex128 {
	dim := 1 << uint(p.nqubits)
	out := make([][]complex128, dim)
	for i := range out {
		out[i] = make([]complex128, dim)
	}
	fillMatrix(e.W, e.N, 0, 0, out)
	return out
}

func fillMatrix(w complex128, n *MNode, row, col int64, out [][]complex128) {
	if w == 0 {
		return
	}
	if n == mTerminal {
		out[row][col] = w
		return
	}
	for i := int64(0); i < 2; i++ {
		for j := int64(0); j < 2; j++ {
			c := n.E[2*i+j]
			fillMatrix(w*c.W, c.N, row|i<<uint(n.V), col|j<<uint(n.V), out)
		}
	}
}

// IdentityKind classifies how close a matrix diagram is to the
// identity, the acceptance criterion of DD-based verification.
type IdentityKind int

const (
	// NotIdentity: the diagram differs structurally from the identity.
	NotIdentity IdentityKind = iota
	// IdentityUpToPhase: identity times a unit-magnitude global phase.
	IdentityUpToPhase
	// IdentityExact: the identity with weight one.
	IdentityExact
)

// CheckIdentity classifies e against the identity diagram. Because
// diagrams are canonical this is a pointer comparison on the root plus
// a weight inspection (Sec. III-C: "comparing their root pointers").
func (p *Pkg) CheckIdentity(e MEdge) IdentityKind {
	if e.N != p.Ident().N {
		return NotIdentity
	}
	tol := p.cn.Tolerance()
	if cmplx.Abs(e.W-1) <= tol {
		return IdentityExact
	}
	if mag := cmplx.Abs(e.W); mag >= 1-tol && mag <= 1+tol {
		return IdentityUpToPhase
	}
	return NotIdentity
}
