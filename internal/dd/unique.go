package dd

import "quantumdd/internal/cnum"

// Per-level bucketed unique tables. Each level owns a power-of-two
// array of bucket heads; nodes chain through their intrusive next
// pointer. A node's hash is the FNV-style digest of its normalized
// child weights and child identities, computed exactly once (the
// weights are canonical complex values, so bit-pattern hashing via
// package cnum is sound) and stored on the node so that growth
// rehashes and compute-table keys never touch the weights again.
// This replaces the earlier map[vKey]*VNode / map[mKey]*MNode tables,
// whose large struct keys were re-hashed (and copied) by the Go
// runtime on every single lookup.

// initialBuckets sizes a fresh per-level table. Tables double when
// the chain load reaches 1.0.
const initialBuckets = 64

// Hash seeds for the shared terminal nodes, giving terminal children
// a well-mixed contribution to their parents' hashes.
const (
	vTerminalHash = 0x9e3779b97f4a7c15
	mTerminalHash = 0xbf58476d1ce4e5b9
)

// hashMix folds x into h with multiply-xor; the multiply makes the
// fold order-sensitive, so transposed children hash differently.
func hashMix(h, x uint64) uint64 {
	h = (h ^ x) * 0x00000100000001b3 // FNV prime
	return h ^ h>>29
}

// hashVNode digests a normalized vector node candidate.
func hashVNode(w0, w1 complex128, n0, n1 *VNode) uint64 {
	h := cnum.HashComplex(w0)
	h = hashMix(h, cnum.HashComplex(w1))
	h = hashMix(h, n0.hash)
	h = hashMix(h, n1.hash)
	return h
}

// hashMNode digests a normalized matrix node candidate.
func hashMNode(w *[4]complex128, n *[4]*MNode) uint64 {
	h := cnum.HashComplex(w[0])
	for i := 1; i < 4; i++ {
		h = hashMix(h, cnum.HashComplex(w[i]))
	}
	for i := 0; i < 4; i++ {
		h = hashMix(h, n[i].hash)
	}
	return h
}

// vTable is one level's unique table for vector nodes.
type vTable struct {
	buckets []*VNode
	mask    uint64
	count   int
}

func newVTable() vTable {
	return vTable{buckets: make([]*VNode, initialBuckets), mask: initialBuckets - 1}
}

// lookup returns the interned node matching the normalized candidate,
// counting chain collisions into stats.
func (t *vTable) lookup(h uint64, w0, w1 complex128, n0, n1 *VNode, st *Stats) *VNode {
	for n := t.buckets[h&t.mask]; n != nil; n = n.next {
		if n.hash == h && n.E[0].W == w0 && n.E[1].W == w1 && n.E[0].N == n0 && n.E[1].N == n1 {
			return n
		}
		st.UTCollisions++
	}
	return nil
}

// insert links a freshly built node into its bucket, growing first if
// the table is at full load.
func (t *vTable) insert(n *VNode) {
	if t.count >= len(t.buckets) {
		t.grow()
	}
	i := n.hash & t.mask
	n.next = t.buckets[i]
	t.buckets[i] = n
	t.count++
}

func (t *vTable) grow() {
	old := t.buckets
	t.buckets = make([]*VNode, 2*len(old))
	t.mask = uint64(len(t.buckets)) - 1
	for _, head := range old {
		for n := head; n != nil; {
			next := n.next
			i := n.hash & t.mask
			n.next = t.buckets[i]
			t.buckets[i] = n
			n = next
		}
	}
}

// sweep unlinks every unreferenced node, releasing it into the arena,
// and reports how many were freed.
func (t *vTable) sweep(a *vArena) int {
	freed := 0
	for i := range t.buckets {
		pp := &t.buckets[i]
		for n := *pp; n != nil; n = *pp {
			if n.ref == 0 {
				*pp = n.next
				a.release(n)
				freed++
			} else {
				pp = &n.next
			}
		}
	}
	t.count -= freed
	return freed
}

// mTable is one level's unique table for matrix nodes.
type mTable struct {
	buckets []*MNode
	mask    uint64
	count   int
}

func newMTable() mTable {
	return mTable{buckets: make([]*MNode, initialBuckets), mask: initialBuckets - 1}
}

func (t *mTable) lookup(h uint64, w *[4]complex128, cn *[4]*MNode, st *Stats) *MNode {
	for n := t.buckets[h&t.mask]; n != nil; n = n.next {
		if n.hash == h &&
			n.E[0].W == w[0] && n.E[1].W == w[1] && n.E[2].W == w[2] && n.E[3].W == w[3] &&
			n.E[0].N == cn[0] && n.E[1].N == cn[1] && n.E[2].N == cn[2] && n.E[3].N == cn[3] {
			return n
		}
		st.UTCollisions++
	}
	return nil
}

func (t *mTable) insert(n *MNode) {
	if t.count >= len(t.buckets) {
		t.grow()
	}
	i := n.hash & t.mask
	n.next = t.buckets[i]
	t.buckets[i] = n
	t.count++
}

func (t *mTable) grow() {
	old := t.buckets
	t.buckets = make([]*MNode, 2*len(old))
	t.mask = uint64(len(t.buckets)) - 1
	for _, head := range old {
		for n := head; n != nil; {
			next := n.next
			i := n.hash & t.mask
			n.next = t.buckets[i]
			t.buckets[i] = n
			n = next
		}
	}
}

func (t *mTable) sweep(a *mArena) int {
	freed := 0
	for i := range t.buckets {
		pp := &t.buckets[i]
		for n := *pp; n != nil; n = *pp {
			if n.ref == 0 {
				*pp = n.next
				a.release(n)
				freed++
			} else {
				pp = &n.next
			}
		}
	}
	t.count -= freed
	return freed
}
