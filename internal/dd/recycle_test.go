package dd

import (
	"math"
	"math/rand"
	"testing"
)

// Tests for the node memory manager (mem.go): interleaving random DD
// operations with GarbageCollect must never break canonicity, and the
// recycling counters must reconcile with the incremental live count.

// applyRandomCircuit drives the state through ops pseudo-random gate
// applications drawn from rng; every gcEvery-th step it pins the
// current state and garbage-collects, so gate DDs and intermediate
// states are swept onto the free lists and later allocations recycle
// their slots. gcEvery <= 0 disables the interleaved collections.
func applyRandomCircuit(p *Pkg, rng *rand.Rand, ops, gcEvery int) VEdge {
	s := 1 / math.Sqrt2
	gates := []GateMatrix{
		{complex(s, 0), complex(s, 0), complex(s, 0), complex(-s, 0)}, // H
		{0, 1, 1, 0},             // X
		{1, 0, 0, complex(s, s)}, // T
		{1, 0, 0, complex(0, 1)}, // S
	}
	st := p.ZeroState()
	for i := 0; i < ops; i++ {
		g := gates[rng.Intn(len(gates))]
		target := rng.Intn(p.nqubits)
		var controls []Control
		if rng.Intn(3) == 0 {
			c := rng.Intn(p.nqubits)
			if c != target {
				controls = append(controls, Control{Qubit: c})
			}
		}
		st = p.MultMV(p.MakeGateDD(g, target, controls...), st)
		if gcEvery > 0 && i%gcEvery == gcEvery-1 {
			p.IncRefV(st)
			p.GarbageCollect()
			p.DecRefV(st)
		}
	}
	return st
}

// TestRecyclingPreservesCanonicity builds a state, litters the package
// with garbage, collects it, and rebuilds the same state through the
// recycled slots: the rebuild must land on the exact same root (shared
// node pointer and weight), and it must actually have reused freed
// nodes for the check to mean anything.
func TestRecyclingPreservesCanonicity(t *testing.T) {
	const qubits, ops = 5, 60
	p := New(qubits)

	s1 := applyRandomCircuit(p, rand.New(rand.NewSource(42)), ops, 0)
	p.IncRefV(s1)

	// Unreferenced garbage: two more circuits with interleaved GCs.
	applyRandomCircuit(p, rand.New(rand.NewSource(7)), ops, 15)
	applyRandomCircuit(p, rand.New(rand.NewSource(8)), ops, 15)

	vf, mf := p.GarbageCollect()
	if vf+mf == 0 {
		t.Fatal("GarbageCollect freed nothing despite unreferenced garbage")
	}
	st := p.Stats()
	if st.FreeNodesV == 0 || st.FreeNodesM == 0 {
		t.Fatalf("free lists empty after GC: FreeNodesV=%d FreeNodesM=%d", st.FreeNodesV, st.FreeNodesM)
	}

	// Rebuild the identical circuit, with GCs interleaved for good
	// measure (s1 stays pinned throughout).
	s2 := applyRandomCircuit(p, rand.New(rand.NewSource(42)), ops, 15)
	if s2.N != s1.N {
		t.Fatal("rebuild after recycling produced a different root node: canonicity broken")
	}
	if s2.W != s1.W {
		t.Fatalf("rebuild after recycling produced root weight %v, want %v", s2.W, s1.W)
	}

	st = p.Stats()
	if st.NodesRecycledV+st.NodesRecycledM == 0 {
		t.Fatal("no allocations were served from the free lists; the test did not exercise recycling")
	}

	// Numeric cross-check against a pristine package: recycled slots
	// must not leak stale edges into the rebuilt diagram.
	fresh := New(qubits)
	want := fresh.Vector(applyRandomCircuit(fresh, rand.New(rand.NewSource(42)), ops, 0))
	got := p.Vector(s2)
	for i := range want {
		if d := got[i] - want[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-20 {
			t.Fatalf("amplitude %d diverged after recycling: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestRecycleCountersReconcile fuzzes random operations against
// collections and checks the accounting invariants after every GC:
//
//	live == NodesCreatedV + NodesCreatedM − NodesFreed
//	NodesRecycledV + NodesRecycledM <= NodesFreed
//	ActiveNodes() sums to live
func TestRecycleCountersReconcile(t *testing.T) {
	const qubits = 4
	p := New(qubits)
	rng := rand.New(rand.NewSource(99))

	check := func(step int) {
		t.Helper()
		st := p.Stats()
		created := st.NodesCreatedV + st.NodesCreatedM
		if uint64(p.LiveNodes()) != created-st.NodesFreed {
			t.Fatalf("step %d: live=%d but created−freed=%d−%d=%d",
				step, p.LiveNodes(), created, st.NodesFreed, created-st.NodesFreed)
		}
		if st.NodesRecycledV+st.NodesRecycledM > st.NodesFreed {
			t.Fatalf("step %d: recycled %d+%d nodes but only %d were ever freed",
				step, st.NodesRecycledV, st.NodesRecycledM, st.NodesFreed)
		}
		if v, m := p.ActiveNodes(); v+m != p.LiveNodes() {
			t.Fatalf("step %d: ActiveNodes %d+%d disagrees with live %d", step, v, m, p.LiveNodes())
		}
	}

	state := p.ZeroState()
	p.IncRefV(state)
	for step := 0; step < 200; step++ {
		switch rng.Intn(5) {
		case 0, 1, 2: // random gate on the pinned state
			g := GateMatrix{1, 0, 0, complex(0, 1)}
			if rng.Intn(2) == 0 {
				s := 1 / math.Sqrt2
				g = GateMatrix{complex(s, 0), complex(s, 0), complex(s, 0), complex(-s, 0)}
			}
			next := p.MultMV(p.MakeGateDD(g, rng.Intn(qubits)), state)
			p.IncRefV(next)
			p.DecRefV(state)
			state = next
		case 3: // throwaway work: an unreferenced sum of two states
			b := p.BasisState(int64(rng.Intn(1 << qubits)))
			p.AddV(state, b)
		case 4:
			p.GarbageCollect()
			check(step)
		}
	}
	p.GarbageCollect()
	check(200)

	st := p.Stats()
	if st.NodesRecycledV+st.NodesRecycledM == 0 {
		t.Fatal("fuzz run never recycled a node; widen the operation mix")
	}
}
