package dd

// Serialization of decision diagrams to a compact, human-readable text
// format, enabling diagram exchange between sessions and tools (the
// web tool's export, regression baselines in tests).
//
// Format (line-oriented, topologically sorted children-first):
//
//	ddvec v1 <nqubits>
//	n <id> <level> <w0> <child0> <w1> <child1>
//	root <w> <id>
//
// Children are node ids, or T for the terminal. Weights are printed as
// "re,im" with full float64 round-trip precision. The matrix format
// ("ddmat") is analogous with four (weight, child) pairs.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

func formatWeight(w complex128) string {
	return strconv.FormatFloat(real(w), 'g', -1, 64) + "," + strconv.FormatFloat(imag(w), 'g', -1, 64)
}

func parseWeight(s string) (complex128, error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("dd: malformed weight %q", s)
	}
	re, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return 0, fmt.Errorf("dd: malformed weight %q: %v", s, err)
	}
	im, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return 0, fmt.Errorf("dd: malformed weight %q: %v", s, err)
	}
	return complex(re, im), nil
}

// WriteVector serializes a state diagram.
func (p *Pkg) WriteVector(w io.Writer, e VEdge) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ddvec v1 %d\n", p.nqubits)
	ids := map[*VNode]int{}
	next := 0
	var emit func(n *VNode) error
	emit = func(n *VNode) error {
		if n == vTerminal {
			return nil
		}
		if _, ok := ids[n]; ok {
			return nil
		}
		for _, c := range n.E {
			if err := emit(c.N); err != nil {
				return err
			}
		}
		ids[n] = next
		next++
		ref := func(c VEdge) string {
			if c.N == vTerminal {
				return "T"
			}
			return strconv.Itoa(ids[c.N])
		}
		_, err := fmt.Fprintf(bw, "n %d %d %s %s %s %s\n", ids[n], n.V,
			formatWeight(n.E[0].W), ref(n.E[0]),
			formatWeight(n.E[1].W), ref(n.E[1]))
		return err
	}
	if err := emit(e.N); err != nil {
		return err
	}
	rootRef := "T"
	if e.N != vTerminal {
		rootRef = strconv.Itoa(ids[e.N])
	}
	fmt.Fprintf(bw, "root %s %s\n", formatWeight(e.W), rootRef)
	return bw.Flush()
}

// ReadVector deserializes a state diagram into this package,
// re-canonicalizing every node (so diagrams merge with existing ones).
func (p *Pkg) ReadVector(r io.Reader) (VEdge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return VZero(), fmt.Errorf("dd: empty input")
	}
	var nq int
	if _, err := fmt.Sscanf(sc.Text(), "ddvec v1 %d", &nq); err != nil {
		return VZero(), fmt.Errorf("dd: bad header %q", sc.Text())
	}
	if nq != p.nqubits {
		return VZero(), fmt.Errorf("dd: diagram has %d qubits, package has %d", nq, p.nqubits)
	}
	nodes := map[int]VEdge{} // id -> weight-1 edge to the rebuilt node
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "n":
			if len(fields) != 7 {
				return VZero(), fmt.Errorf("dd: line %d: malformed node", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return VZero(), fmt.Errorf("dd: line %d: bad id", line)
			}
			level, err := strconv.Atoi(fields[2])
			if err != nil || level < 0 || level >= p.nqubits {
				return VZero(), fmt.Errorf("dd: line %d: bad level", line)
			}
			var kids [2]VEdge
			for i := 0; i < 2; i++ {
				w, err := parseWeight(fields[3+2*i])
				if err != nil {
					return VZero(), fmt.Errorf("dd: line %d: %v", line, err)
				}
				ref := fields[4+2*i]
				if ref == "T" {
					kids[i] = VEdge{W: w, N: vTerminal}
					continue
				}
				cid, err := strconv.Atoi(ref)
				if err != nil {
					return VZero(), fmt.Errorf("dd: line %d: bad child ref %q", line, ref)
				}
				child, ok := nodes[cid]
				if !ok {
					return VZero(), fmt.Errorf("dd: line %d: child %d not yet defined", line, cid)
				}
				kids[i] = VEdge{W: w * child.W, N: child.N}
			}
			rebuilt := p.makeVNode(level, kids)
			nodes[id] = rebuilt
		case "root":
			if len(fields) != 3 {
				return VZero(), fmt.Errorf("dd: line %d: malformed root", line)
			}
			w, err := parseWeight(fields[1])
			if err != nil {
				return VZero(), fmt.Errorf("dd: line %d: %v", line, err)
			}
			if fields[2] == "T" {
				return VEdge{W: p.cn.Lookup(w), N: vTerminal}, nil
			}
			id, err := strconv.Atoi(fields[2])
			if err != nil {
				return VZero(), fmt.Errorf("dd: line %d: bad root ref", line)
			}
			root, ok := nodes[id]
			if !ok {
				return VZero(), fmt.Errorf("dd: line %d: root node %d undefined", line, id)
			}
			return VEdge{W: p.cn.Lookup(w * root.W), N: root.N}, nil
		default:
			return VZero(), fmt.Errorf("dd: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return VZero(), err
	}
	return VZero(), fmt.Errorf("dd: missing root record")
}

// WriteMatrix serializes an operation diagram.
func (p *Pkg) WriteMatrix(w io.Writer, e MEdge) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ddmat v1 %d\n", p.nqubits)
	ids := map[*MNode]int{}
	next := 0
	var emit func(n *MNode) error
	emit = func(n *MNode) error {
		if n == mTerminal {
			return nil
		}
		if _, ok := ids[n]; ok {
			return nil
		}
		for _, c := range n.E {
			if err := emit(c.N); err != nil {
				return err
			}
		}
		ids[n] = next
		next++
		ref := func(c MEdge) string {
			if c.N == mTerminal {
				return "T"
			}
			return strconv.Itoa(ids[c.N])
		}
		_, err := fmt.Fprintf(bw, "n %d %d %s %s %s %s %s %s %s %s\n", ids[n], n.V,
			formatWeight(n.E[0].W), ref(n.E[0]),
			formatWeight(n.E[1].W), ref(n.E[1]),
			formatWeight(n.E[2].W), ref(n.E[2]),
			formatWeight(n.E[3].W), ref(n.E[3]))
		return err
	}
	if err := emit(e.N); err != nil {
		return err
	}
	rootRef := "T"
	if e.N != mTerminal {
		rootRef = strconv.Itoa(ids[e.N])
	}
	fmt.Fprintf(bw, "root %s %s\n", formatWeight(e.W), rootRef)
	return bw.Flush()
}

// ReadMatrix deserializes an operation diagram into this package.
func (p *Pkg) ReadMatrix(r io.Reader) (MEdge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return MZero(), fmt.Errorf("dd: empty input")
	}
	var nq int
	if _, err := fmt.Sscanf(sc.Text(), "ddmat v1 %d", &nq); err != nil {
		return MZero(), fmt.Errorf("dd: bad header %q", sc.Text())
	}
	if nq != p.nqubits {
		return MZero(), fmt.Errorf("dd: diagram has %d qubits, package has %d", nq, p.nqubits)
	}
	nodes := map[int]MEdge{}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "n":
			if len(fields) != 11 {
				return MZero(), fmt.Errorf("dd: line %d: malformed node", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return MZero(), fmt.Errorf("dd: line %d: bad id", line)
			}
			level, err := strconv.Atoi(fields[2])
			if err != nil || level < 0 || level >= p.nqubits {
				return MZero(), fmt.Errorf("dd: line %d: bad level", line)
			}
			var kids [4]MEdge
			for i := 0; i < 4; i++ {
				w, err := parseWeight(fields[3+2*i])
				if err != nil {
					return MZero(), fmt.Errorf("dd: line %d: %v", line, err)
				}
				ref := fields[4+2*i]
				if ref == "T" {
					kids[i] = MEdge{W: w, N: mTerminal}
					continue
				}
				cid, err := strconv.Atoi(ref)
				if err != nil {
					return MZero(), fmt.Errorf("dd: line %d: bad child ref %q", line, ref)
				}
				child, ok := nodes[cid]
				if !ok {
					return MZero(), fmt.Errorf("dd: line %d: child %d not yet defined", line, cid)
				}
				kids[i] = MEdge{W: w * child.W, N: child.N}
			}
			nodes[id] = p.makeMNode(level, kids)
		case "root":
			if len(fields) != 3 {
				return MZero(), fmt.Errorf("dd: line %d: malformed root", line)
			}
			w, err := parseWeight(fields[1])
			if err != nil {
				return MZero(), fmt.Errorf("dd: line %d: %v", line, err)
			}
			if fields[2] == "T" {
				return MEdge{W: p.cn.Lookup(w), N: mTerminal}, nil
			}
			id, err := strconv.Atoi(fields[2])
			if err != nil {
				return MZero(), fmt.Errorf("dd: line %d: bad root ref", line)
			}
			root, ok := nodes[id]
			if !ok {
				return MZero(), fmt.Errorf("dd: line %d: root node %d undefined", line, id)
			}
			return MEdge{W: p.cn.Lookup(w * root.W), N: root.N}, nil
		default:
			return MZero(), fmt.Errorf("dd: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return MZero(), err
	}
	return MZero(), fmt.Errorf("dd: missing root record")
}
