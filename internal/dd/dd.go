// Package dd implements decision diagrams for quantum computing as
// described in Sec. III of "Visualizing Decision Diagrams for Quantum
// Computing" (Wille, Burgholzer, Artner; DATE 2021) and the underlying
// package literature (Niemann et al., TCAD 2016; Zulehner et al.,
// ICCAD 2019; Hillmich et al., DAC 2020).
//
// Two diagram kinds exist. A vector DD represents a 2^n state vector:
// each node is labelled with a qubit and has two successors, splitting
// the vector into the halves where that qubit is |0⟩ or |1⟩. A matrix
// DD represents a 2^n×2^n operation matrix: each node has four
// successors U00, U01, U10, U11, splitting the matrix into quadrants
// (the successor Uij describes the action on the rest of the system
// given that the node's qubit maps |j⟩ to |i⟩).
//
// Equal sub-vectors/sub-matrices are shared via per-level unique
// tables, and sub-structures differing only by a common factor are
// unified by pulling the factor out into a complex edge weight,
// normalizing each node to a canonical form. Together with canonical
// complex values (package cnum), this makes diagrams canonical: two
// states (or operations) are equal exactly when their root edges are
// identical, which is what makes DD-based equivalence checking a
// pointer comparison.
//
// All diagrams are "quasi-reduced": every path from the root to the
// terminal visits every level, except that all-zero sub-structures are
// collapsed into zero stubs (a weight-0 edge to the terminal). This is
// the convention of the paper's figures.
//
// Diagrams are created through a Pkg, which owns the unique tables,
// the complex table, and the operation caches. A Pkg is not safe for
// concurrent use.
package dd

import (
	"fmt"
	"math"
	"sync/atomic"

	"quantumdd/internal/cnum"
)

// Var identifies a qubit level inside a diagram. Level 0 is the
// bottom-most (least-significant qubit q0, matching the big-endian
// |q_{n-1}…q_0⟩ convention of the paper).
type Var = int

// terminalVar labels the shared terminal node; it compares below every
// real level.
const terminalVar Var = -1

// VNode is a vector decision-diagram node. Nodes are immutable after
// construction and unique within a Pkg: structural equality implies
// pointer equality. Nodes live in slab-allocated arenas (mem.go) and
// are chained into the bucketed unique tables (unique.go) through the
// intrusive next pointer, which doubles as the free-list link after a
// node is swept.
type VNode struct {
	E    [2]VEdge // successors: E[0] = qubit |0⟩ branch, E[1] = |1⟩ branch
	next *VNode   // unique-table chain / free-list link
	hash uint64   // unique-table hash of the normalized contents
	V    Var      // qubit level
	ref  int      // reference count for garbage collection
}

// MNode is a matrix decision-diagram node with the four quadrant
// successors in row-major order: E[2i+j] describes the action given
// the node's qubit maps |j⟩ to |i⟩.
type MNode struct {
	E    [4]MEdge
	next *MNode
	hash uint64
	V    Var
	ref  int
}

// Shared immutable terminal nodes. Their edge arrays are never read;
// the hash seeds give terminal children a mixed contribution to their
// parents' hashes.
var (
	vTerminal = &VNode{V: terminalVar, hash: vTerminalHash}
	mTerminal = &MNode{V: terminalVar, hash: mTerminalHash}
)

// VEdge is a weighted edge to a vector node. The zero value is not
// meaningful; use Pkg methods or VZero/VOne helpers.
type VEdge struct {
	W complex128 // canonical complex weight
	N *VNode
}

// MEdge is a weighted edge to a matrix node.
type MEdge struct {
	W complex128
	N *MNode
}

// IsTerminal reports whether the edge points at the terminal node.
func (e VEdge) IsTerminal() bool { return e.N == vTerminal }

// IsZero reports whether the edge denotes the all-zero vector.
func (e VEdge) IsZero() bool { return e.N == vTerminal && e.W == 0 }

// IsTerminal reports whether the edge points at the terminal node.
func (e MEdge) IsTerminal() bool { return e.N == mTerminal }

// IsZero reports whether the edge denotes the all-zero matrix.
func (e MEdge) IsZero() bool { return e.N == mTerminal && e.W == 0 }

// Level returns the level the edge operates on: the node's level, or
// terminalVar for terminal edges.
func (e VEdge) Level() Var { return e.N.V }

// Level returns the level the edge operates on.
func (e MEdge) Level() Var { return e.N.V }

// Pkg owns all tables needed to build and manipulate decision
// diagrams over a fixed number of qubits.
type Pkg struct {
	nqubits int
	cn      *cnum.Table

	// CachesDisabled turns the operation caches off (lookups always
	// miss and results are not stored). Exists for the ablation
	// experiments quantifying what the compute tables buy.
	CachesDisabled bool

	// vnorm selects the vector normalization scheme; see NormScheme.
	vnorm NormScheme

	// Per-level bucketed unique tables (unique.go) and the slab
	// arenas feeding them (mem.go).
	vUnique []vTable
	mUnique []mTable
	vMem    vArena
	mMem    mArena

	// Operation caches: fixed-size direct-mapped lossy tables
	// (compute.go). Entries are invalidated wholesale on garbage
	// collection by bumping gen; see gc.go.
	gen        uint64
	addVCache  computeTable[addVKey, VEdge]
	addMCache  computeTable[addMKey, MEdge]
	mulMV      computeTable[mulMVKey, VEdge]
	mulMM      computeTable[mulMMKey, MEdge]
	kronCache  computeTable[kronKey, MEdge]
	conjCache  computeTable[*MNode, MEdge]
	fidCache   computeTable[fidKey, complex128]
	applyCache computeTable[applyVKey, VEdge]
	applySplit computeTable[applyVKey, vPair]

	// Matrix-apply kernel tables (applygatem.go): left/right gate
	// products and their row/column control-split decompositions.
	applyMLCache computeTable[applyMKey, MEdge]
	applyMRCache computeTable[applyMKey, MEdge]
	applyMLSplit computeTable[applyMKey, mPair]
	applyMRSplit computeTable[applyMKey, mPair]
	applyMLMerge computeTable[mergeMKey, MEdge]
	applyMRMerge computeTable[mergeMKey, MEdge]

	// Interned gate applications (applygate.go): canonical
	// (matrix, target, controls) triples resolve to stable pointers
	// that key the apply tables and carry the per-generation gate-DD
	// cache.
	gateIntern map[gateSig]*appliedGate

	// Identity fast path of the matrix kernel (applygatem.go): the
	// canonical per-level identity node chain, rebuilt at most once per
	// generation, plus the reverse map from cached gate-diagram roots
	// back to their descriptors (analysis fast paths).
	identNodes   []*MNode
	identGen     uint64
	gateRoots    map[*MNode]*appliedGate
	gateRootsGen uint64

	// Roots protected from garbage collection, see IncRef/DecRef.
	stats Stats

	// Node budget (see budget.go): maxNodes caps the live unique-table
	// size, live tracks it incrementally, and budgetArmed marks that a
	// *Checked operation is in flight and may be aborted.
	maxNodes    int
	live        int
	budgetArmed bool

	// Observability (see trace.go): tracer observes top-level
	// operation latencies, tracedOps strides snapshot publication,
	// and statsSnap is the atomically published Stats snapshot that
	// other goroutines read via LastStats.
	tracer    TraceFunc
	tracedOps uint64
	statsSnap atomic.Pointer[Stats]

	// Shape profiling (see shape.go): shapeEvery strides MaybeShapeV/M
	// sampling, shapeTick counts calls since the last profile, shapeSeq
	// numbers published profiles, and shapeSnap is the atomically
	// published latest profile other goroutines read via LastShape.
	shapeEvery int
	shapeTick  int
	shapeSeq   uint64
	shapeSnap  atomic.Pointer[ShapeProfile]
}

// Stats aggregates package counters, exposed for the benchmark
// harness, the web statistics panel, and the ablation experiments.
type Stats struct {
	NodesCreatedV uint64 // vector unique-table misses
	NodesCreatedM uint64 // matrix unique-table misses
	UniqueHitsV   uint64
	UniqueHitsM   uint64
	CacheLookups  uint64
	CacheHits     uint64
	GCRuns        uint64
	NodesFreed    uint64
	GCPauseNS     uint64 // cumulative wall-clock nanoseconds spent in GarbageCollect

	// Table & memory-manager counters (see unique.go, compute.go,
	// mem.go).
	NodesRecycledV uint64 // allocations served from the vector free list
	NodesRecycledM uint64 // allocations served from the matrix free list
	UTCollisions   uint64 // unique-table chain entries probed past the head
	CTStores       uint64 // compute-table stores
	CTEvictions    uint64 // stores that displaced a live entry

	// Gate-application kernel counters (applygate.go). The apply
	// tables also feed the aggregate CacheLookups/CacheHits and
	// CTStores/CTEvictions above; these break out the kernel's share.
	ApplyCTLookups   uint64 // apply/split compute-table lookups
	ApplyCTHits      uint64 // apply/split compute-table hits
	ApplyCTEvictions uint64 // apply/split stores displacing a live entry
	GatesFused       uint64 // gates eliminated by peephole fusion (AddGatesFused)
	GateDDCacheHits  uint64 // MakeGateDD calls served from the gate-DD cache

	// Matrix-apply kernel counters (applygatem.go), broken out the same
	// way. ApplyMOps vs MultMMOps is the kernel-vs-generic split the
	// verify views surface.
	ApplyMCTLookups     uint64 // matrix apply/split compute-table lookups
	ApplyMCTHits        uint64 // matrix apply/split compute-table hits
	ApplyMCTEvictions   uint64 // matrix apply/split stores displacing a live entry
	ApplyMIdentitySkips uint64 // identity sub-blocks short-circuited by the descent
	ApplyMOps           uint64 // top-level ApplyGateML/MR invocations
	MultMMOps           uint64 // top-level generic MultMM invocations

	// Snapshot-time gauges, filled by Stats().
	UniqueLoadV float64 // vector unique-table load factor (entries/buckets)
	UniqueLoadM float64 // matrix unique-table load factor
	FreeNodesV  int     // vector nodes parked on the free list
	FreeNodesM  int     // matrix nodes parked on the free list
	LiveNodes   int     // nodes currently in the unique tables
}

// Add returns the field-wise sum of s and b, for building aggregates
// over several packages' snapshots (replica pools, fleet metrics).
// Every field sums, including the load factors — callers wanting a
// mean load divide by the package count afterwards.
func (s Stats) Add(b Stats) Stats {
	s.NodesCreatedV += b.NodesCreatedV
	s.NodesCreatedM += b.NodesCreatedM
	s.UniqueHitsV += b.UniqueHitsV
	s.UniqueHitsM += b.UniqueHitsM
	s.CacheLookups += b.CacheLookups
	s.CacheHits += b.CacheHits
	s.GCRuns += b.GCRuns
	s.NodesFreed += b.NodesFreed
	s.GCPauseNS += b.GCPauseNS
	s.NodesRecycledV += b.NodesRecycledV
	s.NodesRecycledM += b.NodesRecycledM
	s.UTCollisions += b.UTCollisions
	s.CTStores += b.CTStores
	s.CTEvictions += b.CTEvictions
	s.ApplyCTLookups += b.ApplyCTLookups
	s.ApplyCTHits += b.ApplyCTHits
	s.ApplyCTEvictions += b.ApplyCTEvictions
	s.GatesFused += b.GatesFused
	s.GateDDCacheHits += b.GateDDCacheHits
	s.ApplyMCTLookups += b.ApplyMCTLookups
	s.ApplyMCTHits += b.ApplyMCTHits
	s.ApplyMCTEvictions += b.ApplyMCTEvictions
	s.ApplyMIdentitySkips += b.ApplyMIdentitySkips
	s.ApplyMOps += b.ApplyMOps
	s.MultMMOps += b.MultMMOps
	s.UniqueLoadV += b.UniqueLoadV
	s.UniqueLoadM += b.UniqueLoadM
	s.FreeNodesV += b.FreeNodesV
	s.FreeNodesM += b.FreeNodesM
	s.LiveNodes += b.LiveNodes
	return s
}

// Delta returns the counter increase from prev to s, for windowed
// accounting over successive snapshots (per-session resource meters,
// telemetry sampling). Monotone counters subtract reset-safe — a
// snapshot from a fresh package (counter went backwards) clamps that
// field to the current value rather than going negative. Snapshot-time
// gauges (load factors, free/live node counts) keep s's current value:
// a delta of a gauge is meaningless.
func (s Stats) Delta(prev Stats) Stats {
	sub := func(cur, old uint64) uint64 {
		if cur < old {
			return cur
		}
		return cur - old
	}
	return Stats{
		NodesCreatedV:       sub(s.NodesCreatedV, prev.NodesCreatedV),
		NodesCreatedM:       sub(s.NodesCreatedM, prev.NodesCreatedM),
		UniqueHitsV:         sub(s.UniqueHitsV, prev.UniqueHitsV),
		UniqueHitsM:         sub(s.UniqueHitsM, prev.UniqueHitsM),
		CacheLookups:        sub(s.CacheLookups, prev.CacheLookups),
		CacheHits:           sub(s.CacheHits, prev.CacheHits),
		GCRuns:              sub(s.GCRuns, prev.GCRuns),
		NodesFreed:          sub(s.NodesFreed, prev.NodesFreed),
		GCPauseNS:           sub(s.GCPauseNS, prev.GCPauseNS),
		NodesRecycledV:      sub(s.NodesRecycledV, prev.NodesRecycledV),
		NodesRecycledM:      sub(s.NodesRecycledM, prev.NodesRecycledM),
		UTCollisions:        sub(s.UTCollisions, prev.UTCollisions),
		CTStores:            sub(s.CTStores, prev.CTStores),
		CTEvictions:         sub(s.CTEvictions, prev.CTEvictions),
		ApplyCTLookups:      sub(s.ApplyCTLookups, prev.ApplyCTLookups),
		ApplyCTHits:         sub(s.ApplyCTHits, prev.ApplyCTHits),
		ApplyCTEvictions:    sub(s.ApplyCTEvictions, prev.ApplyCTEvictions),
		GatesFused:          sub(s.GatesFused, prev.GatesFused),
		GateDDCacheHits:     sub(s.GateDDCacheHits, prev.GateDDCacheHits),
		ApplyMCTLookups:     sub(s.ApplyMCTLookups, prev.ApplyMCTLookups),
		ApplyMCTHits:        sub(s.ApplyMCTHits, prev.ApplyMCTHits),
		ApplyMCTEvictions:   sub(s.ApplyMCTEvictions, prev.ApplyMCTEvictions),
		ApplyMIdentitySkips: sub(s.ApplyMIdentitySkips, prev.ApplyMIdentitySkips),
		ApplyMOps:           sub(s.ApplyMOps, prev.ApplyMOps),
		MultMMOps:           sub(s.MultMMOps, prev.MultMMOps),
		UniqueLoadV:         s.UniqueLoadV,
		UniqueLoadM:         s.UniqueLoadM,
		FreeNodesV:          s.FreeNodesV,
		FreeNodesM:          s.FreeNodesM,
		LiveNodes:           s.LiveNodes,
	}
}

// NormScheme selects how vector nodes are normalized. Both schemes
// yield canonical diagrams; they differ in what the edge weights mean.
type NormScheme int

const (
	// NormL2 divides a node's outgoing weights by their 2-norm
	// (footnote 3 of the paper): squared weights are then branch
	// probabilities, enabling O(n) single-path sampling and ProbOne.
	// This is the default.
	NormL2 NormScheme = iota
	// NormMax divides by the entry of largest magnitude (the original
	// QMDD convention): weights are relative to the dominant branch,
	// probabilities are NOT directly readable. Exists for the
	// normalization ablation (A4).
	NormMax
)

// New creates a package for diagrams over n qubits using the default
// complex tolerance.
func New(n int) *Pkg { return NewTol(n, cnum.DefaultTolerance) }

// SetVectorNormalization switches the vector normalization scheme.
// It must be called before any diagrams are built: mixing schemes in
// one package breaks canonicity.
func (p *Pkg) SetVectorNormalization(s NormScheme) {
	if v, m := p.ActiveNodes(); v+m > 0 {
		panic("dd: cannot change normalization after diagrams were built")
	}
	p.vnorm = s
}

// VectorNormalization reports the active vector normalization scheme.
func (p *Pkg) VectorNormalization() NormScheme { return p.vnorm }

// NewTol creates a package with an explicit complex tolerance.
func NewTol(n int, tol float64) *Pkg {
	if n <= 0 {
		panic(fmt.Sprintf("dd: number of qubits must be positive, got %d", n))
	}
	if n > 62 {
		panic(fmt.Sprintf("dd: at most 62 qubits supported (basis-state indices are int64), got %d", n))
	}
	p := &Pkg{
		nqubits: n,
		cn:      cnum.NewTableTol(tol),
		vUnique: make([]vTable, n),
		mUnique: make([]mTable, n),
		gen:     1,
	}
	for i := 0; i < n; i++ {
		p.vUnique[i] = newVTable()
		p.mUnique[i] = newMTable()
	}
	p.SetComputeTableSize(ctDefaultLarge)
	p.tracer = loadDefaultTracer()
	return p
}

// SetComputeTableSize reconfigures the capacity (in entries, rounded
// up to a power of two) of the four binary-operation compute tables;
// the unary/fidelity tables get a quarter of it. Current cache
// contents are dropped; diagrams are unaffected. The default is 8192.
func (p *Pkg) SetComputeTableSize(n int) {
	large := nextPow2(n)
	small := nextPow2(large / 4)
	p.addVCache.setSize(large)
	p.addMCache.setSize(large)
	p.mulMV.setSize(large)
	p.mulMM.setSize(large)
	p.kronCache.setSize(small)
	p.conjCache.setSize(small)
	p.fidCache.setSize(small)
	p.applyCache.setSize(large)
	p.applySplit.setSize(small)
	p.applyMLCache.setSize(large)
	p.applyMRCache.setSize(large)
	p.applyMLSplit.setSize(small)
	p.applyMRSplit.setSize(small)
	p.applyMLMerge.setSize(large)
	p.applyMRMerge.setSize(large)
}

// invalidateComputeTables discards all cached operation results in
// O(1) by bumping the generation counter: entries stamped with an
// older generation are treated as empty and overwritten in place.
func (p *Pkg) invalidateComputeTables() { p.gen++ }

// Qubits reports the number of qubits the package was created for.
func (p *Pkg) Qubits() int { return p.nqubits }

// Tolerance reports the complex identification radius.
func (p *Pkg) Tolerance() float64 { return p.cn.Tolerance() }

// Stats returns a snapshot of the package counters, including the
// point-in-time table-load and free-list gauges.
func (p *Pkg) Stats() Stats {
	s := p.stats
	var vCount, vBuckets, mCount, mBuckets int
	for i := range p.vUnique {
		vCount += p.vUnique[i].count
		vBuckets += len(p.vUnique[i].buckets)
	}
	for i := range p.mUnique {
		mCount += p.mUnique[i].count
		mBuckets += len(p.mUnique[i].buckets)
	}
	if vBuckets > 0 {
		s.UniqueLoadV = float64(vCount) / float64(vBuckets)
	}
	if mBuckets > 0 {
		s.UniqueLoadM = float64(mCount) / float64(mBuckets)
	}
	s.FreeNodesV = p.vMem.freeLen
	s.FreeNodesM = p.mMem.freeLen
	s.LiveNodes = p.live
	return s
}

// VZero returns the all-zero vector edge (a zero stub).
func VZero() VEdge { return VEdge{W: 0, N: vTerminal} }

// VOne returns the terminal edge with weight one (the scalar 1).
func VOne() VEdge { return VEdge{W: 1, N: vTerminal} }

// MZero returns the all-zero matrix edge.
func MZero() MEdge { return MEdge{W: 0, N: mTerminal} }

// MOne returns the terminal matrix edge with weight one.
func MOne() MEdge { return MEdge{W: 1, N: mTerminal} }

// makeVNode normalizes the candidate node (v, e) and interns it in the
// unique table, returning the canonical weighted edge.
//
// Vector nodes are normalized by the 2-norm of the pair of edge
// weights (footnote 3 of the paper): the outgoing weights are divided
// by sqrt(|w0|²+|w1|²) and the factor is pushed to the incoming edge.
// A residual phase is pulled out of the first non-zero edge so that it
// is real and non-negative, which makes the form canonical. As a
// consequence, |w0|² and |w1|² at every node are the conditional
// probabilities of the node's qubit being 0 or 1 — this is what makes
// single-path sampling (Hillmich et al., DAC 2020) work.
func (p *Pkg) makeVNode(v Var, e [2]VEdge) VEdge {
	if v < 0 || v >= p.nqubits {
		panic(fmt.Sprintf("dd: level %d out of range [0,%d)", v, p.nqubits))
	}
	for i, c := range e {
		if c.IsZero() {
			continue
		}
		if c.N.V != v-1 {
			panic(fmt.Sprintf("dd: child %d of level-%d node has level %d (quasi-reduction violated)", i, v, c.N.V))
		}
	}
	w0, w1 := e[0].W, e[1].W
	m0 := real(w0)*real(w0) + imag(w0)*imag(w0)
	m1 := real(w1)*real(w1) + imag(w1)*imag(w1)
	if m0+m1 == 0 {
		return VZero()
	}
	var top complex128
	if p.vnorm == NormMax {
		// QMDD convention: divide by the dominant entry (first on a
		// tie within tolerance) so that one weight becomes exactly 1.
		idx := 0
		if m1 > m0+p.cn.Tolerance() {
			idx = 1
		}
		if idx == 0 {
			top = w0
			w1 /= top
			w0 = 1
		} else {
			top = w1
			w0 /= top
			w1 = 1
		}
	} else {
		norm := math.Sqrt(m0 + m1)
		w0 = complex(real(w0)/norm, imag(w0)/norm)
		w1 = complex(real(w1)/norm, imag(w1)/norm)
		top = complex(norm, 0)
		// Pull the phase of the first non-zero weight into the top edge.
		first := w0
		if w0 == 0 || cnum.IsZero(w0, p.cn.Tolerance()) {
			first = w1
		}
		mag := math.Hypot(real(first), imag(first))
		phase := complex(real(first)/mag, imag(first)/mag)
		if phase != 1 {
			top *= phase
			inv := complex(real(phase), -imag(phase)) // 1/phase for unit-magnitude phase
			w0 *= inv
			w1 *= inv
		}
	}
	w0 = p.cn.Lookup(w0)
	w1 = p.cn.Lookup(w1)
	top = p.cn.Lookup(top)
	if w0 == 0 && w1 == 0 {
		// Both weights vanished within tolerance: the whole sub-vector
		// is numerically zero.
		return VZero()
	}
	n0, n1 := e[0].N, e[1].N
	if w0 == 0 {
		n0 = vTerminal
	}
	if w1 == 0 {
		n1 = vTerminal
	}
	h := hashVNode(w0, w1, n0, n1)
	tab := &p.vUnique[v]
	if n := tab.lookup(h, w0, w1, n0, n1, &p.stats); n != nil {
		p.stats.UniqueHitsV++
		return VEdge{W: top, N: n}
	}
	if p.budgetArmed && p.maxNodes > 0 && p.live >= p.maxNodes {
		panic(p.exceeded())
	}
	n, recycled := p.vMem.alloc()
	n.V = v
	n.hash = h
	n.E = [2]VEdge{{W: w0, N: n0}, {W: w1, N: n1}}
	tab.insert(n)
	p.live++
	p.stats.NodesCreatedV++
	if recycled {
		p.stats.NodesRecycledV++
	}
	return VEdge{W: top, N: n}
}

// makeMNode normalizes the candidate matrix node and interns it.
//
// Matrix nodes are normalized by the entry of largest magnitude
// (first such entry in index order on ties), which is divided out of
// all four edges and pushed to the incoming edge. This is the QMDD
// normalization scheme and yields a canonical form given canonical
// complex values.
func (p *Pkg) makeMNode(v Var, e [4]MEdge) MEdge {
	if v < 0 || v >= p.nqubits {
		panic(fmt.Sprintf("dd: level %d out of range [0,%d)", v, p.nqubits))
	}
	for i, c := range e {
		if c.IsZero() {
			continue
		}
		if c.N.V != v-1 {
			panic(fmt.Sprintf("dd: child %d of level-%d matrix node has level %d (quasi-reduction violated)", i, v, c.N.V))
		}
	}
	// Find the normalization entry: largest magnitude, first on ties
	// (within tolerance, to keep the choice stable under jitter). The
	// loop works on squared magnitudes, so the linear tolerance must
	// be squared consistently: |c| > max + tol is equivalent to
	// |c|² > max² + tol·(2·max + tol). Comparing |c|² against
	// max² + tol directly (as earlier revisions did) made the
	// tie-break too eager above magnitude 1 and too lax below it.
	argMax := -1
	maxMag := 0.0 // squared magnitude of the current arg-max
	maxLin := 0.0 // its linear magnitude
	tol := p.cn.Tolerance()
	for i, c := range e {
		m := real(c.W)*real(c.W) + imag(c.W)*imag(c.W)
		if m > maxMag+tol*(2*maxLin+tol) {
			maxMag = m
			maxLin = math.Sqrt(m)
			argMax = i
		}
	}
	if argMax < 0 {
		return MZero()
	}
	top := e[argMax].W
	inv := 1 / top
	var w [4]complex128
	var n [4]*MNode
	for i, c := range e {
		if i == argMax {
			w[i] = 1 // exact by construction
		} else {
			w[i] = p.cn.Lookup(c.W * inv)
		}
		n[i] = c.N
		if w[i] == 0 {
			n[i] = mTerminal
		}
	}
	top = p.cn.Lookup(top)
	h := hashMNode(&w, &n)
	tab := &p.mUnique[v]
	if nd := tab.lookup(h, &w, &n, &p.stats); nd != nil {
		p.stats.UniqueHitsM++
		return MEdge{W: top, N: nd}
	}
	if p.budgetArmed && p.maxNodes > 0 && p.live >= p.maxNodes {
		panic(p.exceeded())
	}
	nd, recycled := p.mMem.alloc()
	nd.V = v
	nd.hash = h
	for i := range nd.E {
		nd.E[i] = MEdge{W: w[i], N: n[i]}
	}
	tab.insert(nd)
	p.live++
	p.stats.NodesCreatedM++
	if recycled {
		p.stats.NodesRecycledM++
	}
	return MEdge{W: top, N: nd}
}

// ActiveNodes reports the number of live nodes in the unique tables
// (vector, matrix), using the per-table counts maintained on insert
// and sweep.
func (p *Pkg) ActiveNodes() (vec, mat int) {
	for i := range p.vUnique {
		vec += p.vUnique[i].count
	}
	for i := range p.mUnique {
		mat += p.mUnique[i].count
	}
	return vec, mat
}
