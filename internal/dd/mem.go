package dd

// Node memory manager: chunked slab allocation plus free-list
// recycling, mirroring the memory manager of the MQT DD package
// (Wille, Hillmich, Burgholzer, arXiv:2108.07027, Sec. "Tools").
//
// Nodes are carved out of chunks so that allocating a node
// on the hot path is a pointer bump instead of a Go heap allocation,
// and nodes swept by GarbageCollect are threaded onto a free list
// (through their intrusive next pointer) and handed out again by the
// next allocation. The Go runtime only ever sees whole chunks; node
// churn inside a long simulation is invisible to it.
//
// Recycling is safe because the sweep in gc.go removes a node from the
// unique table in the same step that releases it: by the ref-counting
// invariant every surviving node's children survive too, so no live
// structure can reach a recycled slot.

// Chunk sizes grow geometrically from firstChunk to maxChunk, so a
// short-lived package (one web request, one small example) costs a
// few KiB while a long-running simulation converges to large slabs.
const (
	firstChunk = 128
	maxChunk   = 8192
)

// nextChunkLen doubles the previous chunk size up to the cap.
func nextChunkLen(prev int) int {
	if prev == 0 {
		return firstChunk
	}
	if prev >= maxChunk {
		return maxChunk
	}
	return 2 * prev
}

// vArena allocates VNodes.
type vArena struct {
	chunks  [][]VNode
	used    int    // entries handed out from the newest chunk
	free    *VNode // recycled nodes, linked through next
	freeLen int
}

// alloc returns a node with all fields zeroed; recycled reports
// whether it came from the free list.
func (a *vArena) alloc() (n *VNode, recycled bool) {
	if n = a.free; n != nil {
		a.free = n.next
		a.freeLen--
		n.next = nil
		return n, true
	}
	if len(a.chunks) == 0 || a.used == len(a.chunks[len(a.chunks)-1]) {
		prev := 0
		if len(a.chunks) > 0 {
			prev = len(a.chunks[len(a.chunks)-1])
		}
		a.chunks = append(a.chunks, make([]VNode, nextChunkLen(prev)))
		a.used = 0
	}
	c := a.chunks[len(a.chunks)-1]
	n = &c[a.used]
	a.used++
	return n, false
}

// release clears the node and pushes it onto the free list. The clear
// matters: stale edges must not survive into the slot's next life.
func (a *vArena) release(n *VNode) {
	*n = VNode{}
	n.next = a.free
	a.free = n
	a.freeLen++
}

// mArena allocates MNodes.
type mArena struct {
	chunks  [][]MNode
	used    int
	free    *MNode
	freeLen int
}

func (a *mArena) alloc() (n *MNode, recycled bool) {
	if n = a.free; n != nil {
		a.free = n.next
		a.freeLen--
		n.next = nil
		return n, true
	}
	if len(a.chunks) == 0 || a.used == len(a.chunks[len(a.chunks)-1]) {
		prev := 0
		if len(a.chunks) > 0 {
			prev = len(a.chunks[len(a.chunks)-1])
		}
		a.chunks = append(a.chunks, make([]MNode, nextChunkLen(prev)))
		a.used = 0
	}
	c := a.chunks[len(a.chunks)-1]
	n = &c[a.used]
	a.used++
	return n, false
}

func (a *mArena) release(n *MNode) {
	*n = MNode{}
	n.next = a.free
	a.free = n
	a.freeLen++
}
