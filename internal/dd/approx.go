package dd

import "fmt"

// Approximation by branch pruning: remove sub-trees whose probability
// contribution lies below a threshold and renormalize. This trades
// fidelity for diagram size — the standard counter-measure when the
// "exponential worst case" of Sec. III hits during simulation (cf. the
// approximation features of the DDSIM family). The exact fidelity
// |⟨ψ|ψ̃⟩|² between original and approximation is returned, so callers
// control the error budget precisely.

// Approximate prunes every edge whose branch probability (the squared
// magnitude of its weight within the normalized diagram, accumulated
// down from the root) is below threshold. It returns the renormalized
// approximation, the exact fidelity to the original, and the node
// counts before and after.
func (p *Pkg) Approximate(e VEdge, threshold float64) (approx VEdge, fidelity float64, before, after int) {
	if threshold < 0 || threshold >= 1 {
		panic(fmt.Sprintf("dd: approximation threshold must be in [0,1), got %g", threshold))
	}
	if p.vnorm != NormL2 {
		panic("dd: Approximate requires 2-norm vector normalization")
	}
	before = SizeV(e)
	if e.IsZero() || threshold == 0 {
		return e, 1, before, before
	}
	memo := map[approxKey]VEdge{}
	pruned := p.approximate(e.N, 1.0, threshold, memo)
	if pruned.IsZero() {
		return VZero(), 0, before, 0
	}
	// Renormalize to the original norm, preserving the root phase.
	scale := Norm(e) / Norm(VEdge{W: e.W * pruned.W, N: pruned.N})
	approx = VEdge{W: p.cn.Lookup(e.W * pruned.W * complex(scale, 0)), N: pruned.N}
	fid := p.InnerProduct(e, approx)
	norm := Norm(e)
	fidelity = real(fid)*real(fid) + imag(fid)*imag(fid)
	if norm > 0 {
		fidelity /= norm * norm * norm * norm // normalize both sides
	}
	after = SizeV(approx)
	return approx, fidelity, before, after
}

type approxKey struct {
	n *VNode
	// pathProb is discretized so the memo can hit; pruning decisions
	// within the same bucket coincide.
	bucket int64
}

func (p *Pkg) approximate(n *VNode, pathProb, threshold float64, memo map[approxKey]VEdge) VEdge {
	if n == vTerminal {
		return VOne()
	}
	key := approxKey{n: n, bucket: int64(pathProb / threshold)}
	if r, ok := memo[key]; ok {
		return r
	}
	var kids [2]VEdge
	for i, c := range n.E {
		w2 := real(c.W)*real(c.W) + imag(c.W)*imag(c.W)
		if w2 == 0 || pathProb*w2 < threshold {
			kids[i] = VZero()
			continue
		}
		sub := p.approximate(c.N, pathProb*w2, threshold, memo)
		kids[i] = VEdge{W: c.W * sub.W, N: sub.N}
	}
	r := p.makeVNode(n.V, kids)
	memo[key] = r
	return r
}

// FidelityAfterPruning is a convenience that reports what fidelity a
// given threshold would retain without keeping the approximation.
func (p *Pkg) FidelityAfterPruning(e VEdge, threshold float64) float64 {
	_, f, _, _ := p.Approximate(e, threshold)
	return f
}
