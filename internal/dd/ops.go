package dd

import (
	"math/cmplx"
)

// Cache keys. Weights are factored out of the operands wherever the
// operation allows it, so that cache hits depend only on structure:
//
//	M·V:      (wm·M)·(wv·V)        = wm·wv·(M·V)
//	A+B:      wa·A + wb·B          = wa·(A + (wb/wa)·B)
//	kron:     (wa·A)⊗(wb·B)        = wa·wb·(A⊗B)
//	conj-T:   (w·M)†               = conj(w)·M†
//
// The residual ratio in the addition key is canonicalized through the
// complex table so numerically equal ratios collide.
type (
	addVKey struct {
		a, b *VNode
		r    complex128
	}
	addMKey struct {
		a, b *MNode
		r    complex128
	}
	mulMVKey struct {
		m *MNode
		v *VNode
	}
	mulMMKey struct {
		a, b *MNode
	}
	kronKey struct {
		a, b *MNode
	}
)

// The exported entry points (AddV, MultMV, …) live in trace.go: they
// time the recursive bodies below when a tracer is installed. The
// recursion calls the unexported bodies directly, so only top-level
// invocations are traced.

// addV is the recursive body of AddV.
func (p *Pkg) addV(a, b VEdge) VEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.N == vTerminal && b.N == vTerminal {
		return VEdge{W: p.cn.Lookup(a.W + b.W), N: vTerminal}
	}
	if a.N.V != b.N.V {
		panic("dd: AddV operands have mismatched levels")
	}
	r := p.cn.Lookup(b.W / a.W)
	p.stats.CacheLookups++
	key := addVKey{a: a.N, b: b.N, r: r}
	h := hashAddV(key)
	if res, ok := p.addVCache.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		return VEdge{W: p.cn.Lookup(res.W * a.W), N: res.N}
	}
	v := a.N.V
	var e [2]VEdge
	for i := 0; i < 2; i++ {
		ae := a.N.E[i]
		be := b.N.E[i]
		e[i] = p.addV(ae, VEdge{W: r * be.W, N: be.N})
	}
	res := p.makeVNode(v, e)
	p.addVCache.store(h, key, res, p.gen, &p.stats)
	return VEdge{W: p.cn.Lookup(res.W * a.W), N: res.N}
}

// addM is the recursive body of AddM.
func (p *Pkg) addM(a, b MEdge) MEdge {
	if a.IsZero() {
		return b
	}
	if b.IsZero() {
		return a
	}
	if a.N == mTerminal && b.N == mTerminal {
		return MEdge{W: p.cn.Lookup(a.W + b.W), N: mTerminal}
	}
	if a.N.V != b.N.V {
		panic("dd: AddM operands have mismatched levels")
	}
	r := p.cn.Lookup(b.W / a.W)
	p.stats.CacheLookups++
	key := addMKey{a: a.N, b: b.N, r: r}
	h := hashAddM(key)
	if res, ok := p.addMCache.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		return MEdge{W: p.cn.Lookup(res.W * a.W), N: res.N}
	}
	v := a.N.V
	var e [4]MEdge
	for i := 0; i < 4; i++ {
		ae := a.N.E[i]
		be := b.N.E[i]
		e[i] = p.addM(ae, MEdge{W: r * be.W, N: be.N})
	}
	res := p.makeMNode(v, e)
	p.addMCache.store(h, key, res, p.gen, &p.stats)
	return MEdge{W: p.cn.Lookup(res.W * a.W), N: res.N}
}

// multMV is the recursive body of MultMV: the product is decomposed
// into the four quadrant sub-products, which are summed pairwise and
// recursed until only scalar operations remain.
func (p *Pkg) multMV(m MEdge, v VEdge) VEdge {
	if m.IsZero() || v.IsZero() {
		return VZero()
	}
	if m.N == mTerminal && v.N == vTerminal {
		return VEdge{W: p.cn.Lookup(m.W * v.W), N: vTerminal}
	}
	if m.N.V != v.N.V {
		panic("dd: MultMV operands have mismatched levels")
	}
	p.stats.CacheLookups++
	key := mulMVKey{m: m.N, v: v.N}
	h := hashMulMV(key)
	if res, ok := p.mulMV.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		return VEdge{W: p.cn.Lookup(res.W * m.W * v.W), N: res.N}
	}
	lv := m.N.V
	var e [2]VEdge
	for i := 0; i < 2; i++ {
		sum := VZero()
		for j := 0; j < 2; j++ {
			me := m.N.E[2*i+j]
			ve := v.N.E[j]
			sum = p.addV(sum, p.multMV(me, ve))
		}
		e[i] = sum
	}
	res := p.makeVNode(lv, e)
	p.mulMV.store(h, key, res, p.gen, &p.stats)
	return VEdge{W: p.cn.Lookup(res.W * m.W * v.W), N: res.N}
}

// multMM is the recursive body of MultMM.
func (p *Pkg) multMM(a, b MEdge) MEdge {
	if a.IsZero() || b.IsZero() {
		return MZero()
	}
	if a.N == mTerminal && b.N == mTerminal {
		return MEdge{W: p.cn.Lookup(a.W * b.W), N: mTerminal}
	}
	if a.N.V != b.N.V {
		panic("dd: MultMM operands have mismatched levels")
	}
	p.stats.CacheLookups++
	key := mulMMKey{a: a.N, b: b.N}
	h := hashMulMM(key)
	if res, ok := p.mulMM.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		return MEdge{W: p.cn.Lookup(res.W * a.W * b.W), N: res.N}
	}
	lv := a.N.V
	var e [4]MEdge
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			sum := MZero()
			for k := 0; k < 2; k++ {
				ae := a.N.E[2*i+k]
				be := b.N.E[2*k+j]
				sum = p.addM(sum, p.multMM(ae, be))
			}
			e[2*i+j] = sum
		}
	}
	res := p.makeMNode(lv, e)
	p.mulMM.store(h, key, res, p.gen, &p.stats)
	return MEdge{W: p.cn.Lookup(res.W * a.W * b.W), N: res.N}
}

// kronM is the body of KronM: as illustrated in Fig. 3 of the paper,
// the tensor product amounts to replacing the terminal of a's diagram
// with the root of b's diagram (relabelling a's nodes).
func (p *Pkg) kronM(a, b MEdge, lowerQubits int) MEdge {
	if a.IsZero() || b.IsZero() {
		return MZero()
	}
	p.stats.CacheLookups++
	key := kronKey{a: a.N, b: b.N}
	h := hashKron(key)
	if res, ok := p.kronCache.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		return MEdge{W: p.cn.Lookup(res.W * a.W * b.W), N: res.N}
	}
	res := p.kronRec(MEdge{W: 1, N: a.N}, b.N, lowerQubits)
	p.kronCache.store(h, key, res, p.gen, &p.stats)
	return MEdge{W: p.cn.Lookup(res.W * a.W * b.W), N: res.N}
}

func (p *Pkg) kronRec(a MEdge, b *MNode, shift int) MEdge {
	if a.IsZero() {
		return MZero()
	}
	if a.N == mTerminal {
		return MEdge{W: a.W, N: b}
	}
	var e [4]MEdge
	for i, c := range a.N.E {
		e[i] = p.kronRec(c, b, shift)
	}
	return p.scaleM(p.makeMNode(a.N.V+shift, e), a.W)
}

// KronV computes the tensor product a⊗b of two state diagrams, with b
// spanning the lowerQubits bottom levels.
func (p *Pkg) KronV(a, b VEdge, lowerQubits int) VEdge {
	if a.IsZero() || b.IsZero() {
		return VZero()
	}
	res := p.kronVRec(VEdge{W: 1, N: a.N}, b.N, lowerQubits)
	return VEdge{W: p.cn.Lookup(res.W * a.W * b.W), N: res.N}
}

func (p *Pkg) kronVRec(a VEdge, b *VNode, shift int) VEdge {
	if a.IsZero() {
		return VZero()
	}
	if a.N == vTerminal {
		return VEdge{W: a.W, N: b}
	}
	var e [2]VEdge
	for i, c := range a.N.E {
		e[i] = p.kronVRec(c, b, shift)
	}
	res := p.makeVNode(a.N.V+shift, e)
	return VEdge{W: p.cn.Lookup(res.W * a.W), N: res.N}
}

// conjTranspose is the recursive body of ConjTranspose, used to
// invert circuits for the advanced equivalence-checking scheme.
func (p *Pkg) conjTranspose(m MEdge) MEdge {
	if m.IsZero() {
		return MZero()
	}
	if m.N == mTerminal {
		return MEdge{W: p.cn.Lookup(cmplx.Conj(m.W)), N: mTerminal}
	}
	w := p.cn.Lookup(cmplx.Conj(m.W))
	p.stats.CacheLookups++
	h := m.N.hash
	if res, ok := p.conjCache.lookup(h, m.N, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		return MEdge{W: p.cn.Lookup(res.W * w), N: res.N}
	}
	var e [4]MEdge
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			// transpose swaps quadrants (i,j) -> (j,i)
			e[2*i+j] = p.conjTranspose(m.N.E[2*j+i])
		}
	}
	res := p.makeMNode(m.N.V, e)
	p.conjCache.store(h, m.N, res, p.gen, &p.stats)
	return MEdge{W: p.cn.Lookup(res.W * w), N: res.N}
}

func (p *Pkg) scaleM(e MEdge, w complex128) MEdge {
	return MEdge{W: p.cn.Lookup(e.W * w), N: e.N}
}
