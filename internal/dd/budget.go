package dd

// Resource governance: a configurable cap on the number of live nodes
// in the unique tables.
//
// Decision diagrams can grow exponentially on adversarial inputs (the
// companion tool paper stresses this as the fundamental limit of the
// data structure), and in a server setting an unbounded simulation
// OOM-kills the whole process rather than just the offending request.
// A Pkg can therefore be given a node budget via SetMaxNodes. The
// budget is enforced inside the *Checked operation variants: when a
// node allocation would push the unique tables past the cap, the
// operation aborts, the partially built intermediates are garbage
// collected, and a *ResourceError (matching ErrResourceExhausted via
// errors.Is) is returned. Diagrams protected with IncRef survive an
// aborted operation untouched, so callers can keep rendering the last
// good state.
//
// The unchecked operations ignore the budget entirely, which keeps the
// existing single-shot tools and tests unaffected; servers route all
// potentially explosive work through the checked variants.

import (
	"errors"
	"fmt"
)

// ErrResourceExhausted is the sentinel matched by errors.Is when an
// operation aborts because the node budget was exceeded.
var ErrResourceExhausted = errors.New("dd: node budget exhausted")

// ResourceError reports a budget violation with the observed table
// size and the configured cap. It unwraps to ErrResourceExhausted.
type ResourceError struct {
	Nodes int // live unique-table nodes at the time of the abort
	Limit int // the configured MaxNodes cap
}

func (e *ResourceError) Error() string {
	return fmt.Sprintf("dd: diagram too large: %d live nodes exceed the budget of %d", e.Nodes, e.Limit)
}

func (e *ResourceError) Unwrap() error { return ErrResourceExhausted }

// SetMaxNodes installs a cap on the total number of live unique-table
// nodes (vector plus matrix). Zero or negative disables the budget.
// The cap is enforced only by the *Checked operations.
func (p *Pkg) SetMaxNodes(n int) { p.maxNodes = n }

// MaxNodes reports the configured node budget (0 = unlimited).
func (p *Pkg) MaxNodes() int { return p.maxNodes }

// LiveNodes reports the current number of unique-table nodes,
// including garbage not yet collected.
func (p *Pkg) LiveNodes() int { return p.live }

// exceeded builds the typed error for the current table size.
func (p *Pkg) exceeded() *ResourceError {
	return &ResourceError{Nodes: p.live, Limit: p.maxNodes}
}

// checked runs op with the budget armed: node allocations beyond
// MaxNodes abort the operation via a panic that is converted back into
// a *ResourceError here. Before starting, garbage is collected if the
// tables are already at the cap, so stale intermediates of earlier
// operations do not eat the budget of this one. After an abort, the
// partially built (unreferenced) result nodes are swept so the package
// stays usable; referenced diagrams are untouched.
func (p *Pkg) checked(op func()) (err error) {
	if p.maxNodes > 0 && p.live >= p.maxNodes {
		p.GarbageCollect()
		if p.live >= p.maxNodes {
			return p.exceeded()
		}
	}
	defer func() {
		p.budgetArmed = false
		if r := recover(); r != nil {
			re, ok := r.(*ResourceError)
			if !ok {
				panic(r)
			}
			p.GarbageCollect()
			err = re
		}
	}()
	p.budgetArmed = true
	op()
	return nil
}

// The *Checked wrappers ref-protect their operands for the duration
// of the call: checked() may garbage-collect both before the
// operation (to reclaim stale intermediates) and after an abort, and
// with the recycling allocator (mem.go) an unreferenced operand would
// not merely fall out of the unique tables — its nodes would be
// zeroed and reused. The temporary references keep operands intact
// through any internal collection; after the wrapper returns they are
// subject to normal GC rules again.

// MultMVChecked is MultMV under the node budget: it returns a
// *ResourceError instead of growing the unique tables past MaxNodes.
func (p *Pkg) MultMVChecked(m MEdge, v VEdge) (VEdge, error) {
	p.IncRefM(m)
	p.IncRefV(v)
	defer func() { p.DecRefM(m); p.DecRefV(v) }()
	var res VEdge
	if err := p.checked(func() { res = p.MultMV(m, v) }); err != nil {
		return VZero(), err
	}
	return res, nil
}

// MultMMChecked is MultMM under the node budget.
func (p *Pkg) MultMMChecked(a, b MEdge) (MEdge, error) {
	p.IncRefM(a)
	p.IncRefM(b)
	defer func() { p.DecRefM(a); p.DecRefM(b) }()
	var res MEdge
	if err := p.checked(func() { res = p.MultMM(a, b) }); err != nil {
		return MZero(), err
	}
	return res, nil
}

// AddVChecked is AddV under the node budget.
func (p *Pkg) AddVChecked(a, b VEdge) (VEdge, error) {
	p.IncRefV(a)
	p.IncRefV(b)
	defer func() { p.DecRefV(a); p.DecRefV(b) }()
	var res VEdge
	if err := p.checked(func() { res = p.AddV(a, b) }); err != nil {
		return VZero(), err
	}
	return res, nil
}

// AddMChecked is AddM under the node budget.
func (p *Pkg) AddMChecked(a, b MEdge) (MEdge, error) {
	p.IncRefM(a)
	p.IncRefM(b)
	defer func() { p.DecRefM(a); p.DecRefM(b) }()
	var res MEdge
	if err := p.checked(func() { res = p.AddM(a, b) }); err != nil {
		return MZero(), err
	}
	return res, nil
}
