package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"quantumdd/internal/cnum"
)

const tol = 1e-9

func approx(a, b complex128) bool { return cmplx.Abs(a-b) <= tol }

// Gate matrices used across the tests.
var (
	gateH = GateMatrix{complex(cnum.SqrtHalf, 0), complex(cnum.SqrtHalf, 0), complex(cnum.SqrtHalf, 0), complex(-cnum.SqrtHalf, 0)}
	gateX = GateMatrix{0, 1, 1, 0}
	gateZ = GateMatrix{1, 0, 0, -1}
	gateS = GateMatrix{1, 0, 0, complex(0, 1)}
	gateT = GateMatrix{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}
)

func bellState(t testing.TB, p *Pkg) VEdge {
	t.Helper()
	state := p.ZeroState()
	h := p.MakeGateDD(gateH, 1)
	cx := p.MakeGateDD(gateX, 0, Control{Qubit: 1})
	state = p.MultMV(h, state)
	return p.MultMV(cx, state)
}

func TestZeroState(t *testing.T) {
	p := New(3)
	e := p.ZeroState()
	if got := Amplitude(e, 0); !approx(got, 1) {
		t.Fatalf("amplitude of |000> = %v, want 1", got)
	}
	for i := int64(1); i < 8; i++ {
		if got := Amplitude(e, i); got != 0 {
			t.Fatalf("amplitude of |%03b> = %v, want 0", i, got)
		}
	}
	if got := SizeV(e); got != 3 {
		t.Fatalf("zero state has %d nodes, want 3", got)
	}
}

func TestBasisState(t *testing.T) {
	p := New(3)
	for idx := int64(0); idx < 8; idx++ {
		e := p.BasisState(idx)
		for i := int64(0); i < 8; i++ {
			want := complex128(0)
			if i == idx {
				want = 1
			}
			if got := Amplitude(e, i); !approx(got, want) {
				t.Fatalf("basis %d: amplitude[%d] = %v, want %v", idx, i, got, want)
			}
		}
	}
}

// TestBellStateStructure reproduces Ex. 6 / Fig. 2(a): the Bell state
// DD has 3 nodes and both non-zero paths carry amplitude 1/sqrt(2).
func TestBellStateStructure(t *testing.T) {
	p := New(2)
	e := bellState(t, p)
	if got := SizeV(e); got != 3 {
		t.Fatalf("Bell state DD has %d nodes, want 3 (Ex. 6)", got)
	}
	want := complex(cnum.SqrtHalf, 0)
	if got := Amplitude(e, 0); !approx(got, want) {
		t.Fatalf("amplitude |00> = %v, want 1/sqrt2", got)
	}
	if got := Amplitude(e, 3); !approx(got, want) {
		t.Fatalf("amplitude |11> = %v, want 1/sqrt2", got)
	}
	if got := Amplitude(e, 1); got != 0 {
		t.Fatalf("amplitude |01> = %v, want 0", got)
	}
	if got := Amplitude(e, 2); got != 0 {
		t.Fatalf("amplitude |10> = %v, want 0", got)
	}
	if err := p.CheckUnitVector(e); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicity: building the same state along different gate orders
// must yield the identical root edge (pointer equality), the property
// verification relies on.
func TestCanonicity(t *testing.T) {
	p := New(2)
	// Route 1: H on q1 then CX.
	a := bellState(t, p)
	// Route 2: build from the dense vector.
	b, err := p.FromVector([]complex128{complex(cnum.SqrtHalf, 0), 0, 0, complex(cnum.SqrtHalf, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("canonical forms differ: %+v vs %+v", a, b)
	}
}

func TestFromVectorRoundTrip(t *testing.T) {
	p := New(3)
	rng := rand.New(rand.NewSource(7))
	amps := make([]complex128, 8)
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	s := complex(1/math.Sqrt(norm), 0)
	for i := range amps {
		amps[i] *= s
	}
	e, err := p.FromVector(amps)
	if err != nil {
		t.Fatal(err)
	}
	back := p.Vector(e)
	for i := range amps {
		if !approx(back[i], amps[i]) {
			t.Fatalf("round trip amplitude %d: got %v want %v", i, back[i], amps[i])
		}
	}
}

func TestFromVectorLengthMismatch(t *testing.T) {
	p := New(2)
	if _, err := p.FromVector(make([]complex128, 3)); err == nil {
		t.Fatal("expected error for wrong vector length")
	}
}

// TestGateDDStructure reproduces Fig. 2(b,c): the Hadamard DD is a
// single node, the CNOT DD has 3 nodes, and both reconstruct their
// defining matrices from Fig. 1.
func TestGateDDStructure(t *testing.T) {
	p := New(2)
	h := p.MakeGateDD(gateH, 0)
	// H extended over 2 qubits: I (x) H has 2 nodes; the bare single-
	// qubit structure on a 1-qubit package is 1 node.
	p1 := New(1)
	h1 := p1.MakeGateDD(gateH, 0)
	if got := SizeM(h1); got != 1 {
		t.Fatalf("H DD has %d nodes, want 1 (Fig. 2(b))", got)
	}
	s := cnum.SqrtHalf
	wantH := [][]complex128{
		{complex(s, 0), complex(s, 0)},
		{complex(s, 0), complex(-s, 0)},
	}
	gotH := p1.Matrix(h1)
	for i := range wantH {
		for j := range wantH[i] {
			if !approx(gotH[i][j], wantH[i][j]) {
				t.Fatalf("H[%d][%d] = %v, want %v", i, j, gotH[i][j], wantH[i][j])
			}
		}
	}
	cx := p.MakeGateDD(gateX, 0, Control{Qubit: 1})
	if got := SizeM(cx); got != 3 {
		t.Fatalf("CNOT DD has %d nodes, want 3 (Fig. 2(c))", got)
	}
	wantCX := [][]complex128{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	}
	gotCX := p.Matrix(cx)
	for i := range wantCX {
		for j := range wantCX[i] {
			if !approx(gotCX[i][j], wantCX[i][j]) {
				t.Fatalf("CNOT[%d][%d] = %v, want %v", i, j, gotCX[i][j], wantCX[i][j])
			}
		}
	}
	_ = h
}

// TestKronTerminalReplacement reproduces Ex. 8 / Fig. 3: H (x) I2 via
// the kron operation equals the gate DD of H on the upper qubit, and
// applying it to |00> yields 1/sqrt2 [1,0,1,0].
func TestKronTerminalReplacement(t *testing.T) {
	p := New(2)
	// Build the two operand diagrams as sub-diagrams: H at level 1
	// cannot be built directly as a small DD, so build H on a level-0
	// basis and shift it via kron.
	var hEdge MEdge
	{
		var em [4]MEdge
		for i, w := range gateH {
			em[i] = MEdge{W: w, N: mTerminal}
		}
		hEdge = p.makeMNode(0, em) // H as a 1-level diagram
	}
	id := p.identUpTo(0)
	kron := p.KronM(hEdge, id, 1)
	direct := p.MakeGateDD(gateH, 1)
	if kron != direct {
		t.Fatalf("H kron I2 != gate DD of H on q1: %+v vs %+v", kron, direct)
	}
	state := p.MultMV(kron, p.ZeroState())
	want := []complex128{complex(cnum.SqrtHalf, 0), 0, complex(cnum.SqrtHalf, 0), 0}
	got := p.Vector(state)
	for i := range want {
		if !approx(got[i], want[i]) {
			t.Fatalf("amplitude %d = %v, want %v (Ex. 3)", i, got[i], want[i])
		}
	}
}

func TestKronV(t *testing.T) {
	p := New(2)
	p1 := New(1)
	plus := p1.MultMV(p1.MakeGateDD(gateH, 0), p1.ZeroState())
	_ = plus
	// |1> (x) |0> = |10>
	one := p.makeVNode(0, [2]VEdge{VZero(), VOne()})
	zero := p.makeVNode(0, [2]VEdge{VOne(), VZero()})
	prod := p.KronV(one, zero, 1)
	if got := Amplitude(prod, 2); !approx(got, 1) {
		t.Fatalf("kron |1>,|0>: amplitude |10> = %v, want 1", got)
	}
}

func TestIdentity(t *testing.T) {
	p := New(3)
	id := p.Ident()
	if got := SizeM(id); got != 3 {
		t.Fatalf("identity DD has %d nodes, want 3", got)
	}
	if k := p.CheckIdentity(id); k != IdentityExact {
		t.Fatalf("CheckIdentity(I) = %v, want IdentityExact", k)
	}
	phase := cmplx.Exp(complex(0, 1.234))
	up := MEdge{W: p.cn.Lookup(id.W * phase), N: id.N}
	if k := p.CheckIdentity(up); k != IdentityUpToPhase {
		t.Fatalf("CheckIdentity(e^{i phi} I) = %v, want IdentityUpToPhase", k)
	}
	h := p.MakeGateDD(gateH, 0)
	if k := p.CheckIdentity(h); k != NotIdentity {
		t.Fatalf("CheckIdentity(H) = %v, want NotIdentity", k)
	}
}

func TestMultMMUnitaryComposition(t *testing.T) {
	p := New(2)
	h := p.MakeGateDD(gateH, 1)
	cx := p.MakeGateDD(gateX, 0, Control{Qubit: 1})
	u := p.MultMM(cx, h)
	// U applied to |00> must give the Bell state.
	state := p.MultMV(u, p.ZeroState())
	want := bellState(t, p)
	if state != want {
		t.Fatalf("composed functionality disagrees with step-wise simulation")
	}
	// H·H = I, X·X = I, and U†·U = I.
	if got := p.MultMM(h, h); p.CheckIdentity(got) != IdentityExact {
		t.Fatalf("H.H is not the identity: %+v", got)
	}
	udag := p.ConjTranspose(u)
	if got := p.MultMM(udag, u); p.CheckIdentity(got) == NotIdentity {
		t.Fatalf("Udag.U is not the identity")
	}
}

func TestConjTranspose(t *testing.T) {
	p := New(2)
	s := p.MakeGateDD(gateS, 0, Control{Qubit: 1})
	sd := p.ConjTranspose(s)
	m := p.Matrix(s)
	md := p.Matrix(sd)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !approx(md[i][j], cmplx.Conj(m[j][i])) {
				t.Fatalf("adjoint mismatch at (%d,%d)", i, j)
			}
		}
	}
	// (S†)† = S must hit the same canonical diagram.
	if back := p.ConjTranspose(sd); back != s {
		t.Fatalf("double adjoint is not the original diagram")
	}
}

func TestAddV(t *testing.T) {
	p := New(2)
	a := p.BasisState(0)
	b := p.BasisState(3)
	sum := p.AddV(a, b)
	if got := Amplitude(sum, 0); !approx(got, 1) {
		t.Fatalf("sum amplitude |00> = %v, want 1", got)
	}
	if got := Amplitude(sum, 3); !approx(got, 1) {
		t.Fatalf("sum amplitude |11> = %v, want 1", got)
	}
	// a + (-1)*a = 0
	neg := VEdge{W: -a.W, N: a.N}
	if got := p.AddV(a, neg); !got.IsZero() {
		t.Fatalf("a - a = %+v, want zero", got)
	}
	// zero identity element
	if got := p.AddV(a, VZero()); got != a {
		t.Fatalf("a + 0 != a")
	}
	if got := p.AddV(VZero(), b); got != b {
		t.Fatalf("0 + b != b")
	}
}

func TestNegativeControl(t *testing.T) {
	p := New(2)
	// X on q0 if q1 == 0: |00> -> |01>, |10> stays.
	cx := p.MakeGateDD(gateX, 0, Control{Qubit: 1, Neg: true})
	out := p.MultMV(cx, p.BasisState(0))
	if got := Amplitude(out, 1); !approx(got, 1) {
		t.Fatalf("negative control: |00> -> amplitude |01> = %v, want 1", got)
	}
	out = p.MultMV(cx, p.BasisState(2))
	if got := Amplitude(out, 2); !approx(got, 1) {
		t.Fatalf("negative control: |10> should be unchanged, amplitude = %v", got)
	}
}

func TestToffoli(t *testing.T) {
	p := New(3)
	ccx := p.MakeGateDD(gateX, 0, Control{Qubit: 1}, Control{Qubit: 2})
	for idx := int64(0); idx < 8; idx++ {
		out := p.MultMV(ccx, p.BasisState(idx))
		want := idx
		if idx&0b110 == 0b110 {
			want = idx ^ 1
		}
		if got := Amplitude(out, want); !approx(got, 1) {
			t.Fatalf("Toffoli |%03b>: amplitude |%03b> = %v, want 1", idx, want, got)
		}
	}
}

func TestSwap(t *testing.T) {
	p := New(3)
	sw := p.MakeSwapDD(0, 2)
	for idx := int64(0); idx < 8; idx++ {
		out := p.MultMV(sw, p.BasisState(idx))
		b0 := idx & 1
		b2 := idx >> 2 & 1
		want := idx&0b010 | b0<<2 | b2
		if got := Amplitude(out, want); !approx(got, 1) {
			t.Fatalf("SWAP(0,2) |%03b>: amplitude |%03b> = %v, want 1", idx, want, got)
		}
	}
}

func TestProbabilitiesAndCollapse(t *testing.T) {
	p := New(2)
	e := bellState(t, p)
	if got := p.ProbOne(e, 0); math.Abs(got-0.5) > tol {
		t.Fatalf("P(q0=1) = %v, want 0.5 (Ex. 2)", got)
	}
	if got := p.ProbOne(e, 1); math.Abs(got-0.5) > tol {
		t.Fatalf("P(q1=1) = %v, want 0.5", got)
	}
	// Fig. 8(d): measuring q0 as 1 collapses to |11>.
	c, err := p.Collapse(e, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := Amplitude(c, 3); !approx(got, 1) {
		t.Fatalf("post-measurement amplitude |11> = %v, want 1", got)
	}
	if got := p.ProbOne(c, 1); math.Abs(got-1) > tol {
		t.Fatalf("entangled partner not collapsed: P(q1=1) = %v, want 1", got)
	}
	// Probability-zero outcome must error.
	basis := p.BasisState(0)
	if _, err := p.Collapse(basis, 0, 1); err == nil {
		t.Fatal("expected error collapsing |00> to q0=1")
	}
}

func TestMeasureDistribution(t *testing.T) {
	p := New(2)
	e := bellState(t, p)
	rng := rand.New(rand.NewSource(42))
	ones := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		outcome, collapsed, p0, p1, err := p.Measure(e, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p0-0.5) > tol || math.Abs(p1-0.5) > tol {
			t.Fatalf("reported probabilities %v/%v, want 0.5/0.5", p0, p1)
		}
		if outcome == 1 {
			ones++
			if got := Amplitude(collapsed, 3); !approx(got, 1) {
				t.Fatalf("collapse after outcome 1 wrong")
			}
		} else if got := Amplitude(collapsed, 0); !approx(got, 1) {
			t.Fatalf("collapse after outcome 0 wrong")
		}
	}
	if ones < trials/2-150 || ones > trials/2+150 {
		t.Fatalf("measurement bias: %d ones out of %d", ones, trials)
	}
}

func TestSampleNonDestructive(t *testing.T) {
	p := New(2)
	e := bellState(t, p)
	rng := rand.New(rand.NewSource(1))
	counts := SampleCounts(e, 4000, rng)
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("sampled impossible basis states: %v", counts)
	}
	if counts[0] < 1700 || counts[3] < 1700 {
		t.Fatalf("sampling far from 50/50: %v", counts)
	}
	// Non-destructive: the diagram is unchanged and resampling works.
	if got := SizeV(e); got != 3 {
		t.Fatalf("sampling mutated the diagram")
	}
}

func TestReset(t *testing.T) {
	p := New(2)
	e := bellState(t, p)
	res, err := p.ResetTo(e, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-reset value 1 selects the |11> branch; q0 then reinitializes
	// to |0>, leaving |10>.
	if got := Amplitude(res, 2); !approx(got, 1) {
		t.Fatalf("reset outcome: amplitude |10> = %v, want 1", got)
	}
	if err := p.CheckUnitVector(res); err != nil {
		t.Fatal(err)
	}
}

func TestInnerProductFidelity(t *testing.T) {
	p := New(2)
	bell := bellState(t, p)
	zero := p.ZeroState()
	ip := p.InnerProduct(zero, bell)
	if !approx(ip, complex(cnum.SqrtHalf, 0)) {
		t.Fatalf("<00|bell> = %v, want 1/sqrt2", ip)
	}
	if f := p.Fidelity(bell, bell); math.Abs(f-1) > tol {
		t.Fatalf("fidelity with itself = %v, want 1", f)
	}
	if f := p.Fidelity(zero, p.BasisState(3)); f > tol {
		t.Fatalf("fidelity of orthogonal states = %v, want 0", f)
	}
}

func TestGarbageCollection(t *testing.T) {
	p := New(4)
	keep := bellStateOn4(p)
	p.IncRefV(keep)
	// Create garbage.
	for i := 0; i < 50; i++ {
		h := p.MakeGateDD(gateH, i%4)
		_ = p.MultMV(h, p.ZeroState())
	}
	vBefore, _ := p.ActiveNodes()
	vFreed, _ := p.GarbageCollect()
	if vFreed == 0 {
		t.Fatalf("expected garbage to be collected (had %d live vector nodes)", vBefore)
	}
	// The kept diagram must still evaluate correctly.
	if got := Amplitude(keep, 0); !approx(got, complex(cnum.SqrtHalf, 0)) {
		t.Fatalf("kept diagram corrupted after GC: %v", got)
	}
	// And rebuilding it must reuse the protected nodes.
	again := bellStateOn4(p)
	if again != keep {
		t.Fatalf("rebuilding after GC lost canonicity")
	}
	p.DecRefV(keep)
}

func bellStateOn4(p *Pkg) VEdge {
	h := p.MakeGateDD(gateH, 1)
	cx := p.MakeGateDD(gateX, 0, Control{Qubit: 1})
	return p.MultMV(cx, p.MultMV(h, p.ZeroState()))
}

func TestMatrixEntryAgainstDense(t *testing.T) {
	p := New(3)
	u := p.MultMM(p.MakeGateDD(gateT, 2, Control{Qubit: 0}), p.MultMM(p.MakeGateDD(gateH, 1), p.MakeGateDD(gateS, 0)))
	dense := p.Matrix(u)
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			if got := MatrixEntry(u, i, j); !approx(got, dense[i][j]) {
				t.Fatalf("entry (%d,%d): %v vs %v", i, j, got, dense[i][j])
			}
		}
	}
}

func TestStatsAndCacheHits(t *testing.T) {
	p := New(2)
	h := p.MakeGateDD(gateH, 1)
	s := p.ZeroState()
	_ = p.MultMV(h, s)
	before := p.Stats()
	_ = p.MultMV(h, s) // identical operands: must hit the cache
	after := p.Stats()
	if after.CacheHits <= before.CacheHits {
		t.Fatalf("repeated multiplication did not hit the compute cache")
	}
}

func TestPkgValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero qubits", func() { New(0) })
	mustPanic("too many qubits", func() { New(63) })
	p := New(2)
	mustPanic("target range", func() { p.MakeGateDD(gateX, 5) })
	mustPanic("control=target", func() { p.MakeGateDD(gateX, 0, Control{Qubit: 0}) })
	mustPanic("duplicate control", func() { p.MakeGateDD(gateX, 0, Control{Qubit: 1}, Control{Qubit: 1}) })
	mustPanic("basis range", func() { p.BasisState(4) })
	mustPanic("swap same", func() { p.MakeSwapDD(1, 1) })
}

func TestGlobalPhaseCanonicalization(t *testing.T) {
	p := New(1)
	// Z|1> = -|1>: the phase must live in the root weight, the node
	// must be the |1> node itself.
	one := p.BasisState(1)
	z := p.MakeGateDD(gateZ, 0)
	out := p.MultMV(z, one)
	if out.N != one.N {
		t.Fatalf("Z|1> created a new node instead of reusing |1>")
	}
	if !approx(out.W, -1) {
		t.Fatalf("Z|1> weight = %v, want -1", out.W)
	}
}

func TestCollapseZeroVectorRejected(t *testing.T) {
	p := New(2)
	if _, err := p.Collapse(VZero(), 0, 0); err == nil {
		t.Fatal("collapsing the zero vector must error, not panic")
	}
}

func TestMaybeGC(t *testing.T) {
	p := New(3)
	keep := p.ZeroState()
	p.IncRefV(keep)
	for i := 0; i < 20; i++ {
		_ = p.MultMV(p.MakeGateDD(gateH, i%3), p.ZeroState())
	}
	if p.MaybeGC(1 << 30) {
		t.Fatal("GC ran below threshold")
	}
	if !p.MaybeGC(1) {
		t.Fatal("GC did not run above threshold")
	}
	if got := Amplitude(keep, 0); !approx(got, 1) {
		t.Fatal("referenced diagram lost in MaybeGC")
	}
	p.DecRefV(keep)
}
