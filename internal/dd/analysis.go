package dd

import (
	"fmt"
	"math/cmplx"
)

// Analysis helpers over diagrams: traces, overlaps, expectation
// values, structural statistics, and dense-matrix import. These back
// the verification extensions and the tool's statistics panel.

// Trace computes tr(m), the sum of the diagonal entries, by a single
// recursive pass over the diagonal quadrants.
func (p *Pkg) Trace(m MEdge) complex128 {
	memo := make(map[*MNode]complex128)
	return p.trace(m, memo)
}

func (p *Pkg) trace(m MEdge, memo map[*MNode]complex128) complex128 {
	if m.W == 0 {
		return 0
	}
	if m.N == mTerminal {
		return m.W
	}
	if t, ok := memo[m.N]; ok {
		return m.W * t
	}
	t := p.trace(MEdge{W: m.N.E[0].W, N: m.N.E[0].N}, memo) +
		p.trace(MEdge{W: m.N.E[3].W, N: m.N.E[3].N}, memo)
	memo[m.N] = t
	return m.W * t
}

// HSOverlap computes the normalized Hilbert-Schmidt overlap
// |tr(a†·b)| / 2^n ∈ [0,1]; it equals 1 exactly when a and b agree up
// to a global phase. Used as a numeric second opinion next to the
// canonical root comparison.
func (p *Pkg) HSOverlap(a, b MEdge) float64 {
	t := p.Trace(p.adjointProduct(a, b))
	return cmplx.Abs(t) / float64(int64(1)<<uint(p.nqubits))
}

// adjointProduct computes a†·b. When a is recognized as an interned
// gate's cached diagram (gateFromRoot), the product is served by the
// matrix kernel applying the inverted descriptor directly — no
// ConjTranspose diagram is ever materialized, and the gate cache is
// not re-populated (the adjoint descriptor links back to the
// original). Everything else falls back to the generic path.
func (p *Pkg) adjointProduct(a, b MEdge) MEdge {
	if g := p.gateFromRoot(a.N); g != nil && !a.IsZero() && !b.IsZero() &&
		b.N != mTerminal && b.N.V >= g.target {
		// a = (a.W/g.dd.W)·G, so a†·b = conj(a.W/g.dd.W)·(G†·b).
		prod := p.applyGateMLTraced(b, p.gateInverse(g))
		f := complex(real(a.W/g.dd.W), -imag(a.W/g.dd.W))
		return p.scaleM(prod, f)
	}
	return p.MultMM(p.ConjTranspose(a), b)
}

// ExpectationZ returns ⟨ϕ|Z_q|ϕ⟩ = P(q=0) − P(q=1) for the unit state
// ϕ — the Bloch-sphere z-coordinate of qubit q.
func (p *Pkg) ExpectationZ(e VEdge, q int) float64 {
	return 1 - 2*p.ProbOne(e, q)
}

// SizeByLevelV histograms the distinct nodes of a vector diagram per
// qubit level (index = level). Feeds the statistics view: wide levels
// are where entanglement concentrates.
func (p *Pkg) SizeByLevelV(e VEdge) []int {
	counts := make([]int, p.nqubits)
	visitV(e.N, func(n *VNode) { counts[n.V]++ })
	return counts
}

// SizeByLevelM histograms the distinct nodes of a matrix diagram per
// qubit level.
func (p *Pkg) SizeByLevelM(e MEdge) []int {
	counts := make([]int, p.nqubits)
	visitM(e.N, func(n *MNode) { counts[n.V]++ })
	return counts
}

// FromMatrix builds the diagram of an arbitrary 2^n×2^n matrix (given
// as row-major rows) by recursive quadrant decomposition — the matrix
// analogue of FromVector, used to import dense operators and in tests.
func (p *Pkg) FromMatrix(rows [][]complex128) (MEdge, error) {
	dim := 1 << uint(p.nqubits)
	if len(rows) != dim {
		return MZero(), fmt.Errorf("dd: matrix has %d rows, want %d", len(rows), dim)
	}
	for i, r := range rows {
		if len(r) != dim {
			return MZero(), fmt.Errorf("dd: row %d has %d entries, want %d", i, len(r), dim)
		}
	}
	return p.fromMatrix(rows, 0, 0, dim, p.nqubits-1), nil
}

func (p *Pkg) fromMatrix(rows [][]complex128, r0, c0, size int, v Var) MEdge {
	if size == 1 {
		return MEdge{W: p.cn.Lookup(rows[r0][c0]), N: mTerminal}
	}
	half := size / 2
	var e [4]MEdge
	e[0] = p.fromMatrix(rows, r0, c0, half, v-1)
	e[1] = p.fromMatrix(rows, r0, c0+half, half, v-1)
	e[2] = p.fromMatrix(rows, r0+half, c0, half, v-1)
	e[3] = p.fromMatrix(rows, r0+half, c0+half, half, v-1)
	return p.makeMNode(v, e)
}

// IsUnitaryDD checks tr(m†·m)/2^n ≈ 1 together with the Frobenius-norm
// invariance of a probe state — a cheap structural unitarity test that
// avoids densifying the operator.
func (p *Pkg) IsUnitaryDD(m MEdge) bool {
	return p.CheckIdentity(p.adjointProduct(m, m)) != NotIdentity
}

// PathCount returns the number of root-to-terminal paths with non-zero
// weight in a vector diagram — the number of basis states with
// (potentially) non-zero amplitude, computed without enumeration.
func PathCount(e VEdge) int64 {
	if e.IsZero() {
		return 0
	}
	memo := make(map[*VNode]int64)
	var walk func(n *VNode) int64
	walk = func(n *VNode) int64 {
		if n == vTerminal {
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		var c int64
		if n.E[0].W != 0 {
			c += walk(n.E[0].N)
		}
		if n.E[1].W != 0 {
			c += walk(n.E[1].N)
		}
		memo[n] = c
		return c
	}
	return walk(e.N)
}
