package dd

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randMatrixDD builds a random sparse operator diagram: roughly a
// third of the entries are hard zeros so the diagram carries zero
// stubs, like the vector-side randState.
func randMatrixDD(t *testing.T, p *Pkg, rng *rand.Rand, n int) MEdge {
	t.Helper()
	dim := 1 << uint(n)
	rows := make([][]complex128, dim)
	nonzero := false
	for i := range rows {
		rows[i] = make([]complex128, dim)
		for j := range rows[i] {
			if rng.Float64() < 0.35 {
				continue
			}
			rows[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
			nonzero = true
		}
	}
	if !nonzero {
		rows[0][0] = 1
	}
	e, err := p.FromMatrix(rows)
	if err != nil {
		t.Fatalf("FromMatrix: %v", err)
	}
	return e
}

// TestApplyGateMLMatchesGenericRandom is the core differential test of
// the left orientation: on evolving operands over 1–10 qubits (starting
// at the identity, like the alternating verify scheme), ApplyGateML
// must return exactly the canonical root edge the generic
// MakeGateDD+MultMM path builds — pointer-identical node, identical
// weight — including multi-controlled gates with controls below the
// target.
func TestApplyGateMLMatchesGenericRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for n := 1; n <= 10; n++ {
		p := New(n)
		m := p.Ident()
		steps := 12 + 2*n
		for s := 0; s < steps; s++ {
			u := randGateMatrix(rng)
			target := rng.Intn(n)
			ctl := randControls(rng, n, target)
			want := p.MultMM(p.MakeGateDD(u, target, ctl...), m)
			got := p.ApplyGateML(m, u, target, ctl...)
			if got != want {
				t.Fatalf("n=%d step=%d: ApplyGateML root (%v,%p) != generic (%v,%p)",
					n, s, got.W, got.N, want.W, want.N)
			}
			m = got
		}
	}
}

// TestApplyGateMRMatchesGenericRandom mirrors the differential test for
// the right orientation M·G, the side the alternating scheme feeds
// inverted gates into.
func TestApplyGateMRMatchesGenericRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for n := 1; n <= 10; n++ {
		p := New(n)
		m := p.Ident()
		steps := 12 + 2*n
		for s := 0; s < steps; s++ {
			u := randGateMatrix(rng)
			target := rng.Intn(n)
			ctl := randControls(rng, n, target)
			want := p.MultMM(m, p.MakeGateDD(u, target, ctl...))
			got := p.ApplyGateMR(m, u, target, ctl...)
			if got != want {
				t.Fatalf("n=%d step=%d: ApplyGateMR root (%v,%p) != generic (%v,%p)",
					n, s, got.W, got.N, want.W, want.N)
			}
			m = got
		}
	}
}

// TestApplyGateMSparseOperands drives both orientations over sparse
// random (non-unitary) operands, so zero quadrants and weight-factored
// edges are exercised, not just near-identity unitaries.
func TestApplyGateMSparseOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for n := 1; n <= 6; n++ {
		for trial := 0; trial < 6; trial++ {
			p := New(n)
			m := randMatrixDD(t, p, rng, n)
			u := randGateMatrix(rng)
			target := rng.Intn(n)
			ctl := randControls(rng, n, target)
			gdd := p.MakeGateDD(u, target, ctl...)
			if got, want := p.ApplyGateML(m, u, target, ctl...), p.MultMM(gdd, m); got != want {
				t.Fatalf("n=%d trial=%d: ML mismatch", n, trial)
			}
			if got, want := p.ApplyGateMR(m, u, target, ctl...), p.MultMM(m, gdd); got != want {
				t.Fatalf("n=%d trial=%d: MR mismatch", n, trial)
			}
		}
	}
}

// TestApplyGateMIdentityFastPath: applying a gate to the identity must
// short-circuit into the cached gate sub-diagram without descending —
// G·I = I·G = G — and the skip counter must record it.
func TestApplyGateMIdentityFastPath(t *testing.T) {
	p := New(8)
	x := p.Ident()
	want := p.MakeGateDD(gateH, 3, Control{Qubit: 6})
	before := p.Stats().ApplyMIdentitySkips
	got := p.ApplyGateML(x, gateH, 3, Control{Qubit: 6})
	if got != want {
		t.Fatalf("ApplyGateML(Ident) != MakeGateDD: (%v,%p) vs (%v,%p)", got.W, got.N, want.W, want.N)
	}
	if got := p.ApplyGateMR(x, gateH, 3, Control{Qubit: 6}); got != want {
		t.Fatalf("ApplyGateMR(Ident) != MakeGateDD")
	}
	if skips := p.Stats().ApplyMIdentitySkips; skips <= before {
		t.Fatalf("identity fast path not taken: skips %d -> %d", before, skips)
	}
	// The skip must also fire on identity SUB-blocks: a gate on a low
	// qubit leaves the upper levels walking identity chains.
	p2 := New(8)
	y := p2.ApplyGateML(p2.Ident(), gateH, 0)
	if p2.Stats().ApplyMIdentitySkips == 0 {
		t.Fatalf("no identity skip while descending to a bottom-level target")
	}
	if want := p2.MakeGateDD(gateH, 0); y != want {
		t.Fatalf("low-target apply mismatch")
	}
}

// TestApplyGateMCheckedBudget exercises the budget-exhaustion path:
// the checked variants must return ErrResourceExhausted, leave the
// ref-protected operand untouched, and keep the package usable for
// further (partial-progress) work afterwards.
func TestApplyGateMCheckedBudget(t *testing.T) {
	const n = 10
	p := New(n)
	rng := rand.New(rand.NewSource(46))
	// Drift away from the identity so the operand is non-trivial.
	x := p.Ident()
	for s := 0; s < 6; s++ {
		target := rng.Intn(n)
		x = p.ApplyGateML(x, randGateMatrix(rng), target, randControls(rng, n, target)...)
	}
	p.IncRefM(x)
	sizeBefore := SizeM(x)

	p.SetMaxNodes(p.LiveNodes() + 2)
	var failed bool
	for s := 0; s < 40 && !failed; s++ {
		target := rng.Intn(n)
		u := randGateMatrix(rng)
		ctl := randControls(rng, n, target)
		var err error
		var next MEdge
		if s%2 == 0 {
			next, err = p.ApplyGateMLChecked(x, u, target, ctl...)
		} else {
			next, err = p.ApplyGateMRChecked(x, u, target, ctl...)
		}
		if err != nil {
			if !errors.Is(err, ErrResourceExhausted) {
				t.Fatalf("want ErrResourceExhausted, got %v", err)
			}
			var re *ResourceError
			if !errors.As(err, &re) || re.Limit != p.MaxNodes() {
				t.Fatalf("malformed ResourceError: %v", err)
			}
			failed = true
			break
		}
		_ = next
	}
	if !failed {
		t.Fatalf("budget of %d nodes never exhausted", p.MaxNodes())
	}
	// The protected operand survived the abort byte for byte.
	if got := SizeM(x); got != sizeBefore {
		t.Fatalf("operand corrupted by aborted op: size %d -> %d", sizeBefore, got)
	}
	// Partial progress: lifting the budget, the same package finishes
	// the work and still agrees with the generic path.
	p.SetMaxNodes(0)
	u := randGateMatrix(rng)
	got, err := p.ApplyGateMLChecked(x, u, 2, Control{Qubit: 5})
	if err != nil {
		t.Fatalf("apply after lifting budget: %v", err)
	}
	if want := p.MultMM(p.MakeGateDD(u, 2, Control{Qubit: 5}), x); got != want {
		t.Fatalf("post-abort result diverges from generic path")
	}
	p.DecRefM(x)
}

// TestApplyGateMCheckedMatchesUnchecked: far from the budget, the
// checked variants must be bit-identical to the unchecked kernel.
func TestApplyGateMCheckedMatchesUnchecked(t *testing.T) {
	p := New(5)
	p.SetMaxNodes(1 << 20)
	x := p.Ident()
	got, err := p.ApplyGateMLChecked(x, gateH, 2, Control{Qubit: 4})
	if err != nil {
		t.Fatalf("checked: %v", err)
	}
	if want := p.ApplyGateML(x, gateH, 2, Control{Qubit: 4}); got != want {
		t.Fatalf("checked != unchecked")
	}
}

// TestApplyGateMStatsCounters: the kernel feeds its dedicated counter
// family — lookups, hits, and the kernel-vs-generic op split.
func TestApplyGateMStatsCounters(t *testing.T) {
	p := New(6)
	x := p.Ident()
	for i := 0; i < 4; i++ {
		x = p.ApplyGateML(x, gateH, 1, Control{Qubit: 3})
		x = p.ApplyGateMR(x, gateH, 1, Control{Qubit: 3})
	}
	st := p.Stats()
	if st.ApplyMOps != 8 {
		t.Fatalf("ApplyMOps = %d, want 8", st.ApplyMOps)
	}
	if st.ApplyMCTLookups == 0 {
		t.Fatalf("ApplyMCTLookups = 0 after kernel work")
	}
	if st.ApplyMCTHits == 0 {
		t.Fatalf("ApplyMCTHits = 0: repeated applications should hit the table")
	}
	if st.MultMMOps != 0 {
		t.Fatalf("MultMMOps = %d, want 0 (no generic multiply involved)", st.MultMMOps)
	}
	p.MultMM(x, x)
	if got := p.Stats().MultMMOps; got != 1 {
		t.Fatalf("MultMMOps = %d after one generic multiply, want 1", got)
	}
}

// TestApplyGateMValidation mirrors the vector kernel's operand checks.
func TestApplyGateMValidation(t *testing.T) {
	p := New(3)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for operand not spanning the target")
		}
	}()
	p.ApplyGateML(MOne(), gateH, 1)
}

// TestGateInverseNotDoublePopulated is the satellite-6 regression: the
// adjoint descriptor is interned exactly once, linked both ways, so
// repeated inversions (and analysis fast-path calls) never grow the
// gate intern map.
func TestGateInverseNotDoublePopulated(t *testing.T) {
	p := New(3)
	s := GateMatrix{1, 0, 0, complex(0, 1)} // S, not self-adjoint
	g := p.internGate(s, 0, []Control{{Qubit: 2}})
	if len(p.gateIntern) != 1 {
		t.Fatalf("intern map has %d entries, want 1", len(p.gateIntern))
	}
	inv := p.gateInverse(g)
	if inv == g {
		t.Fatalf("S† interned as S")
	}
	if len(p.gateIntern) != 2 {
		t.Fatalf("intern map has %d entries after inversion, want 2", len(p.gateIntern))
	}
	if p.gateInverse(g) != inv || p.gateInverse(inv) != g {
		t.Fatalf("inverse links not bidirectional")
	}
	// Interning S† through the public surface resolves to the same
	// descriptor instead of a duplicate.
	sdg := GateMatrix{1, 0, 0, complex(0, -1)}
	if p.internGate(sdg, 0, []Control{{Qubit: 2}}) != inv {
		t.Fatalf("explicit S† interned a duplicate descriptor")
	}
	if len(p.gateIntern) != 2 {
		t.Fatalf("intern map has %d entries, want 2", len(p.gateIntern))
	}
	// Self-adjoint gates link to themselves.
	h := p.internGate(gateH, 1, nil)
	if p.gateInverse(h) != h {
		t.Fatalf("H† should be H itself")
	}
}

// TestAdjointProductFastPath: IsUnitaryDD / HSOverlap on a cached gate
// diagram must run through the kernel (no generic MultMM, no eager
// ConjTranspose) and still agree numerically with the generic path.
func TestAdjointProductFastPath(t *testing.T) {
	p := New(5)
	tg := GateMatrix{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}
	a := p.MakeGateDD(tg, 2, Control{Qubit: 4}, Control{Qubit: 0, Neg: true})
	mmBefore := p.Stats().MultMMOps
	if !p.IsUnitaryDD(a) {
		t.Fatalf("controlled T not recognized as unitary")
	}
	st := p.Stats()
	if st.MultMMOps != mmBefore {
		t.Fatalf("IsUnitaryDD fell back to generic MultMM on a cached gate diagram")
	}
	if st.ApplyMOps == 0 {
		t.Fatalf("IsUnitaryDD did not use the matrix kernel")
	}
	if ov := p.HSOverlap(a, a); math.Abs(ov-1) > 1e-9 {
		t.Fatalf("HSOverlap(a,a) = %v, want 1", ov)
	}
	// Scaled edges to the same root still compute the right product.
	scaled := MEdge{W: a.W * complex(0, 1), N: a.N}
	if ov := p.HSOverlap(scaled, a); math.Abs(ov-1) > 1e-9 {
		t.Fatalf("HSOverlap(i·a, a) = %v, want 1 (phase-invariant)", ov)
	}
	// Non-gate operands fall back to the generic path and stay correct.
	b := p.MultMM(a, p.MakeGateDD(gateH, 1))
	if ov := p.HSOverlap(b, b); math.Abs(ov-1) > 1e-9 {
		t.Fatalf("HSOverlap(b,b) = %v, want 1", ov)
	}
}
