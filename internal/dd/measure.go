package dd

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// ProbOne returns the probability of measuring qubit q as |1⟩ in the
// state e. Thanks to the 2-norm normalization the squared edge-weight
// magnitudes at each node are the branch probabilities (Sec. III-B),
// so a memoized downward pass suffices.
func (p *Pkg) ProbOne(e VEdge, q int) float64 {
	if q < 0 || q >= p.nqubits {
		panic(fmt.Sprintf("dd: qubit %d out of range [0,%d)", q, p.nqubits))
	}
	if p.vnorm != NormL2 {
		panic("dd: ProbOne requires 2-norm vector normalization (see NormScheme)")
	}
	if Norm(e) == 0 {
		panic("dd: cannot measure the zero vector")
	}
	// The root weight cancels out of the conditional probabilities, and
	// every node's sub-vector has unit norm, so the downward pass over
	// squared branch weights yields the probability directly. The memo
	// map is pooled: Probabilities calls this once per qubit on every
	// web frame render.
	memo := probMemoPool.Get().(map[*VNode]float64)
	r := probOne(e.N, q, memo)
	clear(memo)
	probMemoPool.Put(memo)
	return r
}

var probMemoPool = sync.Pool{New: func() any { return make(map[*VNode]float64, 64) }}

func probOne(n *VNode, q int, memo map[*VNode]float64) float64 {
	if n == vTerminal {
		return 0
	}
	if n.V == q {
		w := n.E[1].W
		return real(w)*real(w) + imag(w)*imag(w)
	}
	if r, ok := memo[n]; ok {
		return r
	}
	var sum float64
	for i := 0; i < 2; i++ {
		w := n.E[i].W
		m := real(w)*real(w) + imag(w)*imag(w)
		if m == 0 {
			continue
		}
		sum += m * probOne(n.E[i].N, q, memo)
	}
	memo[n] = sum
	return sum
}

// Probabilities returns the per-qubit probability of measuring |1⟩
// for every qubit, as shown in the tool's measurement dialogs.
func (p *Pkg) Probabilities(e VEdge) []float64 {
	out := make([]float64, p.nqubits)
	for q := range out {
		out[q] = p.ProbOne(e, q)
	}
	return out
}

// Collapse projects the state onto the subspace where qubit q has the
// given outcome and renormalizes, implementing the irreversible state
// collapse of the tool's measurement dialog (Fig. 8(c)→(d)).
func (p *Pkg) Collapse(e VEdge, q int, outcome int) (VEdge, error) {
	if outcome != 0 && outcome != 1 {
		return VZero(), fmt.Errorf("dd: measurement outcome must be 0 or 1, got %d", outcome)
	}
	if e.IsZero() {
		return VZero(), fmt.Errorf("dd: cannot collapse the zero vector")
	}
	memo := make(map[*VNode]VEdge)
	collapsed := p.collapse(VEdge{W: 1, N: e.N}, q, outcome, memo)
	if collapsed.IsZero() {
		return VZero(), fmt.Errorf("dd: outcome %d for qubit %d has probability zero", outcome, q)
	}
	// Collapsing shrank the norm by sqrt(prob); rescale so the result
	// keeps the original norm, and carry over the original root phase.
	scale := Norm(e) / Norm(collapsed)
	phase := e.W / complex(Norm(e), 0)
	return VEdge{W: p.cn.Lookup(collapsed.W * complex(scale, 0) * phase), N: collapsed.N}, nil
}

func (p *Pkg) collapse(e VEdge, q, outcome int, memo map[*VNode]VEdge) VEdge {
	if e.IsZero() || e.N == vTerminal {
		return e
	}
	if res, ok := memo[e.N]; ok {
		return VEdge{W: p.cn.Lookup(res.W * e.W), N: res.N}
	}
	var res VEdge
	if e.N.V == q {
		var kids [2]VEdge
		kids[outcome] = e.N.E[outcome]
		kids[1-outcome] = VZero()
		res = p.makeVNode(e.N.V, kids)
	} else {
		var kids [2]VEdge
		for i := 0; i < 2; i++ {
			kids[i] = p.collapse(e.N.E[i], q, outcome, memo)
		}
		res = p.makeVNode(e.N.V, kids)
	}
	memo[e.N] = res
	return VEdge{W: p.cn.Lookup(res.W * e.W), N: res.N}
}

// Measure samples an outcome for qubit q using rng, collapses the
// state accordingly, and returns the outcome together with the branch
// probabilities that the tool would show in its dialog.
func (p *Pkg) Measure(e VEdge, q int, rng *rand.Rand) (outcome int, collapsed VEdge, p0, p1 float64, err error) {
	p1 = p.ProbOne(e, q)
	p0 = 1 - p1
	outcome = 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	collapsed, err = p.Collapse(e, q, outcome)
	return outcome, collapsed, p0, p1, err
}

// ApplyX flips qubit q by swapping the two branches at its level —
// the local gate application used by Reset (cheaper than a full
// matrix-vector multiplication).
func (p *Pkg) ApplyX(e VEdge, q int) VEdge {
	memo := make(map[*VNode]VEdge)
	res := p.applyX(VEdge{W: 1, N: e.N}, q, memo)
	return VEdge{W: p.cn.Lookup(res.W * e.W), N: res.N}
}

func (p *Pkg) applyX(e VEdge, q int, memo map[*VNode]VEdge) VEdge {
	if e.IsZero() || e.N == vTerminal {
		return e
	}
	if res, ok := memo[e.N]; ok {
		return VEdge{W: p.cn.Lookup(res.W * e.W), N: res.N}
	}
	var res VEdge
	if e.N.V == q {
		res = p.makeVNode(e.N.V, [2]VEdge{e.N.E[1], e.N.E[0]})
	} else {
		var kids [2]VEdge
		for i := 0; i < 2; i++ {
			kids[i] = p.applyX(e.N.E[i], q, memo)
		}
		res = p.makeVNode(e.N.V, kids)
	}
	memo[e.N] = res
	return VEdge{W: p.cn.Lookup(res.W * e.W), N: res.N}
}

// Reset collapses qubit q to the sampled outcome and re-initializes it
// to |0⟩ (Sec. IV-B: the surviving branch becomes the |0⟩ branch).
// The sampled pre-reset value and the branch probabilities are
// returned for the tool's dialog.
func (p *Pkg) Reset(e VEdge, q int, rng *rand.Rand) (pre int, res VEdge, p0, p1 float64, err error) {
	pre, res, p0, p1, err = p.Measure(e, q, rng)
	if err != nil {
		return pre, res, p0, p1, err
	}
	if pre == 1 {
		res = p.ApplyX(res, q)
	}
	return pre, res, p0, p1, nil
}

// ResetTo deterministically collapses qubit q to the given pre-reset
// outcome and re-initializes it to |0⟩ (the forced-choice path of the
// tool's reset dialog).
func (p *Pkg) ResetTo(e VEdge, q, outcome int) (VEdge, error) {
	res, err := p.Collapse(e, q, outcome)
	if err != nil {
		return VZero(), err
	}
	if outcome == 1 {
		res = p.ApplyX(res, q)
	}
	return res, nil
}

// Sample draws a basis state from the Born distribution of e by a
// single randomized root-to-terminal traversal (Hillmich et al.,
// DAC 2020). Sampling is non-destructive: the diagram is unchanged
// and repeated calls resample the same state (Sec. III-B).
func Sample(e VEdge, rng *rand.Rand) int64 {
	var idx int64
	n := e.N
	for n != vTerminal {
		w := n.E[1].W
		p1 := real(w)*real(w) + imag(w)*imag(w)
		if rng.Float64() < p1 {
			idx |= 1 << uint(n.V)
			n = n.E[1].N
		} else {
			n = n.E[0].N
		}
	}
	return idx
}

// SampleCounts draws shots samples and tallies them per basis state —
// the weak-simulation read-out.
func SampleCounts(e VEdge, shots int, rng *rand.Rand) map[int64]int {
	counts := make(map[int64]int)
	for i := 0; i < shots; i++ {
		counts[Sample(e, rng)]++
	}
	return counts
}

// nearlyOne reports |x-1| <= tol; helper for validity checks.
func nearlyOne(x, tol float64) bool { return math.Abs(x-1) <= tol }

// CheckUnitVector verifies that e represents a normalized state, i.e.
// its 2-norm is 1 within a loose tolerance. Useful as a test invariant.
func (p *Pkg) CheckUnitVector(e VEdge) error {
	if !nearlyOne(Norm(e), 1e-6) {
		return fmt.Errorf("dd: state norm %g deviates from 1", Norm(e))
	}
	return nil
}
