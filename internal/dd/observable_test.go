package dd

import (
	"math"
	"testing"
)

func TestExpectationPauliBellCorrelations(t *testing.T) {
	p := New(2)
	bell := bellState(t, p)
	// The Bell state 1/√2(|00⟩+|11⟩) has the famous correlations:
	// ⟨ZZ⟩ = ⟨XX⟩ = +1, ⟨YY⟩ = −1, single-qubit ⟨Z⟩ = ⟨X⟩ = 0.
	cases := map[string]float64{
		"ZZ": 1, "XX": 1, "YY": -1,
		"ZI": 0, "IZ": 0, "XI": 0, "IX": 0,
		"II": 1,
	}
	for pauli, want := range cases {
		got, err := p.ExpectationPauli(bell, pauli)
		if err != nil {
			t.Fatalf("%s: %v", pauli, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("<%s> = %v, want %v", pauli, got, want)
		}
	}
}

func TestExpectationPauliBasisStates(t *testing.T) {
	p := New(3)
	// |q2 q1 q0⟩ = |101⟩: Z eigenvalues (-1, +1, -1); string "ZII" acts
	// on q2.
	e := p.BasisState(0b101)
	for pauli, want := range map[string]float64{
		"ZII": -1, "IZI": 1, "IIZ": -1, "ZIZ": 1, "ZZZ": 1,
	} {
		got, err := p.ExpectationPauli(e, pauli)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("<%s> on |101> = %v, want %v", pauli, got, want)
		}
	}
}

func TestExpectationPauliPlusState(t *testing.T) {
	p := New(1)
	plus := p.MultMV(p.MakeGateDD(gateH, 0), p.ZeroState())
	x, err := p.ExpectationPauli(plus, "X")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-1) > 1e-9 {
		t.Fatalf("<X> on |+> = %v, want 1", x)
	}
	y, err := p.ExpectationPauli(plus, "Y")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y) > 1e-9 {
		t.Fatalf("<Y> on |+> = %v, want 0", y)
	}
}

func TestExpectationPauliErrors(t *testing.T) {
	p := New(2)
	e := p.ZeroState()
	if _, err := p.ExpectationPauli(e, "Z"); err == nil {
		t.Fatal("short string accepted")
	}
	if _, err := p.ExpectationPauli(e, "QZ"); err == nil {
		t.Fatal("invalid letter accepted")
	}
}

func TestExpectationZAllAndPurity(t *testing.T) {
	p := New(2)
	bell := bellState(t, p)
	zs := p.ExpectationZAll(bell)
	if math.Abs(zs[0]) > 1e-9 || math.Abs(zs[1]) > 1e-9 {
		t.Fatalf("Bell <Z> profile = %v, want zeros", zs)
	}
	if pur := p.Purity(bell); math.Abs(pur-1) > 1e-9 {
		t.Fatalf("purity = %v", pur)
	}
}
