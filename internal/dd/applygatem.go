package dd

// Direct gate application on matrix diagrams: the verify hot path
// multiplies a 2×2 gate (with optional positive/negative controls)
// into a matrix DD from the left (G·M) or the right (M·G) by recursive
// descent, without ever materializing the gate as a matrix diagram —
// the matrix-side sibling of the vector kernel in applygate.go.
//
// The alternating equivalence-checking scheme (Burgholzer & Wille,
// TCAD 2021) lives on exactly these two products: gates of G enter
// X ← U·X from the left, inverted gates of G′ enter X ← X·U′† from the
// right, and X stays in the vicinity of the identity throughout. A
// full-register gate matrix is ~99% identity structure ("Stripping
// Quantum Decision Diagrams of their Identity", Sander et al., 2024),
// and near the fixed point the operand X is mostly identity too — the
// generic MultMM recursion walks all of it, while the descent below
// touches only what the gate changes:
//
//   - Levels above every involved qubit recurse all four quadrants
//     (shared subdiagrams collapse into apply-cache hits).
//   - A control level above the target splits once: for a left apply
//     the inactive ROW quadrants pass through untouched, for a right
//     apply the inactive COLUMN quadrants do — only the active pair
//     recurses.
//   - At the target level the quadrants are combined with the four
//     gate entries: left combines rows ((G·M)ᵢⱼ = Σₖ uᵢₖ·Mₖⱼ), right
//     combines columns ((M·G)ᵢⱼ = Σₖ Mᵢₖ·uₖⱼ).
//   - Controls below the target are resolved by a projector merge:
//     the gated combination y is computed as if the controls were
//     satisfied everywhere, then one pairwise descent per quadrant
//     forms P_inact·x + P_act·y — the original quadrant x where a
//     remaining control fails, the gated y where they all hold (rows
//     on the left, columns on the right). The zero-operand corners
//     fall back to memoized single-sided projections.
//
// Identity sub-blocks are additionally skipped wholesale: the package
// caches the canonical per-level identity node chain (the same nodes
// CheckIdentity compares against), and when the descent reaches one,
// G·I = I·G = G — the result is the gate lowered over the remaining
// levels, served from a per-descriptor cache. Structural sharing makes
// the detection a pointer comparison; no per-node flag is needed.

import (
	"fmt"
	"time"

	"quantumdd/internal/cnum"
)

// applyMKey keys the matrix-apply compute tables: the matrix node plus
// the interned gate pointer. The left/right orientations and the
// row/column split decompositions use separate tables, so one key
// shape serves all four.
type (
	applyMKey struct {
		m *MNode
		g *appliedGate
	}
	mPair struct {
		act, inact MEdge
	}
	// mergeMKey keys the projector-merge recursion P_inact·x + P_act·y
	// (mergeRowsML/mergeColsMR): both nodes, the gate, and the residual
	// weight ratio y.W/x.W after factoring x's weight out.
	mergeMKey struct {
		x, y *MNode
		g    *appliedGate
		r    complex128
	}
)

func hashApplyM(k applyMKey) uint64 { return hashMix(k.m.hash, k.g.hash) }

func hashMergeM(k mergeMKey) uint64 {
	return hashMix(hashMix(k.x.hash, k.y.hash), hashMix(k.g.hash, cnum.HashComplex(k.r)))
}

// identNode returns the canonical node of the identity over levels
// 0..v. The chain is rebuilt at most once per package generation (a
// garbage collection may sweep and recycle the nodes); after that the
// identity check in the descent is a single pointer comparison.
func (p *Pkg) identNode(v Var) *MNode {
	if p.identGen != p.gen || p.identNodes == nil {
		if p.identNodes == nil {
			p.identNodes = make([]*MNode, p.nqubits)
		}
		e := MOne()
		for z := 0; z < p.nqubits; z++ {
			e = p.makeMNode(z, [4]MEdge{e, MZero(), MZero(), e})
			p.identNodes[z] = e.N
		}
		p.identGen = p.gen
	}
	return p.identNodes[v]
}

// gateSubDD returns the gate lowered as a matrix DD over levels 0..v
// only — including exactly the controls at or below v, because the
// descent that short-circuits into this diagram has already consumed
// the controls above. Cached per descriptor and level until the next
// generation bump.
func (p *Pkg) gateSubDD(g *appliedGate, v Var) MEdge {
	if g.subGen != p.gen || g.sub == nil {
		g.sub = make([]MEdge, p.nqubits)
		g.subGen = p.gen
	}
	if g.sub[v].N != nil {
		return g.sub[v]
	}
	e := p.buildGateDDUpTo(g, v)
	g.sub[v] = e
	return e
}

// ApplyGateML computes the left product G·M of the (multi-)controlled
// single-qubit gate u and the matrix diagram m by direct recursive
// descent — the specialized fast path equivalent to
// MultMM(MakeGateDD(u, target, controls...), m), without building the
// gate diagram.
func (p *Pkg) ApplyGateML(m MEdge, u GateMatrix, target int, controls ...Control) MEdge {
	return p.applyGateMLTraced(m, p.internGate(u, target, controls))
}

// ApplyGateMR computes the right product M·G, the orientation the
// alternating verify scheme uses to consume inverted gates of the
// second circuit.
func (p *Pkg) ApplyGateMR(m MEdge, u GateMatrix, target int, controls ...Control) MEdge {
	return p.applyGateMRTraced(m, p.internGate(u, target, controls))
}

// ApplyGateMLChecked is ApplyGateML under the node budget (see
// budget.go): it returns a *ResourceError instead of growing the
// unique tables past MaxNodes, leaving the operand diagram intact.
func (p *Pkg) ApplyGateMLChecked(m MEdge, u GateMatrix, target int, controls ...Control) (MEdge, error) {
	g := p.internGate(u, target, controls)
	p.IncRefM(m)
	defer p.DecRefM(m)
	var res MEdge
	if err := p.checked(func() { res = p.applyGateMLTraced(m, g) }); err != nil {
		return MZero(), err
	}
	return res, nil
}

// ApplyGateMRChecked is ApplyGateMR under the node budget.
func (p *Pkg) ApplyGateMRChecked(m MEdge, u GateMatrix, target int, controls ...Control) (MEdge, error) {
	g := p.internGate(u, target, controls)
	p.IncRefM(m)
	defer p.DecRefM(m)
	var res MEdge
	if err := p.checked(func() { res = p.applyGateMRTraced(m, g) }); err != nil {
		return MZero(), err
	}
	return res, nil
}

func (p *Pkg) applyGateMLTraced(m MEdge, g *appliedGate) MEdge {
	p.stats.ApplyMOps++
	if p.tracer == nil {
		return p.applyGateML(m, g)
	}
	start := time.Now()
	res := p.applyGateML(m, g)
	p.traced(OpApplyGateM, start)
	return res
}

func (p *Pkg) applyGateMRTraced(m MEdge, g *appliedGate) MEdge {
	p.stats.ApplyMOps++
	if p.tracer == nil {
		return p.applyGateMR(m, g)
	}
	start := time.Now()
	res := p.applyGateMR(m, g)
	p.traced(OpApplyGateM, start)
	return res
}

// applyGateML is the weight-factored entry: the product is bilinear,
// so the root weight passes through and the recursion works on node
// pointers only, keeping the cache keys structural.
func (p *Pkg) applyGateML(m MEdge, g *appliedGate) MEdge {
	if m.IsZero() {
		return MZero()
	}
	if m.N == mTerminal || m.N.V < g.target {
		panic(fmt.Sprintf("dd: ApplyGateML operand does not span target level %d", g.target))
	}
	res := p.applyMLRec(m.N, g)
	return MEdge{W: p.cn.Lookup(res.W * m.W), N: res.N}
}

func (p *Pkg) applyGateMR(m MEdge, g *appliedGate) MEdge {
	if m.IsZero() {
		return MZero()
	}
	if m.N == mTerminal || m.N.V < g.target {
		panic(fmt.Sprintf("dd: ApplyGateMR operand does not span target level %d", g.target))
	}
	res := p.applyMRRec(m.N, g)
	return MEdge{W: p.cn.Lookup(res.W * m.W), N: res.N}
}

// applyMLRec rebuilds the diagram under n with the gate multiplied in
// from the left. n is at or above the target level; zero stubs never
// reach here (G·0 = 0 is handled at the edges).
func (p *Pkg) applyMLRec(n *MNode, g *appliedGate) MEdge {
	v := n.V
	if n == p.identNode(v) {
		// G·I = G over the remaining levels; nothing below is walked.
		p.stats.ApplyMIdentitySkips++
		return p.gateSubDD(g, v)
	}
	p.stats.CacheLookups++
	p.stats.ApplyMCTLookups++
	key := applyMKey{m: n, g: g}
	h := hashApplyM(key)
	if res, ok := p.applyMLCache.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		p.stats.ApplyMCTHits++
		return res
	}
	var res MEdge
	switch {
	case v == g.target:
		res = p.applyMLAtTarget(n, g)
	case (g.pos|g.neg)>>uint(v)&1 == 1:
		// Control level above the target: the gate is diagonal here, so
		// only the active row recurses — the inactive row quadrants are
		// the identity block the generic multiply would have walked.
		active := 1
		if g.neg>>uint(v)&1 == 1 {
			active = 0
		}
		var e [4]MEdge
		for j := 0; j < 2; j++ {
			e[2*(1-active)+j] = n.E[2*(1-active)+j]
			e[2*active+j] = p.applyMLEdge(n.E[2*active+j], g)
		}
		res = p.makeMNode(v, e)
	default:
		// Free level above the target: descend all four quadrants.
		var e [4]MEdge
		for i := range e {
			e[i] = p.applyMLEdge(n.E[i], g)
		}
		res = p.makeMNode(v, e)
	}
	if p.applyMLCache.store(h, key, res, p.gen, &p.stats) {
		p.stats.ApplyMCTEvictions++
	}
	return res
}

// applyMRRec is the right-product mirror of applyMLRec: the gate acts
// on the column index, so control levels pass the inactive COLUMN
// through and the target combines quadrants along columns.
func (p *Pkg) applyMRRec(n *MNode, g *appliedGate) MEdge {
	v := n.V
	if n == p.identNode(v) {
		// I·G = G over the remaining levels.
		p.stats.ApplyMIdentitySkips++
		return p.gateSubDD(g, v)
	}
	p.stats.CacheLookups++
	p.stats.ApplyMCTLookups++
	key := applyMKey{m: n, g: g}
	h := hashApplyM(key)
	if res, ok := p.applyMRCache.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		p.stats.ApplyMCTHits++
		return res
	}
	var res MEdge
	switch {
	case v == g.target:
		res = p.applyMRAtTarget(n, g)
	case (g.pos|g.neg)>>uint(v)&1 == 1:
		active := 1
		if g.neg>>uint(v)&1 == 1 {
			active = 0
		}
		var e [4]MEdge
		for i := 0; i < 2; i++ {
			e[2*i+1-active] = n.E[2*i+1-active]
			e[2*i+active] = p.applyMREdge(n.E[2*i+active], g)
		}
		res = p.makeMNode(v, e)
	default:
		var e [4]MEdge
		for i := range e {
			e[i] = p.applyMREdge(n.E[i], g)
		}
		res = p.makeMNode(v, e)
	}
	if p.applyMRCache.store(h, key, res, p.gen, &p.stats) {
		p.stats.ApplyMCTEvictions++
	}
	return res
}

// applyMLEdge / applyMREdge recurse through an edge, shortcutting zero
// stubs.
func (p *Pkg) applyMLEdge(e MEdge, g *appliedGate) MEdge {
	if e.IsZero() {
		return MZero()
	}
	r := p.applyMLRec(e.N, g)
	return MEdge{W: r.W * e.W, N: r.N}
}

func (p *Pkg) applyMREdge(e MEdge, g *appliedGate) MEdge {
	if e.IsZero() {
		return MZero()
	}
	r := p.applyMRRec(e.N, g)
	return MEdge{W: r.W * e.W, N: r.N}
}

// applyMLAtTarget combines the target node's quadrants with the four
// gate entries along rows: (G·M)ᵢⱼ = Σₖ uᵢₖ·Mₖⱼ. With controls below
// the target, each quadrant is first row-split into the component
// where all remaining controls are satisfied (which receives the gate)
// and the untouched remainder.
func (p *Pkg) applyMLAtTarget(n *MNode, g *appliedGate) MEdge {
	var out [4]MEdge
	if g.belowMask == 0 {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				out[2*i+j] = p.addM(scaleMRaw(g.u[2*i], n.E[j]), scaleMRaw(g.u[2*i+1], n.E[2+j]))
			}
		}
		return p.makeMNode(n.V, out)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			y := p.addM(scaleMRaw(g.u[2*i], n.E[j]), scaleMRaw(g.u[2*i+1], n.E[2+j]))
			out[2*i+j] = p.mergeRowsML(n.E[2*i+j], y, g)
		}
	}
	return p.makeMNode(n.V, out)
}

// applyMRAtTarget combines quadrants along columns:
// (M·G)ᵢⱼ = Σₖ Mᵢₖ·uₖⱼ; below-target controls column-split.
func (p *Pkg) applyMRAtTarget(n *MNode, g *appliedGate) MEdge {
	var out [4]MEdge
	if g.belowMask == 0 {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				out[2*i+j] = p.addM(scaleMRaw(g.u[j], n.E[2*i]), scaleMRaw(g.u[2+j], n.E[2*i+1]))
			}
		}
		return p.makeMNode(n.V, out)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			y := p.addM(scaleMRaw(g.u[j], n.E[2*i]), scaleMRaw(g.u[2+j], n.E[2*i+1]))
			out[2*i+j] = p.mergeColsMR(n.E[2*i+j], y, g)
		}
	}
	return p.makeMNode(n.V, out)
}

// mergeRowsML computes P_inact·x + P_act·y in one pairwise descent,
// where P_act projects onto the row subspace in which every control of
// g at or below the operands' level is satisfied and P_inact is its
// complement. The at-target combination passes x = the original
// quadrant and y = the plain gated combination, so the single descent
// replaces materializing both split components of all four quadrants
// plus the recombining additions. If one operand is zero the result is
// a pure projection, served by the split cache.
func (p *Pkg) mergeRowsML(x, y MEdge, g *appliedGate) MEdge {
	if x.IsZero() {
		act, _ := p.splitRowsML(y, g)
		return act
	}
	if y.IsZero() {
		_, inact := p.splitRowsML(x, g)
		return inact
	}
	n := x.N
	if n == mTerminal || g.belowMask&(1<<uint(n.V+1)-1) == 0 {
		// No controls remain at or below this level: fully active.
		return y
	}
	r := p.cn.Lookup(y.W / x.W)
	p.stats.CacheLookups++
	p.stats.ApplyMCTLookups++
	key := mergeMKey{x: n, y: y.N, g: g, r: r}
	h := hashMergeM(key)
	if res, ok := p.applyMLMerge.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		p.stats.ApplyMCTHits++
		return scaleMRaw(x.W, res)
	}
	v := n.V
	yn := MEdge{W: r, N: y.N}
	var out [4]MEdge
	if g.belowMask>>uint(v)&1 == 1 {
		active := 1
		if g.neg>>uint(v)&1 == 1 {
			active = 0
		}
		for j := 0; j < 2; j++ {
			out[2*active+j] = p.mergeRowsML(n.E[2*active+j], mEdgeAt(yn, 2*active+j), g)
			out[2*(1-active)+j] = n.E[2*(1-active)+j]
		}
	} else {
		for i := range out {
			out[i] = p.mergeRowsML(n.E[i], mEdgeAt(yn, i), g)
		}
	}
	res := p.makeMNode(v, out)
	if p.applyMLMerge.store(h, key, res, p.gen, &p.stats) {
		p.stats.ApplyMCTEvictions++
	}
	return scaleMRaw(x.W, res)
}

// mergeColsMR is the column mirror: x·P_inact + y·P_act, the control
// projector restricting columns.
func (p *Pkg) mergeColsMR(x, y MEdge, g *appliedGate) MEdge {
	if x.IsZero() {
		act, _ := p.splitColsMR(y, g)
		return act
	}
	if y.IsZero() {
		_, inact := p.splitColsMR(x, g)
		return inact
	}
	n := x.N
	if n == mTerminal || g.belowMask&(1<<uint(n.V+1)-1) == 0 {
		return y
	}
	r := p.cn.Lookup(y.W / x.W)
	p.stats.CacheLookups++
	p.stats.ApplyMCTLookups++
	key := mergeMKey{x: n, y: y.N, g: g, r: r}
	h := hashMergeM(key)
	if res, ok := p.applyMRMerge.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		p.stats.ApplyMCTHits++
		return scaleMRaw(x.W, res)
	}
	v := n.V
	yn := MEdge{W: r, N: y.N}
	var out [4]MEdge
	if g.belowMask>>uint(v)&1 == 1 {
		active := 1
		if g.neg>>uint(v)&1 == 1 {
			active = 0
		}
		for i := 0; i < 2; i++ {
			out[2*i+active] = p.mergeColsMR(n.E[2*i+active], mEdgeAt(yn, 2*i+active), g)
			out[2*i+1-active] = n.E[2*i+1-active]
		}
	} else {
		for i := range out {
			out[i] = p.mergeColsMR(n.E[i], mEdgeAt(yn, i), g)
		}
	}
	res := p.makeMNode(v, out)
	if p.applyMRMerge.store(h, key, res, p.gen, &p.stats) {
		p.stats.ApplyMCTEvictions++
	}
	return scaleMRaw(x.W, res)
}

// mEdgeAt returns child i of the (weighted) edge e, folding e's weight
// in; e is never terminal here (the caller checked the level).
func mEdgeAt(e MEdge, i int) MEdge {
	c := e.N.E[i]
	if c.IsZero() {
		return MZero()
	}
	return MEdge{W: e.W * c.W, N: c.N}
}

// splitRowsML decomposes e = act + inact, where act is P·e for the
// projector P onto the row subspace in which every control of g below
// the target is satisfied — left-multiplying by a diagonal projector
// restricts rows. Both components are built directly (no subtraction),
// memoized per (node, gate).
func (p *Pkg) splitRowsML(e MEdge, g *appliedGate) (act, inact MEdge) {
	if e.IsZero() {
		return MZero(), MZero()
	}
	n := e.N
	if n == mTerminal || g.belowMask&(1<<uint(n.V+1)-1) == 0 {
		// No controls remain at or below this level: fully active.
		return e, MZero()
	}
	p.stats.CacheLookups++
	p.stats.ApplyMCTLookups++
	key := applyMKey{m: n, g: g}
	h := hashApplyM(key)
	if pr, ok := p.applyMLSplit.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		p.stats.ApplyMCTHits++
		return scaleMRaw(e.W, pr.act), scaleMRaw(e.W, pr.inact)
	}
	v := n.V
	var pr mPair
	if g.belowMask>>uint(v)&1 == 1 {
		active := 1
		if g.neg>>uint(v)&1 == 1 {
			active = 0
		}
		var actKids, inactKids [4]MEdge
		for j := 0; j < 2; j++ {
			cAct, cInact := p.splitRowsML(n.E[2*active+j], g)
			actKids[2*active+j] = cAct
			actKids[2*(1-active)+j] = MZero()
			inactKids[2*active+j] = cInact
			inactKids[2*(1-active)+j] = n.E[2*(1-active)+j]
		}
		pr.act = p.makeMNode(v, actKids)
		pr.inact = p.makeMNode(v, inactKids)
	} else {
		var actKids, inactKids [4]MEdge
		for i := range actKids {
			actKids[i], inactKids[i] = p.splitRowsML(n.E[i], g)
		}
		pr.act = p.makeMNode(v, actKids)
		pr.inact = p.makeMNode(v, inactKids)
	}
	if p.applyMLSplit.store(h, key, pr, p.gen, &p.stats) {
		p.stats.ApplyMCTEvictions++
	}
	return scaleMRaw(e.W, pr.act), scaleMRaw(e.W, pr.inact)
}

// splitColsMR is the column mirror: act is e·P, right-multiplying by
// the control projector restricts columns.
func (p *Pkg) splitColsMR(e MEdge, g *appliedGate) (act, inact MEdge) {
	if e.IsZero() {
		return MZero(), MZero()
	}
	n := e.N
	if n == mTerminal || g.belowMask&(1<<uint(n.V+1)-1) == 0 {
		return e, MZero()
	}
	p.stats.CacheLookups++
	p.stats.ApplyMCTLookups++
	key := applyMKey{m: n, g: g}
	h := hashApplyM(key)
	if pr, ok := p.applyMRSplit.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		p.stats.ApplyMCTHits++
		return scaleMRaw(e.W, pr.act), scaleMRaw(e.W, pr.inact)
	}
	v := n.V
	var pr mPair
	if g.belowMask>>uint(v)&1 == 1 {
		active := 1
		if g.neg>>uint(v)&1 == 1 {
			active = 0
		}
		var actKids, inactKids [4]MEdge
		for i := 0; i < 2; i++ {
			cAct, cInact := p.splitColsMR(n.E[2*i+active], g)
			actKids[2*i+active] = cAct
			actKids[2*i+1-active] = MZero()
			inactKids[2*i+active] = cInact
			inactKids[2*i+1-active] = n.E[2*i+1-active]
		}
		pr.act = p.makeMNode(v, actKids)
		pr.inact = p.makeMNode(v, inactKids)
	} else {
		var actKids, inactKids [4]MEdge
		for i := range actKids {
			actKids[i], inactKids[i] = p.splitColsMR(n.E[i], g)
		}
		pr.act = p.makeMNode(v, actKids)
		pr.inact = p.makeMNode(v, inactKids)
	}
	if p.applyMRSplit.store(h, key, pr, p.gen, &p.stats) {
		p.stats.ApplyMCTEvictions++
	}
	return scaleMRaw(e.W, pr.act), scaleMRaw(e.W, pr.inact)
}

// scaleMRaw multiplies an edge weight without canonicalizing: the
// result always flows into addM/makeMNode, which canonicalize
// downstream.
func scaleMRaw(w complex128, e MEdge) MEdge {
	if w == 0 || e.IsZero() {
		return MZero()
	}
	return MEdge{W: w * e.W, N: e.N}
}

// gateInverse returns the interned descriptor of the adjoint gate:
// same controls (control projectors are self-adjoint), conjugate-
// transposed 2×2 block. The two descriptors link to each other, so the
// inverse of the inverse is the original pointer and repeated
// inversions never re-intern — the regression guard that the gate
// cache is not double-populated.
func (p *Pkg) gateInverse(g *appliedGate) *appliedGate {
	if g.inv != nil {
		return g.inv
	}
	u := GateMatrix{
		complex(real(g.u[0]), -imag(g.u[0])),
		complex(real(g.u[2]), -imag(g.u[2])),
		complex(real(g.u[1]), -imag(g.u[1])),
		complex(real(g.u[3]), -imag(g.u[3])),
	}
	inv := p.internGate(u, g.target, controlsOf(g))
	g.inv = inv
	inv.inv = g
	return inv
}

// controlsOf reconstructs the control slice from the descriptor masks.
func controlsOf(g *appliedGate) []Control {
	var ctl []Control
	for m := g.pos; m != 0; m &= m - 1 {
		ctl = append(ctl, Control{Qubit: bitsLen64(m&-m) - 1})
	}
	for m := g.neg; m != 0; m &= m - 1 {
		ctl = append(ctl, Control{Qubit: bitsLen64(m&-m) - 1, Neg: true})
	}
	return ctl
}

// registerGateRoot records that node n is the root of g's cached gate
// diagram this generation, so analysis operations receiving a matrix
// edge can recognize interned gates and apply their inverse via the
// kernel instead of materializing a ConjTranspose.
func (p *Pkg) registerGateRoot(n *MNode, g *appliedGate) {
	if p.gateRootsGen != p.gen || p.gateRoots == nil {
		p.gateRoots = make(map[*MNode]*appliedGate)
		p.gateRootsGen = p.gen
	}
	p.gateRoots[n] = g
}

// gateFromRoot resolves a matrix node back to the gate descriptor
// whose cached diagram it roots, or nil.
func (p *Pkg) gateFromRoot(n *MNode) *appliedGate {
	if p.gateRootsGen != p.gen {
		return nil
	}
	g := p.gateRoots[n]
	if g == nil || g.ddGen != p.gen || g.dd.N != n {
		return nil
	}
	return g
}
