package dd

// Operation tracing and race-clean stats snapshots.
//
// A Pkg is single-goroutine by design, but production deployments
// need to watch it from other goroutines: a metrics scraper must read
// table loads and cache ratios while a session is mid-step. Two
// mechanisms make that possible without locking the hot path:
//
//   - An optional TraceFunc observes the wall-clock latency of every
//     top-level diagram operation (the public AddV/MultMV/… entry
//     points time themselves around their recursive bodies) and every
//     garbage collection. With no tracer installed the cost is a
//     single nil check per operation.
//
//   - The package periodically publishes an immutable Stats snapshot
//     through an atomic pointer (LastStats). Readers on any goroutine
//     get a consistent recent snapshot; they never observe a
//     half-updated Stats struct racing with a GC sweep.

import (
	"sync/atomic"
	"time"
)

// Op identifies a traced top-level diagram operation.
type Op uint8

const (
	OpAddV Op = iota
	OpAddM
	OpMultMV
	OpMultMM
	OpKron
	OpConjTranspose
	OpApplyGate
	OpApplyGateM
	OpGC
	// NumOps bounds Op values for table-indexed collectors.
	NumOps
)

// String returns the stable label used in metric series.
func (o Op) String() string {
	switch o {
	case OpAddV:
		return "addv"
	case OpAddM:
		return "addm"
	case OpMultMV:
		return "multmv"
	case OpMultMM:
		return "multmm"
	case OpKron:
		return "kron"
	case OpConjTranspose:
		return "conjt"
	case OpApplyGate:
		return "applygate"
	case OpApplyGateM:
		return "applygatem"
	case OpGC:
		return "gc"
	default:
		return "unknown"
	}
}

// TraceFunc observes one completed operation. Implementations must be
// safe for concurrent use when several packages share one tracer.
type TraceFunc func(op Op, d time.Duration)

// tracerBox wraps a TraceFunc for atomic.Value (which cannot hold a
// bare nil func).
type tracerBox struct{ f TraceFunc }

var defaultTracer atomic.Value // tracerBox

// SetDefaultTracer installs a process-wide tracer inherited by every
// subsequently created Pkg — how the CLI tools observe packages built
// deep inside the bench and verify harnesses. Pass nil to clear.
func SetDefaultTracer(f TraceFunc) { defaultTracer.Store(tracerBox{f: f}) }

func loadDefaultTracer() TraceFunc {
	if b, ok := defaultTracer.Load().(tracerBox); ok {
		return b.f
	}
	return nil
}

// DefaultTracer returns the currently installed process-wide tracer
// (nil when none) — callers chaining an additional observer (e.g. the
// -trace-out flight recorder next to -metrics-dump) read the existing
// hook through this and install a tee.
func DefaultTracer() TraceFunc { return loadDefaultTracer() }

// SetTracer installs (or, with nil, removes) the tracer of this
// package, overriding any default tracer it inherited. Installing a
// tracer publishes an initial stats snapshot.
func (p *Pkg) SetTracer(f TraceFunc) {
	p.tracer = f
	if f != nil {
		p.PublishStats()
	}
}

// publishStride bounds how often traced operations refresh the
// published snapshot; a snapshot allocates one Stats struct, so the
// stride keeps tight operation loops allocation-light while scrapes
// still observe values at most a few dozen operations old.
const publishStride = 32

// PublishStats takes a Stats snapshot and publishes it for
// cross-goroutine readers (LastStats).
func (p *Pkg) PublishStats() {
	s := p.Stats()
	p.statsSnap.Store(&s)
}

// LastStats returns the most recently published stats snapshot. It is
// safe to call from any goroutine, unlike every other Pkg method: the
// snapshot is immutable and read through an atomic pointer. The
// second result is false when no snapshot was published yet.
func (p *Pkg) LastStats() (Stats, bool) {
	if s := p.statsSnap.Load(); s != nil {
		return *s, true
	}
	return Stats{}, false
}

// traced runs after a top-level operation completed: it reports the
// latency and periodically republishes the stats snapshot.
func (p *Pkg) traced(op Op, start time.Time) {
	p.tracer(op, time.Since(start))
	p.tracedOps++
	if p.tracedOps%publishStride == 0 {
		p.PublishStats()
	}
}

// AddV returns the element-wise sum of the vectors a and b. Operands
// must stem from this package and represent equally sized vectors.
func (p *Pkg) AddV(a, b VEdge) VEdge {
	if p.tracer == nil {
		return p.addV(a, b)
	}
	start := time.Now()
	res := p.addV(a, b)
	p.traced(OpAddV, start)
	return res
}

// AddM returns the element-wise sum of the matrices a and b.
func (p *Pkg) AddM(a, b MEdge) MEdge {
	if p.tracer == nil {
		return p.addM(a, b)
	}
	start := time.Now()
	res := p.addM(a, b)
	p.traced(OpAddM, start)
	return res
}

// MultMV computes the matrix-vector product m·v, the core of DD-based
// simulation (Ex. 9, Fig. 4 of the paper).
func (p *Pkg) MultMV(m MEdge, v VEdge) VEdge {
	if p.tracer == nil {
		return p.multMV(m, v)
	}
	start := time.Now()
	res := p.multMV(m, v)
	p.traced(OpMultMV, start)
	return res
}

// MultMM computes the matrix-matrix product a·b (a applied after b),
// used to build circuit functionality U = U_{m-1}···U_0.
func (p *Pkg) MultMM(a, b MEdge) MEdge {
	p.stats.MultMMOps++
	if p.tracer == nil {
		return p.multMM(a, b)
	}
	start := time.Now()
	res := p.multMM(a, b)
	p.traced(OpMultMM, start)
	return res
}

// KronM computes the tensor product a⊗b, where b spans the
// lowerQubits bottom levels (Fig. 3 of the paper).
func (p *Pkg) KronM(a, b MEdge, lowerQubits int) MEdge {
	if p.tracer == nil {
		return p.kronM(a, b, lowerQubits)
	}
	start := time.Now()
	res := p.kronM(a, b, lowerQubits)
	p.traced(OpKron, start)
	return res
}

// ConjTranspose returns the conjugate transpose (adjoint) m† of the
// matrix diagram.
func (p *Pkg) ConjTranspose(m MEdge) MEdge {
	if p.tracer == nil {
		return p.conjTranspose(m)
	}
	start := time.Now()
	res := p.conjTranspose(m)
	p.traced(OpConjTranspose, start)
	return res
}
