package dd

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestTrace(t *testing.T) {
	p := New(3)
	// tr(I) = 8.
	if got := p.Trace(p.Ident()); !approx(got, 8) {
		t.Fatalf("tr(I) = %v, want 8", got)
	}
	// tr(H ⊗ I ⊗ I) = tr(H)·tr(I)·tr(I) = 0.
	h := p.MakeGateDD(gateH, 2)
	if got := p.Trace(h); cmplx.Abs(got) > tol {
		t.Fatalf("tr(H x I x I) = %v, want 0", got)
	}
	// tr(S on q0) = tr(S)·4 = (1+i)·4.
	s := p.MakeGateDD(gateS, 0)
	if got := p.Trace(s); !approx(got, complex(4, 4)) {
		t.Fatalf("tr(S x I x I) = %v, want 4+4i", got)
	}
	// Trace of the zero matrix.
	if got := p.Trace(MZero()); got != 0 {
		t.Fatalf("tr(0) = %v", got)
	}
}

func TestHSOverlap(t *testing.T) {
	p := New(2)
	h := p.MakeGateDD(gateH, 1)
	cx := p.MakeGateDD(gateX, 0, Control{Qubit: 1})
	u := p.MultMM(cx, h)
	if got := p.HSOverlap(u, u); math.Abs(got-1) > tol {
		t.Fatalf("self overlap = %v, want 1", got)
	}
	// Global phase leaves the overlap at 1.
	phased := MEdge{W: u.W * cmplx.Exp(complex(0, 0.9)), N: u.N}
	if got := p.HSOverlap(u, phased); math.Abs(got-1) > tol {
		t.Fatalf("phase overlap = %v, want 1", got)
	}
	// Orthogonal-ish operators overlap below 1.
	if got := p.HSOverlap(u, p.Ident()); got > 0.9 {
		t.Fatalf("overlap of distinct unitaries = %v, want < 0.9", got)
	}
}

func TestExpectationZ(t *testing.T) {
	p := New(1)
	zero := p.ZeroState()
	if got := p.ExpectationZ(zero, 0); math.Abs(got-1) > tol {
		t.Fatalf("<Z> of |0> = %v, want 1", got)
	}
	one := p.BasisState(1)
	if got := p.ExpectationZ(one, 0); math.Abs(got+1) > tol {
		t.Fatalf("<Z> of |1> = %v, want -1", got)
	}
	plus := p.MultMV(p.MakeGateDD(gateH, 0), zero)
	if got := p.ExpectationZ(plus, 0); math.Abs(got) > tol {
		t.Fatalf("<Z> of |+> = %v, want 0", got)
	}
}

func TestSizeByLevel(t *testing.T) {
	p := New(2)
	bell := bellState(t, p)
	hist := p.SizeByLevelV(bell)
	if hist[1] != 1 || hist[0] != 2 {
		t.Fatalf("Bell level histogram = %v, want [2 1]", hist)
	}
	if sum := hist[0] + hist[1]; sum != SizeV(bell) {
		t.Fatalf("histogram sum %d != size %d", sum, SizeV(bell))
	}
	cx := p.MakeGateDD(gateX, 0, Control{Qubit: 1})
	mhist := p.SizeByLevelM(cx)
	if mhist[1] != 1 || mhist[0] != 2 {
		t.Fatalf("CNOT level histogram = %v, want [2 1]", mhist)
	}
}

func TestFromMatrixRoundTrip(t *testing.T) {
	p := New(2)
	rng := rand.New(rand.NewSource(5))
	rows := make([][]complex128, 4)
	for i := range rows {
		rows[i] = make([]complex128, 4)
		for j := range rows[i] {
			rows[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	m, err := p.FromMatrix(rows)
	if err != nil {
		t.Fatal(err)
	}
	back := p.Matrix(m)
	for i := range rows {
		for j := range rows[i] {
			if !approx(back[i][j], rows[i][j]) {
				t.Fatalf("entry (%d,%d): %v vs %v", i, j, back[i][j], rows[i][j])
			}
		}
	}
	// Canonicity: importing a gate matrix equals building the gate DD.
	cx := p.MakeGateDD(gateX, 0, Control{Qubit: 1})
	imported, err := p.FromMatrix(p.Matrix(cx))
	if err != nil {
		t.Fatal(err)
	}
	if imported != cx {
		t.Fatal("dense import broke canonicity")
	}
}

func TestFromMatrixValidation(t *testing.T) {
	p := New(2)
	if _, err := p.FromMatrix(make([][]complex128, 3)); err == nil {
		t.Fatal("wrong row count accepted")
	}
	bad := [][]complex128{make([]complex128, 4), make([]complex128, 3), make([]complex128, 4), make([]complex128, 4)}
	if _, err := p.FromMatrix(bad); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

func TestIsUnitaryDD(t *testing.T) {
	p := New(2)
	u := p.MultMM(p.MakeGateDD(gateX, 0, Control{Qubit: 1}), p.MakeGateDD(gateH, 1))
	if !p.IsUnitaryDD(u) {
		t.Fatal("unitary rejected")
	}
	// A projector is not unitary: |0><0| on q0 tensored with I.
	proj, err := p.FromMatrix([][]complex128{
		{1, 0, 0, 0},
		{0, 0, 0, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.IsUnitaryDD(proj) {
		t.Fatal("projector accepted as unitary")
	}
}

func TestPathCount(t *testing.T) {
	p := New(3)
	if got := PathCount(p.BasisState(5)); got != 1 {
		t.Fatalf("basis path count = %d", got)
	}
	bell2 := bellStateOn4(New(4))
	if got := PathCount(bell2); got != 2 {
		t.Fatalf("bell path count = %d", got)
	}
	// Uniform superposition: 2^3 paths.
	st := p.ZeroState()
	for q := 0; q < 3; q++ {
		st = p.MultMV(p.MakeGateDD(gateH, q), st)
	}
	if got := PathCount(st); got != 8 {
		t.Fatalf("|+++> path count = %d, want 8", got)
	}
	if got := PathCount(VZero()); got != 0 {
		t.Fatalf("zero path count = %d", got)
	}
}
