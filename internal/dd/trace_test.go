package dd

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var hGate = GateMatrix{
	complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0),
	complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0),
}

func TestTracerObservesTopLevelOps(t *testing.T) {
	p := New(3)
	var counts [NumOps]int
	p.SetTracer(func(op Op, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for %v", op)
		}
		counts[op]++
	})
	h := p.MakeGateDD(hGate, 0)
	state := p.MultMV(h, p.ZeroState())
	_ = p.AddV(state, state)
	u := p.MultMM(h, h)
	_ = p.ConjTranspose(u)
	p.GarbageCollect()

	if counts[OpMultMV] != 1 {
		t.Errorf("MultMV traced %d times, want exactly 1 (recursion must not be traced)", counts[OpMultMV])
	}
	if counts[OpAddV] != 1 {
		t.Errorf("AddV traced %d times, want 1", counts[OpAddV])
	}
	if counts[OpMultMM] != 1 {
		t.Errorf("MultMM traced %d times, want 1", counts[OpMultMM])
	}
	if counts[OpConjTranspose] != 1 {
		t.Errorf("ConjTranspose traced %d times, want 1", counts[OpConjTranspose])
	}
	if counts[OpGC] != 1 {
		t.Errorf("GC traced %d times, want 1", counts[OpGC])
	}
}

func TestDefaultTracerInheritedByNewPackages(t *testing.T) {
	var ops atomic.Int64
	SetDefaultTracer(func(op Op, d time.Duration) { ops.Add(1) })
	defer SetDefaultTracer(nil)
	p := New(2)
	h := p.MakeGateDD(hGate, 0)
	p.MultMV(h, p.ZeroState())
	if ops.Load() == 0 {
		t.Fatal("package created after SetDefaultTracer did not trace")
	}
}

func TestOpStringsAreStable(t *testing.T) {
	want := map[Op]string{
		OpAddV: "addv", OpAddM: "addm", OpMultMV: "multmv", OpMultMM: "multmm",
		OpKron: "kron", OpConjTranspose: "conjt", OpGC: "gc",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestGCPauseAccumulates(t *testing.T) {
	p := New(2)
	h := p.MakeGateDD(hGate, 0)
	p.MultMV(h, p.ZeroState())
	p.GarbageCollect()
	if st := p.Stats(); st.GCRuns != 1 || st.GCPauseNS == 0 {
		t.Fatalf("after GC: runs=%d pause=%dns, want 1 run with non-zero pause", st.GCRuns, st.GCPauseNS)
	}
}

// TestLastStatsRaceCleanDuringGC is the -race regression test for the
// stats-snapshot path: concurrent LastStats readers must never race
// with the mutating goroutine, even while garbage collections rewrite
// the unique tables. (A direct Stats() call from another goroutine
// WOULD race — LastStats reads only the atomically published
// snapshot, which is what the web scrape path uses.)
func TestLastStatsRaceCleanDuringGC(t *testing.T) {
	p := New(4)
	p.SetTracer(func(Op, time.Duration) {})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if st, ok := p.LastStats(); ok && st.LiveNodes < 0 {
					t.Error("impossible snapshot")
					return
				}
			}
		}()
	}

	h := p.MakeGateDD(hGate, 0)
	p.IncRefM(h) // protect the reused gate diagram across GCs
	state := p.ZeroState()
	for q := 0; q < 4; q++ {
		state = p.MultMV(p.MakeGateDD(hGate, q), state)
	}
	p.IncRefV(state)
	for i := 0; i < 2000; i++ {
		// A fresh rotation angle per step defeats the compute tables and
		// keeps minting nodes, so the live count crosses the GC trigger.
		theta := float64(i) * 1e-3
		rz := GateMatrix{1, 0, 0, complex(math.Cos(theta), math.Sin(theta))}
		next := p.MultMV(p.MakeGateDD(rz, i%4), state)
		next = p.MultMV(h, next)
		p.IncRefV(next)
		p.DecRefV(state)
		state = next
		p.MaybeGC(64) // force frequent sweeps while readers poll
	}
	close(stop)
	wg.Wait()

	st, ok := p.LastStats()
	if !ok {
		t.Fatal("no snapshot published despite tracer being installed")
	}
	if st.GCRuns == 0 {
		t.Fatal("test exercised no GC; lower the MaybeGC threshold")
	}
}
