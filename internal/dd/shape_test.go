package dd

import (
	"math"
	"testing"
)

func histSum(h []int) int {
	t := 0
	for _, c := range h {
		t += c
	}
	return t
}

// TestShapeVBell pins the per-level occupancy, edge counts, and
// sharing factor of the Bell state against hand-computed values.
func TestShapeVBell(t *testing.T) {
	p := New(2)
	e := p.BasisState(0)
	e = p.ApplyGate(e, gateH, 0)
	e = p.ApplyGate(e, gateX, 1, Control{Qubit: 0})
	s := p.ShapeV(e)

	if s.Kind != "vector" || s.Levels != 2 {
		t.Fatalf("kind/levels = %s/%d, want vector/2", s.Kind, s.Levels)
	}
	// (|00⟩+|11⟩)/√2: one node at the top level, two distinct basis
	// branches below — no sharing possible.
	if s.Nodes != 3 || s.NodesPerLevel[1] != 1 || s.NodesPerLevel[0] != 2 {
		t.Fatalf("nodes = %d per-level %v, want 3 with [2 1]", s.Nodes, s.NodesPerLevel)
	}
	// Root edge + 2 out of the top node + 1 out of each basis node.
	if s.Edges != 5 {
		t.Fatalf("edges = %d, want 5", s.Edges)
	}
	if s.TreeNodes != 3 || s.SharingFactor != 1 {
		t.Fatalf("tree/sharing = %g/%g, want 3/1", s.TreeNodes, s.SharingFactor)
	}
	if s.MaxLevelNodes != 2 || s.WidestLevel != 0 {
		t.Fatalf("widest = %d@%d, want 2@0", s.MaxLevelNodes, s.WidestLevel)
	}
	if s.IdentityFraction != 0 {
		t.Fatalf("vector profile has identity fraction %g", s.IdentityFraction)
	}
	if got := histSum(s.WeightHist); got != s.Edges {
		t.Fatalf("weight histogram counts %d edges, want %d", got, s.Edges)
	}
}

// TestShapeVUniform checks the sharing factor on the maximally shared
// uniform superposition: H⊗n yields one node per level but a
// decision tree of 2^n−1 nodes.
func TestShapeVUniform(t *testing.T) {
	const n = 4
	p := New(n)
	e := p.BasisState(0)
	for q := 0; q < n; q++ {
		e = p.ApplyGate(e, gateH, q)
	}
	s := p.ShapeV(e)
	if s.Nodes != n {
		t.Fatalf("nodes = %d, want %d", s.Nodes, n)
	}
	if want := float64(int(1)<<n - 1); s.TreeNodes != want {
		t.Fatalf("tree nodes = %g, want %g", s.TreeNodes, want)
	}
	if want := float64(int(1)<<n-1) / n; math.Abs(s.SharingFactor-want) > 1e-12 {
		t.Fatalf("sharing = %g, want %g", s.SharingFactor, want)
	}
	// All 2n+1 non-zero edges carry magnitude 1/√2 scaled weights;
	// the histogram must account for every one of them.
	if got := histSum(s.WeightHist); got != s.Edges {
		t.Fatalf("weight histogram counts %d edges, want %d", got, s.Edges)
	}
}

// TestShapeMIdentity: the canonical identity diagram is pure padding.
func TestShapeMIdentity(t *testing.T) {
	p := New(3)
	s := p.ShapeM(p.Ident())
	if s.Kind != "matrix" || s.Nodes != 3 {
		t.Fatalf("kind/nodes = %s/%d, want matrix/3", s.Kind, s.Nodes)
	}
	if s.IdentityFraction != 1 {
		t.Fatalf("identity fraction = %g, want 1", s.IdentityFraction)
	}
	for v, n := range s.NodesPerLevel {
		if n != 1 {
			t.Fatalf("level %d holds %d nodes, want 1", v, n)
		}
	}
}

// TestShapeMIdentityPadding pins the padding fraction of X applied to
// the top qubit of a 3-qubit identity: the X node's two children are
// the canonical ident(1) chain node, so of the 7-node decision tree
// (1 + 2 + 4) the 6 below the root are identity padding.
func TestShapeMIdentityPadding(t *testing.T) {
	p := New(3)
	m := p.ApplyGateML(p.Ident(), gateX, 2)
	s := p.ShapeM(m)
	if s.Nodes != 3 {
		t.Fatalf("nodes = %d, want 3", s.Nodes)
	}
	if want := 6.0 / 7.0; math.Abs(s.IdentityFraction-want) > 1e-12 {
		t.Fatalf("identity fraction = %g, want %g", s.IdentityFraction, want)
	}
	if s.TreeNodes != 7 {
		t.Fatalf("tree nodes = %g, want 7", s.TreeNodes)
	}
	// X on the lowest qubit leaves no canonical identity chain below
	// it: padding above the target is structural, not chain-shared.
	s = p.ShapeM(p.ApplyGateML(p.Ident(), gateX, 0))
	if s.IdentityFraction != 0 {
		t.Fatalf("low-target padding fraction = %g, want 0", s.IdentityFraction)
	}
}

// TestShapeSampling exercises the stride logic and the published
// snapshot lifecycle.
func TestShapeSampling(t *testing.T) {
	p := New(2)
	e := p.BasisState(0)
	if p.LastShape() != nil {
		t.Fatal("fresh package already has a published shape")
	}
	p.SetShapeInterval(2)
	took := 0
	for i := 0; i < 5; i++ {
		if p.MaybeShapeV(e) {
			took++
		}
	}
	if took != 2 {
		t.Fatalf("interval 2 over 5 steps took %d profiles, want 2", took)
	}
	last := p.LastShape()
	if last == nil || last.Seq != 2 || last.Kind != "vector" {
		t.Fatalf("published snapshot = %+v, want seq 2 vector", last)
	}
	forced := p.PublishShapeM(p.Ident())
	if forced.Seq != 3 {
		t.Fatalf("forced publish seq = %d, want 3", forced.Seq)
	}
	if got := p.LastShape(); got == nil || got.Kind != "matrix" || got.Seq != 3 {
		t.Fatalf("snapshot after forced publish = %+v", got)
	}
	p.SetShapeInterval(0)
	if p.MaybeShapeV(e) || p.MaybeShapeM(p.Ident()) {
		t.Fatal("disabled profiler still sampled")
	}
}

// TestShapeDisabledAllocs pins the 0-alloc contract of the disabled
// sampling path: every simulator step pays this check.
func TestShapeDisabledAllocs(t *testing.T) {
	p := New(4)
	e := p.BasisState(5)
	m := p.Ident()
	if avg := testing.AllocsPerRun(1000, func() {
		p.MaybeShapeV(e)
		p.MaybeShapeM(m)
	}); avg != 0 {
		t.Fatalf("disabled shape sampling allocates %v per step, want 0", avg)
	}
}

// TestShapeZeroAndTerminal covers degenerate roots.
func TestShapeZeroAndTerminal(t *testing.T) {
	p := New(2)
	s := p.ShapeV(VZero())
	if s.Nodes != 0 || s.Edges != 0 || histSum(s.WeightHist) != 0 {
		t.Fatalf("zero vector profile = %+v", s)
	}
	s = p.ShapeM(MOne())
	if s.Nodes != 0 || s.Edges != 1 || histSum(s.WeightHist) != 1 {
		t.Fatalf("terminal matrix profile = %+v", s)
	}
}

// TestShapeWeightBucketBounds sanity-checks the self-describing
// bucket bounds against the bucketing function.
func TestShapeWeightBucketBounds(t *testing.T) {
	for k := 0; k < ShapeWeightBuckets; k++ {
		lo, hi := ShapeWeightBucketBounds(k)
		if lo >= hi {
			t.Fatalf("bucket %d bounds [%g,%g) empty", k, lo, hi)
		}
		probe := lo * 1.5
		if k == 0 {
			probe = hi / 2
		}
		if k == ShapeWeightBuckets-1 {
			probe = lo * 2
		}
		if got := shapeWeightBucket(probe); got != k {
			t.Fatalf("magnitude %g lands in bucket %d, want %d", probe, got, k)
		}
	}
	if got := shapeWeightBucket(1); got != shapeWeightBucketBias {
		t.Fatalf("unit magnitude lands in bucket %d, want %d", got, shapeWeightBucketBias)
	}
}
