package dd

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"
)

// phaseGate returns the diag(1, e^{iθ}) matrix.
func phaseGate(theta float64) GateMatrix {
	return GateMatrix{1, 0, 0, cmplx.Exp(complex(0, theta))}
}

// applyBlowUp drives the GHZ preamble followed by an all-pairs
// controlled-phase layer with pairwise distinct angles. The resulting
// state Σ_x e^{iφ(x)}|x⟩ has a generic quadratic phase polynomial, so
// no two sub-vectors share structure and the diagram grows towards
// 2^n nodes — the canonical adversarial input for a node budget.
func applyBlowUp(t *testing.T, p *Pkg, n int) (trippedAt int, err error) {
	t.Helper()
	state := p.ZeroState()
	p.IncRefV(state)
	gates := 0
	apply := func(g MEdge) error {
		next, err := p.MultMVChecked(g, state)
		if err != nil {
			return err
		}
		p.IncRefV(next)
		p.DecRefV(state)
		state = next
		gates++
		return nil
	}
	// GHZ: H on top qubit, CX chain downwards.
	if err := apply(p.MakeGateDD(gateH, n-1)); err != nil {
		return gates, err
	}
	for q := n - 2; q >= 0; q-- {
		if err := apply(p.MakeGateDD(gateX, q, Control{Qubit: q + 1})); err != nil {
			return gates, err
		}
	}
	// QFT-flavoured blow-up: H plus distinct controlled phases.
	for q := 0; q < n; q++ {
		if err := apply(p.MakeGateDD(gateH, q)); err != nil {
			return gates, err
		}
	}
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			k++
			theta := math.Pi / math.Sqrt(float64(k)+1.5)
			if err := apply(p.MakeGateDD(phaseGate(theta), j, Control{Qubit: i})); err != nil {
				return gates, err
			}
		}
	}
	return gates, nil
}

func TestMaxNodesTripsDeterministically(t *testing.T) {
	const n, budget = 10, 200

	run := func() (int, error) {
		p := New(n)
		p.SetMaxNodes(budget)
		return applyBlowUp(t, p, n)
	}
	at1, err1 := run()
	if err1 == nil {
		t.Fatalf("blow-up circuit finished %d gates without tripping the %d-node budget", at1, budget)
	}
	if !errors.Is(err1, ErrResourceExhausted) {
		t.Fatalf("error %v does not match ErrResourceExhausted", err1)
	}
	var re *ResourceError
	if !errors.As(err1, &re) {
		t.Fatalf("error %v is not a *ResourceError", err1)
	}
	if re.Limit != budget || re.Nodes < budget {
		t.Fatalf("ResourceError reports nodes=%d limit=%d, want nodes >= limit = %d", re.Nodes, re.Limit, budget)
	}
	// Deterministic: a second run trips at the same gate.
	at2, err2 := run()
	if err2 == nil || at1 != at2 {
		t.Fatalf("budget trip not deterministic: first at gate %d (%v), then at gate %d (%v)", at1, err1, at2, err2)
	}
}

func TestBudgetAbortLeavesPackageUsable(t *testing.T) {
	const n = 10
	p := New(n)
	p.SetMaxNodes(150)
	if _, err := applyBlowUp(t, p, n); err == nil {
		t.Fatal("expected the budget to trip")
	}
	if p.LiveNodes() > p.MaxNodes() {
		// The abort garbage-collects intermediates; only referenced
		// diagrams may remain.
		t.Fatalf("after abort %d live nodes exceed the budget of %d", p.LiveNodes(), p.MaxNodes())
	}
	// Small follow-up operations must still succeed: the budget bounds
	// table growth, it does not poison the package.
	st := p.ZeroState()
	out, err := p.MultMVChecked(p.MakeGateDD(gateH, 0), st)
	if err != nil {
		t.Fatalf("small op after abort failed: %v", err)
	}
	if SizeV(out) == 0 {
		t.Fatal("small op after abort returned an empty diagram")
	}
}

func TestUncheckedOpsIgnoreBudget(t *testing.T) {
	p := New(4)
	p.SetMaxNodes(1)
	// The unchecked path must not panic even with an absurd budget —
	// existing batch tools rely on it.
	st := p.MultMV(p.MakeGateDD(gateH, 0), p.ZeroState())
	if SizeV(st) == 0 {
		t.Fatal("unchecked op failed")
	}
}

func TestCheckedOpsWithoutBudgetBehaveLikeUnchecked(t *testing.T) {
	p := New(3)
	a := p.MultMV(p.MakeGateDD(gateH, 2), p.ZeroState())
	b, err := p.MultMVChecked(p.MakeGateDD(gateH, 2), p.ZeroState())
	if err != nil {
		t.Fatalf("checked op errored without a budget: %v", err)
	}
	if a != b {
		t.Fatal("checked and unchecked results differ (canonicity violated)")
	}
	m, err := p.MultMMChecked(p.MakeGateDD(gateX, 0), p.Ident())
	if err != nil || m.IsZero() {
		t.Fatalf("MultMMChecked failed: %v", err)
	}
	s, err := p.AddVChecked(a, b)
	if err != nil || s.IsZero() {
		t.Fatalf("AddVChecked failed: %v", err)
	}
	am, err := p.AddMChecked(m, m)
	if err != nil || am.IsZero() {
		t.Fatalf("AddMChecked failed: %v", err)
	}
}
