package dd

// Direct gate application: the simulation hot path applies a 2×2 gate
// (with optional positive/negative controls) to a vector DD by
// recursive descent, without ever materializing the gate as a matrix
// diagram. A full-register gate matrix is 99% identity structure; the
// generic MultMV recursion dutifully multiplies all of it, while the
// descent below only rebuilds the levels the gate actually touches —
// the "do not represent the identity parts at all" insight of
// Sander et al. (Stripping Quantum Decision Diagrams of their
// Identity, 2024) applied to the hot path:
//
//   - Levels above every involved qubit are walked and re-interned
//     unchanged (shared subdiagrams collapse into apply-cache hits).
//   - A control level above the target splits once: the inactive
//     branch is passed through untouched, only the active branch
//     recurses.
//   - At the target level the two successors are combined with the
//     four gate entries: r0 = u00·e0 + u01·e1, r1 = u10·e0 + u11·e1.
//   - Controls below the target split each successor into the
//     component where all remaining controls are satisfied (which
//     receives the gate) and the untouched remainder.
//
// Gate descriptions are interned per package: numerically equal
// (matrix, target, controls) triples canonicalize to one *appliedGate,
// whose pointer identity keys the apply compute tables and carries the
// per-generation cached matrix DD for the operations that still need
// one (verify's functionality construction).

import (
	"fmt"
	"time"

	"quantumdd/internal/cnum"
)

// gateSig is the canonical identity of a gate application: matrix
// entries identified through the complex table, the target level, and
// the control lines as positive/negative bitmasks. Comparable, so it
// keys the intern map directly.
type gateSig struct {
	u      [4]complex128
	target int
	pos    uint64 // positive-control qubit mask
	neg    uint64 // negative-control qubit mask
}

// appliedGate is an interned gate application. Pointers are unique per
// package and live for the package lifetime (gates reference no
// nodes), so they serve as O(1) identities in compute-table keys.
type appliedGate struct {
	gateSig
	hash      uint64 // precomputed key hash over the signature
	hi        int    // highest involved level (target or topmost control)
	belowMask uint64 // controls strictly below the target

	// Per-generation cached matrix DD of this gate (MakeGateDD). The
	// edge is only valid while ddGen matches the package generation: a
	// garbage collection may sweep and recycle unreferenced nodes,
	// and it bumps the generation doing so.
	dd    MEdge
	ddGen uint64

	// Adjoint descriptor (gateInverse, applygatem.go): linked both
	// ways, so inverting twice returns the original pointer and never
	// re-interns.
	inv *appliedGate

	// Per-generation truncated gate diagrams for the identity fast
	// path of the matrix kernel: sub[v] is the gate lowered over levels
	// 0..v with only the controls at or below v (gateSubDD).
	sub    []MEdge
	subGen uint64
}

// internGate validates and canonicalizes a gate application and
// returns its unique per-package descriptor.
func (p *Pkg) internGate(u GateMatrix, target int, controls []Control) *appliedGate {
	if target < 0 || target >= p.nqubits {
		panic(fmt.Sprintf("dd: gate target %d out of range [0,%d)", target, p.nqubits))
	}
	sig := gateSig{target: target}
	for i, w := range u {
		sig.u[i] = p.cn.Lookup(w)
	}
	for _, c := range controls {
		if c.Qubit < 0 || c.Qubit >= p.nqubits {
			panic(fmt.Sprintf("dd: control qubit %d out of range [0,%d)", c.Qubit, p.nqubits))
		}
		if c.Qubit == target {
			panic(fmt.Sprintf("dd: control qubit %d equals target", c.Qubit))
		}
		bit := uint64(1) << uint(c.Qubit)
		if (sig.pos|sig.neg)&bit != 0 {
			panic(fmt.Sprintf("dd: duplicate control qubit %d", c.Qubit))
		}
		if c.Neg {
			sig.neg |= bit
		} else {
			sig.pos |= bit
		}
	}
	if sig.u[1] == 0 && sig.u[2] == 0 && sig.u[0] == 1 && sig.pos != 0 {
		// diag(1,w): the phase fires iff the target and every positive
		// control all read 1, so target and positive controls are
		// interchangeable. Re-target to the lowest of that set — the
		// kernels then see the controls above the target, where the
		// descent passes them through instead of splitting sub-blocks.
		set := sig.pos | 1<<uint(sig.target)
		if low := bitsLen64(set&-set) - 1; low != sig.target {
			sig.pos = set &^ (1 << uint(low))
			sig.target = low
		}
	}
	if g, ok := p.gateIntern[sig]; ok {
		return g
	}
	g := &appliedGate{gateSig: sig, hi: sig.target, belowMask: (sig.pos | sig.neg) & (1<<uint(sig.target) - 1)}
	for m := sig.pos | sig.neg; m != 0; m &= m - 1 {
		if q := bitsLen64(m) - 1; q > g.hi {
			g.hi = q
		}
	}
	h := cnum.HashComplex(sig.u[0])
	for i := 1; i < 4; i++ {
		h = hashMix(h, cnum.HashComplex(sig.u[i]))
	}
	h = hashMix(h, uint64(sig.target)+1)
	h = hashMix(h, sig.pos)
	h = hashMix(h, sig.neg+0x9e3779b97f4a7c15)
	g.hash = h
	if p.gateIntern == nil {
		p.gateIntern = make(map[gateSig]*appliedGate)
	}
	p.gateIntern[sig] = g
	return g
}

// bitsLen64 is bits.Len64 without the import churn in this hot file.
func bitsLen64(x uint64) int {
	n := 0
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}

// Compute-table keys of the kernel: the vector node plus the interned
// gate pointer. applySplit shares the key shape and caches the
// (active, inactive) control decomposition below the target.
type (
	applyVKey struct {
		v *VNode
		g *appliedGate
	}
	vPair struct {
		act, inact VEdge
	}
)

func hashApply(k applyVKey) uint64 { return hashMix(k.v.hash, k.g.hash) }

// ApplyGate applies the (multi-)controlled single-qubit gate u to the
// state v by direct recursive descent on the vector diagram — the
// specialized fast path equivalent to MultMV(MakeGateDD(u, target,
// controls...), v), without building the matrix diagram.
func (p *Pkg) ApplyGate(v VEdge, u GateMatrix, target int, controls ...Control) VEdge {
	g := p.internGate(u, target, controls)
	if p.tracer == nil {
		return p.applyGate(v, g)
	}
	start := time.Now()
	res := p.applyGate(v, g)
	p.traced(OpApplyGate, start)
	return res
}

// ApplyGateChecked is ApplyGate under the node budget (see budget.go):
// it returns a *ResourceError instead of growing the unique tables
// past MaxNodes, leaving the operand diagram intact.
func (p *Pkg) ApplyGateChecked(v VEdge, u GateMatrix, target int, controls ...Control) (VEdge, error) {
	g := p.internGate(u, target, controls)
	p.IncRefV(v)
	defer p.DecRefV(v)
	var res VEdge
	err := p.checked(func() {
		if p.tracer == nil {
			res = p.applyGate(v, g)
			return
		}
		start := time.Now()
		res = p.applyGate(v, g)
		p.traced(OpApplyGate, start)
	})
	if err != nil {
		return VZero(), err
	}
	return res, nil
}

// applyGate is the weight-factored entry: the gate is linear, so the
// root weight passes through and the recursion works on node pointers
// only, keeping the cache keys structural.
func (p *Pkg) applyGate(v VEdge, g *appliedGate) VEdge {
	if v.IsZero() {
		return VZero()
	}
	if v.N == vTerminal || v.N.V < g.target {
		panic(fmt.Sprintf("dd: ApplyGate operand does not span target level %d", g.target))
	}
	res := p.applyRec(v.N, g)
	return VEdge{W: p.cn.Lookup(res.W * v.W), N: res.N}
}

// applyRec rebuilds the diagram under n with the gate applied. n is at
// or above the target level; zero stubs never reach here (U·0 = 0 is
// handled at the edges).
func (p *Pkg) applyRec(n *VNode, g *appliedGate) VEdge {
	p.stats.CacheLookups++
	p.stats.ApplyCTLookups++
	key := applyVKey{v: n, g: g}
	h := hashApply(key)
	if res, ok := p.applyCache.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		p.stats.ApplyCTHits++
		return res
	}
	v := n.V
	var res VEdge
	switch {
	case v == g.target:
		res = p.applyAtTarget(n, g)
	case (g.pos|g.neg)>>uint(v)&1 == 1:
		// Control level above the target: the inactive branch is
		// untouched — the identity block the generic multiply would
		// have walked node by node.
		active := 1
		if g.neg>>uint(v)&1 == 1 {
			active = 0
		}
		var e [2]VEdge
		e[1-active] = n.E[1-active]
		e[active] = p.applyEdge(n.E[active], g)
		res = p.makeVNode(v, e)
	default:
		// Free level above the target: descend both branches.
		res = p.makeVNode(v, [2]VEdge{p.applyEdge(n.E[0], g), p.applyEdge(n.E[1], g)})
	}
	if p.applyCache.store(h, key, res, p.gen, &p.stats) {
		p.stats.ApplyCTEvictions++
	}
	return res
}

// applyEdge recurses through an edge, shortcutting zero stubs.
func (p *Pkg) applyEdge(e VEdge, g *appliedGate) VEdge {
	if e.IsZero() {
		return VZero()
	}
	r := p.applyRec(e.N, g)
	return VEdge{W: r.W * e.W, N: r.N}
}

// applyAtTarget combines the target node's successors with the four
// gate entries. With controls below the target, each successor is
// first split into the component where all remaining controls are
// satisfied (which receives the gate) and the untouched remainder.
func (p *Pkg) applyAtTarget(n *VNode, g *appliedGate) VEdge {
	e0, e1 := n.E[0], n.E[1]
	if g.belowMask == 0 {
		var out [2]VEdge
		for i := 0; i < 2; i++ {
			out[i] = p.addV(scaleV(g.u[2*i], e0), scaleV(g.u[2*i+1], e1))
		}
		return p.makeVNode(n.V, out)
	}
	a0, i0 := p.splitControls(e0, g)
	a1, i1 := p.splitControls(e1, g)
	inact := [2]VEdge{i0, i1}
	var out [2]VEdge
	for i := 0; i < 2; i++ {
		gated := p.addV(scaleV(g.u[2*i], a0), scaleV(g.u[2*i+1], a1))
		out[i] = p.addV(inact[i], gated)
	}
	return p.makeVNode(n.V, out)
}

// splitControls decomposes e = act + inact, where act is the
// projection onto the subspace in which every control of g below the
// target is satisfied. Both components are built directly (no
// subtraction), memoized per (node, gate) in the split table.
func (p *Pkg) splitControls(e VEdge, g *appliedGate) (act, inact VEdge) {
	if e.IsZero() {
		return VZero(), VZero()
	}
	n := e.N
	if n == vTerminal || g.belowMask&(1<<uint(n.V+1)-1) == 0 {
		// No controls remain at or below this level: fully active.
		return e, VZero()
	}
	p.stats.CacheLookups++
	p.stats.ApplyCTLookups++
	key := applyVKey{v: n, g: g}
	h := hashApply(key)
	if pr, ok := p.applySplit.lookup(h, key, p.gen); ok && !p.CachesDisabled {
		p.stats.CacheHits++
		p.stats.ApplyCTHits++
		return scaleV(e.W, pr.act), scaleV(e.W, pr.inact)
	}
	v := n.V
	var pr vPair
	if g.belowMask>>uint(v)&1 == 1 {
		active := 1
		if g.neg>>uint(v)&1 == 1 {
			active = 0
		}
		cAct, cInact := p.splitControls(n.E[active], g)
		var actKids, inactKids [2]VEdge
		actKids[active] = cAct
		actKids[1-active] = VZero()
		inactKids[active] = cInact
		inactKids[1-active] = n.E[1-active]
		pr.act = p.makeVNode(v, actKids)
		pr.inact = p.makeVNode(v, inactKids)
	} else {
		a0, i0 := p.splitControls(n.E[0], g)
		a1, i1 := p.splitControls(n.E[1], g)
		pr.act = p.makeVNode(v, [2]VEdge{a0, a1})
		pr.inact = p.makeVNode(v, [2]VEdge{i0, i1})
	}
	if p.applySplit.store(h, key, pr, p.gen, &p.stats) {
		p.stats.ApplyCTEvictions++
	}
	return scaleV(e.W, pr.act), scaleV(e.W, pr.inact)
}

// scaleV multiplies an edge weight without canonicalizing: the result
// always flows into addV/makeVNode, which canonicalize downstream.
func scaleV(w complex128, e VEdge) VEdge {
	if w == 0 || e.IsZero() {
		return VZero()
	}
	return VEdge{W: w * e.W, N: e.N}
}

// AddGatesFused records n gates eliminated by a front-end fusion pass
// (internal/sim's peephole folding) so the saving shows up next to the
// apply counters in Stats, the web statistics panel and /metrics.
func (p *Pkg) AddGatesFused(n int) {
	if n > 0 {
		p.stats.GatesFused += uint64(n)
	}
}

// MakeGateDD builds the matrix diagram of a (multi-)controlled
// single-qubit gate u acting on target, extended to the full register
// width with identities (the tensor-product extension of Ex. 3/8).
// Repeated requests for the same (matrix, target, controls) triple are
// served from a per-package cache until the next garbage collection:
// circuit-functionality construction (verify) re-lowers the same few
// gates hundreds of times.
func (p *Pkg) MakeGateDD(u GateMatrix, target int, controls ...Control) MEdge {
	g := p.internGate(u, target, controls)
	if !p.CachesDisabled && g.ddGen == p.gen {
		p.stats.GateDDCacheHits++
		return g.dd
	}
	e := p.buildGateDDUpTo(g, p.nqubits-1)
	g.dd, g.ddGen = e, p.gen
	p.registerGateRoot(e.N, g)
	return e
}

// buildGateDDUpTo constructs the gate diagram level by level over the
// levels 0..hi only, taking the controls at or below hi from the
// descriptor masks. MakeGateDD calls it with the full register width;
// the matrix kernel's identity fast path requests truncated diagrams
// (gateSubDD, applygatem.go).
func (p *Pkg) buildGateDDUpTo(g *appliedGate, hi Var) MEdge {
	// Entry blocks of U as seen from just above the target level,
	// covering all levels below the target. The signature entries were
	// canonicalized by internGate.
	var em [4]MEdge
	for i, w := range g.u {
		em[i] = MEdge{W: w, N: mTerminal}
	}
	id := MOne() // identity over the levels processed so far
	for z := 0; z < g.target; z++ {
		bit := uint64(1) << uint(z)
		if (g.pos|g.neg)&bit != 0 {
			neg := g.neg&bit != 0
			for i := 0; i < 4; i++ {
				diag := i == 0 || i == 3
				inactive := MZero()
				if diag {
					inactive = id
				}
				if neg {
					em[i] = p.makeMNode(z, [4]MEdge{em[i], MZero(), MZero(), inactive})
				} else {
					em[i] = p.makeMNode(z, [4]MEdge{inactive, MZero(), MZero(), em[i]})
				}
			}
		} else {
			for i := 0; i < 4; i++ {
				em[i] = p.makeMNode(z, [4]MEdge{em[i], MZero(), MZero(), em[i]})
			}
		}
		id = p.makeMNode(z, [4]MEdge{id, MZero(), MZero(), id})
	}

	e := p.makeMNode(g.target, em)
	id = p.makeMNode(g.target, [4]MEdge{id, MZero(), MZero(), id})

	for z := g.target + 1; z <= hi; z++ {
		bit := uint64(1) << uint(z)
		switch {
		case g.neg&bit != 0:
			e = p.makeMNode(z, [4]MEdge{e, MZero(), MZero(), id})
		case g.pos&bit != 0:
			e = p.makeMNode(z, [4]MEdge{id, MZero(), MZero(), e})
		default:
			e = p.makeMNode(z, [4]MEdge{e, MZero(), MZero(), e})
		}
		id = p.makeMNode(z, [4]MEdge{id, MZero(), MZero(), id})
	}
	return e
}
