package dd

import "sync"

// Node-count walks. SizeV/SizeM run on every web frame render and
// inside the simulator's peak tracking, so they are iterative (no
// recursion) and draw their visited set and work stack from a pool
// instead of allocating fresh maps per call. The walkers are safe for
// concurrent use across sessions: each call checks a private walker
// out of the pool.

type vWalker struct {
	seen  map[*VNode]struct{}
	stack []*VNode
}

type mWalker struct {
	seen  map[*MNode]struct{}
	stack []*MNode
}

var vWalkerPool = sync.Pool{New: func() any {
	return &vWalker{seen: make(map[*VNode]struct{}, 64), stack: make([]*VNode, 0, 64)}
}}

var mWalkerPool = sync.Pool{New: func() any {
	return &mWalker{seen: make(map[*MNode]struct{}, 64), stack: make([]*MNode, 0, 64)}
}}

func (w *vWalker) release() {
	clear(w.seen)
	w.stack = w.stack[:0]
	vWalkerPool.Put(w)
}

func (w *mWalker) release() {
	clear(w.seen)
	w.stack = w.stack[:0]
	mWalkerPool.Put(w)
}

// push marks n and queues it, returning whether it was new.
func (w *vWalker) push(n *VNode) bool {
	if n == vTerminal {
		return false
	}
	if _, ok := w.seen[n]; ok {
		return false
	}
	w.seen[n] = struct{}{}
	w.stack = append(w.stack, n)
	return true
}

func (w *mWalker) push(n *MNode) bool {
	if n == mTerminal {
		return false
	}
	if _, ok := w.seen[n]; ok {
		return false
	}
	w.seen[n] = struct{}{}
	w.stack = append(w.stack, n)
	return true
}

// visitV visits every distinct non-terminal node reachable from root.
func visitV(root *VNode, visit func(n *VNode)) {
	w := vWalkerPool.Get().(*vWalker)
	w.push(root)
	for len(w.stack) > 0 {
		n := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		visit(n)
		w.push(n.E[0].N)
		w.push(n.E[1].N)
	}
	w.release()
}

// visitM visits every distinct non-terminal node reachable from root.
func visitM(root *MNode, visit func(n *MNode)) {
	w := mWalkerPool.Get().(*mWalker)
	w.push(root)
	for len(w.stack) > 0 {
		n := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		visit(n)
		for i := range n.E {
			w.push(n.E[i].N)
		}
	}
	w.release()
}

// SizeV reports the number of distinct non-terminal nodes reachable
// from e — the "number of nodes" of the paper (the terminal is not
// counted, cf. Ex. 6).
func SizeV(e VEdge) int {
	n := 0
	visitV(e.N, func(*VNode) { n++ })
	return n
}

// SizeM reports the number of distinct non-terminal nodes reachable
// from e.
func SizeM(e MEdge) int {
	n := 0
	visitM(e.N, func(*MNode) { n++ })
	return n
}
