package dd

import (
	"math/cmplx"
	"testing"
)

// interleavedPairs prepares ⊗ Bell pairs between qubit i and i+n/2 —
// the classic instance where the variable order matters exponentially:
// under the natural order every pair spans the whole diagram (size
// ~2^{n/2}), while ordering partners adjacently gives a linear DD.
func interleavedPairs(t *testing.T, p *Pkg) VEdge {
	t.Helper()
	n := p.Qubits()
	if n%2 != 0 {
		t.Fatal("need even qubit count")
	}
	st := p.ZeroState()
	for i := 0; i < n/2; i++ {
		st = p.MultMV(p.MakeGateDD(gateH, i), st)
		st = p.MultMV(p.MakeGateDD(gateX, i+n/2, Control{Qubit: i}), st)
	}
	return st
}

func TestReorderedStatePreservesAmplitudesUpToRelabeling(t *testing.T) {
	p := New(4)
	st := interleavedPairs(t, p)
	perm := []int{0, 2, 1, 3} // pair partners become adjacent
	re, err := p.ReorderedState(st, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Amplitude of basis index i in the reordered diagram equals the
	// amplitude of the bit-permuted index in the original.
	for i := int64(0); i < 16; i++ {
		var mapped int64
		for q := 0; q < 4; q++ {
			if i>>uint(q)&1 == 1 {
				mapped |= 1 << uint(perm[q])
			}
		}
		if cmplx.Abs(Amplitude(re, mapped)-Amplitude(st, i)) > 1e-9 {
			t.Fatalf("reordered amplitude mismatch at %04b", i)
		}
	}
}

func TestOrderMattersExponentially(t *testing.T) {
	const n = 12
	p := New(n)
	st := interleavedPairs(t, p)
	natural := SizeV(st)
	// Pair partners adjacent: qubit i ↦ 2i, qubit i+n/2 ↦ 2i+1.
	perm := make([]int, n)
	for i := 0; i < n/2; i++ {
		perm[i] = 2 * i
		perm[i+n/2] = 2*i + 1
	}
	paired, err := p.ReorderedSize(st, perm)
	if err != nil {
		t.Fatal(err)
	}
	// Natural order: ~3·2^{n/2}; paired order: ~3·(n/2).
	if natural < 100 {
		t.Fatalf("natural order unexpectedly compact: %d nodes", natural)
	}
	if paired >= natural/4 {
		t.Fatalf("paired order did not help: %d vs %d nodes", paired, natural)
	}
	if paired > 3*n {
		t.Fatalf("paired order not linear: %d nodes", paired)
	}
}

func TestSiftOrderFindsGoodOrder(t *testing.T) {
	const n = 8
	p := New(n)
	st := interleavedPairs(t, p)
	natural := SizeV(st)
	perm, size, err := p.SiftOrder(st)
	if err != nil {
		t.Fatal(err)
	}
	if size > natural/2 {
		t.Fatalf("sifting found %d nodes, natural order has %d", size, natural)
	}
	// The returned order must actually achieve the reported size.
	check, err := p.ReorderedSize(st, perm)
	if err != nil {
		t.Fatal(err)
	}
	if check != size {
		t.Fatalf("reported size %d but order achieves %d", size, check)
	}
}

func TestReorderValidation(t *testing.T) {
	p := New(2)
	st := p.ZeroState()
	if _, err := p.ReorderedSize(st, []int{0}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := p.ReorderedSize(st, []int{1, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	// Identity permutation is a no-op.
	re, err := p.ReorderedState(st, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if re != st {
		t.Fatal("identity reorder changed the diagram")
	}
}
