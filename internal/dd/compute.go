package dd

import "quantumdd/internal/cnum"

// Fixed-size, direct-mapped, lossy compute tables for the operation
// caches (the compute-table design of the MQT DD package): a
// power-of-two entry array indexed by the key hash, where a colliding
// store simply evicts the previous entry. Losing an entry only costs
// a recomputation, never correctness, so the tables trade the perfect
// recall of the earlier unbounded Go maps for allocation-free O(1)
// lookups and stores with a hard memory bound.
//
// Invalidation is a generation counter: every entry records the
// package generation it was stored in, GarbageCollect bumps the
// package counter, and entries from older generations are treated as
// empty. This replaces resetCaches' seven make(map) calls — after a
// GC nothing is freed or reallocated, and the tables refill in place.

// Default table capacities (entries). The four binary-operation
// tables dominate hit rates and get the larger cap; Kron, adjoint
// and fidelity see far fewer distinct keys. Tables are allocated
// lazily at ctMinSize and double adaptively (up to their cap) when
// the evictions of a single generation exceed the current size —
// short-lived packages stay tiny, eviction-thrashed ones grow.
const (
	ctDefaultLarge = 1 << 17
	ctDefaultSmall = 1 << 13
	ctMinSize      = 1 << 8
)

type ctEntry[K comparable, V any] struct {
	key K
	res V
	gen uint64 // package generation of the entry; 0 = never written
}

type computeTable[K comparable, V any] struct {
	entries []ctEntry[K, V] // allocated lazily on first store
	mask    uint64
	cap     int    // configured maximum capacity, a power of two
	evicted uint64 // evictions since the last resize, drives growth
}

// lookup returns the cached result for key, treating entries from
// older generations as empty.
func (t *computeTable[K, V]) lookup(h uint64, key K, gen uint64) (res V, ok bool) {
	if t.entries == nil {
		return res, false
	}
	e := &t.entries[h&t.mask]
	if e.gen == gen && e.key == key {
		return e.res, true
	}
	return res, false
}

// store writes the entry, evicting whatever occupied the slot. It
// reports whether a live entry was displaced, so callers can attribute
// the eviction to their own per-operation counters as well.
func (t *computeTable[K, V]) store(h uint64, key K, res V, gen uint64, st *Stats) (evicted bool) {
	if t.entries == nil {
		size := ctMinSize
		if t.cap > 0 && t.cap < size {
			size = t.cap
		}
		t.entries = make([]ctEntry[K, V], size)
		t.mask = uint64(size) - 1
	}
	e := &t.entries[h&t.mask]
	if e.gen == gen && e.key != key {
		st.CTEvictions++
		evicted = true
		t.evicted++
		if len(t.entries) < t.cap && t.evicted > uint64(len(t.entries)) {
			// Thrashing: double (contents are lossy, dropping them
			// only costs recomputation) and redirect the store.
			t.entries = make([]ctEntry[K, V], 2*len(t.entries))
			t.mask = uint64(len(t.entries)) - 1
			t.evicted = 0
			e = &t.entries[h&t.mask]
		}
	}
	e.key = key
	e.res = res
	e.gen = gen
	st.CTStores++
	return evicted
}

// setSize reconfigures the maximum capacity, dropping current
// contents; the next store reallocates from ctMinSize again.
func (t *computeTable[K, V]) setSize(n int) {
	t.cap = n
	t.entries = nil
	t.mask = 0
	t.evicted = 0
}

// nextPow2 rounds n up to a power of two, clamped below at ctMinSize.
func nextPow2(n int) int {
	s := ctMinSize
	for s < n {
		s <<= 1
	}
	return s
}

// --- key hashing ---
//
// Node identities contribute through their stored unique-table hash
// (immutable for the node's lifetime within a generation; recycling
// only reuses a slot after a GC bumped the generation, so a stale
// entry keyed by the slot's previous life can never be returned).
// Residual weight ratios are canonical complex values and hash by bit
// pattern via cnum.

func hashAddV(k addVKey) uint64 {
	return hashMix(hashMix(k.a.hash, k.b.hash), cnum.HashComplex(k.r))
}

func hashAddM(k addMKey) uint64 {
	return hashMix(hashMix(k.a.hash, k.b.hash), cnum.HashComplex(k.r))
}

func hashMulMV(k mulMVKey) uint64 { return hashMix(k.m.hash, k.v.hash) }

func hashMulMM(k mulMMKey) uint64 { return hashMix(k.a.hash, k.b.hash) }

func hashKron(k kronKey) uint64 { return hashMix(k.a.hash, k.b.hash) }

func hashFid(k fidKey) uint64 { return hashMix(k.a.hash, k.b.hash) }
