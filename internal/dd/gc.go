package dd

// Reference counting and garbage collection.
//
// The unique tables keep every node ever created alive (they hold the
// only strong references), so long-running simulations must reclaim
// nodes that no longer appear in any live diagram. Clients mark the
// diagrams they keep (IncRef) and unmark them when done (DecRef);
// GarbageCollect then sweeps all unreferenced nodes from the unique
// tables and drops the operation caches, which may point at swept
// nodes. This mirrors the scheme of the JKQ DD package (ICCAD 2019).

import "time"

// IncRefV marks the diagram rooted at e as live.
func (p *Pkg) IncRefV(e VEdge) { incRefV(e.N) }

func incRefV(n *VNode) {
	if n == vTerminal {
		return
	}
	n.ref++
	if n.ref == 1 {
		incRefV(n.E[0].N)
		incRefV(n.E[1].N)
	}
}

// DecRefV releases a mark set by IncRefV.
func (p *Pkg) DecRefV(e VEdge) { decRefV(e.N) }

func decRefV(n *VNode) {
	if n == vTerminal {
		return
	}
	if n.ref == 0 {
		panic("dd: DecRefV on unreferenced node")
	}
	n.ref--
	if n.ref == 0 {
		decRefV(n.E[0].N)
		decRefV(n.E[1].N)
	}
}

// IncRefM marks the matrix diagram rooted at e as live.
func (p *Pkg) IncRefM(e MEdge) { incRefM(e.N) }

func incRefM(n *MNode) {
	if n == mTerminal {
		return
	}
	n.ref++
	if n.ref == 1 {
		for _, c := range n.E {
			incRefM(c.N)
		}
	}
}

// DecRefM releases a mark set by IncRefM.
func (p *Pkg) DecRefM(e MEdge) { decRefM(e.N) }

func decRefM(n *MNode) {
	if n == mTerminal {
		return
	}
	if n.ref == 0 {
		panic("dd: DecRefM on unreferenced node")
	}
	n.ref--
	if n.ref == 0 {
		for _, c := range n.E {
			decRefM(c.N)
		}
	}
}

// GarbageCollect removes all nodes with reference count zero from the
// unique tables, releasing them into the arenas' free lists for
// reuse, and invalidates the operation caches (which may point at
// swept nodes) by bumping the package generation — an O(1) step that
// reallocates nothing. It returns the number of vector and matrix
// nodes freed.
func (p *Pkg) GarbageCollect() (vecFreed, matFreed int) {
	start := time.Now()
	for i := range p.vUnique {
		vecFreed += p.vUnique[i].sweep(&p.vMem)
	}
	for i := range p.mUnique {
		matFreed += p.mUnique[i].sweep(&p.mMem)
	}
	p.invalidateComputeTables()
	p.live -= vecFreed + matFreed
	p.stats.GCRuns++
	p.stats.NodesFreed += uint64(vecFreed + matFreed)
	pause := time.Since(start)
	p.stats.GCPauseNS += uint64(pause)
	if p.tracer != nil {
		p.tracer(OpGC, pause)
		p.PublishStats()
	}
	return vecFreed, matFreed
}

// MaybeGC runs a collection when the unique tables exceed the given
// node threshold; convenience for long simulation loops. The check is
// O(1) against the incrementally maintained live counter, so it can
// sit inside per-operation loops.
func (p *Pkg) MaybeGC(threshold int) bool {
	if p.live < threshold {
		return false
	}
	p.GarbageCollect()
	return true
}
