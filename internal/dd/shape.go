package dd

// Structural shape profiling (the observability counterpart of the
// paper's visual argument): the diagrams themselves, not just the
// operations on them, are what users need to see. A ShapeProfile is a
// compact structural snapshot of one diagram — per-level node
// occupancy and edge counts, the sharing factor against the unshared
// decision-tree expansion, the identity-padding fraction of matrix
// DDs, a log-bucketed magnitude histogram of the canonical edge
// weights (the same quantity the magnitude-scaled rendering encodes
// as stroke width), and the per-level unique-table load factors of
// the owning package.
//
// Profiles reuse the pooled iterative walkers of size.go and are
// sampled at a configurable stride (SetShapeInterval + MaybeShapeV/M)
// so the amortized cost stays bounded: one O(nodes) walk every N
// steps against N step costs that are themselves Ω(nodes). The
// disabled path (interval 0) is a single branch and allocates
// nothing, pinned by an AllocsPerRun test.

import (
	"math"
	"math/cmplx"
)

// ShapeWeightBuckets is the size of ShapeProfile.WeightHist. Bucket k
// holds the count of non-zero edges whose weight magnitude lies in
// [2^(k-14), 2^(k-13)); the first and last buckets absorb under- and
// overflow. Canonically normalized diagrams keep |w| ≤ 1, so the top
// buckets near k=14 hold the dominant amplitudes and the low buckets
// reveal near-zero weights that approximation could truncate.
const ShapeWeightBuckets = 16

// shapeWeightBucketBias aligns bucket 0 with magnitude 2^-14.
const shapeWeightBucketBias = 14

// ShapeProfile is a structural snapshot of a single decision diagram.
// Published profiles are immutable: readers obtained via LastShape
// must not modify the slices.
type ShapeProfile struct {
	// Kind is "vector" or "matrix".
	Kind string `json:"kind"`
	// Seq numbers the published profiles of one package, so pollers
	// can tell a fresh sample from a repeat of the last one. Profiles
	// returned by ShapeV/ShapeM without publication carry Seq 0.
	Seq uint64 `json:"seq"`
	// Levels is the register width of the owning package. The
	// per-level slices are indexed by qubit level 0..Levels-1.
	Levels int `json:"levels"`
	// Nodes and Edges count distinct non-terminal nodes and non-zero
	// outgoing edges (the root edge included).
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// NodesPerLevel and EdgesPerLevel resolve the totals by level.
	NodesPerLevel []int `json:"nodesPerLevel"`
	EdgesPerLevel []int `json:"edgesPerLevel"`
	// MaxLevelNodes is the widest level's occupancy and WidestLevel
	// its index — the quantity whose growth rate predicts blowup.
	MaxLevelNodes int `json:"maxLevelNodes"`
	WidestLevel   int `json:"widestLevel"`
	// TreeNodes is the node count of the unshared decision-tree
	// expansion (each node counted once per root-to-node path), as a
	// float64 because it reaches 2^levels. SharingFactor is
	// TreeNodes/Nodes ≥ 1: how much structure sharing buys.
	TreeNodes     float64 `json:"treeNodes"`
	SharingFactor float64 `json:"sharingFactor"`
	// IdentityFraction is the fraction of the decision-tree expansion
	// whose nodes are canonical identity-chain nodes (matrix diagrams
	// only; 0 for vectors). Identity is detected by pointer equality
	// against the package's interned identity chain — canonicity
	// makes any identity sub-block pointer-identical to the chain
	// node at its level, so no per-node flag or matrix compare is
	// needed. A full-register identity scores 1.
	IdentityFraction float64 `json:"identityFraction"`
	// WeightHist is the log-bucketed magnitude histogram of all
	// non-zero edge weights; see ShapeWeightBuckets.
	WeightHist []int `json:"weightHist"`
	// UTLoad is the per-level unique-table load factor (entries per
	// bucket) of the owning package's table for this diagram kind —
	// package state, not diagram state, but sampled here because the
	// per-level resolution only matters alongside the occupancy.
	UTLoad []float64 `json:"utLoad"`
}

// shapeWeightBucket maps a non-zero magnitude to its histogram bucket.
func shapeWeightBucket(m float64) int {
	k := math.Ilogb(m) + shapeWeightBucketBias
	if k < 0 {
		return 0
	}
	if k >= ShapeWeightBuckets {
		return ShapeWeightBuckets - 1
	}
	return k
}

// ShapeWeightBucketBounds renders bucket k's magnitude range, for
// table output and self-describing JSON consumers.
func ShapeWeightBucketBounds(k int) (lo, hi float64) {
	lo = math.Ldexp(1, k-shapeWeightBucketBias)
	hi = math.Ldexp(1, k-shapeWeightBucketBias+1)
	if k == 0 {
		lo = 0
	}
	if k == ShapeWeightBuckets-1 {
		hi = math.Inf(1)
	}
	return lo, hi
}

// finalize fills the derived fields shared by both walks.
func (s *ShapeProfile) finalize() {
	for v, n := range s.NodesPerLevel {
		s.Nodes += n
		s.Edges += s.EdgesPerLevel[v]
		if n > s.MaxLevelNodes {
			s.MaxLevelNodes = n
			s.WidestLevel = v
		}
	}
	if s.Nodes > 0 {
		s.SharingFactor = s.TreeNodes / float64(s.Nodes)
	}
}

// ShapeV profiles a vector diagram. The walk is read-only and costs
// O(nodes); it allocates the per-level slices and a path-count map,
// so sample it at a stride (MaybeShapeV) on hot paths.
func (p *Pkg) ShapeV(e VEdge) ShapeProfile {
	s := ShapeProfile{
		Kind:          "vector",
		Levels:        p.nqubits,
		NodesPerLevel: make([]int, p.nqubits),
		EdgesPerLevel: make([]int, p.nqubits),
		WeightHist:    make([]int, ShapeWeightBuckets),
		UTLoad:        make([]float64, p.nqubits),
	}
	for v := range p.vUnique {
		if b := len(p.vUnique[v].buckets); b > 0 {
			s.UTLoad[v] = float64(p.vUnique[v].count) / float64(b)
		}
	}
	if e.IsTerminal() {
		if e.W != 0 {
			s.Edges = 1
			s.WeightHist[shapeWeightBucket(cmplx.Abs(e.W))]++
		}
		return s
	}
	// Group the nodes by level; quasi-reduction puts every non-zero
	// child of a level-v node exactly at v-1, so a top-down sweep of
	// the level groups propagates path counts in one pass.
	byLevel := make([][]*VNode, p.nqubits)
	visitV(e.N, func(n *VNode) {
		byLevel[n.V] = append(byLevel[n.V], n)
		s.NodesPerLevel[n.V]++
		for i := range n.E {
			if c := n.E[i]; !c.IsZero() {
				s.EdgesPerLevel[n.V]++
				s.WeightHist[shapeWeightBucket(cmplx.Abs(c.W))]++
			}
		}
	})
	s.Edges++ // the root edge
	s.WeightHist[shapeWeightBucket(cmplx.Abs(e.W))]++
	paths := make(map[*VNode]float64, s.nodesTotal())
	paths[e.N] = 1
	for v := p.nqubits - 1; v >= 0; v-- {
		for _, n := range byLevel[v] {
			pn := paths[n]
			s.TreeNodes += pn
			for i := range n.E {
				if c := n.E[i]; !c.IsZero() && !c.IsTerminal() {
					paths[c.N] += pn
				}
			}
		}
	}
	s.finalize()
	return s
}

// ShapeM profiles a matrix diagram, additionally measuring the
// identity-padding fraction against the canonical identity chain.
// Looking the chain up interns it if the current generation has not
// built one yet — a handful of unique-table hits for any diagram that
// actually contains identity blocks, since canonicity already forced
// those blocks onto the chain nodes.
func (p *Pkg) ShapeM(e MEdge) ShapeProfile {
	s := ShapeProfile{
		Kind:          "matrix",
		Levels:        p.nqubits,
		NodesPerLevel: make([]int, p.nqubits),
		EdgesPerLevel: make([]int, p.nqubits),
		WeightHist:    make([]int, ShapeWeightBuckets),
		UTLoad:        make([]float64, p.nqubits),
	}
	for v := range p.mUnique {
		if b := len(p.mUnique[v].buckets); b > 0 {
			s.UTLoad[v] = float64(p.mUnique[v].count) / float64(b)
		}
	}
	if e.IsTerminal() {
		if e.W != 0 {
			s.Edges = 1
			s.WeightHist[shapeWeightBucket(cmplx.Abs(e.W))]++
		}
		return s
	}
	if p.nqubits > 0 {
		p.identNode(0) // ensure the chain is current before the walk
	}
	byLevel := make([][]*MNode, p.nqubits)
	visitM(e.N, func(n *MNode) {
		byLevel[n.V] = append(byLevel[n.V], n)
		s.NodesPerLevel[n.V]++
		for i := range n.E {
			if c := n.E[i]; !c.IsZero() {
				s.EdgesPerLevel[n.V]++
				s.WeightHist[shapeWeightBucket(cmplx.Abs(c.W))]++
			}
		}
	})
	s.Edges++
	s.WeightHist[shapeWeightBucket(cmplx.Abs(e.W))]++
	paths := make(map[*MNode]float64, s.nodesTotal())
	paths[e.N] = 1
	var identTree float64
	for v := p.nqubits - 1; v >= 0; v-- {
		for _, n := range byLevel[v] {
			pn := paths[n]
			s.TreeNodes += pn
			if n == p.identNodes[v] {
				identTree += pn
			}
			for i := range n.E {
				if c := n.E[i]; !c.IsZero() && !c.IsTerminal() {
					paths[c.N] += pn
				}
			}
		}
	}
	if s.TreeNodes > 0 {
		s.IdentityFraction = identTree / s.TreeNodes
	}
	s.finalize()
	return s
}

// nodesTotal sums NodesPerLevel before finalize has run.
func (s *ShapeProfile) nodesTotal() int {
	t := 0
	for _, n := range s.NodesPerLevel {
		t += n
	}
	return t
}

// SetShapeInterval sets the sampling stride for MaybeShapeV/M: a
// profile is computed and published every n calls. n ≤ 0 disables
// sampling (the default); the check then costs one branch and zero
// allocations. Like all Pkg mutators it must be called from the
// goroutine that owns the package.
func (p *Pkg) SetShapeInterval(n int) {
	p.shapeEvery = n
	p.shapeTick = 0
}

// ShapeInterval returns the current sampling stride.
func (p *Pkg) ShapeInterval() int { return p.shapeEvery }

// MaybeShapeV counts one step and, when the stride elapses, profiles
// e and publishes the result for LastShape readers. Reports whether a
// profile was taken.
func (p *Pkg) MaybeShapeV(e VEdge) bool {
	if p.shapeEvery <= 0 {
		return false
	}
	p.shapeTick++
	if p.shapeTick < p.shapeEvery {
		return false
	}
	p.shapeTick = 0
	p.PublishShapeV(e)
	return true
}

// MaybeShapeM is MaybeShapeV for matrix diagrams.
func (p *Pkg) MaybeShapeM(e MEdge) bool {
	if p.shapeEvery <= 0 {
		return false
	}
	p.shapeTick++
	if p.shapeTick < p.shapeEvery {
		return false
	}
	p.shapeTick = 0
	p.PublishShapeM(e)
	return true
}

// PublishShapeV profiles e and publishes the profile as the package's
// latest shape snapshot, returning it. Unlike MaybeShapeV it ignores
// the stride — callers use it to force a sample at session
// boundaries.
func (p *Pkg) PublishShapeV(e VEdge) ShapeProfile {
	s := p.ShapeV(e)
	p.shapeSeq++
	s.Seq = p.shapeSeq
	p.shapeSnap.Store(&s)
	return s
}

// PublishShapeM is PublishShapeV for matrix diagrams.
func (p *Pkg) PublishShapeM(e MEdge) ShapeProfile {
	s := p.ShapeM(e)
	p.shapeSeq++
	s.Seq = p.shapeSeq
	p.shapeSnap.Store(&s)
	return s
}

// LastShape returns the most recently published shape profile, or nil
// if none has been published. Safe to call from any goroutine; the
// returned profile is immutable and must not be modified.
func (p *Pkg) LastShape() *ShapeProfile {
	return p.shapeSnap.Load()
}
