package dd

import (
	"fmt"
	"math"
	"math/cmplx"
)

// ZeroState returns the decision diagram of the all-zero basis state
// |0…0⟩ over all qubits of the package.
func (p *Pkg) ZeroState() VEdge {
	e := VOne()
	for v := 0; v < p.nqubits; v++ {
		e = p.makeVNode(v, [2]VEdge{e, VZero()})
	}
	return e
}

// BasisState returns the DD of the computational basis state |i⟩,
// where bit q of index selects the branch of qubit q (big-endian
// |q_{n-1}…q_0⟩, so index 0b10 on two qubits is |10⟩).
func (p *Pkg) BasisState(index int64) VEdge {
	if index < 0 || index >= int64(1)<<uint(p.nqubits) {
		panic(fmt.Sprintf("dd: basis state %d out of range for %d qubits", index, p.nqubits))
	}
	e := VOne()
	for v := 0; v < p.nqubits; v++ {
		if index>>uint(v)&1 == 0 {
			e = p.makeVNode(v, [2]VEdge{e, VZero()})
		} else {
			e = p.makeVNode(v, [2]VEdge{VZero(), e})
		}
	}
	return e
}

// FromVector builds the DD of an arbitrary state vector of length 2^n
// by the recursive halving of Sec. III-A of the paper. The vector need
// not be normalized; the root weight absorbs the norm.
func (p *Pkg) FromVector(amps []complex128) (VEdge, error) {
	if len(amps) != 1<<uint(p.nqubits) {
		return VZero(), fmt.Errorf("dd: vector length %d does not match %d qubits (want %d)", len(amps), p.nqubits, 1<<uint(p.nqubits))
	}
	return p.fromVector(amps, p.nqubits-1), nil
}

func (p *Pkg) fromVector(amps []complex128, v Var) VEdge {
	if len(amps) == 1 {
		return VEdge{W: p.cn.Lookup(amps[0]), N: vTerminal}
	}
	half := len(amps) / 2
	lo := p.fromVector(amps[:half], v-1)
	hi := p.fromVector(amps[half:], v-1)
	return p.makeVNode(v, [2]VEdge{lo, hi})
}

// Amplitude reconstructs the amplitude ⟨index|e⟩ by multiplying the
// edge weights along the path selected by the index bits.
func Amplitude(e VEdge, index int64) complex128 {
	w := e.W
	n := e.N
	for n != vTerminal {
		if w == 0 {
			return 0
		}
		c := n.E[index>>uint(n.V)&1]
		w *= c.W
		n = c.N
	}
	return w
}

// Vector expands the diagram into a dense state vector of length 2^n.
// It is intended for tests and small visualization payloads; the
// expansion is exponential by nature.
func (p *Pkg) Vector(e VEdge) []complex128 {
	out := make([]complex128, 1<<uint(p.nqubits))
	fillVector(e.W, e.N, p.nqubits, 0, out)
	return out
}

func fillVector(w complex128, n *VNode, levels int, base int64, out []complex128) {
	if w == 0 {
		return
	}
	if n == vTerminal {
		out[base] = w
		return
	}
	fillVector(w*n.E[0].W, n.E[0].N, levels-1, base, out)
	fillVector(w*n.E[1].W, n.E[1].N, levels-1, base|1<<uint(n.V), out)
}

// Norm returns the 2-norm of the represented vector. Thanks to the
// 2-norm normalization scheme every node's sub-vector is a unit
// vector, so the norm is simply the root weight's magnitude.
func Norm(e VEdge) float64 {
	if e.IsZero() {
		return 0
	}
	return cmplx.Abs(e.W)
}

// InnerProduct computes ⟨a|b⟩ recursively with memoization.
func (p *Pkg) InnerProduct(a, b VEdge) complex128 {
	if a.IsZero() || b.IsZero() {
		return 0
	}
	return p.innerProduct(a, b, p.nqubits)
}

type fidKey struct {
	a, b *VNode
}

func (p *Pkg) innerProduct(a, b VEdge, levels int) complex128 {
	w := cmplx.Conj(a.W) * b.W
	if w == 0 {
		return 0
	}
	if levels == 0 {
		return w
	}
	p.stats.CacheLookups++
	key := fidKey{a.N, b.N}
	h := hashFid(key)
	if r, ok := p.fidCache.lookup(h, key, p.gen); ok {
		p.stats.CacheHits++
		return w * r
	}
	var sum complex128
	for i := 0; i < 2; i++ {
		ae := followV(a.N, i)
		be := followV(b.N, i)
		sum += p.innerProduct(VEdge{W: ae.W, N: ae.N}, VEdge{W: be.W, N: be.N}, levels-1)
	}
	p.fidCache.store(h, key, sum, p.gen, &p.stats)
	return w * sum
}

// followV returns branch i of n; for a zero stub (terminal reached
// early) it stays on the terminal with weight preserved so that the
// recursion depth stays aligned between operands.
func followV(n *VNode, i int) VEdge {
	if n == vTerminal {
		return VEdge{W: 1, N: vTerminal}
	}
	return n.E[i]
}

// Fidelity returns |⟨a|b⟩|² for unit vectors a and b.
func (p *Pkg) Fidelity(a, b VEdge) float64 {
	ip := p.InnerProduct(a, b)
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

// ApproxEqualV reports whether two diagrams represent the same vector
// up to the package tolerance (exact canonical diagrams satisfy a==b;
// this is the tolerant fallback used in tests).
func (p *Pkg) ApproxEqualV(a, b VEdge) bool {
	if a == b {
		return true
	}
	d := p.AddV(a, VEdge{W: -b.W, N: b.N})
	return Norm(d) <= math.Sqrt(p.cn.Tolerance())
}
