package dd

import (
	"fmt"
	"math/cmplx"
)

// Observables: expectation values of Pauli strings ⟨ϕ|P|ϕ⟩, the
// measurement quantities variational algorithms read off simulators.
// The operator is applied as a sequence of local gate diagrams (cheap:
// each is a 1- or 2-node DD), followed by one inner product.

var (
	pauliX = GateMatrix{0, 1, 1, 0}
	pauliY = GateMatrix{0, complex(0, -1), complex(0, 1), 0}
	pauliZ = GateMatrix{1, 0, 0, -1}
)

// ExpectationPauli computes ⟨e|P|e⟩ for a Pauli string such as "XIZY".
// The string is big-endian like the paper's kets: its first character
// acts on the most significant qubit q_{n-1}. 'I' positions are
// skipped. The state must be normalized for the textbook reading.
func (p *Pkg) ExpectationPauli(e VEdge, pauli string) (float64, error) {
	if len(pauli) != p.nqubits {
		return 0, fmt.Errorf("dd: Pauli string %q has length %d, want %d", pauli, len(pauli), p.nqubits)
	}
	applied := e
	for i, r := range pauli {
		q := p.nqubits - 1 - i // big-endian string position → qubit
		var g GateMatrix
		switch r {
		case 'I', 'i':
			continue
		case 'X', 'x':
			g = pauliX
		case 'Y', 'y':
			g = pauliY
		case 'Z', 'z':
			g = pauliZ
		default:
			return 0, fmt.Errorf("dd: invalid Pauli letter %q in %q", r, pauli)
		}
		applied = p.MultMV(p.MakeGateDD(g, q), applied)
	}
	ip := p.InnerProduct(e, applied)
	// Pauli strings are Hermitian: the expectation is real. Guard the
	// numerics and return the real part.
	if im := imag(ip); im > 1e-9 || im < -1e-9 {
		return 0, fmt.Errorf("dd: non-real expectation %v (state not normalized?)", ip)
	}
	return real(ip), nil
}

// ExpectationZAll returns ⟨Z_q⟩ for every qubit in one call — the
// Bloch z-profile shown next to the diagram.
func (p *Pkg) ExpectationZAll(e VEdge) []float64 {
	out := make([]float64, p.nqubits)
	for q := range out {
		out[q] = p.ExpectationZ(e, q)
	}
	return out
}

// Purity returns |⟨e|e⟩|² normalized — 1 for any normalized state; a
// quick sanity probe used in tests and the statistics panel.
func (p *Pkg) Purity(e VEdge) float64 {
	n := Norm(e)
	return cmplx.Abs(complex(n*n, 0))
}
