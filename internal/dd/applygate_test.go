package dd

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// randGateMatrix draws a 2×2 unitary from the gate families the
// differential tests must cover: Clifford+T plus parameterized
// rotations and phases.
func randGateMatrix(rng *rand.Rand) GateMatrix {
	sh := complex(math.Sqrt(0.5), 0)
	switch rng.Intn(8) {
	case 0:
		return gateX
	case 1:
		return gateZ
	case 2:
		return gateH
	case 3: // S
		return GateMatrix{1, 0, 0, complex(0, 1)}
	case 4: // T
		return GateMatrix{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}
	case 5: // RX(θ)
		th := rng.Float64() * 2 * math.Pi
		c, s := complex(math.Cos(th/2), 0), complex(0, -math.Sin(th/2))
		return GateMatrix{c, s, s, c}
	case 6: // RY(θ)
		th := rng.Float64() * 2 * math.Pi
		c, s := complex(math.Cos(th/2), 0), complex(math.Sin(th/2), 0)
		return GateMatrix{c, -s, s, c}
	default: // P(θ) up to Hadamard basis change
		th := rng.Float64() * 2 * math.Pi
		_ = sh
		return GateMatrix{1, 0, 0, cmplx.Exp(complex(0, th))}
	}
}

// randControls draws up to two control lines on qubits other than
// target, mixing positive and negative polarity, both above and below
// the target level.
func randControls(rng *rand.Rand, n, target int) []Control {
	var free []int
	for q := 0; q < n; q++ {
		if q != target {
			free = append(free, q)
		}
	}
	rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
	k := rng.Intn(3)
	if k > len(free) {
		k = len(free)
	}
	ctl := make([]Control, 0, k)
	for _, q := range free[:k] {
		ctl = append(ctl, Control{Qubit: q, Neg: rng.Intn(2) == 1})
	}
	return ctl
}

// randState builds a random sparse state vector: roughly a third of
// the amplitudes are hard zeros so the diagram carries zero stubs.
func randState(t *testing.T, p *Pkg, rng *rand.Rand, n int) VEdge {
	t.Helper()
	amps := make([]complex128, 1<<uint(n))
	nonzero := false
	for i := range amps {
		if rng.Float64() < 0.35 {
			continue
		}
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		nonzero = true
	}
	if !nonzero {
		amps[rng.Intn(len(amps))] = 1
	}
	e, err := p.FromVector(amps)
	if err != nil {
		t.Fatalf("FromVector: %v", err)
	}
	return e
}

// TestApplyGateMatchesGenericRandom is the core differential test: on
// random states over 1–10 qubits, ApplyGate must return exactly the
// canonical root edge that the generic MakeGateDD+MultMV path builds —
// pointer-identical node, identical weight — including multi-controlled
// gates with controls above and below the target.
func TestApplyGateMatchesGenericRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for n := 1; n <= 10; n++ {
		p := New(n)
		for trial := 0; trial < 12; trial++ {
			state := randState(t, p, rng, n)
			p.IncRefV(state)
			// Chain a few gates so later applications see non-trivial
			// diagram structure produced by earlier ones.
			for g := 0; g < 4; g++ {
				u := randGateMatrix(rng)
				target := rng.Intn(n)
				ctl := randControls(rng, n, target)
				want := p.MultMV(p.MakeGateDD(u, target, ctl...), state)
				got := p.ApplyGate(state, u, target, ctl...)
				if got != want {
					t.Fatalf("n=%d trial=%d gate=%d target=%d ctl=%v: kernel edge %v != generic %v",
						n, trial, g, target, ctl, got, want)
				}
				p.IncRefV(got)
				p.DecRefV(state)
				state = got
			}
			p.DecRefV(state)
		}
	}
}

// TestApplyGateControlsBelowTarget pins the trickiest kernel path —
// the active/inactive split when control lines sit below the target —
// on small hand-checkable cases.
func TestApplyGateControlsBelowTarget(t *testing.T) {
	p := New(3)
	plus := p.MultMV(p.MakeGateDD(gateH, 0), p.ZeroState())
	plus = p.MultMV(p.MakeGateDD(gateH, 1), plus)
	plus = p.MultMV(p.MakeGateDD(gateH, 2), plus)
	cases := []struct {
		u      GateMatrix
		target int
		ctl    []Control
	}{
		{gateX, 2, []Control{{Qubit: 0}}},
		{gateX, 2, []Control{{Qubit: 0, Neg: true}}},
		{gateZ, 2, []Control{{Qubit: 0}, {Qubit: 1, Neg: true}}},
		{gateH, 1, []Control{{Qubit: 0}, {Qubit: 2}}},
		{gateX, 1, []Control{{Qubit: 0, Neg: true}, {Qubit: 2, Neg: true}}},
	}
	for i, c := range cases {
		want := p.MultMV(p.MakeGateDD(c.u, c.target, c.ctl...), plus)
		got := p.ApplyGate(plus, c.u, c.target, c.ctl...)
		if got != want {
			t.Fatalf("case %d (target=%d ctl=%v): kernel %v != generic %v", i, c.target, c.ctl, got, want)
		}
	}
}

// TestApplyGateCheckedBudget drives the blow-up circuit through the
// kernel's checked variant: the budget must trip with the standard
// sentinel and leave the protected operand untouched.
func TestApplyGateCheckedBudget(t *testing.T) {
	const n, budget = 10, 200
	p := New(n)
	p.SetMaxNodes(budget)
	state := p.ZeroState()
	p.IncRefV(state)
	apply := func(u GateMatrix, target int, ctl ...Control) error {
		next, err := p.ApplyGateChecked(state, u, target, ctl...)
		if err != nil {
			return err
		}
		p.IncRefV(next)
		p.DecRefV(state)
		state = next
		return nil
	}
	var err error
	if err = apply(gateH, n-1); err == nil {
		for q := n - 2; q >= 0 && err == nil; q-- {
			err = apply(gateX, q, Control{Qubit: q + 1})
		}
		for q := 0; q < n && err == nil; q++ {
			err = apply(gateH, q)
		}
		k := 0
		for i := 0; i < n && err == nil; i++ {
			for j := i + 1; j < n && err == nil; j++ {
				k++
				err = apply(phaseGate(math.Pi/math.Sqrt(float64(k)+1.5)), j, Control{Qubit: i})
			}
		}
	}
	if err == nil {
		t.Fatalf("blow-up circuit finished without tripping the %d-node budget", budget)
	}
	if !errors.Is(err, ErrResourceExhausted) {
		t.Fatalf("error %v does not match ErrResourceExhausted", err)
	}
	// The operand survived the abort: it still renders to a unit vector.
	norm := 0.0
	for _, a := range p.Vector(state) {
		norm += real(a)*real(a) + imag(a)*imag(a)
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("operand corrupted by aborted op: |ψ|² = %v", norm)
	}
	// And the package stays usable for small follow-up kernel calls.
	out, err := p.ApplyGateChecked(p.ZeroState(), gateH, 0)
	if err != nil || SizeV(out) == 0 {
		t.Fatalf("small kernel op after abort failed: %v", err)
	}
}

// TestApplyGateCheckedMatchesUnchecked: without a budget the checked
// wrapper is a plain pass-through.
func TestApplyGateCheckedMatchesUnchecked(t *testing.T) {
	p := New(4)
	st := p.MultMV(p.MakeGateDD(gateH, 3), p.ZeroState())
	a := p.ApplyGate(st, gateX, 1, Control{Qubit: 3})
	b, err := p.ApplyGateChecked(st, gateX, 1, Control{Qubit: 3})
	if err != nil {
		t.Fatalf("checked kernel errored without a budget: %v", err)
	}
	if a != b {
		t.Fatal("checked and unchecked kernel results differ (canonicity violated)")
	}
}

// TestApplyGateStatsCounters: the kernel's compute-table traffic shows
// up in the dedicated Stats fields, and repeated applications hit.
func TestApplyGateStatsCounters(t *testing.T) {
	p := New(5)
	st := p.MultMV(p.MakeGateDD(gateH, 4), p.ZeroState())
	p.ApplyGate(st, gateX, 0, Control{Qubit: 4})
	after1 := p.Stats()
	if after1.ApplyCTLookups == 0 {
		t.Fatal("kernel recursion recorded no apply-table lookups")
	}
	p.ApplyGate(st, gateX, 0, Control{Qubit: 4})
	after2 := p.Stats()
	if after2.ApplyCTHits <= after1.ApplyCTHits {
		t.Fatalf("repeated application did not hit the apply table (hits %d -> %d)",
			after1.ApplyCTHits, after2.ApplyCTHits)
	}
}

// TestMakeGateDDCache: repeated requests for the same gate are served
// from the per-package cache (same canonical edge, counter moves), and
// a garbage collection invalidates the cached generation.
func TestMakeGateDDCache(t *testing.T) {
	p := New(4)
	a := p.MakeGateDD(gateX, 1, Control{Qubit: 3, Neg: true})
	hits0 := p.Stats().GateDDCacheHits
	b := p.MakeGateDD(gateX, 1, Control{Qubit: 3, Neg: true})
	if a != b {
		t.Fatal("cached gate DD differs from the first build")
	}
	if p.Stats().GateDDCacheHits != hits0+1 {
		t.Fatalf("GateDDCacheHits = %d, want %d", p.Stats().GateDDCacheHits, hits0+1)
	}
	p.GarbageCollect()
	c := p.MakeGateDD(gateX, 1, Control{Qubit: 3, Neg: true})
	if p.Stats().GateDDCacheHits != hits0+1 {
		t.Fatal("gate-DD cache served a stale post-GC entry")
	}
	// The rebuilt diagram is again canonical and cacheable.
	d := p.MakeGateDD(gateX, 1, Control{Qubit: 3, Neg: true})
	if c != d {
		t.Fatal("rebuilt gate DD not served from the refreshed cache")
	}
}

// TestApplyGateValidation mirrors MakeGateDD's operand validation.
func TestApplyGateValidation(t *testing.T) {
	p := New(3)
	st := p.ZeroState()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("target out of range", func() { p.ApplyGate(st, gateX, 3) })
	mustPanic("negative target", func() { p.ApplyGate(st, gateX, -1) })
	mustPanic("control equals target", func() { p.ApplyGate(st, gateX, 1, Control{Qubit: 1}) })
	mustPanic("duplicate control", func() {
		p.ApplyGate(st, gateX, 0, Control{Qubit: 1}, Control{Qubit: 1, Neg: true})
	})
	mustPanic("control out of range", func() { p.ApplyGate(st, gateX, 0, Control{Qubit: 7}) })
}
