package dd

// Property-based tests (testing/quick) of the algebraic invariants the
// decision-diagram engine must preserve: canonicity, linearity of
// addition, (anti)homomorphisms of multiplication and adjoint,
// unitarity/norm preservation, and the probability axioms of
// measurement.

import (
	"math"
	"math/cmplx"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomState draws a normalized random 2^n state vector.
func randomState(rng *rand.Rand, n int) []complex128 {
	amps := make([]complex128, 1<<uint(n))
	var norm float64
	for i := range amps {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	s := complex(1/math.Sqrt(norm), 0)
	for i := range amps {
		amps[i] *= s
	}
	return amps
}

// stateGen adapts randomState to testing/quick.
type stateGen struct {
	Amps []complex128
}

const propQubits = 3

func (stateGen) Generate(rng *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(stateGen{Amps: randomState(rng, propQubits)})
}

var quickCfg = &quick.Config{MaxCount: 60}

// TestPropCanonicity: building the same vector twice (or after an
// arbitrary global scalar that is later divided out) yields the
// identical node.
func TestPropCanonicity(t *testing.T) {
	p := New(propQubits)
	f := func(s stateGen, scaleRe, scaleIm float64) bool {
		e1, err := p.FromVector(s.Amps)
		if err != nil {
			return false
		}
		// Tame quick's arbitrary floats into a reasonable scalar range.
		if math.IsNaN(scaleRe) || math.IsInf(scaleRe, 0) {
			scaleRe = 1
		}
		if math.IsNaN(scaleIm) || math.IsInf(scaleIm, 0) {
			scaleIm = 0
		}
		scale := complex(math.Mod(scaleRe, 3), math.Mod(scaleIm, 3))
		if cmplx.Abs(scale) < 1e-3 {
			scale = 1
		}
		scaled := make([]complex128, len(s.Amps))
		for i, a := range s.Amps {
			scaled[i] = a * scale
		}
		e2, err := p.FromVector(scaled)
		if err != nil {
			return false
		}
		// The node must be shared; only the root weight differs.
		return e1.N == e2.N
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropAddLinear: Amplitude(a+b, i) = Amplitude(a, i) + Amplitude(b, i).
func TestPropAddLinear(t *testing.T) {
	p := New(propQubits)
	f := func(a, b stateGen) bool {
		ea, err1 := p.FromVector(a.Amps)
		eb, err2 := p.FromVector(b.Amps)
		if err1 != nil || err2 != nil {
			return false
		}
		sum := p.AddV(ea, eb)
		for i := int64(0); i < 1<<propQubits; i++ {
			want := a.Amps[i] + b.Amps[i]
			if cmplx.Abs(Amplitude(sum, i)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropAddCommutative: a+b == b+a (canonically identical edges).
func TestPropAddCommutative(t *testing.T) {
	p := New(propQubits)
	f := func(a, b stateGen) bool {
		ea, _ := p.FromVector(a.Amps)
		eb, _ := p.FromVector(b.Amps)
		ab := p.AddV(ea, eb)
		ba := p.AddV(eb, ea)
		if ab.N != ba.N {
			return false
		}
		return cmplx.Abs(ab.W-ba.W) <= 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// randomUnitary builds a random circuit's gate DD product.
func randomUnitary(p *Pkg, rng *rand.Rand, gates int) MEdge {
	u := p.Ident()
	n := p.Qubits()
	for i := 0; i < gates; i++ {
		var g MEdge
		target := rng.Intn(n)
		switch rng.Intn(5) {
		case 0:
			g = p.MakeGateDD(gateH, target)
		case 1:
			g = p.MakeGateDD(gateT, target)
		case 2:
			theta := rng.Float64() * 2 * math.Pi
			g = p.MakeGateDD(GateMatrix{1, 0, 0, cmplx.Exp(complex(0, theta))}, target)
		case 3:
			if n < 2 {
				g = p.MakeGateDD(gateX, target)
				break
			}
			c := rng.Intn(n)
			if c == target {
				c = (c + 1) % n
			}
			g = p.MakeGateDD(gateX, target, Control{Qubit: c})
		default:
			g = p.MakeGateDD(gateZ, target)
		}
		u = p.MultMM(g, u)
	}
	return u
}

// TestPropUnitaryPreservesNorm: applying any gate product preserves
// the 2-norm of any state.
func TestPropUnitaryPreservesNorm(t *testing.T) {
	p := New(propQubits)
	rng := rand.New(rand.NewSource(11))
	f := func(s stateGen) bool {
		e, err := p.FromVector(s.Amps)
		if err != nil {
			return false
		}
		u := randomUnitary(p, rng, 6)
		out := p.MultMV(u, e)
		return math.Abs(Norm(out)-Norm(e)) <= 1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropMultMatchesDense: DD matrix-vector product agrees with the
// dense computation entry-wise.
func TestPropMultMatchesDense(t *testing.T) {
	p := New(propQubits)
	rng := rand.New(rand.NewSource(13))
	f := func(s stateGen) bool {
		e, err := p.FromVector(s.Amps)
		if err != nil {
			return false
		}
		u := randomUnitary(p, rng, 5)
		out := p.MultMV(u, e)
		dense := p.Matrix(u)
		for i := int64(0); i < 1<<propQubits; i++ {
			var want complex128
			for j := int64(0); j < 1<<propQubits; j++ {
				want += dense[i][j] * s.Amps[j]
			}
			if cmplx.Abs(Amplitude(out, i)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropAdjointInvolution: (U†)† == U canonically, and U†·U == I.
func TestPropAdjointInvolution(t *testing.T) {
	p := New(propQubits)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 40; i++ {
		u := randomUnitary(p, rng, 7)
		ud := p.ConjTranspose(u)
		if back := p.ConjTranspose(ud); back != u {
			t.Fatalf("double adjoint differs at round %d", i)
		}
		if p.CheckIdentity(p.MultMM(ud, u)) == NotIdentity {
			t.Fatalf("U†U != I at round %d", i)
		}
	}
}

// TestPropMeasurementProbabilities: for every qubit, P0 + P1 == 1, and
// collapsing onto an outcome makes its probability 1.
func TestPropMeasurementProbabilities(t *testing.T) {
	p := New(propQubits)
	f := func(s stateGen, qRaw uint8) bool {
		q := int(qRaw) % propQubits
		e, err := p.FromVector(s.Amps)
		if err != nil {
			return false
		}
		p1 := p.ProbOne(e, q)
		if p1 < -1e-9 || p1 > 1+1e-9 {
			return false
		}
		// Cross-check against the dense definition.
		var dense float64
		for i, a := range s.Amps {
			if i>>uint(q)&1 == 1 {
				dense += real(a)*real(a) + imag(a)*imag(a)
			}
		}
		if math.Abs(p1-dense) > 1e-9 {
			return false
		}
		if p1 > 1e-6 {
			c, err := p.Collapse(e, q, 1)
			if err != nil {
				return false
			}
			if math.Abs(p.ProbOne(c, q)-1) > 1e-9 {
				return false
			}
			if math.Abs(Norm(c)-Norm(e)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropInnerProductMatchesDense: ⟨a|b⟩ agrees with the dense dot
// product; |⟨a|b⟩| obeys Cauchy-Schwarz.
func TestPropInnerProductMatchesDense(t *testing.T) {
	p := New(propQubits)
	f := func(a, b stateGen) bool {
		ea, _ := p.FromVector(a.Amps)
		eb, _ := p.FromVector(b.Amps)
		var want complex128
		for i := range a.Amps {
			want += cmplx.Conj(a.Amps[i]) * b.Amps[i]
		}
		got := p.InnerProduct(ea, eb)
		return cmplx.Abs(got-want) <= 1e-9 && cmplx.Abs(got) <= 1+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropKronFactorization: FromVector(a ⊗ b) == KronV(A, B).
func TestPropKronFactorization(t *testing.T) {
	pTop := New(2)
	pFull := New(4)
	rng := rand.New(rand.NewSource(19))
	for round := 0; round < 40; round++ {
		a := randomState(rng, 2)
		b := randomState(rng, 2)
		dense := make([]complex128, 16)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				dense[i*4+j] = a[i] * b[j]
			}
		}
		// Build the 2-qubit factors as sub-diagrams at levels 0..1 of
		// the 4-qubit package; KronV re-bases the upper factor.
		eb := pFull.fromVector(b, 1)
		ea := pFull.fromVector(a, 1)
		prod := pFull.KronV(ea, eb, 2)
		want, err := pFull.FromVector(dense)
		if err != nil {
			t.Fatal(err)
		}
		if prod.N != want.N || cmplx.Abs(prod.W-want.W) > 1e-9 {
			t.Fatalf("kron factorization differs at round %d", round)
		}
	}
	_ = pTop
}

// TestPropSamplingSupport: sampled indices always carry non-zero
// amplitude.
func TestPropSamplingSupport(t *testing.T) {
	p := New(propQubits)
	rng := rand.New(rand.NewSource(23))
	f := func(s stateGen) bool {
		e, err := p.FromVector(s.Amps)
		if err != nil {
			return false
		}
		for k := 0; k < 16; k++ {
			idx := Sample(e, rng)
			if cmplx.Abs(s.Amps[idx]) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropMultAssociative: (A·B)·C == A·(B·C) canonically.
func TestPropMultAssociative(t *testing.T) {
	p := New(propQubits)
	rng := rand.New(rand.NewSource(29))
	for round := 0; round < 25; round++ {
		a := randomUnitary(p, rng, 3)
		b := randomUnitary(p, rng, 3)
		c := randomUnitary(p, rng, 3)
		left := p.MultMM(p.MultMM(a, b), c)
		right := p.MultMM(a, p.MultMM(b, c))
		if left.N != right.N || cmplx.Abs(left.W-right.W) > 1e-9 {
			t.Fatalf("associativity failed at round %d", round)
		}
	}
}

// TestPropKronMixedProduct: (A⊗B)·(C⊗D) == (A·C)⊗(B·D).
func TestPropKronMixedProduct(t *testing.T) {
	pSmall := New(2)
	pBig := New(4)
	rng := rand.New(rand.NewSource(31))
	importTo := func(dst *Pkg, src *Pkg, m MEdge) MEdge {
		out, err := dst.FromMatrix(src.Matrix(m))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	_ = importTo
	for round := 0; round < 15; round++ {
		// Build 2-qubit operators as sub-diagrams of the 4-qubit package
		// via dense import at the bottom levels.
		mk := func() MEdge {
			u := randomUnitary(pSmall, rng, 3)
			dense := pSmall.Matrix(u)
			return pBig.fromMatrix(dense, 0, 0, 4, 1) // levels 0..1
		}
		a, b, c, d := mk(), mk(), mk(), mk()
		left := pBig.MultMM(pBig.KronM(a, b, 2), pBig.KronM(c, d, 2))
		right := pBig.KronM(pBig.MultMM(a, c), pBig.MultMM(b, d), 2)
		if left.N != right.N || cmplx.Abs(left.W-right.W) > 1e-9 {
			t.Fatalf("mixed-product property failed at round %d", round)
		}
	}
}

// TestPropTraceMultiplicativeUnderKron: tr(A⊗B) = tr(A)·tr(B).
func TestPropTraceMultiplicativeUnderKron(t *testing.T) {
	pSmall := New(2)
	pBig := New(4)
	rng := rand.New(rand.NewSource(37))
	for round := 0; round < 15; round++ {
		a := randomUnitary(pSmall, rng, 2)
		b := randomUnitary(pSmall, rng, 2)
		al := pBig.fromMatrix(pSmall.Matrix(a), 0, 0, 4, 1)
		bl := pBig.fromMatrix(pSmall.Matrix(b), 0, 0, 4, 1)
		prod := pBig.KronM(al, bl, 2)
		want := pBig.trace(al, map[*MNode]complex128{}) * pBig.trace(bl, map[*MNode]complex128{})
		got := pBig.Trace(prod)
		if cmplx.Abs(got-want) > 1e-9 {
			t.Fatalf("trace multiplicativity failed: %v vs %v", got, want)
		}
	}
}
