package dd

import (
	"math"
	"math/rand"
	"testing"
)

// lopsided builds a state with one dominant and one tiny branch on the
// top qubit: cos(ε)|0⟩⊗ψ₀ + sin(ε)|1⟩⊗ψ₁.
func lopsided(t *testing.T, p *Pkg, eps float64) VEdge {
	t.Helper()
	n := p.Qubits()
	amps := make([]complex128, 1<<uint(n))
	rng := rand.New(rand.NewSource(9))
	half := len(amps) / 2
	var n0, n1 float64
	for i := 0; i < half; i++ {
		amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		n0 += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
		amps[half+i] = complex(rng.NormFloat64(), rng.NormFloat64())
		n1 += real(amps[half+i])*real(amps[half+i]) + imag(amps[half+i])*imag(amps[half+i])
	}
	c0 := complex(math.Cos(eps)/math.Sqrt(n0), 0)
	c1 := complex(math.Sin(eps)/math.Sqrt(n1), 0)
	for i := 0; i < half; i++ {
		amps[i] *= c0
		amps[half+i] *= c1
	}
	e, err := p.FromVector(amps)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestApproximatePrunesTinyBranch(t *testing.T) {
	p := New(5)
	const eps = 0.01 // tiny |1…⟩ branch with probability sin²(0.01) ≈ 1e-4
	e := lopsided(t, p, eps)
	approx, fidelity, before, after := p.Approximate(e, 1e-3)
	if after >= before {
		t.Fatalf("no pruning: %d -> %d nodes", before, after)
	}
	// The tiny branch is gone: P(q4=1) becomes 0.
	if got := p.ProbOne(approx, 4); got > 1e-12 {
		t.Fatalf("pruned branch still has probability %v", got)
	}
	// Fidelity ≈ cos²(eps) ≈ 0.9999.
	want := math.Cos(eps) * math.Cos(eps)
	if math.Abs(fidelity-want) > 1e-6 {
		t.Fatalf("fidelity = %v, want ≈ %v", fidelity, want)
	}
	// The approximation is renormalized.
	if err := p.CheckUnitVector(approx); err != nil {
		t.Fatal(err)
	}
}

func TestApproximateNoOpBelowThreshold(t *testing.T) {
	p := New(3)
	bellLike := bellStateOn4(New(4))
	_ = bellLike
	e := p.MultMV(p.MakeGateDD(gateH, 2), p.ZeroState())
	approx, fidelity, before, after := p.Approximate(e, 1e-6)
	if approx != e {
		t.Fatalf("balanced state was modified (fidelity %v, %d->%d)", fidelity, before, after)
	}
	if fidelity < 1-1e-12 {
		t.Fatalf("fidelity = %v, want 1", fidelity)
	}
}

func TestApproximateZeroThreshold(t *testing.T) {
	p := New(2)
	e := bellState(t, p)
	approx, fidelity, _, _ := p.Approximate(e, 0)
	if approx != e || fidelity != 1 {
		t.Fatal("threshold 0 must be the identity transformation")
	}
}

func TestApproximateValidation(t *testing.T) {
	p := New(2)
	e := p.ZeroState()
	for _, bad := range []float64{-0.1, 1.0, 2.0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("threshold %v accepted", bad)
				}
			}()
			p.Approximate(e, bad)
		}()
	}
}

func TestApproximateFidelityMonotone(t *testing.T) {
	p := New(6)
	rng := rand.New(rand.NewSource(12))
	e, err := p.FromVector(randomState(rng, 6))
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, th := range []float64{1e-6, 1e-4, 1e-2, 0.05} {
		f := p.FidelityAfterPruning(e, th)
		if f > prev+1e-9 {
			t.Fatalf("fidelity increased with coarser threshold: %v -> %v at %v", prev, f, th)
		}
		prev = f
	}
	// Even aggressive pruning keeps a normalized state (or empties).
	approx, f, _, after := p.Approximate(e, 0.05)
	if after > 0 {
		if err := p.CheckUnitVector(approx); err != nil {
			t.Fatal(err)
		}
		if f <= 0 || f > 1+1e-9 {
			t.Fatalf("fidelity out of range: %v", f)
		}
	}
}
