package dd

import "fmt"

// Variable-order studies. Decision diagrams are canonical only "with
// respect to a given variable order and normalization scheme"
// (Sec. III-C), and the order can change the diagram size
// exponentially. Physically, representing the same state under the
// order that places qubit q at level perm[q] yields a diagram
// isomorphic to the one obtained by routing qubit values to their new
// positions with a SWAP network and keeping the natural order — so
// reordered sizes and a sifting heuristic can be computed with the
// existing gate machinery.

// ReorderedState returns the diagram representing the same state under
// the variable order that places qubit q at level perm[q] (the labels
// of the result are the new levels). perm must be a permutation.
func (p *Pkg) ReorderedState(e VEdge, perm []int) (VEdge, error) {
	if err := p.checkPerm(perm); err != nil {
		return VZero(), err
	}
	// Route values: value of qubit q must end up on wire perm[q].
	cur := make([]int, p.nqubits) // cur[wire] = original qubit living there
	pos := make([]int, p.nqubits) // pos[qubit] = wire
	for i := range cur {
		cur[i] = i
		pos[i] = i
	}
	out := e
	for q := 0; q < p.nqubits; q++ {
		want := perm[q]
		have := pos[q]
		if have == want {
			continue
		}
		out = p.MultMV(p.MakeSwapDD(have, want), out)
		other := cur[want]
		cur[want], cur[have] = q, other
		pos[q], pos[other] = want, have
	}
	return out, nil
}

// ReorderedSize reports the node count of the state under the given
// variable order without keeping the reordered diagram.
func (p *Pkg) ReorderedSize(e VEdge, perm []int) (int, error) {
	r, err := p.ReorderedState(e, perm)
	if err != nil {
		return 0, err
	}
	return SizeV(r), nil
}

// SiftOrder runs a greedy sifting heuristic: each qubit in turn is
// tried at every level (keeping the relative order of the others) and
// pinned at the position minimizing the diagram size. It returns the
// best order found (perm[q] = level of qubit q) and its node count.
// The search is O(n²) reorder evaluations.
func (p *Pkg) SiftOrder(e VEdge) ([]int, int, error) {
	n := p.nqubits
	// order[level] = qubit occupying that level, best-so-far.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	best, err := p.ReorderedSize(e, levelsOf(order))
	if err != nil {
		return nil, 0, err
	}
	for q := 0; q < n; q++ {
		bestPos := -1
		for target := 0; target < n; target++ {
			cand := moveQubit(order, q, target)
			size, err := p.ReorderedSize(e, levelsOf(cand))
			if err != nil {
				return nil, 0, err
			}
			if size < best {
				best = size
				bestPos = target
			}
		}
		if bestPos >= 0 {
			order = moveQubit(order, q, bestPos)
		}
	}
	return levelsOf(order), best, nil
}

// levelsOf converts an order list (order[level] = qubit) into the perm
// convention (perm[qubit] = level).
func levelsOf(order []int) []int {
	perm := make([]int, len(order))
	for level, q := range order {
		perm[q] = level
	}
	return perm
}

// moveQubit returns a copy of order with qubit q moved to the given
// level, shifting the others.
func moveQubit(order []int, q, target int) []int {
	out := make([]int, 0, len(order))
	for _, v := range order {
		if v != q {
			out = append(out, v)
		}
	}
	out = append(out, 0)
	copy(out[target+1:], out[target:])
	out[target] = q
	return out
}

func (p *Pkg) checkPerm(perm []int) error {
	if len(perm) != p.nqubits {
		return fmt.Errorf("dd: permutation has %d entries, want %d", len(perm), p.nqubits)
	}
	seen := make([]bool, p.nqubits)
	for _, v := range perm {
		if v < 0 || v >= p.nqubits || seen[v] {
			return fmt.Errorf("dd: %v is not a permutation of 0..%d", perm, p.nqubits-1)
		}
		seen[v] = true
	}
	return nil
}
