package dd

import (
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
)

func TestVectorSerializationRoundTrip(t *testing.T) {
	p := New(3)
	rng := rand.New(rand.NewSource(41))
	for round := 0; round < 20; round++ {
		e, err := p.FromVector(randomState(rng, 3))
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if err := p.WriteVector(&buf, e); err != nil {
			t.Fatal(err)
		}
		// Same package: must rebuild the identical canonical edge.
		back, err := p.ReadVector(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round %d: %v\n%s", round, err, buf.String())
		}
		if back.N != e.N || cmplx.Abs(back.W-e.W) > 1e-12 {
			t.Fatalf("round %d: canonical edge changed", round)
		}
		// Fresh package: amplitudes must agree.
		p2 := New(3)
		back2, err := p2.ReadVector(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 8; i++ {
			if cmplx.Abs(Amplitude(back2, i)-Amplitude(e, i)) > 1e-12 {
				t.Fatalf("round %d: amplitude %d differs", round, i)
			}
		}
	}
}

func TestVectorSerializationSpecialCases(t *testing.T) {
	p := New(2)
	// Zero vector.
	var buf strings.Builder
	if err := p.WriteVector(&buf, VZero()); err != nil {
		t.Fatal(err)
	}
	back, err := p.ReadVector(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsZero() {
		t.Fatalf("zero vector round trip: %+v", back)
	}
	// Bell state serializes shared nodes once.
	bell := bellState(t, p)
	buf.Reset()
	if err := p.WriteVector(&buf, bell); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\nn "); got+strings.Count(buf.String()[:2], "n ") > 3 {
		nodeLines := 0
		for _, l := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(l, "n ") {
				nodeLines++
			}
		}
		if nodeLines != 3 {
			t.Fatalf("bell serialization has %d node lines, want 3:\n%s", nodeLines, buf.String())
		}
	}
}

func TestMatrixSerializationRoundTrip(t *testing.T) {
	p := New(3)
	u := p.MultMM(p.MakeGateDD(gateT, 2, Control{Qubit: 0}),
		p.MultMM(p.MakeGateDD(gateH, 1), p.MakeGateDD(gateX, 0, Control{Qubit: 2})))
	var buf strings.Builder
	if err := p.WriteMatrix(&buf, u); err != nil {
		t.Fatal(err)
	}
	back, err := p.ReadMatrix(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N != u.N || cmplx.Abs(back.W-u.W) > 1e-12 {
		t.Fatal("matrix canonical edge changed")
	}
	// Fresh package entry check.
	p2 := New(3)
	back2, err := p2.ReadMatrix(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			if cmplx.Abs(MatrixEntry(back2, i, j)-MatrixEntry(u, i, j)) > 1e-12 {
				t.Fatalf("entry (%d,%d) differs", i, j)
			}
		}
	}
}

func TestSerializationErrors(t *testing.T) {
	p := New(2)
	cases := []string{
		"",
		"bogus header",
		"ddvec v1 3\nroot 1,0 T\n", // qubit mismatch
		"ddvec v1 2\nn 0 9 1,0 T 0,0 T\nroot 1,0 0\n",  // bad level
		"ddvec v1 2\nn 0 0 1,0 T 0,0 T\n",              // missing root
		"ddvec v1 2\nn 0 1 1,0 5 0,0 T\nroot 1,0 0\n",  // undefined child
		"ddvec v1 2\nn 0 0 x,y T 0,0 T\nroot 1,0 0\n",  // bad weight
		"ddvec v1 2\nwhat 1 2\n",                       // unknown record
		"ddvec v1 2\nn 0 0 1,0 T 0,0 T\nroot 1,0 77\n", // undefined root
	}
	for _, src := range cases {
		if _, err := p.ReadVector(strings.NewReader(src)); err == nil {
			t.Errorf("input %q accepted", src)
		}
	}
	if _, err := p.ReadMatrix(strings.NewReader("ddvec v1 2\n")); err == nil {
		t.Error("vector header accepted by matrix reader")
	}
}

func TestSerializationMergesAcrossStates(t *testing.T) {
	// Reading a diagram into a package that already holds parts of it
	// must share nodes (canonicity across deserialization).
	p := New(2)
	bell := bellState(t, p)
	var buf strings.Builder
	if err := p.WriteVector(&buf, bell); err != nil {
		t.Fatal(err)
	}
	p2 := New(2)
	other := bellState(t, p2) // independently built
	back, err := p2.ReadVector(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N != other.N {
		t.Fatal("deserialized diagram did not merge with existing nodes")
	}
}
