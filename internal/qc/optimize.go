package qc

// Optimize performs simple peephole optimizations on a circuit — the
// kind of rewriting whose correctness DD-based equivalence checking is
// meant to certify (Sec. III-C motivates verification with exactly
// such compilation/optimization flows):
//
//   - adjacent self-inverse gates on identical operands cancel
//     (X·X = H·H = CX·CX = SWAP·SWAP = I, …),
//   - adjacent inverse pairs cancel (S·S† = T·T† = V·V† = I,
//     P(θ)·P(−θ) = I, …),
//   - adjacent phase-family gates on the same operands merge into one
//     P gate (T·S = P(3π/4)), and rotations of the same axis add,
//   - gates that became P(0)/R(0) after merging are dropped.
//
// The pass iterates to a fixed point. Barriers, measurements, resets
// and classically-controlled gates are optimization fences.

import "math"

// Optimize returns an optimized copy of the circuit and the number of
// gates removed.
func Optimize(c *Circuit) (*Circuit, int) {
	ops := append([]Op(nil), c.Ops...)
	removedTotal := 0
	for {
		next, removed := optimizePass(ops)
		removedTotal += removed
		ops = next
		if removed == 0 {
			break
		}
	}
	out := New(c.NQubits, c.NClbits)
	out.Name = c.Name + "_opt"
	out.Ops = ops
	return out, removedTotal
}

func optimizePass(ops []Op) ([]Op, int) {
	var out []Op
	removed := 0
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		if len(out) == 0 || !mergeable(&out[len(out)-1], &op) {
			out = append(out, op)
			continue
		}
		prev := &out[len(out)-1]
		switch {
		case cancels(prev, &op):
			out = out[:len(out)-1]
			removed += 2
		case mergesToPhase(prev, &op):
			theta := phaseOf(prev) + phaseOf(&op)
			theta = normalizeAngle(theta)
			out = out[:len(out)-1]
			removed++
			if math.Abs(theta) > 1e-12 {
				merged := Op{Kind: KindGate, Gate: P, Params: []float64{theta},
					Targets:  append([]int(nil), op.Targets...),
					Controls: append([]Control(nil), op.Controls...)}
				out = append(out, merged)
			} else {
				removed++ // both gates gone
			}
		case mergesRotation(prev, &op):
			theta := prev.Params[0] + op.Params[0]
			gate := prev.Gate
			out = out[:len(out)-1]
			removed++
			if math.Abs(math.Mod(theta, 4*math.Pi)) > 1e-12 {
				merged := Op{Kind: KindGate, Gate: gate, Params: []float64{theta},
					Targets:  append([]int(nil), op.Targets...),
					Controls: append([]Control(nil), op.Controls...)}
				out = append(out, merged)
			} else {
				removed++
			}
		default:
			out = append(out, op)
		}
	}
	return out, removed
}

// mergeable reports whether two consecutive ops act on identical
// operands and are plain unitary gates.
func mergeable(a, b *Op) bool {
	if a.Kind != KindGate || b.Kind != KindGate || a.Cond != nil || b.Cond != nil {
		return false
	}
	if len(a.Targets) != len(b.Targets) || len(a.Controls) != len(b.Controls) {
		return false
	}
	for i := range a.Targets {
		if a.Targets[i] != b.Targets[i] {
			return false
		}
	}
	// Controls as sets (order-insensitive).
	ctl := map[Control]int{}
	for _, c := range a.Controls {
		ctl[c]++
	}
	for _, c := range b.Controls {
		if ctl[c] == 0 {
			return false
		}
		ctl[c]--
	}
	return true
}

// selfInverse lists the involutory gates.
func selfInverse(g Gate) bool {
	switch g {
	case I, X, Y, Z, H, Swap:
		return true
	}
	return false
}

// inversePairs maps each gate onto its named inverse.
var inversePairs = map[Gate]Gate{
	S: Sdg, Sdg: S, T: Tdg, Tdg: T, V: Vdg, Vdg: V, SX: SXdg, SXdg: SX,
}

func cancels(a, b *Op) bool {
	if selfInverse(a.Gate) && a.Gate == b.Gate {
		return true
	}
	if inversePairs[a.Gate] == b.Gate && b.Gate != GateNone {
		return true
	}
	// Parameterized inverses: P(θ)·P(−θ), R(θ)·R(−θ).
	switch a.Gate {
	case P, RX, RY, RZ:
		if a.Gate == b.Gate && math.Abs(normalizeAngle(a.Params[0]+b.Params[0])) < 1e-12 {
			return true
		}
	}
	return false
}

// phaseFamily reports whether g is diagonal diag(1, e^{iθ}).
func phaseFamily(g Gate) bool {
	switch g {
	case Z, S, Sdg, T, Tdg, P:
		return true
	}
	return false
}

func phaseOf(o *Op) float64 {
	switch o.Gate {
	case Z:
		return math.Pi
	case S:
		return math.Pi / 2
	case Sdg:
		return -math.Pi / 2
	case T:
		return math.Pi / 4
	case Tdg:
		return -math.Pi / 4
	case P:
		return o.Params[0]
	}
	panic("qc: not a phase gate")
}

func mergesToPhase(a, b *Op) bool {
	return phaseFamily(a.Gate) && phaseFamily(b.Gate)
}

func mergesRotation(a, b *Op) bool {
	if a.Gate != b.Gate {
		return false
	}
	switch a.Gate {
	case RX, RY, RZ:
		return true
	}
	return false
}

// normalizeAngle maps an angle into (-π, π] modulo 2π.
func normalizeAngle(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	if theta > math.Pi {
		theta -= 2 * math.Pi
	}
	if theta <= -math.Pi {
		theta += 2 * math.Pi
	}
	return theta
}
