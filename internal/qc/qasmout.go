package qc

import (
	"fmt"
	"strings"
)

// QASM serializes the circuit as an OpenQASM 2.0 program that the
// package's own parser (internal/qasm) accepts, enabling round trips
// between the tool's algorithm box and the IR.
func (c *Circuit) QASM() string {
	var b strings.Builder
	b.WriteString("OPENQASM 2.0;\n")
	b.WriteString("include \"qelib1.inc\";\n")
	fmt.Fprintf(&b, "qreg q[%d];\n", c.NQubits)
	if c.NClbits > 0 {
		fmt.Fprintf(&b, "creg c[%d];\n", c.NClbits)
	}
	for i := range c.Ops {
		op := c.Ops[i]
		// Negative controls have no qelib1 spelling; conjugate the
		// affected control qubits with X so the positive-control form
		// is equivalent.
		var negs []int
		for _, ctl := range op.Controls {
			if ctl.Neg {
				negs = append(negs, ctl.Qubit)
			}
		}
		if len(negs) > 0 && op.Kind == KindGate {
			pos := make([]Control, len(op.Controls))
			for j, ctl := range op.Controls {
				pos[j] = Control{Qubit: ctl.Qubit}
			}
			op.Controls = pos
			for _, q := range negs {
				fmt.Fprintf(&b, "x q[%d];\n", q)
			}
			if line, ok := qasmLine(&op); ok {
				b.WriteString(line)
				b.WriteByte('\n')
			} else {
				fmt.Fprintf(&b, "// unsupported op: %s\n", c.Ops[i].String())
			}
			for _, q := range negs {
				fmt.Fprintf(&b, "x q[%d];\n", q)
			}
			continue
		}
		line, ok := qasmLine(&op)
		if !ok {
			fmt.Fprintf(&b, "// unsupported op: %s\n", op.String())
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func qasmLine(o *Op) (string, bool) {
	switch o.Kind {
	case KindBarrier:
		return "barrier q;", true
	case KindMeasure:
		return fmt.Sprintf("measure q[%d] -> c[%d];", o.Targets[0], o.Cbit), true
	case KindReset:
		return fmt.Sprintf("reset q[%d];", o.Targets[0]), true
	}
	prefix := ""
	if o.Cond != nil {
		prefix = fmt.Sprintf("if (c==%d) ", o.Cond.Value)
	}
	name, ok := qasmGateName(o)
	if !ok {
		return "", false
	}
	args := make([]string, 0, len(o.Controls)+len(o.Targets))
	for _, c := range o.Controls {
		args = append(args, fmt.Sprintf("q[%d]", c.Qubit))
	}
	for _, t := range o.Targets {
		args = append(args, fmt.Sprintf("q[%d]", t))
	}
	params := ""
	if len(o.Params) > 0 {
		ps := make([]string, len(o.Params))
		for i, p := range o.Params {
			ps[i] = fmt.Sprintf("%.17g", p)
		}
		params = "(" + strings.Join(ps, ",") + ")"
	}
	return fmt.Sprintf("%s%s%s %s;", prefix, name, params, strings.Join(args, ",")), true
}

// qasmGateName maps an op onto a qelib1 gate name, handling the
// common controlled forms. Negative controls and deep control stacks
// have no qelib1 spelling and report false.
func qasmGateName(o *Op) (string, bool) {
	for _, c := range o.Controls {
		if c.Neg {
			return "", false
		}
	}
	base := o.Gate.String()
	switch len(o.Controls) {
	case 0:
		if o.Gate == U {
			return "u3", true
		}
		return base, true
	case 1:
		switch o.Gate {
		case X, Y, Z, H, Swap:
			return "c" + base, true
		case P:
			return "cp", true
		case RX, RY, RZ:
			return "c" + base, true
		}
	case 2:
		if o.Gate == X {
			return "ccx", true
		}
		if o.Gate == Swap {
			return "", false
		}
	}
	return "", false
}
