package qc

import (
	"strings"
	"testing"
)

func TestComputeStatsBellMeasured(t *testing.T) {
	c := New(2, 2)
	c.H(1).CX(1, 0).Barrier().Measure(0, 0).Measure(1, 1)
	st := ComputeStats(c)
	if st.Gates != 2 || st.Measurements != 2 || st.Barriers != 1 {
		t.Fatalf("counts wrong: %+v", st)
	}
	if st.TwoQubitGates != 1 {
		t.Fatalf("two-qubit gates = %d, want 1", st.TwoQubitGates)
	}
	if st.GateHistogram["h"] != 1 || st.GateHistogram["cx"] != 1 {
		t.Fatalf("histogram wrong: %v", st.GateHistogram)
	}
	// Depth: H(q1)=1, CX touches both → 2, barrier syncs, measures → 3.
	if st.Depth != 3 {
		t.Fatalf("depth = %d, want 3", st.Depth)
	}
	if !strings.Contains(st.String(), "gates: cx=1 h=1") {
		t.Fatalf("string rendering wrong:\n%s", st.String())
	}
}

func TestComputeStatsDepthParallelism(t *testing.T) {
	// Two disjoint single-qubit gates share a depth slot.
	c := New(2, 0)
	c.H(0).H(1)
	if d := ComputeStats(c).Depth; d != 1 {
		t.Fatalf("parallel depth = %d, want 1", d)
	}
	// Sequential on the same wire stack up.
	c2 := New(1, 0)
	c2.H(0).T(0).H(0)
	if d := ComputeStats(c2).Depth; d != 3 {
		t.Fatalf("sequential depth = %d, want 3", d)
	}
	// A barrier forces later ops past the deepest wire.
	c3 := New(2, 0)
	c3.H(0).H(0).Barrier().H(1)
	if d := ComputeStats(c3).Depth; d != 3 {
		t.Fatalf("barrier depth = %d, want 3", d)
	}
}

func TestComputeStatsControlsAndParams(t *testing.T) {
	c := New(3, 1)
	c.X(0, Control{Qubit: 1}, Control{Qubit: 2, Neg: true})
	c.Phase(0.5, 0)
	c.GateIf(X, nil, 1, []int{0}, 1)
	c.Reset(2)
	st := ComputeStats(c)
	if st.MaxControls != 2 || st.NegativeCtrls != 1 {
		t.Fatalf("control stats wrong: %+v", st)
	}
	if st.ParameterCount != 1 || st.Conditionals != 1 || st.Resets != 1 {
		t.Fatalf("misc stats wrong: %+v", st)
	}
	if st.GateHistogram["ccx"] != 1 {
		t.Fatalf("controlled histogram name wrong: %v", st.GateHistogram)
	}
}
