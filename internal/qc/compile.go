package qc

// Compilation to a restricted gate set. The paper's verification
// running example (Fig. 5) contrasts an abstract QFT — containing
// controlled phase gates and a SWAP, which "are not native to any
// current quantum computer" — with a compiled version built from
// single-qubit phase/Hadamard gates and CNOTs. CompileNative performs
// exactly these textbook decompositions:
//
//	CP(θ) c,t  →  P(θ/2) c;  CX c,t;  P(-θ/2) t;  CX c,t;  P(θ/2) t
//	SWAP a,b   →  CX a,b;  CX b,a;  CX a,b
//
// and emits a barrier after each decomposed source gate, reproducing
// the dashed synchronization lines of Fig. 5(b) that the alternating
// verification scheme of Ex. 12 steps between.

import "fmt"

// CompileOptions controls the CompileNative pass.
type CompileOptions struct {
	// EmitBarriers inserts a barrier after the lowering of each source
	// gate, as in Fig. 5(b). The barriers partition the compiled
	// circuit into groups that correspond 1:1 to the abstract gates,
	// which is what lets the verification walk of Ex. 12 apply "one
	// gate from Fig. 5(a), then all gates from Fig. 5(b) up to the
	// next barrier" and stay close to the identity.
	EmitBarriers bool
}

// CompileNative lowers controlled-phase and swap gates to the
// {1q gates, CX} native set. Other gates pass through unchanged.
// Gates with more than one control or with negative controls are
// rejected — they are outside the scope of this teaching pass.
func CompileNative(c *Circuit, opts CompileOptions) (*Circuit, error) {
	out := New(c.NQubits, c.NClbits)
	out.Name = c.Name + "_compiled"
	for i := range c.Ops {
		op := c.Ops[i]
		if _, err := compileOp(out, op); err != nil {
			return nil, fmt.Errorf("qc: op %d (%s): %w", i, op.String(), err)
		}
		if opts.EmitBarriers && op.Kind == KindGate {
			out.Barrier()
		}
	}
	return out, nil
}

// compileOp appends the lowering of op to out and reports whether the
// op was actually expanded (vs. copied through).
func compileOp(out *Circuit, op Op) (bool, error) {
	if op.Kind != KindGate {
		out.Append(op)
		return false, nil
	}
	for _, ctl := range op.Controls {
		if ctl.Neg {
			return false, fmt.Errorf("negative controls are not supported by CompileNative")
		}
	}
	switch {
	case op.Gate == Swap && len(op.Controls) == 0:
		a, b := op.Targets[0], op.Targets[1]
		out.CX(a, b).CX(b, a).CX(a, b)
		return true, nil
	case op.Gate == Swap:
		return false, fmt.Errorf("controlled swap lowering not supported")
	case len(op.Controls) == 0:
		out.Append(op)
		return false, nil
	case len(op.Controls) > 1:
		return false, fmt.Errorf("multi-controlled gates not supported by CompileNative")
	}
	ctl := op.Controls[0].Qubit
	tgt := op.Targets[0]
	switch op.Gate {
	case X:
		// CX is native.
		out.Append(op)
		return false, nil
	case P, S, Sdg, T, Tdg, Z:
		theta := phaseAngle(op.Gate, op.Params)
		out.Phase(theta/2, ctl)
		out.CX(ctl, tgt)
		out.Phase(-theta/2, tgt)
		out.CX(ctl, tgt)
		out.Phase(theta/2, tgt)
		return true, nil
	default:
		return false, fmt.Errorf("controlled %v lowering not supported", op.Gate)
	}
}

// phaseAngle maps diagonal phase-type gates onto their P(θ) angle.
func phaseAngle(g Gate, params []float64) float64 {
	switch g {
	case P:
		return params[0]
	case Z:
		return pi
	case S:
		return pi / 2
	case Sdg:
		return -pi / 2
	case T:
		return pi / 4
	case Tdg:
		return -pi / 4
	}
	panic(fmt.Sprintf("qc: gate %v is not a phase gate", g))
}

const pi = 3.14159265358979323846264338327950288
