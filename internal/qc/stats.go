package qc

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a circuit's composition — the numbers the tool's
// info panel and the CLI front ends report.
type Stats struct {
	NQubits        int
	NClbits        int
	Ops            int
	Gates          int // unitary gate applications
	TwoQubitGates  int // gates touching ≥2 qubits (controls included)
	Measurements   int
	Resets         int
	Barriers       int
	Conditionals   int            // classically-controlled gates
	Depth          int            // circuit depth over qubit wires
	GateHistogram  map[string]int // gate name → count (controls folded in)
	MaxControls    int
	NegativeCtrls  int
	ParameterCount int // total angle parameters
}

// ComputeStats scans the circuit once.
func ComputeStats(c *Circuit) Stats {
	st := Stats{
		NQubits:       c.NQubits,
		NClbits:       c.NClbits,
		Ops:           len(c.Ops),
		GateHistogram: map[string]int{},
	}
	// Depth: greedy wire scheduling — each op lands one past the
	// latest wire it touches (barriers synchronize all wires).
	wire := make([]int, c.NQubits)
	for i := range c.Ops {
		op := &c.Ops[i]
		switch op.Kind {
		case KindBarrier:
			st.Barriers++
			max := 0
			for _, w := range wire {
				if w > max {
					max = w
				}
			}
			for q := range wire {
				wire[q] = max
			}
			continue
		case KindMeasure:
			st.Measurements++
		case KindReset:
			st.Resets++
		case KindGate:
			st.Gates++
			name := op.Gate.String()
			for range op.Controls {
				name = "c" + name
			}
			st.GateHistogram[name]++
			if len(op.Controls) > st.MaxControls {
				st.MaxControls = len(op.Controls)
			}
			for _, ctl := range op.Controls {
				if ctl.Neg {
					st.NegativeCtrls++
				}
			}
			if len(op.Targets)+len(op.Controls) >= 2 {
				st.TwoQubitGates++
			}
			st.ParameterCount += len(op.Params)
			if op.Cond != nil {
				st.Conditionals++
			}
		}
		// Advance the touched wires.
		slot := 0
		touch := func(q int) {
			if wire[q] > slot {
				slot = wire[q]
			}
		}
		for _, t := range op.Targets {
			touch(t)
		}
		for _, ctl := range op.Controls {
			touch(ctl.Qubit)
		}
		slot++
		for _, t := range op.Targets {
			wire[t] = slot
		}
		for _, ctl := range op.Controls {
			wire[ctl.Qubit] = slot
		}
		if slot > st.Depth {
			st.Depth = slot
		}
	}
	return st
}

// String renders the statistics as a compact multi-line report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "qubits=%d clbits=%d ops=%d gates=%d depth=%d\n",
		s.NQubits, s.NClbits, s.Ops, s.Gates, s.Depth)
	fmt.Fprintf(&b, "two-qubit=%d measure=%d reset=%d barrier=%d conditional=%d\n",
		s.TwoQubitGates, s.Measurements, s.Resets, s.Barriers, s.Conditionals)
	if len(s.GateHistogram) > 0 {
		names := make([]string, 0, len(s.GateHistogram))
		for n := range s.GateHistogram {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("gates:")
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, s.GateHistogram[n])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
