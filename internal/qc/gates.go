// Package qc defines the quantum-circuit intermediate representation
// shared by the front ends (OpenQASM, RevLib .real), the simulation
// engine, the equivalence checker, and the visualization tool.
//
// A Circuit is a straight-line sequence of operations over a qubit
// register and a classical bit register, matching the expressiveness
// of the paper's tool: unitary gates (with positive/negative
// controls), plus the special operations barrier, measure, reset, and
// classically-controlled gates (Sec. IV-B).
package qc

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Gate enumerates the supported elementary gate kinds. All gates are
// single-qubit unitaries (possibly parameterized) except Swap, which
// is the only native two-target gate; multi-qubit behaviour otherwise
// comes from control lines.
type Gate int

const (
	// GateNone marks non-gate operations (barrier, measure, reset).
	GateNone Gate = iota
	I             // identity
	X             // Pauli-X (NOT; the ⊕ of circuit diagrams)
	Y             // Pauli-Y
	Z             // Pauli-Z
	H             // Hadamard
	S             // phase S = P(π/2)
	Sdg           // S†
	T             // T = P(π/4)
	Tdg           // T†
	V             // V = √X
	Vdg           // V†
	SX            // sqrt-X with global phase convention of OpenQASM
	SXdg          // SX†
	P             // phase gate P(θ) = diag(1, e^{iθ})
	RX            // rotation e^{-iθX/2}
	RY            // rotation e^{-iθY/2}
	RZ            // rotation e^{-iθZ/2}
	U             // generic U(θ,φ,λ) of OpenQASM
	Swap          // SWAP of two targets (the × — × of Fig. 5(a))
)

var gateNames = map[Gate]string{
	I: "id", X: "x", Y: "y", Z: "z", H: "h", S: "s", Sdg: "sdg",
	T: "t", Tdg: "tdg", V: "v", Vdg: "vdg", SX: "sx", SXdg: "sxdg",
	P: "p", RX: "rx", RY: "ry", RZ: "rz", U: "u", Swap: "swap",
}

// String returns the lower-case OpenQASM-style name of the gate.
func (g Gate) String() string {
	if s, ok := gateNames[g]; ok {
		return s
	}
	return fmt.Sprintf("gate(%d)", int(g))
}

// ParamCount reports how many angle parameters the gate takes.
func (g Gate) ParamCount() int {
	switch g {
	case P, RX, RY, RZ:
		return 1
	case U:
		return 3
	default:
		return 0
	}
}

const sqrtHalf = 0.70710678118654752440084436210484903928

// Matrix2 returns the 2×2 unitary of a single-qubit gate in row-major
// order [U00, U01, U10, U11]. It panics for Swap and GateNone.
func Matrix2(g Gate, params []float64) [4]complex128 {
	switch g {
	case I:
		return [4]complex128{1, 0, 0, 1}
	case X:
		return [4]complex128{0, 1, 1, 0}
	case Y:
		return [4]complex128{0, complex(0, -1), complex(0, 1), 0}
	case Z:
		return [4]complex128{1, 0, 0, -1}
	case H:
		return [4]complex128{complex(sqrtHalf, 0), complex(sqrtHalf, 0), complex(sqrtHalf, 0), complex(-sqrtHalf, 0)}
	case S:
		return [4]complex128{1, 0, 0, complex(0, 1)}
	case Sdg:
		return [4]complex128{1, 0, 0, complex(0, -1)}
	case T:
		return [4]complex128{1, 0, 0, cmplx.Exp(complex(0, math.Pi/4))}
	case Tdg:
		return [4]complex128{1, 0, 0, cmplx.Exp(complex(0, -math.Pi/4))}
	case V:
		// V = (1/2)[[1+i, 1-i],[1-i, 1+i]], V·V = X
		return [4]complex128{complex(0.5, 0.5), complex(0.5, -0.5), complex(0.5, -0.5), complex(0.5, 0.5)}
	case Vdg:
		return [4]complex128{complex(0.5, -0.5), complex(0.5, 0.5), complex(0.5, 0.5), complex(0.5, -0.5)}
	case SX:
		return [4]complex128{complex(0.5, 0.5), complex(0.5, -0.5), complex(0.5, -0.5), complex(0.5, 0.5)}
	case SXdg:
		return [4]complex128{complex(0.5, -0.5), complex(0.5, 0.5), complex(0.5, 0.5), complex(0.5, -0.5)}
	case P:
		return [4]complex128{1, 0, 0, cmplx.Exp(complex(0, params[0]))}
	case RX:
		c := complex(math.Cos(params[0]/2), 0)
		s := complex(0, -math.Sin(params[0]/2))
		return [4]complex128{c, s, s, c}
	case RY:
		c := complex(math.Cos(params[0]/2), 0)
		s := math.Sin(params[0] / 2)
		return [4]complex128{c, complex(-s, 0), complex(s, 0), c}
	case RZ:
		return [4]complex128{cmplx.Exp(complex(0, -params[0]/2)), 0, 0, cmplx.Exp(complex(0, params[0]/2))}
	case U:
		theta, phi, lambda := params[0], params[1], params[2]
		c := math.Cos(theta / 2)
		s := math.Sin(theta / 2)
		return [4]complex128{
			complex(c, 0),
			-cmplx.Exp(complex(0, lambda)) * complex(s, 0),
			cmplx.Exp(complex(0, phi)) * complex(s, 0),
			cmplx.Exp(complex(0, phi+lambda)) * complex(c, 0),
		}
	default:
		panic(fmt.Sprintf("qc: gate %v has no 2x2 matrix", g))
	}
}

// InverseGate returns the gate and parameters realizing the adjoint of
// g(params). Every supported gate has a closed-form inverse.
func InverseGate(g Gate, params []float64) (Gate, []float64) {
	switch g {
	case I, X, Y, Z, H, Swap:
		return g, nil
	case S:
		return Sdg, nil
	case Sdg:
		return S, nil
	case T:
		return Tdg, nil
	case Tdg:
		return T, nil
	case V:
		return Vdg, nil
	case Vdg:
		return V, nil
	case SX:
		return SXdg, nil
	case SXdg:
		return SX, nil
	case P, RX, RY, RZ:
		return g, []float64{-params[0]}
	case U:
		// U(θ,φ,λ)† = U(-θ,-λ,-φ)
		return U, []float64{-params[0], -params[2], -params[1]}
	default:
		panic(fmt.Sprintf("qc: gate %v has no inverse", g))
	}
}
