package qc

import (
	"testing"

	"quantumdd/internal/linalg"
)

func TestAppendCircuitAndPower(t *testing.T) {
	a := New(2, 0)
	a.H(0)
	b := New(2, 0)
	b.CX(0, 1)
	if err := a.AppendCircuit(b); err != nil {
		t.Fatal(err)
	}
	if a.NumGates() != 2 {
		t.Fatalf("append lost ops: %d gates", a.NumGates())
	}
	// X^2 = I.
	x := New(1, 0)
	x.X(0)
	sq, err := x.Power(2)
	if err != nil {
		t.Fatal(err)
	}
	u := denseFunctionality(t, sq)
	if !linalg.Equal(u, linalg.Identity(2), 1e-9) {
		t.Fatal("X^2 != I")
	}
	if _, err := x.Power(-1); err == nil {
		t.Fatal("negative power accepted")
	}
	wide := New(3, 0)
	if err := a.AppendCircuit(wide); err == nil {
		t.Fatal("wider circuit appended")
	}
}

func TestRemapValidation(t *testing.T) {
	c := New(3, 0)
	c.CX(0, 2)
	if _, err := c.Remap([]int{0, 1}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := c.Remap([]int{0, 0, 1}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	m, err := c.Remap([]int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	op := m.Ops[0]
	if op.Controls[0].Qubit != 2 || op.Targets[0] != 0 {
		t.Fatalf("remap wrong: %s", op.String())
	}
	// Deep copy: mutating the remapped op must not touch the original.
	m.Ops[0].Targets[0] = 1
	if c.Ops[0].Targets[0] != 2 {
		t.Fatal("remap shares target slices")
	}
}

func TestPermutationCircuit(t *testing.T) {
	perm := []int{2, 0, 1} // value on wire 0 goes to wire 2, etc.
	pc, err := PermutationCircuit(perm)
	if err != nil {
		t.Fatal(err)
	}
	u := denseFunctionality(t, pc)
	// Check action on basis states: bit b_i of the input appears at
	// position perm[i] of the output.
	for in := 0; in < 8; in++ {
		want := 0
		for i := 0; i < 3; i++ {
			if in>>uint(i)&1 == 1 {
				want |= 1 << uint(perm[i])
			}
		}
		found := false
		for out := 0; out < 8; out++ {
			v := u.At(out, in)
			if real(v) > 0.5 {
				if out != want {
					t.Fatalf("perm %v maps |%03b> to |%03b>, want |%03b>", perm, in, out, want)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("input %03b lost", in)
		}
	}
	if _, err := PermutationCircuit([]int{0, 0}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := PermutationCircuit(nil); err == nil {
		t.Fatal("empty permutation accepted")
	}
	// Identity permutation produces no gates.
	id, err := PermutationCircuit([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if id.NumGates() != 0 {
		t.Fatalf("identity permutation has %d gates", id.NumGates())
	}
}
