package qc

import (
	"math"
	"testing"

	"quantumdd/internal/linalg"
)

func TestOptimizeCancelsSelfInverse(t *testing.T) {
	c := New(2, 0)
	c.H(0).H(0).X(1).X(1).CX(0, 1).CX(0, 1).SwapGate(0, 1).SwapGate(0, 1)
	opt, removed := Optimize(c)
	if opt.NumGates() != 0 {
		t.Fatalf("%d gates survive, want 0:\n%s", opt.NumGates(), opt.String())
	}
	if removed != 8 {
		t.Fatalf("removed = %d, want 8", removed)
	}
}

func TestOptimizeCancelsInversePairs(t *testing.T) {
	c := New(1, 0)
	c.S(0).Gate(Sdg, nil, 0)
	c.T(0).Gate(Tdg, nil, 0)
	c.Phase(0.7, 0).Phase(-0.7, 0)
	c.Gate(RX, []float64{1.1}, 0).Gate(RX, []float64{-1.1}, 0)
	opt, _ := Optimize(c)
	if opt.NumGates() != 0 {
		t.Fatalf("%d gates survive, want 0:\n%s", opt.NumGates(), opt.String())
	}
}

func TestOptimizeMergesPhases(t *testing.T) {
	// T·S = P(3π/4).
	c := New(1, 0)
	c.T(0).S(0)
	opt, _ := Optimize(c)
	if opt.NumGates() != 1 {
		t.Fatalf("%d gates, want 1 merged phase", opt.NumGates())
	}
	op := opt.Ops[0]
	if op.Gate != P || math.Abs(op.Params[0]-3*math.Pi/4) > 1e-12 {
		t.Fatalf("merged gate wrong: %s", op.String())
	}
	// S·S·S·S = Z·Z = I: chains collapse entirely.
	c2 := New(1, 0)
	c2.S(0).S(0).S(0).S(0)
	opt2, _ := Optimize(c2)
	if opt2.NumGates() != 0 {
		t.Fatalf("S^4 did not cancel: %s", opt2.String())
	}
}

func TestOptimizeMergesRotations(t *testing.T) {
	c := New(1, 0)
	c.Gate(RY, []float64{0.4}, 0).Gate(RY, []float64{0.6}, 0)
	opt, _ := Optimize(c)
	if opt.NumGates() != 1 || math.Abs(opt.Ops[0].Params[0]-1.0) > 1e-12 {
		t.Fatalf("RY merge wrong: %s", opt.String())
	}
}

func TestOptimizeRespectsOperands(t *testing.T) {
	// Same gates on different qubits must not cancel.
	c := New(2, 0)
	c.H(0).H(1)
	opt, removed := Optimize(c)
	if removed != 0 || opt.NumGates() != 2 {
		t.Fatalf("cross-qubit cancellation: %s", opt.String())
	}
	// CX with swapped roles must not cancel.
	c2 := New(2, 0)
	c2.CX(0, 1).CX(1, 0)
	if _, removed := Optimize(c2); removed != 0 {
		t.Fatal("CX(0,1)·CX(1,0) wrongly cancelled")
	}
	// Controlled-P merges only with matching control sets.
	c3 := New(2, 0)
	c3.Phase(0.3, 1, Control{Qubit: 0}).Phase(0.4, 1, Control{Qubit: 0})
	opt3, _ := Optimize(c3)
	if opt3.NumGates() != 1 || len(opt3.Ops[0].Controls) != 1 {
		t.Fatalf("controlled phase merge wrong: %s", opt3.String())
	}
}

func TestOptimizeFences(t *testing.T) {
	// Barriers, measurements and conditions block cancellation.
	c := New(1, 1)
	c.H(0).Barrier().H(0)
	if _, removed := Optimize(c); removed != 0 {
		t.Fatal("cancellation across a barrier")
	}
	c2 := New(1, 1)
	c2.H(0).Measure(0, 0)
	c2.H(0)
	if _, removed := Optimize(c2); removed != 0 {
		t.Fatal("cancellation across a measurement")
	}
	c3 := New(1, 1)
	c3.GateIf(X, nil, 0, []int{0}, 1)
	c3.GateIf(X, nil, 0, []int{0}, 1)
	if _, removed := Optimize(c3); removed != 0 {
		t.Fatal("conditional gates wrongly cancelled")
	}
}

func TestOptimizePreservesFunctionality(t *testing.T) {
	// A redundant circuit must stay functionally identical (dense
	// check; the DD-based check lives in the verify tests).
	c := New(2, 0)
	c.H(0).T(0).T(0).Gate(Sdg, nil, 0).H(0) // T·T·S† = I between the Hs
	c.CX(0, 1).X(0).X(0).CX(0, 1)
	opt, removed := Optimize(c)
	if removed == 0 {
		t.Fatal("nothing optimized")
	}
	before := denseFunctionality(t, c)
	after := denseFunctionality(t, opt)
	if !linalg.EqualUpToGlobalPhase(after, before, 1e-9) {
		t.Fatal("optimization changed the functionality")
	}
	if opt.NumGates() >= c.NumGates() {
		t.Fatalf("no shrink: %d -> %d", c.NumGates(), opt.NumGates())
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := map[float64]float64{
		0:               0,
		math.Pi:         math.Pi,
		-math.Pi:        math.Pi,
		3 * math.Pi:     math.Pi,
		2 * math.Pi:     0,
		-math.Pi / 2:    -math.Pi / 2,
		5 * math.Pi / 2: math.Pi / 2,
	}
	for in, want := range cases {
		if got := normalizeAngle(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("normalizeAngle(%v) = %v, want %v", in, got, want)
		}
	}
}
