package qc

import (
	"fmt"
	"strings"
)

// OpKind distinguishes unitary gates from the special operations of
// Sec. IV-B of the paper, which do not correspond to a unitary matrix
// and act as breakpoints in the tool.
type OpKind int

const (
	KindGate    OpKind = iota // unitary gate application
	KindBarrier               // breakpoint, no semantic effect
	KindMeasure               // qubit → classical bit, collapses state
	KindReset                 // discard qubit, re-initialize to |0⟩
)

// Control is a control line of a gate: positive (•, active on |1⟩) or
// negative (○, active on |0⟩).
type Control struct {
	Qubit int
	Neg   bool
}

// Condition is an optional classical guard on a gate ("if (c==v) g"),
// the classically-controlled operations of OpenQASM the tool supports.
type Condition struct {
	// Bits lists the classical bit indices forming the compared
	// register value, least-significant first.
	Bits []int
	// Value the register must equal for the gate to fire.
	Value uint64
}

// Op is one operation of a circuit.
type Op struct {
	Kind     OpKind
	Gate     Gate      // valid when Kind == KindGate
	Params   []float64 // gate angle parameters
	Targets  []int     // 1 target, or 2 for Swap
	Controls []Control // control lines (gates only)
	Cond     *Condition
	Cbit     int    // measure destination classical bit
	Label    string // optional display label (e.g. barrier names)
}

// IsUnitary reports whether the operation corresponds to a unitary
// matrix (unconditioned gate).
func (o *Op) IsUnitary() bool { return o.Kind == KindGate && o.Cond == nil }

// IsSpecial reports whether the operation is one of the paper's
// "special operations" that act as breakpoints: barriers, measurements
// and resets (and classically-controlled gates, which depend on
// measurement results).
func (o *Op) IsSpecial() bool { return o.Kind != KindGate || o.Cond != nil }

// String renders the operation in OpenQASM-like syntax.
func (o *Op) String() string {
	switch o.Kind {
	case KindBarrier:
		return "barrier;"
	case KindMeasure:
		return fmt.Sprintf("measure q[%d] -> c[%d];", o.Targets[0], o.Cbit)
	case KindReset:
		return fmt.Sprintf("reset q[%d];", o.Targets[0])
	}
	var b strings.Builder
	if o.Cond != nil {
		fmt.Fprintf(&b, "if (c==%d) ", o.Cond.Value)
	}
	name := o.Gate.String()
	for _, c := range o.Controls {
		if c.Neg {
			name = "n" + name
		} else {
			name = "c" + name
		}
	}
	b.WriteString(name)
	if len(o.Params) > 0 {
		b.WriteByte('(')
		for i, p := range o.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%g", p)
		}
		b.WriteByte(')')
	}
	b.WriteByte(' ')
	first := true
	for _, c := range o.Controls {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "q[%d]", c.Qubit)
		first = false
	}
	for _, t := range o.Targets {
		if !first {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "q[%d]", t)
		first = false
	}
	b.WriteByte(';')
	return b.String()
}

// Circuit is a straight-line quantum program.
type Circuit struct {
	Name    string
	NQubits int
	NClbits int
	Ops     []Op
}

// New creates an empty circuit over nqubits qubits and nclbits
// classical bits.
func New(nqubits, nclbits int) *Circuit {
	if nqubits <= 0 {
		panic(fmt.Sprintf("qc: circuit needs at least one qubit, got %d", nqubits))
	}
	if nclbits < 0 {
		panic("qc: negative classical register size")
	}
	return &Circuit{NQubits: nqubits, NClbits: nclbits}
}

// NumGates counts the unitary gate operations (the "m" of
// G = g_0 … g_{m-1}); special operations are not counted.
func (c *Circuit) NumGates() int {
	n := 0
	for i := range c.Ops {
		if c.Ops[i].Kind == KindGate {
			n++
		}
	}
	return n
}

// HasNonUnitary reports whether the circuit contains measurements,
// resets or classically-controlled gates — circuits with those cannot
// be verified (Sec. IV-C) or inverted.
func (c *Circuit) HasNonUnitary() bool {
	for i := range c.Ops {
		o := &c.Ops[i]
		if o.Kind == KindMeasure || o.Kind == KindReset || o.Cond != nil {
			return true
		}
	}
	return false
}

func (c *Circuit) checkQubit(q int) {
	if q < 0 || q >= c.NQubits {
		panic(fmt.Sprintf("qc: qubit %d out of range [0,%d)", q, c.NQubits))
	}
}

func (c *Circuit) checkClbit(b int) {
	if b < 0 || b >= c.NClbits {
		panic(fmt.Sprintf("qc: classical bit %d out of range [0,%d)", b, c.NClbits))
	}
}

// Append adds a fully specified operation after validating its
// operands.
func (c *Circuit) Append(op Op) *Circuit {
	seen := map[int]bool{}
	for _, t := range op.Targets {
		c.checkQubit(t)
		if seen[t] {
			panic(fmt.Sprintf("qc: duplicate target qubit %d", t))
		}
		seen[t] = true
	}
	for _, ctl := range op.Controls {
		c.checkQubit(ctl.Qubit)
		if seen[ctl.Qubit] {
			panic(fmt.Sprintf("qc: control qubit %d overlaps another operand", ctl.Qubit))
		}
		seen[ctl.Qubit] = true
	}
	if op.Kind == KindGate {
		if want := op.Gate.ParamCount(); len(op.Params) != want {
			panic(fmt.Sprintf("qc: gate %v takes %d parameters, got %d", op.Gate, want, len(op.Params)))
		}
		wantTargets := 1
		if op.Gate == Swap {
			wantTargets = 2
		}
		if len(op.Targets) != wantTargets {
			panic(fmt.Sprintf("qc: gate %v takes %d targets, got %d", op.Gate, wantTargets, len(op.Targets)))
		}
	}
	if op.Kind == KindMeasure {
		c.checkClbit(op.Cbit)
	}
	if op.Cond != nil {
		for _, b := range op.Cond.Bits {
			c.checkClbit(b)
		}
	}
	c.Ops = append(c.Ops, op)
	return c
}

// Gate appends gate g(params) on target with optional controls.
func (c *Circuit) Gate(g Gate, params []float64, target int, controls ...Control) *Circuit {
	return c.Append(Op{Kind: KindGate, Gate: g, Params: params, Targets: []int{target}, Controls: controls})
}

// Convenience builders for the common gates.

// X appends a Pauli-X (optionally controlled) on qubit q.
func (c *Circuit) X(q int, ctl ...Control) *Circuit { return c.Gate(X, nil, q, ctl...) }

// Y appends a Pauli-Y (optionally controlled) on qubit q.
func (c *Circuit) Y(q int, ctl ...Control) *Circuit { return c.Gate(Y, nil, q, ctl...) }

// Z appends a Pauli-Z (optionally controlled) on qubit q.
func (c *Circuit) Z(q int, ctl ...Control) *Circuit { return c.Gate(Z, nil, q, ctl...) }

// H appends a Hadamard (optionally controlled) on qubit q.
func (c *Circuit) H(q int, ctl ...Control) *Circuit { return c.Gate(H, nil, q, ctl...) }

// S appends an S phase gate (optionally controlled) on qubit q.
func (c *Circuit) S(q int, ctl ...Control) *Circuit { return c.Gate(S, nil, q, ctl...) }

// T appends a T phase gate (optionally controlled) on qubit q.
func (c *Circuit) T(q int, ctl ...Control) *Circuit { return c.Gate(T, nil, q, ctl...) }

// CX appends a controlled-NOT with control ctrl and target tgt.
func (c *Circuit) CX(ctrl, tgt int) *Circuit { return c.X(tgt, Control{Qubit: ctrl}) }

// CCX appends a Toffoli gate.
func (c *Circuit) CCX(c1, c2, tgt int) *Circuit {
	return c.X(tgt, Control{Qubit: c1}, Control{Qubit: c2})
}

// Phase appends the phase gate P(theta) on q, optionally controlled —
// the controlled rotations "with an angle that is a certain fraction
// of π" of Ex. 10 (S = P(π/2), T = P(π/4)).
func (c *Circuit) Phase(theta float64, q int, ctl ...Control) *Circuit {
	return c.Gate(P, []float64{theta}, q, ctl...)
}

// Swap appends a SWAP of qubits a and b.
func (c *Circuit) SwapGate(a, b int, ctl ...Control) *Circuit {
	return c.Append(Op{Kind: KindGate, Gate: Swap, Targets: []int{a, b}, Controls: ctl})
}

// Barrier appends a breakpoint.
func (c *Circuit) Barrier() *Circuit { return c.Append(Op{Kind: KindBarrier}) }

// Measure appends a measurement of qubit q into classical bit b.
func (c *Circuit) Measure(q, b int) *Circuit {
	return c.Append(Op{Kind: KindMeasure, Targets: []int{q}, Cbit: b})
}

// Reset appends a reset of qubit q.
func (c *Circuit) Reset(q int) *Circuit {
	return c.Append(Op{Kind: KindReset, Targets: []int{q}})
}

// GateIf appends a classically-controlled gate guarded by the given
// classical bits equalling value.
func (c *Circuit) GateIf(g Gate, params []float64, target int, bits []int, value uint64, controls ...Control) *Circuit {
	return c.Append(Op{Kind: KindGate, Gate: g, Params: params, Targets: []int{target},
		Controls: controls, Cond: &Condition{Bits: bits, Value: value}})
}

// Inverse returns the adjoint circuit G⁻¹ (gates reversed and
// individually inverted), required by the advanced equivalence-
// checking scheme. It fails if the circuit contains non-unitary
// operations; barriers are preserved in reversed positions.
func (c *Circuit) Inverse() (*Circuit, error) {
	if c.HasNonUnitary() {
		return nil, fmt.Errorf("qc: circuit %q contains non-unitary operations and cannot be inverted", c.Name)
	}
	inv := New(c.NQubits, c.NClbits)
	inv.Name = c.Name + "_inv"
	for i := len(c.Ops) - 1; i >= 0; i-- {
		op := c.Ops[i]
		if op.Kind == KindBarrier {
			inv.Ops = append(inv.Ops, op)
			continue
		}
		g, params := InverseGate(op.Gate, op.Params)
		inv.Append(Op{Kind: KindGate, Gate: g, Params: params, Targets: op.Targets, Controls: op.Controls})
	}
	return inv, nil
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := New(c.NQubits, c.NClbits)
	out.Name = c.Name
	out.Ops = make([]Op, len(c.Ops))
	copy(out.Ops, c.Ops)
	for i := range out.Ops {
		op := &out.Ops[i]
		op.Params = append([]float64(nil), op.Params...)
		op.Targets = append([]int(nil), op.Targets...)
		op.Controls = append([]Control(nil), op.Controls...)
		if op.Cond != nil {
			cond := *op.Cond
			cond.Bits = append([]int(nil), cond.Bits...)
			op.Cond = &cond
		}
	}
	return out
}

// String renders the circuit as OpenQASM-like pseudo code.
func (c *Circuit) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s: %d qubits, %d clbits, %d ops\n", c.Name, c.NQubits, c.NClbits, len(c.Ops))
	for i := range c.Ops {
		b.WriteString(c.Ops[i].String())
		b.WriteByte('\n')
	}
	return b.String()
}
