package qc

import (
	"math"
	"strings"
	"testing"

	"quantumdd/internal/linalg"
)

const tol = 1e-10

func toMatrix(u [4]complex128) linalg.Matrix {
	return linalg.Matrix{N: 2, Data: []complex128{u[0], u[1], u[2], u[3]}}
}

func TestAllGateMatricesUnitary(t *testing.T) {
	gates := []struct {
		g      Gate
		params []float64
	}{
		{I, nil}, {X, nil}, {Y, nil}, {Z, nil}, {H, nil}, {S, nil}, {Sdg, nil},
		{T, nil}, {Tdg, nil}, {V, nil}, {Vdg, nil}, {SX, nil}, {SXdg, nil},
		{P, []float64{0.3}}, {RX, []float64{1.1}}, {RY, []float64{2.2}}, {RZ, []float64{-0.7}},
		{U, []float64{1.0, 0.5, -0.3}},
	}
	for _, g := range gates {
		m := toMatrix(Matrix2(g.g, g.params))
		if !linalg.IsUnitary(m, tol) {
			t.Errorf("gate %v is not unitary", g.g)
		}
	}
}

func TestGateAlgebraicIdentities(t *testing.T) {
	mul := func(a, b [4]complex128) linalg.Matrix { return linalg.Mul(toMatrix(a), toMatrix(b)) }
	id := linalg.Identity(2)
	// S·S = Z, T·T = S, V·V = X, H·H = I.
	if !linalg.Equal(mul(Matrix2(S, nil), Matrix2(S, nil)), toMatrix(Matrix2(Z, nil)), tol) {
		t.Error("S*S != Z")
	}
	if !linalg.Equal(mul(Matrix2(T, nil), Matrix2(T, nil)), toMatrix(Matrix2(S, nil)), tol) {
		t.Error("T*T != S")
	}
	if !linalg.Equal(mul(Matrix2(V, nil), Matrix2(V, nil)), toMatrix(Matrix2(X, nil)), tol) {
		t.Error("V*V != X")
	}
	if !linalg.Equal(mul(Matrix2(H, nil), Matrix2(H, nil)), id, tol) {
		t.Error("H*H != I")
	}
	// P(π/2) = S, P(π/4) = T (the paper's Ex. 10 notation).
	if !linalg.Equal(toMatrix(Matrix2(P, []float64{math.Pi / 2})), toMatrix(Matrix2(S, nil)), tol) {
		t.Error("P(π/2) != S")
	}
	if !linalg.Equal(toMatrix(Matrix2(P, []float64{math.Pi / 4})), toMatrix(Matrix2(T, nil)), tol) {
		t.Error("P(π/4) != T")
	}
	// U(θ,φ,λ) reduces to RY(θ) at φ=λ=0.
	if !linalg.Equal(toMatrix(Matrix2(U, []float64{1.3, 0, 0})), toMatrix(Matrix2(RY, []float64{1.3})), tol) {
		t.Error("U(θ,0,0) != RY(θ)")
	}
	// RZ differs from P by a global phase only.
	if !linalg.EqualUpToGlobalPhase(toMatrix(Matrix2(RZ, []float64{0.9})), toMatrix(Matrix2(P, []float64{0.9})), tol) {
		t.Error("RZ(θ) not equal to P(θ) up to phase")
	}
}

func TestInverseGateIsAdjoint(t *testing.T) {
	gates := []struct {
		g      Gate
		params []float64
	}{
		{X, nil}, {Y, nil}, {Z, nil}, {H, nil}, {S, nil}, {Sdg, nil},
		{T, nil}, {Tdg, nil}, {V, nil}, {Vdg, nil}, {SX, nil}, {SXdg, nil},
		{P, []float64{0.3}}, {RX, []float64{1.1}}, {RY, []float64{2.2}}, {RZ, []float64{-0.7}},
		{U, []float64{1.0, 0.5, -0.3}},
	}
	for _, g := range gates {
		gi, pi := InverseGate(g.g, g.params)
		prod := linalg.Mul(toMatrix(Matrix2(gi, pi)), toMatrix(Matrix2(g.g, g.params)))
		if !linalg.Equal(prod, linalg.Identity(2), tol) {
			t.Errorf("inverse of %v wrong: product %v", g.g, prod.Data)
		}
	}
}

func TestCircuitBuilderValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("no qubits", func() { New(0, 0) })
	c := New(2, 1)
	mustPanic("qubit range", func() { c.H(3) })
	mustPanic("control overlap", func() { c.X(0, Control{Qubit: 0}) })
	mustPanic("clbit range", func() { c.Measure(0, 5) })
	mustPanic("swap duplicate", func() { c.SwapGate(1, 1) })
	mustPanic("param count", func() { c.Gate(P, nil, 0) })
}

func TestCircuitCountsAndPredicates(t *testing.T) {
	c := New(2, 2)
	c.H(1).CX(1, 0).Barrier().Measure(0, 0)
	if got := c.NumGates(); got != 2 {
		t.Fatalf("NumGates = %d, want 2", got)
	}
	if !c.HasNonUnitary() {
		t.Fatal("measurement not flagged as non-unitary")
	}
	u := New(2, 0)
	u.H(0).Barrier()
	if u.HasNonUnitary() {
		t.Fatal("barrier wrongly flagged as non-unitary")
	}
}

func TestInverseCircuit(t *testing.T) {
	c := New(2, 0)
	c.H(1).Phase(math.Pi/4, 0, Control{Qubit: 1}).SwapGate(0, 1)
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if inv.NumGates() != c.NumGates() {
		t.Fatalf("inverse gate count mismatch")
	}
	// First inverse op must invert the last original op (swap).
	if inv.Ops[0].Gate != Swap {
		t.Fatalf("inverse op order wrong: first is %v", inv.Ops[0].Gate)
	}
	if inv.Ops[1].Gate != P || math.Abs(inv.Ops[1].Params[0]+math.Pi/4) > tol {
		t.Fatalf("inverse phase angle wrong: %+v", inv.Ops[1])
	}
	// Circuits with measurements cannot be inverted.
	m := New(1, 1)
	m.Measure(0, 0)
	if _, err := m.Inverse(); err == nil {
		t.Fatal("expected error inverting measured circuit")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(2, 1)
	c.Phase(0.5, 0, Control{Qubit: 1})
	c.GateIf(X, nil, 0, []int{0}, 1)
	d := c.Clone()
	d.Ops[0].Params[0] = 99
	d.Ops[1].Cond.Bits[0] = 0 // same value; mutate pointer target instead
	d.Ops[1].Cond.Value = 7
	if c.Ops[0].Params[0] == 99 {
		t.Fatal("params shared between clone and original")
	}
	if c.Ops[1].Cond.Value == 7 {
		t.Fatal("condition shared between clone and original")
	}
}

func TestCompileNativeSwap(t *testing.T) {
	c := New(2, 0)
	c.SwapGate(0, 1)
	out, err := CompileNative(c, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumGates() != 3 {
		t.Fatalf("swap lowering produced %d gates, want 3 CNOTs", out.NumGates())
	}
	for i := range out.Ops {
		if out.Ops[i].Gate != X || len(out.Ops[i].Controls) != 1 {
			t.Fatalf("swap lowering op %d is %v", i, out.Ops[i].String())
		}
	}
}

func TestCompileNativeControlledPhase(t *testing.T) {
	c := New(2, 0)
	c.Phase(math.Pi/2, 1, Control{Qubit: 0})
	out, err := CompileNative(c, CompileOptions{EmitBarriers: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumGates() != 5 {
		t.Fatalf("CP lowering produced %d gates, want 5", out.NumGates())
	}
	// Barrier after the expansion (Fig. 5(b)).
	if out.Ops[len(out.Ops)-1].Kind != KindBarrier {
		t.Fatal("missing barrier after expanded gate")
	}
	// Functional check against dense matrices.
	want := linalg.ExtendGate(2, Matrix2(P, []float64{math.Pi / 2}), 1, []int{0}, nil)
	got := denseFunctionality(t, out)
	if !linalg.EqualUpToGlobalPhase(got, want, tol) {
		t.Fatal("CP lowering functionally wrong")
	}
}

func TestCompileNativeRejects(t *testing.T) {
	c := New(3, 0)
	c.X(0, Control{Qubit: 1}, Control{Qubit: 2})
	if _, err := CompileNative(c, CompileOptions{}); err == nil {
		t.Fatal("expected error for multi-controlled gate")
	}
	n := New(2, 0)
	n.X(0, Control{Qubit: 1, Neg: true})
	if _, err := CompileNative(n, CompileOptions{}); err == nil {
		t.Fatal("expected error for negative control")
	}
}

// denseFunctionality multiplies out a circuit's gates densely.
func denseFunctionality(t *testing.T, c *Circuit) linalg.Matrix {
	t.Helper()
	u := linalg.Identity(1 << uint(c.NQubits))
	for i := range c.Ops {
		op := &c.Ops[i]
		if op.Kind != KindGate {
			continue
		}
		var pos []int
		for _, ctl := range op.Controls {
			if ctl.Neg {
				t.Fatal("dense helper does not support negative controls")
			}
			pos = append(pos, ctl.Qubit)
		}
		if op.Gate == Swap {
			a, b := op.Targets[0], op.Targets[1]
			x := Matrix2(X, nil)
			g1 := linalg.ExtendGate(c.NQubits, x, b, append(append([]int{}, pos...), a), nil)
			g2 := linalg.ExtendGate(c.NQubits, x, a, append(append([]int{}, pos...), b), nil)
			u = linalg.Mul(g1, linalg.Mul(g2, linalg.Mul(g1, u)))
			continue
		}
		g := linalg.ExtendGate(c.NQubits, Matrix2(op.Gate, op.Params), op.Targets[0], pos, nil)
		u = linalg.Mul(g, u)
	}
	return u
}

func TestOpString(t *testing.T) {
	c := New(2, 2)
	c.Phase(math.Pi/2, 1, Control{Qubit: 0})
	c.Measure(0, 1)
	c.Barrier()
	c.GateIf(X, nil, 0, []int{0}, 1)
	s := c.String()
	for _, want := range []string{"cp(", "measure q[0] -> c[1];", "barrier;", "if (c==1) x q[0];"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
}

func TestQASMRoundTrippableShape(t *testing.T) {
	c := New(3, 3)
	c.H(2).Phase(math.Pi/4, 2, Control{Qubit: 0}).CCX(1, 2, 0).SwapGate(0, 2)
	c.Barrier()
	c.Measure(2, 2)
	q := c.QASM()
	for _, want := range []string{
		"OPENQASM 2.0;", "qreg q[3];", "creg c[3];",
		"h q[2];", "cp(", "ccx q[1],q[2],q[0];", "cswap", // cswap? no — plain swap
	} {
		if want == "cswap" {
			continue
		}
		if !strings.Contains(q, want) {
			t.Errorf("QASM missing %q in:\n%s", want, q)
		}
	}
	if !strings.Contains(q, "swap q[0],q[2];") {
		t.Errorf("QASM missing swap line:\n%s", q)
	}
}

func TestGateStringAndParamCount(t *testing.T) {
	if X.String() != "x" || Sdg.String() != "sdg" || U.String() != "u" {
		t.Fatal("gate names wrong")
	}
	if U.ParamCount() != 3 || P.ParamCount() != 1 || H.ParamCount() != 0 {
		t.Fatal("param counts wrong")
	}
}
