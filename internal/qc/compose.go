package qc

import "fmt"

// Composition helpers: concatenation, powers, and qubit remapping —
// the building blocks of compilation flows (the paper's Sec. III-C
// lists "compilation, synthesis, transpilation, mapping" as the steps
// whose results need verification).

// AppendCircuit appends all operations of other to c. Register widths
// must be compatible (other may be narrower; its indices are used
// as-is).
func (c *Circuit) AppendCircuit(other *Circuit) error {
	if other.NQubits > c.NQubits || other.NClbits > c.NClbits {
		return fmt.Errorf("qc: cannot append %d-qubit/%d-clbit circuit onto %d/%d",
			other.NQubits, other.NClbits, c.NQubits, c.NClbits)
	}
	for i := range other.Ops {
		c.Append(other.Ops[i])
	}
	return nil
}

// Power returns the circuit repeated n times (n ≥ 0). For unitary
// circuits this realizes U^n; circuits with measurements repeat their
// measurements too.
func (c *Circuit) Power(n int) (*Circuit, error) {
	if n < 0 {
		return nil, fmt.Errorf("qc: negative power %d", n)
	}
	out := New(c.NQubits, c.NClbits)
	out.Name = fmt.Sprintf("%s_pow%d", c.Name, n)
	for i := 0; i < n; i++ {
		if err := out.AppendCircuit(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Remap returns a copy of the circuit with qubits renamed according to
// perm: the gate that acted on qubit q now acts on perm[q]. perm must
// be a permutation of 0..NQubits-1. This models the "mapping" step of
// compilation flows, where logical qubits are placed onto physical
// ones.
func (c *Circuit) Remap(perm []int) (*Circuit, error) {
	if len(perm) != c.NQubits {
		return nil, fmt.Errorf("qc: permutation has %d entries, want %d", len(perm), c.NQubits)
	}
	seen := make([]bool, c.NQubits)
	for _, p := range perm {
		if p < 0 || p >= c.NQubits || seen[p] {
			return nil, fmt.Errorf("qc: %v is not a permutation of 0..%d", perm, c.NQubits-1)
		}
		seen[p] = true
	}
	out := New(c.NQubits, c.NClbits)
	out.Name = c.Name + "_mapped"
	for i := range c.Ops {
		op := c.Ops[i]
		op.Targets = append([]int(nil), op.Targets...)
		for j, t := range op.Targets {
			op.Targets[j] = perm[t]
		}
		op.Controls = append([]Control(nil), op.Controls...)
		for j, ctl := range op.Controls {
			op.Controls[j] = Control{Qubit: perm[ctl.Qubit], Neg: ctl.Neg}
		}
		op.Params = append([]float64(nil), op.Params...)
		if op.Cond != nil {
			cond := *op.Cond
			cond.Bits = append([]int(nil), cond.Bits...)
			op.Cond = &cond
		}
		out.Append(op)
	}
	return out, nil
}

// PermutationCircuit builds a circuit of SWAP gates realizing the
// given qubit permutation (|q⟩ on wire i moves to wire perm[i]) — the
// bridge that makes a mapped circuit globally equivalent to the
// original: perm⁻¹ ∘ mapped ∘ perm == original.
func PermutationCircuit(perm []int) (*Circuit, error) {
	n := len(perm)
	if n == 0 {
		return nil, fmt.Errorf("qc: empty permutation")
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return nil, fmt.Errorf("qc: %v is not a permutation", perm)
		}
		seen[p] = true
	}
	c := New(n, 0)
	c.Name = "permutation"
	// Decompose into transpositions by cycle-walking a working copy.
	cur := make([]int, n) // cur[i] = value currently on wire i
	for i := range cur {
		cur[i] = i
	}
	pos := make([]int, n) // pos[v] = wire currently holding v
	for i, v := range cur {
		pos[v] = i
	}
	for wire := 0; wire < n; wire++ {
		want := inversePermValue(perm, wire)
		// Wire `wire` must end up holding the value v with perm[v] == wire.
		if cur[wire] == want {
			continue
		}
		src := pos[want]
		c.SwapGate(wire, src)
		// Update bookkeeping.
		cur[wire], cur[src] = cur[src], cur[wire]
		pos[cur[wire]] = wire
		pos[cur[src]] = src
	}
	return c, nil
}

func inversePermValue(perm []int, target int) int {
	for v, p := range perm {
		if p == target {
			return v
		}
	}
	return -1
}
