package verify

import (
	"errors"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
)

// recompileCX rewrites every singly-controlled X as H·CZ·H — a
// provably equivalent compilation, so (c, recompileCX(c)) forms an
// equivalent pair with different gate sequences, the shape the
// alternating scheme is designed for.
func recompileCX(c *qc.Circuit) *qc.Circuit {
	out := qc.New(c.NQubits, 0)
	out.Name = c.Name + "-recompiled"
	for i := range c.Ops {
		op := &c.Ops[i]
		if op.Kind == qc.KindGate && op.Gate == qc.X && len(op.Controls) == 1 && !op.Controls[0].Neg {
			t, ctl := op.Targets[0], op.Controls[0].Qubit
			out.H(t)
			out.Z(t, qc.Control{Qubit: ctl})
			out.H(t)
			continue
		}
		out.Ops = append(out.Ops, *op)
	}
	return out
}

// TestKernelMatchesGenericAllStrategies is the end-to-end differential
// test of the verify core: on one shared package (canonicity holds per
// package), the kernel route and the WithGenericMM oracle must agree
// on verdict, phase flag, AND the exact final root edge, for every
// strategy, on equivalent and non-equivalent pairs alike.
func TestKernelMatchesGenericAllStrategies(t *testing.T) {
	pairs := []struct {
		name   string
		c1, c2 *qc.Circuit
	}{
		{"qft5", algorithms.QFT(5), algorithms.QFTCompiled(5)},
		{"ghz7", algorithms.GHZ(7), recompileCX(algorithms.GHZ(7))},
		{"random6", algorithms.RandomCircuit(6, 4, 11), recompileCX(algorithms.RandomCircuit(6, 4, 11))},
	}
	for _, pair := range pairs {
		for _, s := range allStrategies {
			p := dd.New(pair.c1.NQubits)
			kr, err := CheckOn(p, pair.c1, pair.c2, s)
			if err != nil {
				t.Fatalf("%s/%v kernel: %v", pair.name, s, err)
			}
			gr, err := CheckOn(p, pair.c1, pair.c2, s, WithGenericMM())
			if err != nil {
				t.Fatalf("%s/%v generic: %v", pair.name, s, err)
			}
			if !kr.Equivalent || !gr.Equivalent {
				t.Fatalf("%s/%v: equivalent pair rejected (kernel=%v generic=%v)",
					pair.name, s, kr.Equivalent, gr.Equivalent)
			}
			if kr.UpToGlobalPhase != gr.UpToGlobalPhase {
				t.Fatalf("%s/%v: phase flags differ", pair.name, s)
			}
			if kr.Root != gr.Root {
				t.Fatalf("%s/%v: root edges differ: kernel (%v,%p) vs generic (%v,%p)",
					pair.name, s, kr.Root.W, kr.Root.N, gr.Root.W, gr.Root.N)
			}
			if kr.KernelOps == 0 || kr.GenericOps != 0 {
				t.Fatalf("%s/%v: kernel run counted kernel=%d generic=%d", pair.name, s, kr.KernelOps, kr.GenericOps)
			}
			if gr.GenericOps == 0 || gr.KernelOps != 0 {
				t.Fatalf("%s/%v: generic run counted kernel=%d generic=%d", pair.name, s, gr.KernelOps, gr.GenericOps)
			}
		}
	}
}

// TestKernelDetectsNonEquivalence: a mutated pair must be rejected
// identically by both engines, with identical final roots.
func TestKernelDetectsNonEquivalence(t *testing.T) {
	c1 := algorithms.QFT(4)
	c2 := algorithms.QFTCompiled(4)
	c2.X(2) // inject a fault
	for _, s := range allStrategies {
		p := dd.New(4)
		kr, err := CheckOn(p, c1, c2, s)
		if err != nil {
			t.Fatalf("%v kernel: %v", s, err)
		}
		gr, err := CheckOn(p, c1, c2, s, WithGenericMM())
		if err != nil {
			t.Fatalf("%v generic: %v", s, err)
		}
		if kr.Equivalent || gr.Equivalent {
			t.Fatalf("%v: faulty pair accepted (kernel=%v generic=%v)", s, kr.Equivalent, gr.Equivalent)
		}
		if kr.Root != gr.Root {
			t.Fatalf("%v: root edges differ on non-equivalent pair", s)
		}
	}
}

// TestKernelSwapOps: circuits containing SWAP route through the
// three-CNOT kernel decomposition and still match the generic path,
// which lowers SWAP via MakeSwapDD.
func TestKernelSwapOps(t *testing.T) {
	c1 := qc.New(4, 0)
	c1.Name = "swapped"
	c1.H(0)
	c1.SwapGate(0, 3)
	c1.X(1, qc.Control{Qubit: 3})
	c2 := qc.New(4, 0)
	c2.Name = "cx-form"
	c2.H(0)
	c2.X(3, qc.Control{Qubit: 0})
	c2.X(0, qc.Control{Qubit: 3})
	c2.X(3, qc.Control{Qubit: 0})
	c2.X(1, qc.Control{Qubit: 3})
	for _, s := range allStrategies {
		p := dd.New(4)
		kr, err := CheckOn(p, c1, c2, s)
		if err != nil {
			t.Fatalf("%v kernel: %v", s, err)
		}
		gr, err := CheckOn(p, c1, c2, s, WithGenericMM())
		if err != nil {
			t.Fatalf("%v generic: %v", s, err)
		}
		if !kr.Equivalent || kr.Root != gr.Root {
			t.Fatalf("%v: swap pair: equiv=%v rootsEqual=%v", s, kr.Equivalent, kr.Root == gr.Root)
		}
	}
}

// TestBuildFunctionalityKernel: the construction path through the
// kernel produces the same functionality diagram as the generic one.
func TestBuildFunctionalityKernel(t *testing.T) {
	c := algorithms.QFT(4)
	p := dd.New(4)
	uk, _, err := BuildFunctionality(p, c)
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	ug, _, err := BuildFunctionality(p, c, WithGenericMM())
	if err != nil {
		t.Fatalf("generic: %v", err)
	}
	if uk != ug {
		t.Fatalf("functionality diagrams differ between engines")
	}
}

// TestKernelBudgetPartialProgress: when the node budget runs out
// mid-build, both engines must surface dd.ErrResourceExhausted while
// keeping the per-step records accumulated before the failing gate —
// the partial-progress contract the web verify tab's undo relies on.
func TestKernelBudgetPartialProgress(t *testing.T) {
	c := algorithms.QFT(7)
	for _, generic := range []bool{false, true} {
		var opts []Option
		if generic {
			opts = append(opts, WithGenericMM())
		}
		p := dd.New(7)
		p.SetMaxNodes(40)
		_, recs, err := BuildFunctionality(p, c, opts...)
		if !errors.Is(err, dd.ErrResourceExhausted) {
			t.Fatalf("generic=%v: err = %v, want ErrResourceExhausted", generic, err)
		}
		if len(recs) == 0 {
			t.Fatalf("generic=%v: no partial step records survived the budget failure", generic)
		}
		for i, r := range recs {
			if r.Nodes <= 0 || r.Gate == "" {
				t.Fatalf("generic=%v: record %d degenerate: %+v", generic, i, r)
			}
		}
	}
}
