package verify

import (
	"math"
	"math/cmplx"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
)

func TestFindCounterexampleOnDifferingGates(t *testing.T) {
	p := dd.New(2)
	x0 := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.X, nil)), 0)
	x1 := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.X, nil)), 1)
	ce := FindCounterexample(p, x0, x1, 1e-9)
	if ce == nil {
		t.Fatal("no counterexample for X(q0) vs X(q1)")
	}
	a := dd.MatrixEntry(x0, ce.Row, ce.Col)
	b := dd.MatrixEntry(x1, ce.Row, ce.Col)
	if cmplx.Abs(a-b) < 1e-9 {
		t.Fatalf("witness entry does not differ: %v vs %v", a, b)
	}
	if ce.String() == "" {
		t.Fatal("empty witness rendering")
	}
}

func TestFindCounterexampleNilForEqual(t *testing.T) {
	p := dd.New(2)
	h := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.H, nil)), 1)
	if ce := FindCounterexample(p, h, h, 1e-9); ce != nil {
		t.Fatalf("counterexample for identical diagrams: %v", ce)
	}
}

func TestFindCounterexampleScalarDifference(t *testing.T) {
	p := dd.New(1)
	h := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(qc.H, nil)), 0)
	scaled := dd.MEdge{W: h.W * 2, N: h.N}
	ce := FindCounterexample(p, h, scaled, 1e-9)
	if ce == nil {
		t.Fatal("scalar difference not witnessed")
	}
}

func TestDiagnoseNonEquivalence(t *testing.T) {
	qft := algorithms.QFT(3)
	comp := algorithms.QFTCompiled(3)
	ok, overlap, ce, err := DiagnoseNonEquivalence(qft, comp)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || ce != nil {
		t.Fatalf("equivalent pair misdiagnosed: ok=%v ce=%v", ok, ce)
	}
	if math.Abs(overlap-1) > 1e-9 {
		t.Fatalf("HS overlap = %v, want 1", overlap)
	}
	// Break one gate.
	broken := algorithms.QFT(3)
	for i := range broken.Ops {
		if broken.Ops[i].Gate == qc.H {
			broken.Ops[i].Gate = qc.X
			break
		}
	}
	ok, overlap, ce, err = DiagnoseNonEquivalence(broken, comp)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("broken pair diagnosed as equivalent")
	}
	if overlap > 1-1e-6 {
		t.Fatalf("overlap of broken pair = %v, want < 1", overlap)
	}
	if ce == nil {
		t.Fatal("no counterexample extracted")
	}
	p := dd.New(3)
	u1, _, err := BuildFunctionality(p, broken)
	if err != nil {
		t.Fatal(err)
	}
	u2, _, err := BuildFunctionality(p, comp)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(dd.MatrixEntry(u1, ce.Row, ce.Col)-dd.MatrixEntry(u2, ce.Row, ce.Col)) < 1e-9 {
		t.Fatalf("extracted witness (%d,%d) does not actually differ", ce.Row, ce.Col)
	}
	// Width mismatch is rejected.
	if _, _, _, err := DiagnoseNonEquivalence(qc.New(2, 0), qc.New(3, 0)); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestDiagnoseGlobalPhasePair(t *testing.T) {
	a := qc.New(1, 0)
	a.Gate(qc.RZ, []float64{0.8}, 0)
	b := qc.New(1, 0)
	b.Phase(0.8, 0)
	ok, overlap, _, err := DiagnoseNonEquivalence(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("phase-equivalent pair not recognized (HS overlap is phase-invariant)")
	}
	if math.Abs(overlap-1) > 1e-9 {
		t.Fatalf("overlap = %v, want 1", overlap)
	}
}
