package verify

import (
	"math"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/linalg"
	"quantumdd/internal/qc"
)

var allStrategies = []Strategy{Construction, Sequential, OneToOne, Proportional, Lookahead}

// TestQFTEquivalenceAllStrategies reproduces Ex. 11: the abstract
// three-qubit QFT of Fig. 5(a) and its compiled version of Fig. 5(b)
// are equivalent under every strategy.
func TestQFTEquivalenceAllStrategies(t *testing.T) {
	qft := algorithms.QFT(3)
	comp := algorithms.QFTCompiled(3)
	for _, s := range allStrategies {
		res, err := Check(qft, comp, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !res.Equivalent {
			t.Fatalf("%v: circuits reported non-equivalent", s)
		}
	}
}

// TestEx12NodeCounts reproduces the headline numbers of Ex. 12: the
// proportional alternating scheme verifies the QFT against its
// compiled version within a maximum of 9 nodes, whereas building the
// entire system matrix requires 21 nodes.
func TestEx12NodeCounts(t *testing.T) {
	qft := algorithms.QFT(3)
	comp := algorithms.QFTCompiled(3)
	prop, err := Check(qft, comp, Proportional)
	if err != nil {
		t.Fatal(err)
	}
	if prop.PeakNodes != 9 {
		t.Fatalf("proportional peak = %d nodes, want 9 (Ex. 12)", prop.PeakNodes)
	}
	cons, err := Check(qft, comp, Construction)
	if err != nil {
		t.Fatal(err)
	}
	if cons.PeakNodes != 21 {
		t.Fatalf("construction peak = %d nodes, want 21 (Ex. 12)", cons.PeakNodes)
	}
	// The alternating scheme ends at the identity (3 nodes), "close to
	// the identity throughout the whole process" (Ex. 15).
	if prop.FinalNodes != 3 {
		t.Fatalf("final diagram has %d nodes, want identity with 3", prop.FinalNodes)
	}
}

// TestQFTFunctionalityMatrix reproduces Fig. 5(c)/Fig. 6: both QFT
// versions build the same canonical 21-node DD representing the 8×8
// ω-matrix.
func TestQFTFunctionalityMatrix(t *testing.T) {
	p := dd.New(3)
	u1, _, err := BuildFunctionality(p, algorithms.QFT(3))
	if err != nil {
		t.Fatal(err)
	}
	u2, _, err := BuildFunctionality(p, algorithms.QFTCompiled(3))
	if err != nil {
		t.Fatal(err)
	}
	if u1 != u2 {
		t.Fatal("canonical roots differ (Ex. 11 expects identical DDs)")
	}
	if got := dd.SizeM(u1); got != 21 {
		t.Fatalf("QFT3 functionality DD has %d nodes, want 21", got)
	}
	// Entry check against the dense QFT matrix.
	want := linalg.QFTMatrix(3)
	for i := int64(0); i < 8; i++ {
		for j := int64(0); j < 8; j++ {
			got := dd.MatrixEntry(u1, i, j)
			if d := got - want.At(int(i), int(j)); math.Abs(real(d)) > 1e-9 || math.Abs(imag(d)) > 1e-9 {
				t.Fatalf("QFT entry (%d,%d) = %v, want %v", i, j, got, want.At(int(i), int(j)))
			}
		}
	}
}

func TestNonEquivalenceDetected(t *testing.T) {
	qft := algorithms.QFT(3)
	broken := algorithms.QFT(3)
	// Flip one angle: a subtle compilation bug.
	for i := range broken.Ops {
		if broken.Ops[i].Gate == qc.P {
			broken.Ops[i].Params[0] *= -1
			break
		}
	}
	for _, s := range allStrategies {
		res, err := Check(qft, broken, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Equivalent {
			t.Fatalf("%v: broken circuit reported equivalent", s)
		}
	}
}

func TestGlobalPhaseDifference(t *testing.T) {
	// RZ(θ) = e^{-iθ/2} P(θ): equivalent only up to global phase.
	a := qc.New(1, 0)
	a.Gate(qc.RZ, []float64{1.3}, 0)
	b := qc.New(1, 0)
	b.Phase(1.3, 0)
	for _, s := range allStrategies {
		res, err := Check(a, b, s)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent || !res.UpToGlobalPhase {
			t.Fatalf("%v: want equivalence up to global phase, got %+v", s, res)
		}
	}
}

func TestEmptyVsIdentity(t *testing.T) {
	a := qc.New(2, 0)
	b := qc.New(2, 0)
	b.X(0).X(0) // X·X = I
	for _, s := range allStrategies {
		res, err := Check(a, b, s)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent || res.UpToGlobalPhase {
			t.Fatalf("%v: X X should be exactly the identity: %+v", s, res)
		}
	}
}

func TestMismatchedWidthsRejected(t *testing.T) {
	a := qc.New(2, 0)
	b := qc.New(3, 0)
	if _, err := Check(a, b, Construction); err == nil {
		t.Fatal("expected error for mismatched register widths")
	}
}

func TestNonUnitaryRejected(t *testing.T) {
	a := qc.New(1, 1)
	a.Measure(0, 0)
	b := qc.New(1, 1)
	if _, err := Check(a, b, Construction); err == nil {
		t.Fatal("expected error for measured circuit")
	}
	if _, err := Check(a, b, Proportional); err == nil {
		t.Fatal("expected error for measured circuit (alternating)")
	}
	if _, _, err := SimulationCheck(a, b, 4, 1); err == nil {
		t.Fatal("expected error for measured circuit (simulation)")
	}
}

func TestScheduleProperties(t *testing.T) {
	for _, s := range []Strategy{Sequential, OneToOne, Proportional} {
		for _, sizes := range [][2]int{{7, 21}, {1, 10}, {10, 1}, {5, 5}, {0, 3}, {3, 0}} {
			sched := schedule(s, sizes[0], sizes[1])
			if len(sched) != sizes[0]+sizes[1] {
				t.Fatalf("%v %v: schedule length %d", s, sizes, len(sched))
			}
			var a, b int
			for _, left := range sched {
				if left {
					a++
				} else {
					b++
				}
			}
			if a != sizes[0] || b != sizes[1] {
				t.Fatalf("%v %v: schedule counts %d/%d", s, sizes, a, b)
			}
		}
	}
	// Proportional with a 1:3 ratio interleaves 1 then 3 (Ex. 12).
	sched := schedule(Proportional, 7, 21)
	if !sched[0] || sched[1] || sched[2] || sched[3] || !sched[4] {
		t.Fatalf("proportional 7:21 schedule wrong prefix: %v", sched[:5])
	}
}

func TestTraceRecordsSidesAndNodes(t *testing.T) {
	res, err := Check(algorithms.QFT(3), algorithms.QFTCompiled(3), Proportional)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 28 {
		t.Fatalf("trace length %d, want 28 (7 + 21 gates)", len(res.Trace))
	}
	var left, right int
	for _, r := range res.Trace {
		switch r.Side {
		case "G":
			left++
		case "G'":
			right++
		default:
			t.Fatalf("unexpected side %q", r.Side)
		}
		if r.Nodes <= 0 {
			t.Fatalf("trace record without node count: %+v", r)
		}
	}
	if left != 7 || right != 21 {
		t.Fatalf("trace sides %d/%d, want 7/21", left, right)
	}
}

func TestSimulationCheckFindsCounterexample(t *testing.T) {
	a := qc.New(3, 0)
	a.X(0)
	b := qc.New(3, 0)
	b.X(1)
	ok, _, err := SimulationCheck(a, b, 16, 99)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("simulation check missed an obvious difference")
	}
	ok, _, err = SimulationCheck(algorithms.QFT(3), algorithms.QFTCompiled(3), 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("simulation check falsified equivalent circuits")
	}
}

func TestLargerQFTAllStrategies(t *testing.T) {
	qft := algorithms.QFT(5)
	comp := algorithms.QFTCompiled(5)
	for _, s := range []Strategy{Proportional, Lookahead} {
		res, err := Check(qft, comp, s)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("%v: QFT5 reported non-equivalent", s)
		}
		cons, err := Check(qft, comp, Construction)
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakNodes >= cons.PeakNodes {
			t.Fatalf("%v: alternating peak %d not below construction peak %d", s, res.PeakNodes, cons.PeakNodes)
		}
	}
}

func TestRandomCircuitSelfEquivalence(t *testing.T) {
	// A circuit is equivalent to itself under every strategy, and to
	// its double inverse.
	c := algorithms.RandomCircuit(4, 4, 3)
	inv, err := c.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	invinv, err := inv.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range allStrategies {
		res, err := Check(c, invinv, s)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("%v: circuit not equivalent to its double inverse", s)
		}
	}
}

// TestOptimizerCertification: DD-based equivalence checking certifies
// the qc.Optimize pass on random circuits — the compilation-flow
// verification scenario that motivates Sec. III-C.
func TestOptimizerCertification(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		c := algorithms.RandomCircuit(4, 5, seed)
		// Inject redundancy so the optimizer has work to do.
		c.H(0)
		c.H(0)
		c.T(1)
		c.Gate(qc.Tdg, nil, 1)
		opt, _ := qc.Optimize(c)
		res, err := Check(c, opt, Proportional)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equivalent {
			t.Fatalf("seed %d: optimizer broke the circuit", seed)
		}
	}
}

// TestCompilePassCertification: CompileNative on random CP/SWAP-heavy
// circuits is certified equivalent by the alternating scheme — the
// Fig. 5 scenario generalized beyond the QFT.
func TestCompilePassCertification(t *testing.T) {
	rng := newSplitMix(1234)
	for round := 0; round < 6; round++ {
		c := qc.New(4, 0)
		for g := 0; g < 12; g++ {
			switch rng.next() % 4 {
			case 0:
				c.H(int(rng.next() % 4))
			case 1:
				a := int(rng.next() % 4)
				b := (a + 1 + int(rng.next()%3)) % 4
				theta := float64(rng.next()%16+1) / 16 * 3.14159
				c.Phase(theta, a, qc.Control{Qubit: b})
			case 2:
				a := int(rng.next() % 4)
				b := (a + 1 + int(rng.next()%3)) % 4
				c.SwapGate(a, b)
			default:
				c.T(int(rng.next() % 4))
			}
		}
		compiled, err := qc.CompileNative(c, qc.CompileOptions{EmitBarriers: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Strategy{Proportional, Lookahead} {
			res, err := Check(c, compiled, s)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equivalent {
				t.Fatalf("round %d strategy %v: compilation broke the circuit", round, s)
			}
		}
	}
}

// TestMappedCircuitEquivalence: a qubit-mapped circuit (the "mapping"
// step of compilation flows) is equivalent to the original once
// conjugated with the wire permutation realized as SWAPs.
func TestMappedCircuitEquivalence(t *testing.T) {
	orig := algorithms.QFT(3)
	perm := []int{2, 0, 1}
	mapped, err := orig.Remap(perm)
	if err != nil {
		t.Fatal(err)
	}
	p, err := qc.PermutationCircuit(perm)
	if err != nil {
		t.Fatal(err)
	}
	inv := []int{0, 0, 0}
	for v, to := range perm {
		inv[to] = v
	}
	pInv, err := qc.PermutationCircuit(inv)
	if err != nil {
		t.Fatal(err)
	}
	combined := qc.New(3, 0)
	if err := combined.AppendCircuit(p); err != nil {
		t.Fatal(err)
	}
	if err := combined.AppendCircuit(mapped); err != nil {
		t.Fatal(err)
	}
	if err := combined.AppendCircuit(pInv); err != nil {
		t.Fatal(err)
	}
	res, err := Check(combined, orig, Proportional)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		// Try the opposite conjugation order to pin the convention.
		other := qc.New(3, 0)
		_ = other.AppendCircuit(pInv)
		_ = other.AppendCircuit(mapped)
		_ = other.AppendCircuit(p)
		res2, err := Check(other, orig, Proportional)
		if err != nil {
			t.Fatal(err)
		}
		if !res2.Equivalent {
			t.Fatal("mapped circuit not equivalent under either conjugation")
		}
		t.Fatal("conjugation convention flipped: PermutationCircuit documentation is wrong")
	}
	// Sanity: the mapped circuit alone is NOT equivalent.
	alone, err := Check(mapped, orig, Proportional)
	if err != nil {
		t.Fatal(err)
	}
	if alone.Equivalent {
		t.Fatal("mapped circuit wrongly equivalent without conjugation")
	}
}
