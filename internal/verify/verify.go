// Package verify implements DD-based equivalence checking of quantum
// circuits (Sec. III-C and IV-C of the paper).
//
// Two approaches are provided. The construction approach builds the
// full functionality U of each circuit as a matrix DD and compares the
// canonical root edges. The advanced alternating approach (Burgholzer
// & Wille, TCAD 2021) exploits reversibility: if G ≡ G′ then
// G′⁻¹·G = I, so one starts from the identity DD and alternately
// applies gates of G from one side and inverted gates of G′ from the
// other; with a good application strategy the intermediate diagram
// stays close to the identity throughout (Ex. 12: a 9-node peak
// instead of 21 nodes for the full QFT system matrix).
package verify

import (
	"context"
	"fmt"

	"quantumdd/internal/dd"
	"quantumdd/internal/obs/trace"
	"quantumdd/internal/qc"
)

// Strategy selects the gate application order of the alternating
// scheme.
type Strategy int

const (
	// Construction builds both system matrices and compares roots.
	Construction Strategy = iota
	// Sequential applies all of G, then all of G′⁻¹.
	Sequential
	// OneToOne alternates single gates of G and G′⁻¹.
	OneToOne
	// Proportional alternates gates in the ratio of the circuit
	// sizes (one gate of G per ⌈|G′|/|G|⌉ gates of G′ — the "apply all
	// gates up to the next barrier" walk of Ex. 12).
	Proportional
	// Lookahead greedily applies, at each step, whichever side's next
	// gate results in the smaller intermediate diagram.
	Lookahead
)

// String names the strategy for reports.
func (s Strategy) String() string {
	switch s {
	case Construction:
		return "construction"
	case Sequential:
		return "sequential"
	case OneToOne:
		return "one-to-one"
	case Proportional:
		return "proportional"
	case Lookahead:
		return "lookahead"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// StepRecord traces one application during checking, feeding both the
// tool's verification view (Fig. 9) and the E6 experiment.
type StepRecord struct {
	Side  string // "G", "G'", or "compare"
	Gate  string // rendered op
	Nodes int    // DD size after the application
}

// Result reports the outcome of an equivalence check.
type Result struct {
	Equivalent      bool
	UpToGlobalPhase bool // equivalent with a non-1 global phase factor
	Strategy        Strategy
	PeakNodes       int // maximum DD size observed
	FinalNodes      int
	MultOps         int      // number of gate-application steps
	KernelOps       int      // applications served by the direct matrix kernel
	GenericOps      int      // applications served by generic MultMM
	Root            dd.MEdge // canonical root edge of the final diagram
	Trace           []StepRecord
	// Shape is the structural profile of the final diagram —
	// identity-padding fraction, per-level occupancy, sharing — taken
	// when shape profiling was enabled via WithShapeEvery.
	Shape *dd.ShapeProfile
}

// Option configures a check run.
type Option func(*config)

type config struct {
	genericMM  bool
	shapeEvery int
}

// WithGenericMM routes every gate application through the generic
// MultMM on materialized gate diagrams instead of the direct
// matrix-apply kernel (dd.ApplyGateML/MR). This is the differential-
// testing oracle and the A/B baseline of the V1 benchmark; canonicity
// guarantees both engines produce pointer-identical root edges on the
// same package.
func WithGenericMM() Option { return func(c *config) { c.genericMM = true } }

// WithShapeEvery enables structural profiling of the intermediate
// diagram during checking: every n gate applications the engine
// publishes a dd.ShapeProfile on its package (readable concurrently
// via Pkg.LastShape), and the final diagram's profile is attached to
// Result.Shape. The per-level occupancy timeline this yields is how
// an operator sees an alternating check drift away from the identity
// before the node budget kills it. n ≤ 0 (the default) disables
// profiling.
func WithShapeEvery(n int) Option { return func(c *config) { c.shapeEvery = n } }

func buildConfig(opts []Option) config {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c
}

// ddControls converts a circuit op's control lines.
func ddControls(op *qc.Op) []dd.Control {
	ctl := make([]dd.Control, len(op.Controls))
	for i, c := range op.Controls {
		ctl[i] = dd.Control{Qubit: c.Qubit, Neg: c.Neg}
	}
	return ctl
}

// gateDD lowers one unitary circuit op to its matrix DD.
func gateDD(p *dd.Pkg, op *qc.Op) dd.MEdge {
	ctl := ddControls(op)
	if op.Gate == qc.Swap {
		return p.MakeSwapDD(op.Targets[0], op.Targets[1], ctl...)
	}
	return p.MakeGateDD(dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0], ctl...)
}

// notX is the Pauli-X block used to decompose SWAP into three CNOTs
// for the kernel path (the same decomposition MakeSwapDD lowers).
var notX = dd.GateMatrix{0, 1, 1, 0}

// engine dispatches one gate application to the matrix kernel or the
// generic multiply, tallying the split for Result and the web views.
type engine struct {
	p          *dd.Pkg
	generic    bool
	kernelOps  int
	genericOps int
}

// swapCNOTs yields the three CNOT (matrix, target, controls) triples
// of a (controlled) SWAP. The palindromic order works from either
// side: S·X and X·S both consume cx1, cx2, cx1.
func swapCNOTs(op *qc.Op) [3]struct {
	target int
	ctl    []dd.Control
} {
	base := ddControls(op)
	a, b := op.Targets[0], op.Targets[1]
	c1 := append(append([]dd.Control{}, base...), dd.Control{Qubit: a})
	c2 := append(append([]dd.Control{}, base...), dd.Control{Qubit: b})
	return [3]struct {
		target int
		ctl    []dd.Control
	}{{b, c1}, {a, c2}, {b, c1}}
}

// left computes U·x, right computes x·U, for the op as given (callers
// pre-invert ops consumed from the right side).
func (e *engine) left(x dd.MEdge, op *qc.Op) dd.MEdge {
	if e.generic {
		e.genericOps++
		return e.p.MultMM(gateDD(e.p, op), x)
	}
	if op.Gate == qc.Swap {
		for _, cx := range swapCNOTs(op) {
			x = e.p.ApplyGateML(x, notX, cx.target, cx.ctl...)
		}
		e.kernelOps += 3
		return x
	}
	e.kernelOps++
	return e.p.ApplyGateML(x, dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0], ddControls(op)...)
}

func (e *engine) right(x dd.MEdge, op *qc.Op) dd.MEdge {
	if e.generic {
		e.genericOps++
		return e.p.MultMM(x, gateDD(e.p, op))
	}
	if op.Gate == qc.Swap {
		for _, cx := range swapCNOTs(op) {
			x = e.p.ApplyGateMR(x, notX, cx.target, cx.ctl...)
		}
		e.kernelOps += 3
		return x
	}
	e.kernelOps++
	return e.p.ApplyGateMR(x, dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0], ddControls(op)...)
}

// leftChecked is left under the node budget. The SWAP decomposition
// ref-protects its intermediates: a checked call may garbage-collect
// on entry, which would otherwise sweep the previous CNOT's result.
func (e *engine) leftChecked(x dd.MEdge, op *qc.Op) (dd.MEdge, error) {
	if e.generic {
		e.genericOps++
		return e.p.MultMMChecked(gateDD(e.p, op), x)
	}
	if op.Gate == qc.Swap {
		cur := x
		e.p.IncRefM(cur)
		for _, cx := range swapCNOTs(op) {
			next, err := e.p.ApplyGateMLChecked(cur, notX, cx.target, cx.ctl...)
			if err != nil {
				e.p.DecRefM(cur)
				return dd.MZero(), err
			}
			e.p.IncRefM(next)
			e.p.DecRefM(cur)
			cur = next
		}
		e.kernelOps += 3
		e.p.DecRefM(cur)
		return cur, nil
	}
	e.kernelOps++
	return e.p.ApplyGateMLChecked(x, dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0], ddControls(op)...)
}

// unitaryOps filters the gate operations of a circuit (barriers are
// dropped; measurements etc. are rejected upstream).
func unitaryOps(c *qc.Circuit) []*qc.Op {
	var ops []*qc.Op
	for i := range c.Ops {
		if c.Ops[i].Kind == qc.KindGate {
			ops = append(ops, &c.Ops[i])
		}
	}
	return ops
}

// BuildFunctionality constructs the system matrix U = U_{m-1}···U_0 of
// the circuit as a matrix DD, recording the node count after each
// application. Gates are multiplied in by the matrix kernel unless
// WithGenericMM selects the generic path.
func BuildFunctionality(p *dd.Pkg, c *qc.Circuit, opts ...Option) (dd.MEdge, []StepRecord, error) {
	cfg := buildConfig(opts)
	if cfg.shapeEvery > 0 {
		p.SetShapeInterval(cfg.shapeEvery)
	}
	eng := &engine{p: p, generic: cfg.genericMM}
	return buildFunctionality(context.Background(), eng, c)
}

func buildFunctionality(ctx context.Context, eng *engine, c *qc.Circuit) (dd.MEdge, []StepRecord, error) {
	if c.HasNonUnitary() {
		return dd.MZero(), nil, fmt.Errorf("verify: circuit %q contains non-unitary operations", c.Name)
	}
	p := eng.p
	u := p.Ident()
	p.IncRefM(u)
	var recs []StepRecord
	for _, op := range unitaryOps(c) {
		_, sp := trace.StartSpan(ctx, "verify:apply")
		next, err := eng.leftChecked(u, op)
		if err != nil {
			sp.End()
			p.DecRefM(u)
			return dd.MZero(), recs, fmt.Errorf("verify: building functionality of %q: %w", c.Name, err)
		}
		p.IncRefM(next)
		p.DecRefM(u)
		u = next
		n := dd.SizeM(u)
		sp.SetAttr("nodes_after", int64(n))
		sp.End()
		recs = append(recs, StepRecord{Side: "G", Gate: op.String(), Nodes: n})
		p.MaybeShapeM(u)
	}
	p.DecRefM(u)
	return u, recs, nil
}

// Check decides the equivalence of two circuits using the given
// strategy. The circuits must have equal register widths — the tool
// imposes the same restriction (Sec. IV-C).
func Check(c1, c2 *qc.Circuit, strategy Strategy, opts ...Option) (*Result, error) {
	if c1.NQubits != c2.NQubits {
		return nil, fmt.Errorf("verify: qubit counts differ (%d vs %d); ancillary registers are not supported", c1.NQubits, c2.NQubits)
	}
	return CheckOn(dd.New(c1.NQubits), c1, c2, strategy, opts...)
}

// CheckOn is Check running on a caller-supplied DD package, so the
// caller keeps a handle on the engine for statistics after the run
// (ddverify's -metrics-dump). The package must be at least as wide as
// the circuits.
func CheckOn(p *dd.Pkg, c1, c2 *qc.Circuit, strategy Strategy, opts ...Option) (*Result, error) {
	return CheckOnCtx(context.Background(), p, c1, c2, strategy, opts...)
}

// CheckOnCtx is CheckOn under a trace context: with a flight recorder
// attached (trace.With), every gate application of the chosen
// strategy becomes a verify-round span — carrying side and resulting
// node count — with the engine's matrix multiplications as child
// spans, so a blown-up verify run shows exactly which application
// left the vicinity of the identity.
func CheckOnCtx(ctx context.Context, p *dd.Pkg, c1, c2 *qc.Circuit, strategy Strategy, opts ...Option) (*Result, error) {
	if c1.NQubits != c2.NQubits {
		return nil, fmt.Errorf("verify: qubit counts differ (%d vs %d); ancillary registers are not supported", c1.NQubits, c2.NQubits)
	}
	if c1.HasNonUnitary() || c2.HasNonUnitary() {
		return nil, fmt.Errorf("verify: measurements, resets and classically-controlled operations are not supported in verification")
	}
	cfg := buildConfig(opts)
	if cfg.shapeEvery > 0 {
		p.SetShapeInterval(cfg.shapeEvery)
	}
	eng := &engine{p: p, generic: cfg.genericMM}
	switch strategy {
	case Construction:
		return checkConstruction(ctx, eng, c1, c2)
	default:
		return checkAlternating(ctx, eng, c1, c2, strategy)
	}
}

func checkConstruction(ctx context.Context, eng *engine, c1, c2 *qc.Circuit) (*Result, error) {
	res := &Result{Strategy: Construction}
	u1, t1, err := buildFunctionality(ctx, eng, c1)
	if err != nil {
		return nil, err
	}
	u2, t2, err := buildFunctionality(ctx, eng, c2)
	if err != nil {
		return nil, err
	}
	for _, r := range t1 {
		r.Side = "G"
		res.Trace = append(res.Trace, r)
		res.MultOps++
		if r.Nodes > res.PeakNodes {
			res.PeakNodes = r.Nodes
		}
	}
	for _, r := range t2 {
		r.Side = "G'"
		res.Trace = append(res.Trace, r)
		res.MultOps++
		if r.Nodes > res.PeakNodes {
			res.PeakNodes = r.Nodes
		}
	}
	// Canonicity: equality of the diagrams is root-edge equality.
	res.FinalNodes = dd.SizeM(u1)
	res.Root = u1
	res.KernelOps, res.GenericOps = eng.kernelOps, eng.genericOps
	if eng.p.ShapeInterval() > 0 {
		final := eng.p.PublishShapeM(u1)
		res.Shape = &final
	}
	if u1 == u2 {
		res.Equivalent = true
	} else if u1.N == u2.N {
		res.Equivalent = true
		res.UpToGlobalPhase = true
	}
	res.Trace = append(res.Trace, StepRecord{Side: "compare", Gate: "root comparison", Nodes: res.FinalNodes})
	return res, nil
}

// schedule emits the side sequence ("G" as true, "G'" as false) for a
// given strategy over m1 gates of G and m2 gates of G′.
func schedule(strategy Strategy, m1, m2 int) []bool {
	var out []bool
	switch strategy {
	case Sequential:
		for i := 0; i < m1; i++ {
			out = append(out, true)
		}
		for i := 0; i < m2; i++ {
			out = append(out, false)
		}
	case OneToOne:
		i, j := 0, 0
		for i < m1 || j < m2 {
			if i < m1 {
				out = append(out, true)
				i++
			}
			if j < m2 {
				out = append(out, false)
				j++
			}
		}
	case Proportional:
		// Apply one gate of the smaller circuit per ratio gates of the
		// larger one, interleaved so both sides finish together.
		if m1 == 0 || m2 == 0 {
			return schedule(Sequential, m1, m2)
		}
		i, j := 0, 0
		for i < m1 || j < m2 {
			if i < m1 {
				out = append(out, true)
				i++
			}
			// Gates of G' owed after i gates of G: round(i*m2/m1).
			owed := (i*m2 + m1/2) / m1
			if i == m1 {
				owed = m2
			}
			for j < owed {
				out = append(out, false)
				j++
			}
		}
	}
	return out
}

func checkAlternating(ctx context.Context, eng *engine, c1, c2 *qc.Circuit, strategy Strategy) (*Result, error) {
	p := eng.p
	g1 := unitaryOps(c1)
	g2 := unitaryOps(c2)
	res := &Result{Strategy: strategy}
	x := p.Ident()
	p.IncRefM(x)
	record := func(sp *trace.Span, side string, gate string) {
		n := dd.SizeM(x)
		if n > res.PeakNodes {
			res.PeakNodes = n
		}
		sp.SetAttr("nodes_after", int64(n))
		sp.End()
		res.Trace = append(res.Trace, StepRecord{Side: side, Gate: gate, Nodes: n})
		res.MultOps++
		p.MaybeShapeM(x)
	}
	res.PeakNodes = dd.SizeM(x)
	applyLeft := func(op *qc.Op) {
		// X ← U_i · X  (consume G from the left side)
		_, sp := trace.StartSpan(ctx, "verify-round:G")
		next := eng.left(x, op)
		p.IncRefM(next)
		p.DecRefM(x)
		x = next
		record(sp, "G", op.String())
	}
	applyRight := func(op *qc.Op) {
		// X ← X · U′_j†  (consume G′ from the right side). Applying
		// the inverted gates of G′ in original order from the right
		// realizes G·G′⁻¹ once both circuits are consumed.
		_, sp := trace.StartSpan(ctx, "verify-round:G'")
		g, params := qc.InverseGate(op.Gate, op.Params)
		invOp := qc.Op{Kind: qc.KindGate, Gate: g, Params: params, Targets: op.Targets, Controls: op.Controls}
		next := eng.right(x, &invOp)
		p.IncRefM(next)
		p.DecRefM(x)
		x = next
		record(sp, "G'", op.String())
	}

	if strategy == Lookahead {
		i, j := 0, 0
		for i < len(g1) || j < len(g2) {
			switch {
			case i >= len(g1):
				applyRight(g2[j])
				j++
			case j >= len(g2):
				applyLeft(g1[i])
				i++
			default:
				// Try both sides, keep the smaller result.
				_, sp := trace.StartSpan(ctx, "verify-round:lookahead")
				left := eng.left(x, g1[i])
				gInv, params := qc.InverseGate(g2[j].Gate, g2[j].Params)
				invOp := qc.Op{Kind: qc.KindGate, Gate: gInv, Params: params, Targets: g2[j].Targets, Controls: g2[j].Controls}
				right := eng.right(x, &invOp)
				res.MultOps++ // the discarded probe
				if dd.SizeM(left) <= dd.SizeM(right) {
					p.IncRefM(left)
					p.DecRefM(x)
					x = left
					record(sp, "G", g1[i].String())
					i++
				} else {
					p.IncRefM(right)
					p.DecRefM(x)
					x = right
					record(sp, "G'", g2[j].String())
					j++
				}
			}
		}
	} else {
		for _, left := range schedule(strategy, len(g1), len(g2)) {
			if left {
				op := g1[0]
				g1 = g1[1:]
				applyLeft(op)
			} else {
				op := g2[0]
				g2 = g2[1:]
				applyRight(op)
			}
		}
	}

	res.FinalNodes = dd.SizeM(x)
	res.Root = x
	res.KernelOps, res.GenericOps = eng.kernelOps, eng.genericOps
	if p.ShapeInterval() > 0 {
		final := p.PublishShapeM(x)
		res.Shape = &final
	}
	switch p.CheckIdentity(x) {
	case dd.IdentityExact:
		res.Equivalent = true
	case dd.IdentityUpToPhase:
		res.Equivalent = true
		res.UpToGlobalPhase = true
	}
	p.DecRefM(x)
	return res, nil
}

// SimulationCheck performs random-stimulus falsification: it simulates
// both circuits on random basis states and compares the resulting
// state diagrams (canonically, i.e. by root equality up to phase).
// It can prove non-equivalence but only gives evidence of equivalence.
func SimulationCheck(c1, c2 *qc.Circuit, stimuli int, seed int64) (equivalentSoFar bool, counterexample int64, err error) {
	if c1.NQubits != c2.NQubits {
		return false, 0, fmt.Errorf("verify: qubit counts differ (%d vs %d)", c1.NQubits, c2.NQubits)
	}
	if c1.HasNonUnitary() || c2.HasNonUnitary() {
		return false, 0, fmt.Errorf("verify: non-unitary circuits cannot be checked by simulation")
	}
	p := dd.New(c1.NQubits)
	rng := newSplitMix(seed)
	dim := int64(1) << uint(c1.NQubits)
	for k := 0; k < stimuli; k++ {
		idx := int64(rng.next() % uint64(dim))
		s1 := runOn(p, c1, idx)
		s2 := runOn(p, c2, idx)
		if s1.N != s2.N {
			return false, idx, nil
		}
		// Same node: amplitudes may still differ by a non-phase factor
		// in pathological non-unitary inputs; unitary circuits preserve
		// the norm, so only phase can differ.
	}
	return true, 0, nil
}

func runOn(p *dd.Pkg, c *qc.Circuit, idx int64) dd.VEdge {
	st := p.BasisState(idx)
	for _, op := range unitaryOps(c) {
		st = p.MultMV(gateDD(p, op), st)
	}
	return st
}

// splitMix is a tiny deterministic PRNG so the package does not need
// math/rand state sharing.
type splitMix struct{ s uint64 }

func newSplitMix(seed int64) *splitMix { return &splitMix{s: uint64(seed)*2654435769 + 1} }

func (r *splitMix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}
