package verify

import (
	"fmt"
	"math/cmplx"

	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
)

// Counterexample is a concrete witness of non-equivalence: a matrix
// entry on which the two functionalities differ, i.e. an input basis
// state |col⟩ whose image has differing amplitude on |row⟩.
type Counterexample struct {
	Row, Col int64
	A, B     complex128 // the differing entries
}

// String renders the witness for error messages.
func (c *Counterexample) String() string {
	return fmt.Sprintf("input |%b⟩, output |%b⟩: %v vs %v", c.Col, c.Row, c.A, c.B)
}

// FindCounterexample locates an entry where the diagrams of two
// operations differ by more than tol (up-to-global-phase differences
// are first compensated using the entry of largest magnitude in a).
// Returns nil when no such entry exists.
func FindCounterexample(p *dd.Pkg, a, b dd.MEdge, tol float64) *Counterexample {
	// Compensate a global phase: align b's weight to a's using the
	// first differing root path is fragile; instead use the canonical
	// structure — identical nodes mean the only possible difference is
	// the root weight.
	if a.N == b.N {
		if cmplx.Abs(a.W-b.W) <= tol {
			return nil
		}
		// Find any non-zero entry to witness the scalar difference.
		row, col, ok := firstNonZero(a)
		if !ok {
			return nil
		}
		return &Counterexample{Row: row, Col: col,
			A: dd.MatrixEntry(a, row, col), B: dd.MatrixEntry(b, row, col)}
	}
	// Different nodes: walk the difference diagram for a non-zero path.
	diff := p.AddM(a, dd.MEdge{W: -b.W, N: b.N})
	row, col, ok := firstNonZero(diff)
	if !ok {
		return nil
	}
	return &Counterexample{Row: row, Col: col,
		A: dd.MatrixEntry(a, row, col), B: dd.MatrixEntry(b, row, col)}
}

// firstNonZero finds the lexicographically first (row, col) with a
// non-zero weighted path.
func firstNonZero(e dd.MEdge) (row, col int64, ok bool) {
	if e.IsZero() {
		return 0, 0, false
	}
	if e.IsTerminal() {
		return 0, 0, true
	}
	n := e.N
	for i := int64(0); i < 2; i++ {
		for j := int64(0); j < 2; j++ {
			c := n.E[2*i+j]
			if c.W == 0 {
				continue
			}
			r, cc, found := firstNonZero(c)
			if found {
				lvl := uint(n.V)
				return r | i<<lvl, cc | j<<lvl, true
			}
		}
	}
	return 0, 0, false
}

// DiagnoseNonEquivalence builds both functionalities, reports the
// Hilbert-Schmidt overlap, and extracts a counterexample when the
// circuits differ — the debugging companion to Check.
func DiagnoseNonEquivalence(c1, c2 *qc.Circuit) (equivalent bool, overlap float64, ce *Counterexample, err error) {
	if c1.NQubits != c2.NQubits {
		return false, 0, nil, fmt.Errorf("verify: qubit counts differ (%d vs %d)", c1.NQubits, c2.NQubits)
	}
	p := dd.New(c1.NQubits)
	u1, _, err := BuildFunctionality(p, c1)
	if err != nil {
		return false, 0, nil, err
	}
	u2, _, err := BuildFunctionality(p, c2)
	if err != nil {
		return false, 0, nil, err
	}
	overlap = p.HSOverlap(u1, u2)
	if u1.N == u2.N && overlap > 1-1e-9 {
		return true, overlap, nil, nil
	}
	ce = FindCounterexample(p, u1, u2, p.Tolerance())
	return false, overlap, ce, nil
}
