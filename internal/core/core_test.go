package core

// Integration tests across the whole stack: front ends → DD engine →
// simulation/verification → rendering, exercised through the façade.

import (
	"math"
	"math/cmplx"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quantumdd/internal/algorithms"
	"quantumdd/internal/dd"
	"quantumdd/internal/realfmt"
	"quantumdd/internal/vis"
)

const bellQASM = `
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[1];
cx q[1],q[0];
`

func TestLoadSimulateRenderPipeline(t *testing.T) {
	circ, err := LoadCircuit(bellQASM, "")
	if err != nil {
		t.Fatal(err)
	}
	classical, state, pkg, err := Simulate(circ, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(classical) != 0 {
		t.Fatalf("unexpected classical bits: %v", classical)
	}
	if got := dd.SizeV(state); got != 3 {
		t.Fatalf("Bell DD has %d nodes", got)
	}
	if p1 := pkg.ProbOne(state, 0); math.Abs(p1-0.5) > 1e-9 {
		t.Fatalf("P(q0=1) = %v", p1)
	}
	for name := range map[string]bool{"classic": true, "colored": true, "modern": true} {
		style, err := StyleByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if svg := RenderState(state, style); !strings.Contains(svg, "<svg") {
			t.Fatalf("style %s render failed", name)
		}
	}
	if dot := RenderStateDOT(state, vis.Style{}); !strings.Contains(dot, "digraph") {
		t.Fatal("dot render failed")
	}
	if _, err := StyleByName("cubist"); err == nil {
		t.Fatal("unknown style accepted")
	}
}

func TestFunctionalityAndEquivalencePipeline(t *testing.T) {
	u, p, err := Functionality(algorithms.QFT(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := dd.SizeM(u); got != 21 {
		t.Fatalf("QFT3 functionality has %d nodes", got)
	}
	if svg := RenderOperation(u, vis.Style{Mode: vis.Colored}); !strings.Contains(svg, "<svg") {
		t.Fatal("operation render failed")
	}
	if dot := RenderOperationDOT(u, vis.Style{}); !strings.Contains(dot, "digraph") {
		t.Fatal("operation dot render failed")
	}
	_ = p
	res, err := CheckEquivalence(algorithms.QFT(3), algorithms.QFTCompiled(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || res.PeakNodes != 9 {
		t.Fatalf("equivalence result wrong: %+v", res)
	}
}

func TestRealToQASMCrossFormatEquivalence(t *testing.T) {
	// A Toffoli network loaded from .real must be equivalent to the
	// same network written in QASM.
	realSrc := `
.numvars 3
.variables a b c
.begin
t3 a b c
t2 a b
.end
`
	qasmSrc := `
qreg q[3];
ccx q[0],q[1],q[2];
cx q[0],q[1];
`
	cr, err := LoadCircuit(realSrc, "real")
	if err != nil {
		t.Fatal(err)
	}
	cq, err := LoadCircuit(qasmSrc, "qasm")
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckEquivalence(cr, cq)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("cross-format circuits not equivalent")
	}
	// And the .real writer round-trips through the façade loader.
	serialized, err := realfmt.WriteString(cr)
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadCircuit(serialized, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err = CheckEquivalence(cr, back)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatal("real round trip broke equivalence")
	}
}

func TestNewStepperWalk(t *testing.T) {
	s := NewStepper(algorithms.Bell(), 3)
	if !s.AtStart() {
		t.Fatal("stepper not at start")
	}
	if _, err := s.StepForward(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.StepForward(); err != nil {
		t.Fatal(err)
	}
	if !s.AtEnd() {
		t.Fatal("stepper not at end after two gates")
	}
	amps := s.Amplitudes()
	if cmplx.Abs(amps[0]-complex(1/math.Sqrt2, 0)) > 1e-9 {
		t.Fatalf("stepper state wrong: %v", amps)
	}
}

func TestSimulationFrames(t *testing.T) {
	frames, err := SimulationFrames(algorithms.BellMeasured(), 1, vis.Style{Mode: vis.Modern})
	if err != nil {
		t.Fatal(err)
	}
	// initial + 4 ops.
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want 5", len(frames))
	}
	for i, f := range frames {
		if !strings.Contains(f, "<svg") {
			t.Fatalf("frame %d is not SVG", i)
		}
	}
	if !strings.Contains(frames[0], "initial state") {
		t.Fatal("first frame missing caption")
	}
}

func TestLoadCircuitErrors(t *testing.T) {
	if _, err := LoadCircuit("garbage", ""); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadCircuit(bellQASM, "real"); err == nil {
		t.Fatal("format mismatch accepted")
	}
}

func TestLoadCircuitFile(t *testing.T) {
	dir := t.TempDir()
	lib := filepath.Join(dir, "lib.inc")
	if err := os.WriteFile(lib, []byte("gate myx a { x a; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	main := filepath.Join(dir, "main.qasm")
	if err := os.WriteFile(main, []byte("include \"lib.inc\";\nqreg q[1];\nmyx q[0];\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadCircuitFile(main, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 {
		t.Fatalf("included gate lost: %d gates", c.NumGates())
	}
	// .real by extension.
	realPath := filepath.Join(dir, "net.real")
	if err := os.WriteFile(realPath, []byte(".numvars 2\n.variables a b\n.begin\nt2 a b\n.end\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadCircuitFile(realPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if r.NQubits != 2 {
		t.Fatal(".real extension not honored")
	}
	if _, err := LoadCircuitFile(main, "weird"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := LoadCircuitFile(filepath.Join(dir, "missing.qasm"), ""); err == nil {
		t.Fatal("missing file accepted")
	}
}
