// Package core is the high-level façade of the reproduction: it wires
// the front ends (OpenQASM / .real), the decision-diagram engine, the
// simulation and verification services, and the visualization styles
// into the workflows the paper's tool exposes — load an algorithm,
// step through its simulation while watching the DD, or check two
// circuits against each other while staying close to the identity.
//
// Everything here is a thin, documented composition of the substrate
// packages; programmatic users who need more control use those
// packages directly:
//
//	cnum       canonical complex numbers (tolerance unique table)
//	dd         vector/matrix decision diagrams and their operations
//	linalg     dense baseline (state vectors, system matrices)
//	qc         circuit IR, gate algebra, native-set compilation
//	qasm       OpenQASM 2.0 front end
//	realfmt    RevLib .real front end
//	sim        DD-based simulation with stepping and dialogs
//	verify     DD-based equivalence checking (incl. alternating scheme)
//	vis        classic/colored/modern SVG and DOT rendering
//	web        the installation-free web tool
package core

import (
	"fmt"
	"os"
	"strings"

	"quantumdd/internal/dd"
	"quantumdd/internal/qasm"
	"quantumdd/internal/qc"
	"quantumdd/internal/realfmt"
	"quantumdd/internal/sim"
	"quantumdd/internal/verify"
	"quantumdd/internal/vis"
	"quantumdd/internal/web"
)

// LoadCircuit parses an algorithm description. Format is "qasm",
// "real", or "" for auto-detection — the same contract as the tool's
// drag-and-drop algorithm box.
func LoadCircuit(code, format string) (*qc.Circuit, error) {
	return web.ParseCircuit(code, format)
}

// LoadCircuitFile loads a circuit from a file, resolving OpenQASM
// includes relative to the file's directory. The format is derived
// from the extension (.real selects RevLib) unless forced.
func LoadCircuitFile(path, format string) (*qc.Circuit, error) {
	if format == "real" || (format == "" || format == "auto") && strings.HasSuffix(path, ".real") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return realfmt.Parse(f)
	}
	if format == "" || format == "auto" || format == "qasm" {
		return qasm.ParseFile(path)
	}
	return nil, fmt.Errorf("core: unknown format %q (want qasm or real)", format)
}

// Simulate runs the circuit to completion with the given seed and
// returns the classical measurement results together with the final
// state diagram and its package.
func Simulate(circ *qc.Circuit, seed int64) ([]int, dd.VEdge, *dd.Pkg, error) {
	return sim.Run(circ, seed)
}

// NewStepper returns an interactive simulator positioned before the
// first operation (the tool's ⏮ state).
func NewStepper(circ *qc.Circuit, seed int64) *sim.Simulator {
	return sim.New(circ, sim.WithSeed(seed))
}

// Functionality builds the system matrix U = U_{m-1}···U_0 of a
// unitary circuit as a decision diagram (Ex. 14).
func Functionality(circ *qc.Circuit) (dd.MEdge, *dd.Pkg, error) {
	p := dd.New(circ.NQubits)
	u, _, err := verify.BuildFunctionality(p, circ)
	if err != nil {
		return dd.MZero(), nil, err
	}
	return u, p, nil
}

// CheckEquivalence decides whether two circuits realize the same
// functionality, using the advanced alternating scheme with the
// proportional strategy by default (Ex. 12).
func CheckEquivalence(a, b *qc.Circuit) (*verify.Result, error) {
	return verify.Check(a, b, verify.Proportional)
}

// RenderState renders a state diagram as SVG in the given style.
func RenderState(e dd.VEdge, style vis.Style) string {
	return vis.FromVector(e).SVG(style)
}

// RenderOperation renders a matrix diagram as SVG in the given style.
func RenderOperation(e dd.MEdge, style vis.Style) string {
	return vis.FromMatrix(e).SVG(style)
}

// RenderStateDOT renders a state diagram in Graphviz syntax.
func RenderStateDOT(e dd.VEdge, style vis.Style) string {
	return vis.FromVector(e).DOT(style)
}

// RenderOperationDOT renders a matrix diagram in Graphviz syntax.
func RenderOperationDOT(e dd.MEdge, style vis.Style) string {
	return vis.FromMatrix(e).DOT(style)
}

// StyleByName maps the tool's style names onto vis.Style. Allowed
// names: classic, colored, modern.
func StyleByName(name string) (vis.Style, error) {
	switch name {
	case "", "classic":
		return vis.Style{Mode: vis.Classic}, nil
	case "colored":
		return vis.Style{Mode: vis.Colored}, nil
	case "modern":
		return vis.Style{Mode: vis.Modern}, nil
	default:
		return vis.Style{}, fmt.Errorf("core: unknown style %q (want classic, colored or modern)", name)
	}
}

// NewWebTool creates the installation-free web tool served over HTTP,
// using the default operational limits (web.DefaultConfig).
func NewWebTool(seed int64) *web.Server { return web.NewServer(seed) }

// NewWebToolConfig creates the web tool with explicit operational
// limits — admission caps, node budgets, session TTL/LRU eviction, and
// request deadlines. Call Close on the returned server to stop its
// background session reaper.
func NewWebToolConfig(cfg web.Config) *web.Server { return web.NewServerWithConfig(cfg) }

// SimulationFrames runs a whole simulation and renders one SVG frame
// per executed operation — the data behind the tool's slide show, and
// a convenient export for presentations.
func SimulationFrames(circ *qc.Circuit, seed int64, style vis.Style) ([]string, error) {
	s := sim.New(circ, sim.WithSeed(seed))
	frames := []string{vis.FrameSVG(vis.FromVector(s.State()), style, "initial state")}
	for !s.AtEnd() {
		ev, err := s.StepForward()
		if err != nil {
			return frames, err
		}
		caption := ""
		if ev.Op != nil {
			caption = fmt.Sprintf("op %d: %s", ev.OpIndex, ev.Op.String())
		}
		frames = append(frames, vis.FrameSVG(vis.FromVector(s.State()), style, caption))
	}
	return frames, nil
}
