package algorithms

import (
	"fmt"
	"math"

	"quantumdd/internal/dd"
	"quantumdd/internal/qc"
)

// QAOA for MaxCut — a small variational application built on the DD
// simulator: the ansatz circuits are ordinary qc circuits, and the
// cost is read off the decision diagram through Pauli expectations.
// This exercises the "simulation" design task end to end the way the
// paper's intro motivates (algorithm designers probing behaviour).

// Graph is an undirected graph given by its edge list.
type Graph struct {
	Nodes int
	Edges [][2]int
}

// Validate checks node indices.
func (g Graph) Validate() error {
	if g.Nodes <= 0 {
		return fmt.Errorf("algorithms: graph needs nodes")
	}
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.Nodes || e[1] < 0 || e[1] >= g.Nodes || e[0] == e[1] {
			return fmt.Errorf("algorithms: invalid edge %v", e)
		}
	}
	return nil
}

// Ring returns the n-cycle graph (MaxCut optimum n for even n).
func Ring(n int) Graph {
	g := Graph{Nodes: n}
	for i := 0; i < n; i++ {
		g.Edges = append(g.Edges, [2]int{i, (i + 1) % n})
	}
	return g
}

// QAOAMaxCut builds the depth-p QAOA ansatz for MaxCut on g:
// |+⟩^n, then alternating cost layers e^{-iγ Z_u Z_v} per edge
// (decomposed as CX·RZ(2γ)·CX) and mixer layers RX(2β).
func QAOAMaxCut(g Graph, gammas, betas []float64) (*qc.Circuit, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(gammas) != len(betas) {
		return nil, fmt.Errorf("algorithms: %d gammas but %d betas", len(gammas), len(betas))
	}
	c := qc.New(g.Nodes, 0)
	c.Name = fmt.Sprintf("qaoa_maxcut_%d_p%d", g.Nodes, len(gammas))
	for q := 0; q < g.Nodes; q++ {
		c.H(q)
	}
	for layer := range gammas {
		for _, e := range g.Edges {
			// e^{-iγ Z⊗Z} up to global phase.
			c.CX(e[0], e[1])
			c.Gate(qc.RZ, []float64{2 * gammas[layer]}, e[1])
			c.CX(e[0], e[1])
		}
		for q := 0; q < g.Nodes; q++ {
			c.Gate(qc.RX, []float64{2 * betas[layer]}, q)
		}
	}
	return c, nil
}

// CutExpectation evaluates the expected cut value of the ansatz state:
// sum over edges of (1 − ⟨Z_u Z_v⟩)/2, read from the decision diagram.
func CutExpectation(p *dd.Pkg, state dd.VEdge, g Graph) (float64, error) {
	total := 0.0
	for _, e := range g.Edges {
		pauli := make([]byte, p.Qubits())
		for i := range pauli {
			pauli[i] = 'I'
		}
		// Big-endian string: position i addresses qubit n-1-i.
		pauli[p.Qubits()-1-e[0]] = 'Z'
		pauli[p.Qubits()-1-e[1]] = 'Z'
		zz, err := p.ExpectationPauli(state, string(pauli))
		if err != nil {
			return 0, err
		}
		total += (1 - zz) / 2
	}
	return total, nil
}

// QAOAResult reports one evaluated parameter point.
type QAOAResult struct {
	Gamma, Beta float64
	ExpectedCut float64
	DDNodes     int
}

// QAOASweep evaluates a depth-1 QAOA grid and returns the results
// sorted as scanned plus the best point — a miniature variational
// loop running entirely on decision diagrams.
func QAOASweep(g Graph, gammaSteps, betaSteps int) ([]QAOAResult, QAOAResult, error) {
	if err := g.Validate(); err != nil {
		return nil, QAOAResult{}, err
	}
	var results []QAOAResult
	best := QAOAResult{ExpectedCut: -1}
	for i := 0; i < gammaSteps; i++ {
		gamma := math.Pi * float64(i+1) / float64(gammaSteps+1)
		for j := 0; j < betaSteps; j++ {
			beta := math.Pi / 2 * float64(j+1) / float64(betaSteps+1)
			circ, err := QAOAMaxCut(g, []float64{gamma}, []float64{beta})
			if err != nil {
				return nil, QAOAResult{}, err
			}
			p, state, err := runUnitary(circ)
			if err != nil {
				return nil, QAOAResult{}, err
			}
			cut, err := CutExpectation(p, state, g)
			if err != nil {
				return nil, QAOAResult{}, err
			}
			r := QAOAResult{Gamma: gamma, Beta: beta, ExpectedCut: cut, DDNodes: dd.SizeV(state)}
			results = append(results, r)
			if cut > best.ExpectedCut {
				best = r
			}
		}
	}
	return results, best, nil
}

// runUnitary evolves |0…0⟩ through a purely unitary circuit on the DD
// engine (the sweep needs no measurement machinery, which keeps this
// package free of a dependency on the simulator).
func runUnitary(c *qc.Circuit) (*dd.Pkg, dd.VEdge, error) {
	p := dd.New(c.NQubits)
	state := p.ZeroState()
	for i := range c.Ops {
		op := &c.Ops[i]
		switch op.Kind {
		case qc.KindBarrier:
			continue
		case qc.KindGate:
			if op.Cond != nil {
				return nil, dd.VZero(), fmt.Errorf("algorithms: conditional gates unsupported in runUnitary")
			}
		default:
			return nil, dd.VZero(), fmt.Errorf("algorithms: non-unitary op %q in runUnitary", op.String())
		}
		ctl := make([]dd.Control, len(op.Controls))
		for k, cc := range op.Controls {
			ctl[k] = dd.Control{Qubit: cc.Qubit, Neg: cc.Neg}
		}
		var g dd.MEdge
		if op.Gate == qc.Swap {
			g = p.MakeSwapDD(op.Targets[0], op.Targets[1], ctl...)
		} else {
			g = p.MakeGateDD(dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0], ctl...)
		}
		state = p.MultMV(g, state)
	}
	return p, state, nil
}
