// Package algorithms generates the example circuits offered by the
// visualization tool's "Example Algorithms" list, plus the circuits
// appearing in the paper's figures (the Bell circuit of Fig. 1(c) and
// the three-qubit QFT of Fig. 5).
package algorithms

import (
	"fmt"
	"math"
	"math/rand"

	"quantumdd/internal/qc"
)

// Bell returns the two-qubit circuit of Fig. 1(c): H on the most
// significant qubit followed by a CNOT, preparing the entangled state
// 1/√2(|00⟩+|11⟩) of Ex. 1.
func Bell() *qc.Circuit {
	c := qc.New(2, 2)
	c.Name = "bell"
	c.H(1)
	c.CX(1, 0)
	return c
}

// BellMeasured is Bell plus measurements of both qubits, the
// configuration stepped through in Fig. 8.
func BellMeasured() *qc.Circuit {
	c := Bell()
	c.Name = "bell_measured"
	c.Measure(0, 0)
	c.Measure(1, 1)
	return c
}

// GHZ returns the n-qubit Greenberger–Horne–Zeilinger preparation
// 1/√2(|0…0⟩+|1…1⟩); its DD stays linear in n, a showcase of DD
// compactness.
func GHZ(n int) *qc.Circuit {
	c := qc.New(n, 0)
	c.Name = fmt.Sprintf("ghz_%d", n)
	c.H(n - 1)
	for q := n - 1; q > 0; q-- {
		c.CX(q, q-1)
	}
	return c
}

// WState returns an n-qubit W-state preparation using the standard
// cascade of controlled rotations and CNOTs.
func WState(n int) *qc.Circuit {
	c := qc.New(n, 0)
	c.Name = fmt.Sprintf("w_%d", n)
	// Start with |10…0⟩ (excitation on the top qubit).
	c.X(n - 1)
	for k := n - 1; k > 0; k-- {
		// Distribute amplitude from qubit k to qubit k-1 with a
		// controlled-RY followed by CNOT. The branch that keeps the
		// excitation at qubit k carries cos(β/2), which must equal
		// 1/√(k+1) so that every position ends at amplitude 1/√n.
		beta := 2 * math.Acos(math.Sqrt(1.0/float64(k+1)))
		c.Gate(qc.RY, []float64{beta}, k-1, qc.Control{Qubit: k})
		c.CX(k-1, k)
	}
	return c
}

// QFT returns the n-qubit quantum Fourier transform in the form of
// Fig. 5(a): Hadamards, controlled phase gates P(π/2^k), and final
// SWAPs reversing the qubit order.
func QFT(n int) *qc.Circuit {
	c := qc.New(n, 0)
	c.Name = fmt.Sprintf("qft_%d", n)
	for i := n - 1; i >= 0; i-- {
		c.H(i)
		for j := i - 1; j >= 0; j-- {
			theta := math.Pi / math.Pow(2, float64(i-j))
			c.Phase(theta, i, qc.Control{Qubit: j})
		}
	}
	for i := 0; i < n/2; i++ {
		c.SwapGate(i, n-1-i)
	}
	return c
}

// QFTCompiled returns the QFT lowered to the {1q, CX} native set with
// barriers after each decomposed gate — the compiled circuit of
// Fig. 5(b) used in the verification walk-through of Ex. 12.
func QFTCompiled(n int) *qc.Circuit {
	compiled, err := qc.CompileNative(QFT(n), qc.CompileOptions{EmitBarriers: true})
	if err != nil {
		// The QFT only contains H, CP and SWAP; lowering cannot fail.
		panic(err)
	}
	compiled.Name = fmt.Sprintf("qft_%d_compiled", n)
	return compiled
}

// Grover returns Grover's search over n working qubits with the given
// marked element, iterated the standard ⌊π/4·√(2^n)⌋ times.
func Grover(n int, marked uint64) *qc.Circuit {
	if n < 2 {
		panic("algorithms: Grover needs at least 2 qubits")
	}
	c := qc.New(n, 0)
	c.Name = fmt.Sprintf("grover_%d_%d", n, marked)
	iterations := int(math.Floor(math.Pi / 4 * math.Sqrt(math.Pow(2, float64(n)))))
	if iterations < 1 {
		iterations = 1
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for it := 0; it < iterations; it++ {
		// Oracle: flip the phase of |marked⟩ via a multi-controlled Z
		// with negative controls on the 0 bits.
		oracleZ(c, n, marked)
		// Diffusion: H^n · (2|0><0| - I) · H^n.
		for q := 0; q < n; q++ {
			c.H(q)
		}
		oracleZ(c, n, 0)
		for q := 0; q < n; q++ {
			c.H(q)
		}
	}
	return c
}

// oracleZ appends a phase flip on basis state |marked⟩.
func oracleZ(c *qc.Circuit, n int, marked uint64) {
	controls := make([]qc.Control, 0, n-1)
	for q := 0; q < n-1; q++ {
		controls = append(controls, qc.Control{Qubit: q, Neg: marked>>uint(q)&1 == 0})
	}
	target := n - 1
	if marked>>uint(target)&1 == 0 {
		c.X(target)
		c.Z(target, controls...)
		c.X(target)
	} else {
		c.Z(target, controls...)
	}
}

// BernsteinVazirani returns the BV circuit recovering the given secret
// over n qubits in a single query (phase-oracle formulation without an
// ancilla: the oracle is a layer of Z gates on the secret bits).
func BernsteinVazirani(n int, secret uint64) *qc.Circuit {
	c := qc.New(n, n)
	c.Name = fmt.Sprintf("bv_%d_%d", n, secret)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		if secret>>uint(q)&1 == 1 {
			c.Z(q)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.Barrier()
	for q := 0; q < n; q++ {
		c.Measure(q, q)
	}
	return c
}

// QPE returns quantum phase estimation of the phase gate P(2π·phase)
// with bits precision qubits. The eigenstate |1⟩ occupies qubit 0;
// the counting register occupies qubits 1..bits.
func QPE(bits int, phase float64) *qc.Circuit {
	n := bits + 1
	c := qc.New(n, bits)
	c.Name = fmt.Sprintf("qpe_%d", bits)
	c.X(0) // eigenstate |1⟩ of P
	for q := 1; q <= bits; q++ {
		c.H(q)
	}
	for q := 1; q <= bits; q++ {
		reps := 1 << uint(q-1)
		theta := 2 * math.Pi * phase * float64(reps)
		c.Phase(theta, 0, qc.Control{Qubit: q})
	}
	// Inverse QFT on the counting register.
	appendInverseQFT(c, 1, bits)
	c.Barrier()
	for q := 1; q <= bits; q++ {
		c.Measure(q, q-1)
	}
	return c
}

// appendInverseQFT appends the inverse QFT on qubits
// [offset, offset+n) without final swaps (bit-reversed read-out).
func appendInverseQFT(c *qc.Circuit, offset, n int) {
	for i := 0; i < n/2; i++ {
		c.SwapGate(offset+i, offset+n-1-i)
	}
	for i := 0; i < n; i++ {
		for j := i - 1; j >= 0; j-- {
			theta := -math.Pi / math.Pow(2, float64(i-j))
			c.Phase(theta, offset+i, qc.Control{Qubit: offset + j})
		}
		c.H(offset + i)
	}
}

// Teleport returns the three-qubit teleportation circuit: qubit 2
// (Alice's payload) is prepared with the given angles, entangled pair
// on qubits 1 and 0, Bell measurement, and classically-controlled
// corrections on Bob's qubit 0 — exercising measurement and classical
// control (Sec. IV-B).
func Teleport(theta, phi float64) *qc.Circuit {
	c := qc.New(3, 3)
	c.Name = "teleportation"
	// Prepare payload |ψ⟩ = U(θ,φ,0)|0⟩ on qubit 2.
	c.Gate(qc.U, []float64{theta, phi, 0}, 2)
	c.Barrier()
	// Entangle qubits 1 (Alice) and 0 (Bob).
	c.H(1)
	c.CX(1, 0)
	c.Barrier()
	// Bell measurement of payload and Alice's half.
	c.CX(2, 1)
	c.H(2)
	c.Measure(2, 2)
	c.Measure(1, 1)
	c.Barrier()
	// Bob's corrections.
	c.GateIf(qc.X, nil, 0, []int{1}, 1)
	c.GateIf(qc.Z, nil, 0, []int{2}, 1)
	return c
}

// Adder returns an n-bit ripple-carry adder (Cuccaro-style MAJ/UMA
// chains built from Toffoli and CNOT gates) computing b += a. Layout:
// qubit 0 is the carry ancilla, qubits 1..n are a, qubits n+1..2n are
// b, with interleaving as produced by the index helpers.
func Adder(n int) *qc.Circuit {
	if n < 1 {
		panic("algorithms: adder needs at least 1 bit")
	}
	c := qc.New(2*n+2, 0)
	c.Name = fmt.Sprintf("adder_%d", n)
	aq := func(i int) int { return 1 + 2*i }
	bq := func(i int) int { return 2 + 2*i }
	carry := 0
	maj := func(x, y, z int) {
		c.CX(z, y)
		c.CX(z, x)
		c.CCX(x, y, z)
	}
	uma := func(x, y, z int) {
		c.CCX(x, y, z)
		c.CX(z, x)
		c.CX(x, y)
	}
	maj(carry, bq(0), aq(0))
	for i := 1; i < n; i++ {
		maj(aq(i-1), bq(i), aq(i))
	}
	c.CX(aq(n-1), 2*n+1) // carry out
	for i := n - 1; i >= 1; i-- {
		uma(aq(i-1), bq(i), aq(i))
	}
	uma(carry, bq(0), aq(0))
	return c
}

// DeutschJozsa returns the n-qubit Deutsch–Jozsa circuit in the
// phase-oracle formulation: for a constant oracle the measurement
// yields |0…0⟩ with certainty, for the balanced parity oracle
// f(x) = x·mask it yields |mask⟩.
func DeutschJozsa(n int, balancedMask uint64) *qc.Circuit {
	c := qc.New(n, n)
	if balancedMask == 0 {
		c.Name = fmt.Sprintf("dj_%d_constant", n)
	} else {
		c.Name = fmt.Sprintf("dj_%d_balanced_%b", n, balancedMask)
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	// Oracle: phase flip on the bits of the mask (constant = empty).
	for q := 0; q < n; q++ {
		if balancedMask>>uint(q)&1 == 1 {
			c.Z(q)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	c.Barrier()
	for q := 0; q < n; q++ {
		c.Measure(q, q)
	}
	return c
}

// RandomCircuit returns a pseudo-random circuit over n qubits with the
// given number of layers, drawn from {H,X,Y,Z,S,T,P,RX,RY,RZ,CX} using
// the deterministic seed — the "limits" end of the E8 scaling study.
func RandomCircuit(n, layers int, seed int64) *qc.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := qc.New(n, 0)
	c.Name = fmt.Sprintf("random_%d_%d", n, layers)
	single := []qc.Gate{qc.H, qc.X, qc.Y, qc.Z, qc.S, qc.T}
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			switch rng.Intn(4) {
			case 0:
				c.Gate(single[rng.Intn(len(single))], nil, q)
			case 1:
				c.Phase(rng.Float64()*2*math.Pi, q)
			case 2:
				g := []qc.Gate{qc.RX, qc.RY, qc.RZ}[rng.Intn(3)]
				c.Gate(g, []float64{rng.Float64() * 2 * math.Pi}, q)
			case 3:
				t := rng.Intn(n)
				if t == q {
					c.H(q)
				} else {
					c.CX(q, t)
				}
			}
		}
	}
	return c
}

// Entangled returns a layered entangling circuit that drives DD growth
// (H layer + random CZ pattern) — a harder instance family for E8.
func Entangled(n, layers int, seed int64) *qc.Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := qc.New(n, 0)
	c.Name = fmt.Sprintf("entangled_%d_%d", n, layers)
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.Gate(qc.RY, []float64{rng.Float64() * math.Pi}, q)
		}
		for q := 0; q+1 < n; q += 2 {
			c.Z(q, qc.Control{Qubit: q + 1})
		}
		for q := 1; q+1 < n; q += 2 {
			c.Z(q, qc.Control{Qubit: q + 1})
		}
	}
	return c
}
