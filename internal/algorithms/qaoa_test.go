package algorithms

import (
	"math"
	"testing"

	"quantumdd/internal/sim"
)

func TestQAOAUniformStateBaseline(t *testing.T) {
	// At γ=β=0 the ansatz is |+⟩^n: every edge is cut with
	// probability 1/2, so the expected cut is |E|/2.
	g := Ring(4)
	circ, err := QAOAMaxCut(g, []float64{0}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(circ)
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	cut, err := CutExpectation(s.Pkg(), s.State(), g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cut-2.0) > 1e-9 {
		t.Fatalf("uniform-state cut = %v, want 2 (=|E|/2)", cut)
	}
}

func TestQAOAImprovesOverUniform(t *testing.T) {
	// A depth-1 sweep on the 4-ring must beat the random baseline of
	// |E|/2 = 2 (the known depth-1 optimum for the ring is 3).
	g := Ring(4)
	results, best, err := QAOASweep(g, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 64 {
		t.Fatalf("sweep evaluated %d points, want 64", len(results))
	}
	if best.ExpectedCut <= 2.2 {
		t.Fatalf("best expected cut %v does not beat the uniform baseline", best.ExpectedCut)
	}
	if best.ExpectedCut > 4.0+1e-9 {
		t.Fatalf("expected cut %v exceeds the optimum 4", best.ExpectedCut)
	}
	if best.DDNodes <= 0 {
		t.Fatal("missing DD statistics")
	}
}

func TestQAOACutAgainstBruteForce(t *testing.T) {
	// Exact check on a tiny instance: the expectation from the DD must
	// equal the probability-weighted cut over all basis states.
	g := Graph{Nodes: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}} // triangle
	circ, err := QAOAMaxCut(g, []float64{0.7}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(circ)
	if _, err := s.RunToEnd(); err != nil {
		t.Fatal(err)
	}
	got, err := CutExpectation(s.Pkg(), s.State(), g)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for idx, amp := range s.Amplitudes() {
		p := real(amp)*real(amp) + imag(amp)*imag(amp)
		cut := 0
		for _, e := range g.Edges {
			if (idx>>uint(e[0]))&1 != (idx>>uint(e[1]))&1 {
				cut++
			}
		}
		want += p * float64(cut)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("DD expectation %v vs brute force %v", got, want)
	}
}

func TestQAOAValidation(t *testing.T) {
	if _, err := QAOAMaxCut(Graph{Nodes: 2, Edges: [][2]int{{0, 5}}}, []float64{0}, []float64{0}); err == nil {
		t.Fatal("invalid edge accepted")
	}
	if _, err := QAOAMaxCut(Ring(3), []float64{0, 1}, []float64{0}); err == nil {
		t.Fatal("mismatched parameter lengths accepted")
	}
	if err := (Graph{Nodes: 0}).Validate(); err == nil {
		t.Fatal("empty graph accepted")
	}
}
