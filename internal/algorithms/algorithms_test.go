package algorithms

import (
	"math"
	"math/cmplx"
	"testing"

	"quantumdd/internal/dd"
	"quantumdd/internal/linalg"
	"quantumdd/internal/qc"
	"quantumdd/internal/verify"
)

func functionality(t *testing.T, c *qc.Circuit) (*dd.Pkg, dd.MEdge) {
	t.Helper()
	p := dd.New(c.NQubits)
	u, _, err := verify.BuildFunctionality(p, c)
	if err != nil {
		t.Fatal(err)
	}
	return p, u
}

func TestBellMatchesFig1(t *testing.T) {
	c := Bell()
	if c.NQubits != 2 || c.NumGates() != 2 {
		t.Fatalf("bell shape wrong: %d qubits, %d gates", c.NQubits, c.NumGates())
	}
	p, u := functionality(t, c)
	st := p.MultMV(u, p.ZeroState())
	if got := dd.Amplitude(st, 0); math.Abs(real(got)-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("amplitude |00> = %v", got)
	}
	if got := dd.Amplitude(st, 3); math.Abs(real(got)-1/math.Sqrt2) > 1e-12 {
		t.Fatalf("amplitude |11> = %v", got)
	}
}

func TestQFTMatchesDenseDefinition(t *testing.T) {
	for n := 1; n <= 5; n++ {
		_, u := functionality(t, QFT(n))
		want := linalg.QFTMatrix(n)
		dim := int64(1) << uint(n)
		for i := int64(0); i < dim; i++ {
			for j := int64(0); j < dim; j++ {
				if cmplx.Abs(dd.MatrixEntry(u, i, j)-want.At(int(i), int(j))) > 1e-9 {
					t.Fatalf("QFT(%d) entry (%d,%d) wrong", n, i, j)
				}
			}
		}
	}
}

func TestQFTCompiledShape(t *testing.T) {
	// Fig. 5: the 3-qubit QFT has 7 gates (3 H, 3 CP, 1 SWAP); its
	// compiled form has 21 (3 H, 3x5 for CPs, 3 CX for the SWAP) —
	// the 1:3 ratio exploited by Ex. 12.
	qft := QFT(3)
	comp := QFTCompiled(3)
	if qft.NumGates() != 7 {
		t.Fatalf("QFT3 has %d gates, want 7", qft.NumGates())
	}
	if comp.NumGates() != 21 {
		t.Fatalf("compiled QFT3 has %d gates, want 21", comp.NumGates())
	}
	// Compiled circuit uses only native gates (H, P, CX).
	for i := range comp.Ops {
		op := &comp.Ops[i]
		if op.Kind != qc.KindGate {
			continue
		}
		switch {
		case op.Gate == qc.Swap:
			t.Fatalf("compiled circuit still contains a SWAP")
		case op.Gate == qc.P && len(op.Controls) > 0:
			t.Fatalf("compiled circuit still contains a controlled phase")
		}
	}
	// Barriers group the expansions (Ex. 12 steps between them).
	barriers := 0
	for i := range comp.Ops {
		if comp.Ops[i].Kind == qc.KindBarrier {
			barriers++
		}
	}
	if barriers != 7 {
		t.Fatalf("compiled QFT3 has %d barriers, want 7 (one per abstract gate)", barriers)
	}
}

func TestGHZStructure(t *testing.T) {
	for _, n := range []int{2, 3, 6} {
		c := GHZ(n)
		if c.NumGates() != n {
			t.Fatalf("GHZ(%d) has %d gates, want %d", n, c.NumGates(), n)
		}
	}
}

func TestGroverShape(t *testing.T) {
	c := Grover(3, 5)
	if c.NQubits != 3 {
		t.Fatalf("Grover qubits = %d", c.NQubits)
	}
	if c.NumGates() == 0 {
		t.Fatal("Grover circuit empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Grover(1, 0) should panic")
		}
	}()
	Grover(1, 0)
}

func TestQPEEstimatesPhase(t *testing.T) {
	// phase = 3/8 = 0.011b with 3 counting bits: exact estimation.
	const bits = 3
	const phase = 3.0 / 8.0
	c := QPE(bits, phase)
	p := dd.New(c.NQubits)
	st := p.ZeroState()
	for i := range c.Ops {
		op := &c.Ops[i]
		if op.Kind != qc.KindGate {
			continue
		}
		ctl := make([]dd.Control, len(op.Controls))
		for k, cc := range op.Controls {
			ctl[k] = dd.Control{Qubit: cc.Qubit, Neg: cc.Neg}
		}
		var g dd.MEdge
		if op.Gate == qc.Swap {
			g = p.MakeSwapDD(op.Targets[0], op.Targets[1], ctl...)
		} else {
			g = p.MakeGateDD(dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0], ctl...)
		}
		st = p.MultMV(g, st)
	}
	// The counting register (qubits 1..3) must hold binary 011 with
	// probability 1. Bit i of the estimate is qubit i+1... the inverse
	// QFT returns the most significant bit on the top counting qubit.
	var best int64 = -1
	bestP := 0.0
	for idx := int64(0); idx < 16; idx++ {
		a := dd.Amplitude(st, idx)
		pr := real(a)*real(a) + imag(a)*imag(a)
		if pr > bestP {
			bestP = pr
			best = idx
		}
	}
	if bestP < 0.99 {
		t.Fatalf("QPE not concentrated: best probability %v", bestP)
	}
	counting := best >> 1 // drop eigenstate qubit 0
	got := float64(counting) / 8.0
	if math.Abs(got-phase) > 1e-9 {
		t.Fatalf("QPE estimated %v (register %03b), want %v", got, counting, phase)
	}
}

func TestTeleportShape(t *testing.T) {
	c := Teleport(1.0, 0.5)
	if c.NQubits != 3 || c.NClbits != 3 {
		t.Fatalf("teleport registers wrong")
	}
	conds := 0
	for i := range c.Ops {
		if c.Ops[i].Cond != nil {
			conds++
		}
	}
	if conds != 2 {
		t.Fatalf("teleport has %d conditional corrections, want 2", conds)
	}
}

func TestAdderIsReversible(t *testing.T) {
	c := Adder(2)
	p, u := functionality(t, c)
	// U†U = I: the adder is a permutation.
	ud := p.ConjTranspose(u)
	if p.CheckIdentity(p.MultMM(ud, u)) == dd.NotIdentity {
		t.Fatal("adder not unitary")
	}
	// Every column has exactly one 1 (permutation matrix).
	m := p.Matrix(u)
	for j := range m {
		ones := 0
		for i := range m {
			switch {
			case cmplx.Abs(m[i][j]-1) < 1e-9:
				ones++
			case cmplx.Abs(m[i][j]) > 1e-9:
				t.Fatalf("adder matrix has non-binary entry %v", m[i][j])
			}
		}
		if ones != 1 {
			t.Fatalf("adder column %d has %d ones", j, ones)
		}
	}
}

func TestRandomCircuitDeterministic(t *testing.T) {
	a := RandomCircuit(4, 3, 42)
	b := RandomCircuit(4, 3, 42)
	if a.String() != b.String() {
		t.Fatal("same seed produced different circuits")
	}
	c := RandomCircuit(4, 3, 43)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical circuits")
	}
}

func TestEntangledLayout(t *testing.T) {
	c := Entangled(4, 2, 1)
	if c.NQubits != 4 || c.NumGates() == 0 {
		t.Fatal("entangled circuit malformed")
	}
}

func TestBVSecretWidths(t *testing.T) {
	c := BernsteinVazirani(4, 0b1011)
	if c.NQubits != 4 || c.NClbits != 4 {
		t.Fatal("BV register sizes wrong")
	}
}

func TestDeutschJozsa(t *testing.T) {
	// Constant oracle: all measurements 0.
	run := func(mask uint64) uint64 {
		c := DeutschJozsa(5, mask)
		p := dd.New(c.NQubits)
		st := p.ZeroState()
		for i := range c.Ops {
			op := &c.Ops[i]
			if op.Kind != qc.KindGate {
				continue
			}
			g := p.MakeGateDD(dd.GateMatrix(qc.Matrix2(op.Gate, op.Params)), op.Targets[0])
			st = p.MultMV(g, st)
		}
		// The state is a basis state: find it.
		for idx := int64(0); idx < 32; idx++ {
			a := dd.Amplitude(st, idx)
			if real(a)*real(a)+imag(a)*imag(a) > 0.99 {
				return uint64(idx)
			}
		}
		t.Fatalf("DJ(%b) output not a basis state", mask)
		return 0
	}
	if got := run(0); got != 0 {
		t.Fatalf("constant oracle gave |%b>, want |00000>", got)
	}
	if got := run(0b10110); got != 0b10110 {
		t.Fatalf("balanced oracle gave |%b>, want |10110>", got)
	}
}
