package qasm

import (
	"strings"
	"testing"
)

// FuzzParse checks that the parser never panics and that accepted
// programs re-parse after a QASM export round trip. Under plain
// `go test` only the seed corpus runs; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n",
		"qreg q[1];\ncreg c[1];\nmeasure q[0] -> c[0];\nif (c==1) x q[0];\n",
		"qreg q[3];\ngate foo(a) x, y { cx x, y; p(a/2) y; }\nfoo(pi) q[0], q[2];\n",
		"qreg q[2];\nbarrier q;\nreset q[0];\nswap q[0],q[1];\n",
		"qreg q[2];\nu3(0.1,0.2,0.3) q;\n",
		"qreg q[1];\np((((pi)))) q[0];",
		"qreg q[1];\np(2^-2) q[0];",
		"// comment only",
		"OPENQASM 9.9;",
		"qreg q[999999];",
		"qreg q[2];\ncx q[0],q[0];",
		"gate g x { h x; }",
		"qreg q[1];\nh q[0]",
		"qreg q[1];\nh q[0]; \x00",
		"qreg q[1];\np(1e309) q[0];",
		"qreg q[1];\nh -> q[0];",
		"opaque o a;",
		"qreg q[1];\n/* */ h q[0];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		circ, err := Parse(src)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		// Accepted programs round trip through the exporter (the
		// export may mark exotic ops unsupported; that still must
		// parse as comments).
		if circ.NQubits > 0 && circ.NQubits <= 16 {
			if _, err := Parse(circ.QASM()); err != nil && !strings.Contains(circ.QASM(), "unsupported") {
				t.Fatalf("exported QASM does not re-parse: %v\n%s", err, circ.QASM())
			}
		}
	})
}
