package qasm

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"quantumdd/internal/qc"
)

// reg describes a declared quantum or classical register: a contiguous
// slice of the flattened global index space.
type reg struct {
	offset int
	size   int
}

// macro is a user-defined gate ("gate name(params) qargs { body }").
type macro struct {
	name   string
	params []string
	qargs  []string
	body   []macroStmt
}

// macroStmt is one statement of a macro body: a gate call on formal
// arguments, or a barrier (which is a no-op inside macros here).
type macroStmt struct {
	name    string
	params  []expr
	qargs   []string
	barrier bool
	line    int
	col     int
}

type parser struct {
	toks   []token
	pos    int
	qregs  map[string]reg
	cregs  map[string]reg
	qorder []string // declaration order, for stable flattening
	corder []string
	nq, nc int
	macros map[string]*macro
	ops    []pendingOp

	resolve  IncludeResolver
	includes int // nesting guard
}

// pendingOp is an IR op recorded before the final circuit exists.
type pendingOp struct {
	op qc.Op
}

// IncludeResolver loads the source text of an include file by name.
// "qelib1.inc" is always handled by the built-in gate set and never
// reaches the resolver.
type IncludeResolver func(name string) (string, error)

// Parse compiles OpenQASM 2.0 source into a circuit. Multiple quantum
// (classical) registers are flattened into one index space in
// declaration order. Includes other than qelib1.inc are rejected; use
// ParseWithIncludes or ParseFile to allow them.
func Parse(src string) (*qc.Circuit, error) {
	return ParseWithIncludes(src, nil)
}

// ParseFile parses a .qasm file, resolving includes relative to the
// file's directory.
func ParseFile(path string) (*qc.Circuit, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	return ParseWithIncludes(string(data), func(name string) (string, error) {
		inc, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		return string(inc), nil
	})
}

// ParseWithIncludes parses source with a custom include resolver.
func ParseWithIncludes(src string, resolve IncludeResolver) (*qc.Circuit, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:    toks,
		qregs:   map[string]reg{},
		cregs:   map[string]reg{},
		macros:  map[string]*macro{},
		resolve: resolve,
	}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	if p.nq == 0 {
		return nil, &Error{Line: 1, Col: 1, Msg: "program declares no quantum register"}
	}
	circ := qc.New(p.nq, p.nc)
	circ.Name = "qasm"
	for _, po := range p.ops {
		circ.Append(po.op)
	}
	return circ, nil
}

func (p *parser) peek() token    { return p.toks[p.pos] }
func (p *parser) advance() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errAt(t token, format string, args ...interface{}) *Error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind) error {
	t := p.peek()
	if t.kind != kind {
		return p.errAt(t, "expected %s, found %s %q", kind, t.kind, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) parseProgram() error {
	// Optional version header.
	if t := p.peek(); t.kind == tokIdent && t.text == "OPENQASM" {
		p.advance()
		v := p.peek()
		if v.kind != tokNumber {
			return p.errAt(v, "expected version number after OPENQASM")
		}
		if v.text != "2.0" && v.text != "2" {
			return p.errAt(v, "unsupported OpenQASM version %q (only 2.0)", v.text)
		}
		p.advance()
		if err := p.expect(tokSemicolon); err != nil {
			return err
		}
	}
	for {
		t := p.peek()
		if t.kind == tokEOF {
			return nil
		}
		if err := p.parseStatement(); err != nil {
			return err
		}
	}
}

func (p *parser) parseStatement() error {
	t := p.peek()
	if t.kind != tokIdent {
		return p.errAt(t, "expected statement, found %s %q", t.kind, t.text)
	}
	switch t.text {
	case "include":
		return p.parseInclude()
	case "qreg":
		return p.parseRegDecl(true)
	case "creg":
		return p.parseRegDecl(false)
	case "gate":
		return p.parseGateDecl()
	case "opaque":
		return p.parseOpaque()
	case "measure":
		return p.parseMeasure(nil)
	case "reset":
		return p.parseReset(nil)
	case "barrier":
		return p.parseBarrier()
	case "if":
		return p.parseIf()
	default:
		return p.parseGateCall(nil)
	}
}

const maxIncludeDepth = 16

func (p *parser) parseInclude() error {
	p.advance()
	t := p.peek()
	if t.kind != tokString {
		return p.errAt(t, "expected file name string after include")
	}
	p.advance()
	if err := p.expect(tokSemicolon); err != nil {
		return err
	}
	if t.text == "qelib1.inc" {
		// The standard library is built in.
		return nil
	}
	if p.resolve == nil {
		return p.errAt(t, "include %q not available (only \"qelib1.inc\" is built in; use ParseFile for file includes)", t.text)
	}
	p.includes++
	if p.includes > maxIncludeDepth {
		return p.errAt(t, "includes nested deeper than %d (cycle?)", maxIncludeDepth)
	}
	src, err := p.resolve(t.text)
	if err != nil {
		return p.errAt(t, "include %q: %v", t.text, err)
	}
	toks, err := lexAll(src)
	if err != nil {
		return p.errAt(t, "include %q: %v", t.text, err)
	}
	// Splice the included tokens (minus their EOF) before the current
	// position.
	rest := append([]token(nil), p.toks[p.pos:]...)
	p.toks = append(append(p.toks[:p.pos:p.pos], toks[:len(toks)-1]...), rest...)
	return nil
}

func (p *parser) parseRegDecl(quantum bool) error {
	p.advance()
	name := p.peek()
	if name.kind != tokIdent {
		return p.errAt(name, "expected register name")
	}
	p.advance()
	if err := p.expect(tokLBracket); err != nil {
		return err
	}
	sz := p.peek()
	if sz.kind != tokNumber {
		return p.errAt(sz, "expected register size")
	}
	size := 0
	if _, err := fmt.Sscanf(sz.text, "%d", &size); err != nil || size <= 0 {
		return p.errAt(sz, "invalid register size %q", sz.text)
	}
	p.advance()
	if err := p.expect(tokRBracket); err != nil {
		return err
	}
	if err := p.expect(tokSemicolon); err != nil {
		return err
	}
	if _, dup := p.qregs[name.text]; dup {
		return p.errAt(name, "register %q already declared", name.text)
	}
	if _, dup := p.cregs[name.text]; dup {
		return p.errAt(name, "register %q already declared", name.text)
	}
	if quantum {
		p.qregs[name.text] = reg{offset: p.nq, size: size}
		p.qorder = append(p.qorder, name.text)
		p.nq += size
	} else {
		p.cregs[name.text] = reg{offset: p.nc, size: size}
		p.corder = append(p.corder, name.text)
		p.nc += size
	}
	return nil
}

func (p *parser) parseOpaque() error {
	// opaque name(params?) qargs ;  — declared but never executable.
	for p.peek().kind != tokSemicolon && p.peek().kind != tokEOF {
		p.advance()
	}
	return p.expect(tokSemicolon)
}

func (p *parser) parseGateDecl() error {
	p.advance()
	nameTok := p.peek()
	if nameTok.kind != tokIdent {
		return p.errAt(nameTok, "expected gate name")
	}
	p.advance()
	m := &macro{name: nameTok.text}
	if _, exists := p.macros[m.name]; exists {
		return p.errAt(nameTok, "gate %q already defined", m.name)
	}
	if _, native := natives[m.name]; native || m.name == "U" || m.name == "CX" {
		// Re-declaring a builtin (as qelib1.inc itself would) is
		// accepted; the builtin implementation wins.
		return p.skipGateBody()
	}
	if p.peek().kind == tokLParen {
		p.advance()
		for p.peek().kind != tokRParen {
			t := p.peek()
			if t.kind != tokIdent {
				return p.errAt(t, "expected parameter name")
			}
			m.params = append(m.params, t.text)
			p.advance()
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
		p.advance() // ')'
	}
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return p.errAt(t, "expected qubit argument name")
		}
		m.qargs = append(m.qargs, t.text)
		p.advance()
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if err := p.expect(tokLBrace); err != nil {
		return err
	}
	for p.peek().kind != tokRBrace {
		st, err := p.parseMacroStmt(m)
		if err != nil {
			return err
		}
		m.body = append(m.body, st)
	}
	p.advance() // '}'
	p.macros[m.name] = m
	return nil
}

// skipGateBody consumes the remainder of a gate declaration whose
// implementation is already built in.
func (p *parser) skipGateBody() error {
	depth := 0
	for {
		t := p.peek()
		switch t.kind {
		case tokEOF:
			return p.errAt(t, "unexpected end of input in gate declaration")
		case tokLBrace:
			depth++
		case tokRBrace:
			depth--
			if depth == 0 {
				p.advance()
				return nil
			}
		case tokSemicolon:
			if depth == 0 {
				// parameterless redeclaration without body is illegal,
				// but tolerate "opaque-style" lines.
				p.advance()
				return nil
			}
		}
		p.advance()
	}
}

func (p *parser) parseMacroStmt(m *macro) (macroStmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return macroStmt{}, p.errAt(t, "expected gate call in gate body")
	}
	if t.text == "barrier" {
		// barrier inside a macro is a scheduling hint; skip operands.
		for p.peek().kind != tokSemicolon && p.peek().kind != tokEOF {
			p.advance()
		}
		if err := p.expect(tokSemicolon); err != nil {
			return macroStmt{}, err
		}
		return macroStmt{barrier: true, line: t.line, col: t.col}, nil
	}
	// OpenQASM 2.0 requires gates to be defined before use, which also
	// rules out (mutual) recursion: a gate is not visible inside its
	// own body.
	if _, isNative := natives[t.text]; !isNative {
		if _, isMacro := p.macros[t.text]; !isMacro {
			return macroStmt{}, p.errAt(t, "unknown gate %q in body of %q (gates must be defined before use)", t.text, m.name)
		}
	}
	st := macroStmt{name: t.text, line: t.line, col: t.col}
	p.advance()
	if p.peek().kind == tokLParen {
		p.advance()
		for p.peek().kind != tokRParen {
			e, err := p.parseExpr()
			if err != nil {
				return macroStmt{}, err
			}
			st.params = append(st.params, e)
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
		p.advance()
	}
	for {
		a := p.peek()
		if a.kind != tokIdent {
			return macroStmt{}, p.errAt(a, "expected qubit argument")
		}
		found := false
		for _, q := range m.qargs {
			if q == a.text {
				found = true
				break
			}
		}
		if !found {
			return macroStmt{}, p.errAt(a, "unknown qubit argument %q in gate %q", a.text, m.name)
		}
		st.qargs = append(st.qargs, a.text)
		p.advance()
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if err := p.expect(tokSemicolon); err != nil {
		return macroStmt{}, err
	}
	return st, nil
}

// operand is a parsed quantum/classical argument: whole register or a
// single indexed bit.
type operand struct {
	name    string
	indexed bool
	index   int
	line    int
	col     int
}

func (p *parser) parseOperand() (operand, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return operand{}, p.errAt(t, "expected register operand")
	}
	p.advance()
	op := operand{name: t.text, line: t.line, col: t.col}
	if p.peek().kind == tokLBracket {
		p.advance()
		idx := p.peek()
		if idx.kind != tokNumber {
			return operand{}, p.errAt(idx, "expected index")
		}
		if _, err := fmt.Sscanf(idx.text, "%d", &op.index); err != nil {
			return operand{}, p.errAt(idx, "invalid index %q", idx.text)
		}
		p.advance()
		if err := p.expect(tokRBracket); err != nil {
			return operand{}, err
		}
		op.indexed = true
	}
	return op, nil
}

// resolveQubits flattens an operand list into per-repetition global
// qubit indices, implementing qelib1 broadcasting: whole registers
// must share a common size n, single qubits repeat n times.
func (p *parser) resolveQubits(operands []operand) ([][]int, error) {
	width := 1
	for _, o := range operands {
		r, ok := p.qregs[o.name]
		if !ok {
			return nil, p.errAt(token{line: o.line, col: o.col}, "unknown quantum register %q", o.name)
		}
		if o.indexed {
			if o.index < 0 || o.index >= r.size {
				return nil, p.errAt(token{line: o.line, col: o.col}, "index %d out of range for %s[%d]", o.index, o.name, r.size)
			}
			continue
		}
		if width == 1 {
			width = r.size
		} else if r.size != width {
			return nil, p.errAt(token{line: o.line, col: o.col}, "broadcast register sizes differ (%d vs %d)", r.size, width)
		}
	}
	out := make([][]int, width)
	for rep := 0; rep < width; rep++ {
		idx := make([]int, len(operands))
		for i, o := range operands {
			r := p.qregs[o.name]
			if o.indexed {
				idx[i] = r.offset + o.index
			} else {
				k := rep
				if r.size == 1 {
					k = 0
				}
				idx[i] = r.offset + k
			}
		}
		// Distinctness within one application.
		seen := map[int]bool{}
		for _, q := range idx {
			if seen[q] {
				return nil, p.errAt(token{line: operands[0].line, col: operands[0].col}, "gate operands overlap on qubit %d", q)
			}
			seen[q] = true
		}
		out[rep] = idx
	}
	return out, nil
}

func (p *parser) parseMeasure(cond *qc.Condition) error {
	p.advance()
	src, err := p.parseOperand()
	if err != nil {
		return err
	}
	if err := p.expect(tokArrow); err != nil {
		return err
	}
	dst, err := p.parseOperand()
	if err != nil {
		return err
	}
	if err := p.expect(tokSemicolon); err != nil {
		return err
	}
	if cond != nil {
		return p.errAt(token{line: src.line, col: src.col}, "classically-controlled measure is not supported")
	}
	qr, ok := p.qregs[src.name]
	if !ok {
		return p.errAt(token{line: src.line, col: src.col}, "unknown quantum register %q", src.name)
	}
	cr, ok := p.cregs[dst.name]
	if !ok {
		return p.errAt(token{line: dst.line, col: dst.col}, "unknown classical register %q", dst.name)
	}
	switch {
	case src.indexed && dst.indexed:
		if src.index >= qr.size || dst.index >= cr.size {
			return p.errAt(token{line: src.line, col: src.col}, "measure index out of range")
		}
		p.ops = append(p.ops, pendingOp{op: qc.Op{Kind: qc.KindMeasure, Targets: []int{qr.offset + src.index}, Cbit: cr.offset + dst.index}})
	case !src.indexed && !dst.indexed:
		if qr.size != cr.size {
			return p.errAt(token{line: src.line, col: src.col}, "measure register sizes differ (%d vs %d)", qr.size, cr.size)
		}
		for i := 0; i < qr.size; i++ {
			p.ops = append(p.ops, pendingOp{op: qc.Op{Kind: qc.KindMeasure, Targets: []int{qr.offset + i}, Cbit: cr.offset + i}})
		}
	default:
		return p.errAt(token{line: src.line, col: src.col}, "measure operands must both be indexed or both be registers")
	}
	return nil
}

func (p *parser) parseReset(cond *qc.Condition) error {
	t := p.peek()
	p.advance()
	op, err := p.parseOperand()
	if err != nil {
		return err
	}
	if err := p.expect(tokSemicolon); err != nil {
		return err
	}
	if cond != nil {
		return p.errAt(t, "classically-controlled reset is not supported")
	}
	r, ok := p.qregs[op.name]
	if !ok {
		return p.errAt(t, "unknown quantum register %q", op.name)
	}
	if op.indexed {
		if op.index >= r.size {
			return p.errAt(t, "reset index out of range")
		}
		p.ops = append(p.ops, pendingOp{op: qc.Op{Kind: qc.KindReset, Targets: []int{r.offset + op.index}}})
		return nil
	}
	for i := 0; i < r.size; i++ {
		p.ops = append(p.ops, pendingOp{op: qc.Op{Kind: qc.KindReset, Targets: []int{r.offset + i}}})
	}
	return nil
}

func (p *parser) parseBarrier() error {
	p.advance()
	// Operands are irrelevant for the breakpoint semantics; validate
	// they name known registers, then emit a single barrier.
	for p.peek().kind != tokSemicolon {
		op, err := p.parseOperand()
		if err != nil {
			return err
		}
		if _, ok := p.qregs[op.name]; !ok {
			return p.errAt(token{line: op.line, col: op.col}, "unknown quantum register %q", op.name)
		}
		if p.peek().kind == tokComma {
			p.advance()
		}
	}
	p.advance() // ';'
	p.ops = append(p.ops, pendingOp{op: qc.Op{Kind: qc.KindBarrier}})
	return nil
}

func (p *parser) parseIf() error {
	p.advance() // 'if'
	if err := p.expect(tokLParen); err != nil {
		return err
	}
	regTok := p.peek()
	if regTok.kind != tokIdent {
		return p.errAt(regTok, "expected classical register in if condition")
	}
	p.advance()
	cr, ok := p.cregs[regTok.text]
	if !ok {
		return p.errAt(regTok, "unknown classical register %q", regTok.text)
	}
	if err := p.expect(tokEqEq); err != nil {
		return err
	}
	valTok := p.peek()
	if valTok.kind != tokNumber {
		return p.errAt(valTok, "expected integer in if condition")
	}
	var value uint64
	if _, err := fmt.Sscanf(valTok.text, "%d", &value); err != nil {
		return p.errAt(valTok, "invalid integer %q", valTok.text)
	}
	p.advance()
	if err := p.expect(tokRParen); err != nil {
		return err
	}
	bits := make([]int, cr.size)
	for i := range bits {
		bits[i] = cr.offset + i
	}
	cond := &qc.Condition{Bits: bits, Value: value}
	st := p.peek()
	if st.kind != tokIdent {
		return p.errAt(st, "expected quantum operation after if condition")
	}
	switch st.text {
	case "measure":
		return p.parseMeasure(cond)
	case "reset":
		return p.parseReset(cond)
	case "if", "gate", "qreg", "creg", "include", "opaque", "barrier":
		return p.errAt(st, "%q cannot be classically controlled", st.text)
	default:
		return p.parseGateCall(cond)
	}
}

// parseGateCall parses "name(params?) operands ;" and emits ops.
func (p *parser) parseGateCall(cond *qc.Condition) error {
	nameTok := p.advance()
	name := nameTok.text
	var params []float64
	if p.peek().kind == tokLParen {
		p.advance()
		for p.peek().kind != tokRParen {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			v, err := e.eval(nil)
			if err != nil {
				return err
			}
			params = append(params, v)
			if p.peek().kind == tokComma {
				p.advance()
			}
		}
		p.advance()
	}
	var operands []operand
	for {
		o, err := p.parseOperand()
		if err != nil {
			return err
		}
		operands = append(operands, o)
		if p.peek().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if err := p.expect(tokSemicolon); err != nil {
		return err
	}
	applications, err := p.resolveQubits(operands)
	if err != nil {
		return err
	}
	for _, qubits := range applications {
		if err := p.emitGate(nameTok, name, params, qubits, cond); err != nil {
			return err
		}
	}
	return nil
}

// emitGate lowers one gate application (builtin, qelib1 native, or
// user macro) onto global qubit indices.
func (p *parser) emitGate(at token, name string, params []float64, qubits []int, cond *qc.Condition) error {
	if n, ok := natives[name]; ok {
		if len(params) != n.params {
			return p.errAt(at, "gate %q takes %d parameter(s), got %d", name, n.params, len(params))
		}
		if len(qubits) != n.qubits {
			return p.errAt(at, "gate %q takes %d qubit(s), got %d", name, n.qubits, len(qubits))
		}
		op, err := n.build(params, qubits)
		if err != nil {
			return p.errAt(at, "%v", err)
		}
		op.Cond = cond
		p.ops = append(p.ops, pendingOp{op: op})
		return nil
	}
	if m, ok := p.macros[name]; ok {
		if len(params) != len(m.params) {
			return p.errAt(at, "gate %q takes %d parameter(s), got %d", name, len(m.params), len(params))
		}
		if len(qubits) != len(m.qargs) {
			return p.errAt(at, "gate %q takes %d qubit(s), got %d", name, len(m.qargs), len(qubits))
		}
		return p.expandMacro(at, m, params, qubits, cond, 0)
	}
	return p.errAt(at, "unknown gate %q", name)
}

const maxMacroDepth = 64

func (p *parser) expandMacro(at token, m *macro, params []float64, qubits []int, cond *qc.Condition, depth int) error {
	if depth > maxMacroDepth {
		return p.errAt(at, "gate expansion exceeds depth %d (recursive definition?)", maxMacroDepth)
	}
	env := make(map[string]float64, len(m.params))
	for i, name := range m.params {
		env[name] = params[i]
	}
	qenv := make(map[string]int, len(m.qargs))
	for i, name := range m.qargs {
		qenv[name] = qubits[i]
	}
	for _, st := range m.body {
		if st.barrier {
			continue
		}
		vals := make([]float64, len(st.params))
		for i, e := range st.params {
			v, err := e.eval(env)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		qs := make([]int, len(st.qargs))
		for i, qa := range st.qargs {
			qs[i] = qenv[qa]
		}
		stTok := token{line: st.line, col: st.col}
		if inner, ok := p.macros[st.name]; ok {
			if len(vals) != len(inner.params) || len(qs) != len(inner.qargs) {
				return p.errAt(stTok, "gate %q arity mismatch inside %q", st.name, m.name)
			}
			if err := p.expandMacro(stTok, inner, vals, qs, cond, depth+1); err != nil {
				return err
			}
			continue
		}
		if err := p.emitGate(stTok, st.name, vals, qs, cond); err != nil {
			return err
		}
	}
	return nil
}

// native describes a builtin gate and its lowering to the IR.
type native struct {
	params int
	qubits int
	build  func(params []float64, q []int) (qc.Op, error)
}

func simple(g qc.Gate, nctrl int) native {
	return native{
		qubits: nctrl + 1,
		build: func(params []float64, q []int) (qc.Op, error) {
			ctl := make([]qc.Control, nctrl)
			for i := 0; i < nctrl; i++ {
				ctl[i] = qc.Control{Qubit: q[i]}
			}
			return qc.Op{Kind: qc.KindGate, Gate: g, Targets: []int{q[nctrl]}, Controls: ctl}, nil
		},
	}
}

func param1(g qc.Gate, nctrl int) native {
	n := simple(g, nctrl)
	n.params = 1
	base := n.build
	n.build = func(params []float64, q []int) (qc.Op, error) {
		op, err := base(nil, q)
		op.Params = []float64{params[0]}
		return op, err
	}
	return n
}

// natives lists the builtin primitives (U, CX) and the qelib1 standard
// library, mapped directly onto the IR.
var natives = map[string]native{
	// OpenQASM primitives.
	"U": {params: 3, qubits: 1, build: func(ps []float64, q []int) (qc.Op, error) {
		return qc.Op{Kind: qc.KindGate, Gate: qc.U, Params: []float64{ps[0], ps[1], ps[2]}, Targets: []int{q[0]}}, nil
	}},
	"CX": simple(qc.X, 1),
	// qelib1 single-qubit gates.
	"id":   simple(qc.I, 0),
	"x":    simple(qc.X, 0),
	"y":    simple(qc.Y, 0),
	"z":    simple(qc.Z, 0),
	"h":    simple(qc.H, 0),
	"s":    simple(qc.S, 0),
	"sdg":  simple(qc.Sdg, 0),
	"t":    simple(qc.T, 0),
	"tdg":  simple(qc.Tdg, 0),
	"sx":   simple(qc.SX, 0),
	"sxdg": simple(qc.SXdg, 0),
	"v":    simple(qc.V, 0),
	"vdg":  simple(qc.Vdg, 0),
	"p":    param1(qc.P, 0),
	"u1":   param1(qc.P, 0),
	"rx":   param1(qc.RX, 0),
	"ry":   param1(qc.RY, 0),
	"rz":   param1(qc.RZ, 0),
	"u2": {params: 2, qubits: 1, build: func(ps []float64, q []int) (qc.Op, error) {
		return qc.Op{Kind: qc.KindGate, Gate: qc.U, Params: []float64{math.Pi / 2, ps[0], ps[1]}, Targets: []int{q[0]}}, nil
	}},
	"u3": {params: 3, qubits: 1, build: func(ps []float64, q []int) (qc.Op, error) {
		return qc.Op{Kind: qc.KindGate, Gate: qc.U, Params: []float64{ps[0], ps[1], ps[2]}, Targets: []int{q[0]}}, nil
	}},
	"u": {params: 3, qubits: 1, build: func(ps []float64, q []int) (qc.Op, error) {
		return qc.Op{Kind: qc.KindGate, Gate: qc.U, Params: []float64{ps[0], ps[1], ps[2]}, Targets: []int{q[0]}}, nil
	}},
	// Controlled gates.
	"cx":  simple(qc.X, 1),
	"cy":  simple(qc.Y, 1),
	"cz":  simple(qc.Z, 1),
	"ch":  simple(qc.H, 1),
	"csx": simple(qc.SX, 1),
	"cp":  param1(qc.P, 1),
	"cu1": param1(qc.P, 1),
	"crx": param1(qc.RX, 1),
	"cry": param1(qc.RY, 1),
	"crz": param1(qc.RZ, 1),
	"cu3": {params: 3, qubits: 2, build: func(ps []float64, q []int) (qc.Op, error) {
		return qc.Op{Kind: qc.KindGate, Gate: qc.U, Params: []float64{ps[0], ps[1], ps[2]}, Targets: []int{q[1]}, Controls: []qc.Control{{Qubit: q[0]}}}, nil
	}},
	"ccx": simple(qc.X, 2),
	"ccz": simple(qc.Z, 2),
	// Swap family.
	"swap": {qubits: 2, build: func(ps []float64, q []int) (qc.Op, error) {
		return qc.Op{Kind: qc.KindGate, Gate: qc.Swap, Targets: []int{q[0], q[1]}}, nil
	}},
	"cswap": {qubits: 3, build: func(ps []float64, q []int) (qc.Op, error) {
		return qc.Op{Kind: qc.KindGate, Gate: qc.Swap, Targets: []int{q[1], q[2]}, Controls: []qc.Control{{Qubit: q[0]}}}, nil
	}},
}
